/**
 * @file
 * Design ablations beyond the paper's figures:
 *
 *  1. conflict-resolution policy (attacker-wins, the hardware
 *     behaviour, vs attacker-loses vs older-wins arbitration);
 *  2. the paper's three-counter retry mechanism vs a single shared
 *     counter (what Blue Gene/Q's system software does) — Section 3
 *     argues lock conflicts deserve their own counter;
 *  3. eager vs lazy lock subscription (Blue Gene/Q long-running mode
 *     checks the lock only at commit [12]).
 */

#include <cstdio>

#include "suite.hh"

using namespace htmsim;
using namespace htmsim::bench;
using htm::ConflictPolicy;

int
main()
{
    SuiteRunner runner;
    const MachineConfig intel = MachineConfig::intelCore();
    const MachineConfig bgq = MachineConfig::blueGeneQ();

    std::printf("Ablation 1: conflict-resolution policy "
                "(Intel Core, 4 threads, intruder)\n");
    std::printf("%-16s %10s %10s\n", "policy", "speed-up", "abort %");
    for (const auto [policy, name] :
         {std::pair{ConflictPolicy::attackerWins, "attacker-wins"},
          std::pair{ConflictPolicy::attackerLoses, "attacker-loses"},
          std::pair{ConflictPolicy::olderWins, "older-wins"}}) {
        RuntimeConfig config{intel};
        config.policy = policy;
        const Speedup result =
            runner.run("intruder", config, intel, 4, true, 1);
        std::printf("%-16s %10.2f %10.1f\n", name, result.ratio,
                    result.tm.stats.abortRatio() * 100.0);
    }

    std::printf("\nAblation 2: three retry counters vs one "
                "(Intel Core, 4 threads)\n");
    std::printf("%-14s %-22s %10s %8s\n", "benchmark", "counters",
                "speed-up", "serial%");
    for (const std::string& bench :
         {std::string("vacation-high"), std::string("yada")}) {
        {
            // Paper's mechanism: separate lock/persistent/transient.
            const Speedup result = runner.measure(bench, intel, 4);
            std::printf("%-14s %-22s %10.2f %8.1f\n", bench.c_str(),
                        "three (tuned)", result.ratio,
                        result.tm.stats.serializationRatio() * 100.0);
        }
        {
            // Single counter: all abort kinds share one budget,
            // emulated by setting all three counters equal.
            Speedup best;
            bool first = true;
            for (const int budget : {2, 4, 8, 16}) {
                RuntimeConfig config{intel};
                config.retry = {budget, budget, budget};
                const Speedup current =
                    runner.run(bench, config, intel, 4, true, 1);
                if (first || current.ratio > best.ratio) {
                    best = current;
                    first = false;
                }
            }
            std::printf("%-14s %-22s %10.2f %8.1f\n", bench.c_str(),
                        "single (tuned)", best.ratio,
                        best.tm.stats.serializationRatio() * 100.0);
        }
    }

    std::printf("\nAblation 3: eager vs lazy lock subscription "
                "(Blue Gene/Q modes, 4 threads)\n");
    std::printf("%-14s %-14s %10s %8s\n", "benchmark", "mode",
                "speed-up", "abort %");
    for (const std::string& bench :
         {std::string("kmeans-high"), std::string("genome")}) {
        for (const auto [mode, name] :
             {std::pair{htm::BgqMode::shortRunning, "short/eager"},
              std::pair{htm::BgqMode::longRunning, "long/lazy"}}) {
            RuntimeConfig config{bgq};
            config.bgq.mode = mode;
            const Speedup result =
                runner.run(bench, config, bgq, 4, true, 1);
            std::printf("%-14s %-14s %10.2f %8.1f\n", bench.c_str(),
                        name, result.ratio,
                        result.tm.stats.abortRatio() * 100.0);
        }
    }
    return 0;
}

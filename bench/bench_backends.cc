/**
 * @file
 * Backend comparison (Section 3 context): for every machine x STAMP
 * cell at four threads, the speed-up of the real best-effort HTM
 * (tuned over the retry grid), the global-lock-only fallback (every
 * atomic section irrevocable under the single lock), and the ideal-HTM
 * oracle (no capacity limits, no begin/end overhead, tuned likewise).
 *
 * The lock-only column bounds what serialization alone achieves (it
 * cannot meaningfully exceed 1x at four threads); the ideal column
 * bounds what any best-effort HTM could achieve on the same conflict
 * structure; the hybrid column replaces most global-lock fallbacks
 * with a concurrent software slow path (stm.hh). Emits
 * BENCH_backends.json with per-machine geomeans and the two sanity
 * checks.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "suite.hh"

namespace
{

using namespace htmsim;
using htm::BackendKind;

struct CellRow
{
    std::string bench;
    std::string machine;
    double htm = 0.0;
    double lock = 0.0;
    double ideal = 0.0;
    double hybrid = 0.0;
};

/** Best speed-up over the tuning grid with @p backend selected. */
double
tunedBest(const bench::SuiteRunner& runner, const std::string& bench,
          const htm::MachineConfig& machine, BackendKind backend,
          unsigned threads, std::uint64_t seed)
{
    double best = 0.0;
    bool first = true;
    for (htm::RuntimeConfig config :
         bench::SuiteRunner::tuningCandidates(machine)) {
        config.backend = backend;
        const stamp::Speedup result =
            runner.run(bench, config, machine, threads, true, seed);
        if (first || result.ratio > best) {
            best = result.ratio;
            first = false;
        }
    }
    return best;
}

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double value : values)
        log_sum += std::log(value);
    return std::exp(log_sum / double(values.size()));
}

} // namespace

int
main(int argc, char** argv)
{
    const char* output_path = "BENCH_backends.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc)
            output_path = argv[++i];
        else
            output_path = argv[i];
    }
    const unsigned threads = 4;
    const std::uint64_t seed = 1;
    const bench::SuiteRunner runner(false);

    std::printf("%-14s %-22s %8s %8s %8s %8s\n", "benchmark",
                "machine", "htm", "lock", "ideal", "hybrid");

    std::vector<CellRow> rows;
    unsigned lock_violations = 0;
    unsigned ideal_violations = 0;
    for (const htm::MachineConfig& machine :
         htm::MachineConfig::all()) {
        for (const std::string& bench : bench::suiteNames()) {
            CellRow row;
            row.bench = bench;
            row.machine = machine.name;
            row.htm = tunedBest(runner, bench, machine,
                                BackendKind::htm, threads, seed);
            // The lock backend never attempts a transaction, so the
            // retry grid is irrelevant: one run suffices.
            {
                htm::RuntimeConfig config{machine};
                config.backend = BackendKind::globalLock;
                row.lock = runner
                               .run(bench, config, machine, threads,
                                    true, seed)
                               .ratio;
            }
            row.ideal = tunedBest(runner, bench, machine,
                                  BackendKind::idealHtm, threads, seed);
            row.hybrid = tunedBest(runner, bench, machine,
                                   BackendKind::hybrid, threads, seed);

            const bool lock_bad = row.lock > 1.05;
            const bool ideal_bad = row.ideal < row.htm;
            lock_violations += lock_bad ? 1 : 0;
            ideal_violations += ideal_bad ? 1 : 0;
            std::printf("%-14s %-22s %8.2f %8.2f %8.2f %8.2f%s%s\n",
                        bench.c_str(), machine.name.c_str(), row.htm,
                        row.lock, row.ideal, row.hybrid,
                        lock_bad ? "  [lock > 1.05]" : "",
                        ideal_bad ? "  [ideal < htm]" : "");
            std::fflush(stdout);
            rows.push_back(std::move(row));
        }
    }

    std::FILE* out = std::fopen(output_path, "w");
    if (out == nullptr) {
        std::perror(output_path);
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"htmsim-bench-backends-v1\",\n"
                 "  \"threads\": %u,\n"
                 "  \"seed\": %llu,\n"
                 "  \"scale\": %.3f,\n"
                 "  \"cells\": [\n",
                 threads, (unsigned long long)seed,
                 bench::workloadScale());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const CellRow& row = rows[i];
        std::fprintf(out,
                     "    {\"bench\": \"%s\", \"machine\": \"%s\", "
                     "\"htm\": %.4f, \"lock\": %.4f, "
                     "\"ideal\": %.4f, \"hybrid\": %.4f}%s\n",
                     row.bench.c_str(), row.machine.c_str(), row.htm,
                     row.lock, row.ideal, row.hybrid,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"geomeans\": [\n");
    std::size_t machine_index = 0;
    const auto& machines = htm::MachineConfig::all();
    std::printf("\n%-22s %8s %8s %8s %8s\n", "geomean", "htm",
                "lock", "ideal", "hybrid");
    for (const htm::MachineConfig& machine : machines) {
        std::vector<double> htm_values;
        std::vector<double> lock_values;
        std::vector<double> ideal_values;
        std::vector<double> hybrid_values;
        for (const CellRow& row : rows) {
            if (row.machine != machine.name)
                continue;
            htm_values.push_back(row.htm);
            lock_values.push_back(row.lock);
            ideal_values.push_back(row.ideal);
            hybrid_values.push_back(row.hybrid);
        }
        const double g_htm = geomean(htm_values);
        const double g_lock = geomean(lock_values);
        const double g_ideal = geomean(ideal_values);
        const double g_hybrid = geomean(hybrid_values);
        std::printf("%-22s %8.2f %8.2f %8.2f %8.2f\n",
                    machine.name.c_str(), g_htm, g_lock, g_ideal,
                    g_hybrid);
        std::fprintf(out,
                     "    {\"machine\": \"%s\", \"htm\": %.4f, "
                     "\"lock\": %.4f, \"ideal\": %.4f, "
                     "\"hybrid\": %.4f}%s\n",
                     machine.name.c_str(), g_htm, g_lock, g_ideal,
                     g_hybrid,
                     ++machine_index < machines.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"checks\": {\"lock_speedup_above_1.05\": %u, "
                 "\"ideal_below_htm\": %u}\n"
                 "}\n",
                 lock_violations, ideal_violations);
    std::fclose(out);

    std::printf("\nchecks: lock>1.05 violations %u, ideal<htm "
                "violations %u -> %s\n",
                lock_violations, ideal_violations, output_path);
    return 0;
}

/**
 * @file
 * Server benchmark: tail latency of the TM-backed KV/OLTP store.
 *
 * Sweeps the four machine models x four backends (best-effort HTM,
 * global-lock-only, ideal HTM, hybrid HTM+STM) x two traffic profiles at 64 and 256
 * open-loop clients, and reports committed-transaction throughput plus
 * virtual-time latency percentiles (p50/p99/p999, first attempt ->
 * commit). A txprof profiler rides along on every run (it is
 * zero-perturbation by construction) so the JSON can attribute tail
 * cycles to the per-op transaction sites — which op class owns the
 * p999 and whether it is wasted (aborted) work, fallback
 * serialization, or lock waiting.
 *
 * The "contended" profile is the paper-style stress case: a hot
 * Zipfian working set with heavy read-modify-write and multi-key
 * transfer traffic. There the backend choice barely moves p50 (most
 * transactions still commit first-try) but separates p999 by an order
 * of magnitude — the experiment EXPERIMENTS.md Section "Server tail
 * latency" discusses.
 *
 * Usage: bench_server [--smoke] [--index-lock MODE] [-o OUT.json]
 *   --smoke: one machine (Intel), 64 clients, short horizon — the CI
 *            quick-workflow variant.
 *   --index-lock elided|tatas|none: guard ordered-index range scans
 *            (shared) and index-mutating put/rmw (exclusive) with a
 *            tmsync::atomic_shared_mutex in the given mode; "none"
 *            (the default) is the plain TM-only server.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "htm/machine.hh"
#include "prof/profiler.hh"
#include "server/server.hh"

namespace
{

using namespace htmsim;

const char*
backendName(htm::BackendKind backend)
{
    switch (backend) {
    case htm::BackendKind::htm: return "htm";
    case htm::BackendKind::globalLock: return "lock";
    case htm::BackendKind::idealHtm: return "ideal";
    case htm::BackendKind::hybrid: return "hybrid";
    }
    return "?";
}

struct Profile
{
    const char* name;
    server::TrafficConfig traffic;
};

/** Read-mostly OLTP mix over a comfortably sized key space. */
server::TrafficConfig
readMostlyTraffic()
{
    server::TrafficConfig traffic;
    traffic.numKeys = 4096;
    traffic.numAccounts = 256;
    traffic.zipfTheta = 0.8;
    traffic.getWeight = 70;
    traffic.putWeight = 15;
    traffic.rmwWeight = 8;
    traffic.transferWeight = 4;
    traffic.scanWeight = 3;
    traffic.transferSpan = 2;
    traffic.scanLen = 8;
    return traffic;
}

/** Hot-spot stress: small key space, steep skew, write-heavy mix. */
server::TrafficConfig
contendedTraffic()
{
    server::TrafficConfig traffic;
    traffic.numKeys = 512;
    traffic.numAccounts = 64;
    traffic.zipfTheta = 0.95;
    traffic.getWeight = 30;
    traffic.putWeight = 10;
    traffic.rmwWeight = 30;
    traffic.transferWeight = 25;
    traffic.scanWeight = 5;
    traffic.transferSpan = 4;
    traffic.scanLen = 8;
    return traffic;
}

struct RunRow
{
    std::string machine;
    std::string backend;
    std::string profile;
    unsigned clients = 0;
    server::ServerResult result;
    std::vector<prof::SiteProfile> topSites;
};

} // namespace

int
main(int argc, char** argv)
{
    const char* output_path = "BENCH_server.json";
    bool smoke = false;
    server::IndexLockMode index_lock = server::IndexLockMode::none;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--index-lock") == 0 &&
                   i + 1 < argc) {
            if (!server::parseIndexLockMode(argv[++i], index_lock)) {
                std::fprintf(stderr,
                             "unknown --index-lock mode '%s' "
                             "(accepted: none elided tatas)\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
            output_path = argv[++i];
        } else {
            output_path = argv[i];
        }
    }

    const std::uint64_t seed = 1;
    const unsigned ops_per_client = smoke ? 16 : 64;
    const std::vector<unsigned> client_counts =
        smoke ? std::vector<unsigned>{64}
              : std::vector<unsigned>{64, 256};
    const std::vector<htm::BackendKind> backends = {
        htm::BackendKind::htm, htm::BackendKind::globalLock,
        htm::BackendKind::idealHtm, htm::BackendKind::hybrid};
    const std::vector<Profile> profiles = {
        {"readmostly", readMostlyTraffic()},
        {"contended", contendedTraffic()},
    };
    std::vector<htm::MachineConfig> machines;
    if (smoke) {
        machines.push_back(htm::MachineConfig::intelCore());
    } else {
        for (const htm::MachineConfig& machine :
             htm::MachineConfig::all())
            machines.push_back(machine);
    }

    std::printf("%-22s %-6s %-11s %8s %10s %10s %10s %10s %8s\n",
                "machine", "bkend", "profile", "clients", "thru/kcyc",
                "p50", "p99", "p999", "abort%");

    std::vector<RunRow> rows;
    unsigned invariant_failures = 0;
    for (const htm::MachineConfig& machine : machines) {
        for (const Profile& profile : profiles) {
            for (const unsigned clients : client_counts) {
                for (const htm::BackendKind backend : backends) {
                    server::ServerConfig config;
                    config.runtime = htm::RuntimeConfig(machine);
                    config.runtime.backend = backend;
                    config.clients = clients;
                    config.traffic = profile.traffic;
                    config.traffic.opsPerClient = ops_per_client;
                    // Constant aggregate offered load: one request
                    // per 256 cycles across however many clients —
                    // moderate utilization, so median latency stays
                    // near raw service time and the backends separate
                    // in the tail rather than in queueing.
                    config.traffic.meanInterarrivalCycles =
                        std::uint64_t(256) * clients;
                    config.seed = seed;
                    config.indexLock = index_lock;
                    prof::TxProfiler profiler;
                    config.observer = &profiler;

                    RunRow row;
                    row.machine = machine.name;
                    row.backend = backendName(backend);
                    row.profile = profile.name;
                    row.clients = clients;
                    row.result = server::runServer(config);

                    const prof::ProfileReport report =
                        profiler.report();
                    const std::size_t keep =
                        report.sites.size() < 5 ? report.sites.size()
                                                : 5;
                    row.topSites.assign(report.sites.begin(),
                                        report.sites.begin() + keep);

                    if (!row.result.invariantsOk)
                        ++invariant_failures;
                    std::printf(
                        "%-22s %-6s %-11s %8u %10.3f %10llu %10llu "
                        "%10llu %7.1f%%%s\n",
                        row.machine.c_str(), row.backend.c_str(),
                        row.profile.c_str(), clients,
                        row.result.throughputPerKcycle(),
                        (unsigned long long)
                            row.result.latency.percentile(0.50),
                        (unsigned long long)
                            row.result.latency.percentile(0.99),
                        (unsigned long long)
                            row.result.latency.percentile(0.999),
                        row.result.stats.abortRatio() * 100.0,
                        row.result.invariantsOk ? ""
                                                : "  [INVARIANTS]");
                    std::fflush(stdout);
                    rows.push_back(std::move(row));
                }
            }
        }
    }

    std::FILE* out = std::fopen(output_path, "w");
    if (out == nullptr) {
        std::perror(output_path);
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"htmsim-bench-server-v1\",\n"
                 "  \"seed\": %llu,\n"
                 "  \"ops_per_client\": %u,\n"
                 "  \"smoke\": %s,\n"
                 "  \"index_lock\": \"%s\",\n"
                 "  \"runs\": [\n",
                 (unsigned long long)seed, ops_per_client,
                 smoke ? "true" : "false",
                 server::indexLockModeName(index_lock));
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const RunRow& row = rows[i];
        const server::ServerResult& r = row.result;
        std::fprintf(
            out,
            "    {\"machine\": \"%s\", \"backend\": \"%s\", "
            "\"profile\": \"%s\", \"clients\": %u,\n"
            "     \"committed\": %llu, \"horizon_cycles\": %llu, "
            "\"throughput_per_kcycle\": %.4f,\n"
            "     \"latency\": {\"mean\": %.1f, \"p50\": %llu, "
            "\"p99\": %llu, \"p999\": %llu, \"max\": %llu},\n"
            "     \"queue_delay_p99\": %llu,\n"
            "     \"abort_ratio\": %.4f, "
            "\"serialization_ratio\": %.4f, "
            "\"invariants_ok\": %s,\n"
            "     \"index_guard_sections\": %llu, "
            "\"index_guard_elided\": %llu,\n"
            "     \"sites\": [",
            row.machine.c_str(), row.backend.c_str(),
            row.profile.c_str(), row.clients,
            (unsigned long long)r.committedOps,
            (unsigned long long)r.horizonCycles,
            r.throughputPerKcycle(), r.latency.mean(),
            (unsigned long long)r.latency.percentile(0.50),
            (unsigned long long)r.latency.percentile(0.99),
            (unsigned long long)r.latency.percentile(0.999),
            (unsigned long long)r.latency.max(),
            (unsigned long long)r.queueDelay.percentile(0.99),
            r.stats.abortRatio(), r.stats.serializationRatio(),
            r.invariantsOk ? "true" : "false",
            (unsigned long long)r.indexGuardSections,
            (unsigned long long)r.indexGuardElided);
        for (std::size_t s = 0; s < row.topSites.size(); ++s) {
            const prof::SiteProfile& site = row.topSites[s];
            std::fprintf(
                out,
                "%s\n       {\"site\": \"%s\", \"attempts\": %llu, "
                "\"commits\": %llu, \"aborts\": %llu, "
                "\"fallbacks\": %llu, \"committed_cycles\": %llu, "
                "\"wasted_cycles\": %llu, \"stall_cycles\": %llu, "
                "\"lock_wait_cycles\": %llu}",
                s == 0 ? "" : ",", site.name.c_str(),
                (unsigned long long)site.attempts,
                (unsigned long long)site.commits,
                (unsigned long long)site.aborts,
                (unsigned long long)site.fallbackCommits,
                (unsigned long long)site.committedCycles,
                (unsigned long long)site.wastedCycles,
                (unsigned long long)site.stallCycles,
                (unsigned long long)site.lockWaitCycles);
        }
        std::fprintf(out, "]}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"checks\": {\"invariant_failures\": %u}\n"
                 "}\n",
                 invariant_failures);
    std::fclose(out);

    std::printf("\ninvariant failures: %u -> %s\n", invariant_failures,
                output_path);
    return invariant_failures == 0 ? 0 : 1;
}

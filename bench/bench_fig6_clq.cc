/**
 * @file
 * Figure 6: relative execution time of TM variants of the concurrent
 * linked queue versus the lock-free baseline, on zEC12 with 1-16
 * threads. Each thread alternately enqueues and dequeues.
 *
 * Variants: NoRetryTM (single attempt, then lock-free fallback),
 * OptRetryTM (tuned retry count), ConstrainedTM (zEC12 constrained
 * transactions — guaranteed commit, no handler).
 */

#include <cstdio>

#include "clq/concurrent_queue.hh"
#include "sim/sim.hh"

using namespace htmsim;
using namespace htmsim::clq;
using htm::MachineConfig;
using htm::RuntimeConfig;

namespace
{

sim::Cycles
runQueue(QueueMode mode, unsigned threads, int retries,
         std::uint64_t seed)
{
    RuntimeConfig config{MachineConfig::zEC12()};
    sim::Scheduler scheduler(seed);
    htm::Runtime runtime(config, threads);
    ConcurrentQueue queue;
    sim::Barrier barrier(threads);
    sim::Cycles start = 0;
    sim::Cycles finish = 0;
    constexpr unsigned total_pairs = 1600;

    for (unsigned t = 0; t < threads; ++t) {
        scheduler.spawn([&, threads](sim::ThreadContext& ctx) {
            const unsigned share = total_pairs / threads;
            barrier.arrive(ctx);
            if (ctx.id() == 0)
                start = ctx.now();
            for (unsigned i = 0; i < share; ++i) {
                queue.enqueue(runtime, ctx, ctx.id() * 1000 + i, mode,
                              retries);
                std::uint64_t out = 0;
                queue.dequeue(runtime, ctx, &out, mode, retries);
            }
            barrier.arrive(ctx);
            if (ctx.id() == 0)
                finish = ctx.now();
        });
    }
    scheduler.run();
    return finish - start;
}

} // namespace

int
main()
{
    std::printf("Figure 6: ConcurrentLinkedQueue on zEC12 — execution "
                "time relative to the\nlock-free baseline (lower is "
                "better)\n");
    std::printf("%-8s %12s %12s %14s\n", "threads", "NoRetryTM",
                "OptRetryTM", "ConstrainedTM");

    for (const unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
        const sim::Cycles base =
            runQueue(QueueMode::lockFree, threads, 0, 1);

        const sim::Cycles no_retry =
            runQueue(QueueMode::noRetryTm, threads, 1, 1);

        // OptRetryTM: pick the best retry count (the paper tunes it).
        sim::Cycles opt_retry = ~sim::Cycles(0);
        for (const int retries : {2, 4, 8, 16}) {
            opt_retry = std::min(
                opt_retry,
                runQueue(QueueMode::optRetryTm, threads, retries, 1));
        }

        const sim::Cycles constrained =
            runQueue(QueueMode::constrainedTm, threads, 0, 1);

        std::printf("%-8u %12.2f %12.2f %14.2f\n", threads,
                    double(no_retry) / double(base),
                    double(opt_retry) / double(base),
                    double(constrained) / double(base));
    }
    std::printf(
        "\nPaper shape: TM variants beat the lock-free baseline below "
        "~4 threads\n(shorter path); NoRetryTM degrades beyond 2 "
        "threads; ConstrainedTM tracks\nOptRetryTM without any "
        "fallback code or tuning.\n");
    return 0;
}

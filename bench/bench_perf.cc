/**
 * @file
 * Host-time benchmark harness: the perf trajectory of the simulator
 * itself.
 *
 * Runs the paper's STAMP x machine grid (the Figure 2 cells, full
 * retry-count tuning) and measures what the other benches do not:
 * host wall-clock per cell and simulated-commit throughput (committed
 * transactions per host second). Emits machine-readable
 * BENCH_perf.json so successive PRs can compare.
 *
 * Each tuning candidate runs in a forked child process. This isolates
 * the host heap: simulated timings depend on allocation layout (line
 * numbers are derived from real addresses), and forking gives every
 * run the same parent image regardless of which runs came before it.
 * The per-candidate simulated metrics in the JSON are therefore
 * directly comparable across builds — a hot-path refactor that claims
 * bit-identical model behavior must reproduce them exactly (run under
 * `setarch -R` to also pin ASLR).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "access_micro.hh"
#include "suite.hh"

namespace
{

using namespace htmsim;
using Clock = std::chrono::steady_clock;

std::uint64_t
elapsedNs(Clock::time_point start, Clock::time_point finish)
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(finish -
                                                             start)
            .count());
}

/** One tuning candidate's outcome: host cost + simulated metrics.
 *  Trivially copyable: sent raw over the child->parent pipe. */
struct CandidateResult
{
    std::uint64_t hostNs = 0;   ///< seq + tm run, host wall-clock
    std::uint64_t hostTmNs = 0; ///< tm share (by simulated cycles)
    std::uint64_t seqCycles = 0;
    std::uint64_t tmCycles = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::array<std::uint64_t, htm::numAbortCauses> causes{};
    double ratio = 0.0;
};

/** Run one tuning candidate (sequential baseline + tm run). */
CandidateResult
runCandidate(const std::string& bench,
             const htm::MachineConfig& machine,
             const htm::RuntimeConfig& config, unsigned threads,
             std::uint64_t seed)
{
    bench::SuiteRunner runner(false);
    CandidateResult candidate;
    const auto start = Clock::now();
    const stamp::Speedup speedup =
        runner.run(bench, config, machine, threads, true, seed);
    const auto finish = Clock::now();
    candidate.hostNs = elapsedNs(start, finish);
    // The sequential baseline is identical across candidates and
    // cheap; attribute host time to the tm run proportionally to
    // simulated cycles instead of timing the phases separately.
    const double total_cycles =
        double(speedup.seq.cycles) + double(speedup.tm.cycles);
    const double tm_share = total_cycles == 0.0
                                ? 0.0
                                : double(speedup.tm.cycles) /
                                      total_cycles;
    candidate.hostTmNs =
        std::uint64_t(double(candidate.hostNs) * tm_share);
    candidate.seqCycles = speedup.seq.cycles;
    candidate.tmCycles = speedup.tm.cycles;
    candidate.commits = speedup.tm.stats.totalCommits();
    candidate.aborts = speedup.tm.stats.totalAborts();
    candidate.causes = speedup.tm.stats.trueCauseAborts;
    candidate.ratio = speedup.ratio;
    return candidate;
}

/** Fork, run one candidate in the child, receive the raw result. */
bool
runCandidateForked(const std::string& bench,
                   const htm::MachineConfig& machine,
                   const htm::RuntimeConfig& config, unsigned threads,
                   std::uint64_t seed, CandidateResult& result)
{
    int fds[2];
    if (::pipe(fds) != 0) {
        std::perror("pipe");
        return false;
    }
    const pid_t child = ::fork();
    if (child < 0) {
        std::perror("fork");
        return false;
    }
    if (child == 0) {
        ::close(fds[0]);
        const CandidateResult candidate =
            runCandidate(bench, machine, config, threads, seed);
        const char* cursor =
            reinterpret_cast<const char*>(&candidate);
        std::size_t remaining = sizeof(candidate);
        while (remaining > 0) {
            const ssize_t written = ::write(fds[1], cursor, remaining);
            if (written <= 0)
                ::_exit(2);
            cursor += written;
            remaining -= std::size_t(written);
        }
        ::_exit(0);
    }
    ::close(fds[1]);
    char* cursor = reinterpret_cast<char*>(&result);
    std::size_t remaining = sizeof(result);
    bool ok = true;
    while (remaining > 0) {
        const ssize_t got = ::read(fds[0], cursor, remaining);
        if (got <= 0) {
            ok = false;
            break;
        }
        cursor += got;
        remaining -= std::size_t(got);
    }
    ::close(fds[0]);
    int status = 0;
    ::waitpid(child, &status, 0);
    return ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

struct CellResult
{
    std::string bench;
    std::string machine;
    std::vector<CandidateResult> candidates;

    std::uint64_t
    hostNs() const
    {
        std::uint64_t sum = 0;
        for (const auto& candidate : candidates)
            sum += candidate.hostNs;
        return sum;
    }

    std::uint64_t
    hostTmNs() const
    {
        std::uint64_t sum = 0;
        for (const auto& candidate : candidates)
            sum += candidate.hostTmNs;
        return sum;
    }

    std::uint64_t
    committedTx() const
    {
        std::uint64_t sum = 0;
        for (const auto& candidate : candidates)
            sum += candidate.commits;
        return sum;
    }

    /** Committed transactions per host second of transactional runs. */
    double
    txPerSec() const
    {
        const std::uint64_t ns = hostTmNs();
        return ns == 0 ? 0.0
                       : double(committedTx()) * 1e9 / double(ns);
    }

    /** Best speed-up over the tuning grid (the paper's reporting). */
    double
    bestRatio() const
    {
        double best = 0.0;
        bool first = true;
        for (const auto& candidate : candidates) {
            if (first || candidate.ratio > best) {
                best = candidate.ratio;
                first = false;
            }
        }
        return best;
    }
};

void
writeCellJson(std::FILE* out, const CellResult& cell)
{
    std::fprintf(out,
                 "    {\"bench\": \"%s\", \"machine\": \"%s\",\n"
                 "     \"host_ns\": %llu, \"host_tm_ns\": %llu,\n"
                 "     \"committed_tx\": %llu, \"tx_per_sec\": %.1f,\n"
                 "     \"best_speedup\": %.4f,\n"
                 "     \"candidates\": [\n",
                 cell.bench.c_str(), cell.machine.c_str(),
                 (unsigned long long)cell.hostNs(),
                 (unsigned long long)cell.hostTmNs(),
                 (unsigned long long)cell.committedTx(),
                 cell.txPerSec(), cell.bestRatio());
    for (std::size_t i = 0; i < cell.candidates.size(); ++i) {
        const CandidateResult& candidate = cell.candidates[i];
        std::fprintf(out,
                     "      {\"seq_cycles\": %llu, \"tm_cycles\": %llu, "
                     "\"commits\": %llu, \"aborts\": %llu, "
                     "\"causes\": [",
                     (unsigned long long)candidate.seqCycles,
                     (unsigned long long)candidate.tmCycles,
                     (unsigned long long)candidate.commits,
                     (unsigned long long)candidate.aborts);
        for (std::size_t c = 0; c < candidate.causes.size(); ++c) {
            std::fprintf(out, "%s%llu", c == 0 ? "" : ", ",
                         (unsigned long long)candidate.causes[c]);
        }
        std::fprintf(out, "]}%s\n",
                     i + 1 < cell.candidates.size() ? "," : "");
    }
    std::fprintf(out, "    ]}");
}

} // namespace

int
main(int argc, char** argv)
{
    const char* output_path = "BENCH_perf.json";
    bool batch = true;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-o") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "usage: %s [--no-batch] [-o output.json]\n",
                             argv[0]);
                return 2;
            }
            output_path = argv[++i];
        } else if (std::strcmp(argv[i], "--no-batch") == 0) {
            // Escape hatch: disable the epoch-batched sync() fast
            // path (DESIGN.md Section 5). Simulated metrics must be
            // bit-identical either way; only host time may differ.
            batch = false;
        } else {
            output_path = argv[i];
        }
    }
    const unsigned threads = 4;
    const std::uint64_t seed = 1;
    const bool use_fork = std::getenv("HTMSIM_PERF_NOFORK") == nullptr;

    std::vector<CellResult> cells;
    const auto suite_start = Clock::now();
    for (const htm::MachineConfig& machine :
         htm::MachineConfig::all()) {
        for (const std::string& bench : bench::suiteNames()) {
            CellResult cell;
            cell.bench = bench;
            cell.machine = machine.name;
            // Children inherit the parent's heap image, and the
            // simulated metrics hash heap addresses — so the
            // candidate vector is scoped to die before the cell is
            // appended, exactly where a ranged-for temporary would.
            // Letting it outlive the push_back reorders the parent's
            // allocations and shifts every later cell's metrics.
            {
                auto candidates =
                    bench::SuiteRunner::tuningCandidates(machine);
                if (!batch) {
                    for (htm::RuntimeConfig& config : candidates)
                        config.batchEpoch = false;
                }
                for (const htm::RuntimeConfig& config : candidates) {
                    CandidateResult candidate;
                    if (use_fork) {
                        if (!runCandidateForked(bench, machine,
                                                config, threads, seed,
                                                candidate)) {
                            std::fprintf(
                                stderr,
                                "cell %s/%s failed in child\n",
                                bench.c_str(), machine.name.c_str());
                            return 1;
                        }
                    } else {
                        candidate = runCandidate(bench, machine,
                                                 config, threads,
                                                 seed);
                    }
                    cell.candidates.push_back(candidate);
                }
            }
            std::printf("%-14s %-22s %8.1f ms  %10.0f tx/s  "
                        "speedup %.2f\n",
                        cell.bench.c_str(), cell.machine.c_str(),
                        double(cell.hostNs()) / 1e6, cell.txPerSec(),
                        cell.bestRatio());
            std::fflush(stdout);
            cells.push_back(std::move(cell));
        }
    }
    const auto suite_finish = Clock::now();

    // Per-access cost microbenchmark, recorded alongside the grid
    // (see access_micro.hh). Runs after every child has forked, so it
    // cannot perturb the heap image the grid metrics depend on.
    htm::RuntimeConfig access_config{htm::MachineConfig::intelCore()};
    access_config.batchEpoch = batch;
    const std::vector<bench::AccessResult> access_rows =
        bench::runAccessSweep(access_config);
    std::printf("\n%-12s %8s %10s\n", "access", "threads",
                "ns/access");
    for (const bench::AccessResult& row : access_rows) {
        std::printf("%-12s %8u %10.1f\n", row.pattern, row.threads,
                    row.nsPerAccess());
    }

    // Geomean of per-cell host times: the suite-level trajectory
    // metric (robust to one cell dominating).
    double log_sum = 0.0;
    std::uint64_t total_ns = 0;
    for (const CellResult& cell : cells) {
        log_sum += std::log(double(cell.hostNs()));
        total_ns += cell.hostNs();
    }
    const double geomean_ns =
        cells.empty() ? 0.0 : std::exp(log_sum / double(cells.size()));

    std::FILE* out = std::fopen(output_path, "w");
    if (out == nullptr) {
        std::perror(output_path);
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"htmsim-bench-perf-v1\",\n"
                 "  \"threads\": %u,\n"
                 "  \"seed\": %llu,\n"
                 "  \"scale\": %.3f,\n"
                 "  \"total_host_ns\": %llu,\n"
                 "  \"wall_host_ns\": %llu,\n"
                 "  \"geomean_cell_host_ns\": %.0f,\n"
                 "  \"cells\": [\n",
                 threads, (unsigned long long)seed,
                 bench::workloadScale(),
                 (unsigned long long)total_ns,
                 (unsigned long long)elapsedNs(suite_start,
                                               suite_finish),
                 geomean_ns);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        writeCellJson(out, cells[i]);
        std::fprintf(out, "%s\n", i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"access\": [\n");
    for (std::size_t i = 0; i < access_rows.size(); ++i) {
        const bench::AccessResult& row = access_rows[i];
        std::fprintf(
            out,
            "    {\"pattern\": \"%s\", \"threads\": %u, "
            "\"accesses\": %llu, \"host_ns\": %llu, "
            "\"ns_per_access\": %.2f, \"tm_cycles\": %llu, "
            "\"commits\": %llu, \"aborts\": %llu}%s\n",
            row.pattern, row.threads,
            (unsigned long long)row.accesses,
            (unsigned long long)row.hostNs, row.nsPerAccess(),
            (unsigned long long)row.tmCycles,
            (unsigned long long)row.commits,
            (unsigned long long)row.aborts,
            i + 1 < access_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);

    std::printf("\ntotal %.1f ms (geomean cell %.1f ms) -> %s\n",
                double(total_ns) / 1e6, geomean_ns / 1e6, output_path);
    return 0;
}

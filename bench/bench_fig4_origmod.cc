/**
 * @file
 * Figure 4: original vs modified STAMP, 4-thread speed-ups.
 *
 * Only the four benchmarks the paper changed (genome chunk tuning,
 * intruder and vacation data-structure substitutions, kmeans
 * alignment) differ between variants; the geometric means cover the
 * whole suite as in the paper.
 */

#include <cmath>
#include <cstdio>

#include "suite.hh"

using namespace htmsim;
using namespace htmsim::bench;

int
main()
{
    const unsigned threads = 4;
    SuiteRunner runner;

    const std::vector<std::string> changed = {
        "genome",        "intruder",     "kmeans-high",
        "kmeans-low",    "vacation-high", "vacation-low"};

    std::printf("Figure 4: original vs modified STAMP speed-ups "
                "(4 threads)\n");
    std::printf("%-14s %-4s %10s %10s %8s\n", "benchmark", "mach",
                "original", "modified", "gain");

    double geomean_orig[4] = {1.0, 1.0, 1.0, 1.0};
    double geomean_mod[4] = {1.0, 1.0, 1.0, 1.0};
    unsigned counted = 0;

    for (const std::string& bench : suiteNames()) {
        const bool was_changed =
            std::find(changed.begin(), changed.end(), bench) !=
            changed.end();
        for (unsigned m = 0; m < 4; ++m) {
            const Speedup modified = runner.measure(
                bench, MachineConfig::all()[m], threads, true);
            const Speedup original =
                was_changed
                    ? runner.measure(bench, MachineConfig::all()[m],
                                     threads, false)
                    : modified;
            if (was_changed) {
                std::printf("%-14s %-4s %10.2f %10.2f %7.2fx\n",
                            bench.c_str(), machineLabel(m),
                            original.ratio, modified.ratio,
                            original.ratio > 0
                                ? modified.ratio / original.ratio
                                : 0.0);
            }
            geomean_orig[m] *= original.ratio;
            geomean_mod[m] *= modified.ratio;
        }
        ++counted;
    }

    std::printf("\n%-14s %-4s %10s %10s\n", "geomean(all)", "mach",
                "original", "modified");
    for (unsigned m = 0; m < 4; ++m) {
        std::printf("%-14s %-4s %10.2f %10.2f\n", "", machineLabel(m),
                    std::pow(geomean_orig[m], 1.0 / counted),
                    std::pow(geomean_mod[m], 1.0 / counted));
    }
    std::printf(
        "\nPaper shape: POWER8 gains most (3.7x in genome, >1.4x in "
        "intruder and\nvacation) because the modifications remove "
        "capacity overflows; kmeans\nalignment helps zEC12 and Intel "
        "~20-30%%.\n");
    return 0;
}

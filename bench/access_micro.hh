/**
 * @file
 * Per-access cost microbenchmark: tight transactional load/store loops
 * with the application logic stripped away, so the simulator's
 * per-access overhead (clocking, scheduling rendezvous, conflict and
 * capacity probes) is measurable in isolation.
 *
 * Two sharing patterns at 1/2/4 threads:
 *
 *  - uncontended: each thread walks a private array slice, so no
 *    conflict ever resolves against another thread and the scheduler
 *    ping-pongs purely on virtual-time ordering. This is the epoch
 *    batching fast path's best case (DESIGN.md Section 5).
 *  - contended: all threads walk the same array, so conflict
 *    resolution, aborts and retries dominate. This bounds the fast
 *    path's worst case.
 *
 * Used by bench_access (standalone table) and bench_perf (numbers
 * recorded in BENCH_perf.json alongside the grid).
 */

#ifndef HTMSIM_BENCH_ACCESS_MICRO_HH
#define HTMSIM_BENCH_ACCESS_MICRO_HH

#include <chrono>
#include <cstdint>
#include <vector>

#include "htm/runtime.hh"
#include "sim/sim.hh"

namespace htmsim::bench
{

/** One microbenchmark cell. */
struct AccessResult
{
    const char* pattern = "";     ///< "uncontended" | "contended"
    unsigned threads = 0;
    std::uint64_t accesses = 0;   ///< simulated loads + stores issued
    std::uint64_t hostNs = 0;     ///< host wall-clock for the run
    std::uint64_t tmCycles = 0;   ///< simulated makespan
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;

    double
    nsPerAccess() const
    {
        return accesses == 0 ? 0.0
                             : double(hostNs) / double(accesses);
    }
};

/**
 * Run one access-loop cell: every thread executes @p txs transactions
 * of @p accesses_per_tx loads+stores over @p words shared words.
 * @p contended shares one array among all threads; otherwise each
 * thread works a disjoint slice.
 */
inline AccessResult
runAccessCell(const htm::RuntimeConfig& base_config, unsigned threads,
              bool contended, unsigned txs = 4000,
              unsigned accesses_per_tx = 16, unsigned words = 4096)
{
    htm::RuntimeConfig config = base_config;
    AccessResult result;
    result.pattern = contended ? "contended" : "uncontended";
    result.threads = threads;

    std::vector<std::uint64_t> data(words, 1);
    const auto start = std::chrono::steady_clock::now();

    sim::Scheduler scheduler(1);
    scheduler.setBatching(config.batchEpoch);
    htm::Runtime runtime(config, threads);
    for (unsigned t = 0; t < threads; ++t) {
        scheduler.spawn([&, t](sim::ThreadContext& ctx) {
            // Disjoint slices when uncontended; full overlap when
            // contended. Strides are odd so walks wrap the whole
            // range instead of cycling a few lines.
            const unsigned slice = words / threads;
            const unsigned lo = contended ? 0 : t * slice;
            const unsigned span = contended ? words : slice;
            for (unsigned i = 0; i < txs; ++i) {
                runtime.atomic(ctx, [&](htm::Tx& tx) {
                    unsigned index = (i * 17 + t * 5) % span;
                    std::uint64_t sum = 0;
                    for (unsigned a = 0; a < accesses_per_tx; ++a) {
                        std::uint64_t* word =
                            &data[lo + (index % span)];
                        if ((a & 3) == 3)
                            tx.store(word, sum);
                        else
                            sum += tx.load(word);
                        index += 13;
                    }
                });
            }
        });
    }
    scheduler.run();

    const auto finish = std::chrono::steady_clock::now();
    result.hostNs = std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(finish -
                                                             start)
            .count());
    result.accesses = std::uint64_t(threads) * txs * accesses_per_tx;
    result.tmCycles = scheduler.makespan();
    const htm::TxStats stats = runtime.stats();
    result.commits = stats.totalCommits();
    result.aborts = stats.totalAborts();
    return result;
}

/** The standard bench_access sweep: both patterns at 1/2/4 threads. */
inline std::vector<AccessResult>
runAccessSweep(const htm::RuntimeConfig& config)
{
    std::vector<AccessResult> results;
    for (const bool contended : {false, true}) {
        for (const unsigned threads : {1u, 2u, 4u})
            results.push_back(
                runAccessCell(config, threads, contended));
    }
    return results;
}

} // namespace htmsim::bench

#endif // HTMSIM_BENCH_ACCESS_MICRO_HH

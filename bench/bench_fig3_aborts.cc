/**
 * @file
 * Figure 3: transaction-abort ratios with 4 threads (modified STAMP),
 * broken down into capacity-overflow / data-conflict / other /
 * lock-conflict as seen through each machine's abort-reason codes;
 * Blue Gene/Q reports everything as unclassified.
 */

#include <cstdio>

#include "suite.hh"

using namespace htmsim;
using namespace htmsim::bench;
using htm::AbortCategory;

int
main()
{
    const unsigned threads = 4;
    SuiteRunner runner;

    std::printf("Figure 3: 4-thread transaction-abort ratios (%%), "
                "modified STAMP\n");
    std::printf("%-14s %-4s %7s | %6s %6s %6s %6s %6s | %6s\n",
                "benchmark", "mach", "abort%", "cap", "data", "other",
                "lock", "uncl", "serl%");

    for (const std::string& bench : suiteNames()) {
        for (unsigned m = 0; m < 4; ++m) {
            const Speedup result = runner.measure(
                bench, MachineConfig::all()[m], threads);
            const htm::TxStats& stats = result.tm.stats;
            const double abort_pct = stats.abortRatio() * 100.0;
            auto share = [&](AbortCategory category) {
                return stats.reportedFraction(category) * abort_pct;
            };
            std::printf(
                "%-14s %-4s %7.1f | %6.1f %6.1f %6.1f %6.1f %6.1f "
                "| %6.1f\n",
                bench.c_str(), machineLabel(m), abort_pct,
                share(AbortCategory::capacityOverflow),
                share(AbortCategory::dataConflict),
                share(AbortCategory::other),
                share(AbortCategory::lockConflict),
                share(AbortCategory::unclassified),
                stats.serializationRatio() * 100.0);
        }
    }
    std::printf(
        "\nPaper shape: zEC12 dominated by transient cache-fetch "
        "(other) aborts;\nPOWER8 heavy on capacity in "
        "intruder/vacation/yada; Blue Gene/Q entirely\nunclassified; "
        "yada serialization ~10%% (BG) vs ~20%% (others).\n");
    return 0;
}

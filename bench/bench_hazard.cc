/**
 * @file
 * Throughput degradation under deterministic hazard injection
 * (DESIGN.md Section on the hazard model; src/htm/hazard.hh).
 *
 * For each machine and each retry policy (the machine's paper default
 * vs the hardened starvation-proof policy), sweep the spurious
 * transient-abort probability from 0 to 1e-2 (the paper-relevant
 * range: real HTMs see spurious aborts from interrupts, TLB misses
 * and cache-geometry effects) plus two collapse points far past it,
 * and report speed-up, abort ratio, serialization and the hazard
 * attribution counters. The interesting shape: the default policies
 * degrade gracefully in-range but serialize hard at the collapse
 * points, while the hardened policy's watchdog bounds how much a
 * hazard storm can burn before the fallback lock restores progress.
 *
 * One representative benchmark (vacation-low: mid-size transactions,
 * real contention, runs on all four machines) at 4 threads, seed 1.
 */

#include <cstdio>

#include "suite.hh"

using namespace htmsim;
using namespace htmsim::bench;

int
main()
{
    SuiteRunner runner;
    const char* bench = "vacation-low";
    const double rates[] = {0.0, 1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.25};

    std::printf("Throughput vs spurious-abort rate "
                "(%s, 4 threads, seed 1)\n",
                bench);
    for (const MachineConfig& machine : MachineConfig::all()) {
        for (const auto [kind, policy_name] :
             {std::pair{htm::RetryPolicyKind::machineDefault,
                        "default"},
              std::pair{htm::RetryPolicyKind::hardened, "hardened"}}) {
            std::printf("\n%s, %s policy\n", machine.name.c_str(),
                        policy_name);
            std::printf("| %8s | %8s | %7s | %7s | %7s | %9s |\n",
                        "rate", "speed-up", "abort%", "serial%",
                        "waste%", "hzd-abrts");
            std::printf("|---------:|---------:|--------:|--------:|"
                        "--------:|----------:|\n");
            for (const double rate : rates) {
                RuntimeConfig config{machine};
                config.policyKind = kind;
                config.hazard.enabled = rate != 0.0;
                config.hazard.spuriousAbortProb = rate;
                const Speedup result =
                    runner.run(bench, config, machine, 4, true, 1);
                const htm::TxStats& stats = result.tm.stats;
                std::printf("| %8.0e | %8.2f | %6.1f%% | %6.1f%% | "
                            "%6.1f%% | %9llu |\n",
                            rate, result.ratio,
                            stats.abortRatio() * 100.0,
                            stats.serializationRatio() * 100.0,
                            stats.wastedWorkRatio() * 100.0,
                            (unsigned long long) stats.hazardAborts());
                if (!result.tm.valid) {
                    std::printf("VERIFICATION FAILED at rate %g\n",
                                rate);
                    return 1;
                }
            }
        }
    }
    return 0;
}

/**
 * @file
 * Figure 11: 90-percentile transactional-store sizes vs 4-thread
 * abort ratios (companion of Figure 10 for the store budgets, which
 * are far smaller than the load budgets on every machine).
 */

#include <cstdio>

#include "suite.hh"

using namespace htmsim;
using namespace htmsim::bench;

int
main()
{
    SuiteRunner runner;
    std::printf("Figure 11: 90-pct transactional-store size (KB) vs "
                "abort ratio (%%), 4 threads\n");
    std::printf("%-14s %-4s %13s %10s %15s\n", "benchmark", "mach",
                "store90 (KB)", "abort %", "store capacity");
    for (const std::string& bench : suiteNames()) {
        if (bench == "bayes")
            continue;
        for (unsigned m = 0; m < 4; ++m) {
            const MachineConfig& machine = MachineConfig::all()[m];
            RuntimeConfig traced{machine};
            traced.collectTrace = true;
            traced.ignoreCapacity = true;
            const Speedup trace_run =
                runner.run(bench, traced, machine, 1, true, 1);
            const double store_kb =
                trace_run.tm.trace.storePercentileBytes(
                    0.90, machine.capacityLineBytes) /
                1024.0;

            const Speedup tuned = runner.measure(bench, machine, 4);
            std::printf("%-14s %-4s %13.2f %10.1f %12zu KB%s\n",
                        bench.c_str(), machineLabel(m), store_kb,
                        tuned.tm.stats.abortRatio() * 100.0,
                        machine.storeCapacityBytes >> 10,
                        store_kb * 1024.0 >
                                double(machine.storeCapacityBytes)
                            ? "  << OVER"
                            : "");
        }
    }
    std::printf("\nPaper shape: store footprints exceed the 8 KB "
                "budgets (zEC12, POWER8)\nfor labyrinth and yada — "
                "the motivation for the paper's 'larger\n"
                "transactional-store capacity' recommendation "
                "(Section 7).\n");
    return 0;
}

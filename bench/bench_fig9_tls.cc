/**
 * @file
 * Figure 9: TLS speed-up over sequential with and without the
 * POWER8 suspend/resume instructions, for the milc-like and
 * sphinx3-like loop kernels, on 1-6 threads.
 */

#include <cstdio>

#include "tls/tls.hh"

using namespace htmsim;
using namespace htmsim::tls;
using htm::MachineConfig;
using htm::RuntimeConfig;

namespace
{

void
runKernel(const char* name, const TlsParams& params)
{
    std::printf("%s\n", name);
    std::printf("  %-8s %18s %18s\n", "threads",
                "without susp/res", "with susp/res");
    const RuntimeConfig config{MachineConfig::power8()};

    TlsKernel baseline(params);
    const sim::Cycles seq =
        baseline.runSequential(config.machine, 1);

    for (const unsigned threads : {1u, 2u, 3u, 4u, 5u, 6u}) {
        TlsKernel without_kernel(params);
        const TlsResult without =
            without_kernel.runTls(config, threads, false, 1);
        TlsKernel with_kernel(params);
        const TlsResult with =
            with_kernel.runTls(config, threads, true, 1);
        if (!without.valid || !with.valid) {
            std::fprintf(stderr, "TLS produced a wrong result!\n");
            std::exit(1);
        }
        std::printf("  %-8u %10.2f (%4.1f%%) %10.2f (%4.1f%%)\n",
                    threads, double(seq) / double(without.cycles),
                    without.abortRatio * 100.0,
                    double(seq) / double(with.cycles),
                    with.abortRatio * 100.0);
    }
    std::printf("  (abort ratios in parentheses)\n\n");
}

} // namespace

int
main()
{
    std::printf("Figure 9: TLS on POWER8 — speed-up over sequential\n\n");
    runKernel("433.milc-like kernel", TlsParams::milcLike());
    runKernel("482.sphinx3-like kernel", TlsParams::sphinxLike());
    std::printf(
        "Paper shape: suspend/resume cuts the sphinx3 abort ratio "
        "from ~69%% to\n~0.1%% and adds ~12%% speed-up; milc keeps "
        "~10%% residual false conflicts\nand gains only ~2%%.\n");
    return 0;
}

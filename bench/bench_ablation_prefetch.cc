/**
 * @file
 * Section 5.1 prefetch experiment: the paper disabled Intel Core's
 * hardware prefetcher and saw kmeans-high/-low abort ratios fall from
 * 16%/24% to 10%/10% and speed-ups rise from 3.5/3.7 to 3.9/4.0.
 * This bench flips the model's prefetcher switch.
 */

#include <cstdio>

#include "suite.hh"

using namespace htmsim;
using namespace htmsim::bench;

int
main()
{
    SuiteRunner runner;
    const MachineConfig intel = MachineConfig::intelCore();

    std::printf("Section 5.1 ablation: Intel adjacent-line prefetcher "
                "on/off (4 threads)\n");
    std::printf("%-14s %-9s %10s %10s\n", "benchmark", "prefetch",
                "speed-up", "abort %");

    for (const std::string& bench :
         {std::string("kmeans-high"), std::string("kmeans-low")}) {
        for (const bool enabled : {true, false}) {
            // Tune retry counts per configuration, like the paper.
            Speedup best;
            bool first = true;
            for (RuntimeConfig config :
                 SuiteRunner::tuningCandidates(intel)) {
                config.intel.prefetchEnabled = enabled;
                const Speedup current =
                    runner.run(bench, config, intel, 4, true, 1);
                if (first || current.ratio > best.ratio) {
                    best = current;
                    first = false;
                }
            }
            std::printf("%-14s %-9s %10.2f %10.1f\n", bench.c_str(),
                        enabled ? "on" : "off", best.ratio,
                        best.tm.stats.abortRatio() * 100.0);
        }
    }
    std::printf("\nPaper shape: disabling the prefetcher lowers the "
                "kmeans abort ratios and\nraises the speed-ups — the "
                "prefetched neighbour lines were raising\n"
                "unnecessary data conflicts (validated by Intel "
                "developers).\n");
    return 0;
}

/**
 * @file
 * Table 1: HTM implementation characteristics of the four machines.
 */

#include <cstdio>

#include "htm/machine.hh"

using htmsim::htm::MachineConfig;

namespace
{

void
printBytes(const char* label, std::size_t bg, std::size_t z12,
           std::size_t ic, std::size_t p8)
{
    auto human = [](std::size_t bytes) {
        static char buffers[8][32];
        static int next = 0;
        char* out = buffers[next++ % 8];
        if (bytes >= (1u << 20) && bytes % (1u << 20) == 0)
            std::snprintf(out, 32, "%zu MB", bytes >> 20);
        else if (bytes >= 1024 && bytes % 1024 == 0)
            std::snprintf(out, 32, "%zu KB", bytes >> 10);
        else
            std::snprintf(out, 32, "%zu B", bytes);
        return out;
    };
    std::printf("%-28s %-22s %-14s %-14s %-10s\n", label, human(bg),
                human(z12), human(ic), human(p8));
}

} // namespace

int
main()
{
    const auto& machines = MachineConfig::all();
    const MachineConfig& bg = machines[0];
    const MachineConfig& z12 = machines[1];
    const MachineConfig& ic = machines[2];
    const MachineConfig& p8 = machines[3];

    std::printf("Table 1: HTM implementations\n");
    std::printf("%-28s %-22s %-14s %-14s %-10s\n", "Processor type",
                bg.name.c_str(), z12.name.c_str(), "Core i7-4770",
                p8.name.c_str());
    std::printf("%-28s %-22s %-14s %-14s %-10s\n",
                "Conflict granularity", "8 - 128 bytes", "256 bytes",
                "64 bytes", "128 bytes");
    printBytes("Tx-load capacity", bg.loadCapacityBytes,
               z12.loadCapacityBytes, ic.loadCapacityBytes,
               p8.loadCapacityBytes);
    printBytes("Tx-store capacity", bg.storeCapacityBytes,
               z12.storeCapacityBytes, ic.storeCapacityBytes,
               p8.storeCapacityBytes);
    std::printf("%-28s %-22s %-14s %-14s %-10s\n", "L1 data cache",
                bg.l1Description.c_str(), z12.l1Description.c_str(),
                ic.l1Description.c_str(), p8.l1Description.c_str());
    std::printf("%-28s %-22s %-14s %-14s %-10s\n", "L2 data cache",
                bg.l2Description.c_str(), z12.l2Description.c_str(),
                ic.l2Description.c_str(), p8.l2Description.c_str());
    std::printf("%-28s %-22u %-14s %-14u %-10u\n", "SMT level",
                bg.smtWays, "None", ic.smtWays, p8.smtWays);
    std::printf("%-28s %-22s %-14u %-14u %-10u\n",
                "Kinds of abort reasons", "-", z12.abortReasonKinds,
                ic.abortReasonKinds, p8.abortReasonKinds);
    std::printf("%-28s %-22u %-14u %-14u %-10u\n", "Physical cores",
                bg.numCores, z12.numCores, ic.numCores, p8.numCores);
    std::printf("%-28s %-22.1f %-14.1f %-14.1f %-10.1f\n",
                "Clock (GHz, informational)", bg.clockGhz, z12.clockGhz,
                ic.clockGhz, p8.clockGhz);
    return 0;
}

/**
 * @file
 * Figure 7: RTM vs HLE on Intel Core, 4 threads, modified STAMP.
 * RTM uses tuned retry counts (the Figure 2 numbers); HLE elides a
 * global lock with a single hardware attempt and no tuning.
 */

#include <cmath>
#include <cstdio>

#include "suite.hh"

using namespace htmsim;
using namespace htmsim::bench;

int
main()
{
    const unsigned threads = 4;
    SuiteRunner runner;
    const MachineConfig intel = MachineConfig::intelCore();

    std::printf("Figure 7: RTM vs HLE speed-up over sequential "
                "(Intel Core, 4 threads)\n");
    std::printf("%-14s %8s %8s %8s\n", "benchmark", "RTM", "HLE",
                "HLE/RTM");

    double geomean_rtm = 1.0;
    double geomean_hle = 1.0;
    unsigned counted = 0;
    for (const std::string& bench : suiteNames()) {
        const Speedup rtm = runner.measure(bench, intel, threads);
        const Speedup hle = runner.measureHle(bench, intel, threads);
        if (!hle.tm.valid) {
            std::fprintf(stderr, "%s failed under HLE!\n",
                         bench.c_str());
            return 1;
        }
        std::printf("%-14s %8.2f %8.2f %7.0f%%\n", bench.c_str(),
                    rtm.ratio, hle.ratio,
                    rtm.ratio > 0 ? 100.0 * hle.ratio / rtm.ratio
                                  : 0.0);
        geomean_rtm *= rtm.ratio;
        geomean_hle *= hle.ratio;
        ++counted;
    }
    std::printf("%-14s %8.2f %8.2f %7.0f%%\n", "geomean",
                std::pow(geomean_rtm, 1.0 / counted),
                std::pow(geomean_hle, 1.0 / counted),
                100.0 * std::pow(geomean_hle / geomean_rtm,
                                 1.0 / counted));
    std::printf("\nPaper shape: HLE reaches ~80%% of tuned RTM on "
                "average — modest speed-ups\nwith zero tuning "
                "effort.\n");
    return 0;
}

/**
 * @file
 * Sync-library benchmark: elision vs. TATAS vs. global lock across the
 * adversarial tmsync contention scenarios.
 *
 * Sweeps the four machine models x five scenarios (reader_heavy,
 * lock_convoy, mixed_waiters, shared_scan, ping_pong) x three lock
 * modes (elided, tatas, global-lock; ping_pong skips global-lock —
 * condvar wait cannot release a mutex the guard never acquired) and
 * reports guarded-section throughput, the fraction of sections that
 * committed on the speculative path, and the abort/serialization
 * ratios. Every cell runs under the liveness oracle (LivenessChecker)
 * with a txprof profiler riding along behind it, so the JSON can
 * attribute each mode's cycles to the scenario's transaction sites —
 * where the reader_heavy crossover comes from is a txprof question,
 * not a guess (EXPERIMENTS.md, "Sync-library elision").
 *
 * Usage: bench_sync [--smoke] [--seeds K] [-o OUT.json]
 *   --smoke:   one machine (Intel), short horizon — the CI
 *              quick-workflow variant.
 *   --seeds K: repeat every cell for seeds 1..K (one JSON row each).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/liveness.hh"
#include "htm/machine.hh"
#include "prof/profiler.hh"
#include "tmsync/scenarios.hh"

namespace
{

using namespace htmsim;

struct RunRow
{
    std::string machine;
    const char* scenario = "";
    const char* mode = "";
    std::uint64_t seed = 1;
    tmsync::ScenarioResult result;
    bool livenessOk = true;
    std::string livenessError;
    std::vector<prof::SiteProfile> topSites;
};

} // namespace

int
main(int argc, char** argv)
{
    const char* output_path = "BENCH_sync.json";
    bool smoke = false;
    unsigned num_seeds = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc)
            num_seeds = unsigned(std::strtoul(argv[++i], nullptr, 10));
        else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc)
            output_path = argv[++i];
        else
            output_path = argv[i];
    }
    if (num_seeds == 0)
        num_seeds = 1;

    const unsigned threads = smoke ? 4 : 8;
    const unsigned ops_per_thread = smoke ? 40 : 200;
    const std::vector<tmsync::SyncMode> modes = {
        tmsync::SyncMode::elided, tmsync::SyncMode::tatas,
        tmsync::SyncMode::globalLock};
    std::vector<htm::MachineConfig> machines;
    if (smoke) {
        machines.push_back(htm::MachineConfig::intelCore());
    } else {
        for (const htm::MachineConfig& machine :
             htm::MachineConfig::all())
            machines.push_back(machine);
    }

    std::printf("%-22s %-14s %-12s %6s %9s %8s %8s %8s\n", "machine",
                "scenario", "mode", "seed", "thru/kcyc", "sections",
                "elided%", "abort%");

    std::vector<RunRow> rows;
    unsigned liveness_failures = 0;
    for (const htm::MachineConfig& machine : machines) {
        for (unsigned s = 0; s < tmsync::numScenarios; ++s) {
            const tmsync::Scenario scenario =
                tmsync::allScenarios()[s];
            for (const tmsync::SyncMode mode : modes) {
                if (!tmsync::scenarioSupportsMode(scenario, mode))
                    continue;
                for (std::uint64_t seed = 1; seed <= num_seeds;
                     ++seed) {
                    tmsync::ScenarioConfig config;
                    config.runtime = htm::RuntimeConfig(machine);
                    config.scenario = scenario;
                    config.mode = mode;
                    config.threads = threads;
                    config.opsPerThread = ops_per_thread;
                    config.seed = seed;
                    prof::TxProfiler profiler;
                    check::LivenessChecker liveness(
                        threads, check::LivenessOptions{}, &profiler);
                    config.observer = &liveness;

                    RunRow row;
                    row.machine = machine.name;
                    row.scenario = tmsync::scenarioName(scenario);
                    row.mode = tmsync::syncModeName(mode);
                    row.seed = seed;
                    try {
                        row.result = tmsync::runScenario(config);
                    } catch (const check::LivenessViolation& e) {
                        row.livenessOk = false;
                        row.livenessError = e.what();
                        ++liveness_failures;
                    }

                    const prof::ProfileReport report =
                        profiler.report();
                    const std::size_t keep =
                        report.sites.size() < 5 ? report.sites.size()
                                                : 5;
                    row.topSites.assign(report.sites.begin(),
                                        report.sites.begin() + keep);

                    const tmsync::ScenarioResult& r = row.result;
                    const double elided_pct =
                        r.sections == 0 ? 0.0 :
                        double(r.elidedSections) * 100.0 /
                            double(r.sections);
                    std::printf(
                        "%-22s %-14s %-12s %6llu %9.3f %8llu %7.1f%% "
                        "%7.1f%%%s\n",
                        row.machine.c_str(), row.scenario, row.mode,
                        (unsigned long long)seed,
                        r.throughputPerKcycle(),
                        (unsigned long long)r.sections, elided_pct,
                        r.stats.abortRatio() * 100.0,
                        row.livenessOk ? "" : "  [LIVENESS]");
                    std::fflush(stdout);
                    rows.push_back(std::move(row));
                }
            }
        }
    }

    // Headline sanity: on every elision-capable machine, the elided
    // reader_heavy cell should beat its TATAS sibling (elided readers
    // never write the lock word; TATAS readers pay two CASes per
    // section). Counted into the JSON, not fatal: the crossover claim
    // lives in the tests, the bench just reports it.
    unsigned reader_heavy_cells = 0;
    unsigned reader_heavy_elision_wins = 0;
    for (const htm::MachineConfig& machine : machines) {
        if (!machine.supportsElision())
            continue;
        double elided_thru = 0.0;
        double tatas_thru = 0.0;
        for (const RunRow& row : rows) {
            if (row.machine != machine.name ||
                std::strcmp(row.scenario, "reader_heavy") != 0)
                continue;
            if (std::strcmp(row.mode, "elided") == 0)
                elided_thru += row.result.throughputPerKcycle();
            else if (std::strcmp(row.mode, "tatas") == 0)
                tatas_thru += row.result.throughputPerKcycle();
        }
        ++reader_heavy_cells;
        if (elided_thru > tatas_thru)
            ++reader_heavy_elision_wins;
        std::printf("reader_heavy crossover %-22s elided %.3f %s "
                    "tatas %.3f /kcyc\n",
                    machine.name.c_str(),
                    elided_thru / double(num_seeds),
                    elided_thru > tatas_thru ? ">" : "<=",
                    tatas_thru / double(num_seeds));
    }

    std::FILE* out = std::fopen(output_path, "w");
    if (out == nullptr) {
        std::perror(output_path);
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"htmsim-bench-sync-v1\",\n"
                 "  \"threads\": %u,\n"
                 "  \"ops_per_thread\": %u,\n"
                 "  \"seeds\": %u,\n"
                 "  \"smoke\": %s,\n"
                 "  \"runs\": [\n",
                 threads, ops_per_thread, num_seeds,
                 smoke ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const RunRow& row = rows[i];
        const tmsync::ScenarioResult& r = row.result;
        std::fprintf(
            out,
            "    {\"machine\": \"%s\", \"scenario\": \"%s\", "
            "\"mode\": \"%s\", \"seed\": %llu,\n"
            "     \"sections\": %llu, \"elided_sections\": %llu, "
            "\"horizon_cycles\": %llu, "
            "\"throughput_per_kcycle\": %.4f,\n"
            "     \"abort_ratio\": %.4f, "
            "\"serialization_ratio\": %.4f, "
            "\"checksum\": \"%016llx\", \"liveness_ok\": %s,\n"
            "     \"sites\": [",
            row.machine.c_str(), row.scenario, row.mode,
            (unsigned long long)row.seed,
            (unsigned long long)r.sections,
            (unsigned long long)r.elidedSections,
            (unsigned long long)r.horizonCycles,
            r.throughputPerKcycle(), r.stats.abortRatio(),
            r.stats.serializationRatio(),
            (unsigned long long)r.checksum,
            row.livenessOk ? "true" : "false");
        for (std::size_t s = 0; s < row.topSites.size(); ++s) {
            const prof::SiteProfile& site = row.topSites[s];
            std::fprintf(
                out,
                "%s\n       {\"site\": \"%s\", \"attempts\": %llu, "
                "\"commits\": %llu, \"aborts\": %llu, "
                "\"fallbacks\": %llu, \"committed_cycles\": %llu, "
                "\"wasted_cycles\": %llu, \"stall_cycles\": %llu, "
                "\"lock_wait_cycles\": %llu}",
                s == 0 ? "" : ",", site.name.c_str(),
                (unsigned long long)site.attempts,
                (unsigned long long)site.commits,
                (unsigned long long)site.aborts,
                (unsigned long long)site.fallbackCommits,
                (unsigned long long)site.committedCycles,
                (unsigned long long)site.wastedCycles,
                (unsigned long long)site.stallCycles,
                (unsigned long long)site.lockWaitCycles);
        }
        std::fprintf(out, "]}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"checks\": {\"liveness_failures\": %u, "
                 "\"reader_heavy_cells\": %u, "
                 "\"reader_heavy_elision_wins\": %u}\n"
                 "}\n",
                 liveness_failures, reader_heavy_cells,
                 reader_heavy_elision_wins);
    std::fclose(out);

    std::printf("\nliveness failures: %u -> %s\n", liveness_failures,
                output_path);
    return liveness_failures == 0 ? 0 : 1;
}

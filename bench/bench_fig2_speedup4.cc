/**
 * @file
 * Figure 2: speed-up ratios of transactional over sequential execution
 * with 4 threads, modified STAMP benchmarks, retry counts tuned per
 * machine x benchmark. bayes is excluded from the geometric mean
 * (non-deterministic behaviour, as in the paper).
 */

#include <cmath>
#include <cstdio>

#include "suite.hh"

using namespace htmsim;
using namespace htmsim::bench;

int
main()
{
    const unsigned threads = 4;
    SuiteRunner runner;

    std::printf("Figure 2: 4-thread speed-up over sequential "
                "(modified STAMP, tuned retry counts)\n");
    std::printf("%-14s %8s %8s %8s %8s\n", "benchmark", "BG", "z12",
                "IC", "P8");

    double geomean[4] = {1.0, 1.0, 1.0, 1.0};
    unsigned counted = 0;
    for (const std::string& bench : suiteNames()) {
        double ratios[4] = {};
        for (unsigned m = 0; m < 4; ++m) {
            const Speedup result = runner.measure(
                bench, MachineConfig::all()[m], threads);
            ratios[m] = result.ratio;
            if (!result.tm.valid || !result.seq.valid) {
                std::fprintf(stderr, "%s on %s failed validation!\n",
                             bench.c_str(), machineLabel(m));
                return 1;
            }
        }
        std::printf("%-14s %8.2f %8.2f %8.2f %8.2f\n", bench.c_str(),
                    ratios[0], ratios[1], ratios[2], ratios[3]);
        if (bench != "bayes") {
            for (unsigned m = 0; m < 4; ++m)
                geomean[m] *= ratios[m];
            ++counted;
        }
    }
    std::printf("%-14s %8.2f %8.2f %8.2f %8.2f   (excl. bayes)\n",
                "geomean",
                std::pow(geomean[0], 1.0 / counted),
                std::pow(geomean[1], 1.0 / counted),
                std::pow(geomean[2], 1.0 / counted),
                std::pow(geomean[3], 1.0 / counted));

    std::printf("\nPaper shape: no machine wins everywhere; zEC12 has "
                "the best geomean;\nBlue Gene/Q trails from "
                "single-thread overhead but leads yada; POWER8\nis "
                "capacity-bound in intruder/vacation/yada; labyrinth "
                "~1 for all.\n");
    return 0;
}

/**
 * @file
 * Shared plumbing for the experiment benches: the STAMP suite
 * registry, per-cell retry-count tuning (the paper tunes the three
 * retry counters per machine x benchmark x thread count, and mode +
 * retry count on Blue Gene/Q), and table formatting.
 */

#ifndef HTMSIM_BENCH_SUITE_HH
#define HTMSIM_BENCH_SUITE_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "stamp/bayes/bayes.hh"
#include "stamp/genome/genome.hh"
#include "stamp/harness.hh"
#include "stamp/intruder/intruder.hh"
#include "stamp/kmeans/kmeans.hh"
#include "stamp/labyrinth/labyrinth.hh"
#include "stamp/ssca2/ssca2.hh"
#include "stamp/vacation/vacation.hh"
#include "stamp/yada/yada.hh"

namespace htmsim::bench
{

using htm::MachineConfig;
using htm::RuntimeConfig;
using stamp::RunResult;
using stamp::Speedup;

/** The paper's benchmark order (Figures 2/3). */
inline const std::vector<std::string>&
suiteNames()
{
    static const std::vector<std::string> names = {
        "bayes",         "genome",       "intruder",
        "kmeans-high",   "kmeans-low",   "labyrinth",
        "ssca2",         "vacation-high", "vacation-low",
        "yada"};
    return names;
}

/** Scale factor from HTMSIM_SCALE (default 1.0) for workload sizes. */
inline double
workloadScale()
{
    const char* env = std::getenv("HTMSIM_SCALE");
    return env != nullptr ? std::atof(env) : 1.0;
}

inline unsigned
scaled(unsigned base)
{
    const double value = double(base) * workloadScale();
    return value < 1.0 ? 1u : unsigned(value);
}

/**
 * Run one (benchmark, machine, threads) cell: sequential baseline
 * once, then the transactional run for each tuning candidate, keeping
 * the best — the paper's methodology of reporting each machine at its
 * optimal retry counts.
 */
class SuiteRunner
{
  public:
    explicit SuiteRunner(bool tune = true) : tune_(tune) {}

    Speedup
    measure(const std::string& bench, const MachineConfig& machine,
            unsigned threads, bool modified = true,
            std::uint64_t seed = 1) const
    {
        auto candidates = tuningCandidates(machine);
        const bool verbose = std::getenv("HTMSIM_VERBOSE") != nullptr;
        Speedup best;
        bool first = true;
        for (const RuntimeConfig& config : candidates) {
            const Speedup current =
                run(bench, config, machine, threads, modified, seed);
            if (verbose) {
                std::printf(
                    "  [tune] %s %s t%u lock=%d pers=%d trans=%d "
                    "bgq(mode=%d,r=%d): speedup %.2f abort %.0f%% "
                    "serial %.0f%%\n",
                    bench.c_str(), machine.name.c_str(), threads,
                    config.retry.lockRetries,
                    config.retry.persistentRetries,
                    config.retry.transientRetries,
                    int(config.bgq.mode), config.bgq.maxRetries,
                    current.ratio,
                    current.tm.stats.abortRatio() * 100.0,
                    current.tm.stats.serializationRatio() * 100.0);
                std::printf(
                    "         seq=%llu tm=%llu commits=%llu "
                    "(htm=%llu irr=%llu) aborts=%llu\n",
                    (unsigned long long)current.seq.cycles,
                    (unsigned long long)current.tm.cycles,
                    (unsigned long long)
                        current.tm.stats.totalCommits(),
                    (unsigned long long)current.tm.stats.htmCommits,
                    (unsigned long long)
                        current.tm.stats.irrevocableCommits,
                    (unsigned long long)
                        current.tm.stats.totalAborts());
                std::printf("         causes:");
                for (std::size_t i = 0;
                     i < current.tm.stats.trueCauseAborts.size(); ++i) {
                    if (current.tm.stats.trueCauseAborts[i] > 0) {
                        std::printf(
                            " %s=%llu",
                            htm::abortCauseName(htm::AbortCause(i)),
                            (unsigned long long)current.tm.stats
                                .trueCauseAborts[i]);
                    }
                }
                std::printf("\n");
            }
            if (first || current.ratio > best.ratio) {
                best = current;
                first = false;
            }
            if (!tune_)
                break;
        }
        return best;
    }

    /** Execution mode for run(). */
    enum class Mode { tm, hle };

    /** HLE run (no tuning possible — that is the point of Fig. 7). */
    Speedup
    measureHle(const std::string& bench, const MachineConfig& machine,
               unsigned threads, std::uint64_t seed = 1) const
    {
        RuntimeConfig config{machine};
        return run(bench, config, machine, threads, true, seed,
                   Mode::hle);
    }

    /** Single run with an explicit runtime config (ablations). */
    Speedup
    run(const std::string& bench, RuntimeConfig config,
        const MachineConfig& machine, unsigned threads, bool modified,
        std::uint64_t seed, Mode mode = Mode::tm) const
    {
        config.machine = machine;
        if (bench == "bayes")
            return measureApp<stamp::BayesApp>(
                bayesParams(), config, threads, seed, mode);
        if (bench == "genome") {
            return measureApp<stamp::GenomeApp>(
                genomeParams(machine, modified), config, threads,
                seed, mode);
        }
        if (bench == "intruder") {
            if (modified) {
                return measureApp<stamp::IntruderApp>(
                    intruderParams(), config, threads, seed, mode);
            }
            return measureApp<stamp::IntruderAppOriginal>(
                intruderParams(), config, threads, seed, mode);
        }
        if (bench == "kmeans-high" || bench == "kmeans-low") {
            return measureApp<stamp::KmeansApp>(
                kmeansParams(bench == "kmeans-high", modified,
                             machine),
                config, threads, seed, mode);
        }
        if (bench == "labyrinth") {
            return measureApp<stamp::LabyrinthApp>(
                labyrinthParams(), config, threads, seed, mode);
        }
        if (bench == "ssca2") {
            return measureApp<stamp::Ssca2App>(ssca2Params(), config,
                                               threads, seed, mode);
        }
        if (bench == "vacation-high" || bench == "vacation-low") {
            const auto params =
                vacationParams(bench == "vacation-high");
            if (modified) {
                return measureApp<stamp::VacationApp>(
                    params, config, threads, seed, mode);
            }
            return measureApp<stamp::VacationAppOriginal>(
                params, config, threads, seed, mode);
        }
        if (bench == "yada") {
            return measureApp<stamp::YadaApp>(yadaParams(), config,
                                              threads, seed, mode);
        }
        std::fprintf(stderr, "unknown benchmark %s\n", bench.c_str());
        std::abort();
    }

    // ---- Scaled workload parameters ---------------------------------

    static stamp::BayesParams
    bayesParams()
    {
        stamp::BayesParams params;
        params.numVars = scaled(12);
        params.numRecords = scaled(192);
        return params;
    }

    static stamp::GenomeParams
    genomeParams(const MachineConfig& machine, bool modified)
    {
        stamp::GenomeParams params =
            modified ? stamp::GenomeParams::tuned(machine.vendor)
                     : stamp::GenomeParams::original();
        params.geneLength = scaled(3072);
        params.extraDuplicates = scaled(1536);
        return params;
    }

    static stamp::IntruderParams
    intruderParams()
    {
        stamp::IntruderParams params;
        params.numFlows = scaled(192);
        return params;
    }

    static stamp::KmeansParams
    kmeansParams(bool high, bool modified,
                 const MachineConfig& machine)
    {
        stamp::KmeansParams params =
            high ? stamp::KmeansParams::highContention(modified)
                 : stamp::KmeansParams::lowContention(modified);
        params.numPoints = scaled(768);
        params.iterations = 5;
        // The paper's alignment patch pads to the platform's line.
        params.alignBytes =
            std::max<unsigned>(128,
                               unsigned(machine.capacityLineBytes));
        return params;
    }

    static stamp::LabyrinthParams
    labyrinthParams()
    {
        stamp::LabyrinthParams params;
        // 26x26x2 cells x 8 B = 10.8 KB of grid copy: over POWER8's
        // 8 KB budget (every route serializes there, as in the paper)
        // while still far under the other machines' load capacities.
        params.width = scaled(26);
        params.height = scaled(26);
        params.numPaths = scaled(16);
        return params;
    }

    static stamp::Ssca2Params
    ssca2Params()
    {
        stamp::Ssca2Params params;
        params.numVertices = scaled(400);
        params.numEdges = scaled(3200);
        return params;
    }

    static stamp::VacationParams
    vacationParams(bool high)
    {
        stamp::VacationParams params = high
                                           ? stamp::VacationParams::high()
                                           : stamp::VacationParams::low();
        params.relationSize = scaled(1024);
        params.numCustomers = scaled(256);
        params.totalTx = scaled(900);
        return params;
    }

    static stamp::YadaParams
    yadaParams()
    {
        stamp::YadaParams params;
        params.gridX = scaled(9);
        params.gridY = scaled(9);
        params.pointBudget = scaled(160);
        return params;
    }

    /** The tuning grid: Fig-1 retry-count presets, or BGQ modes. */
    static std::vector<RuntimeConfig>
    tuningCandidates(const MachineConfig& machine)
    {
        std::vector<RuntimeConfig> result;
        RuntimeConfig base{machine};
        if (machine.vendor == htm::Vendor::blueGeneQ) {
            for (const auto mode :
                 {htm::BgqMode::shortRunning, htm::BgqMode::longRunning}) {
                for (const int retries : {3, 10, 32}) {
                    RuntimeConfig config = base;
                    config.bgq.mode = mode;
                    config.bgq.maxRetries = retries;
                    result.push_back(config);
                }
            }
            return result;
        }
        const htm::RetryCounts presets[] = {
            {4, 1, 8},    // balanced default
            {2, 1, 2},    // give up early (persistent-heavy loads)
            {8, 2, 16},   // patient
            {4, 8, 12},   // tolerate "persistent" aborts (SMT)
            {16, 1, 64},  // very patient (conflict-churny workloads)
        };
        for (const auto& preset : presets) {
            RuntimeConfig config = base;
            config.retry = preset;
            result.push_back(config);
        }
        return result;
    }

  private:
    template <typename App, typename Params>
    static Speedup
    measureApp(const Params& params, const RuntimeConfig& config,
               unsigned threads, std::uint64_t seed, Mode mode)
    {
        auto factory = [&params] { return App(params); };
        if (mode == Mode::tm)
            return stamp::measureSpeedup(factory, config, threads,
                                         seed);
        Speedup result;
        {
            auto app = factory();
            result.seq =
                stamp::runSequential(app, config.machine, seed);
        }
        {
            auto app = factory();
            result.tm = stamp::runHle(app, config, threads, seed);
        }
        result.ratio = result.tm.cycles == 0
                           ? 0.0
                           : double(result.seq.cycles) /
                                 double(result.tm.cycles);
        return result;
    }

    bool tune_;
};

/** Short machine labels in paper order. */
inline const char*
machineLabel(unsigned index)
{
    static const char* labels[] = {"BG", "z12", "IC", "P8"};
    return labels[index];
}

} // namespace htmsim::bench

#endif // HTMSIM_BENCH_SUITE_HH

/**
 * @file
 * Figure 5: scalability of the modified STAMP benchmarks with 1, 2,
 * 4, 8 and 16 threads on all four machines. Retry counts (and the
 * Blue Gene/Q mode) are re-tuned for every point, as in the paper.
 * Thread counts beyond a machine's SMT capacity are skipped (the
 * paper omits Intel's 16-thread point for the same reason).
 */

#include <cstdio>

#include "suite.hh"

using namespace htmsim;
using namespace htmsim::bench;

int
main()
{
    const unsigned thread_counts[] = {1, 2, 4, 8, 16};
    SuiteRunner runner;

    std::printf("Figure 5: speed-up over sequential vs thread count "
                "(modified STAMP)\n");
    std::printf("(-- marks thread counts beyond the machine's SMT "
                "capacity;\n * marks points where threads "
                "oversubscribe physical cores)\n\n");

    for (const std::string& bench : suiteNames()) {
        std::printf("%s\n", bench.c_str());
        std::printf("  %-4s %7s %7s %7s %7s %7s\n", "mach", "1t", "2t",
                    "4t", "8t", "16t");
        for (unsigned m = 0; m < 4; ++m) {
            const MachineConfig& machine = MachineConfig::all()[m];
            std::printf("  %-4s", machineLabel(m));
            for (const unsigned threads : thread_counts) {
                if (threads > machine.maxThreads()) {
                    std::printf(" %7s", "--");
                    continue;
                }
                const Speedup result =
                    runner.measure(bench, machine, threads);
                std::printf(" %6.2f%c", result.ratio,
                            threads > machine.numCores ? '*' : ' ');
            }
            std::printf("\n");
        }
    }
    std::printf(
        "\nPaper shape: zEC12 keeps scaling to 16 threads (16 real "
        "cores); Intel\nand POWER8 flatten beyond their core counts "
        "(SMT shares HTM resources);\nBlue Gene/Q leads yada; "
        "intruder/vacation favour zEC12 at high thread\ncounts.\n");
    return 0;
}

/**
 * @file
 * Standalone per-access cost microbenchmark (see access_micro.hh).
 *
 * Prints one row per (pattern, thread count) cell: host ns per
 * simulated access, throughput, and the simulated commit/abort
 * totals that pin the workload shape. `--no-batch` disables the
 * epoch-batched sync() fast path (DESIGN.md Section 5) so its effect
 * on per-access cost is directly visible:
 *
 *   bench_access             # batched (default)
 *   bench_access --no-batch  # every scheduling point takes the slow path
 *
 * Run under `setarch -R` for stable numbers.
 */

#include <cstdio>
#include <cstring>

#include "access_micro.hh"
#include "htm/machine.hh"

int
main(int argc, char** argv)
{
    using namespace htmsim;

    bool batch = true;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-batch") == 0) {
            batch = false;
        } else {
            std::fprintf(stderr, "usage: %s [--no-batch]\n", argv[0]);
            return 2;
        }
    }

    // One representative machine: the per-access overhead being
    // measured is machine-independent scheduler/runtime cost.
    htm::RuntimeConfig config{htm::MachineConfig::intelCore()};
    config.batchEpoch = batch;

    std::printf("bench_access (epoch batching %s)\n",
                batch ? "on" : "off");
    std::printf("%-12s %8s %12s %10s %10s %10s\n", "pattern",
                "threads", "accesses", "ns/access", "commits",
                "aborts");
    for (const bench::AccessResult& row :
         bench::runAccessSweep(config)) {
        std::printf("%-12s %8u %12llu %10.1f %10llu %10llu\n",
                    row.pattern, row.threads,
                    (unsigned long long)row.accesses,
                    row.nsPerAccess(),
                    (unsigned long long)row.commits,
                    (unsigned long long)row.aborts);
    }
    return 0;
}

/**
 * @file
 * Hybrid TM bounds (EXPERIMENTS.md "Hybrid TM bounds"): the two
 * charts the hybrid-TM literature frames the design space with.
 *
 *  1. Instrumentation cost. Single-thread slowdown of the pure
 *     software path (backend=hybrid, stmOnly) relative to pure
 *     hardware (backend=htm) per machine: the per-access orec and
 *     write-buffer bookkeeping Alistarh et al. ("Inherent Limitations
 *     of Hybrid TM") identify as the term no hybrid can hide on the
 *     slow path.
 *
 *  2. Concurrency. Speed-up versus thread count on contended
 *     benchmarks for the global-lock fallback, plain best-effort HTM
 *     (lock fallback), and the hybrid backend (STM fallback). The
 *     hybrid's claim — Brown & Ravi, "On the Cost of Concurrency in
 *     Hybrid TM" — is that fallbacks still run concurrently, so on at
 *     least one contended cell per machine it must beat the lock-only
 *     bound. The binary exits nonzero if any machine lacks such a
 *     cell.
 *
 * Emits BENCH_hybrid.json. All runs use the machine's default retry
 * configuration (no tuning grid): both comparisons are about backend
 * structure, not retry-budget luck.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "suite.hh"

namespace
{

using namespace htmsim;
using htm::BackendKind;

double
runRatio(const bench::SuiteRunner& runner, const std::string& bench,
         const htm::MachineConfig& machine, BackendKind backend,
         bool stm_only, unsigned threads, std::uint64_t seed)
{
    htm::RuntimeConfig config{machine};
    config.backend = backend;
    config.hybrid.stmOnly = stm_only;
    return runner.run(bench, config, machine, threads, true, seed)
        .ratio;
}

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double value : values)
        log_sum += std::log(value);
    return std::exp(log_sum / double(values.size()));
}

struct InstRow
{
    std::string bench;
    std::string machine;
    double htm = 0.0;
    double stm = 0.0;
    double slowdown = 0.0;
};

struct ConcRow
{
    std::string bench;
    std::string machine;
    unsigned threads = 0;
    double lock = 0.0;
    double htm = 0.0;
    double hybrid = 0.0;
};

} // namespace

int
main(int argc, char** argv)
{
    const char* output_path = "BENCH_hybrid.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc)
            output_path = argv[++i];
        else
            output_path = argv[i];
    }
    const std::uint64_t seed = 1;
    const bench::SuiteRunner runner(false);

    // A read-leaning / write-leaning / allocation-heavy spread keeps
    // the instrumentation geomean honest without running all ten.
    const std::vector<std::string> inst_benches = {
        "genome", "kmeans-low", "ssca2", "vacation-low"};
    // The contended cells: high conflict (intruder, yada) and high
    // capacity pressure (labyrinth, vacation-high) — where fallbacks
    // actually happen and the fallback's concurrency matters.
    const std::vector<std::string> conc_benches = {
        "intruder", "labyrinth", "vacation-high", "yada"};
    const std::vector<unsigned> thread_counts = {1, 2, 4};

    std::printf("-- instrumentation cost (1 thread, stm-only vs "
                "htm) --\n");
    std::printf("%-14s %-22s %8s %8s %10s\n", "benchmark", "machine",
                "htm", "stm", "slowdown");
    std::vector<InstRow> inst_rows;
    for (const htm::MachineConfig& machine :
         htm::MachineConfig::all()) {
        for (const std::string& bench : inst_benches) {
            InstRow row;
            row.bench = bench;
            row.machine = machine.name;
            row.htm = runRatio(runner, bench, machine,
                               BackendKind::htm, false, 1, seed);
            row.stm = runRatio(runner, bench, machine,
                               BackendKind::hybrid, true, 1, seed);
            row.slowdown = row.stm > 0.0 ? row.htm / row.stm : 0.0;
            std::printf("%-14s %-22s %8.3f %8.3f %9.2fx\n",
                        bench.c_str(), machine.name.c_str(), row.htm,
                        row.stm, row.slowdown);
            std::fflush(stdout);
            inst_rows.push_back(std::move(row));
        }
    }

    std::printf("\n-- concurrency (speed-up vs threads, contended "
                "cells) --\n");
    std::printf("%-14s %-22s %3s %8s %8s %8s\n", "benchmark",
                "machine", "thr", "lock", "htm", "hybrid");
    std::vector<ConcRow> conc_rows;
    for (const htm::MachineConfig& machine :
         htm::MachineConfig::all()) {
        for (const std::string& bench : conc_benches) {
            for (const unsigned threads : thread_counts) {
                ConcRow row;
                row.bench = bench;
                row.machine = machine.name;
                row.threads = threads;
                row.lock = runRatio(runner, bench, machine,
                                    BackendKind::globalLock, false,
                                    threads, seed);
                row.htm = runRatio(runner, bench, machine,
                                   BackendKind::htm, false, threads,
                                   seed);
                row.hybrid = runRatio(runner, bench, machine,
                                      BackendKind::hybrid, false,
                                      threads, seed);
                std::printf("%-14s %-22s %3u %8.3f %8.3f %8.3f\n",
                            bench.c_str(), machine.name.c_str(),
                            threads, row.lock, row.htm, row.hybrid);
                std::fflush(stdout);
                conc_rows.push_back(std::move(row));
            }
        }
    }

    // The acceptance check: every machine needs at least one
    // contended cell at the highest thread count where the hybrid's
    // concurrent fallback strictly beats lock-only serialization.
    unsigned machines_without_win = 0;
    std::printf("\n%-22s %10s %10s\n", "machine", "stm cost",
                "hybrid>lock");
    for (const htm::MachineConfig& machine :
         htm::MachineConfig::all()) {
        std::vector<double> slowdowns;
        for (const InstRow& row : inst_rows) {
            if (row.machine == machine.name && row.slowdown > 0.0)
                slowdowns.push_back(row.slowdown);
        }
        unsigned wins = 0;
        for (const ConcRow& row : conc_rows) {
            if (row.machine == machine.name &&
                row.threads == thread_counts.back() &&
                row.hybrid > row.lock)
                ++wins;
        }
        machines_without_win += wins == 0 ? 1 : 0;
        std::printf("%-22s %9.2fx %6u/%zu%s\n", machine.name.c_str(),
                    geomean(slowdowns), wins, conc_benches.size(),
                    wins == 0 ? "  [no win]" : "");
    }

    std::FILE* out = std::fopen(output_path, "w");
    if (out == nullptr) {
        std::perror(output_path);
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"htmsim-bench-hybrid-v1\",\n"
                 "  \"seed\": %llu,\n"
                 "  \"scale\": %.3f,\n"
                 "  \"instrumentation\": [\n",
                 (unsigned long long)seed, bench::workloadScale());
    for (std::size_t i = 0; i < inst_rows.size(); ++i) {
        const InstRow& row = inst_rows[i];
        std::fprintf(out,
                     "    {\"bench\": \"%s\", \"machine\": \"%s\", "
                     "\"htm\": %.4f, \"stm\": %.4f, "
                     "\"slowdown\": %.4f}%s\n",
                     row.bench.c_str(), row.machine.c_str(), row.htm,
                     row.stm, row.slowdown,
                     i + 1 < inst_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"concurrency\": [\n");
    for (std::size_t i = 0; i < conc_rows.size(); ++i) {
        const ConcRow& row = conc_rows[i];
        std::fprintf(out,
                     "    {\"bench\": \"%s\", \"machine\": \"%s\", "
                     "\"threads\": %u, \"lock\": %.4f, "
                     "\"htm\": %.4f, \"hybrid\": %.4f}%s\n",
                     row.bench.c_str(), row.machine.c_str(),
                     row.threads, row.lock, row.htm, row.hybrid,
                     i + 1 < conc_rows.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"checks\": {\"machines_without_hybrid_win\": "
                 "%u}\n"
                 "}\n",
                 machines_without_win);
    std::fclose(out);

    std::printf("\nchecks: machines without a hybrid>lock contended "
                "cell: %u -> %s\n",
                machines_without_win, output_path);
    return machines_without_win == 0 ? 0 : 1;
}

/**
 * @file
 * Figure 10: 90-percentile transactional-load sizes vs 4-thread abort
 * ratios, one point per (benchmark, machine).
 *
 * Methodology mirrors the paper: footprints come from a traced
 * single-threaded run with capacity limits disabled (their STM-based
 * trace tool had none), mapping accessed addresses to each machine's
 * cache lines; abort ratios come from the tuned 4-thread runs.
 */

#include <cstdio>

#include "suite.hh"

using namespace htmsim;
using namespace htmsim::bench;

int
main()
{
    SuiteRunner runner;
    std::printf("Figure 10: 90-pct transactional-load size (KB) vs "
                "abort ratio (%%), 4 threads\n");
    std::printf("%-14s %-4s %12s %10s %14s\n", "benchmark", "mach",
                "load90 (KB)", "abort %", "load capacity");
    for (const std::string& bench : suiteNames()) {
        if (bench == "bayes")
            continue; // excluded from the paper's analyses
        for (unsigned m = 0; m < 4; ++m) {
            const MachineConfig& machine = MachineConfig::all()[m];
            RuntimeConfig traced{machine};
            traced.collectTrace = true;
            traced.ignoreCapacity = true;
            const Speedup trace_run =
                runner.run(bench, traced, machine, 1, true, 1);
            const double load_kb =
                trace_run.tm.trace.loadPercentileBytes(
                    0.90, machine.capacityLineBytes) /
                1024.0;

            const Speedup tuned = runner.measure(bench, machine, 4);
            std::printf("%-14s %-4s %12.2f %10.1f %11zu KB%s\n",
                        bench.c_str(), machineLabel(m), load_kb,
                        tuned.tm.stats.abortRatio() * 100.0,
                        machine.loadCapacityBytes >> 10,
                        load_kb * 1024.0 >
                                double(machine.loadCapacityBytes)
                            ? "  << OVER"
                            : "");
        }
    }
    std::printf("\nPaper shape: labyrinth/yada footprints reach tens "
                "of KB; POWER8's 8 KB\nbudget is exceeded by "
                "labyrinth, yada and the larger vacation/intruder\n"
                "transactions, which correlates with its abort "
                "ratios.\n");
    return 0;
}

/**
 * @file
 * Section 2.3 methodology: measure each machine's transaction
 * capacities with a single-threaded microbenchmark that grows the
 * transactional footprint until capacity-overflow aborts appear (the
 * way the paper measured the undisclosed Intel limits).
 */

#include <cstdio>
#include <vector>

#include "htm/runtime.hh"
#include "sim/sim.hh"

using namespace htmsim;
using namespace htmsim::htm;

namespace
{

/** Smallest footprint (bytes) at which a pure-load tx aborts. */
std::size_t
findKnee(const MachineConfig& machine, bool stores)
{
    // One word per capacity line, far more lines than any budget.
    const std::size_t max_lines =
        machine.loadCapacityLines() * 2 + 64;
    std::vector<std::uint64_t> data(
        max_lines * machine.capacityLineBytes / 8, 0);
    const std::size_t words_per_line = machine.capacityLineBytes / 8;

    std::size_t low = 1;
    std::size_t high = max_lines;
    // Binary search over footprints for the first aborting size.
    // The paper looked specifically for *capacity-overflow* aborts;
    // transient aborts (zEC12's cache-fetch events) are retried.
    auto aborts_at = [&](std::size_t lines) {
        RuntimeConfig config{machine};
        // The paper measured "frequency changes in the capacity-
        // overflow aborts", statistically separating them from
        // transient aborts; here the transient source is simply off.
        config.machine.cacheFetchAbortProb = 0.0;
        sim::Scheduler scheduler;
        Runtime runtime(config, 1);
        bool capacity_abort = false;
        scheduler.spawn([&](sim::ThreadContext& ctx) {
            for (int attempt = 0; attempt < 16; ++attempt) {
                const AbortCause cause =
                    runtime.tryOnce(ctx, [&](Tx& tx) {
                        for (std::size_t line = 0; line < lines;
                             ++line) {
                            if (stores) {
                                tx.store(
                                    &data[line * words_per_line],
                                    std::uint64_t(line));
                            } else {
                                (void)tx.load(
                                    &data[line * words_per_line]);
                            }
                        }
                    });
                if (cause == AbortCause::none)
                    return;
                if (cause == AbortCause::capacityOverflow ||
                    cause == AbortCause::wayConflict) {
                    capacity_abort = true;
                    return;
                }
                // Transient abort: retry, as the paper did.
            }
        });
        scheduler.run();
        return capacity_abort;
    };

    if (!aborts_at(high))
        return 0; // no knee found
    while (low < high) {
        const std::size_t mid = (low + high) / 2;
        if (aborts_at(mid))
            high = mid;
        else
            low = mid + 1;
    }
    return low * machine.capacityLineBytes;
}

} // namespace

int
main()
{
    std::printf("Section 2.3 microbenchmark: measured capacity knees "
                "(single thread)\n");
    std::printf("%-20s %18s %18s\n", "machine", "load knee",
                "store knee");
    for (const auto& machine : MachineConfig::all()) {
        const std::size_t load_knee = findKnee(machine, false);
        const std::size_t store_knee = findKnee(machine, true);
        auto show = [](std::size_t bytes) {
            static char buffers[4][32];
            static int next = 0;
            char* out = buffers[next++ % 4];
            if (bytes == 0)
                std::snprintf(out, 32, "> tested range");
            else if (bytes >= 1024)
                std::snprintf(out, 32, "%.1f KB", bytes / 1024.0);
            else
                std::snprintf(out, 32, "%zu B", bytes);
            return out;
        };
        std::printf("%-20s %18s %18s\n", machine.name.c_str(),
                    show(load_knee), show(store_knee));
    }
    std::printf(
        "\nExpected: the knee sits one line beyond each configured "
        "budget (the\nglobal-lock subscription word occupies one "
        "line), reproducing the\npaper's 4 MB / 22 KB Intel "
        "measurement methodology. Intel's store knee\ncan appear "
        "earlier when the walked lines collide in one L1 set\n"
        "(way-conflict evictions).\n");
    return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/htmsim_tests.dir/test_features.cc.o"
  "CMakeFiles/htmsim_tests.dir/test_features.cc.o.d"
  "CMakeFiles/htmsim_tests.dir/test_htm_core.cc.o"
  "CMakeFiles/htmsim_tests.dir/test_htm_core.cc.o.d"
  "CMakeFiles/htmsim_tests.dir/test_model_details.cc.o"
  "CMakeFiles/htmsim_tests.dir/test_model_details.cc.o.d"
  "CMakeFiles/htmsim_tests.dir/test_property.cc.o"
  "CMakeFiles/htmsim_tests.dir/test_property.cc.o.d"
  "CMakeFiles/htmsim_tests.dir/test_sim.cc.o"
  "CMakeFiles/htmsim_tests.dir/test_sim.cc.o.d"
  "CMakeFiles/htmsim_tests.dir/test_stamp_apps.cc.o"
  "CMakeFiles/htmsim_tests.dir/test_stamp_apps.cc.o.d"
  "CMakeFiles/htmsim_tests.dir/test_stamp_units.cc.o"
  "CMakeFiles/htmsim_tests.dir/test_stamp_units.cc.o.d"
  "CMakeFiles/htmsim_tests.dir/test_tmds.cc.o"
  "CMakeFiles/htmsim_tests.dir/test_tmds.cc.o.d"
  "CMakeFiles/htmsim_tests.dir/test_tmds_extra.cc.o"
  "CMakeFiles/htmsim_tests.dir/test_tmds_extra.cc.o.d"
  "htmsim_tests"
  "htmsim_tests.pdb"
  "htmsim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for htmsim_tests.
# This may be replaced when dependencies are built.

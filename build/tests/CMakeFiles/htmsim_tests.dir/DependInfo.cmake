
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_features.cc" "tests/CMakeFiles/htmsim_tests.dir/test_features.cc.o" "gcc" "tests/CMakeFiles/htmsim_tests.dir/test_features.cc.o.d"
  "/root/repo/tests/test_htm_core.cc" "tests/CMakeFiles/htmsim_tests.dir/test_htm_core.cc.o" "gcc" "tests/CMakeFiles/htmsim_tests.dir/test_htm_core.cc.o.d"
  "/root/repo/tests/test_model_details.cc" "tests/CMakeFiles/htmsim_tests.dir/test_model_details.cc.o" "gcc" "tests/CMakeFiles/htmsim_tests.dir/test_model_details.cc.o.d"
  "/root/repo/tests/test_property.cc" "tests/CMakeFiles/htmsim_tests.dir/test_property.cc.o" "gcc" "tests/CMakeFiles/htmsim_tests.dir/test_property.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/htmsim_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/htmsim_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_stamp_apps.cc" "tests/CMakeFiles/htmsim_tests.dir/test_stamp_apps.cc.o" "gcc" "tests/CMakeFiles/htmsim_tests.dir/test_stamp_apps.cc.o.d"
  "/root/repo/tests/test_stamp_units.cc" "tests/CMakeFiles/htmsim_tests.dir/test_stamp_units.cc.o" "gcc" "tests/CMakeFiles/htmsim_tests.dir/test_stamp_units.cc.o.d"
  "/root/repo/tests/test_tmds.cc" "tests/CMakeFiles/htmsim_tests.dir/test_tmds.cc.o" "gcc" "tests/CMakeFiles/htmsim_tests.dir/test_tmds.cc.o.d"
  "/root/repo/tests/test_tmds_extra.cc" "tests/CMakeFiles/htmsim_tests.dir/test_tmds_extra.cc.o" "gcc" "tests/CMakeFiles/htmsim_tests.dir/test_tmds_extra.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/htm/CMakeFiles/htmsim_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/stamp/CMakeFiles/htmsim_stamp.dir/DependInfo.cmake"
  "/root/repo/build/src/clq/CMakeFiles/htmsim_clq.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/htmsim_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/htmsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

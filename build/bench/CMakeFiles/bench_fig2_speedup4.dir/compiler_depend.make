# Empty compiler generated dependencies file for bench_fig2_speedup4.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig10_loadsize.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_loadsize.dir/bench_fig10_loadsize.cc.o"
  "CMakeFiles/bench_fig10_loadsize.dir/bench_fig10_loadsize.cc.o.d"
  "bench_fig10_loadsize"
  "bench_fig10_loadsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_loadsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_tls.dir/bench_fig9_tls.cc.o"
  "CMakeFiles/bench_fig9_tls.dir/bench_fig9_tls.cc.o.d"
  "bench_fig9_tls"
  "bench_fig9_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_aborts.dir/bench_fig3_aborts.cc.o"
  "CMakeFiles/bench_fig3_aborts.dir/bench_fig3_aborts.cc.o.d"
  "bench_fig3_aborts"
  "bench_fig3_aborts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_aborts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

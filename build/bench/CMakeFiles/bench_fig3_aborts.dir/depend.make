# Empty dependencies file for bench_fig3_aborts.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig11_storesize.
# This may be replaced when dependencies are built.

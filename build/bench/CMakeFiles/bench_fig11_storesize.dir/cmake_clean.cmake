file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_storesize.dir/bench_fig11_storesize.cc.o"
  "CMakeFiles/bench_fig11_storesize.dir/bench_fig11_storesize.cc.o.d"
  "bench_fig11_storesize"
  "bench_fig11_storesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_storesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

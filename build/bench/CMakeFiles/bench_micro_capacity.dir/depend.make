# Empty dependencies file for bench_micro_capacity.
# This may be replaced when dependencies are built.

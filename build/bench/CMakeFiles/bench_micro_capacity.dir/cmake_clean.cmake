file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_capacity.dir/bench_micro_capacity.cc.o"
  "CMakeFiles/bench_micro_capacity.dir/bench_micro_capacity.cc.o.d"
  "bench_micro_capacity"
  "bench_micro_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_clq.dir/bench_fig6_clq.cc.o"
  "CMakeFiles/bench_fig6_clq.dir/bench_fig6_clq.cc.o.d"
  "bench_fig6_clq"
  "bench_fig6_clq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_clq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6_clq.
# This may be replaced when dependencies are built.

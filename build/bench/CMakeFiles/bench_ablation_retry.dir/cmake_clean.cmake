file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_retry.dir/bench_ablation_retry.cc.o"
  "CMakeFiles/bench_ablation_retry.dir/bench_ablation_retry.cc.o.d"
  "bench_ablation_retry"
  "bench_ablation_retry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_retry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig4_origmod.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_origmod.dir/bench_fig4_origmod.cc.o"
  "CMakeFiles/bench_fig4_origmod.dir/bench_fig4_origmod.cc.o.d"
  "bench_fig4_origmod"
  "bench_fig4_origmod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_origmod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_hle.cc" "bench/CMakeFiles/bench_fig7_hle.dir/bench_fig7_hle.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_hle.dir/bench_fig7_hle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stamp/CMakeFiles/htmsim_stamp.dir/DependInfo.cmake"
  "/root/repo/build/src/clq/CMakeFiles/htmsim_clq.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/htmsim_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/htmsim_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/htmsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_hle.dir/bench_fig7_hle.cc.o"
  "CMakeFiles/bench_fig7_hle.dir/bench_fig7_hle.cc.o.d"
  "bench_fig7_hle"
  "bench_fig7_hle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_hle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

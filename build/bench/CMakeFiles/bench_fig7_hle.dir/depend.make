# Empty dependencies file for bench_fig7_hle.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/htmsim_clq.dir/concurrent_queue.cc.o"
  "CMakeFiles/htmsim_clq.dir/concurrent_queue.cc.o.d"
  "libhtmsim_clq.a"
  "libhtmsim_clq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmsim_clq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for htmsim_clq.
# This may be replaced when dependencies are built.

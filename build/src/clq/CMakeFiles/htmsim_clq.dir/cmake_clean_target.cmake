file(REMOVE_RECURSE
  "libhtmsim_clq.a"
)

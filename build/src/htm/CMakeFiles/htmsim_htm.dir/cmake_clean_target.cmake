file(REMOVE_RECURSE
  "libhtmsim_htm.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/htmsim_htm.dir/machine.cc.o"
  "CMakeFiles/htmsim_htm.dir/machine.cc.o.d"
  "CMakeFiles/htmsim_htm.dir/runtime.cc.o"
  "CMakeFiles/htmsim_htm.dir/runtime.cc.o.d"
  "CMakeFiles/htmsim_htm.dir/stats.cc.o"
  "CMakeFiles/htmsim_htm.dir/stats.cc.o.d"
  "CMakeFiles/htmsim_htm.dir/tx.cc.o"
  "CMakeFiles/htmsim_htm.dir/tx.cc.o.d"
  "libhtmsim_htm.a"
  "libhtmsim_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmsim_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for htmsim_htm.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/htm/machine.cc" "src/htm/CMakeFiles/htmsim_htm.dir/machine.cc.o" "gcc" "src/htm/CMakeFiles/htmsim_htm.dir/machine.cc.o.d"
  "/root/repo/src/htm/runtime.cc" "src/htm/CMakeFiles/htmsim_htm.dir/runtime.cc.o" "gcc" "src/htm/CMakeFiles/htmsim_htm.dir/runtime.cc.o.d"
  "/root/repo/src/htm/stats.cc" "src/htm/CMakeFiles/htmsim_htm.dir/stats.cc.o" "gcc" "src/htm/CMakeFiles/htmsim_htm.dir/stats.cc.o.d"
  "/root/repo/src/htm/tx.cc" "src/htm/CMakeFiles/htmsim_htm.dir/tx.cc.o" "gcc" "src/htm/CMakeFiles/htmsim_htm.dir/tx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/htmsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libhtmsim_sim.a"
)

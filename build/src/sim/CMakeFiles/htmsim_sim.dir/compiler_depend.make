# Empty compiler generated dependencies file for htmsim_sim.
# This may be replaced when dependencies are built.

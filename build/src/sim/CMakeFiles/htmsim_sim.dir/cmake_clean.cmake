file(REMOVE_RECURSE
  "CMakeFiles/htmsim_sim.dir/fiber.cc.o"
  "CMakeFiles/htmsim_sim.dir/fiber.cc.o.d"
  "CMakeFiles/htmsim_sim.dir/scheduler.cc.o"
  "CMakeFiles/htmsim_sim.dir/scheduler.cc.o.d"
  "libhtmsim_sim.a"
  "libhtmsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

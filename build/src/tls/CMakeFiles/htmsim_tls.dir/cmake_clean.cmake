file(REMOVE_RECURSE
  "CMakeFiles/htmsim_tls.dir/tls.cc.o"
  "CMakeFiles/htmsim_tls.dir/tls.cc.o.d"
  "libhtmsim_tls.a"
  "libhtmsim_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmsim_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for htmsim_tls.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libhtmsim_tls.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/htmsim_stamp.dir/bayes/bayes.cc.o"
  "CMakeFiles/htmsim_stamp.dir/bayes/bayes.cc.o.d"
  "CMakeFiles/htmsim_stamp.dir/genome/genome.cc.o"
  "CMakeFiles/htmsim_stamp.dir/genome/genome.cc.o.d"
  "CMakeFiles/htmsim_stamp.dir/kmeans/kmeans.cc.o"
  "CMakeFiles/htmsim_stamp.dir/kmeans/kmeans.cc.o.d"
  "CMakeFiles/htmsim_stamp.dir/labyrinth/labyrinth.cc.o"
  "CMakeFiles/htmsim_stamp.dir/labyrinth/labyrinth.cc.o.d"
  "CMakeFiles/htmsim_stamp.dir/ssca2/ssca2.cc.o"
  "CMakeFiles/htmsim_stamp.dir/ssca2/ssca2.cc.o.d"
  "CMakeFiles/htmsim_stamp.dir/vacation/vacation.cc.o"
  "CMakeFiles/htmsim_stamp.dir/vacation/vacation.cc.o.d"
  "CMakeFiles/htmsim_stamp.dir/yada/yada.cc.o"
  "CMakeFiles/htmsim_stamp.dir/yada/yada.cc.o.d"
  "libhtmsim_stamp.a"
  "libhtmsim_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmsim_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

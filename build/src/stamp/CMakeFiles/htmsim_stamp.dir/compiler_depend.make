# Empty compiler generated dependencies file for htmsim_stamp.
# This may be replaced when dependencies are built.

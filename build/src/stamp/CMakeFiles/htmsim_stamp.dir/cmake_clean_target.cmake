file(REMOVE_RECURSE
  "libhtmsim_stamp.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stamp/bayes/bayes.cc" "src/stamp/CMakeFiles/htmsim_stamp.dir/bayes/bayes.cc.o" "gcc" "src/stamp/CMakeFiles/htmsim_stamp.dir/bayes/bayes.cc.o.d"
  "/root/repo/src/stamp/genome/genome.cc" "src/stamp/CMakeFiles/htmsim_stamp.dir/genome/genome.cc.o" "gcc" "src/stamp/CMakeFiles/htmsim_stamp.dir/genome/genome.cc.o.d"
  "/root/repo/src/stamp/kmeans/kmeans.cc" "src/stamp/CMakeFiles/htmsim_stamp.dir/kmeans/kmeans.cc.o" "gcc" "src/stamp/CMakeFiles/htmsim_stamp.dir/kmeans/kmeans.cc.o.d"
  "/root/repo/src/stamp/labyrinth/labyrinth.cc" "src/stamp/CMakeFiles/htmsim_stamp.dir/labyrinth/labyrinth.cc.o" "gcc" "src/stamp/CMakeFiles/htmsim_stamp.dir/labyrinth/labyrinth.cc.o.d"
  "/root/repo/src/stamp/ssca2/ssca2.cc" "src/stamp/CMakeFiles/htmsim_stamp.dir/ssca2/ssca2.cc.o" "gcc" "src/stamp/CMakeFiles/htmsim_stamp.dir/ssca2/ssca2.cc.o.d"
  "/root/repo/src/stamp/vacation/vacation.cc" "src/stamp/CMakeFiles/htmsim_stamp.dir/vacation/vacation.cc.o" "gcc" "src/stamp/CMakeFiles/htmsim_stamp.dir/vacation/vacation.cc.o.d"
  "/root/repo/src/stamp/yada/yada.cc" "src/stamp/CMakeFiles/htmsim_stamp.dir/yada/yada.cc.o" "gcc" "src/stamp/CMakeFiles/htmsim_stamp.dir/yada/yada.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/htm/CMakeFiles/htmsim_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/htmsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for queue_modes.
# This may be replaced when dependencies are built.

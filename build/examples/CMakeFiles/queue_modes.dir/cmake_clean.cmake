file(REMOVE_RECURSE
  "CMakeFiles/queue_modes.dir/queue_modes.cpp.o"
  "CMakeFiles/queue_modes.dir/queue_modes.cpp.o.d"
  "queue_modes"
  "queue_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tls_loop.dir/tls_loop.cpp.o"
  "CMakeFiles/tls_loop.dir/tls_loop.cpp.o.d"
  "tls_loop"
  "tls_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

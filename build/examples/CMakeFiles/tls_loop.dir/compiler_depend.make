# Empty compiler generated dependencies file for tls_loop.
# This may be replaced when dependencies are built.

#include "concurrent_queue.hh"

#include "htm/node_pool.hh"

namespace htmsim::clq
{

using htm::AbortCause;
using htm::Runtime;
using htm::Tx;
using sim::ThreadContext;

namespace
{

/** Attempt budget of the transactional queue modes (Section 6.1). */
int
tmAttempts(QueueMode mode, int retries)
{
    return mode == QueueMode::noRetryTm ? 1 : retries;
}

} // namespace

ConcurrentQueue::ConcurrentQueue()
{
    Node* dummy = makeNode(0);
    head_ = dummy;
    tail_ = dummy;
}

ConcurrentQueue::~ConcurrentQueue()
{
    for (Node* node : registry_)
        htm::NodePool::instance().free(node, sizeof(Node));
}

ConcurrentQueue::Node*
ConcurrentQueue::makeNode(std::uint64_t value)
{
    auto* node = static_cast<Node*>(
        htm::NodePool::instance().alloc(sizeof(Node)));
    node->value = value;
    node->next = nullptr;
    registry_.push_back(node);
    return node;
}

std::size_t
ConcurrentQueue::sizeHost() const
{
    std::size_t count = 0;
    for (const Node* node = head_->next; node != nullptr;
         node = node->next) {
        ++count;
    }
    return count;
}

void
ConcurrentQueue::enqueueLockFree(Runtime& runtime, ThreadContext& ctx,
                                 Node* node)
{
    for (;;) {
        Node* tail = runtime.nonTxLoad(ctx, &tail_);
        Node* next = runtime.nonTxLoad(ctx, &tail->next);
        ctx.advance(lockFreePathWork);
        if (tail != runtime.nonTxLoad(ctx, &tail_))
            continue; // inconsistent snapshot
        if (next == nullptr) {
            if (runtime.nonTxCas(ctx, &tail->next,
                                 static_cast<Node*>(nullptr), node)) {
                runtime.nonTxCas(ctx, &tail_, tail, node);
                return;
            }
        } else {
            // Help a lagging tail forward.
            runtime.nonTxCas(ctx, &tail_, tail, next);
        }
    }
}

bool
ConcurrentQueue::dequeueLockFree(Runtime& runtime, ThreadContext& ctx,
                                 std::uint64_t* out)
{
    for (;;) {
        Node* head = runtime.nonTxLoad(ctx, &head_);
        Node* tail = runtime.nonTxLoad(ctx, &tail_);
        Node* next = runtime.nonTxLoad(ctx, &head->next);
        ctx.advance(lockFreePathWork);
        if (head != runtime.nonTxLoad(ctx, &head_))
            continue;
        if (head == tail) {
            if (next == nullptr)
                return false;
            runtime.nonTxCas(ctx, &tail_, tail, next);
            continue;
        }
        const std::uint64_t value = runtime.nonTxLoad(ctx, &next->value);
        if (runtime.nonTxCas(ctx, &head_, head, next)) {
            if (out != nullptr)
                *out = value;
            return true;
        }
    }
}

void
ConcurrentQueue::enqueue(Runtime& runtime, ThreadContext& ctx,
                         std::uint64_t value, QueueMode mode,
                         int retries)
{
    Node* node = makeNode(value);

    if (mode == QueueMode::lockFree) {
        enqueueLockFree(runtime, ctx, node);
        return;
    }

    if (mode == QueueMode::constrainedTm) {
        static const htm::TxSiteId constrainedSite =
            htm::txSite("clq.enqueue.constrained");
        bool fast_path = false;
        runtime.constrainedAtomic(ctx, constrainedSite, [&](Tx& tx) {
            tx.work(tmPathWork);
            fast_path = enqueueBody(tx, node);
        });
        if (!fast_path)
            enqueueLockFree(runtime, ctx, node);
        return;
    }

    // NoRetryTM and OptRetryTM are the same path with different
    // attempt budgets (BoundedRetryPolicy(1) == NoRetryPolicy); the
    // lock-free queue is the fallback instead of the global lock.
    static const htm::TxSiteId tmSite = htm::txSite("clq.enqueue.tm");
    htm::BoundedRetryPolicy policy(tmAttempts(mode, retries));
    bool fast_path = false;
    const AbortCause cause =
        runtime.tryAtomic(ctx, policy, tmSite, [&](Tx& tx) {
            fast_path = false;
            tx.work(tmPathWork);
            fast_path = enqueueBody(tx, node);
        });
    if (cause != AbortCause::none || !fast_path)
        enqueueLockFree(runtime, ctx, node);
}

bool
ConcurrentQueue::dequeue(Runtime& runtime, ThreadContext& ctx,
                         std::uint64_t* out, QueueMode mode,
                         int retries)
{
    if (mode == QueueMode::lockFree)
        return dequeueLockFree(runtime, ctx, out);

    if (mode == QueueMode::constrainedTm) {
        static const htm::TxSiteId constrainedSite =
            htm::txSite("clq.dequeue.constrained");
        bool empty = false;
        std::uint64_t value = 0;
        runtime.constrainedAtomic(ctx, constrainedSite, [&](Tx& tx) {
            empty = false;
            tx.work(tmPathWork);
            dequeueBody(tx, &empty, &value);
        });
        if (empty)
            return false;
        if (out != nullptr)
            *out = value;
        return true;
    }

    static const htm::TxSiteId tmSite = htm::txSite("clq.dequeue.tm");
    htm::BoundedRetryPolicy policy(tmAttempts(mode, retries));
    bool empty = false;
    std::uint64_t value = 0;
    const AbortCause cause =
        runtime.tryAtomic(ctx, policy, tmSite, [&](Tx& tx) {
            empty = false;
            tx.work(tmPathWork);
            dequeueBody(tx, &empty, &value);
        });
    if (cause != AbortCause::none)
        return dequeueLockFree(runtime, ctx, out);
    if (empty)
        return false;
    if (out != nullptr)
        *out = value;
    return true;
}

} // namespace htmsim::clq

/**
 * @file
 * Concurrent linked queue for the zEC12 constrained-transaction study
 * (paper Section 6.1).
 *
 * Four operation modes over one Michael–Scott queue:
 *  - lockFree:       the original CAS-based algorithm (the baseline;
 *                    extra validation/helping work models the long
 *                    path of java.util.concurrent's queue);
 *  - noRetryTm:      one transactional attempt, then the lock-free
 *                    path (the paper's NoRetryTM);
 *  - optRetryTm:     N transactional retries, then lock-free
 *                    (OptRetryTM with a tuned retry count);
 *  - constrainedTm:  zEC12 constrained transactions — guaranteed to
 *                    commit, no fallback handler at all.
 */

#ifndef HTMSIM_CLQ_CONCURRENT_QUEUE_HH
#define HTMSIM_CLQ_CONCURRENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "htm/runtime.hh"

namespace htmsim::clq
{

/** Operation implementation selector. */
enum class QueueMode : std::uint8_t
{
    lockFree,
    noRetryTm,
    optRetryTm,
    constrainedTm,
};

/**
 * Michael–Scott queue of uint64 payloads with TM-assisted fast paths.
 * Nodes are retired to a registry instead of being freed, sidestepping
 * ABA/use-after-free exactly as an epoch scheme would.
 */
class ConcurrentQueue
{
  public:
    ConcurrentQueue();
    ~ConcurrentQueue();

    /** Cycles of validation/helping work on the lock-free path,
     *  modelling the long java.util.concurrent code path. */
    static constexpr sim::Cycles lockFreePathWork = 150;
    /** Cycles of payload work on the transactional fast path. */
    static constexpr sim::Cycles tmPathWork = 40;

    void enqueue(htm::Runtime& runtime, sim::ThreadContext& ctx,
                 std::uint64_t value, QueueMode mode, int retries);

    bool dequeue(htm::Runtime& runtime, sim::ThreadContext& ctx,
                 std::uint64_t* out, QueueMode mode, int retries);

    /** Host-side size (for verification). */
    std::size_t sizeHost() const;

  private:
    struct Node
    {
        std::uint64_t value;
        Node* next;
    };

    Node* makeNode(std::uint64_t value);

    void enqueueLockFree(htm::Runtime& runtime,
                         sim::ThreadContext& ctx, Node* node);
    bool dequeueLockFree(htm::Runtime& runtime,
                         sim::ThreadContext& ctx, std::uint64_t* out);

    /** Transactional fast-path bodies; return false when the state
     *  requires the lock-free path (lagging tail). */
    template <typename Ctx>
    bool
    enqueueBody(Ctx& c, Node* node)
    {
        Node* tail = c.load(&tail_);
        Node* next = c.load(&tail->next);
        if (next != nullptr)
            return false; // tail lagging: defer to lock-free helping
        c.store(&tail->next, node);
        c.store(&tail_, node);
        return true;
    }

    template <typename Ctx>
    bool
    dequeueBody(Ctx& c, bool* empty, std::uint64_t* out)
    {
        Node* head = c.load(&head_);
        Node* next = c.load(&head->next);
        if (next == nullptr) {
            *empty = true;
            return true;
        }
        *out = c.load(&next->value);
        c.store(&head_, next);
        return true;
    }

    alignas(256) Node* head_;
    alignas(256) Node* tail_;
    std::vector<Node*> registry_;
};

} // namespace htmsim::clq

#endif // HTMSIM_CLQ_CONCURRENT_QUEUE_HH

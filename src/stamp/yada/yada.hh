/**
 * @file
 * STAMP yada port: Ruppert-style Delaunay mesh refinement.
 *
 * Worker threads pop the worst "bad" (skinny) triangle from a shared
 * heap, compute an insertion point (circumcenter, falling back to the
 * centroid near the hull), collect the Bowyer–Watson cavity of
 * triangles whose circumcircles contain the point, and replace the
 * cavity with a fan around the new point — all in one transaction.
 * Cavities make yada's transactions the largest in STAMP: only Blue
 * Gene/Q's capacity absorbs them (paper Figures 2/5/10/11).
 */

#ifndef HTMSIM_STAMP_YADA_YADA_HH
#define HTMSIM_STAMP_YADA_YADA_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "stamp/exec.hh"
#include "tmds/tm_heap.hh"

namespace htmsim::stamp
{

struct YadaParams
{
    /** Initial grid columns/rows (each cell splits into 2 triangles). */
    unsigned gridX = 10;
    unsigned gridY = 10;
    /** Cell aspect ratio; > 2.2 makes every initial triangle skinny. */
    double aspect = 2.5;
    /** Minimum-angle threshold in degrees (STAMP default ~20-30). */
    double minAngleDeg = 25.0;
    /** Additional points the refinement may insert. */
    unsigned pointBudget = 220;
    std::uint64_t seed = 60607;

    static YadaParams simDefault() { return {}; }
};

/** One mesh point. */
struct YadaPoint
{
    double x;
    double y;
};

/** One mesh triangle. Edge i connects v[i] and v[(i+1)%3]; n[i] is
 *  the neighbour across that edge (nullptr on the hull). */
struct YadaTriangle
{
    std::uint64_t v[3];
    YadaTriangle* n[3];
    std::uint64_t alive;
    /** Scaled badness (how far below the angle threshold); 0 = good. */
    std::uint64_t badness;
};

/**
 * Work-queue keys pack the priority into the bits above the pointer
 * (user pointers fit in 48 bits), so heap maintenance compares keys
 * without dereferencing triangles — the standard trick to keep the
 * queue's transactional footprint to the heap array itself.
 */
inline std::uint64_t
yadaHeapKey(const YadaTriangle* triangle)
{
    const std::uint64_t clipped =
        std::min<std::uint64_t>(triangle->badness >> 8, 0xffff);
    return clipped << 48 |
           reinterpret_cast<std::uint64_t>(triangle);
}

inline YadaTriangle*
yadaHeapTriangle(std::uint64_t key)
{
    return reinterpret_cast<YadaTriangle*>(key &
                                           0x0000ffffffffffffULL);
}

/** Worst (highest packed badness) first; pure key comparison. */
struct YadaBadnessCompare
{
    template <typename Ctx>
    static int
    compare(Ctx&, std::uint64_t a, std::uint64_t b)
    {
        return a < b ? -1 : (a > b ? 1 : 0);
    }
};

class YadaApp
{
  public:
    explicit YadaApp(YadaParams params) : params_(params) {}
    ~YadaApp();

    void setup();

    template <typename Exec>
    void
    worker(Exec& exec)
    {
        // Point indices come from a per-thread slab, mirroring
        // STAMP's per-thread TM allocator pools: refinements do not
        // contend on a shared point counter.
        const unsigned threads = exec.numThreads();
        const std::uint64_t slab =
            std::max<std::uint64_t>(1, params_.pointBudget / threads);
        std::uint64_t cursor = initialPoints_ + exec.tid() * slab;
        const std::uint64_t slab_end =
            std::min<std::uint64_t>(cursor + slab, maxPoints_);

        std::vector<YadaTriangle*> created;
        for (;;) {
            // Transaction 1: pop the worst bad triangle (STAMP's
            // TMheap_remove is its own transaction too).
            YadaTriangle* target = nullptr;
            bool heap_empty = false;
            static const htm::TxSiteId popSite =
                htm::txSite("yada.popBadTriangle");
            exec.atomic(popSite, [&](auto& c) {
                target = nullptr;
                heap_empty = false;
                std::uint64_t raw = 0;
                if (!workHeap_->popMax(c, &raw))
                    heap_empty = true;
                else
                    target = yadaHeapTriangle(raw);
            });
            if (heap_empty)
                break;
            if (cursor >= slab_end)
                continue; // budget exhausted: drain the heap unrefined

            // Transaction 2: the cavity refinement. It touches only
            // mesh state; work-queue maintenance is kept out so two
            // disjoint cavities can refine concurrently.
            bool inserted = false;
            created.clear();
            static const htm::TxSiteId refineSite =
                htm::txSite("yada.refineCavity");
            exec.atomic(refineSite, [&](auto& c) {
                created.clear();
                inserted = false;
                if (c.load(&target->alive) == 0)
                    return; // triangle died since it was queued
                inserted = refine(c, target, created, cursor);
            });
            if (inserted)
                ++cursor;
            // Register committed triangles for teardown (host-side).
            for (YadaTriangle* triangle : created)
                allTriangles_.push_back(triangle);

            // Transaction 3: queue the new bad triangles (a separate,
            // small transaction, like STAMP's heap maintenance).
            if (!created.empty()) {
                static const htm::TxSiteId queueSite =
                    htm::txSite("yada.queueBadTriangles");
                exec.atomic(queueSite, [&](auto& c) {
                    for (YadaTriangle* triangle : created) {
                        if (c.load(&triangle->alive) == 0)
                            continue; // already re-consumed
                        if (c.load(&triangle->badness) == 0)
                            continue;
                        workHeap_->insert(c, yadaHeapKey(triangle));
                    }
                });
            }
        }
        pointsUsed_[exec.tid()] = cursor - (initialPoints_ +
                                            exec.tid() * slab);
    }

    bool verify() const;

    /** Points inserted by the refinement across all threads. */
    std::size_t
    pointCount() const
    {
        std::size_t used = initialPoints_;
        for (const auto count : pointsUsed_)
            used += count;
        return used;
    }
    std::size_t
    aliveTriangles() const
    {
        std::size_t count = 0;
        for (const YadaTriangle* triangle : allTriangles_)
            count += triangle->alive ? 1 : 0;
        return count;
    }

  private:
    /** Local snapshot of one triangle, loaded through the context. */
    struct TriSnapshot
    {
        std::uint64_t v[3];
        YadaTriangle* n[3];
        double px[3];
        double py[3];
    };

    template <typename Ctx>
    TriSnapshot
    snapshot(Ctx& c, YadaTriangle* triangle)
    {
        TriSnapshot snap;
        for (int i = 0; i < 3; ++i) {
            snap.v[i] = c.load(&triangle->v[i]);
            snap.n[i] = c.load(&triangle->n[i]);
            snap.px[i] = c.load(&points_[snap.v[i]].x);
            snap.py[i] = c.load(&points_[snap.v[i]].y);
        }
        return snap;
    }

    /** One Bowyer–Watson insertion; fills @p created and returns
     *  true when a point was inserted at @p point_index. */
    template <typename Ctx>
    bool
    refine(Ctx& c, YadaTriangle* target,
           std::vector<YadaTriangle*>& created,
           std::uint64_t point_index)
    {
        TriSnapshot seed_snap = snapshot(c, target);

        // Insertion point: circumcenter when it is safely interior,
        // else the centroid (always interior to the seed triangle).
        double px = 0.0;
        double py = 0.0;
        bool use_centroid = !circumcenter(seed_snap, &px, &py) ||
                            px < margin_ || px > width_ - margin_ ||
                            py < margin_ || py > height_ - margin_;
        YadaTriangle* seed = target;
        if (!use_centroid) {
            seed = locate(c, target, px, py, 64);
            if (seed == nullptr)
                use_centroid = true;
        }
        if (use_centroid) {
            seed = target;
            px = (seed_snap.px[0] + seed_snap.px[1] + seed_snap.px[2]) /
                 3.0;
            py = (seed_snap.py[0] + seed_snap.py[1] + seed_snap.py[2]) /
                 3.0;
        }

        // Cavity: connected triangles whose circumcircle contains the
        // point. Kept in BFS discovery order so iteration (and hence
        // the whole simulation) is deterministic across runs.
        std::vector<std::pair<YadaTriangle*, TriSnapshot>> cavity;
        std::unordered_set<YadaTriangle*> in_cavity;
        cavity.emplace_back(seed, snapshot(c, seed));
        in_cavity.insert(seed);
        for (std::size_t at = 0; at < cavity.size(); ++at) {
            const TriSnapshot snap = cavity[at].second;
            for (int i = 0; i < 3; ++i) {
                YadaTriangle* next = snap.n[i];
                if (next == nullptr || in_cavity.count(next) != 0)
                    continue;
                if (c.load(&next->alive) == 0)
                    continue; // stale link; skip defensively
                TriSnapshot next_snap = snapshot(c, next);
                if (inCircumcircle(next_snap, px, py)) {
                    cavity.emplace_back(next, next_snap);
                    in_cavity.insert(next);
                }
            }
            c.work(60);
        }

        // Cavity boundary: directed edges whose across-neighbour is
        // outside the cavity (or the hull).
        struct BoundaryEdge
        {
            std::uint64_t a;
            std::uint64_t b;
            double ax, ay, bx, by;
            YadaTriangle* outside;
            int outsideEdge;
        };
        std::vector<BoundaryEdge> boundary;
        for (const auto& [triangle, snap] : cavity) {
            (void)triangle;
            for (int i = 0; i < 3; ++i) {
                YadaTriangle* outside = snap.n[i];
                if (outside != nullptr &&
                    in_cavity.count(outside) != 0) {
                    continue;
                }
                BoundaryEdge edge;
                edge.a = snap.v[i];
                edge.b = snap.v[(i + 1) % 3];
                edge.ax = snap.px[i];
                edge.ay = snap.py[i];
                edge.bx = snap.px[(i + 1) % 3];
                edge.by = snap.py[(i + 1) % 3];
                edge.outside = outside;
                edge.outsideEdge = -1;
                if (outside != nullptr) {
                    const TriSnapshot out_snap = snapshot(c, outside);
                    for (int k = 0; k < 3; ++k) {
                        if (out_snap.v[k] == edge.b &&
                            out_snap.v[(k + 1) % 3] == edge.a) {
                            edge.outsideEdge = k;
                        }
                    }
                    if (edge.outsideEdge < 0)
                        return false; // inconsistent link; refuse
                }
                boundary.push_back(edge);
            }
        }
        if (boundary.size() < 3)
            return false;
        // The point must be strictly inside the cavity boundary.
        for (const BoundaryEdge& edge : boundary) {
            if (orient2d(edge.ax, edge.ay, edge.bx, edge.by, px, py) <=
                1e-12) {
                return false; // degenerate; drop this refinement
            }
        }

        // Write the new point into this thread's slab slot.
        c.store(&points_[point_index].x, px);
        c.store(&points_[point_index].y, py);

        // Kill the cavity.
        for (const auto& [triangle, snap] : cavity) {
            (void)snap;
            c.store(&triangle->alive, std::uint64_t(0));
        }

        // Build the fan: one triangle (a, b, p) per boundary edge.
        struct FanEntry
        {
            YadaTriangle* triangle;
            std::uint64_t a;
            std::uint64_t b;
        };
        std::vector<FanEntry> fan;
        fan.reserve(boundary.size());
        for (const BoundaryEdge& edge : boundary) {
            const double badness = triangleBadness(
                edge.ax, edge.ay, edge.bx, edge.by, px, py);
            auto* fresh = c.template create<YadaTriangle>(
                YadaTriangle{{edge.a, edge.b, point_index},
                             {edge.outside, nullptr, nullptr},
                             1,
                             std::uint64_t(badness * 1e6)});
            if (edge.outside != nullptr) {
                c.store(&edge.outside->n[edge.outsideEdge], fresh);
            }
            fan.push_back({fresh, edge.a, edge.b});
            c.work(120);
        }

        // Stitch fan neighbours: triangle with edge (b, p) pairs with
        // the fan triangle whose a == this b.
        std::unordered_map<std::uint64_t, YadaTriangle*> by_a;
        for (const FanEntry& entry : fan)
            by_a[entry.a] = entry.triangle;
        for (const FanEntry& entry : fan) {
            // Edge 1 of (a, b, p) is (b, p): partner is fan tri with
            // a == b. Edge 2 is (p, a): partner has b == a, i.e. the
            // tri whose edge 1 we set symmetrically.
            auto partner = by_a.find(entry.b);
            if (partner != by_a.end()) {
                c.store(&entry.triangle->n[1], partner->second);
                c.store(&partner->second->n[2], entry.triangle);
            }
        }

        for (const FanEntry& entry : fan)
            created.push_back(entry.triangle);
        return true;
    }

    /** Walk from @p start towards (x, y); nullptr when lost. */
    template <typename Ctx>
    YadaTriangle*
    locate(Ctx& c, YadaTriangle* start, double x, double y,
           unsigned max_steps)
    {
        YadaTriangle* at = start;
        for (unsigned step = 0; step < max_steps; ++step) {
            if (c.load(&at->alive) == 0)
                return nullptr;
            const TriSnapshot snap = snapshot(c, at);
            bool moved = false;
            for (int i = 0; i < 3; ++i) {
                if (orient2d(snap.px[i], snap.py[i],
                             snap.px[(i + 1) % 3],
                             snap.py[(i + 1) % 3], x, y) < 0.0) {
                    if (snap.n[i] == nullptr)
                        return nullptr; // point outside the hull side
                    at = snap.n[i];
                    moved = true;
                    break;
                }
            }
            if (!moved)
                return at; // inside (or on) all edges
        }
        return nullptr;
    }

    // Geometry helpers (host math on snapshot coordinates).
    static double orient2d(double ax, double ay, double bx, double by,
                           double cx, double cy);
    static bool circumcenter(const TriSnapshot& snap, double* x,
                             double* y);
    static bool inCircumcircle(const TriSnapshot& snap, double x,
                               double y);
    /** 0 when the triangle meets the angle bound, else the deficit. */
    double triangleBadness(double ax, double ay, double bx, double by,
                           double cx, double cy) const;

    YadaParams params_;
    double width_ = 0.0;
    double height_ = 0.0;
    double margin_ = 0.0;
    std::uint64_t maxPoints_ = 0;
    std::uint64_t initialPoints_ = 0;

    std::vector<YadaPoint> points_;
    std::array<std::uint64_t, 64> pointsUsed_{};
    std::vector<YadaTriangle*> allTriangles_;
    std::unique_ptr<tmds::TmHeap<YadaBadnessCompare>> workHeap_;
};

} // namespace htmsim::stamp

#endif // HTMSIM_STAMP_YADA_YADA_HH

#include "yada.hh"

#include <cmath>
#include <map>

#include "htm/context.hh"
#include "htm/node_pool.hh"
#include "sim/random.hh"

namespace htmsim::stamp
{

YadaApp::~YadaApp()
{
    for (YadaTriangle* triangle : allTriangles_) {
        htm::NodePool::instance().free(triangle,
                                       sizeof(YadaTriangle));
    }
}

double
YadaApp::orient2d(double ax, double ay, double bx, double by, double cx,
                  double cy)
{
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
}

bool
YadaApp::circumcenter(const TriSnapshot& snap, double* x, double* y)
{
    const double ax = snap.px[0], ay = snap.py[0];
    const double bx = snap.px[1], by = snap.py[1];
    const double cx = snap.px[2], cy = snap.py[2];
    const double d =
        2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by));
    if (std::fabs(d) < 1e-12)
        return false;
    const double a2 = ax * ax + ay * ay;
    const double b2 = bx * bx + by * by;
    const double c2 = cx * cx + cy * cy;
    *x = (a2 * (by - cy) + b2 * (cy - ay) + c2 * (ay - by)) / d;
    *y = (a2 * (cx - bx) + b2 * (ax - cx) + c2 * (bx - ax)) / d;
    return true;
}

bool
YadaApp::inCircumcircle(const TriSnapshot& snap, double x, double y)
{
    double ccx = 0.0;
    double ccy = 0.0;
    if (!circumcenter(snap, &ccx, &ccy))
        return false;
    const double radius2 =
        (snap.px[0] - ccx) * (snap.px[0] - ccx) +
        (snap.py[0] - ccy) * (snap.py[0] - ccy);
    const double distance2 =
        (x - ccx) * (x - ccx) + (y - ccy) * (y - ccy);
    return distance2 < radius2 * (1.0 - 1e-12);
}

double
YadaApp::triangleBadness(double ax, double ay, double bx, double by,
                         double cx, double cy) const
{
    const double a2 = (bx - cx) * (bx - cx) + (by - cy) * (by - cy);
    const double b2 = (ax - cx) * (ax - cx) + (ay - cy) * (ay - cy);
    const double c2 = (ax - bx) * (ax - bx) + (ay - by) * (ay - by);
    const double a = std::sqrt(a2);
    const double b = std::sqrt(b2);
    const double c = std::sqrt(c2);
    if (a < 1e-12 || b < 1e-12 || c < 1e-12)
        return 0.0;
    // Angles via the law of cosines; clamp for safety.
    auto angle = [](double opposite2, double s1, double s2,
                    double s12, double s22) {
        double cosine = (s12 + s22 - opposite2) / (2.0 * s1 * s2);
        cosine = std::min(1.0, std::max(-1.0, cosine));
        return std::acos(cosine) * 180.0 / 3.14159265358979323846;
    };
    const double alpha = angle(a2, b, c, b2, c2);
    const double beta = angle(b2, a, c, a2, c2);
    const double gamma = 180.0 - alpha - beta;
    const double min_angle =
        std::min(alpha, std::min(beta, gamma));
    if (min_angle >= params_.minAngleDeg)
        return 0.0;
    return params_.minAngleDeg - min_angle;
}

void
YadaApp::setup()
{
    sim::Rng rng(params_.seed);
    const unsigned gx = params_.gridX;
    const unsigned gy = params_.gridY;
    width_ = gx * params_.aspect;
    height_ = double(gy);
    margin_ = 0.25;

    const std::uint64_t initial_points =
        std::uint64_t(gx + 1) * (gy + 1);
    initialPoints_ = initial_points;
    maxPoints_ = initial_points + params_.pointBudget;
    points_.assign(maxPoints_, YadaPoint{0.0, 0.0});
    pointsUsed_.fill(0);

    auto point_index = [&](unsigned i, unsigned j) {
        return std::uint64_t(j) * (gx + 1) + i;
    };
    for (unsigned j = 0; j <= gy; ++j) {
        for (unsigned i = 0; i <= gx; ++i) {
            double x = double(i) * params_.aspect;
            double y = double(j);
            const bool interior =
                i > 0 && i < gx && j > 0 && j < gy;
            if (interior) {
                x += (rng.nextDouble() - 0.5) * 0.3;
                y += (rng.nextDouble() - 0.5) * 0.3;
            }
            points_[point_index(i, j)] = {x, y};
        }
    }
    // Two CCW triangles per cell.
    allTriangles_.clear();
    for (unsigned j = 0; j < gy; ++j) {
        for (unsigned i = 0; i < gx; ++i) {
            const std::uint64_t p00 = point_index(i, j);
            const std::uint64_t p10 = point_index(i + 1, j);
            const std::uint64_t p01 = point_index(i, j + 1);
            const std::uint64_t p11 = point_index(i + 1, j + 1);
            htm::DirectContext direct;
            allTriangles_.push_back(
                direct.create<YadaTriangle>(YadaTriangle{
                    {p00, p10, p11}, {nullptr, nullptr, nullptr}, 1,
                    0}));
            allTriangles_.push_back(
                direct.create<YadaTriangle>(YadaTriangle{
                    {p00, p11, p01}, {nullptr, nullptr, nullptr}, 1,
                    0}));
        }
    }

    // Link neighbours via an undirected edge map.
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::pair<YadaTriangle*, int>> edges;
    for (YadaTriangle* triangle : allTriangles_) {
        for (int i = 0; i < 3; ++i) {
            const std::uint64_t a = triangle->v[i];
            const std::uint64_t b = triangle->v[(i + 1) % 3];
            const auto key = std::minmax(a, b);
            auto it = edges.find(key);
            if (it == edges.end()) {
                edges.emplace(key, std::make_pair(triangle, i));
            } else {
                triangle->n[i] = it->second.first;
                it->second.first->n[it->second.second] = triangle;
            }
        }
    }

    // Compute badness and queue the skinny triangles. The queueing
    // order is shuffled: with near-equal badness values a row-major
    // order would hand concurrent workers *adjacent* triangles, whose
    // cavities always overlap — an artifact no irregular real-world
    // mesh has.
    workHeap_ = std::make_unique<tmds::TmHeap<YadaBadnessCompare>>(
        allTriangles_.size() * 4);
    htm::DirectContext c;
    std::vector<YadaTriangle*> bad;
    for (YadaTriangle* triangle : allTriangles_) {
        const double badness = triangleBadness(
            points_[triangle->v[0]].x, points_[triangle->v[0]].y,
            points_[triangle->v[1]].x, points_[triangle->v[1]].y,
            points_[triangle->v[2]].x, points_[triangle->v[2]].y);
        triangle->badness = std::uint64_t(badness * 1e6);
        if (triangle->badness > 0)
            bad.push_back(triangle);
    }
    for (std::size_t i = bad.size(); i > 1; --i)
        std::swap(bad[i - 1], bad[rng.nextRange(i)]);
    for (YadaTriangle* triangle : bad)
        workHeap_->insert(c, yadaHeapKey(triangle));
}

bool
YadaApp::verify() const
{
    if (pointCount() > maxPoints_)
        return false;

    double total_area = 0.0;
    std::map<std::pair<std::uint64_t, std::uint64_t>, unsigned>
        edge_count;

    for (const YadaTriangle* triangle : allTriangles_) {
        if (!triangle->alive)
            continue;
        const YadaPoint& a = points_[triangle->v[0]];
        const YadaPoint& b = points_[triangle->v[1]];
        const YadaPoint& p = points_[triangle->v[2]];
        const double area =
            orient2d(a.x, a.y, b.x, b.y, p.x, p.y) / 2.0;
        if (area <= 0.0)
            return false; // flipped or degenerate triangle
        total_area += area;

        for (int i = 0; i < 3; ++i) {
            const std::uint64_t va = triangle->v[i];
            const std::uint64_t vb = triangle->v[(i + 1) % 3];
            ++edge_count[std::minmax(va, vb)];

            const YadaTriangle* neighbour = triangle->n[i];
            if (neighbour == nullptr)
                continue;
            if (!neighbour->alive)
                return false; // dangling link to a dead triangle
            bool mutual = false;
            for (int k = 0; k < 3; ++k) {
                if (neighbour->v[k] == vb &&
                    neighbour->v[(k + 1) % 3] == va &&
                    neighbour->n[k] == triangle) {
                    mutual = true;
                }
            }
            if (!mutual)
                return false;
        }
    }

    // Conformity: every undirected edge bounds at most two alive
    // triangles.
    for (const auto& [edge, count] : edge_count) {
        if (count > 2)
            return false;
    }

    // Area conservation: refinement re-tiles cavities exactly.
    const double expected = width_ * height_;
    return std::fabs(total_area - expected) < 1e-6 * expected;
}

} // namespace htmsim::stamp

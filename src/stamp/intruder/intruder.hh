/**
 * @file
 * STAMP intruder port: signature-based network intrusion detection.
 *
 * Packets (flow fragments) arrive in a shared queue in scrambled
 * order. Worker threads pop a fragment (transaction 1), insert it into
 * the per-flow reassembly state under the flow map (transaction 2,
 * which also assembles the complete flow when its last fragment
 * lands), then run the signature detector on the assembled flow (pure
 * compute) and account the result.
 *
 * Structure variants (paper Section 4):
 *  - original: flow map = red-black tree, fragment sets = sorted
 *    linked lists;
 *  - modified: flow map = hash table, fragment sets = red-black trees.
 */

#ifndef HTMSIM_STAMP_INTRUDER_INTRUDER_HH
#define HTMSIM_STAMP_INTRUDER_INTRUDER_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "htm/node_pool.hh"
#include "stamp/exec.hh"
#include "tmds/tm_hashtable.hh"
#include "tmds/tm_list.hh"
#include "tmds/tm_queue.hh"
#include "tmds/tm_rbtree.hh"

namespace htmsim::stamp
{

struct IntruderParams
{
    unsigned numFlows = 256;
    unsigned minFlowLength = 64;
    unsigned maxFlowLength = 192;
    unsigned maxFragments = 6;
    /** Percent of flows carrying the attack signature. */
    unsigned attackPct = 10;
    std::uint64_t seed = 90210;

    static IntruderParams simDefault() { return {}; }
};

/** The signature the detector scans for. */
constexpr const char* intruderSignature = "ATTACK";

/** One network fragment. */
struct IntruderFragment
{
    std::uint64_t flowId;
    std::uint64_t fragmentId;
    std::uint64_t isLast; ///< carries the fragment count when last
    std::uint64_t length;
    const char* chars;
};

/**
 * Intrusion detector, parameterized on reassembly structures.
 * @tparam FlowMap  unordered flowId -> FlowState (rbtree | hashtable)
 * @tparam FragSet  ordered fragmentId -> fragment (list | rbtree)
 */
template <typename FlowMap, typename FragSet>
class IntruderAppT
{
  public:
    explicit IntruderAppT(IntruderParams params) : params_(params) {}

    void
    setup()
    {
        sim::Rng rng(params_.seed);
        htm::DirectContext c;

        flowMap_ = std::make_unique<FlowMap>(params_.numFlows / 2);
        inputQueue_ = std::make_unique<tmds::TmQueue>(
            params_.numFlows * params_.maxFragments + 8);
        flowStates_.clear();
        fragments_.clear();
        charPool_.clear();
        attacksInjected_ = 0;
        flowsCompleted_ = 0;
        attacksFound_ = 0;

        // Generate flow payloads.
        const std::size_t pool_bytes =
            std::size_t(params_.numFlows) * params_.maxFlowLength;
        charPool_.resize(pool_bytes);
        std::vector<std::pair<const char*, unsigned>> flows;
        std::size_t pool_used = 0;
        static const char letters[] = "abcdefghijklmnopqrstuvwxyz";
        const unsigned signature_length =
            unsigned(std::strlen(intruderSignature));
        for (unsigned f = 0; f < params_.numFlows; ++f) {
            const unsigned length =
                params_.minFlowLength +
                unsigned(rng.nextRange(params_.maxFlowLength -
                                       params_.minFlowLength + 1));
            char* chars = charPool_.data() + pool_used;
            pool_used += length;
            for (unsigned i = 0; i < length; ++i)
                chars[i] = letters[rng.nextRange(26)];
            if (rng.nextRange(100) < params_.attackPct) {
                const unsigned at = unsigned(
                    rng.nextRange(length - signature_length));
                std::memcpy(chars + at, intruderSignature,
                            signature_length);
                ++attacksInjected_;
            }
            flows.push_back({chars, length});
        }

        // Pre-allocate flow reassembly states (one per flow).
        flowStates_.reserve(params_.numFlows);
        for (unsigned f = 0; f < params_.numFlows; ++f) {
            flowStates_.push_back(std::make_unique<FlowState>());
        }

        // Fragment the flows and scramble all fragments into the
        // input queue.
        for (unsigned f = 0; f < params_.numFlows; ++f) {
            const auto [chars, length] = flows[f];
            const unsigned fragments =
                1 + unsigned(rng.nextRange(params_.maxFragments));
            const unsigned base = length / fragments;
            unsigned offset = 0;
            for (unsigned i = 0; i < fragments; ++i) {
                const unsigned fragment_length =
                    i + 1 == fragments ? length - offset : base;
                fragments_.push_back(std::make_unique<
                                     IntruderFragment>(IntruderFragment{
                    f, i, i + 1 == fragments ? fragments : 0,
                    fragment_length, chars + offset}));
                offset += fragment_length;
            }
        }
        // Fisher-Yates scramble of fragment arrival order.
        for (std::size_t i = fragments_.size(); i > 1; --i) {
            const std::size_t j = rng.nextRange(i);
            std::swap(fragments_[i - 1], fragments_[j]);
        }
        for (const auto& fragment : fragments_) {
            inputQueue_->push(
                c, reinterpret_cast<std::uint64_t>(fragment.get()));
        }
        perThreadAttacks_.assign(64, 0);
        perThreadFlows_.assign(64, 0);
    }

    template <typename Exec>
    void
    worker(Exec& exec)
    {
        for (;;) {
            IntruderFragment* fragment = nullptr;
            static const htm::TxSiteId popSite =
                htm::txSite("intruder.popFragment");
            exec.atomic(popSite, [&](auto& c) {
                std::uint64_t raw = 0;
                fragment = inputQueue_->pop(c, &raw)
                               ? reinterpret_cast<IntruderFragment*>(
                                     raw)
                               : nullptr;
            });
            if (fragment == nullptr)
                break;

            char* assembled = nullptr;
            std::uint64_t assembled_length = 0;
            static const htm::TxSiteId assembleSite =
                htm::txSite("intruder.assemble");
            exec.atomic(assembleSite, [&](auto& c) {
                assembled = nullptr;
                assembled_length = 0;
                decode(c, fragment, &assembled, &assembled_length);
            });

            if (assembled != nullptr) {
                const bool attack =
                    detect(exec, assembled, assembled_length);
                ++perThreadFlows_[exec.tid()];
                if (attack)
                    ++perThreadAttacks_[exec.tid()];
                htm::NodePool::instance().free(assembled,
                                               assembled_length + 1);
            }
        }
        exec.barrier();
        if (exec.tid() == 0) {
            for (unsigned t = 0; t < 64; ++t) {
                attacksFound_ += perThreadAttacks_[t];
                flowsCompleted_ += perThreadFlows_[t];
            }
        }
    }

    bool
    verify() const
    {
        htm::DirectContext c;
        if (flowsCompleted_ != params_.numFlows)
            return false;
        if (attacksFound_ != attacksInjected_)
            return false;
        // All flows must have been retired from the map.
        return const_cast<FlowMap&>(*flowMap_).size(c) == 0;
    }

    std::uint64_t attacksInjected() const { return attacksInjected_; }
    std::uint64_t attacksFound() const { return attacksFound_; }

  private:
    struct FlowState
    {
        std::uint64_t arrived = 0;
        std::uint64_t total = 0;
        FragSet fragments;

        FlowState() : fragments(8) {}
    };

    /**
     * Transactional decoder: track the fragment; on completion,
     * assemble the flow into a transactionally allocated buffer and
     * retire the flow from the map.
     */
    template <typename Ctx>
    void
    decode(Ctx& c, IntruderFragment* fragment, char** assembled_out,
           std::uint64_t* length_out)
    {
        const std::uint64_t flow_id = fragment->flowId;
        FlowState* state = flowStates_[flow_id].get();

        std::uint64_t raw_state = 0;
        if (!flowMap_->find(c, flow_id, &raw_state)) {
            flowMap_->insert(
                c, flow_id, reinterpret_cast<std::uint64_t>(state));
        }

        if (!state->fragments.insert(
                c, fragment->fragmentId,
                reinterpret_cast<std::uint64_t>(fragment))) {
            return; // duplicate delivery (cannot happen here)
        }
        const std::uint64_t arrived = c.load(&state->arrived) + 1;
        c.store(&state->arrived, arrived);
        if (fragment->isLast != 0)
            c.store(&state->total, fragment->isLast);

        c.work(60); // header parsing / checksum per fragment
        const std::uint64_t total = c.load(&state->total);
        if (total == 0 || arrived != total)
            return;

        // Complete: assemble in fragment order, reading payload bytes
        // and writing the buffer transactionally (both contribute to
        // the footprint, as in STAMP).
        std::uint64_t length = 0;
        state->fragments.forEach(
            c, [&](std::uint64_t, std::uint64_t raw) {
                length += reinterpret_cast<IntruderFragment*>(raw)
                              ->length;
            });
        char* buffer = static_cast<char*>(c.allocBytes(length + 1));
        std::uint64_t at = 0;
        state->fragments.forEach(
            c, [&](std::uint64_t, std::uint64_t raw) {
                auto* piece =
                    reinterpret_cast<IntruderFragment*>(raw);
                for (std::uint64_t i = 0; i < piece->length; ++i) {
                    c.store(&buffer[at++],
                            c.load(&piece->chars[i]));
                }
                c.work(sim::Cycles(piece->length)); // copy arithmetic
            });
        c.store(&buffer[length], char(0));

        // Retire the flow.
        drainFragments(c, *state);
        c.store(&state->arrived, std::uint64_t(0));
        c.store(&state->total, std::uint64_t(0));
        flowMap_->remove(c, flow_id);

        *assembled_out = buffer;
        *length_out = length;
    }

    template <typename Ctx>
    void
    drainFragments(Ctx& c, FlowState& state)
    {
        // Remove every remaining fragment entry from the set.
        for (;;) {
            std::uint64_t key = ~std::uint64_t(0);
            bool any = false;
            state.fragments.forEach(
                c, [&](std::uint64_t k, std::uint64_t) {
                    if (!any) {
                        key = k;
                        any = true;
                    }
                });
            if (!any)
                break;
            state.fragments.remove(c, key);
        }
    }

    /** Signature scan: host compute, charged as work. */
    template <typename Exec>
    bool
    detect(Exec& exec, const char* chars, std::uint64_t length)
    {
        exec.work(sim::Cycles(length) * 2);
        return std::strstr(chars, intruderSignature) != nullptr;
    }

    IntruderParams params_;
    std::unique_ptr<FlowMap> flowMap_;
    std::unique_ptr<tmds::TmQueue> inputQueue_;
    std::vector<std::unique_ptr<FlowState>> flowStates_;
    std::vector<std::unique_ptr<IntruderFragment>> fragments_;
    std::vector<char> charPool_;

    std::vector<std::uint64_t> perThreadAttacks_;
    std::vector<std::uint64_t> perThreadFlows_;
    std::uint64_t attacksInjected_ = 0;
    std::uint64_t attacksFound_ = 0;
    std::uint64_t flowsCompleted_ = 0;
};

/** Paper's modified variant. */
using IntruderApp = IntruderAppT<tmds::TmHashTable<>, tmds::TmRbTree>;
/** Original STAMP variant. */
using IntruderAppOriginal =
    IntruderAppT<tmds::TmRbTree, tmds::TmList<>>;

} // namespace htmsim::stamp

#endif // HTMSIM_STAMP_INTRUDER_INTRUDER_HH

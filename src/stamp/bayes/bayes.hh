/**
 * @file
 * STAMP bayes port: Bayesian-network structure learning by parallel
 * hill climbing.
 *
 * Threads pop "improve this variable" tasks from a shared list, score
 * candidate parent insertions against the training data (heavy pure
 * compute), then transactionally re-validate the score, check
 * acyclicity, and apply the edge. The paper excludes bayes from its
 * averages because the search order — and therefore the runtime — is
 * highly non-deterministic under concurrency; the same holds here
 * across thread counts (within one seed+thread-count configuration the
 * simulation is still exactly reproducible).
 *
 * The ADtree of the original is replaced by direct counting over the
 * record set (charged as compute work); the transactional profile —
 * task list, adjacency updates, score bookkeeping — is preserved.
 */

#ifndef HTMSIM_STAMP_BAYES_BAYES_HH
#define HTMSIM_STAMP_BAYES_BAYES_HH

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "stamp/exec.hh"
#include "tmds/tm_list.hh"

namespace htmsim::stamp
{

struct BayesParams
{
    unsigned numVars = 16;
    unsigned numRecords = 256;
    unsigned maxParents = 3;
    /** Edges in the hidden generator network. */
    unsigned generatorEdges = 20;
    /** Minimum log-likelihood gain to accept an insertion. */
    double minGain = 1.0;
    std::uint64_t seed = 1337;

    static BayesParams simDefault() { return {}; }
};

class BayesApp
{
  public:
    explicit BayesApp(BayesParams params) : params_(params) {}

    void setup();

    template <typename Exec>
    void
    worker(Exec& exec)
    {
        for (;;) {
            std::uint64_t var = 0;
            bool have_task = false;
            static const htm::TxSiteId pickSite =
                htm::txSite("bayes.pickTask");
            exec.atomic(pickSite, [&](auto& c) {
                have_task = taskList_->popFront(c, &var, nullptr);
            });
            if (!have_task)
                break;
            processTask(exec, unsigned(var));
        }
    }

    bool verify() const;

    /** Network log-likelihood gain over the empty network. */
    double
    totalGain() const
    {
        double sum = 0.0;
        for (const double gain : totalGainShared_)
            sum += gain;
        return sum;
    }
    unsigned edgeCount() const;

  private:
    template <typename Exec>
    void
    processTask(Exec& exec, unsigned var)
    {
        // Score all candidate parents against a host snapshot of the
        // current parent set (heavy compute, charged as work).
        std::vector<unsigned> parents = parentsOf(var);
        int best_parent = -1;
        double best_gain = params_.minGain;
        const double base = localScore(var, parents);
        for (unsigned candidate = 0; candidate < params_.numVars;
             ++candidate) {
            if (candidate == var || hasParent(parents, candidate))
                continue;
            parents.push_back(candidate);
            const double gain = localScore(var, parents) - base;
            parents.pop_back();
            if (gain > best_gain) {
                best_gain = gain;
                best_parent = int(candidate);
            }
        }
        exec.work(sim::Cycles(params_.numVars) * params_.numRecords /
                  4);
        if (best_parent < 0 ||
            parents.size() >= params_.maxParents) {
            return;
        }

        // Transactionally re-validate and apply.
        bool applied = false;
        static const htm::TxSiteId applySite =
            htm::txSite("bayes.applyDependency");
        exec.atomic(applySite, [&](auto& c) {
            applied = false;
            // The parent set must be unchanged since scoring.
            if (c.load(&parentCount_[var]) !=
                std::uint64_t(parents.size())) {
                return; // someone raced us; task requeued below
            }
            if (c.load(&adjacency_[unsigned(best_parent) * stride_ +
                                   var]) != 0) {
                return;
            }
            // Acyclicity: reject if var reaches best_parent through
            // current edges (reads spread over the adjacency matrix).
            if (reaches(c, var, unsigned(best_parent)))
                return;
            c.store(&adjacency_[unsigned(best_parent) * stride_ + var],
                    std::uint64_t(1));
            c.store(&parentCount_[var],
                    c.load(&parentCount_[var]) + 1);
            applied = true;
        });

        if (applied) {
            totalGainShared_[exec.tid()] += best_gain;
            // Re-queue the variable: more parents may help.
            static const htm::TxSiteId requeueSite =
                htm::txSite("bayes.requeue");
            exec.atomic(requeueSite, [&](auto& c) {
                taskList_->insert(c, var, 0);
            });
        }
    }

    /** DFS reachability over the live adjacency (transactional). */
    template <typename Ctx>
    bool
    reaches(Ctx& c, unsigned from, unsigned to)
    {
        std::vector<unsigned> stack{from};
        std::vector<char> seen(params_.numVars, 0);
        seen[from] = 1;
        while (!stack.empty()) {
            const unsigned at = stack.back();
            stack.pop_back();
            if (at == to)
                return true;
            for (unsigned next = 0; next < params_.numVars; ++next) {
                if (!seen[next] &&
                    c.load(&adjacency_[at * stride_ + next]) != 0) {
                    seen[next] = 1;
                    stack.push_back(next);
                }
            }
        }
        return false;
    }

    std::vector<unsigned> parentsOf(unsigned var) const;
    static bool
    hasParent(const std::vector<unsigned>& parents, unsigned candidate)
    {
        for (const unsigned parent : parents) {
            if (parent == candidate)
                return true;
        }
        return false;
    }

    /** Log-likelihood of var's column given a parent set (host). */
    double localScore(unsigned var,
                      const std::vector<unsigned>& parents) const;

    BayesParams params_;
    unsigned stride_ = 0;
    std::vector<std::uint64_t> records_; ///< one bitmask per record
    std::vector<std::uint64_t> adjacency_; ///< row parent, col child
    std::vector<std::uint64_t> parentCount_;
    std::unique_ptr<tmds::TmList<>> taskList_;
    std::vector<double> totalGainShared_;
    double totalGain_ = 0.0;
};

} // namespace htmsim::stamp

#endif // HTMSIM_STAMP_BAYES_BAYES_HH

#include "bayes.hh"

#include <algorithm>

#include "htm/context.hh"
#include "sim/random.hh"

namespace htmsim::stamp
{

void
BayesApp::setup()
{
    sim::Rng rng(params_.seed);
    const unsigned v = params_.numVars;
    stride_ = v;
    adjacency_.assign(std::size_t(v) * v, 0);
    parentCount_.assign(v, 0);
    totalGainShared_.assign(64, 0.0);
    totalGain_ = 0.0;

    // Hidden generator DAG: random forward edges under a random
    // topological order.
    std::vector<unsigned> order(v);
    for (unsigned i = 0; i < v; ++i)
        order[i] = i;
    for (std::size_t i = v; i > 1; --i)
        std::swap(order[i - 1], order[rng.nextRange(i)]);

    std::vector<std::vector<unsigned>> gen_parents(v);
    for (unsigned e = 0; e < params_.generatorEdges; ++e) {
        const unsigned a = unsigned(rng.nextRange(v));
        const unsigned b = unsigned(rng.nextRange(v));
        if (a == b)
            continue;
        // Edge from earlier to later in the hidden order.
        unsigned pa = a, pb = b;
        for (const unsigned node : order) {
            if (node == a) {
                pa = a;
                pb = b;
                break;
            }
            if (node == b) {
                pa = b;
                pb = a;
                break;
            }
        }
        auto& parents = gen_parents[pb];
        if (parents.size() < params_.maxParents &&
            std::find(parents.begin(), parents.end(), pa) ==
                parents.end()) {
            parents.push_back(pa);
        }
    }

    // Ancestral sampling: each variable is (roughly) the XOR of its
    // parents with 15 % noise — strongly detectable structure.
    records_.assign(params_.numRecords, 0);
    for (auto& record : records_) {
        for (const unsigned node : order) {
            bool value;
            if (gen_parents[node].empty()) {
                value = rng.nextBool(0.5);
            } else {
                bool x = false;
                for (const unsigned parent : gen_parents[node])
                    x ^= ((record >> parent) & 1) != 0;
                value = rng.nextBool(0.15) ? !x : x;
            }
            if (value)
                record |= std::uint64_t(1) << node;
        }
    }

    // Initial tasks: one per variable.
    taskList_ = std::make_unique<tmds::TmList<>>();
    htm::DirectContext c;
    for (unsigned node = 0; node < v; ++node)
        taskList_->insert(c, node, 0);
}

std::vector<unsigned>
BayesApp::parentsOf(unsigned var) const
{
    std::vector<unsigned> parents;
    for (unsigned p = 0; p < params_.numVars; ++p) {
        if (adjacency_[p * stride_ + var] != 0)
            parents.push_back(p);
    }
    return parents;
}

double
BayesApp::localScore(unsigned var,
                     const std::vector<unsigned>& parents) const
{
    // Log-likelihood with Laplace smoothing, minus a BIC-style
    // complexity penalty per parent configuration.
    const std::size_t configs = std::size_t(1) << parents.size();
    std::vector<std::uint32_t> ones(configs, 0);
    std::vector<std::uint32_t> totals(configs, 0);
    for (const std::uint64_t record : records_) {
        std::size_t config = 0;
        for (std::size_t i = 0; i < parents.size(); ++i)
            config |= ((record >> parents[i]) & 1) << i;
        ++totals[config];
        ones[config] +=
            std::uint32_t((record >> var) & 1);
    }
    double score = 0.0;
    for (std::size_t config = 0; config < configs; ++config) {
        const double n = totals[config];
        const double n1 = ones[config];
        const double p1 = (n1 + 1.0) / (n + 2.0);
        score += n1 * std::log(p1) + (n - n1) * std::log(1.0 - p1);
    }
    score -= 0.5 * std::log(double(params_.numRecords)) *
             double(configs);
    return score;
}

unsigned
BayesApp::edgeCount() const
{
    unsigned count = 0;
    for (const auto cell : adjacency_)
        count += cell != 0 ? 1 : 0;
    return count;
}

bool
BayesApp::verify() const
{
    const unsigned v = params_.numVars;
    // Parent counts must match the adjacency matrix and respect the
    // limit.
    for (unsigned var = 0; var < v; ++var) {
        unsigned parents = 0;
        for (unsigned p = 0; p < v; ++p)
            parents += adjacency_[p * stride_ + var] != 0 ? 1 : 0;
        if (parents != parentCount_[var])
            return false;
        if (parents > params_.maxParents)
            return false;
    }

    // Acyclicity via Kahn's algorithm.
    std::vector<unsigned> indegree(v, 0);
    for (unsigned p = 0; p < v; ++p) {
        for (unsigned child = 0; child < v; ++child)
            indegree[child] += adjacency_[p * stride_ + child] ? 1 : 0;
    }
    std::vector<unsigned> ready;
    for (unsigned node = 0; node < v; ++node) {
        if (indegree[node] == 0)
            ready.push_back(node);
    }
    unsigned removed = 0;
    while (!ready.empty()) {
        const unsigned node = ready.back();
        ready.pop_back();
        ++removed;
        for (unsigned child = 0; child < v; ++child) {
            if (adjacency_[node * stride_ + child] &&
                --indegree[child] == 0) {
                ready.push_back(child);
            }
        }
    }
    if (removed != v)
        return false;

    // Learning must have found some structure.
    return edgeCount() > 0 && totalGain() > 0.0;
}

} // namespace htmsim::stamp

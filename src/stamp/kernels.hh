/**
 * @file
 * Distilled STAMP transaction kernels for simcheck.
 *
 * The full STAMP apps (kmeans.cc, vacation.cc, ...) run phased
 * workloads behind their own harness; the differential oracle in
 * src/check needs the *transactions* those apps execute, reshaped as
 * independent deterministic operations it can replay in an arbitrary
 * serial order. This header distills the two smallest STAMP
 * transaction shapes:
 *
 *  - KmeansAccumKernel — kmeans' accumulator add: one counter
 *    increment plus D accumulator additions into a shared cluster
 *    (STAMP's smallest transaction; commutative state, but the
 *    returned post-increment count orders the adds, so lost updates
 *    still surface in the oracle's result comparison);
 *  - ReservationKernel — vacation's reserve/cancel on a capacity-
 *    bounded resource table: a read-test-write transaction whose
 *    success result and final occupancy both expose stale reads.
 *
 * Kernels are context-templated like the tmds structures, so the same
 * code runs transactionally, under the global-lock replay, and via
 * DirectContext for setup/fingerprinting.
 */

#ifndef HTMSIM_STAMP_KERNELS_HH
#define HTMSIM_STAMP_KERNELS_HH

#include <cstdint>
#include <vector>

namespace htmsim::stamp
{

/** kmeans' per-point transaction over K shared cluster accumulators. */
class KmeansAccumKernel
{
  public:
    KmeansAccumKernel(unsigned clusters, unsigned dims)
        : dims_(dims), counts_(clusters, 0),
          sums_(std::size_t(clusters) * dims, 0)
    {
    }

    unsigned clusters() const { return unsigned(counts_.size()); }
    unsigned dims() const { return dims_; }

    /**
     * Add a point (@p features, dims() entries) into @p cluster.
     * @return the cluster's post-add membership count.
     */
    template <typename Ctx>
    std::uint64_t
    add(Ctx& c, unsigned cluster, const std::uint64_t* features)
    {
        std::uint64_t* sums = &sums_[std::size_t(cluster) * dims_];
        for (unsigned d = 0; d < dims_; ++d)
            c.store(&sums[d], c.load(&sums[d]) + features[d]);
        const std::uint64_t count = c.load(&counts_[cluster]) + 1;
        c.store(&counts_[cluster], count);
        return count;
    }

    /** Structural digest of all counts and sums. */
    template <typename Ctx, typename Fold>
    void
    digest(Ctx& c, Fold&& fold)
    {
        for (std::uint64_t& count : counts_)
            fold(c.load(&count));
        for (std::uint64_t& sum : sums_)
            fold(c.load(&sum));
    }

  private:
    unsigned dims_;
    std::vector<std::uint64_t> counts_;
    std::vector<std::uint64_t> sums_;
};

/** vacation's reserve/cancel over a capacity-bounded resource table. */
class ReservationKernel
{
  public:
    ReservationKernel(unsigned resources, std::uint64_t capacity)
        : capacity_(capacity), used_(resources, 0), revenue_(0)
    {
    }

    unsigned resources() const { return unsigned(used_.size()); }

    /**
     * Try to reserve one unit of @p resource at @p price.
     * @return the new occupancy on success, 0 when full.
     */
    template <typename Ctx>
    std::uint64_t
    reserve(Ctx& c, unsigned resource, std::uint64_t price)
    {
        const std::uint64_t used = c.load(&used_[resource]);
        if (used >= capacity_)
            return 0;
        c.store(&used_[resource], used + 1);
        c.store(&revenue_, c.load(&revenue_) + price);
        return used + 1;
    }

    /**
     * Cancel one unit of @p resource, refunding @p price.
     * @return the new occupancy + 1 on success, 0 when empty.
     */
    template <typename Ctx>
    std::uint64_t
    cancel(Ctx& c, unsigned resource, std::uint64_t price)
    {
        const std::uint64_t used = c.load(&used_[resource]);
        if (used == 0)
            return 0;
        c.store(&used_[resource], used - 1);
        c.store(&revenue_, c.load(&revenue_) - price);
        return used;
    }

    /** Structural digest of occupancies and revenue. */
    template <typename Ctx, typename Fold>
    void
    digest(Ctx& c, Fold&& fold)
    {
        for (std::uint64_t& used : used_)
            fold(c.load(&used));
        fold(c.load(&revenue_));
    }

  private:
    std::uint64_t capacity_;
    std::vector<std::uint64_t> used_;
    std::uint64_t revenue_;
};

} // namespace htmsim::stamp

#endif // HTMSIM_STAMP_KERNELS_HH

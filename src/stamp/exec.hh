/**
 * @file
 * Per-thread executors for STAMP kernels.
 *
 * A kernel is written once as `template <typename Exec> void
 * worker(Exec&)` and instantiated twice: TmExec runs atomic sections
 * through the HTM runtime (with retries and the global-lock fallback);
 * SeqExec runs them inline with ordinary timed accesses — the paper's
 * sequential non-HTM baseline.
 */

#ifndef HTMSIM_STAMP_EXEC_HH
#define HTMSIM_STAMP_EXEC_HH

#include "htm/context.hh"
#include "htm/hle.hh"
#include "htm/runtime.hh"
#include "sim/sim.hh"

namespace htmsim::stamp
{

/** Transactional executor: atomic sections become HTM transactions. */
class TmExec
{
  public:
    TmExec(htm::Runtime& runtime, sim::ThreadContext& ctx,
           sim::Barrier& barrier, unsigned num_threads)
        : runtime_(&runtime), ctx_(&ctx), barrier_(&barrier),
          numThreads_(num_threads)
    {
    }

    static constexpr bool isSequential = false;

    /** Execute @p body atomically (HTM with retries + fallback). */
    template <typename F>
    void
    atomic(F&& body)
    {
        runtime_->atomic(*ctx_, std::forward<F>(body));
    }

    /** atomic() tagged with a static site id (txprof attribution). */
    template <typename F>
    void
    atomic(htm::TxSiteId site, F&& body)
    {
        runtime_->atomic(*ctx_, site, std::forward<F>(body));
    }

    /** Rendezvous with all worker threads. */
    void barrier() { barrier_->arrive(*ctx_); }

    /** Non-transactional compute time. */
    void work(sim::Cycles cycles) { ctx_->step(cycles); }

    template <typename T>
    T
    sharedLoad(const T* addr)
    {
        return runtime_->nonTxLoad(*ctx_, addr);
    }

    template <typename T>
    void
    sharedStore(T* addr, T value)
    {
        runtime_->nonTxStore(*ctx_, addr, value);
    }

    template <typename T>
    T
    fetchAdd(T* addr, T delta)
    {
        return runtime_->nonTxFetchAdd(*ctx_, addr, delta);
    }

    unsigned tid() const { return ctx_->id(); }
    unsigned numThreads() const { return numThreads_; }
    sim::ThreadContext& ctx() { return *ctx_; }
    sim::Rng& rng() { return ctx_->rng(); }
    htm::Runtime& runtime() { return *runtime_; }

  private:
    htm::Runtime* runtime_;
    sim::ThreadContext* ctx_;
    sim::Barrier* barrier_;
    unsigned numThreads_;
};

/**
 * HLE executor (Intel): every atomic section elides one global lock —
 * a single hardware attempt, then the section re-runs with the lock
 * held. No retry tuning is possible, which is exactly what Figure 7
 * measures against tuned RTM.
 */
class HleExec
{
  public:
    HleExec(htm::Runtime& runtime, htm::HleLock& lock,
            sim::ThreadContext& ctx, sim::Barrier& barrier,
            unsigned num_threads)
        : runtime_(&runtime), lock_(&lock), ctx_(&ctx),
          barrier_(&barrier), numThreads_(num_threads)
    {
    }

    static constexpr bool isSequential = false;

    template <typename F>
    void
    atomic(F&& body)
    {
        lock_->execute(*runtime_, *ctx_, std::forward<F>(body));
    }

    /** atomic() tagged with a static site id (txprof attribution). */
    template <typename F>
    void
    atomic(htm::TxSiteId site, F&& body)
    {
        lock_->execute(*runtime_, *ctx_, site, std::forward<F>(body));
    }

    void barrier() { barrier_->arrive(*ctx_); }
    void work(sim::Cycles cycles) { ctx_->step(cycles); }

    template <typename T>
    T
    sharedLoad(const T* addr)
    {
        return runtime_->nonTxLoad(*ctx_, addr);
    }

    template <typename T>
    void
    sharedStore(T* addr, T value)
    {
        runtime_->nonTxStore(*ctx_, addr, value);
    }

    template <typename T>
    T
    fetchAdd(T* addr, T delta)
    {
        return runtime_->nonTxFetchAdd(*ctx_, addr, delta);
    }

    unsigned tid() const { return ctx_->id(); }
    unsigned numThreads() const { return numThreads_; }
    sim::ThreadContext& ctx() { return *ctx_; }
    sim::Rng& rng() { return ctx_->rng(); }

  private:
    htm::Runtime* runtime_;
    htm::HleLock* lock_;
    sim::ThreadContext* ctx_;
    sim::Barrier* barrier_;
    unsigned numThreads_;
};

/** Sequential baseline executor: atomic sections run inline. */
class SeqExec
{
  public:
    SeqExec(sim::ThreadContext& ctx, const htm::MachineConfig& machine)
        : ctx_(&ctx), seq_(ctx, machine)
    {
    }

    static constexpr bool isSequential = true;

    template <typename F>
    void
    atomic(F&& body)
    {
        body(seq_);
    }

    /** Site ids are a profiling concept; sequential runs ignore them. */
    template <typename F>
    void
    atomic(htm::TxSiteId, F&& body)
    {
        body(seq_);
    }

    void barrier() {}
    void work(sim::Cycles cycles) { ctx_->advance(cycles); }

    template <typename T>
    T
    sharedLoad(const T* addr)
    {
        return seq_.load(addr);
    }

    template <typename T>
    void
    sharedStore(T* addr, T value)
    {
        seq_.store(addr, value);
    }

    template <typename T>
    T
    fetchAdd(T* addr, T delta)
    {
        const T previous = seq_.load(addr);
        seq_.store(addr, T(previous + delta));
        return previous;
    }

    unsigned tid() const { return 0; }
    unsigned numThreads() const { return 1; }
    sim::ThreadContext& ctx() { return *ctx_; }
    sim::Rng& rng() { return ctx_->rng(); }

  private:
    sim::ThreadContext* ctx_;
    htm::SeqContext seq_;
};

} // namespace htmsim::stamp

#endif // HTMSIM_STAMP_EXEC_HH

#include "genome.hh"

#include <algorithm>
#include <unordered_set>

#include "htm/node_pool.hh"
#include "sim/random.hh"

namespace htmsim::stamp
{

GenomeParams
GenomeParams::tuned(htm::Vendor vendor)
{
    GenomeParams params;
    params.chunkStep1 = vendor == htm::Vendor::blueGeneQ ? 9 : 2;
    // Phase-2 link transactions conflict through their successors;
    // larger batches lose more work per abort, so the tuned chunk
    // stays small on every machine.
    params.chunkStep2 = 3;
    return params;
}

GenomeParams
GenomeParams::original()
{
    GenomeParams params;
    params.chunkStep1 = 16;
    params.chunkStep2 = 16;
    return params;
}

GenomeApp::~GenomeApp()
{
    // Unique segment entries were allocated transactionally and are
    // owned by the dedupe table's values.
    if (segmentSet_) {
        htm::DirectContext c;
        segmentSet_->forEach(c, [](std::uint64_t, std::uint64_t raw) {
            htm::NodePool::instance().free(
                reinterpret_cast<GenomeSegment*>(raw),
                sizeof(GenomeSegment));
        });
    }
}

void
GenomeApp::setup()
{
    sim::Rng rng(params_.seed);
    const unsigned g = params_.geneLength;
    const unsigned s = params_.segmentLength;
    static const char alphabet[4] = {'A', 'C', 'G', 'T'};

    gene_.resize(g);
    for (auto& nucleotide : gene_)
        nucleotide = alphabet[rng.nextRange(4)];

    // Sample start positions with gaps of 1..maxStep so consecutive
    // segments overlap by at least S - maxStep characters, and force
    // the final window so the chain reaches the end of the gene.
    std::vector<unsigned> starts;
    unsigned pos = 0;
    while (pos + s <= g) {
        starts.push_back(pos);
        pos += 1 + unsigned(rng.nextRange(params_.maxStep));
    }
    if (starts.back() != g - s)
        starts.push_back(g - s);

    // Segment copies live in a pooled arena at a fixed stride, like
    // STAMP's individually allocated read strings.
    const std::size_t stride = (s + 8 + 7) / 8 * 8;
    const std::size_t total_samples =
        starts.size() + params_.extraDuplicates;
    segmentPool_.assign(total_samples * stride, 0);
    samples_.clear();
    samples_.reserve(total_samples);

    auto add_sample = [&](unsigned start, std::size_t index) {
        char* dest = segmentPool_.data() + index * stride;
        std::copy_n(gene_.data() + start, s, dest);
        samples_.push_back({dest, start});
    };

    for (std::size_t i = 0; i < starts.size(); ++i)
        add_sample(starts[i], i);
    for (unsigned d = 0; d < params_.extraDuplicates; ++d) {
        const unsigned pick =
            unsigned(rng.nextRange(starts.size()));
        add_sample(starts[pick], starts.size() + d);
    }
    // Shuffle so duplicates are interleaved (Fisher-Yates).
    for (std::size_t i = samples_.size(); i > 1; --i) {
        const std::size_t j = rng.nextRange(i);
        std::swap(samples_[i - 1], samples_[j]);
    }

    segmentSet_ = std::make_unique<tmds::TmHashTable<>>(
        starts.size());
    prefixTables_.clear();
    for (unsigned round = 0; round < params_.maxStep; ++round) {
        prefixTables_.push_back(
            std::make_unique<tmds::TmHashTable<>>(starts.size()));
    }
    unique_.clear();
    cursor_ = 0;
}

bool
GenomeApp::verify() const
{
    // Exactly one chain head (startLinked == 0), the chain must visit
    // every unique segment in strictly increasing start positions with
    // gaps within maxStep, starting at 0 and ending at G - S.
    if (unique_.empty())
        return false;

    GenomeSegment* head = nullptr;
    std::size_t heads = 0;
    for (GenomeSegment* entry : unique_) {
        if (entry->startLinked == 0) {
            head = entry;
            ++heads;
        }
    }
    if (heads != 1 || head == nullptr)
        return false;
    if (head->startPos != 0)
        return false;

    std::unordered_set<const GenomeSegment*> seen;
    std::size_t count = 0;
    const GenomeSegment* node = head;
    const GenomeSegment* last = nullptr;
    while (node != nullptr) {
        if (!seen.insert(node).second)
            return false; // cycle
        if (last != nullptr) {
            if (node->startPos <= last->startPos)
                return false;
            if (node->startPos - last->startPos > params_.maxStep)
                return false;
        }
        last = node;
        ++count;
        node = node->next;
    }
    if (count != unique_.size())
        return false;
    return last->startPos ==
           std::uint64_t(params_.geneLength - params_.segmentLength);
}

} // namespace htmsim::stamp

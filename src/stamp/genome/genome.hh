/**
 * @file
 * STAMP genome port: gene sequencing by segment deduplication and
 * overlap chaining.
 *
 * Phase 1 inserts sampled gene segments into a shared hash set to
 * remove duplicates; CHUNK_STEP1 segments share one transaction — the
 * compile-time knob the paper tunes per machine (9 on Blue Gene/Q to
 * amortize its huge begin/end cost, 2 elsewhere; the untuned original
 * uses 16, which blows POWER8's 8 KB capacity — Figure 4's 3.7x).
 * Phase 2 links unique segments whose k-character suffix matches
 * another segment's k-prefix, for k from S-1 downward, rebuilding the
 * chain the gene was sampled from.
 *
 * Segment content hashing is performed with context loads, so the
 * string bytes contribute to the transactional footprint exactly as
 * in instrumented STAMP.
 */

#ifndef HTMSIM_STAMP_GENOME_GENOME_HH
#define HTMSIM_STAMP_GENOME_GENOME_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "stamp/exec.hh"
#include "tmds/tm_hashtable.hh"

namespace htmsim::stamp
{

struct GenomeParams
{
    /** Gene length in nucleotides. */
    unsigned geneLength = 4096;
    /** Segment (read) length S. */
    unsigned segmentLength = 24;
    /** Maximum start-position gap between consecutive samples. */
    unsigned maxStep = 4;
    /** Additional duplicate segments to exercise deduplication. */
    unsigned extraDuplicates = 2048;
    /** Segments inserted per phase-1 transaction (CHUNK_STEP1). */
    unsigned chunkStep1 = 2;
    /** Entries handled per phase-2 transaction (CHUNK_STEP2/3). */
    unsigned chunkStep2 = 2;
    std::uint64_t seed = 424242;

    /** The paper's per-machine tuning (Section 4). */
    static GenomeParams tuned(htm::Vendor vendor);
    /** The original untuned chunking. */
    static GenomeParams original();
};

/** One sampled/unique gene segment. */
struct GenomeSegment
{
    const char* chars;
    GenomeSegment* next;
    std::uint64_t startLinked;
    std::uint64_t endLinked;
    std::uint64_t startPos; ///< ground truth, used only by verify()
};

class GenomeApp
{
  public:
    explicit GenomeApp(GenomeParams params) : params_(params) {}
    ~GenomeApp();

    void setup();

    template <typename Exec>
    void
    worker(Exec& exec)
    {
        phase1Dedupe(exec);
        exec.barrier();
        if (exec.tid() == 0)
            collectUnique(exec);
        exec.barrier();
        const unsigned s = params_.segmentLength;
        for (unsigned round = 0; round < params_.maxStep; ++round) {
            const unsigned k = s - 1 - round;
            phase2Insert(exec, round, k);
            exec.barrier();
            phase2Match(exec, round, k);
            exec.barrier();
        }
    }

    bool verify() const;

    std::size_t uniqueSegments() const { return unique_.size(); }

  private:
    /** FNV over segment bytes through the context (footprint!). */
    template <typename Ctx>
    static std::uint64_t
    hashChars(Ctx& c, const char* chars, unsigned length)
    {
        std::uint64_t h = 1469598103934665603ULL;
        for (unsigned i = 0; i < length; ++i) {
            h ^= std::uint8_t(c.load(&chars[i]));
            h *= 1099511628211ULL;
        }
        c.work(sim::Cycles(3) * length); // the mixing arithmetic
        return h;
    }

    template <typename Exec>
    void
    phase1Dedupe(Exec& exec)
    {
        const unsigned total = unsigned(samples_.size());
        const unsigned chunk = std::max(1u, params_.chunkStep1);
        const unsigned s = params_.segmentLength;
        for (;;) {
            const std::uint32_t begin =
                exec.fetchAdd(&cursor_, std::uint32_t(chunk));
            if (begin >= total)
                break;
            const unsigned end = std::min(begin + chunk, total);
            static const htm::TxSiteId dedupSite =
                htm::txSite("genome.dedupSegments");
            exec.atomic(dedupSite, [&](auto& c) {
                for (unsigned i = begin; i < end; ++i) {
                    const char* chars = samples_[i].chars;
                    const std::uint64_t h = hashChars(c, chars, s);
                    auto* entry = c.template create<GenomeSegment>();
                    c.store(&entry->chars, chars);
                    c.store(&entry->next,
                            static_cast<GenomeSegment*>(nullptr));
                    c.store(&entry->startLinked, std::uint64_t(0));
                    c.store(&entry->endLinked, std::uint64_t(0));
                    c.store(&entry->startPos, samples_[i].startPos);
                    if (!segmentSet_->insert(
                            c, h,
                            reinterpret_cast<std::uint64_t>(entry))) {
                        c.template destroy<GenomeSegment>(entry);
                    }
                }
            });
        }
    }

    template <typename Exec>
    void
    collectUnique(Exec& exec)
    {
        htm::DirectContext direct;
        segmentSet_->forEach(direct,
                             [&](std::uint64_t, std::uint64_t raw) {
                                 unique_.push_back(
                                     reinterpret_cast<GenomeSegment*>(
                                         raw));
                             });
        exec.work(sim::Cycles(unique_.size()) * 8);
    }

    template <typename Exec>
    void
    phase2Insert(Exec& exec, unsigned round, unsigned k)
    {
        // Blocks of chunkStep2 entries per thread per transaction,
        // with the already-linked filter applied outside the
        // transaction (both as in STAMP).
        const std::size_t chunk = std::max(1u, params_.chunkStep2);
        const std::size_t stride = chunk * exec.numThreads();
        std::vector<GenomeSegment*> batch;
        for (std::size_t start = exec.tid() * chunk;
             start < unique_.size(); start += stride) {
            batch.clear();
            const std::size_t end =
                std::min(start + chunk, unique_.size());
            for (std::size_t i = start; i < end; ++i) {
                if (exec.sharedLoad(&unique_[i]->startLinked) == 0)
                    batch.push_back(unique_[i]);
            }
            if (batch.empty())
                continue;
            static const htm::TxSiteId linkStartSite =
                htm::txSite("genome.linkStarts");
            exec.atomic(linkStartSite, [&](auto& c) {
                for (GenomeSegment* entry : batch) {
                    if (c.load(&entry->startLinked) != 0)
                        continue;
                    const std::uint64_t h =
                        hashChars(c, c.load(&entry->chars), k);
                    prefixTables_[round]->insert(
                        c, h, reinterpret_cast<std::uint64_t>(entry));
                    c.work(30);
                }
            });
        }
    }

    template <typename Exec>
    void
    phase2Match(Exec& exec, unsigned round, unsigned k)
    {
        const unsigned s = params_.segmentLength;
        const std::size_t chunk = std::max(1u, params_.chunkStep2);
        const std::size_t stride = chunk * exec.numThreads();
        std::vector<GenomeSegment*> batch;
        for (std::size_t start = exec.tid() * chunk;
             start < unique_.size(); start += stride) {
            batch.clear();
            const std::size_t end =
                std::min(start + chunk, unique_.size());
            for (std::size_t i = start; i < end; ++i) {
                if (exec.sharedLoad(&unique_[i]->endLinked) == 0)
                    batch.push_back(unique_[i]);
            }
            if (batch.empty())
                continue;
            static const htm::TxSiteId linkEndSite =
                htm::txSite("genome.linkEnds");
            exec.atomic(linkEndSite, [&](auto& c) {
                for (GenomeSegment* entry : batch) {
                    if (c.load(&entry->endLinked) != 0)
                        continue;
                    const char* chars = c.load(&entry->chars);
                    const std::uint64_t h =
                        hashChars(c, chars + (s - k), k);
                    std::uint64_t raw = 0;
                    if (!prefixTables_[round]->find(c, h, &raw))
                        continue;
                    auto* successor =
                        reinterpret_cast<GenomeSegment*>(raw);
                    if (successor == entry)
                        continue;
                    if (c.load(&successor->startLinked) != 0)
                        continue;
                    c.store(&entry->next, successor);
                    c.store(&entry->endLinked, std::uint64_t(1));
                    c.store(&successor->startLinked, std::uint64_t(1));
                    c.work(30);
                }
            });
        }
    }

    GenomeParams params_;
    std::vector<char> gene_;
    std::vector<char> segmentPool_;

    struct Sample
    {
        const char* chars;
        std::uint64_t startPos;
    };
    std::vector<Sample> samples_;

    std::unique_ptr<tmds::TmHashTable<>> segmentSet_;
    std::vector<std::unique_ptr<tmds::TmHashTable<>>> prefixTables_;
    std::vector<GenomeSegment*> unique_;
    std::uint32_t cursor_ = 0;
};

} // namespace htmsim::stamp

#endif // HTMSIM_STAMP_GENOME_GENOME_HH

/**
 * @file
 * STAMP ssca2 port: kernel 1 of the Scalable Synthetic Compact
 * Application #2 — parallel construction of a compressed sparse graph
 * from an edge list.
 *
 * The transactions are the smallest in the suite (one to three shared
 * accesses), so per-transaction overhead dominates. On Blue Gene/Q the
 * sheer transaction rate exhausts the 128 speculation IDs and the
 * reclamation pass becomes the bottleneck (Section 5.1).
 */

#ifndef HTMSIM_STAMP_SSCA2_SSCA2_HH
#define HTMSIM_STAMP_SSCA2_SSCA2_HH

#include <cstdint>
#include <vector>

#include "stamp/exec.hh"

namespace htmsim::stamp
{

struct Ssca2Params
{
    unsigned numVertices = 512;
    unsigned numEdges = 4096;
    unsigned chunkSize = 8;
    std::uint64_t seed = 777;

    static Ssca2Params simDefault() { return {}; }
};

class Ssca2App
{
  public:
    explicit Ssca2App(Ssca2Params params) : params_(params) {}

    void setup();

    template <typename Exec>
    void
    worker(Exec& exec)
    {
        const unsigned edges = params_.numEdges;

        // Phase 1: transactional degree counting.
        for (;;) {
            const std::uint32_t begin = exec.fetchAdd(
                &cursor1_, std::uint32_t(params_.chunkSize));
            if (begin >= edges)
                break;
            const unsigned end =
                std::min<unsigned>(begin + params_.chunkSize, edges);
            for (unsigned e = begin; e < end; ++e) {
                const std::uint32_t u = edgeSources_[e];
                static const htm::TxSiteId degreeSite =
                    htm::txSite("ssca2.countDegree");
                exec.atomic(degreeSite, [&](auto& c) {
                    c.store(&degree_[u], c.load(&degree_[u]) + 1);
                });
                exec.work(140); // per-edge decode/bookkeeping compute
            }
        }
        exec.barrier();

        // Serial prefix sum of the offsets (thread 0, timed).
        if (exec.tid() == 0) {
            std::uint64_t running = 0;
            for (unsigned v = 0; v < params_.numVertices; ++v) {
                offset_[v] = running;
                running += degree_[v];
                exec.work(4);
            }
            offset_[params_.numVertices] = running;
        }
        exec.barrier();

        // Phase 2: transactional adjacency fill.
        for (;;) {
            const std::uint32_t begin = exec.fetchAdd(
                &cursor2_, std::uint32_t(params_.chunkSize));
            if (begin >= edges)
                break;
            const unsigned end =
                std::min<unsigned>(begin + params_.chunkSize, edges);
            for (unsigned e = begin; e < end; ++e) {
                const std::uint32_t u = edgeSources_[e];
                const std::uint32_t v = edgeTargets_[e];
                static const htm::TxSiteId adjacencySite =
                    htm::txSite("ssca2.insertAdjacency");
                exec.atomic(adjacencySite, [&](auto& c) {
                    const std::uint64_t slot = c.load(&fill_[u]);
                    c.store(&fill_[u], slot + 1);
                    c.store(&adjacency_[offset_[u] + slot],
                            std::uint64_t(v));
                });
                exec.work(140);
            }
        }
    }

    bool verify() const;

    const std::vector<std::uint64_t>& adjacency() const
    {
        return adjacency_;
    }

  private:
    Ssca2Params params_;
    std::vector<std::uint32_t> edgeSources_;
    std::vector<std::uint32_t> edgeTargets_;
    std::vector<std::uint64_t> degree_;
    std::vector<std::uint64_t> fill_;
    std::vector<std::uint64_t> offset_;
    std::vector<std::uint64_t> adjacency_;
    std::uint32_t cursor1_ = 0;
    std::uint32_t cursor2_ = 0;
};

} // namespace htmsim::stamp

#endif // HTMSIM_STAMP_SSCA2_SSCA2_HH

#include "ssca2.hh"

#include <algorithm>

#include "sim/random.hh"

namespace htmsim::stamp
{

void
Ssca2App::setup()
{
    sim::Rng rng(params_.seed);
    edgeSources_.resize(params_.numEdges);
    edgeTargets_.resize(params_.numEdges);
    for (unsigned e = 0; e < params_.numEdges; ++e) {
        const auto u = std::uint32_t(rng.nextRange(params_.numVertices));
        std::uint32_t v = u;
        while (v == u)
            v = std::uint32_t(rng.nextRange(params_.numVertices));
        edgeSources_[e] = u;
        edgeTargets_[e] = v;
    }
    degree_.assign(params_.numVertices, 0);
    fill_.assign(params_.numVertices, 0);
    offset_.assign(params_.numVertices + 1, 0);
    adjacency_.assign(params_.numEdges, ~std::uint64_t(0));
    cursor1_ = 0;
    cursor2_ = 0;
}

bool
Ssca2App::verify() const
{
    // Degrees must sum to the edge count and every adjacency slot must
    // be filled with exactly the edges of its source vertex.
    std::uint64_t total = 0;
    for (const auto d : degree_)
        total += d;
    if (total != params_.numEdges)
        return false;

    std::vector<std::vector<std::uint32_t>> expected(
        params_.numVertices);
    for (unsigned e = 0; e < params_.numEdges; ++e)
        expected[edgeSources_[e]].push_back(edgeTargets_[e]);

    for (unsigned u = 0; u < params_.numVertices; ++u) {
        if (fill_[u] != degree_[u])
            return false;
        if (degree_[u] != expected[u].size())
            return false;
        std::vector<std::uint32_t> actual;
        for (std::uint64_t slot = 0; slot < degree_[u]; ++slot) {
            const std::uint64_t value = adjacency_[offset_[u] + slot];
            if (value == ~std::uint64_t(0))
                return false;
            actual.push_back(std::uint32_t(value));
        }
        std::sort(actual.begin(), actual.end());
        std::sort(expected[u].begin(), expected[u].end());
        if (actual != expected[u])
            return false;
    }
    return true;
}

} // namespace htmsim::stamp

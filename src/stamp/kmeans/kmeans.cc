#include "kmeans.hh"

#include <algorithm>
#include <cmath>

#include "sim/random.hh"

namespace htmsim::stamp
{

KmeansParams
KmeansParams::highContention(bool modified_variant)
{
    KmeansParams params;
    params.numClusters = 15;
    params.modified = modified_variant;
    return params;
}

KmeansParams
KmeansParams::lowContention(bool modified_variant)
{
    KmeansParams params;
    params.numClusters = 40;
    params.modified = modified_variant;
    return params;
}

void
KmeansApp::setup()
{
    sim::Rng rng(params_.seed);
    const unsigned n = params_.numPoints;
    const unsigned dims = params_.numDims;
    const unsigned k = params_.numClusters;

    points_.resize(std::size_t(n) * dims);
    // Gaussian-ish blobs around k seed locations so clustering is
    // meaningful and membership stabilizes.
    std::vector<float> blob_centers(std::size_t(k) * dims);
    for (auto& value : blob_centers)
        value = float(rng.nextDouble() * 100.0);
    for (unsigned point = 0; point < n; ++point) {
        const unsigned blob = unsigned(rng.nextRange(k));
        for (unsigned d = 0; d < dims; ++d) {
            const double noise = (rng.nextDouble() - 0.5) * 12.0;
            points_[std::size_t(point) * dims + d] =
                blob_centers[std::size_t(blob) * dims + d] +
                float(noise);
        }
    }

    centers_.resize(std::size_t(k) * dims);
    for (unsigned cluster = 0; cluster < k; ++cluster) {
        const unsigned pick = unsigned(rng.nextRange(n));
        for (unsigned d = 0; d < dims; ++d) {
            centers_[std::size_t(cluster) * dims + d] =
                points_[std::size_t(pick) * dims + d];
        }
    }

    membership_.assign(n, 0);
    clusterSizes_.assign(k, 0);

    // Accumulator arena. Each cluster needs 4 bytes of count plus
    // dims*4 bytes of sums. The modified variant aligns each cluster
    // to a 256-byte boundary (no machine has larger lines); the
    // original packs clusters at a 4-byte-offset 96-byte stride so
    // neighbouring clusters share cache lines.
    const std::size_t payload = 4 + std::size_t(dims) * 4;
    if (params_.modified) {
        // Align to the machine's line and round the payload up to it:
        // clusters never share a line, but the cluster's last line is
        // adjacent to the next cluster (where Intel's adjacent-line
        // prefetcher reaches, Section 5.1).
        const std::size_t line = std::max<unsigned>(
            64, params_.alignBytes);
        clusterStride_ = (payload + line - 1) / line * line;
        arenaBase_ = 0;
    } else {
        clusterStride_ = std::max<std::size_t>(
            96, (payload + 31) / 32 * 32);
        arenaBase_ = 4; // deliberately off a line boundary
    }
    arena_.assign(arenaBase_ + clusterStride_ * k + 256, 0);
    // Align the vector data itself so layout is reproducible: find a
    // 256-aligned origin inside the buffer.
    const auto raw = reinterpret_cast<std::uintptr_t>(arena_.data());
    const std::size_t align_slack = (256 - raw % 256) % 256;
    arenaBase_ += align_slack;

    nextPoint_ = 0;
}

std::uint32_t*
KmeansApp::countOf(unsigned cluster)
{
    return reinterpret_cast<std::uint32_t*>(
        arena_.data() + arenaBase_ + clusterStride_ * cluster);
}

float*
KmeansApp::sumOf(unsigned cluster, unsigned dim)
{
    return reinterpret_cast<float*>(arena_.data() + arenaBase_ +
                                    clusterStride_ * cluster + 4 +
                                    std::size_t(dim) * 4);
}

unsigned
KmeansApp::nearestCenter(unsigned point) const
{
    const unsigned dims = params_.numDims;
    unsigned best = 0;
    float best_distance = std::numeric_limits<float>::max();
    for (unsigned cluster = 0; cluster < params_.numClusters;
         ++cluster) {
        float distance = 0.0f;
        for (unsigned d = 0; d < dims; ++d) {
            const float delta =
                points_[std::size_t(point) * dims + d] -
                centers_[std::size_t(cluster) * dims + d];
            distance += delta * delta;
        }
        if (distance < best_distance) {
            best_distance = distance;
            best = cluster;
        }
    }
    return best;
}

bool
KmeansApp::verify() const
{
    // Every point must be assigned, cluster sizes must add up, and
    // all centers must be finite.
    std::vector<unsigned> recount(params_.numClusters, 0);
    for (const unsigned cluster : membership_) {
        if (cluster >= params_.numClusters)
            return false;
        ++recount[cluster];
    }
    unsigned total = 0;
    for (unsigned cluster = 0; cluster < params_.numClusters;
         ++cluster) {
        if (recount[cluster] != clusterSizes_[cluster])
            return false;
        total += recount[cluster];
    }
    if (total != params_.numPoints)
        return false;
    for (const float value : centers_) {
        if (!std::isfinite(value))
            return false;
    }
    return true;
}

} // namespace htmsim::stamp

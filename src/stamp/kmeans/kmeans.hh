/**
 * @file
 * STAMP kmeans port: iterative K-means clustering.
 *
 * Each point is assigned to its nearest center (pure compute, reads of
 * stable data) and then a small transaction adds the point into the
 * chosen cluster's accumulator — one integer and D floats, STAMP's
 * smallest transactions.
 *
 * Variants (paper Section 4):
 *  - original: cluster accumulators packed with padding but *not*
 *    aligned to cache lines, so two clusters can share a line and
 *    cause false conflicts (worst on zEC12's 256-byte lines);
 *  - modified: accumulators aligned to 256-byte boundaries.
 *
 * High/low contention follows STAMP: fewer clusters = more contention.
 */

#ifndef HTMSIM_STAMP_KMEANS_KMEANS_HH
#define HTMSIM_STAMP_KMEANS_KMEANS_HH

#include <cstdint>
#include <vector>

#include "stamp/exec.hh"

namespace htmsim::stamp
{

struct KmeansParams
{
    /** Number of points. */
    unsigned numPoints = 1024;
    /** Dimensions per point (STAMP's non-simulator input uses 32;
     *  the 132-byte accumulator then rounds to 192 bytes = an odd
     *  number of 64-byte lines, which is what exposes Intel's
     *  buddy-line prefetcher, Section 5.1). */
    unsigned numDims = 32;
    /** Clusters (15 = high contention, 40 = low, as in STAMP). */
    unsigned numClusters = 15;
    /** Fixed iteration count (determinism; STAMP iterates ~10x). */
    unsigned iterations = 6;
    /** Paper's alignment fix applied? */
    bool modified = true;
    /** Alignment/stride of one cluster accumulator in the modified
     *  variant: the target machine's cache line (the paper's patch
     *  pads per platform). */
    unsigned alignBytes = 128;
    /** Points fetched per work-queue grab. */
    unsigned chunkSize = 4;
    /** Workload generation seed. */
    std::uint64_t seed = 12345;

    static KmeansParams highContention(bool modified_variant = true);
    static KmeansParams lowContention(bool modified_variant = true);
};

/** One K-means benchmark instance. */
class KmeansApp
{
  public:
    explicit KmeansApp(KmeansParams params) : params_(params) {}

    /** Generate points and the (mis)aligned accumulator arena. */
    void setup();

    /** Timed region: `iterations` rounds of assign + accumulate. */
    template <typename Exec>
    void
    worker(Exec& exec)
    {
        for (unsigned iteration = 0; iteration < params_.iterations;
             ++iteration) {
            workerIteration(exec);
            exec.barrier();
            if (exec.tid() == 0)
                finishIteration(exec);
            exec.barrier();
        }
    }

    bool verify() const;

    /** Final per-cluster sizes (for tests). */
    const std::vector<unsigned>& clusterSizes() const
    {
        return clusterSizes_;
    }

  private:
    /** Accumulator field accessors into the (mis)aligned arena. */
    std::uint32_t* countOf(unsigned cluster);
    float* sumOf(unsigned cluster, unsigned dim);

    template <typename Exec>
    void
    workerIteration(Exec& exec)
    {
        const unsigned n = params_.numPoints;
        const unsigned dims = params_.numDims;
        for (;;) {
            const std::uint32_t begin = exec.fetchAdd(
                &nextPoint_, std::uint32_t(params_.chunkSize));
            if (begin >= n)
                break;
            const unsigned end =
                std::min<unsigned>(begin + params_.chunkSize, n);
            for (unsigned point = begin; point < end; ++point) {
                // Nearest-center search: reads of stable data, pure
                // compute — charged as work, not transactional.
                const unsigned cluster = nearestCenter(point);
                exec.work(sim::Cycles(3) * params_.numClusters * dims);
                membership_[point] = cluster;

                static const htm::TxSiteId accumulateSite =
                    htm::txSite("kmeans.accumulate");
                exec.atomic(accumulateSite, [&](auto& c) {
                    std::uint32_t* count = countOf(cluster);
                    c.store(count, c.load(count) + 1);
                    for (unsigned d = 0; d < dims; ++d) {
                        float* sum = sumOf(cluster, d);
                        c.store(sum,
                                c.load(sum) +
                                    points_[point * dims + d]);
                    }
                });
            }
        }
    }

    /** Serial end-of-iteration: recompute centers, reset arena. */
    template <typename Exec>
    void
    finishIteration(Exec& exec)
    {
        const unsigned dims = params_.numDims;
        for (unsigned cluster = 0; cluster < params_.numClusters;
             ++cluster) {
            const std::uint32_t count = *countOf(cluster);
            clusterSizes_[cluster] = count;
            for (unsigned d = 0; d < dims; ++d) {
                if (count > 0) {
                    centers_[cluster * dims + d] =
                        *sumOf(cluster, d) / float(count);
                }
                *sumOf(cluster, d) = 0.0f;
            }
            *countOf(cluster) = 0;
            exec.work(dims * 4);
        }
        nextPoint_ = 0;
    }

    unsigned nearestCenter(unsigned point) const;

    KmeansParams params_;
    std::vector<float> points_;
    std::vector<float> centers_;
    std::vector<unsigned> membership_;
    std::vector<unsigned> clusterSizes_;

    /** Accumulator arena; layout depends on the variant. */
    std::vector<char> arena_;
    std::size_t clusterStride_ = 0;
    std::size_t arenaBase_ = 0;

    std::uint32_t nextPoint_ = 0;
};

} // namespace htmsim::stamp

#endif // HTMSIM_STAMP_KMEANS_KMEANS_HH

/**
 * @file
 * STAMP labyrinth port: Lee-style maze routing in a 3D grid.
 *
 * Each route is one giant transaction: the thread copies the entire
 * shared grid transactionally (every cell enters the read set — the
 * suite's largest read footprint), expands a shortest path on the
 * private copy, and transactionally claims the path cells. Any path
 * committed by a peer during the copy conflicts and restarts the
 * route. POWER8's 8 KB capacity cannot hold the copy at all, so it
 * serializes on the global lock; zEC12's 8 KB store cache overflows on
 * long paths — labyrinth barely scales anywhere (paper Figures 2/5).
 */

#ifndef HTMSIM_STAMP_LABYRINTH_LABYRINTH_HH
#define HTMSIM_STAMP_LABYRINTH_LABYRINTH_HH

#include <array>
#include <cstdint>
#include <vector>

#include "stamp/exec.hh"

namespace htmsim::stamp
{

struct LabyrinthParams
{
    unsigned width = 24;
    unsigned height = 24;
    unsigned depth = 2;
    unsigned numPaths = 20;
    /** Percent of cells that are walls. */
    unsigned wallPct = 8;
    std::uint64_t seed = 5150;

    static LabyrinthParams simDefault() { return {}; }
};

class LabyrinthApp
{
  public:
    explicit LabyrinthApp(LabyrinthParams params) : params_(params) {}

    void setup();

    template <typename Exec>
    void
    worker(Exec& exec)
    {
        for (;;) {
            const std::uint32_t index =
                exec.fetchAdd(&cursor_, std::uint32_t(1));
            if (index >= params_.numPaths)
                break;
            bool routed = false;
            static const htm::TxSiteId routeSite =
                htm::txSite("labyrinth.routePath");
            exec.atomic(routeSite, [&](auto& c) {
                routed = routeOne(c, exec.tid(), index);
            });
            routed_[index] = routed ? 1 : 0;
        }
    }

    bool verify() const;

    unsigned
    routedCount() const
    {
        unsigned count = 0;
        for (const auto flag : routed_)
            count += flag;
        return count;
    }

  private:
    static constexpr std::int64_t wall = -1;

    std::size_t cells() const
    {
        return std::size_t(params_.width) * params_.height *
               params_.depth;
    }

    std::size_t
    cellIndex(unsigned x, unsigned y, unsigned z) const
    {
        return (std::size_t(z) * params_.height + y) * params_.width +
               x;
    }

    /**
     * One routing attempt inside a transaction. Returns false when no
     * path exists (the transaction still commits read-only).
     */
    template <typename Ctx>
    bool
    routeOne(Ctx& c, unsigned tid, std::uint32_t index)
    {
        const std::size_t n = cells();
        auto& scratch = scratch_[tid];
        scratch.assign(n, -2); // -2 = blocked, >= -1 = BFS distance

        // Transactional full-grid copy (the signature move of
        // labyrinth: every cell joins the read set). Reserved cells
        // (other routes' endpoints) are blocked for everyone else.
        for (std::size_t i = 0; i < n; ++i) {
            const std::int64_t value = c.load(&grid_[i]);
            scratch[i] = value == 0 ? -1 : -2;
        }
        c.work(sim::Cycles(n));

        const std::size_t src = sources_[index];
        const std::size_t dst = targets_[index];
        scratch[dst] = -1;
        scratch[src] = 0;

        // BFS expansion on the private copy.
        auto& queue = bfsQueue_[tid];
        queue.clear();
        queue.push_back(src);
        bool found = false;
        for (std::size_t head = 0; head < queue.size() && !found;
             ++head) {
            const std::size_t at = queue[head];
            for (const std::size_t next : neighbours(at)) {
                if (scratch[next] != -1)
                    continue;
                scratch[next] = scratch[at] + 1;
                if (next == dst) {
                    found = true;
                    break;
                }
                queue.push_back(next);
            }
        }
        c.work(sim::Cycles(queue.size()) * 2);
        if (!found)
            return false;

        // Back-trace and transactionally claim the path.
        const std::int64_t path_id = std::int64_t(index) + 1;
        std::size_t at = dst;
        while (at != src) {
            c.store(&grid_[at], path_id);
            const std::int64_t distance = scratch[at];
            for (const std::size_t prev : neighbours(at)) {
                if (scratch[prev] == distance - 1) {
                    at = prev;
                    break;
                }
            }
        }
        c.store(&grid_[src], path_id);
        return true;
    }

    /** In-grid orthogonal neighbours of a cell. */
    std::vector<std::size_t> neighbours(std::size_t index) const;

    LabyrinthParams params_;
    std::vector<std::int64_t> grid_;
    std::vector<std::size_t> sources_;
    std::vector<std::size_t> targets_;
    std::vector<std::uint8_t> routed_;
    std::array<std::vector<std::int64_t>, 64> scratch_;
    std::array<std::vector<std::size_t>, 64> bfsQueue_;
    std::uint32_t cursor_ = 0;
};

} // namespace htmsim::stamp

#endif // HTMSIM_STAMP_LABYRINTH_LABYRINTH_HH

#include "labyrinth.hh"

#include <queue>

#include "sim/random.hh"

namespace htmsim::stamp
{

namespace
{
constexpr std::int64_t reserved = -3;
} // namespace

void
LabyrinthApp::setup()
{
    sim::Rng rng(params_.seed);
    grid_.assign(cells(), 0);
    sources_.clear();
    targets_.clear();
    routed_.assign(params_.numPaths, 0);
    cursor_ = 0;

    // Walls.
    for (auto& cell : grid_) {
        if (rng.nextRange(100) < params_.wallPct)
            cell = wall;
    }

    // Distinct free endpoint cells, reserved so no other route can
    // pass through them.
    auto pick_free = [&]() {
        for (;;) {
            const std::size_t index = rng.nextRange(cells());
            if (grid_[index] == 0)
                return index;
        }
    };
    for (unsigned p = 0; p < params_.numPaths; ++p) {
        const std::size_t src = pick_free();
        grid_[src] = reserved;
        const std::size_t dst = pick_free();
        grid_[dst] = reserved;
        sources_.push_back(src);
        targets_.push_back(dst);
    }
}

std::vector<std::size_t>
LabyrinthApp::neighbours(std::size_t index) const
{
    const unsigned w = params_.width;
    const unsigned h = params_.height;
    const unsigned d = params_.depth;
    const unsigned x = unsigned(index % w);
    const unsigned y = unsigned(index / w % h);
    const unsigned z = unsigned(index / (std::size_t(w) * h));

    std::vector<std::size_t> result;
    result.reserve(6);
    if (x > 0)
        result.push_back(cellIndex(x - 1, y, z));
    if (x + 1 < w)
        result.push_back(cellIndex(x + 1, y, z));
    if (y > 0)
        result.push_back(cellIndex(x, y - 1, z));
    if (y + 1 < h)
        result.push_back(cellIndex(x, y + 1, z));
    if (z > 0)
        result.push_back(cellIndex(x, y, z - 1));
    if (z + 1 < d)
        result.push_back(cellIndex(x, y, z + 1));
    return result;
}

bool
LabyrinthApp::verify() const
{
    // Walls intact; every cell holds a wall, a reservation, free
    // space, or a valid path id; every routed path is a connected
    // region containing its endpoints; unrouted endpoints untouched.
    for (const auto cell : grid_) {
        if (cell < reserved ||
            cell > std::int64_t(params_.numPaths)) {
            return false;
        }
    }

    for (unsigned p = 0; p < params_.numPaths; ++p) {
        const std::int64_t id = std::int64_t(p) + 1;
        if (!routed_[p]) {
            // Endpoints must still be reserved, and no cell may carry
            // this path's id.
            if (grid_[sources_[p]] != reserved ||
                grid_[targets_[p]] != reserved) {
                return false;
            }
            for (const auto cell : grid_) {
                if (cell == id)
                    return false;
            }
            continue;
        }
        if (grid_[sources_[p]] != id || grid_[targets_[p]] != id)
            return false;

        // Flood the path's cells from the source; the target must be
        // reachable and every cell of this id must be visited.
        std::vector<char> seen(cells(), 0);
        std::queue<std::size_t> frontier;
        frontier.push(sources_[p]);
        seen[sources_[p]] = 1;
        std::size_t visited = 1;
        while (!frontier.empty()) {
            const std::size_t at = frontier.front();
            frontier.pop();
            for (const std::size_t next : neighbours(at)) {
                if (seen[next] || grid_[next] != id)
                    continue;
                seen[next] = 1;
                ++visited;
                frontier.push(next);
            }
        }
        if (!seen[targets_[p]])
            return false;
        std::size_t labelled = 0;
        for (const auto cell : grid_) {
            if (cell == id)
                ++labelled;
        }
        if (labelled != visited)
            return false;
    }
    return true;
}

} // namespace htmsim::stamp

#include "vacation.hh"

namespace htmsim::stamp
{

VacationParams
VacationParams::high()
{
    VacationParams params;
    params.queriesPerTx = 9;
    params.queryRangePct = 40;
    params.userTxPct = 80;
    return params;
}

VacationParams
VacationParams::low()
{
    VacationParams params;
    params.queriesPerTx = 9;
    params.queryRangePct = 90;
    params.userTxPct = 98;
    return params;
}

} // namespace htmsim::stamp

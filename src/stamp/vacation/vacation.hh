/**
 * @file
 * STAMP vacation port: an in-memory travel reservation system.
 *
 * Three relations (cars, flights, rooms) plus a customer table are hit
 * by client transactions: make-reservation (query several random
 * items, then reserve the cheapest available of each kind),
 * delete-customer (release everything a customer holds), and
 * update-tables (add/remove inventory).
 *
 * The table structure is a template parameter: the *original* STAMP
 * code uses red-black trees for these unordered sets; the paper's
 * *modified* version substitutes hash tables (Section 4), shrinking
 * the per-transaction footprint dramatically — the difference that
 * rescues POWER8's 8 KB capacity (Figure 4).
 */

#ifndef HTMSIM_STAMP_VACATION_VACATION_HH
#define HTMSIM_STAMP_VACATION_VACATION_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "stamp/exec.hh"
#include "tmds/tm_hashtable.hh"
#include "tmds/tm_list.hh"
#include "tmds/tm_rbtree.hh"

namespace htmsim::stamp
{

struct VacationParams
{
    /** Rows per relation. */
    unsigned relationSize = 2048;
    /** Customers. */
    unsigned numCustomers = 512;
    /** Total client transactions, split across worker threads. */
    unsigned totalTx = 1200;
    /** Queries inside one make-reservation transaction. */
    unsigned queriesPerTx = 8;
    /** Percent of the id range queries touch (smaller = hotter). */
    unsigned queryRangePct = 60;
    /** Percent of transactions that are make-reservation. */
    unsigned userTxPct = 90;
    std::uint64_t seed = 31337;

    /** STAMP vacation-high: more queries, hotter range, more updates. */
    static VacationParams high();
    /** STAMP vacation-low. */
    static VacationParams low();
};

/** One row of a reservation relation. */
struct alignas(64) Reservation
{
    std::uint64_t id;
    std::uint64_t free;
    std::uint64_t total;
    std::uint64_t price;
};

/** A customer and the reservations they hold. */
struct alignas(64) Customer
{
    std::uint64_t id;
    /** List key encodes (kind, item id); value holds the price. */
    tmds::TmList<>* held;
};

/**
 * The reservation system, parameterized by unordered-set structure.
 * @tparam Table TmRbTree (original) or TmHashTable<> (modified).
 */
template <typename Table>
class VacationAppT
{
  public:
    static constexpr unsigned numKinds = 3; // car, flight, room

    explicit VacationAppT(VacationParams params) : params_(params) {}

    ~VacationAppT()
    {
        htm::DirectContext c;
        for (auto& table : relations_) {
            if (table) {
                table->forEach(c,
                               [&](std::uint64_t, std::uint64_t value) {
                                   delete reinterpret_cast<Reservation*>(
                                       value);
                               });
            }
        }
        if (customers_) {
            customers_->forEach(c,
                                [&](std::uint64_t, std::uint64_t value) {
                                    auto* customer =
                                        reinterpret_cast<Customer*>(
                                            value);
                                    delete customer->held;
                                    delete customer;
                                });
        }
    }

    void
    setup()
    {
        htm::DirectContext c;
        // Deliberately under-provisioned buckets: the hash chains a
        // query walks keep the per-transaction footprint in the
        // multi-KB band of the paper's Figure 10 (POWER8's pain).
        for (auto& table : relations_)
            table = std::make_unique<Table>(params_.relationSize / 6);
        customers_ = std::make_unique<Table>(params_.numCustomers / 4);

        sim::Rng rng(params_.seed);
        for (unsigned kind = 0; kind < numKinds; ++kind) {
            for (std::uint64_t id = 1; id <= params_.relationSize;
                 ++id) {
                auto* row = new Reservation{
                    id, 3 + rng.nextRange(5), 0,
                    50 + rng.nextRange(450)};
                row->total = row->free;
                relations_[kind]->insert(
                    c, id, reinterpret_cast<std::uint64_t>(row));
            }
        }
        for (std::uint64_t id = 1; id <= params_.numCustomers; ++id) {
            auto* customer = new Customer{id, new tmds::TmList<>()};
            customers_->insert(
                c, id, reinterpret_cast<std::uint64_t>(customer));
        }
    }

    template <typename Exec>
    void
    worker(Exec& exec)
    {
        // Fixed total work split across threads (STAMP semantics).
        // All random choices are drawn before each atomic section so
        // the body is idempotent under retries.
        const unsigned threads = exec.numThreads();
        const unsigned share =
            (params_.totalTx + threads - 1) / threads;
        const unsigned begin = exec.tid() * share;
        const unsigned end =
            std::min(params_.totalTx, begin + share);
        for (unsigned i = begin; i < end; ++i) {
            const std::uint64_t dice = exec.rng().nextRange(100);
            if (dice < params_.userTxPct) {
                makeReservation(exec);
            } else if (dice < params_.userTxPct +
                                  (100 - params_.userTxPct) / 2) {
                deleteCustomer(exec);
            } else {
                updateTables(exec);
            }
        }
    }

    /**
     * Conservation check: for every row, the items missing from the
     * free pool are exactly those held by customers, and free never
     * exceeds total.
     */
    bool
    verify()
    {
        htm::DirectContext c;
        // (kind << 32 | id) -> held count across all customers.
        std::unordered_map<std::uint64_t, std::uint64_t> held;
        bool ok = true;
        customers_->forEach(c, [&](std::uint64_t, std::uint64_t raw) {
            auto* customer = reinterpret_cast<Customer*>(raw);
            customer->held->forEach(
                c, [&](std::uint64_t key, std::uint64_t) {
                    ++held[key];
                });
        });
        std::uint64_t rows_checked = 0;
        for (unsigned kind = 0; kind < numKinds; ++kind) {
            relations_[kind]->forEach(
                c, [&](std::uint64_t id, std::uint64_t raw) {
                    auto* row = reinterpret_cast<Reservation*>(raw);
                    ++rows_checked;
                    if (row->free > row->total)
                        ok = false;
                    const std::uint64_t key =
                        std::uint64_t(kind) << 32 | id;
                    const auto it = held.find(key);
                    const std::uint64_t held_count =
                        it == held.end() ? 0 : it->second;
                    if (row->total - row->free != held_count)
                        ok = false;
                });
        }
        return ok && rows_checked == params_.relationSize * numKinds;
    }

  private:
    std::uint64_t
    randomItem(sim::Rng& rng) const
    {
        const std::uint64_t range = std::max<std::uint64_t>(
            1, params_.relationSize * params_.queryRangePct / 100);
        return 1 + rng.nextRange(range);
    }

    template <typename Exec>
    void
    makeReservation(Exec& exec)
    {
        struct Query
        {
            unsigned kind;
            std::uint64_t id;
        };
        std::array<Query, 16> queries;
        const unsigned n =
            std::min<unsigned>(params_.queriesPerTx, 16);
        for (unsigned q = 0; q < n; ++q) {
            queries[q] = {unsigned(exec.rng().nextRange(numKinds)),
                          randomItem(exec.rng())};
        }
        const std::uint64_t customer_id =
            1 + exec.rng().nextRange(params_.numCustomers);

        static const htm::TxSiteId reserveSite =
            htm::txSite("vacation.makeReservation");
        exec.atomic(reserveSite, [&](auto& c) {
            // Find the cheapest available item of each kind among the
            // queried ones, then reserve it for the customer.
            std::array<Reservation*, numKinds> best{};
            std::array<std::uint64_t, numKinds> best_price{};
            for (unsigned q = 0; q < n; ++q) {
                std::uint64_t raw = 0;
                if (!relations_[queries[q].kind]->find(
                        c, queries[q].id, &raw)) {
                    continue;
                }
                auto* row = reinterpret_cast<Reservation*>(raw);
                const std::uint64_t free = c.load(&row->free);
                const std::uint64_t price = c.load(&row->price);
                if (free == 0)
                    continue;
                const unsigned kind = queries[q].kind;
                if (best[kind] == nullptr || price < best_price[kind]) {
                    best[kind] = row;
                    best_price[kind] = price;
                }
                c.work(35); // per-query request processing
            }

            std::uint64_t raw_customer = 0;
            if (!customers_->find(c, customer_id, &raw_customer))
                return;
            auto* customer =
                reinterpret_cast<Customer*>(raw_customer);
            for (unsigned kind = 0; kind < numKinds; ++kind) {
                Reservation* row = best[kind];
                if (row == nullptr)
                    continue;
                const std::uint64_t free = c.load(&row->free);
                if (free == 0)
                    continue;
                const std::uint64_t item_key =
                    std::uint64_t(kind) << 32 | c.load(&row->id);
                if (customer->held->insert(c, item_key,
                                           best_price[kind])) {
                    c.store(&row->free, free - 1);
                }
            }
        });
    }

    template <typename Exec>
    void
    deleteCustomer(Exec& exec)
    {
        const std::uint64_t customer_id =
            1 + exec.rng().nextRange(params_.numCustomers);
        static const htm::TxSiteId deleteSite =
            htm::txSite("vacation.deleteCustomer");
        exec.atomic(deleteSite, [&](auto& c) {
            std::uint64_t raw_customer = 0;
            if (!customers_->find(c, customer_id, &raw_customer))
                return;
            auto* customer =
                reinterpret_cast<Customer*>(raw_customer);
            // Release everything the customer holds.
            std::uint64_t key = 0;
            while (customer->held->popFront(c, &key, nullptr)) {
                const unsigned kind = unsigned(key >> 32);
                const std::uint64_t id = key & 0xffffffffu;
                std::uint64_t raw_row = 0;
                if (relations_[kind]->find(c, id, &raw_row)) {
                    auto* row = reinterpret_cast<Reservation*>(raw_row);
                    c.store(&row->free, c.load(&row->free) + 1);
                }
                c.work(25);
            }
        });
    }

    template <typename Exec>
    void
    updateTables(Exec& exec)
    {
        const unsigned kind = unsigned(exec.rng().nextRange(numKinds));
        const std::uint64_t id = randomItem(exec.rng());
        const bool grow = exec.rng().nextBool(0.5);
        const std::uint64_t delta = 1 + exec.rng().nextRange(3);
        static const htm::TxSiteId updateSite =
            htm::txSite("vacation.updateTables");
        exec.atomic(updateSite, [&](auto& c) {
            std::uint64_t raw = 0;
            if (!relations_[kind]->find(c, id, &raw))
                return;
            auto* row = reinterpret_cast<Reservation*>(raw);
            if (grow) {
                c.store(&row->free, c.load(&row->free) + delta);
                c.store(&row->total, c.load(&row->total) + delta);
            } else {
                const std::uint64_t free = c.load(&row->free);
                const std::uint64_t shrink =
                    std::min<std::uint64_t>(free, delta);
                c.store(&row->free, free - shrink);
                c.store(&row->total, c.load(&row->total) - shrink);
            }
            c.work(40);
        });
    }

    VacationParams params_;
    std::array<std::unique_ptr<Table>, numKinds> relations_;
    std::unique_ptr<Table> customers_;
};

/** Paper's modified variant (hash tables). */
using VacationApp = VacationAppT<tmds::TmHashTable<>>;
/** Original STAMP variant (red-black trees). */
using VacationAppOriginal = VacationAppT<tmds::TmRbTree>;

} // namespace htmsim::stamp

#endif // HTMSIM_STAMP_VACATION_VACATION_HH

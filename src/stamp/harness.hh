/**
 * @file
 * Measurement harness for STAMP runs.
 *
 * Mirrors the paper's methodology: setup and verification are untimed;
 * the timed region is the parallel phase between two barriers. The
 * speed-up ratio of a configuration is the sequential baseline's
 * virtual time divided by the transactional run's virtual time on the
 * same machine model.
 */

#ifndef HTMSIM_STAMP_HARNESS_HH
#define HTMSIM_STAMP_HARNESS_HH

#include <cstdint>

#include "exec.hh"
#include "htm/runtime.hh"
#include "sim/sim.hh"

namespace htmsim::stamp
{

/** Outcome of one timed run. */
struct RunResult
{
    /** Virtual cycles spent in the timed parallel region. */
    sim::Cycles cycles = 0;
    /** Aggregated transaction statistics (empty for baseline runs). */
    htm::TxStats stats;
    /** Application self-check outcome. */
    bool valid = false;
    /** Per-transaction footprints (when tracing was enabled). */
    htm::TraceCollector trace;
};

/**
 * Run an app transactionally on @p threads simulated threads.
 *
 * App concept:
 *   void setup();                         // untimed, host speed
 *   template <typename Exec> void worker(Exec&); // timed region
 *   bool verify();                        // untimed, host speed
 */
template <typename App>
RunResult
runTransactional(App& app, const htm::RuntimeConfig& config,
                 unsigned threads, std::uint64_t seed)
{
    app.setup();
    sim::Scheduler scheduler(seed);
    scheduler.setBatching(config.batchEpoch);
    htm::Runtime runtime(config, threads);
    sim::Barrier barrier(threads);
    sim::Cycles start = 0;
    sim::Cycles finish = 0;
    for (unsigned t = 0; t < threads; ++t) {
        scheduler.spawn([&](sim::ThreadContext& ctx) {
            ctx.setTimeScale(config.machine.threadTimeScale(
                ctx.id(), threads));
            TmExec exec(runtime, ctx, barrier, threads);
            barrier.arrive(ctx);
            if (ctx.id() == 0)
                start = ctx.now();
            app.worker(exec);
            barrier.arrive(ctx);
            if (ctx.id() == 0)
                finish = ctx.now();
        });
    }
    scheduler.run();

    RunResult result;
    result.cycles = finish - start;
    result.stats = runtime.stats();
    result.valid = app.verify();
    if (config.collectTrace)
        result.trace = runtime.trace();
    return result;
}

/** Run an app under hardware lock elision (Intel, Figure 7). */
template <typename App>
RunResult
runHle(App& app, const htm::RuntimeConfig& config, unsigned threads,
       std::uint64_t seed)
{
    app.setup();
    sim::Scheduler scheduler(seed);
    scheduler.setBatching(config.batchEpoch);
    htm::Runtime runtime(config, threads);
    htm::HleLock lock;
    sim::Barrier barrier(threads);
    sim::Cycles start = 0;
    sim::Cycles finish = 0;
    for (unsigned t = 0; t < threads; ++t) {
        scheduler.spawn([&](sim::ThreadContext& ctx) {
            ctx.setTimeScale(config.machine.threadTimeScale(
                ctx.id(), threads));
            HleExec exec(runtime, lock, ctx, barrier, threads);
            barrier.arrive(ctx);
            if (ctx.id() == 0)
                start = ctx.now();
            app.worker(exec);
            barrier.arrive(ctx);
            if (ctx.id() == 0)
                finish = ctx.now();
        });
    }
    scheduler.run();

    RunResult result;
    result.cycles = finish - start;
    result.stats = runtime.stats();
    result.valid = app.verify();
    return result;
}

/** Run the sequential non-HTM baseline of an app. */
template <typename App>
RunResult
runSequential(App& app, const htm::MachineConfig& machine,
              std::uint64_t seed, bool batch_epoch = true)
{
    app.setup();
    sim::Scheduler scheduler(seed);
    scheduler.setBatching(batch_epoch);
    sim::Cycles start = 0;
    sim::Cycles finish = 0;
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        SeqExec exec(ctx, machine);
        start = ctx.now();
        app.worker(exec);
        finish = ctx.now();
    });
    scheduler.run();

    RunResult result;
    result.cycles = finish - start;
    result.valid = app.verify();
    return result;
}

/** Speed-up of a transactional run over the sequential baseline. */
struct Speedup
{
    double ratio = 0.0;
    RunResult tm;
    RunResult seq;
};

/**
 * Measure the speed-up for one (machine, app, threads) cell. The
 * factory must return a freshly constructed app each call.
 */
template <typename AppFactory>
Speedup
measureSpeedup(AppFactory&& make_app, const htm::RuntimeConfig& config,
               unsigned threads, std::uint64_t seed = 1)
{
    Speedup result;
    {
        auto app = make_app();
        result.seq =
            runSequential(app, config.machine, seed, config.batchEpoch);
    }
    {
        auto app = make_app();
        result.tm = runTransactional(app, config, threads, seed);
    }
    result.ratio = result.tm.cycles == 0
                       ? 0.0
                       : double(result.seq.cycles) /
                             double(result.tm.cycles);
    return result;
}

} // namespace htmsim::stamp

#endif // HTMSIM_STAMP_HARNESS_HH

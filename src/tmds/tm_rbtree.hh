/**
 * @file
 * Transactional red-black tree (STAMP lib/rbtree equivalent).
 *
 * CLRS-style with parent pointers and null leaves (no shared sentinel
 * node — a sentinel's parent field would become an artificial conflict
 * hotspot under TM, which STAMP's tree also avoids). Used by the
 * *original* intruder/vacation variants and by the modified intruder's
 * ordered sets.
 */

#ifndef HTMSIM_TMDS_TM_RBTREE_HH
#define HTMSIM_TMDS_TM_RBTREE_HH

#include <cstdint>

#include "htm/node_pool.hh"

namespace htmsim::tmds
{

/** Map from uint64 keys to uint64 values with ordered iteration. */
class TmRbTree
{
  public:
    enum Color : std::uint64_t { red = 0, black = 1 };

    struct Node
    {
        std::uint64_t key;
        std::uint64_t value;
        Node* left;
        Node* right;
        Node* parent;
        std::uint64_t color;
        /** Pad to 64 bytes (see TmList::Node). */
        char pad[16];
    };

    TmRbTree() = default;
    /** Capacity hints are accepted (and ignored) so the tree is a
     *  drop-in for TmHashTable in templated code. */
    explicit TmRbTree(std::size_t) {}
    TmRbTree(const TmRbTree&) = delete;
    TmRbTree& operator=(const TmRbTree&) = delete;
    ~TmRbTree() { freeSubtree(root_); }

    /** Insert if absent; returns false if the key already exists. */
    template <typename Ctx>
    bool
    insert(Ctx& c, std::uint64_t key, std::uint64_t value)
    {
        Node* parent = nullptr;
        Node* node = c.load(&root_);
        while (node != nullptr) {
            const std::uint64_t node_key = c.load(&node->key);
            if (key == node_key)
                return false;
            parent = node;
            node = key < node_key ? c.load(&node->left)
                                  : c.load(&node->right);
        }

        Node* fresh = c.template create<Node>();
        c.store(&fresh->key, key);
        c.store(&fresh->value, value);
        c.store(&fresh->left, static_cast<Node*>(nullptr));
        c.store(&fresh->right, static_cast<Node*>(nullptr));
        c.store(&fresh->parent, parent);
        c.store(&fresh->color, std::uint64_t(red));

        if (parent == nullptr) {
            c.store(&root_, fresh);
        } else if (key < c.load(&parent->key)) {
            c.store(&parent->left, fresh);
        } else {
            c.store(&parent->right, fresh);
        }
        insertFixup(c, fresh);
        c.store(&size_, c.load(&size_) + 1);
        return true;
    }

    /** Look up a key; stores the value through @p out when found. */
    template <typename Ctx>
    bool
    find(Ctx& c, std::uint64_t key, std::uint64_t* out = nullptr)
    {
        Node* node = findNode(c, key);
        if (node == nullptr)
            return false;
        if (out != nullptr)
            *out = c.load(&node->value);
        return true;
    }

    /** Update an existing key's value; returns false if absent. */
    template <typename Ctx>
    bool
    update(Ctx& c, std::uint64_t key, std::uint64_t value)
    {
        Node* node = findNode(c, key);
        if (node == nullptr)
            return false;
        c.store(&node->value, value);
        return true;
    }

    /** Remove a key; returns false if absent. */
    template <typename Ctx>
    bool
    remove(Ctx& c, std::uint64_t key)
    {
        Node* node = findNode(c, key);
        if (node == nullptr)
            return false;
        removeNode(c, node);
        c.store(&size_, c.load(&size_) - 1);
        return true;
    }

    template <typename Ctx>
    std::uint64_t
    size(Ctx& c)
    {
        return c.load(&size_);
    }

    template <typename Ctx>
    bool
    empty(Ctx& c)
    {
        return c.load(&root_) == nullptr;
    }

    /** Smallest key >= @p key; returns false if none. */
    template <typename Ctx>
    bool
    findCeiling(Ctx& c, std::uint64_t key, std::uint64_t* key_out,
                std::uint64_t* value_out = nullptr)
    {
        Node* node = c.load(&root_);
        Node* best = nullptr;
        while (node != nullptr) {
            const std::uint64_t node_key = c.load(&node->key);
            if (node_key == key) {
                best = node;
                break;
            }
            if (node_key > key) {
                best = node;
                node = c.load(&node->left);
            } else {
                node = c.load(&node->right);
            }
        }
        if (best == nullptr)
            return false;
        if (key_out != nullptr)
            *key_out = c.load(&best->key);
        if (value_out != nullptr)
            *value_out = c.load(&best->value);
        return true;
    }

    /** In-order visit: f(key, value). */
    template <typename Ctx, typename F>
    void
    forEach(Ctx& c, F&& f)
    {
        visit(c, c.load(&root_), f);
    }

    /**
     * Bounded ascending range scan: visit f(key, value) for up to
     * @p limit elements with key >= @p from, in key order. Returns the
     * number visited. The lower-bound descent plus the parent-pointer
     * successor walk keeps the transactional footprint proportional to
     * tree depth + limit — the small-scan shape OLTP range queries
     * want.
     */
    template <typename Ctx, typename F>
    unsigned
    rangeEach(Ctx& c, std::uint64_t from, unsigned limit, F&& f)
    {
        Node* node = c.load(&root_);
        Node* next = nullptr;
        while (node != nullptr) {
            if (c.load(&node->key) >= from) {
                next = node;
                node = c.load(&node->left);
            } else {
                node = c.load(&node->right);
            }
        }
        unsigned visited = 0;
        while (next != nullptr && visited < limit) {
            f(c.load(&next->key), c.load(&next->value));
            ++visited;
            next = successor(c, next);
        }
        return visited;
    }

    /**
     * Validate red-black invariants (host-side). Returns the black
     * height, or -1 if any invariant is violated. For tests.
     */
    int
    checkInvariants() const
    {
        if (root_ != nullptr && root_->color != black)
            return -1;
        return blackHeight(root_, nullptr, 0,
                           ~std::uint64_t(0));
    }

  private:
    template <typename Ctx>
    Node*
    findNode(Ctx& c, std::uint64_t key)
    {
        Node* node = c.load(&root_);
        while (node != nullptr) {
            const std::uint64_t node_key = c.load(&node->key);
            if (key == node_key)
                return node;
            node = key < node_key ? c.load(&node->left)
                                  : c.load(&node->right);
        }
        return nullptr;
    }

    /** In-order successor via parent pointers (no stack). */
    template <typename Ctx>
    Node*
    successor(Ctx& c, Node* node)
    {
        Node* right = c.load(&node->right);
        if (right != nullptr) {
            Node* left = c.load(&right->left);
            while (left != nullptr) {
                right = left;
                left = c.load(&right->left);
            }
            return right;
        }
        Node* parent = c.load(&node->parent);
        while (parent != nullptr && c.load(&parent->right) == node) {
            node = parent;
            parent = c.load(&parent->parent);
        }
        return parent;
    }

    template <typename Ctx>
    bool
    isRed(Ctx& c, Node* node)
    {
        return node != nullptr && c.load(&node->color) == red;
    }

    template <typename Ctx>
    void
    rotateLeft(Ctx& c, Node* x)
    {
        Node* y = c.load(&x->right);
        Node* y_left = c.load(&y->left);
        c.store(&x->right, y_left);
        if (y_left != nullptr)
            c.store(&y_left->parent, x);
        Node* x_parent = c.load(&x->parent);
        c.store(&y->parent, x_parent);
        if (x_parent == nullptr)
            c.store(&root_, y);
        else if (x == c.load(&x_parent->left))
            c.store(&x_parent->left, y);
        else
            c.store(&x_parent->right, y);
        c.store(&y->left, x);
        c.store(&x->parent, y);
    }

    template <typename Ctx>
    void
    rotateRight(Ctx& c, Node* x)
    {
        Node* y = c.load(&x->left);
        Node* y_right = c.load(&y->right);
        c.store(&x->left, y_right);
        if (y_right != nullptr)
            c.store(&y_right->parent, x);
        Node* x_parent = c.load(&x->parent);
        c.store(&y->parent, x_parent);
        if (x_parent == nullptr)
            c.store(&root_, y);
        else if (x == c.load(&x_parent->right))
            c.store(&x_parent->right, y);
        else
            c.store(&x_parent->left, y);
        c.store(&y->right, x);
        c.store(&x->parent, y);
    }

    template <typename Ctx>
    void
    insertFixup(Ctx& c, Node* z)
    {
        while (isRed(c, c.load(&z->parent))) {
            Node* parent = c.load(&z->parent);
            Node* grandparent = c.load(&parent->parent);
            if (parent == c.load(&grandparent->left)) {
                Node* uncle = c.load(&grandparent->right);
                if (isRed(c, uncle)) {
                    c.store(&parent->color, std::uint64_t(black));
                    c.store(&uncle->color, std::uint64_t(black));
                    c.store(&grandparent->color, std::uint64_t(red));
                    z = grandparent;
                } else {
                    if (z == c.load(&parent->right)) {
                        z = parent;
                        rotateLeft(c, z);
                        parent = c.load(&z->parent);
                        grandparent = c.load(&parent->parent);
                    }
                    c.store(&parent->color, std::uint64_t(black));
                    c.store(&grandparent->color, std::uint64_t(red));
                    rotateRight(c, grandparent);
                }
            } else {
                Node* uncle = c.load(&grandparent->left);
                if (isRed(c, uncle)) {
                    c.store(&parent->color, std::uint64_t(black));
                    c.store(&uncle->color, std::uint64_t(black));
                    c.store(&grandparent->color, std::uint64_t(red));
                    z = grandparent;
                } else {
                    if (z == c.load(&parent->left)) {
                        z = parent;
                        rotateRight(c, z);
                        parent = c.load(&z->parent);
                        grandparent = c.load(&parent->parent);
                    }
                    c.store(&parent->color, std::uint64_t(black));
                    c.store(&grandparent->color, std::uint64_t(red));
                    rotateLeft(c, grandparent);
                }
            }
        }
        Node* root = c.load(&root_);
        c.store(&root->color, std::uint64_t(black));
    }

    /** Replace the subtree rooted at u with v (v may be null). */
    template <typename Ctx>
    void
    transplant(Ctx& c, Node* u, Node* v)
    {
        Node* u_parent = c.load(&u->parent);
        if (u_parent == nullptr)
            c.store(&root_, v);
        else if (u == c.load(&u_parent->left))
            c.store(&u_parent->left, v);
        else
            c.store(&u_parent->right, v);
        if (v != nullptr)
            c.store(&v->parent, u_parent);
    }

    template <typename Ctx>
    Node*
    minimum(Ctx& c, Node* node)
    {
        Node* left = c.load(&node->left);
        while (left != nullptr) {
            node = left;
            left = c.load(&node->left);
        }
        return node;
    }

    template <typename Ctx>
    void
    removeNode(Ctx& c, Node* z)
    {
        Node* x = nullptr;
        Node* x_parent = nullptr;
        Node* y = z;
        std::uint64_t y_color = c.load(&y->color);

        if (c.load(&z->left) == nullptr) {
            x = c.load(&z->right);
            x_parent = c.load(&z->parent);
            transplant(c, z, x);
        } else if (c.load(&z->right) == nullptr) {
            x = c.load(&z->left);
            x_parent = c.load(&z->parent);
            transplant(c, z, x);
        } else {
            y = minimum(c, c.load(&z->right));
            y_color = c.load(&y->color);
            x = c.load(&y->right);
            if (c.load(&y->parent) == z) {
                x_parent = y;
            } else {
                x_parent = c.load(&y->parent);
                transplant(c, y, x);
                Node* z_right = c.load(&z->right);
                c.store(&y->right, z_right);
                c.store(&z_right->parent, y);
            }
            transplant(c, z, y);
            Node* z_left = c.load(&z->left);
            c.store(&y->left, z_left);
            c.store(&z_left->parent, y);
            c.store(&y->color, c.load(&z->color));
        }
        if (y_color == black)
            removeFixup(c, x, x_parent);
        c.template destroy<Node>(z);
    }

    template <typename Ctx>
    void
    removeFixup(Ctx& c, Node* x, Node* x_parent)
    {
        while (x != c.load(&root_) && !isRed(c, x)) {
            if (x_parent == nullptr)
                break;
            if (x == c.load(&x_parent->left)) {
                Node* w = c.load(&x_parent->right);
                if (isRed(c, w)) {
                    c.store(&w->color, std::uint64_t(black));
                    c.store(&x_parent->color, std::uint64_t(red));
                    rotateLeft(c, x_parent);
                    w = c.load(&x_parent->right);
                }
                if (!isRed(c, c.load(&w->left)) &&
                    !isRed(c, c.load(&w->right))) {
                    c.store(&w->color, std::uint64_t(red));
                    x = x_parent;
                    x_parent = c.load(&x->parent);
                } else {
                    if (!isRed(c, c.load(&w->right))) {
                        Node* w_left = c.load(&w->left);
                        if (w_left != nullptr) {
                            c.store(&w_left->color,
                                    std::uint64_t(black));
                        }
                        c.store(&w->color, std::uint64_t(red));
                        rotateRight(c, w);
                        w = c.load(&x_parent->right);
                    }
                    c.store(&w->color, c.load(&x_parent->color));
                    c.store(&x_parent->color, std::uint64_t(black));
                    Node* w_right = c.load(&w->right);
                    if (w_right != nullptr)
                        c.store(&w_right->color, std::uint64_t(black));
                    rotateLeft(c, x_parent);
                    x = c.load(&root_);
                    x_parent = nullptr;
                }
            } else {
                Node* w = c.load(&x_parent->left);
                if (isRed(c, w)) {
                    c.store(&w->color, std::uint64_t(black));
                    c.store(&x_parent->color, std::uint64_t(red));
                    rotateRight(c, x_parent);
                    w = c.load(&x_parent->left);
                }
                if (!isRed(c, c.load(&w->right)) &&
                    !isRed(c, c.load(&w->left))) {
                    c.store(&w->color, std::uint64_t(red));
                    x = x_parent;
                    x_parent = c.load(&x->parent);
                } else {
                    if (!isRed(c, c.load(&w->left))) {
                        Node* w_right = c.load(&w->right);
                        if (w_right != nullptr) {
                            c.store(&w_right->color,
                                    std::uint64_t(black));
                        }
                        c.store(&w->color, std::uint64_t(red));
                        rotateLeft(c, w);
                        w = c.load(&x_parent->left);
                    }
                    c.store(&w->color, c.load(&x_parent->color));
                    c.store(&x_parent->color, std::uint64_t(black));
                    Node* w_left = c.load(&w->left);
                    if (w_left != nullptr)
                        c.store(&w_left->color, std::uint64_t(black));
                    rotateRight(c, x_parent);
                    x = c.load(&root_);
                    x_parent = nullptr;
                }
            }
        }
        if (x != nullptr)
            c.store(&x->color, std::uint64_t(black));
    }

    template <typename Ctx, typename F>
    void
    visit(Ctx& c, Node* node, F& f)
    {
        if (node == nullptr)
            return;
        visit(c, c.load(&node->left), f);
        f(c.load(&node->key), c.load(&node->value));
        visit(c, c.load(&node->right), f);
    }

    /** Recursive invariant check; -1 on violation. */
    static int
    blackHeight(const Node* node, const Node* parent,
                std::uint64_t min_key, std::uint64_t max_key)
    {
        if (node == nullptr)
            return 0;
        if (node->parent != parent)
            return -1;
        if (node->key < min_key || node->key > max_key)
            return -1;
        if (node->color == red && parent != nullptr &&
            parent->color == red) {
            return -1;
        }
        const int left_height =
            node->key == 0
                ? blackHeight(node->left, node, min_key, node->key)
                : blackHeight(node->left, node, min_key, node->key - 1);
        const int right_height =
            blackHeight(node->right, node, node->key + 1, max_key);
        if (left_height < 0 || right_height < 0 ||
            left_height != right_height) {
            return -1;
        }
        return left_height + (node->color == black ? 1 : 0);
    }

    static void
    freeSubtree(Node* node)
    {
        if (node == nullptr)
            return;
        freeSubtree(node->left);
        freeSubtree(node->right);
        htm::NodePool::instance().free(node, sizeof(Node));
    }

    Node* root_ = nullptr;
    std::uint64_t size_ = 0;
};

} // namespace htmsim::tmds

#endif // HTMSIM_TMDS_TM_RBTREE_HH

/**
 * @file
 * Transactional bitmap (STAMP lib/bitmap equivalent).
 */

#ifndef HTMSIM_TMDS_TM_BITMAP_HH
#define HTMSIM_TMDS_TM_BITMAP_HH

#include <cstdint>
#include <vector>

namespace htmsim::tmds
{

/** Fixed-size bit vector with context-mediated access. */
class TmBitmap
{
  public:
    explicit TmBitmap(std::size_t bits)
        : bits_(bits), words_((bits + 63) / 64, 0)
    {
    }

    std::size_t numBits() const { return bits_; }

    template <typename Ctx>
    bool
    isSet(Ctx& c, std::size_t index)
    {
        return (c.load(&words_[index / 64]) >>
                (index % 64)) & 1u;
    }

    /** Set a bit; returns false if it was already set. */
    template <typename Ctx>
    bool
    set(Ctx& c, std::size_t index)
    {
        std::uint64_t word = c.load(&words_[index / 64]);
        const std::uint64_t mask = std::uint64_t(1) << (index % 64);
        if (word & mask)
            return false;
        c.store(&words_[index / 64], word | mask);
        return true;
    }

    /** Clear a bit; returns false if it was already clear. */
    template <typename Ctx>
    bool
    clear(Ctx& c, std::size_t index)
    {
        std::uint64_t word = c.load(&words_[index / 64]);
        const std::uint64_t mask = std::uint64_t(1) << (index % 64);
        if (!(word & mask))
            return false;
        c.store(&words_[index / 64], word & ~mask);
        return true;
    }

    /** Population count (host-side; for verification). */
    std::size_t
    countSet() const
    {
        std::size_t count = 0;
        for (const auto word : words_)
            count += std::size_t(__builtin_popcountll(word));
        return count;
    }

  private:
    std::size_t bits_;
    std::vector<std::uint64_t> words_;
};

} // namespace htmsim::tmds

#endif // HTMSIM_TMDS_TM_BITMAP_HH

/**
 * @file
 * Transactional growable ring-buffer queue (STAMP lib/queue
 * equivalent). Used by intruder for the packet and result streams.
 */

#ifndef HTMSIM_TMDS_TM_QUEUE_HH
#define HTMSIM_TMDS_TM_QUEUE_HH

#include <cstdint>

#include "htm/node_pool.hh"

namespace htmsim::tmds
{

/** FIFO of uint64 payloads (typically pointers). */
class TmQueue
{
  public:
    explicit TmQueue(std::size_t initial_capacity = 8)
        : capacity_(initial_capacity < 2 ? 2 : initial_capacity)
    {
        items_ = static_cast<std::uint64_t*>(
            htm::NodePool::instance().alloc(capacity_ *
                                            sizeof(std::uint64_t)));
    }

    TmQueue(const TmQueue&) = delete;
    TmQueue& operator=(const TmQueue&) = delete;
    ~TmQueue()
    {
        htm::NodePool::instance().free(
            items_, capacity_ * sizeof(std::uint64_t));
    }

    template <typename Ctx>
    bool
    empty(Ctx& c)
    {
        return c.load(&head_) == c.load(&tail_);
    }

    template <typename Ctx>
    std::uint64_t
    size(Ctx& c)
    {
        const std::uint64_t head = c.load(&head_);
        const std::uint64_t tail = c.load(&tail_);
        const std::uint64_t capacity = c.load(&capacity_);
        return (tail + capacity - head) % capacity;
    }

    template <typename Ctx>
    void
    push(Ctx& c, std::uint64_t item)
    {
        std::uint64_t head = c.load(&head_);
        std::uint64_t tail = c.load(&tail_);
        std::uint64_t capacity = c.load(&capacity_);
        if ((tail + 1) % capacity == head) {
            grow(c, head, tail, capacity);
            head = 0;
            tail = c.load(&tail_);
            capacity = c.load(&capacity_);
        }
        std::uint64_t* items = c.load(&items_);
        c.store(&items[tail], item);
        c.store(&tail_, (tail + 1) % capacity);
    }

    /** Pop the oldest item; returns false when empty. */
    template <typename Ctx>
    bool
    pop(Ctx& c, std::uint64_t* out)
    {
        const std::uint64_t head = c.load(&head_);
        if (head == c.load(&tail_))
            return false;
        std::uint64_t* items = c.load(&items_);
        if (out != nullptr)
            *out = c.load(&items[head]);
        c.store(&head_, (head + 1) % c.load(&capacity_));
        return true;
    }

    /** Visit every queued item, oldest first: f(item). */
    template <typename Ctx, typename F>
    void
    forEach(Ctx& c, F&& f)
    {
        const std::uint64_t tail = c.load(&tail_);
        const std::uint64_t capacity = c.load(&capacity_);
        std::uint64_t* items = c.load(&items_);
        for (std::uint64_t i = c.load(&head_); i != tail;
             i = (i + 1) % capacity) {
            f(c.load(&items[i]));
        }
    }

  private:
    /** Double the backing array (inside the calling transaction). */
    template <typename Ctx>
    void
    grow(Ctx& c, std::uint64_t head, std::uint64_t tail,
         std::uint64_t capacity)
    {
        const std::uint64_t new_capacity = capacity * 2;
        auto* fresh = static_cast<std::uint64_t*>(
            c.allocBytes(new_capacity * sizeof(std::uint64_t)));
        std::uint64_t* items = c.load(&items_);
        std::uint64_t count = 0;
        for (std::uint64_t i = head; i != tail;
             i = (i + 1) % capacity, ++count) {
            c.store(&fresh[count], c.load(&items[i]));
        }
        c.deallocBytes(items, capacity * sizeof(std::uint64_t));
        c.store(&items_, fresh);
        c.store(&head_, std::uint64_t(0));
        c.store(&tail_, count);
        c.store(&capacity_, new_capacity);
    }

    // Head and tail cursors live on separate lines on every machine;
    // a consumer and a producer of a non-empty queue need not
    // conflict (as in any serious concurrent queue layout).
    std::uint64_t* items_ = nullptr;
    std::uint64_t capacity_;
    alignas(256) std::uint64_t head_ = 0;
    alignas(256) std::uint64_t tail_ = 0;
};

} // namespace htmsim::tmds

#endif // HTMSIM_TMDS_TM_QUEUE_HH

/**
 * @file
 * Transactional sorted singly-linked list (STAMP lib/list equivalent).
 *
 * Keys are unique and kept in ascending order. All field accesses go
 * through the access context, so the same code runs transactionally,
 * sequentially timed, or untimed.
 */

#ifndef HTMSIM_TMDS_TM_LIST_HH
#define HTMSIM_TMDS_TM_LIST_HH

#include <cstdint>

#include "htm/node_pool.hh"

namespace htmsim::tmds
{

/** Three-way comparison policy over uint64 keys (default numeric). */
struct NumericCompare
{
    template <typename Ctx>
    static int
    compare(Ctx&, std::uint64_t a, std::uint64_t b)
    {
        return a < b ? -1 : (a > b ? 1 : 0);
    }
};

/**
 * Sorted unique-key linked list mapping uint64 keys to uint64 values
 * (values typically hold pointers).
 */
template <typename Compare = NumericCompare>
class TmList
{
  public:
    struct Node
    {
        std::uint64_t key;
        std::uint64_t value;
        Node* next;
        /** Pad to 64 bytes: real allocators hand out line-granular
         *  chunks; without this, scaled-down tables pack many nodes
         *  per line and exaggerate false conflicts. */
        char pad[40];
    };

    TmList() = default;
    /** Capacity hints are accepted (and ignored) so the list is a
     *  drop-in for the other set structures in templated code. */
    explicit TmList(std::size_t) {}
    TmList(const TmList&) = delete;
    TmList& operator=(const TmList&) = delete;

    ~TmList()
    {
        Node* node = head_.next;
        while (node != nullptr) {
            Node* next = node->next;
            htm::NodePool::instance().free(node, sizeof(Node));
            node = next;
        }
    }

    /** Insert @p key; fails (returns false) if already present. */
    template <typename Ctx>
    bool
    insert(Ctx& c, std::uint64_t key, std::uint64_t value)
    {
        Node* previous = &head_;
        Node* node = c.load(&head_.next);
        while (node != nullptr) {
            const int order = Compare::compare(c, c.load(&node->key),
                                               key);
            if (order == 0)
                return false;
            if (order > 0)
                break;
            previous = node;
            node = c.load(&node->next);
        }
        Node* inserted = c.template create<Node>();
        c.store(&inserted->key, key);
        c.store(&inserted->value, value);
        c.store(&inserted->next, node);
        c.store(&previous->next, inserted);
        c.store(&size_, c.load(&size_) + 1);
        return true;
    }

    /** Remove @p key; returns false if absent. */
    template <typename Ctx>
    bool
    remove(Ctx& c, std::uint64_t key)
    {
        Node* previous = &head_;
        Node* node = c.load(&head_.next);
        while (node != nullptr) {
            const int order = Compare::compare(c, c.load(&node->key),
                                               key);
            if (order == 0) {
                c.store(&previous->next, c.load(&node->next));
                c.template destroy<Node>(node);
                c.store(&size_, c.load(&size_) - 1);
                return true;
            }
            if (order > 0)
                return false;
            previous = node;
            node = c.load(&node->next);
        }
        return false;
    }

    /** Look up @p key; stores the value through @p out when found. */
    template <typename Ctx>
    bool
    find(Ctx& c, std::uint64_t key, std::uint64_t* out = nullptr)
    {
        Node* node = c.load(&head_.next);
        while (node != nullptr) {
            const int order = Compare::compare(c, c.load(&node->key),
                                               key);
            if (order == 0) {
                if (out != nullptr)
                    *out = c.load(&node->value);
                return true;
            }
            if (order > 0)
                return false;
            node = c.load(&node->next);
        }
        return false;
    }

    /** Element count (transactional read of the shared counter). */
    template <typename Ctx>
    std::uint64_t
    size(Ctx& c)
    {
        return c.load(&size_);
    }

    template <typename Ctx>
    bool
    empty(Ctx& c)
    {
        return c.load(&head_.next) == nullptr;
    }

    /** In-order visit: f(key, value). */
    template <typename Ctx, typename F>
    void
    forEach(Ctx& c, F&& f)
    {
        Node* node = c.load(&head_.next);
        while (node != nullptr) {
            f(c.load(&node->key), c.load(&node->value));
            node = c.load(&node->next);
        }
    }

    /** First node, for queue-like consumption. */
    template <typename Ctx>
    Node*
    front(Ctx& c)
    {
        return c.load(&head_.next);
    }

    /** Pop the smallest key; returns false when empty. */
    template <typename Ctx>
    bool
    popFront(Ctx& c, std::uint64_t* key_out, std::uint64_t* value_out)
    {
        Node* node = c.load(&head_.next);
        if (node == nullptr)
            return false;
        if (key_out != nullptr)
            *key_out = c.load(&node->key);
        if (value_out != nullptr)
            *value_out = c.load(&node->value);
        c.store(&head_.next, c.load(&node->next));
        c.template destroy<Node>(node);
        c.store(&size_, c.load(&size_) - 1);
        return true;
    }

  private:
    Node head_{0, 0, nullptr};
    std::uint64_t size_ = 0;
};

} // namespace htmsim::tmds

#endif // HTMSIM_TMDS_TM_LIST_HH

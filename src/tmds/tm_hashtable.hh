/**
 * @file
 * Transactional chained hash table.
 *
 * This is the structure the paper substitutes for STAMP's red-black
 * trees in intruder and vacation (Section 4): "similar to the
 * concurrent hash table in the Java standard class library" — a fixed
 * bucket array with per-bucket chains, so transactions touching
 * different buckets do not conflict, plus a sharded element counter so
 * size bookkeeping does not become a conflict hotspot.
 */

#ifndef HTMSIM_TMDS_TM_HASHTABLE_HH
#define HTMSIM_TMDS_TM_HASHTABLE_HH

#include <cstdint>
#include <vector>

#include "htm/node_pool.hh"

namespace htmsim::tmds
{

/** Key policy for plain numeric keys. */
struct NumericKey
{
    template <typename Ctx>
    static std::uint64_t
    hash(Ctx&, std::uint64_t key)
    {
        // Fibonacci/avalanche mix.
        std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
        h ^= h >> 32;
        return h;
    }

    template <typename Ctx>
    static bool
    equal(Ctx&, std::uint64_t a, std::uint64_t b)
    {
        return a == b;
    }
};

/**
 * Unordered map of uint64 keys to uint64 values.
 *
 * @tparam KeyPolicy provides hash(ctx, key) and equal(ctx, a, b); a
 * policy may dereference keys through the context (e.g. genome's
 * string segments), in which case hashing contributes to the
 * transactional footprint, exactly as in instrumented STAMP.
 */
template <typename KeyPolicy = NumericKey>
class TmHashTable
{
  public:
    struct Node
    {
        std::uint64_t key;
        std::uint64_t value;
        Node* next;
        /** Pad to 64 bytes: real allocators hand out line-granular
         *  chunks; without this, scaled-down tables pack many nodes
         *  per line and exaggerate false conflicts. */
        char pad[40];
    };

    /** @param buckets fixed bucket count (rounded up to a power of 2). */
    explicit TmHashTable(std::size_t buckets)
    {
        std::size_t size = 16;
        while (size < buckets)
            size *= 2;
        buckets_.assign(size, nullptr);
        counts_.assign(numCountShards, PaddedCount{});
    }

    TmHashTable(const TmHashTable&) = delete;
    TmHashTable& operator=(const TmHashTable&) = delete;

    ~TmHashTable()
    {
        for (Node* node : buckets_) {
            while (node != nullptr) {
                Node* next = node->next;
                htm::NodePool::instance().free(node, sizeof(Node));
                node = next;
            }
        }
    }

    /** Insert if absent; returns false if the key already exists. */
    template <typename Ctx>
    bool
    insert(Ctx& c, std::uint64_t key, std::uint64_t value)
    {
        Node** bucket = bucketOf(c, key);
        Node* node = c.load(bucket);
        while (node != nullptr) {
            if (KeyPolicy::equal(c, c.load(&node->key), key))
                return false;
            node = c.load(&node->next);
        }
        Node* inserted = c.template create<Node>();
        c.store(&inserted->key, key);
        c.store(&inserted->value, value);
        c.store(&inserted->next, c.load(bucket));
        c.store(bucket, inserted);
        bumpCount(c, key, 1);
        return true;
    }

    /** Remove a key; returns false if absent. */
    template <typename Ctx>
    bool
    remove(Ctx& c, std::uint64_t key)
    {
        Node** bucket = bucketOf(c, key);
        Node* node = c.load(bucket);
        Node** link = bucket;
        while (node != nullptr) {
            if (KeyPolicy::equal(c, c.load(&node->key), key)) {
                c.store(link, c.load(&node->next));
                c.template destroy<Node>(node);
                bumpCount(c, key, -1);
                return true;
            }
            link = &node->next;
            node = c.load(&node->next);
        }
        return false;
    }

    /** Look up a key; stores the value through @p out when found. */
    template <typename Ctx>
    bool
    find(Ctx& c, std::uint64_t key, std::uint64_t* out = nullptr)
    {
        Node** bucket = bucketOf(c, key);
        Node* node = c.load(bucket);
        while (node != nullptr) {
            if (KeyPolicy::equal(c, c.load(&node->key), key)) {
                if (out != nullptr)
                    *out = c.load(&node->value);
                return true;
            }
            node = c.load(&node->next);
        }
        return false;
    }

    /** Update an existing key's value; returns false if absent. */
    template <typename Ctx>
    bool
    update(Ctx& c, std::uint64_t key, std::uint64_t value)
    {
        Node** bucket = bucketOf(c, key);
        Node* node = c.load(bucket);
        while (node != nullptr) {
            if (KeyPolicy::equal(c, c.load(&node->key), key)) {
                c.store(&node->value, value);
                return true;
            }
            node = c.load(&node->next);
        }
        return false;
    }

    /** Total element count, summing the shards. */
    template <typename Ctx>
    std::uint64_t
    size(Ctx& c)
    {
        std::uint64_t total = 0;
        for (auto& shard : counts_)
            total += c.load(&shard.value);
        return total;
    }

    /** Visit every element (host-friendly; takes any context). */
    template <typename Ctx, typename F>
    void
    forEach(Ctx& c, F&& f)
    {
        for (Node*& head : buckets_) {
            Node* node = c.load(&head);
            while (node != nullptr) {
                f(c.load(&node->key), c.load(&node->value));
                node = c.load(&node->next);
            }
        }
    }

    std::size_t numBuckets() const { return buckets_.size(); }

  private:
    static constexpr std::size_t numCountShards = 16;

    struct alignas(256) PaddedCount
    {
        std::uint64_t value = 0;
    };

    template <typename Ctx>
    Node**
    bucketOf(Ctx& c, std::uint64_t key)
    {
        const std::uint64_t h = KeyPolicy::hash(c, key);
        return &buckets_[h & (buckets_.size() - 1)];
    }

    template <typename Ctx>
    void
    bumpCount(Ctx& c, std::uint64_t key, std::int64_t delta)
    {
        auto& shard =
            counts_[KeyPolicy::hash(c, key) % numCountShards];
        c.store(&shard.value,
                c.load(&shard.value) + std::uint64_t(delta));
    }

    std::vector<Node*> buckets_;
    std::vector<PaddedCount> counts_;
};

} // namespace htmsim::tmds

#endif // HTMSIM_TMDS_TM_HASHTABLE_HH

/**
 * @file
 * Transactional binary max-heap (STAMP lib/heap equivalent). yada uses
 * it as the shared work queue of bad triangles; the comparator may
 * dereference element payloads through the context, so comparisons
 * contribute to the transactional footprint exactly as in STAMP.
 */

#ifndef HTMSIM_TMDS_TM_HEAP_HH
#define HTMSIM_TMDS_TM_HEAP_HH

#include <cstdint>

#include "htm/node_pool.hh"

namespace htmsim::tmds
{

/**
 * Array-backed max-heap of uint64 payloads ordered by
 * Compare::compare(ctx, a, b) (> 0 means a has higher priority).
 */
template <typename Compare>
class TmHeap
{
  public:
    explicit TmHeap(std::size_t initial_capacity = 16)
        : capacity_(initial_capacity < 2 ? 2 : initial_capacity)
    {
        items_ = static_cast<std::uint64_t*>(
            htm::NodePool::instance().alloc(capacity_ *
                                            sizeof(std::uint64_t)));
    }

    TmHeap(const TmHeap&) = delete;
    TmHeap& operator=(const TmHeap&) = delete;
    ~TmHeap()
    {
        htm::NodePool::instance().free(
            items_, capacity_ * sizeof(std::uint64_t));
    }

    template <typename Ctx>
    std::uint64_t
    size(Ctx& c)
    {
        return c.load(&size_);
    }

    template <typename Ctx>
    bool
    empty(Ctx& c)
    {
        return c.load(&size_) == 0;
    }

    template <typename Ctx>
    void
    insert(Ctx& c, std::uint64_t item)
    {
        std::uint64_t size = c.load(&size_);
        if (size + 1 >= c.load(&capacity_))
            grow(c);
        std::uint64_t* items = c.load(&items_);
        c.store(&items[size], item);
        siftUp(c, items, size);
        c.store(&size_, size + 1);
    }

    /** Remove and return the highest-priority item (0 when empty). */
    template <typename Ctx>
    bool
    popMax(Ctx& c, std::uint64_t* out)
    {
        const std::uint64_t size = c.load(&size_);
        if (size == 0)
            return false;
        std::uint64_t* items = c.load(&items_);
        if (out != nullptr)
            *out = c.load(&items[0]);
        const std::uint64_t last = c.load(&items[size - 1]);
        c.store(&items[0], last);
        c.store(&size_, size - 1);
        siftDown(c, items, 0, size - 1);
        return true;
    }

    /** Visit every item in array (heap) order: f(item). */
    template <typename Ctx, typename F>
    void
    forEach(Ctx& c, F&& f)
    {
        const std::uint64_t size = c.load(&size_);
        std::uint64_t* items = c.load(&items_);
        for (std::uint64_t i = 0; i < size; ++i)
            f(c.load(&items[i]));
    }

  private:
    template <typename Ctx>
    void
    grow(Ctx& c)
    {
        const std::uint64_t capacity = c.load(&capacity_);
        const std::uint64_t new_capacity = capacity * 2;
        auto* fresh = static_cast<std::uint64_t*>(
            c.allocBytes(new_capacity * sizeof(std::uint64_t)));
        std::uint64_t* items = c.load(&items_);
        const std::uint64_t size = c.load(&size_);
        for (std::uint64_t i = 0; i < size; ++i)
            c.store(&fresh[i], c.load(&items[i]));
        c.deallocBytes(items, capacity * sizeof(std::uint64_t));
        c.store(&items_, fresh);
        c.store(&capacity_, new_capacity);
    }

    template <typename Ctx>
    void
    siftUp(Ctx& c, std::uint64_t* items, std::uint64_t index)
    {
        while (index > 0) {
            const std::uint64_t parent = (index - 1) / 2;
            const std::uint64_t child_item = c.load(&items[index]);
            const std::uint64_t parent_item = c.load(&items[parent]);
            if (Compare::compare(c, child_item, parent_item) <= 0)
                break;
            c.store(&items[parent], child_item);
            c.store(&items[index], parent_item);
            index = parent;
        }
    }

    template <typename Ctx>
    void
    siftDown(Ctx& c, std::uint64_t* items, std::uint64_t index,
             std::uint64_t size)
    {
        for (;;) {
            const std::uint64_t left = 2 * index + 1;
            if (left >= size)
                break;
            const std::uint64_t right = left + 1;
            std::uint64_t best = left;
            if (right < size &&
                Compare::compare(c, c.load(&items[right]),
                                 c.load(&items[left])) > 0) {
                best = right;
            }
            const std::uint64_t parent_item = c.load(&items[index]);
            const std::uint64_t best_item = c.load(&items[best]);
            if (Compare::compare(c, best_item, parent_item) <= 0)
                break;
            c.store(&items[index], best_item);
            c.store(&items[best], parent_item);
            index = best;
        }
    }

    std::uint64_t* items_ = nullptr;
    std::uint64_t capacity_;
    std::uint64_t size_ = 0;
};

} // namespace htmsim::tmds

#endif // HTMSIM_TMDS_TM_HEAP_HH

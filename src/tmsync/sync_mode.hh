/**
 * @file
 * Acquisition-mode knob shared by the tmsync primitives and their
 * benchmarks: lock elision, plain TATAS acquisition, or the runtime's
 * global fallback lock (the degenerate single-lock baseline the paper
 * compares against in Figure 7).
 */

#ifndef HTMSIM_TMSYNC_SYNC_MODE_HH
#define HTMSIM_TMSYNC_SYNC_MODE_HH

#include <cstdint>
#include <string>

namespace htmsim::tmsync
{

/** How a guarded section acquires its lock. */
enum class SyncMode : std::uint8_t
{
    /** One speculative attempt subscribing the lock word, then the
     *  real acquisition (HLE generalized to per-object locks). On
     *  machines without elision support this degrades to tatas. */
    elided,
    /** Test-and-test-and-set acquisition, never speculative. */
    tatas,
    /** The runtime's global fallback lock: every section in the
     *  process serializes, regardless of which object it guards. */
    globalLock,
};

inline const char*
syncModeName(SyncMode mode)
{
    switch (mode) {
      case SyncMode::elided: return "elided";
      case SyncMode::tatas: return "tatas";
      case SyncMode::globalLock: return "global-lock";
    }
    return "?";
}

/** Parse a mode name ("elided", "tatas", "global-lock" / "global");
 *  @return whether @p name was recognized. */
inline bool
parseSyncMode(const std::string& name, SyncMode& out)
{
    if (name == "elided") {
        out = SyncMode::elided;
    } else if (name == "tatas") {
        out = SyncMode::tatas;
    } else if (name == "global-lock" || name == "global") {
        out = SyncMode::globalLock;
    } else {
        return false;
    }
    return true;
}

} // namespace htmsim::tmsync

#endif // HTMSIM_TMSYNC_SYNC_MODE_HH

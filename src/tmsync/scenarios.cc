#include "scenarios.hh"

#include <algorithm>
#include <array>
#include <cassert>
#include <memory>
#include <vector>

#include "htm/site.hh"
#include "htm/tx.hh"
#include "sim/random.hh"
#include "sim/scheduler.hh"
#include "tmsync/atomic_condition_variable.hh"
#include "tmsync/atomic_mutex.hh"
#include "tmsync/atomic_shared_mutex.hh"
#include "tmsync/guard.hh"

namespace htmsim::tmsync
{

namespace
{

std::uint64_t
fold(std::uint64_t h, std::uint64_t v)
{
    std::uint64_t state =
        h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    state ^= state >> 30;
    state *= 0xbf58476d1ce4e5b9ULL;
    state ^= state >> 27;
    return state ^ (state >> 31);
}

/** Per-fiber tallies, aggregated after the run. */
struct FiberCounters
{
    std::uint64_t sections = 0;
    std::uint64_t elided = 0;
    std::uint64_t finish = 0;
};

/** Common driver: spawn config.threads fibers running @p op(tid, ctx,
 *  counters), with SMT-honest time scales. */
template <typename PerOp>
void
drive(const ScenarioConfig& config, unsigned threads,
      std::vector<FiberCounters>& counters, PerOp&& per_op)
{
    sim::Scheduler scheduler(config.seed);
    scheduler.setBatching(config.runtime.batchEpoch);
    for (unsigned tid = 0; tid < threads; ++tid) {
        scheduler.spawn([&, tid](sim::ThreadContext& ctx) {
            ctx.setTimeScale(config.runtime.machine.threadTimeScale(
                ctx.id(), threads));
            for (unsigned op = 0; op < config.opsPerThread; ++op)
                per_op(tid, op, ctx, counters[tid]);
            counters[tid].finish = ctx.now();
        });
    }
    scheduler.run();
}

void
tally(const transactional_lock_guard& guard, FiberCounters& counters)
{
    ++counters.sections;
    counters.elided += guard.elided() ? 1 : 0;
}

void
tally(const transactional_shared_lock_guard& guard,
      FiberCounters& counters)
{
    ++counters.sections;
    counters.elided += guard.elided() ? 1 : 0;
}

// --- reader_heavy / shared_scan -------------------------------------
// One atomic_shared_mutex over an array of cells; readers fold a
// window of cells, writers bump one cell plus a generation counter.

struct SharedArrayState
{
    atomic_shared_mutex rw;
    std::array<std::uint64_t, 256> cells{};
    std::uint64_t generation = 0;
};

ScenarioResult
runSharedArray(const ScenarioConfig& config, htm::Runtime& runtime,
               unsigned read_span, unsigned read_permille,
               htm::TxSiteId read_site, htm::TxSiteId write_site)
{
    auto state = std::make_unique<SharedArrayState>();
    std::vector<FiberCounters> counters(config.threads);
    std::vector<sim::Rng> rngs;
    rngs.reserve(config.threads);
    for (unsigned tid = 0; tid < config.threads; ++tid)
        rngs.emplace_back(config.seed, tid + 1);

    drive(config, config.threads, counters,
          [&](unsigned tid, unsigned, sim::ThreadContext& ctx,
              FiberCounters& mine) {
              sim::Rng& rng = rngs[tid];
              const bool read = rng.nextRange(1000) <
                                std::uint64_t(read_permille);
              const unsigned slot =
                  unsigned(rng.nextRange(state->cells.size()));
              const std::uint64_t value = rng.nextU64();
              if (read) {
                  transactional_shared_lock_guard guard(
                      runtime, ctx, state->rw, read_site, config.mode,
                      [&](htm::Tx& tx) {
                          // Readers deliberately skip the generation
                          // word: subscribing it would make every
                          // writer commit doom every in-flight elided
                          // reader. Footprint overlap with writers
                          // comes from the cell window alone.
                          std::uint64_t sum = 0;
                          for (unsigned i = 0; i < read_span; ++i) {
                              const unsigned at =
                                  (slot + i) % state->cells.size();
                              sum = fold(sum,
                                         tx.load(&state->cells[at]));
                          }
                          (void) sum;
                      });
                  tally(guard, mine);
              } else {
                  transactional_lock_guard guard(
                      runtime, ctx, state->rw, write_site, config.mode,
                      [&](htm::Tx& tx) {
                          tx.store(&state->cells[slot],
                                   tx.load(&state->cells[slot]) +
                                       value);
                          tx.store(&state->generation,
                                   tx.load(&state->generation) + 1);
                      });
                  tally(guard, mine);
              }
          });

    ScenarioResult result;
    for (const FiberCounters& mine : counters) {
        result.sections += mine.sections;
        result.elidedSections += mine.elided;
        result.horizonCycles =
            std::max(result.horizonCycles, mine.finish);
    }
    result.checksum = state->generation;
    for (const std::uint64_t cell : state->cells)
        result.checksum = fold(result.checksum, cell);
    return result;
}

// --- lock_convoy / mixed_waiters ------------------------------------

struct MutexState
{
    atomic_mutex mutex;
    std::uint64_t counter = 0;
    std::array<std::uint64_t, 8> slots{};
};

ScenarioResult
runMutexHammer(const ScenarioConfig& config, htm::Runtime& runtime,
               bool mixed, htm::TxSiteId site)
{
    auto state = std::make_unique<MutexState>();
    std::vector<FiberCounters> counters(config.threads);
    std::vector<sim::Rng> rngs;
    rngs.reserve(config.threads);
    for (unsigned tid = 0; tid < config.threads; ++tid)
        rngs.emplace_back(config.seed, tid + 1);

    drive(config, config.threads, counters,
          [&](unsigned tid, unsigned, sim::ThreadContext& ctx,
              FiberCounters& mine) {
              sim::Rng& rng = rngs[tid];
              // Jittered think time between sections. Without it the
              // hammer is degenerate in exact virtual time: the
              // releasing thread's next CAS completes casCost after
              // its release store, and no waiter's probe can precede
              // the release, so the holder re-wins every window and
              // monopolizes the lock until it exhausts its ops — the
              // liveness oracle flags the waiters as starving. A gap
              // wider than the (jittered) probe period guarantees
              // some waiter lands a probe inside it.
              ctx.step(60 + rng.nextRange(80));
              // mixed_waiters: odd threads refuse to speculate, so
              // their acquisitions doom every elided subscriber. Only
              // meaningful in the elided arm; the tatas/global arms
              // keep every thread on the same path.
              SyncMode mode = config.mode;
              if (mixed && mode == SyncMode::elided && (tid & 1) != 0)
                  mode = SyncMode::tatas;
              const unsigned slot =
                  unsigned(rng.nextRange(state->slots.size()));
              const std::uint64_t value = rng.nextU64();
              transactional_lock_guard guard(
                  runtime, ctx, state->mutex, site, mode,
                  [&](htm::Tx& tx) {
                      tx.store(&state->counter,
                               tx.load(&state->counter) + 1);
                      tx.store(&state->slots[slot],
                               tx.load(&state->slots[slot]) + value);
                  });
              tally(guard, mine);
          });

    ScenarioResult result;
    for (const FiberCounters& mine : counters) {
        result.sections += mine.sections;
        result.elidedSections += mine.elided;
        result.horizonCycles =
            std::max(result.horizonCycles, mine.finish);
    }
    result.checksum = state->counter;
    for (const std::uint64_t slot : state->slots)
        result.checksum = fold(result.checksum, slot);
    return result;
}

// --- ping_pong ------------------------------------------------------
// Thread pairs alternate a turn counter under one mutex + condvar.
// Both the wait and the notify force the guard's fallback path, so
// elision never helps here — by design (see scenarios.hh).

struct PairState
{
    atomic_mutex mutex;
    atomic_condition_variable turnFlipped;
    std::uint64_t turn = 0;
};

ScenarioResult
runPingPong(const ScenarioConfig& config, htm::Runtime& runtime,
            unsigned threads, htm::TxSiteId site)
{
    const unsigned pairs = threads / 2;
    std::vector<std::unique_ptr<PairState>> states;
    states.reserve(pairs);
    for (unsigned pair = 0; pair < pairs; ++pair)
        states.push_back(std::make_unique<PairState>());
    std::vector<FiberCounters> counters(threads);

    drive(config, threads, counters,
          [&](unsigned tid, unsigned, sim::ThreadContext& ctx,
              FiberCounters& mine) {
              PairState& state = *states[tid / 2];
              const std::uint64_t role = tid & 1;
              transactional_lock_guard guard(
                  runtime, ctx, state.mutex, site, config.mode,
                  [&](htm::Tx& tx) {
                      while (tx.load(&state.turn) % 2 != role) {
                          state.turnFlipped.wait(runtime, ctx, tx,
                                                 state.mutex);
                      }
                      tx.store(&state.turn,
                               tx.load(&state.turn) + 1);
                      state.turnFlipped.notify_one(runtime, ctx, tx);
                  });
              tally(guard, mine);
          });

    ScenarioResult result;
    for (const FiberCounters& mine : counters) {
        result.sections += mine.sections;
        result.elidedSections += mine.elided;
        result.horizonCycles =
            std::max(result.horizonCycles, mine.finish);
    }
    for (const auto& state : states)
        result.checksum = fold(result.checksum, state->turn);
    return result;
}

} // namespace

const Scenario*
allScenarios()
{
    static const Scenario scenarios[numScenarios] = {
        Scenario::readerHeavy, Scenario::lockConvoy,
        Scenario::mixedWaiters, Scenario::sharedScan,
        Scenario::pingPong,
    };
    return scenarios;
}

const char*
scenarioName(Scenario scenario)
{
    switch (scenario) {
      case Scenario::readerHeavy: return "reader_heavy";
      case Scenario::lockConvoy: return "lock_convoy";
      case Scenario::mixedWaiters: return "mixed_waiters";
      case Scenario::sharedScan: return "shared_scan";
      case Scenario::pingPong: return "ping_pong";
    }
    return "?";
}

bool
parseScenario(const std::string& name, Scenario& out)
{
    for (unsigned i = 0; i < numScenarios; ++i) {
        if (name == scenarioName(allScenarios()[i])) {
            out = allScenarios()[i];
            return true;
        }
    }
    return false;
}

bool
scenarioSupportsMode(Scenario scenario, SyncMode mode)
{
    return !(scenario == Scenario::pingPong &&
             mode == SyncMode::globalLock);
}

ScenarioResult
runScenario(const ScenarioConfig& config)
{
    assert(config.threads >= 2 &&
           config.threads <= htm::kMaxTxThreads);
    assert(scenarioSupportsMode(config.scenario, config.mode));

    const unsigned threads = config.scenario == Scenario::pingPong ?
                                 config.threads & ~1u :
                                 config.threads;
    htm::Runtime runtime(config.runtime, threads);
    if (config.observer != nullptr)
        runtime.setObserver(config.observer);

    ScenarioResult result;
    switch (config.scenario) {
      case Scenario::readerHeavy:
        result = runSharedArray(
            config, runtime, /*read_span=*/16, /*read_permille=*/900,
            htm::txSite("tmsync.readerHeavy.read"),
            htm::txSite("tmsync.readerHeavy.write"));
        break;
      case Scenario::sharedScan:
        result = runSharedArray(
            config, runtime, /*read_span=*/192, /*read_permille=*/950,
            htm::txSite("tmsync.sharedScan.read"),
            htm::txSite("tmsync.sharedScan.write"));
        break;
      case Scenario::lockConvoy:
        result = runMutexHammer(config, runtime, /*mixed=*/false,
                                htm::txSite("tmsync.lockConvoy"));
        break;
      case Scenario::mixedWaiters:
        result = runMutexHammer(config, runtime, /*mixed=*/true,
                                htm::txSite("tmsync.mixedWaiters"));
        break;
      case Scenario::pingPong:
        result = runPingPong(config, runtime, threads,
                             htm::txSite("tmsync.pingPong"));
        break;
    }
    result.stats = runtime.stats();
    return result;
}

} // namespace htmsim::tmsync

/**
 * @file
 * Transactional lock guards: run a critical-section body under an
 * atomic_mutex / atomic_shared_mutex with optional lock elision,
 * carrying a TxSiteId so txprof attributes the section's cycles.
 *
 * Shape note — these are *executor* guards, not unlock-only RAII: the
 * constructor runs the whole protocol (speculative attempt, fallback
 * acquisition, body, release) around a body callback. True RAII
 * (construct = lock, destruct = unlock, body between) is impossible
 * here because an elided attempt aborts by throwing TxAbortException
 * through the body back into Runtime's attempt machinery, and the
 * retry/fallback then needs to re-run the body from the top — the
 * body must therefore be a re-invocable callable, exactly like
 * Runtime::atomic() bodies. The object form still buys scoped naming,
 * the site id, and a place to ask which path committed (elided()).
 *
 * Elision contract (per guard, SyncMode::elided):
 *   1. up to maxElisionAttempts transactional attempts; each first
 *      spin-waits for the lock word to clear, then subscribes it and
 *      aborts if it is busy (shared guards: if the writer bit is
 *      set). The bounded retry is load-bearing, not a tweak: with a
 *      single attempt, one fallback acquisition's CAS dooms every
 *      subscriber through strong isolation, each victim falls back
 *      and CASes in turn, and the lock word never goes quiet again —
 *      the elided arm degenerates into TATAS-with-wasted-attempts.
 *      Re-attempting after the word clears lets the population
 *      re-enter the all-elided regime where nobody writes the word;
 *   2. when the attempts are exhausted — e.g. under conflicts from a
 *      peer's real acquisition — the guard acquires the lock for real
 *      and re-runs the body non-speculatively via the site-aware
 *      runNonSpeculative(), whose nonSpecCommit event marks the
 *      serialization point;
 *   3. machines where Machine::supportsElision() is false (Blue
 *      Gene/Q) skip step 1 entirely.
 * Both directions of mutual exclusion hold: elided sections see a held
 * word and abort; real acquirers' CAS/stores doom elided subscribers.
 *
 * Nested guarded sections are rejected (std::logic_error at guard
 * entry, before any transactional state is touched): an inner elision
 * attempt inside an outer speculative or irrevocable section would
 * trip the runtime's single-attempt-per-thread machinery. Take both
 * locks under one guard instead. Pinned in test_tmsync.cc.
 */

#ifndef HTMSIM_TMSYNC_GUARD_HH
#define HTMSIM_TMSYNC_GUARD_HH

#include <stdexcept>

#include "htm/runtime.hh"
#include "htm/tx.hh"
#include "tmsync/atomic_mutex.hh"
#include "tmsync/backoff.hh"
#include "tmsync/atomic_shared_mutex.hh"
#include "tmsync/sync_mode.hh"

namespace htmsim::tmsync
{

/** Speculative attempts per guarded section before the real lock
 *  (elision contract step 1 in the file comment). */
inline constexpr unsigned maxElisionAttempts = 4;

namespace detail
{

inline void
rejectNested(htm::Runtime& runtime, sim::ThreadContext& ctx)
{
    if (runtime.txOf(ctx.id()).status() != htm::TxStatus::inactive) {
        throw std::logic_error(
            "tmsync: nested guarded sections are not supported; take "
            "both locks under one guard");
    }
}

/** The common protocol: one elision attempt subscribing @p word and
 *  aborting when (word & busy_mask) != 0, then the real fallback. */
template <typename F, typename Lock, typename Unlock>
bool
runGuarded(htm::Runtime& runtime, sim::ThreadContext& ctx,
           std::uint64_t* word, std::uint64_t busy_mask,
           htm::TxSiteId site, SyncMode mode, F&& body, Lock&& lock,
           Unlock&& unlock)
{
    rejectNested(runtime, ctx);
    if (mode == SyncMode::globalLock) {
        runtime.runLocked(ctx, site, body);
        return false;
    }
    if (mode == SyncMode::elided &&
        runtime.machine().supportsElision()) {
        for (unsigned attempt = 0; attempt < maxElisionAttempts;
             ++attempt) {
            spinBackoff(ctx, [&] {
                return (*word & busy_mask) == 0;
            });
            const htm::AbortCause cause =
                runtime.tryOnce(ctx, site, [&](htm::Tx& tx) {
                    if ((tx.load(word) & busy_mask) != 0)
                        tx.abortTx();
                    body(tx);
                });
            if (cause == htm::AbortCause::none)
                return true;
        }
    }
    lock();
    runtime.runNonSpeculative(ctx, site, body);
    unlock();
    return false;
}

} // namespace detail

/** Exclusive guard over an atomic_mutex or (exclusive side of) an
 *  atomic_shared_mutex. */
class transactional_lock_guard
{
  public:
    template <typename F>
    transactional_lock_guard(htm::Runtime& runtime,
                             sim::ThreadContext& ctx,
                             atomic_mutex& mutex, htm::TxSiteId site,
                             SyncMode mode, F&& body)
        : elided_(detail::runGuarded(
              runtime, ctx, mutex.word(), ~std::uint64_t(0), site,
              mode, std::forward<F>(body),
              [&] { mutex.lock(runtime, ctx); },
              [&] { mutex.unlock(runtime, ctx); }))
    {
    }

    template <typename F>
    transactional_lock_guard(htm::Runtime& runtime,
                             sim::ThreadContext& ctx,
                             atomic_shared_mutex& mutex,
                             htm::TxSiteId site, SyncMode mode,
                             F&& body)
        : elided_(detail::runGuarded(
              runtime, ctx, mutex.word(), ~std::uint64_t(0), site,
              mode, std::forward<F>(body),
              [&] { mutex.lock(runtime, ctx); },
              [&] { mutex.unlock(runtime, ctx); }))
    {
    }

    /** Whether the section committed on the speculative path. */
    bool elided() const { return elided_; }

  private:
    bool elided_;
};

/** Shared guard over an atomic_shared_mutex. The elided attempt
 *  tolerates concurrent real readers (it aborts only on the writer
 *  bit), so it coexists with them until a count change dooms it. */
class transactional_shared_lock_guard
{
  public:
    template <typename F>
    transactional_shared_lock_guard(htm::Runtime& runtime,
                                    sim::ThreadContext& ctx,
                                    atomic_shared_mutex& mutex,
                                    htm::TxSiteId site, SyncMode mode,
                                    F&& body)
        : elided_(detail::runGuarded(
              runtime, ctx, mutex.word(),
              atomic_shared_mutex::writerBit, site, mode,
              std::forward<F>(body),
              [&] { mutex.lock_shared(runtime, ctx); },
              [&] { mutex.unlock_shared(runtime, ctx); }))
    {
    }

    bool elided() const { return elided_; }

  private:
    bool elided_;
};

} // namespace htmsim::tmsync

#endif // HTMSIM_TMSYNC_GUARD_HH

/**
 * @file
 * A word-sized shared mutex (reader count + writer bit), elidable on
 * both the shared and the exclusive side.
 *
 * The interesting asymmetry, and the reason elision wins on
 * reader-heavy workloads: a *real* shared acquisition must CAS the
 * reader count up and back down, so concurrent readers serialize on
 * the lock word's cache line (two casCost bumps per section and a
 * doomed subscriber per bump). An *elided* reader never writes the
 * word at all — it merely subscribes and checks the writer bit — so
 * any number of elided readers run fully in parallel and invisible to
 * each other. An elided reader coexists with real readers right up
 * until one of them changes the count, which dooms the subscriber
 * (one wasted attempt, then the real path); that is the same behavior
 * dr-m/atomic_sync accepts for its transactional shared locks.
 */

#ifndef HTMSIM_TMSYNC_ATOMIC_SHARED_MUTEX_HH
#define HTMSIM_TMSYNC_ATOMIC_SHARED_MUTEX_HH

#include <cstdint>

#include "htm/runtime.hh"
#include "tmsync/backoff.hh"

namespace htmsim::tmsync
{

class atomic_shared_mutex
{
  public:
    /** Exclusive-holder flag; low bits hold the reader count. */
    static constexpr std::uint64_t writerBit = std::uint64_t(1) << 63;

    /** Exclusive acquisition: CAS 0 -> writerBit, spinning out both
     *  readers and a prior writer. Jittered polling: backoff.hh. */
    void
    lock(htm::Runtime& runtime, sim::ThreadContext& ctx)
    {
        while (!runtime.nonTxCas(ctx, &word_, std::uint64_t(0),
                                 writerBit)) {
            detail::spinBackoff(ctx, [this] { return word_ == 0; });
        }
    }

    void
    unlock(htm::Runtime& runtime, sim::ThreadContext& ctx)
    {
        runtime.nonTxStore(ctx, &word_, std::uint64_t(0));
    }

    /** Shared acquisition: bump the reader count while no writer
     *  holds or is taking the lock. */
    void
    lock_shared(htm::Runtime& runtime, sim::ThreadContext& ctx)
    {
        for (;;) {
            detail::spinBackoff(ctx, [this] {
                return (word_ & writerBit) == 0;
            });
            const std::uint64_t seen = runtime.nonTxLoad(ctx, &word_);
            if ((seen & writerBit) != 0)
                continue;
            if (runtime.nonTxCas(ctx, &word_, seen, seen + 1))
                return;
        }
    }

    void
    unlock_shared(htm::Runtime& runtime, sim::ThreadContext& ctx)
    {
        runtime.nonTxFetchAdd(ctx, &word_,
                              ~std::uint64_t(0)); // -1, wrapping
    }

    bool is_locked() const { return (word_ & writerBit) != 0; }
    bool is_locked_or_waiting() const { return word_ != 0; }
    std::uint64_t readers() const { return word_ & ~writerBit; }

    /** The word elided sections subscribe to (guard.hh). */
    std::uint64_t* word() { return &word_; }

  private:
    alignas(256) std::uint64_t word_ = 0;
};

} // namespace htmsim::tmsync

#endif // HTMSIM_TMSYNC_ATOMIC_SHARED_MUTEX_HH

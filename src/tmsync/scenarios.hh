/**
 * @file
 * Adversarial contention scenarios over the tmsync primitives.
 *
 * Each scenario is a deterministic multi-fiber run (one Scheduler +
 * Runtime on a chosen machine model) that stresses one contention
 * shape the paper's §6.2 CLQ study only hints at:
 *
 *   reader_heavy  90 % shared / 10 % exclusive over one
 *                 atomic_shared_mutex — the cell where elided readers
 *                 (no lock-word writes) should beat TATAS readers
 *                 (two CASes per section) outright;
 *   lock_convoy   every thread hammering one atomic_mutex with short
 *                 sections — the classic convoy, where elision's
 *                 single optimistic attempt either dissolves the
 *                 convoy or degenerates into abort-then-queue;
 *   mixed_waiters elided and deliberately non-elided threads sharing
 *                 one mutex: each real acquisition dooms every elided
 *                 subscriber, measuring elision's worst neighbor;
 *   shared_scan   long shared-mode scans vs. rare writers — bigger
 *                 read footprints and longer windows for a writer to
 *                 doom an elided scan;
 *   ping_pong     condition-variable turn-taking between thread
 *                 pairs; condvar sections are inherently non-elidable
 *                 (wait/notify force the fallback), pinning the cost
 *                 of elision-hostile sections. Unsupported under
 *                 SyncMode::globalLock: wait() releases the
 *                 per-object mutex, which a global-lock guard never
 *                 acquires.
 *
 * Every scenario runs under any TxObserver (txprof, the liveness
 * checker) and sweeps SyncMode elided / tatas / globalLock, on all
 * four machines — Blue Gene/Q's elided arm degrades to TATAS via
 * Machine::supportsElision().
 */

#ifndef HTMSIM_TMSYNC_SCENARIOS_HH
#define HTMSIM_TMSYNC_SCENARIOS_HH

#include <cstdint>
#include <string>

#include "htm/runtime.hh"
#include "tmsync/sync_mode.hh"

namespace htmsim::tmsync
{

enum class Scenario : std::uint8_t
{
    readerHeavy,
    lockConvoy,
    mixedWaiters,
    sharedScan,
    pingPong,
};

constexpr unsigned numScenarios = 5;

/** Sweep-order list of all scenarios. */
const Scenario* allScenarios();

const char* scenarioName(Scenario scenario);

/** Parse "reader_heavy", "lock_convoy", ...; @return recognized. */
bool parseScenario(const std::string& name, Scenario& out);

/** Whether @p scenario can run under @p mode (ping_pong cannot wait
 *  on a condvar from a global-lock guard). */
bool scenarioSupportsMode(Scenario scenario, SyncMode mode);

struct ScenarioConfig
{
    /** Machine model, backend, batching, hazards. */
    htm::RuntimeConfig runtime;
    Scenario scenario = Scenario::readerHeavy;
    SyncMode mode = SyncMode::elided;
    /** Fibers; ping_pong rounds down to an even count. */
    unsigned threads = 8;
    unsigned opsPerThread = 200;
    std::uint64_t seed = 1;
    /** Optional observer (txprof / liveness); may be nullptr. */
    htm::TxObserver* observer = nullptr;
};

struct ScenarioResult
{
    /** Guarded sections completed (one per op). */
    std::uint64_t sections = 0;
    /** Sections that committed on the speculative (elided) path. */
    std::uint64_t elidedSections = 0;
    /** Virtual time of the last fiber to finish. */
    std::uint64_t horizonCycles = 0;
    /** Aggregated runtime statistics. */
    htm::TxStats stats;
    /** Digest of the final shared state (sanity / A-B tests). */
    std::uint64_t checksum = 0;

    double
    throughputPerKcycle() const
    {
        return horizonCycles == 0 ? 0.0 :
               double(sections) * 1000.0 / double(horizonCycles);
    }
};

/** Run one scenario cell to completion. */
ScenarioResult runScenario(const ScenarioConfig& config);

} // namespace htmsim::tmsync

#endif // HTMSIM_TMSYNC_SCENARIOS_HH

/**
 * @file
 * A deterministic condition variable for tmsync critical sections.
 *
 * Wakeup determinism contract:
 *  - Waiters are granted strictly in ticket (FIFO) order; tickets are
 *    issued under the associated mutex, so the grant order is the
 *    virtual-time order in which waiters entered wait().
 *  - Notifications are never lost: notify_one() with no waiter parked
 *    pre-grants the next ticket, so a wait() that races a notify in
 *    virtual time returns immediately instead of deadlocking
 *    (semaphore-style memory; real condvars drop such signals, which
 *    is exactly the nondeterminism this simulator must not have).
 *  - There are no spurious wakeups, but callers should still re-check
 *    their predicate in a loop: another thread can win the mutex
 *    between the grant and the waiter's re-acquisition.
 *
 * Waiting inside a speculative section is impossible (the waiter must
 * publish its ticket and release the real mutex), so wait() aborts a
 * non-irrevocable transaction, forcing the guard onto its fallback
 * path; the re-run body then reaches wait() irrevocably, holding the
 * real mutex. notify_* only write plain words and are allowed from
 * any path, but must be called under the same mutex so the
 * ticket/grant words stay ordered — from an *elided* section the
 * notify would make the section non-elidable anyway (the write dooms
 * subscribers), so notify_* also force the fallback.
 */

#ifndef HTMSIM_TMSYNC_ATOMIC_CONDITION_VARIABLE_HH
#define HTMSIM_TMSYNC_ATOMIC_CONDITION_VARIABLE_HH

#include <cstdint>
#include <stdexcept>

#include "htm/runtime.hh"
#include "htm/tx.hh"
#include "tmsync/atomic_mutex.hh"

namespace htmsim::tmsync
{

class atomic_condition_variable
{
  public:
    /**
     * Block until notified, releasing @p mutex while parked. Must be
     * called with @p mutex held by a guard body; re-acquires it
     * before returning. @return this waiter's ticket (tests).
     */
    std::uint64_t
    wait(htm::Runtime& runtime, sim::ThreadContext& ctx, htm::Tx& tx,
         atomic_mutex& mutex)
    {
        if (!tx.isIrrevocable())
            tx.abortTx(); // force the guard's fallback path
        if (!mutex.is_locked()) {
            throw std::logic_error(
                "tmsync: wait() without holding the mutex (global-lock "
                "guards never acquire the per-object mutex and cannot "
                "wait)");
        }
        const std::uint64_t my =
            runtime.nonTxFetchAdd(ctx, &nextTicket_, std::uint64_t(1));
        mutex.unlock(runtime, ctx);
        ctx.spinUntil([this, my] { return granted_ > my; },
                      htm::Runtime::lockPollCost);
        mutex.lock(runtime, ctx);
        return my;
    }

    /** Grant the oldest outstanding ticket (or pre-grant the next).
     *  Call under the associated mutex. */
    void
    notify_one(htm::Runtime& runtime, sim::ThreadContext& ctx,
               htm::Tx& tx)
    {
        if (!tx.isIrrevocable())
            tx.abortTx();
        runtime.nonTxFetchAdd(ctx, &granted_, std::uint64_t(1));
    }

    /** Grant every ticket issued so far. Call under the mutex. */
    void
    notify_all(htm::Runtime& runtime, sim::ThreadContext& ctx,
               htm::Tx& tx)
    {
        if (!tx.isIrrevocable())
            tx.abortTx();
        const std::uint64_t issued =
            runtime.nonTxLoad(ctx, &nextTicket_);
        if (issued > granted_)
            runtime.nonTxStore(ctx, &granted_, issued);
    }

    /** Waiters issued minus waiters granted (tests / scenarios). */
    std::uint64_t
    pending() const
    {
        return nextTicket_ > granted_ ? nextTicket_ - granted_ : 0;
    }

  private:
    alignas(256) std::uint64_t nextTicket_ = 0;
    alignas(256) std::uint64_t granted_ = 0;
};

} // namespace htmsim::tmsync

#endif // HTMSIM_TMSYNC_ATOMIC_CONDITION_VARIABLE_HH

/**
 * @file
 * A word-sized TATAS spin mutex in virtual time, designed to be
 * *elidable*: the lock state is a single aligned word that an elided
 * section can subscribe to transactionally (see guard.hh), exactly the
 * shape dr-m/atomic_sync gives InnoDB's mutexes. The real acquisition
 * path uses the runtime's strongly isolated CAS, so taking the lock
 * dooms every transaction currently subscribed to the word — that
 * doom, plus the elided path's own word check, is what makes elided
 * and non-elided critical sections mutually exclusive in both
 * directions.
 */

#ifndef HTMSIM_TMSYNC_ATOMIC_MUTEX_HH
#define HTMSIM_TMSYNC_ATOMIC_MUTEX_HH

#include <cstdint>

#include "htm/runtime.hh"
#include "tmsync/backoff.hh"

namespace htmsim::tmsync
{

class atomic_mutex
{
  public:
    /** Spin (TATAS) until the lock is really acquired. Jittered
     *  polling, not a fixed period: see backoff.hh. */
    void
    lock(htm::Runtime& runtime, sim::ThreadContext& ctx)
    {
        while (!runtime.nonTxCas(ctx, &word_, std::uint64_t(0),
                                 std::uint64_t(1))) {
            detail::spinBackoff(ctx,
                                [this] { return word_ == 0; });
        }
    }

    /** One CAS; @return whether the lock was acquired. */
    bool
    try_lock(htm::Runtime& runtime, sim::ThreadContext& ctx)
    {
        return runtime.nonTxCas(ctx, &word_, std::uint64_t(0),
                                std::uint64_t(1));
    }

    void
    unlock(htm::Runtime& runtime, sim::ThreadContext& ctx)
    {
        runtime.nonTxStore(ctx, &word_, std::uint64_t(0));
    }

    bool is_locked() const { return word_ != 0; }

    /** The word an elided section subscribes to (guard.hh). */
    std::uint64_t* word() { return &word_; }

  private:
    // Own conflict-granularity line on every machine (max is BG/Q's
    // 128 B): elided sections must abort on lock traffic, not on
    // whatever data the enclosing object packs next to the lock.
    alignas(256) std::uint64_t word_ = 0;
};

} // namespace htmsim::tmsync

#endif // HTMSIM_TMSYNC_ATOMIC_MUTEX_HH

/**
 * @file
 * Deterministic jittered spinning for tmsync lock loops.
 *
 * Every contender polling a lock word at the same fixed period is a
 * starvation hazard in a deterministic simulator: the scheduler
 * arbitrates ties identically every round, so the probe instants
 * phase-lock against the holders' hold/release pattern and the same
 * loser can miss every free window forever (the liveness oracle's
 * starvation check catches exactly this under the mixed_waiters
 * scenario at full bench size). Real hardware breaks such lock-step
 * with cache-arrival jitter; here we break it explicitly — and still
 * deterministically — by drawing every probe period from the
 * thread's own seeded random stream. Jitter must be per *probe*, not
 * per spin-loop entry: a loop that picks one period and then calls
 * spinUntil() re-phase-locks inside that single call.
 */

#ifndef HTMSIM_TMSYNC_BACKOFF_HH
#define HTMSIM_TMSYNC_BACKOFF_HH

#include <cstdint>

#include "htm/runtime.hh"
#include "sim/scheduler.hh"

namespace htmsim::tmsync::detail
{

/** Spin in virtual time until @p pred holds, charging a jittered
 *  poll period (uniform in [lockPollCost, 2*lockPollCost)) per
 *  probe so concurrent spinners' probe instants drift relative to
 *  each other until someone lands in a free window. Same livelock
 *  guard as ThreadContext::spinUntil(). */
template <typename Pred>
inline void
spinBackoff(sim::ThreadContext& ctx, Pred pred)
{
    std::uint64_t probes = 0;
    while (!pred()) {
        ctx.advance(htm::Runtime::lockPollCost +
                    ctx.rng().nextRange(htm::Runtime::lockPollCost));
        ctx.yieldNow();
        if (++probes > sim::ThreadContext::spinProbeLimit)
            throw sim::SimError(
                "spinBackoff: virtual livelock detected");
    }
}

} // namespace htmsim::tmsync::detail

#endif // HTMSIM_TMSYNC_BACKOFF_HH

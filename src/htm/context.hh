/**
 * @file
 * Alternative access contexts sharing the Tx interface.
 *
 * Library data structures and STAMP kernels are written once against a
 * duck-typed context concept (load/store/create/destroy/work). Three
 * models satisfy it:
 *
 *  - htm::Tx           transactional, timed (the real thing)
 *  - htm::SeqContext   direct memory, timed with non-transactional
 *                      costs — the paper's sequential non-HTM baseline
 *  - htm::DirectContext direct memory, zero time — setup/verification
 */

#ifndef HTMSIM_HTM_CONTEXT_HH
#define HTMSIM_HTM_CONTEXT_HH

#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

#include "machine.hh"
#include "node_pool.hh"
#include "sim/scheduler.hh"

namespace htmsim::htm
{

/**
 * Timed direct-memory context: models ordinary (non-transactional)
 * execution on a machine. Used for the sequential baseline runs whose
 * virtual time is the denominator of every speed-up ratio.
 */
class SeqContext
{
  public:
    SeqContext(sim::ThreadContext& ctx, const MachineConfig& machine)
        : ctx_(&ctx), machine_(&machine)
    {
    }

    template <typename T>
    T
    load(const T* addr)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        ctx_->advance(machine_->nonTxLoadCost);
        return *addr;
    }

    template <typename T>
    void
    store(T* addr, T value)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        ctx_->advance(machine_->nonTxStoreCost);
        *addr = value;
    }

    void work(sim::Cycles cycles) { ctx_->advance(cycles); }

    void*
    allocBytes(std::size_t bytes)
    {
        ctx_->advance(machine_->nonTxStoreCost);
        return NodePool::instance().alloc(bytes);
    }

    void
    deallocBytes(void* ptr, std::size_t bytes)
    {
        NodePool::instance().free(ptr, bytes);
    }

    template <typename T, typename... Args>
    T*
    create(Args&&... args)
    {
        return ::new (allocBytes(sizeof(T)))
            T(std::forward<Args>(args)...);
    }

    template <typename T>
    void
    destroy(T* ptr)
    {
        deallocBytes(ptr, sizeof(T));
    }

    /** Sequential code is by construction irrevocable. */
    bool isIrrevocable() const { return true; }
    unsigned tid() const { return ctx_->id(); }
    sim::ThreadContext& ctx() { return *ctx_; }
    sim::Rng& rng() { return ctx_->rng(); }

  private:
    sim::ThreadContext* ctx_;
    const MachineConfig* machine_;
};

/**
 * Untimed direct-memory context for setup and verification phases
 * (STAMP does not time them either). Usable outside any scheduler.
 */
class DirectContext
{
  public:
    template <typename T>
    T
    load(const T* addr)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        return *addr;
    }

    template <typename T>
    void
    store(T* addr, T value)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        *addr = value;
    }

    void work(sim::Cycles) {}

    void*
    allocBytes(std::size_t bytes)
    {
        return NodePool::instance().alloc(bytes);
    }

    void
    deallocBytes(void* ptr, std::size_t bytes)
    {
        NodePool::instance().free(ptr, bytes);
    }

    template <typename T, typename... Args>
    T*
    create(Args&&... args)
    {
        return ::new (allocBytes(sizeof(T)))
            T(std::forward<Args>(args)...);
    }

    template <typename T>
    void
    destroy(T* ptr)
    {
        deallocBytes(ptr, sizeof(T));
    }

    bool isIrrevocable() const { return true; }
    unsigned tid() const { return 0; }
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_CONTEXT_HH

#include "hazard.hh"

namespace htmsim::htm
{

namespace
{
/** Stream-domain constant separating hazard streams from the
 *  FuzzScheduler's (0x...f022d) and the scheduler's own streams. */
constexpr std::uint64_t hazardSeedSalt = 0x4a7a2dca5eedULL;

/** Window of accesses over which an armed spurious abort may fire;
 *  attempts shorter than the drawn point abort at commit instead. */
constexpr std::uint32_t spuriousWindow = 24;

/** Largest misestimated line budget (drawn uniformly from 1..max).
 *  Small enough that any non-trivial transaction trips it. */
constexpr std::uint32_t capacityNoiseMaxLines = 6;
} // namespace

void
HazardInjector::reset(const HazardConfig& config, unsigned num_threads)
{
    config_ = config;
    threads_.assign(num_threads, ThreadHazards{});
    // Seed eagerly (enabled or not) so the allocation and
    // initialization work is identical either way; the per-thread
    // streams make hazard draws a function of (seed, tid, attempt
    // index), never of the interleaving.
    for (unsigned tid = 0; tid < num_threads; ++tid)
        threads_[tid].rng = sim::Rng(config_.seed ^ hazardSeedSalt,
                                     tid + 211);
}

void
HazardInjector::onAttemptStart(unsigned tid, sim::Cycles now)
{
    ThreadHazards& t = threads_[tid];
    // Fixed draw count per attempt: both Bernoullis and both payload
    // draws happen even when their probability is zero, so a thread's
    // k-th attempt consumes the same stream positions regardless of
    // configuration details or interleaving.
    const bool spurious = t.rng.nextBool(config_.spuriousAbortProb);
    const std::uint32_t countdown =
        std::uint32_t(t.rng.nextRange(spuriousWindow)) + 1;
    const bool capacity = t.rng.nextBool(config_.capacityNoiseProb);
    const std::uint32_t budget =
        std::uint32_t(t.rng.nextRange(capacityNoiseMaxLines)) + 1;
    t.spuriousArmed = spurious || int(tid) == config_.pinnedVictim;
    t.spuriousCountdown = t.spuriousArmed ? countdown : 0;
    t.capacityArmed = capacity;
    t.capacityBudget = budget;
    if (config_.interruptRate > 0.0 && t.nextInterrupt == 0) {
        // First attempt of this thread: anchor the interrupt process.
        const double interval =
            (0.5 + t.rng.nextDouble()) / config_.interruptRate;
        t.nextInterrupt = now + sim::Cycles(interval);
    }
}

AbortCause
HazardInjector::interruptDue(ThreadHazards& t, sim::Cycles now)
{
    if (config_.interruptRate <= 0.0 || t.nextInterrupt == 0 ||
        now < t.nextInterrupt) {
        return AbortCause::none;
    }
    // Rearm past `now`: one interrupt per crossing even if the clock
    // jumped several intervals ahead (e.g. across a backoff stall).
    while (t.nextInterrupt <= now) {
        const double interval =
            (0.5 + t.rng.nextDouble()) / config_.interruptRate;
        t.nextInterrupt += sim::Cycles(interval) + 1;
    }
    return AbortCause::interrupt;
}

AbortCause
HazardInjector::onAccess(unsigned tid, sim::Cycles now)
{
    ThreadHazards& t = threads_[tid];
    const AbortCause irq = interruptDue(t, now);
    if (irq != AbortCause::none)
        return irq;
    if (t.spuriousArmed && --t.spuriousCountdown == 0) {
        t.spuriousArmed = false;
        return AbortCause::spurious;
    }
    return AbortCause::none;
}

AbortCause
HazardInjector::onCommitPoint(unsigned tid, sim::Cycles now)
{
    ThreadHazards& t = threads_[tid];
    const AbortCause irq = interruptDue(t, now);
    if (irq != AbortCause::none)
        return irq;
    if (t.spuriousArmed) {
        // Attempt was shorter than the drawn delivery point: deliver
        // at commit so "probability per attempt" means what it says.
        t.spuriousArmed = false;
        return AbortCause::spurious;
    }
    return AbortCause::none;
}

bool
HazardInjector::capacityExceeded(unsigned tid, std::size_t lines)
{
    ThreadHazards& t = threads_[tid];
    if (!t.capacityArmed || lines <= t.capacityBudget)
        return false;
    t.capacityArmed = false;
    return true;
}

sim::Cycles
HazardInjector::lockHolderStall(unsigned tid)
{
    ThreadHazards& t = threads_[tid];
    if (!t.rng.nextBool(config_.lockPreemptProb))
        return 0;
    return config_.lockPreemptStall;
}

} // namespace htmsim::htm

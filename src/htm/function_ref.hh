/**
 * @file
 * Minimal non-owning callable reference (avoids std::function
 * allocation on the hot transaction path).
 */

#ifndef HTMSIM_HTM_FUNCTION_REF_HH
#define HTMSIM_HTM_FUNCTION_REF_HH

#include <type_traits>
#include <utility>

namespace htmsim::htm
{

template <typename Signature>
class FunctionRef;

/**
 * Lightweight view of a callable; the referenced callable must outlive
 * the FunctionRef (always true for our retry drivers, which only hold
 * it for the duration of one atomic section).
 */
template <typename R, typename... Args>
class FunctionRef<R(Args...)>
{
  public:
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, FunctionRef>>>
    FunctionRef(F&& callable) // NOLINT: implicit by design
        : object_(const_cast<void*>(
              static_cast<const void*>(std::addressof(callable)))),
          invoke_([](void* object, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F>*>(object))(
                  std::forward<Args>(args)...);
          })
    {
    }

    R
    operator()(Args... args) const
    {
        return invoke_(object_, std::forward<Args>(args)...);
    }

  private:
    void* object_;
    R (*invoke_)(void*, Args...);
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_FUNCTION_REF_HH

/**
 * @file
 * Software-TM engine for the hybrid backend (DESIGN.md "Hybrid
 * layer"): a TL2-style commit-time-validating STM that runs
 * concurrently with hardware transactions instead of serializing
 * behind the global fallback lock.
 *
 * Layout:
 *
 *  - a fixed power-of-two table of ownership records (orecs), each a
 *    bare version number, indexed by hashing the conflict-granularity
 *    line of an address — hash collisions are false conflicts, exactly
 *    as in real orec-based STMs;
 *  - a global version clock, advanced by every committing writer
 *    (software or, in hybrid mode, hardware — the instrumented fast
 *    path the hybrid-TM literature proves unavoidable);
 *  - one ordinary memory word, the *clock cell*, stored to on every
 *    software commit. Hardware transactions subscribe to it exactly
 *    like the fallback lock word: eagerly (a transactional load at
 *    begin, so any software commit dooms them through the conflict
 *    directory) or lazily (snapshot at begin, compare at commit).
 *
 * Determinism contract (same discipline as hazard.hh): the engine is
 * embedded by value in the Runtime and its state is allocated
 * unconditionally for every backend, so selecting backend=hybrid
 * changes no allocation sequence. With RuntimeConfig::hybrid
 * .stmEnabled=false every hook is gated off and a hybrid run is
 * byte-identical to backend=htm (proven by the forked A/B test in
 * tests/test_hybrid.cc). Orec versions are bookkeeping, not timing:
 * bumping one never advances a virtual clock or draws randomness.
 */

#ifndef HTMSIM_HTM_STM_HH
#define HTMSIM_HTM_STM_HH

#include <cstdint>
#include <vector>

#include "machine.hh"

namespace htmsim::htm
{

/** Hybrid-backend knobs (RuntimeConfig::hybrid). */
struct HybridRuntimeConfig
{
    /** How hardware transactions subscribe to software commits. */
    enum class Subscription : std::uint8_t
    {
        /** Transactional load of the clock cell at begin: a software
         *  commit dooms every in-flight hardware transaction (the
         *  Hybrid-NOrec-style instrumentation; cheap to check, dear
         *  under software commits). */
        eager,
        /** Snapshot at begin, compare at the commit point: hardware
         *  transactions overlapping a software commit abort only at
         *  their end. Per-address dooming during software write-back
         *  carries correctness either way; the mode moves cost. */
        lazy,
    };

    Subscription subscription = Subscription::eager;

    /** Master switch for the software slow path. false = the hybrid
     *  backend degenerates to exactly backend=htm, byte for byte (the
     *  A/B bit-identity baseline). */
    bool stmEnabled = true;

    /** Skip hardware attempts entirely: every section goes straight
     *  to the software path. Isolates the STM instrumentation cost
     *  (EXPERIMENTS.md "Hybrid TM bounds") and makes orec unit tests
     *  deterministic. */
    bool stmOnly = false;

    /** Software attempts before the ultimate global-lock fallback
     *  (progress guarantee; irrevocable bodies need the lock). */
    int stmAttempts = 3;

    /** log2 of the orec-table size. Small tables make hash-collision
     *  false conflicts likely (tested); 2^10 is the default. */
    unsigned orecTableLog2 = 10;

    /** Version-clock value at which the clock wraps: the engine then
     *  zeroes every orec, restarts the clock and bumps the epoch,
     *  invalidating all in-flight software transactions. 0 = never
     *  (full 64-bit clock). Tests shrink this to exercise wraparound. */
    std::uint64_t clockWrapLimit = 0;

    // -- Cost model (virtual cycles). The software path pays
    //    non-transactional access costs plus explicit instrumentation;
    //    the hardware fast path pays a commit-time publication fee in
    //    hybrid mode — the two overheads the bounds literature says
    //    any hybrid must pay somewhere.

    /** Begin: read the clock, snapshot the read version. */
    Cycles stmBeginCost = 12;
    /** Per access: orec hash + version check + logging, on top of the
     *  machine's non-transactional access cost. */
    Cycles stmAccessOverhead = 14;
    /** Commit: base fee (clock CAS + fencing). */
    Cycles stmCommitBase = 40;
    /** Commit: per tracked orec revalidation. */
    Cycles stmValidateCost = 4;
    /** Abort: discard buffers, reset logs. */
    Cycles stmAbortCost = 30;
    /** Hardware commit in hybrid mode: advance the global clock. */
    Cycles htmInstrumentationCost = 8;
    /** Hardware commit in hybrid mode: per written line orec bump. */
    Cycles htmOrecPublishCost = 2;
};

/**
 * The orec table + version clock + clock cell. Owned by value by the
 * Runtime; reset() is called at construction only when the software
 * path is enabled, so pure-HTM runs never pay the table allocation
 * (and keep their heap layout byte-compatible with non-hybrid runs).
 */
class StmEngine
{
  public:
    /** (Re)initialize for a run. @p conflict_shift is the runtime's
     *  resolved conflict-granularity shift. */
    void
    reset(const HybridRuntimeConfig& config, unsigned conflict_shift)
    {
        mask_ = (std::size_t(1) << config.orecTableLog2) - 1;
        orecs_.assign(mask_ + 1, 0);
        conflictShift_ = conflict_shift;
        wrapLimit_ = config.clockWrapLimit;
        clock_ = 0;
        epoch_ = 0;
        clockCell_ = 0;
    }

    // --- Version clock -----------------------------------------------

    std::uint64_t clock() const { return clock_; }

    /** Epoch counter: bumped on clock wraparound; any software
     *  transaction whose begin-epoch differs must abort. */
    std::uint64_t epoch() const { return epoch_; }

    /** Advance the clock, handling wraparound, and return the new
     *  write version. */
    std::uint64_t
    advanceClock()
    {
        if (wrapLimit_ != 0 && clock_ >= wrapLimit_) {
            // Epoch reset: orec versions restart from zero, so every
            // read version snapshotted under the old epoch is
            // meaningless — the epoch counter is what keeps stale
            // software transactions from validating against them.
            std::fill(orecs_.begin(), orecs_.end(), 0);
            clock_ = 0;
            ++epoch_;
        }
        return ++clock_;
    }

    // --- Clock cell (the hardware subscription channel) --------------

    /** The memory word hardware transactions subscribe to. */
    std::uint64_t* clockCellAddr() { return &clockCell_; }
    std::uint64_t clockCell() const { return clockCell_; }

    /** Raw store of the committed write version into the clock cell
     *  (the caller dooms directory subscribers first). */
    void publishClock(std::uint64_t version) { clockCell_ = version; }

    // --- Orecs --------------------------------------------------------

    std::size_t orecCount() const { return orecs_.size(); }

    /** Orec index covering a conflict-granularity line number. */
    std::size_t
    indexOfLine(std::uintptr_t line) const
    {
        // Fibonacci hashing; lines are host addresses shifted right,
        // exactly as deterministic as the conflict directory's probes.
        return std::size_t((std::uint64_t(line) *
                            0x9E3779B97F4A7C15ull) >> 32) & mask_;
    }

    /** Orec index covering an address. */
    std::size_t
    indexOfAddr(std::uintptr_t addr) const
    {
        return indexOfLine(addr >> conflictShift_);
    }

    std::uint64_t
    orecVersion(std::size_t index) const
    {
        return orecs_[index];
    }

    /** Set an orec to a committed write version. */
    void
    bumpOrec(std::size_t index, std::uint64_t version)
    {
        orecs_[index] = version;
    }

    /** Direct (non-transactional / irrevocable / hardware-commit)
     *  store instrumentation: stamp the address's orec with a fresh
     *  version so software validation observes the write. */
    void
    onDirectStore(std::uintptr_t addr)
    {
        orecs_[indexOfAddr(addr)] = advanceClock();
    }

    /** Free is a write. A software transaction can hold a pointer
     *  read consistently before the owner unlinked and freed the
     *  node; the pool then recycles that memory with uninstrumented
     *  freelist stores. Hardware readers are doomed eagerly through
     *  the directory, but software readers are invisible to it —
     *  stamping every freed line here is what makes their next read
     *  of the recycled block fail validation instead of chasing a
     *  dangling pointer (the classic TL2 reclamation rule). */
    void
    onFree(const void* ptr, std::size_t bytes)
    {
        if (bytes == 0)
            return;
        const std::uint64_t version = advanceClock();
        const std::uintptr_t addr = std::uintptr_t(ptr);
        const std::uintptr_t first = addr >> conflictShift_;
        const std::uintptr_t last =
            (addr + bytes - 1) >> conflictShift_;
        for (std::uintptr_t line = first; line <= last; ++line)
            orecs_[indexOfLine(line)] = version;
    }

  private:
    std::vector<std::uint64_t> orecs_;
    std::size_t mask_ = 0;
    std::uint64_t clock_ = 0;
    std::uint64_t epoch_ = 0;
    std::uint64_t wrapLimit_ = 0;
    std::uint64_t clockCell_ = 0;
    unsigned conflictShift_ = 0;
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_STM_HH

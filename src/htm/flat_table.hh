/**
 * @file
 * Open-addressing hash table specialized for the transactional hot
 * path.
 *
 * Every simulated transactional load/store probes several access-set
 * tables (write buffer, conflict lines, capacity lines, store sets),
 * and every abort clears them all. std::unordered_map makes both
 * operations expensive: node allocation per insert, a pointer chase
 * per probe, and a full bucket walk (plus eventual rehash) per clear.
 * FlatTable replaces it with:
 *
 *  - power-of-two capacity and linear probing over a contiguous slot
 *    array (one cache line per probe in the common case);
 *  - small inline storage (InlineSlots slots) so short transactions
 *    never touch the heap;
 *  - generation-stamped slots: clear() bumps a 32-bit epoch instead of
 *    touching memory, so resetting between transaction attempts is
 *    O(1) and never frees or rehashes.
 *
 * Keys are uintptr_t (line numbers / addresses); the all-ones key is
 * reserved as "never used" and must not be inserted (real line numbers
 * are addresses shifted right, so they cannot reach it). Values must
 * be default-constructible and are value-initialized on first insert
 * of a key within the current epoch.
 *
 * Not a general-purpose map: no erase (the transactional tables only
 * accumulate within an attempt), no iterators (use forEach), and the
 * table is move- and copy-less by design. Determinism note: probe and
 * forEach order depend only on the inserted keys, never on host
 * allocation state, which keeps simulated results independent of the
 * table implementation.
 */

#ifndef HTMSIM_HTM_FLAT_TABLE_HH
#define HTMSIM_HTM_FLAT_TABLE_HH

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace htmsim::htm
{

template <typename Value, std::size_t InlineSlots = 16>
class FlatTable
{
    static_assert(InlineSlots >= 4 &&
                      (InlineSlots & (InlineSlots - 1)) == 0,
                  "inline capacity must be a power of two");

  public:
    using Key = std::uintptr_t;

    FlatTable() { slots_ = inline_.data(); }

    ~FlatTable()
    {
        if (slots_ != inline_.data())
            delete[] slots_;
    }

    FlatTable(const FlatTable&) = delete;
    FlatTable& operator=(const FlatTable&) = delete;

    /** Live entries in the current epoch. */
    std::size_t size() const { return size_; }

    /** True if no entry is live (one load; lets hot paths skip the
     *  hash-and-probe of a guaranteed-miss find). */
    bool empty() const { return size_ == 0; }

    /** Current slot-array capacity (diagnostics and tests). */
    std::size_t capacity() const { return mask_ + 1; }

    /** True if the table has spilled out of its inline storage. */
    bool spilled() const { return slots_ != inline_.data(); }

    /**
     * O(1) logical clear: live entries are those stamped with the
     * current epoch, so bumping the epoch empties the table without
     * freeing or touching slot memory. On 32-bit epoch wrap-around
     * (once per ~4G clears) the stamps are scrubbed in one pass.
     */
    void
    clear()
    {
        size_ = 0;
        if (++epoch_ == 0) {
            const std::size_t slots = mask_ + 1;
            for (std::size_t i = 0; i < slots; ++i)
                slots_[i].epoch = 0;
            epoch_ = 1;
        }
    }

    /**
     * Find the value for @p key, inserting a value-initialized entry
     * if absent. @p inserted (when non-null) reports whether a new
     * entry was created — the caller typically appends the key to its
     * access log in that case. The reference stays valid until the
     * next insertOrFind or clear.
     */
    Value&
    insertOrFind(Key key, bool* inserted = nullptr)
    {
        assert(key != unusedKey && "all-ones key is reserved");
        if ((size_ + 1) * 4 > (mask_ + 1) * 3)
            grow();
        std::size_t index = indexOf(key);
        for (;;) {
            Slot& slot = slots_[index];
            if (slot.epoch != epoch_) {
                slot.key = key;
                slot.epoch = epoch_;
                slot.value = Value{};
                ++size_;
                if (inserted != nullptr)
                    *inserted = true;
                return slot.value;
            }
            if (slot.key == key) {
                if (inserted != nullptr)
                    *inserted = false;
                return slot.value;
            }
            index = (index + 1) & mask_;
        }
    }

    /** Find the value for @p key, or nullptr. */
    Value*
    find(Key key)
    {
        std::size_t index = indexOf(key);
        for (;;) {
            Slot& slot = slots_[index];
            if (slot.epoch != epoch_)
                return nullptr;
            if (slot.key == key)
                return &slot.value;
            index = (index + 1) & mask_;
        }
    }

    const Value*
    find(Key key) const
    {
        return const_cast<FlatTable*>(this)->find(key);
    }

    /** Visit every live (key, value) pair; order is hash order. */
    template <typename F>
    void
    forEach(F&& visit) const
    {
        const std::size_t slots = mask_ + 1;
        for (std::size_t i = 0; i < slots; ++i) {
            const Slot& slot = slots_[i];
            if (slot.epoch == epoch_)
                visit(slot.key, slot.value);
        }
    }

  private:
    struct Slot
    {
        Key key = 0;
        std::uint32_t epoch = 0;
        Value value{};
    };

    static constexpr Key unusedKey = ~Key(0);

    std::size_t
    indexOf(Key key) const
    {
        // Fibonacci hashing: spreads the near-sequential line numbers
        // of streaming accesses across the table.
        return std::size_t((std::uint64_t(key) *
                            0x9E3779B97F4A7C15ull) >>
                           shift_) &
               mask_;
    }

    void
    grow()
    {
        const std::size_t old_slots = mask_ + 1;
        const std::size_t new_slots = old_slots * 2;
        Slot* old_array = slots_;
        Slot* new_array = new Slot[new_slots]();
        mask_ = new_slots - 1;
        shift_ -= 1;
        slots_ = new_array;
        // Only live entries migrate; stale epochs die with the old
        // array. The epoch keeps counting so clear() stays O(1).
        for (std::size_t i = 0; i < old_slots; ++i) {
            const Slot& slot = old_array[i];
            if (slot.epoch != epoch_)
                continue;
            std::size_t index = indexOf(slot.key);
            while (slots_[index].epoch == epoch_)
                index = (index + 1) & mask_;
            slots_[index].key = slot.key;
            slots_[index].epoch = epoch_;
            slots_[index].value = slot.value;
        }
        if (old_array != inline_.data())
            delete[] old_array;
    }

    static constexpr unsigned inlineShift()
    {
        unsigned log2 = 0;
        for (std::size_t n = InlineSlots; n > 1; n >>= 1)
            ++log2;
        return 64 - log2;
    }

    Slot* slots_ = nullptr;
    std::size_t mask_ = InlineSlots - 1;
    unsigned shift_ = inlineShift();
    std::size_t size_ = 0;
    std::uint32_t epoch_ = 1;
    std::array<Slot, InlineSlots> inline_{};
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_FLAT_TABLE_HH

/**
 * @file
 * Static transaction-site registry (the txprof subsystem's anchor).
 *
 * A *site* is one static atomic block in the program text — a yada
 * cavity refinement, a kmeans accumulate, a queue enqueue fast path.
 * Each site interns its name once and receives a stable TxSiteId; the
 * id is carried through Tx into every lifecycle event, so profiling
 * aggregates per site instead of per run. Interning is idempotent
 * (same name -> same id for the life of the process), which is what
 * lets the usual static-local registration idiom work:
 *
 *   static const htm::TxSiteId site = htm::txSite("yada.refine");
 *   exec.atomic(site, [&](auto& c) { ... });
 *
 * Ids are dense from 1; id 0 is reserved for "<unknown>" (sections
 * that never registered). The registry only ever grows — names from
 * finished runs stay registered, which keeps ids stable across the
 * many runtimes a tuning sweep constructs.
 */

#ifndef HTMSIM_HTM_SITE_HH
#define HTMSIM_HTM_SITE_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace htmsim::htm
{

/** Stable identifier of one static transaction site (0 = unknown). */
using TxSiteId = std::uint16_t;

/** The id every unregistered atomic section carries. */
inline constexpr TxSiteId unknownTxSite = 0;

/**
 * Process-wide name -> TxSiteId intern table.
 *
 * The simulator is single-threaded on the host, so no locking is
 * needed; registration typically happens on a site's first execution.
 */
class SiteRegistry
{
  public:
    static SiteRegistry& instance();

    /**
     * Return the id for @p name, registering it on first use.
     * Registration beyond maxSites (bounded so profilers can
     * preallocate) collapses to unknownTxSite.
     */
    TxSiteId intern(std::string_view name);

    /** Name of a site ("<unknown>" for id 0 or out-of-range ids). */
    const std::string& name(TxSiteId id) const;

    /** Number of ids handed out, including the reserved id 0. */
    std::size_t size() const;

    /** Upper bound on distinct sites (lets observers preallocate). */
    static constexpr std::size_t maxSites = 4096;

  private:
    SiteRegistry();

    struct Impl;
    Impl* impl_;
};

/** Convenience: intern @p name in the global registry. */
TxSiteId txSite(std::string_view name);

} // namespace htmsim::htm

#endif // HTMSIM_HTM_SITE_HH

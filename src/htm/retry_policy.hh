/**
 * @file
 * Retry-policy layer: the software state machine that decides, after
 * each transactional abort, whether an atomic section retries in
 * hardware or gives up to its fallback path.
 *
 * A RetryPolicy is a pure decision object: it consumes abort causes
 * (plus the observed state of the global fallback lock) and emits
 * retry/stop decisions. It never touches the simulator, the conflict
 * directory, or a Tx, which is what makes the layer boundary real —
 * the policies are unit-testable with nothing but scripted abort-cause
 * streams (tests/test_retry_policy.cc).
 *
 * Three policies from the paper:
 *  - Fig1ThreeCounterPolicy: the paper's Figure 1 mechanism — separate
 *    budgets for lock-conflict, persistent and transient aborts
 *    (Section 3), used on zEC12 / Intel Core / POWER8;
 *  - BgqAdaptivePolicy: Blue Gene/Q's system-software mechanism — one
 *    retry counter plus per-thread adaptation that stops retrying
 *    after repeated fallbacks (Section 3);
 *  - NoRetryPolicy: a single attempt, then straight to the fallback
 *    (the Section 6.1 "NoRetryTM" path).
 * BoundedRetryPolicy generalizes NoRetryPolicy to N attempts (the
 * Section 6.1 "OptRetryTM" path with a tuned attempt budget).
 *
 * HardenedRetryPolicy (this PR) is the starvation-proof variant built
 * for hazard-injected runs (hazard.hh, DESIGN.md Section 8): Figure 1
 * budgets plus a hard per-section attempt watchdog, deterministic
 * backoff jitter, and lemming-storm adaptation. Its progress bound:
 * every section reaches its fallback within `watchdogAttempts` HTM
 * attempts no matter what the abort stream looks like.
 */

#ifndef HTMSIM_HTM_RETRY_POLICY_HH
#define HTMSIM_HTM_RETRY_POLICY_HH

#include <algorithm>
#include <memory>

#include "abort.hh"
#include "machine.hh"

namespace htmsim::htm
{

struct RuntimeConfig;

/** Which retry-policy implementation a run's HTM sections use
 *  (RuntimeConfig::policyKind; string names in the tools: "default" /
 *  "hardened"). */
enum class RetryPolicyKind : std::uint8_t
{
    /** The machine's own mechanism: BgqAdaptivePolicy on Blue Gene/Q,
     *  Fig1ThreeCounterPolicy elsewhere. */
    machineDefault,
    /** HardenedRetryPolicy on every machine. */
    hardened,
};

/** Maximum retry counts of the Figure 1 mechanism (tuning knobs). */
struct RetryCounts
{
    int lockRetries = 4;
    int persistentRetries = 1;
    int transientRetries = 8;
};

/**
 * True if @p cause counts as persistent for the Figure 1 mechanism.
 * Intel and POWER8 report a persistence hint; the paper's runtime
 * treats zEC12 capacity overflows as persistent in software
 * (Section 3). Either way the same causes are persistent.
 */
inline bool
isPersistentCause(AbortCause cause)
{
    return cause == AbortCause::capacityOverflow ||
           cause == AbortCause::wayConflict;
}

/**
 * Decision state machine for one thread's atomic sections.
 *
 * Drivers call beginSection() once per atomic section, then onAbort()
 * after every failed attempt until it returns false (stop retrying),
 * and finally exactly one of onCommit() / onFallback(). Policies may
 * keep state across sections (BgqAdaptivePolicy's adaptation score),
 * so one instance serves one thread.
 */
class RetryPolicy
{
  public:
    virtual ~RetryPolicy() = default;

    /** Reset per-section state; called before the first attempt. */
    virtual void beginSection() {}

    /**
     * Consume one abort. @p lock_held reports whether the global
     * fallback lock was observed held after the abort (the Figure 1
     * driver inspects the lock to classify, so a conflict whose lock
     * was already released again is misattributed — see
     * Runtime::recordAbort).
     * @return true to retry transactionally, false to stop.
     */
    virtual bool onAbort(AbortCause cause, bool lock_held) = 0;

    /** The section committed transactionally. */
    virtual void onCommit() {}

    /** The section gave up and ran on its fallback path. */
    virtual void onFallback() {}

    /** Attempts subscribe to the fallback lock lazily (at commit)
     *  rather than eagerly (at begin). */
    virtual bool lazySubscription() const { return false; }

    /** Post-abort backoff jitter is a deterministic hash of
     *  (tid, consecutive aborts) instead of a draw from the thread's
     *  main rng stream (see Runtime::backoff). */
    virtual bool deterministicBackoff() const { return false; }
};

/**
 * The paper's Figure 1 mechanism: three independent retry budgets,
 * selected by inspecting the lock and the persistence hint of each
 * abort. Section 3 argues lock conflicts deserve their own counter;
 * bench_ablation_retry quantifies that against a single shared one.
 */
class Fig1ThreeCounterPolicy final : public RetryPolicy
{
  public:
    explicit Fig1ThreeCounterPolicy(RetryCounts counts)
        : counts_(counts)
    {
        beginSection();
    }

    void
    beginSection() override
    {
        lockRetries_ = counts_.lockRetries;
        persistentRetries_ = counts_.persistentRetries;
        transientRetries_ = counts_.transientRetries;
    }

    bool
    onAbort(AbortCause cause, bool lock_held) override
    {
        // Figure 1 line 13: a lock observed held (or a lock-word
        // conflict) charges the lock counter regardless of the
        // hardware's reported cause.
        if (lock_held || cause == AbortCause::lockConflict)
            return --lockRetries_ > 0;
        if (isPersistentCause(cause))
            return --persistentRetries_ > 0;
        return --transientRetries_ > 0;
    }

  private:
    RetryCounts counts_;
    int lockRetries_ = 0;
    int persistentRetries_ = 0;
    int transientRetries_ = 0;
};

/**
 * Blue Gene/Q's system-provided mechanism (Section 3): one retry
 * counter for all abort kinds (the hardware reports no reason codes to
 * count by), plus adaptation — a thread whose sections repeatedly end
 * in the lock fallback stops retrying until commits decay the score.
 */
class BgqAdaptivePolicy final : public RetryPolicy
{
  public:
    /** Fallback-score decay applied on every section outcome. */
    static constexpr double scoreDecay = 0.9;
    /** Score above which adaptation suppresses all retries. */
    static constexpr double adaptationThreshold = 2.5;

    BgqAdaptivePolicy(int max_retries, bool adaptation, BgqMode mode)
        : maxRetries_(max_retries), adaptation_(adaptation),
          mode_(mode)
    {
        beginSection();
    }

    void
    beginSection() override
    {
        retries_ = maxRetries_;
        if (adaptation_ && score_ > adaptationThreshold)
            retries_ = 0;
    }

    bool
    onAbort(AbortCause, bool) override
    {
        return retries_-- > 0;
    }

    void
    onCommit() override
    {
        score_ *= scoreDecay;
    }

    void
    onFallback() override
    {
        score_ = score_ * scoreDecay + 1.0;
    }

    /** Long-running mode checks the lock only at commit [12]. */
    bool
    lazySubscription() const override
    {
        return mode_ == BgqMode::longRunning;
    }

  private:
    int maxRetries_;
    bool adaptation_;
    BgqMode mode_;
    int retries_ = 0;
    double score_ = 0.0;
};

/** One hardware attempt, then straight to the fallback (NoRetryTM). */
class NoRetryPolicy final : public RetryPolicy
{
  public:
    bool
    onAbort(AbortCause, bool) override
    {
        return false;
    }
};

/**
 * A fixed total attempt budget with no abort-kind distinction
 * (OptRetryTM, Section 6.1). BoundedRetryPolicy(1) behaves like
 * NoRetryPolicy.
 */
class BoundedRetryPolicy final : public RetryPolicy
{
  public:
    /** A non-positive budget clamps to one attempt: the hardware
     *  always runs the first attempt, so "zero attempts" cannot mean
     *  anything stricter than NoRetryPolicy. */
    explicit BoundedRetryPolicy(int max_attempts)
        : maxAttempts_(std::max(max_attempts, 1))
    {
    }

    void
    beginSection() override
    {
        failedAttempts_ = 0;
    }

    bool
    onAbort(AbortCause, bool) override
    {
        return ++failedAttempts_ < maxAttempts_;
    }

  private:
    int maxAttempts_;
    int failedAttempts_ = 0;
};

/**
 * The starvation-proof policy (DESIGN.md Section 8). Three Figure 1
 * budgets, hardened on three fronts for hazard-heavy environments:
 *
 *  - Watchdog: a hard cap of `watchdogAttempts` HTM attempts per
 *    section, regardless of which budgets the abort stream drains.
 *    This is the guaranteed-progress bound — an adversarial stream of
 *    injected aborts cannot keep a section out of its fallback, and
 *    once a section holds the fallback lock it commits in bounded
 *    virtual time (the body is finite and lock holders are never
 *    aborted), so every section terminates.
 *  - Storm adaptation: repeated fallbacks shrink the transient budget
 *    to one (convoy bound — a thread joining a lemming storm stops
 *    feeding it with doomed retries); commits decay the score back.
 *  - Deterministic backoff jitter (deterministicBackoff()), so the
 *    retry cadence of a replayed hazard schedule is reproducible and
 *    independent of the thread's main rng stream position.
 */
class HardenedRetryPolicy final : public RetryPolicy
{
  public:
    /** Hard per-section HTM attempt bound (the watchdog). Above the
     *  sum of the default Figure 1 budgets that matter in practice,
     *  so it only fires when classification is being gamed (e.g.
     *  alternating injected causes replenishing each other's
     *  headroom). */
    static constexpr int watchdogAttempts = 12;
    /** Fallback-score decay applied on every section outcome. */
    static constexpr double stormDecay = 0.85;
    /** Score above which the transient budget shrinks to one. */
    static constexpr double stormThreshold = 2.5;

    explicit HardenedRetryPolicy(RetryCounts counts) : counts_(counts)
    {
        beginSection();
    }

    void
    beginSection() override
    {
        lockRetries_ = counts_.lockRetries;
        persistentRetries_ = counts_.persistentRetries;
        transientRetries_ = counts_.transientRetries;
        if (score_ > stormThreshold)
            transientRetries_ = std::min(transientRetries_, 1);
        watchdog_ = watchdogAttempts;
    }

    bool
    onAbort(AbortCause cause, bool lock_held) override
    {
        if (--watchdog_ <= 0)
            return false;
        if (lock_held || cause == AbortCause::lockConflict)
            return --lockRetries_ > 0;
        if (isPersistentCause(cause))
            return --persistentRetries_ > 0;
        return --transientRetries_ > 0;
    }

    void
    onCommit() override
    {
        score_ *= stormDecay;
    }

    void
    onFallback() override
    {
        score_ = score_ * stormDecay + 1.0;
    }

    bool deterministicBackoff() const override { return true; }

  private:
    RetryCounts counts_;
    int lockRetries_ = 0;
    int persistentRetries_ = 0;
    int transientRetries_ = 0;
    int watchdog_ = 0;
    double score_ = 0.0;
};

/**
 * Decision layer of the hybrid backend (backend.hh HybridBackend):
 * wraps a thread's base RetryPolicy and turns its binary retry/stop
 * output into a three-way decision — retry in hardware, fall back to
 * the *software* slow path, or (only when the software path is
 * exhausted or disabled) serialize on the global lock.
 *
 * Decision rules:
 *  - software path disabled: mirror the base policy exactly
 *    (retryHtm while it says retry, then fallbackLock) — the hybrid
 *    backend degenerates to HtmBackend;
 *  - persistent abort causes (capacity, way conflict): straight to
 *    fallbackStm *without* consuming base-policy budget — retrying a
 *    too-big transaction in hardware is the waste the hybrid exists
 *    to avoid, and the software path has no capacity limit;
 *  - transient causes: retryHtm while the base policy says retry,
 *    fallbackStm when it gives up — the lock is no longer the next
 *    stop after hardware;
 *  - software aborts: up to stmAttempts tries, then fallbackLock
 *    (the progress guarantee: validation-doomed sections eventually
 *    serialize).
 *
 * Like every policy, this is a pure decision object — unit-tested
 * with scripted abort streams in tests/test_retry_policy.cc.
 */
class HybridRetryPolicy
{
  public:
    /** Where the section goes after an abort. */
    enum class Decision : std::uint8_t
    {
        retryHtm,
        fallbackStm,
        fallbackLock,
    };

    /** Resolved hybrid knobs (from RuntimeConfig::hybrid). */
    struct Tuning
    {
        bool stmEnabled = true;
        bool stmOnly = false;
        int stmAttempts = 3;
    };

    HybridRetryPolicy() = default;

    /** Bind the thread's base policy (owned by the backend). */
    void
    bind(RetryPolicy* base, Tuning tuning)
    {
        base_ = base;
        tuning_ = tuning;
    }

    /** True if hardware attempts are skipped entirely (stmOnly). */
    bool
    softwareFirst() const
    {
        return tuning_.stmEnabled && tuning_.stmOnly;
    }

    void
    beginSection()
    {
        base_->beginSection();
        stmFailures_ = 0;
    }

    Decision
    onHtmAbort(AbortCause cause, bool lock_held)
    {
        if (!tuning_.stmEnabled) {
            return base_->onAbort(cause, lock_held)
                       ? Decision::retryHtm
                       : Decision::fallbackLock;
        }
        if (isPersistentCause(cause) && !lock_held) {
            // Persistent hardware causes do not drain base budgets:
            // the hardware already told us retrying is futile, and
            // the software path does not share the limitation.
            return Decision::fallbackStm;
        }
        return base_->onAbort(cause, lock_held) ? Decision::retryHtm
                                                : Decision::fallbackStm;
    }

    Decision
    onStmAbort(AbortCause)
    {
        return ++stmFailures_ < tuning_.stmAttempts
                   ? Decision::fallbackStm
                   : Decision::fallbackLock;
    }

    void onCommit() { base_->onCommit(); }
    void onFallback() { base_->onFallback(); }

    bool lazySubscription() const { return base_->lazySubscription(); }
    bool
    deterministicBackoff() const
    {
        return base_->deterministicBackoff();
    }

  private:
    RetryPolicy* base_ = nullptr;
    Tuning tuning_;
    int stmFailures_ = 0;
};

/**
 * The policy an HTM-backed atomic section uses under @p config:
 * HardenedRetryPolicy everywhere when config.policyKind requests it,
 * otherwise BgqAdaptivePolicy on Blue Gene/Q (the machine's system
 * software owns the mechanism) and Fig1ThreeCounterPolicy elsewhere.
 * One instance per thread (policies carry cross-section state).
 */
std::unique_ptr<RetryPolicy> makeRetryPolicy(const RuntimeConfig& config);

} // namespace htmsim::htm

#endif // HTMSIM_HTM_RETRY_POLICY_HH

/**
 * @file
 * Line-granular conflict-detection directory.
 *
 * Models the cache-coherence-based access tracking that all four
 * machines implement (Section 2): each line touched by a live
 * transaction carries a writer id and a reader set. Because simulated
 * threads are cooperatively scheduled, no host synchronization is
 * needed; accesses happen in virtual-time order.
 */

#ifndef HTMSIM_HTM_CONFLICT_TABLE_HH
#define HTMSIM_HTM_CONFLICT_TABLE_HH

#include <cassert>
#include <cstdint>
#include <unordered_map>

namespace htmsim::htm
{

/**
 * Directory of transactionally accessed lines at a fixed granularity.
 * Keys are line numbers (address >> granularity log2).
 */
class ConflictTable
{
  public:
    /** Tracking state of one line. */
    struct Line
    {
        /** Writing transaction's thread id, or -1. */
        int writer = -1;
        /** Bitmask of reader thread ids (max 64 simulated threads). */
        std::uint64_t readers = 0;

        bool
        empty() const
        {
            return writer < 0 && readers == 0;
        }
    };

    explicit ConflictTable(unsigned granularity_log2)
        : shift_(granularity_log2)
    {
    }

    /** Line number covering @p addr. */
    std::uintptr_t lineOf(std::uintptr_t addr) const
    {
        return addr >> shift_;
    }

    std::size_t granularityBytes() const { return std::size_t(1) << shift_; }

    /** Find-or-create the tracking state for a line. */
    Line& line(std::uintptr_t line_number) { return lines_[line_number]; }

    /** Find the tracking state for a line, or nullptr. */
    Line*
    find(std::uintptr_t line_number)
    {
        auto it = lines_.find(line_number);
        return it == lines_.end() ? nullptr : &it->second;
    }

    /** Drop a thread's reader mark from a line, erasing empty lines. */
    void
    clearReader(std::uintptr_t line_number, unsigned tid)
    {
        auto it = lines_.find(line_number);
        if (it == lines_.end())
            return;
        it->second.readers &= ~(std::uint64_t(1) << tid);
        if (it->second.empty())
            lines_.erase(it);
    }

    /** Drop a thread's writer mark (if it still owns the line). */
    void
    clearWriter(std::uintptr_t line_number, unsigned tid)
    {
        auto it = lines_.find(line_number);
        if (it == lines_.end())
            return;
        if (it->second.writer == int(tid))
            it->second.writer = -1;
        if (it->second.empty())
            lines_.erase(it);
    }

    /** Number of tracked lines (for tests and diagnostics). */
    std::size_t trackedLines() const { return lines_.size(); }

  private:
    unsigned shift_;
    std::unordered_map<std::uintptr_t, Line> lines_;
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_CONFLICT_TABLE_HH

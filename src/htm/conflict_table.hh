/**
 * @file
 * Line-granular conflict-detection directory.
 *
 * Models the cache-coherence-based access tracking that all four
 * machines implement (Section 2): each line touched by a live
 * transaction carries a writer id and a reader set. Because simulated
 * threads are cooperatively scheduled, no host synchronization is
 * needed; accesses happen in virtual-time order.
 *
 * Backed by FlatTable (open addressing, contiguous slots): the
 * directory is probed on every transactional access, making it the
 * hottest shared structure in the simulator. Entries are never
 * erased — clearing a reader/writer mark just empties the Line, and
 * the slot is reused the next time any transaction touches that line.
 * This trades a bounded footprint (distinct lines ever touched) for
 * erase-free probing.
 */

#ifndef HTMSIM_HTM_CONFLICT_TABLE_HH
#define HTMSIM_HTM_CONFLICT_TABLE_HH

#include <cassert>
#include <cstdint>

#include "flat_table.hh"

namespace htmsim::htm
{

/**
 * Directory of transactionally accessed lines at a fixed granularity.
 * Keys are line numbers (address >> granularity log2).
 */
class ConflictTable
{
  public:
    /** Tracking state of one line. */
    struct Line
    {
        /** Writing transaction's thread id, or -1. */
        int writer = -1;
        /** Bitmask of reader thread ids (max 64 simulated threads). */
        std::uint64_t readers = 0;

        bool
        empty() const
        {
            return writer < 0 && readers == 0;
        }
    };

    explicit ConflictTable(unsigned granularity_log2)
        : shift_(granularity_log2)
    {
    }

    /** Line number covering @p addr. */
    std::uintptr_t lineOf(std::uintptr_t addr) const
    {
        return addr >> shift_;
    }

    std::size_t granularityBytes() const { return std::size_t(1) << shift_; }

    /** Find-or-create the tracking state for a line. */
    Line& line(std::uintptr_t line_number)
    {
        return lines_.insertOrFind(line_number);
    }

    /** Find the tracking state for a line, or nullptr. The returned
     *  Line may be empty (marks already cleared; slots persist). */
    Line*
    find(std::uintptr_t line_number)
    {
        return lines_.find(line_number);
    }

    /** Drop a thread's reader mark from a line. */
    void
    clearReader(std::uintptr_t line_number, unsigned tid)
    {
        Line* line = lines_.find(line_number);
        if (line != nullptr)
            line->readers &= ~(std::uint64_t(1) << tid);
    }

    /** Drop a thread's writer mark (if it still owns the line). */
    void
    clearWriter(std::uintptr_t line_number, unsigned tid)
    {
        Line* line = lines_.find(line_number);
        if (line != nullptr && line->writer == int(tid))
            line->writer = -1;
    }

    /** Number of lines with live marks (for tests and diagnostics). */
    std::size_t
    trackedLines() const
    {
        std::size_t count = 0;
        lines_.forEach([&count](std::uintptr_t, const Line& line) {
            if (!line.empty())
                ++count;
        });
        return count;
    }

  private:
    unsigned shift_;
    FlatTable<Line, 64> lines_;
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_CONFLICT_TABLE_HH

#include "runtime.hh"

#include "node_pool.hh"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace htmsim::htm
{

namespace
{

unsigned
log2Exact(std::size_t value)
{
    assert(value > 0 && (value & (value - 1)) == 0 &&
           "granularities must be powers of two");
    return unsigned(std::countr_zero(value));
}

} // namespace

Runtime::Runtime(RuntimeConfig config, unsigned num_threads)
    : config_(std::move(config))
{
    const MachineConfig& machine = config_.machine;
    assert(num_threads >= 1 && num_threads <= 64);

    // Blue Gene/Q refines its worst-case 128-byte granularity by
    // execution mode: 8 bytes short-running, 64 bytes long-running
    // (Section 2.1).
    std::size_t granularity = machine.conflictGranularity;
    if (machine.vendor == Vendor::blueGeneQ) {
        granularity = config_.bgqMode == BgqMode::shortRunning ? 8 : 64;
    }
    conflictShift_ = log2Exact(granularity);
    capacityShift_ = log2Exact(machine.capacityLineBytes);

    table_ = std::make_unique<ConflictTable>(conflictShift_);
    stats_.resize(num_threads);
    activePerCore_.assign(machine.numCores, 0);
    bgqFallbackScore_.assign(num_threads, 0.0);
    freeSpecIds_ = machine.speculationIds;

    txs_.reserve(num_threads);
    for (unsigned tid = 0; tid < num_threads; ++tid) {
        auto tx = std::make_unique<Tx>();
        tx->runtime_ = this;
        tx->tid_ = tid;
        txs_.push_back(std::move(tx));
    }
}

Runtime::~Runtime() = default;

TxStats
Runtime::stats() const
{
    TxStats total;
    for (const auto& per_thread : stats_)
        total += per_thread;
    return total;
}

// --------------------------------------------------------------------
// Conflict resolution
// --------------------------------------------------------------------

void
Runtime::doomTx(unsigned victim_tid, AbortCause cause)
{
    Tx& victim = *txs_[victim_tid];
    if (victim.status_ != TxStatus::active || victim.unkillable_)
        return;
    victim.status_ = TxStatus::doomed;
    victim.doomCause_ = cause;
}

void
Runtime::resolveConflict(Tx& attacker, unsigned victim_tid,
                         AbortCause victim_cause)
{
    Tx& victim = *txs_[victim_tid];
    if (victim.status_ != TxStatus::active)
        return; // already dying; its marks are stale

    if (victim.unkillable_) {
        attacker.selfAbort(AbortCause::dataConflict);
    }

    switch (config_.policy) {
      case ConflictPolicy::attackerWins:
        doomTx(victim_tid, victim_cause);
        break;
      case ConflictPolicy::attackerLoses:
        attacker.selfAbort(AbortCause::dataConflict);
        break;
      case ConflictPolicy::olderWins:
        if (victim.startOrder_ < attacker.startOrder_)
            attacker.selfAbort(AbortCause::dataConflict);
        else
            doomTx(victim_tid, victim_cause);
        break;
    }
}

void
Runtime::nonTxConflict(unsigned tid, std::uintptr_t addr, bool is_write)
{
    const std::uintptr_t line_number = table_->lineOf(addr);
    ConflictTable::Line* line = table_->find(line_number);
    if (line == nullptr)
        return;

    // A non-transactional access wins against any transaction holding
    // the line (strong isolation via cache coherence, Section 2).
    if (line->writer >= 0 && line->writer != int(tid))
        doomTx(unsigned(line->writer), AbortCause::dataConflict);
    if (is_write) {
        std::uint64_t readers = line->readers &
                                ~(std::uint64_t(1) << tid);
        while (readers != 0) {
            const unsigned reader = unsigned(__builtin_ctzll(readers));
            readers &= readers - 1;
            doomTx(reader, AbortCause::dataConflict);
        }
    }
}

// --------------------------------------------------------------------
// Begin / commit / rollback
// --------------------------------------------------------------------

void
Runtime::txBegin(Tx& tx, sim::ThreadContext& ctx, bool lazy_subscribe)
{
    tx.ctx_ = &ctx;
    tx.resetAttemptState();

    acquireSpecId(tx, ctx);

    const MachineConfig& machine = config_.machine;
    Cycles cost = machine.txBeginCost;
    if (machine.vendor == Vendor::blueGeneQ &&
        config_.bgqMode == BgqMode::longRunning) {
        cost += machine.longModeBeginExtra; // L1 invalidation at start
    }
    ctx.advance(cost);
    ctx.sync();

    tx.status_ = TxStatus::active;
    tx.startOrder_ = ++startCounter_;
    ++activePerCore_[machine.coreOf(tx.tid_)];

    if (!lazy_subscribe && !tx.constrained_) {
        // Figure 1, lines 13/26: read the lock word transactionally so
        // a later acquisition aborts us; abort at once if it is held.
        const auto lock = tx.load(&lockWord_);
        if (lock != 0)
            tx.selfAbort(AbortCause::lockConflict);
    }
}

void
Runtime::txCommit(Tx& tx, sim::ThreadContext& ctx, bool lazy_subscribe)
{
    ctx.advance(config_.machine.txEndCost);
    ctx.sync();
    tx.checkDoom();

    if (lazy_subscribe && lockWord_ != 0) {
        // Blue Gene/Q long-running mode: lazy subscription checks the
        // lock at the end of the transaction [12].
        tx.selfAbort(AbortCause::lockConflict);
    }

    // Commit point: no scheduling points below, so write-back and
    // directory cleanup are atomic in virtual time. Both walks follow
    // the append-only logs: O(touched words/lines), not table size.
    for (const std::uintptr_t addr : tx.writeLog_) {
        const Tx::WriteEntry* entry = tx.writeBuffer_.find(addr);
        std::memcpy(reinterpret_cast<void*>(addr), &entry->value,
                    entry->size);
    }
    for (const std::uintptr_t line_number : tx.conflictLog_) {
        const std::uint8_t flags =
            *tx.conflictLines_.find(line_number);
        if (flags & Tx::lineRead)
            table_->clearReader(line_number, tx.tid_);
        if (flags & Tx::lineWritten)
            table_->clearWriter(line_number, tx.tid_);
    }
    for (const auto& record : tx.deferredFrees_)
        NodePool::instance().free(record.ptr, record.bytes);

    if (config_.collectTrace)
        trace_.record(tx.loadLines_, tx.storeLines_);

    if (tx.constrained_)
        ++stats_[tx.tid_].constrainedCommits;
    else
        ++stats_[tx.tid_].htmCommits;

    if (tx.status_ == TxStatus::active)
        --activePerCore_[config_.machine.coreOf(tx.tid_)];
    releaseSpecId(tx);
    tx.status_ = TxStatus::inactive;
}

void
Runtime::rollback(Tx& tx, sim::ThreadContext& ctx)
{
    for (const std::uintptr_t line_number : tx.conflictLog_) {
        const std::uint8_t flags =
            *tx.conflictLines_.find(line_number);
        if (flags & Tx::lineRead)
            table_->clearReader(line_number, tx.tid_);
        if (flags & Tx::lineWritten)
            table_->clearWriter(line_number, tx.tid_);
    }
    for (const auto& record : tx.speculativeAllocs_)
        NodePool::instance().free(record.ptr, record.bytes);

    if (tx.status_ == TxStatus::active ||
        tx.status_ == TxStatus::doomed) {
        --activePerCore_[config_.machine.coreOf(tx.tid_)];
    }
    releaseSpecId(tx);
    tx.status_ = TxStatus::inactive;
    tx.suspended_ = false;

    ctx.advance(config_.machine.txAbortCost);
    ctx.sync();
}

void
Runtime::recordAbort(Tx& tx, AbortCause cause)
{
    TxStats& stats = stats_[tx.tid_];
    stats.trueCauseAborts[std::size_t(cause)]++;

    AbortCategory reported;
    if (!config_.machine.hasAbortCodes) {
        reported = AbortCategory::unclassified;
    } else if (lockWord_ != 0 || cause == AbortCause::lockConflict) {
        // The retry driver classifies lock conflicts by inspecting the
        // lock after the abort (Figure 1 line 13); a conflict whose
        // lock was already released again is misattributed to data —
        // exactly as the paper describes.
        reported = AbortCategory::lockConflict;
    } else {
        reported = categorize(cause);
    }
    stats.reportedAborts[std::size_t(reported)]++;
}

AbortCause
Runtime::attempt(Tx& tx, sim::ThreadContext& ctx,
                 FunctionRef<void(Tx&)> body, bool lazy_subscribe,
                 bool record_stats)
{
    try {
        txBegin(tx, ctx, lazy_subscribe);
        body(tx);
        txCommit(tx, ctx, lazy_subscribe);
        return AbortCause::none;
    } catch (const TxAbortException& abort) {
        // Doom by a peer overrides the locally thrown cause.
        const AbortCause cause = tx.status_ == TxStatus::doomed
                                     ? tx.doomCause_
                                     : abort.cause;
        rollback(tx, ctx);
        if (record_stats)
            recordAbort(tx, cause);
        return cause == AbortCause::none ? AbortCause::dataConflict
                                         : cause;
    }
}

// --------------------------------------------------------------------
// Retry drivers
// --------------------------------------------------------------------

void
Runtime::waitToBegin(sim::ThreadContext& ctx)
{
    // Figure 1 line 9: wait for the global lock to be released before
    // beginning, to avoid the lemming effect [8].
    if (lockWord_ != 0) {
        ctx.spinUntil([this] { return lockWord_ == 0; }, lockPollCost);
    }
    if (constrainedOwner_ >= 0 && constrainedOwner_ != int(ctx.id())) {
        ctx.spinUntil([this] { return constrainedOwner_ < 0; },
                      lockPollCost);
    }
}

void
Runtime::backoff(sim::ThreadContext& ctx, unsigned consecutive_aborts)
{
    const unsigned shift =
        std::min(consecutive_aborts, config_.maxBackoffShift);
    const Cycles base = config_.backoffBase << shift;
    const Cycles jitter = Cycles(double(base) * ctx.rng().nextDouble());
    ctx.advance(base + jitter);
    ctx.sync();
}

void
Runtime::acquireGlobalLock(sim::ThreadContext& ctx)
{
    ctx.sync();
    if (lockWord_ != 0) {
        ctx.spinUntil([this] { return lockWord_ == 0; }, lockPollCost);
    }
    // No scheduling point between the final probe and the store: the
    // acquisition is atomic in virtual time.
    ctx.advance(config_.machine.nonTxStoreCost);
    nonTxConflict(ctx.id(), std::uintptr_t(&lockWord_), true);
    lockWord_ = 1;
}

void
Runtime::releaseGlobalLock(sim::ThreadContext& ctx)
{
    assert(lockWord_ != 0);
    ctx.advance(config_.machine.nonTxStoreCost);
    nonTxConflict(ctx.id(), std::uintptr_t(&lockWord_), true);
    lockWord_ = 0;
    ctx.sync();
}

void
Runtime::runIrrevocable(sim::ThreadContext& ctx, Tx& tx,
                        FunctionRef<void(Tx&)> body)
{
    tx.ctx_ = &ctx;
    acquireGlobalLock(ctx);
    tx.status_ = TxStatus::irrevocable;
    body(tx);
    tx.status_ = TxStatus::inactive;
    ++stats_[tx.tid_].irrevocableCommits;
    releaseGlobalLock(ctx);
}

void
Runtime::runAtomic(sim::ThreadContext& ctx, FunctionRef<void(Tx&)> body)
{
    if (config_.machine.vendor == Vendor::blueGeneQ)
        runAtomicBgq(ctx, body);
    else
        runAtomicFig1(ctx, body);
}

void
Runtime::runAtomicFig1(sim::ThreadContext& ctx,
                       FunctionRef<void(Tx&)> body)
{
    Tx& tx = *txs_[ctx.id()];
    int lock_retries = config_.retry.lockRetries;
    int persistent_retries = config_.retry.persistentRetries;
    int transient_retries = config_.retry.transientRetries;
    unsigned consecutive = 0;

    for (;;) {
        waitToBegin(ctx);
        const AbortCause cause = attempt(tx, ctx, body, false, true);
        if (cause == AbortCause::none)
            return;

        ++consecutive;
        const bool lock_held = lockWord_ != 0 ||
                               cause == AbortCause::lockConflict;
        bool retry;
        if (lock_held) {
            retry = --lock_retries > 0;
        } else if (isPersistent(cause)) {
            retry = --persistent_retries > 0;
        } else {
            retry = --transient_retries > 0;
        }
        if (retry) {
            backoff(ctx, consecutive);
            continue;
        }
        runIrrevocable(ctx, tx, body);
        return;
    }
}

void
Runtime::runAtomicBgq(sim::ThreadContext& ctx,
                      FunctionRef<void(Tx&)> body)
{
    Tx& tx = *txs_[ctx.id()];
    const bool lazy = lazySubscription();

    // Adaptation: a thread whose transactions recently kept falling
    // back to the lock is not allowed to retry (Section 3).
    double& score = bgqFallbackScore_[ctx.id()];
    int retries = config_.bgqMaxRetries;
    if (config_.bgqAdaptation && score > 2.5)
        retries = 0;

    unsigned consecutive = 0;
    for (;;) {
        waitToBegin(ctx);
        const AbortCause cause = attempt(tx, ctx, body, lazy, true);
        if (cause == AbortCause::none) {
            score *= 0.9;
            return;
        }
        ++consecutive;
        if (retries-- > 0) {
            backoff(ctx, consecutive);
            continue;
        }
        runIrrevocable(ctx, tx, body);
        score = score * 0.9 + 1.0;
        return;
    }
}

void
Runtime::runConstrained(sim::ThreadContext& ctx,
                        FunctionRef<void(Tx&)> body)
{
    if (!config_.machine.hasConstrainedTx) {
        throw std::logic_error(
            "constrained transactions unsupported on " +
            config_.machine.name);
    }

    Tx& tx = *txs_[ctx.id()];
    tx.constrained_ = true;
    unsigned attempts = 0;

    for (;;) {
        const AbortCause cause = attempt(tx, ctx, body, true, true);
        if (cause == AbortCause::none)
            break;

        ++attempts;
        if (attempts >= escalationThreshold && constrainedOwner_ < 0) {
            // Hardware guarantees eventual completion by escalating:
            // model this as exclusive priority that blocks new
            // transactions and survives all conflicts.
            constrainedOwner_ = int(ctx.id());
            tx.unkillable_ = true;
        }
        backoff(ctx, attempts);
    }

    if (constrainedOwner_ == int(ctx.id()))
        constrainedOwner_ = -1;
    tx.unkillable_ = false;
    tx.constrained_ = false;
}

bool
Runtime::runRollbackOnly(sim::ThreadContext& ctx,
                         FunctionRef<void(Tx&)> body)
{
    if (!config_.machine.hasSuspendResume) {
        throw std::logic_error("rollback-only tx unsupported on " +
                               config_.machine.name);
    }

    Tx& tx = *txs_[ctx.id()];
    tx.ctx_ = &ctx;
    try {
        tx.resetAttemptState();
        ctx.advance(config_.machine.txBeginCost);
        ctx.sync();
        tx.status_ = TxStatus::rollbackOnly;
        body(tx);

        ctx.advance(config_.machine.txEndCost);
        ctx.sync();
        for (const std::uintptr_t addr : tx.writeLog_) {
            const Tx::WriteEntry* entry = tx.writeBuffer_.find(addr);
            std::memcpy(reinterpret_cast<void*>(addr), &entry->value,
                        entry->size);
        }
        for (const auto& record : tx.deferredFrees_)
            NodePool::instance().free(record.ptr, record.bytes);
        ++stats_[tx.tid_].htmCommits;
        tx.status_ = TxStatus::inactive;
        return true;
    } catch (const TxAbortException& abort) {
        for (const auto& record : tx.speculativeAllocs_)
            NodePool::instance().free(record.ptr, record.bytes);
        tx.status_ = TxStatus::inactive;
        ctx.advance(config_.machine.txAbortCost);
        ctx.sync();
        recordAbort(tx, abort.cause);
        return false;
    }
}

// --------------------------------------------------------------------
// Machine services
// --------------------------------------------------------------------

bool
Runtime::isPersistent(AbortCause cause) const
{
    // Intel and POWER8 report a persistence hint; the paper's runtime
    // treats zEC12 capacity overflows as persistent in software
    // (Section 3). Either way the same causes are persistent.
    return cause == AbortCause::capacityOverflow ||
           cause == AbortCause::wayConflict;
}

void
Runtime::acquireSpecId(Tx& tx, sim::ThreadContext& ctx)
{
    if (config_.machine.speculationIds == 0)
        return;

    TxStats& stats = stats_[tx.tid_];
    while (freeSpecIds_ == 0) {
        if (retiredSpecIds_ > 0) {
            // This thread performs the reclamation pass that scrubs
            // the L2 directory and recycles the retired IDs.
            ctx.advance(config_.machine.specIdReclaimCost);
            ctx.sync();
            freeSpecIds_ += retiredSpecIds_;
            retiredSpecIds_ = 0;
            ++stats.specIdReclaims;
        } else {
            ++stats.specIdWaits;
            ctx.spinUntil([this] { return freeSpecIds_ > 0 ||
                                          retiredSpecIds_ > 0; },
                          lockPollCost);
        }
    }
    --freeSpecIds_;
    tx.holdsSpecId_ = true;
}

void
Runtime::releaseSpecId(Tx& tx)
{
    if (!tx.holdsSpecId_)
        return;
    tx.holdsSpecId_ = false;
    // Released IDs are only reusable after a reclamation pass.
    ++retiredSpecIds_;
}

} // namespace htmsim::htm

#include "runtime.hh"

#include "node_pool.hh"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace htmsim::htm
{

namespace
{

unsigned
log2Exact(std::size_t value)
{
    assert(value > 0 && (value & (value - 1)) == 0 &&
           "granularities must be powers of two");
    return unsigned(std::countr_zero(value));
}

} // namespace

const char*
txEventKindName(TxEventKind kind)
{
    switch (kind) {
      case TxEventKind::begin: return "begin";
      case TxEventKind::commit: return "commit";
      case TxEventKind::abort: return "abort";
      case TxEventKind::lockAcquired: return "lock-acquired";
      case TxEventKind::lockReleased: return "lock-released";
      case TxEventKind::fallbackCommit: return "fallback-commit";
      case TxEventKind::nonSpecCommit: return "nonspec-commit";
    }
    return "?";
}

Runtime::Runtime(RuntimeConfig config, unsigned num_threads)
    : config_(std::move(config))
{
    const MachineConfig& machine = config_.machine;
    assert(num_threads >= 1 && num_threads <= kMaxTxThreads);
    const bool bgq = machine.vendor == Vendor::blueGeneQ;
    const bool ideal = config_.backend == BackendKind::idealHtm;

    // Blue Gene/Q refines its worst-case 128-byte granularity by
    // execution mode: 8 bytes short-running, 64 bytes long-running
    // (Section 2.1).
    std::size_t granularity = machine.conflictGranularity;
    if (bgq)
        granularity = config_.bgq.mode == BgqMode::shortRunning ? 8 : 64;
    conflictShift_ = log2Exact(granularity);
    capacityShift_ = log2Exact(machine.capacityLineBytes);

    // Resolve the effective machine parameters once. Blue Gene/Q folds
    // its mode-dependent extras in here (the long-running L1
    // invalidation at begin, the short-running L1-bypass latency per
    // access); the ideal-HTM oracle zeroes every overhead and
    // randomness source so only true data and lock conflicts remain.
    txBeginCost_ = machine.txBeginCost;
    txEndCost_ = machine.txEndCost;
    txAbortCost_ = machine.txAbortCost;
    txLoadCost_ = machine.txLoadCost;
    txStoreCost_ = machine.txStoreCost;
    lazySubscription_ = bgq && config_.bgq.mode == BgqMode::longRunning;
    if (lazySubscription_)
        txBeginCost_ += machine.longModeBeginExtra;
    if (bgq && config_.bgq.mode == BgqMode::shortRunning) {
        txLoadCost_ += machine.shortModeAccessExtra;
        txStoreCost_ += machine.shortModeAccessExtra;
    }
    prefetchProb_ = config_.intel.prefetchEnabled
                        ? machine.prefetchConflictProb
                        : 0.0;
    cacheFetchProb_ = machine.cacheFetchAbortProb;
    specIdPool_ = machine.speculationIds;
    if (ideal) {
        txBeginCost_ = 0;
        txEndCost_ = 0;
        txAbortCost_ = 0;
        prefetchProb_ = 0.0;
        cacheFetchProb_ = 0.0;
        specIdPool_ = 0;
    }

    // Hybrid-backend flags, resolved once: every software-TM hook on
    // the shared hot paths gates on stmEnabled_, so other backends —
    // and hybrid with the software path switched off — execute the
    // unmodified instruction stream (the A/B bit-identity contract).
    stmEnabled_ = config_.backend == BackendKind::hybrid &&
                  config_.hybrid.stmEnabled;
    stmEagerSub_ = config_.hybrid.subscription ==
                   HybridRuntimeConfig::Subscription::eager;

    capacityModel_ =
        makeCapacityModel(machine, config_.ignoreCapacity || ideal);
    backend_ = makeBackend(config_, num_threads);
    observer_ = config_.observer;
    hazard_.reset(config_.hazard, num_threads);
    // The orec table is only materialized when the software path is
    // live: every stm_ access on the shared paths is behind the
    // stmEnabled_ gate, and skipping the (potentially large) heap
    // allocation keeps non-hybrid runs' allocation sequence — and
    // therefore the address-hashed conflict behavior — identical to a
    // build without the hybrid layer.
    if (stmEnabled_)
        stm_.reset(config_.hybrid, conflictShift_);
    stats_.resize(num_threads);
    activePerCore_.assign(machine.numCores, 0);
    freeSpecIds_ = specIdPool_;

    txs_.reserve(num_threads);
    for (unsigned tid = 0; tid < num_threads; ++tid) {
        auto tx = std::make_unique<Tx>();
        tx->runtime_ = this;
        tx->tid_ = tid;
        txs_.push_back(std::move(tx));
    }
}

Runtime::~Runtime() = default;

TxStats
Runtime::stats() const
{
    TxStats total;
    for (const auto& per_thread : stats_)
        total += per_thread;
    return total;
}

// --------------------------------------------------------------------
// Conflict resolution
// --------------------------------------------------------------------

bool
Runtime::doomTx(unsigned victim_tid, AbortCause cause)
{
    Tx& victim = *txs_[victim_tid];
    if (victim.status_ != TxStatus::active || victim.unkillable_)
        return false;
    victim.status_ = TxStatus::doomed;
    victim.doomCause_ = cause;
    return true;
}

void
Runtime::emitConflict(unsigned attacker_tid, unsigned victim_tid,
                      bool attacker_non_tx, std::uintptr_t line,
                      Cycles cycles)
{
    if (observer_ == nullptr)
        return;
    observer_->onConflict(TxConflictEvent{
        std::uint16_t(attacker_tid), std::uint16_t(victim_tid),
        txs_[attacker_tid]->site_, txs_[victim_tid]->site_,
        attacker_non_tx, line, cycles});
}

void
Runtime::bindSite(unsigned tid, TxSiteId site)
{
    txs_[tid]->site_ = site;
}

void
Runtime::resolveConflict(Tx& attacker, unsigned victim_tid,
                         AbortCause victim_cause, std::uintptr_t line)
{
    Tx& victim = *txs_[victim_tid];
    if (victim.status_ != TxStatus::active)
        return; // already dying; its marks are stale

    // Conflict events name the *winning* side the attacker and the
    // *aborting* side the victim, whichever way arbitration went, so
    // the txprof conflict matrix always pairs survivor with casualty.
    const Cycles now = attacker.ctx_->now();

    if (victim.unkillable_) {
        emitConflict(victim_tid, attacker.tid_, false, line, now);
        attacker.selfAbort(AbortCause::dataConflict);
    }

    switch (config_.policy) {
      case ConflictPolicy::attackerWins:
        if (doomTx(victim_tid, victim_cause))
            emitConflict(attacker.tid_, victim_tid, false, line, now);
        break;
      case ConflictPolicy::attackerLoses:
        emitConflict(victim_tid, attacker.tid_, false, line, now);
        attacker.selfAbort(AbortCause::dataConflict);
        break;
      case ConflictPolicy::olderWins:
        if (victim.startOrder_ < attacker.startOrder_) {
            emitConflict(victim_tid, attacker.tid_, false, line, now);
            attacker.selfAbort(AbortCause::dataConflict);
        } else if (doomTx(victim_tid, victim_cause)) {
            emitConflict(attacker.tid_, victim_tid, false, line, now);
        }
        break;
    }
}

void
Runtime::nonTxConflict(unsigned tid, std::uintptr_t addr, bool is_write,
                       Cycles now)
{
    if (stmEnabled_ && is_write) {
        // Hybrid instrumentation gate: every direct store — from
        // irrevocable sections, suspended mode, non-transactional
        // accessors, the lock words, or a software commit's write-back
        // — stamps the address's orec, so concurrent software
        // validation observes it. Before the directory early-return:
        // the orec must be stamped even when no hardware transaction
        // is tracking the line.
        stm_.onDirectStore(addr);
    }

    const std::uintptr_t line_number = conflictLineOf(addr);
    ConflictLineState* line = findDirectoryLine(line_number);
    if (line == nullptr)
        return;

    // A non-transactional access wins against any transaction holding
    // the line (strong isolation via cache coherence, Section 2).
    if (line->writer >= 0 && line->writer != int(tid)) {
        if (doomTx(unsigned(line->writer), AbortCause::dataConflict))
            emitConflict(tid, unsigned(line->writer), true,
                         line_number, now);
    }
    if (is_write) {
        // Walk a copy: dooming a reader clears its directory marks.
        const ReaderSet readers = line->readers;
        readers.forEachExcept(tid, [&](unsigned reader) {
            if (doomTx(reader, AbortCause::dataConflict))
                emitConflict(tid, reader, true, line_number, now);
        });
    }
}

// --------------------------------------------------------------------
// Begin / commit / rollback
// --------------------------------------------------------------------

void
Runtime::txBegin(Tx& tx, sim::ThreadContext& ctx, bool lazy_subscribe)
{
    tx.ctx_ = &ctx;
    tx.resetAttemptState();
    tx.attemptStart_ = ctx.now();

    if (hazard_.enabled())
        hazard_.onAttemptStart(tx.tid_, ctx.now());

    acquireSpecId(tx, ctx);

    ctx.advance(txBeginCost_);
    ctx.sync();

    tx.status_ = TxStatus::active;
    tx.startOrder_ = ++startCounter_;
    ++activePerCore_[config_.machine.coreOf(tx.tid_)];
    emitEvent(TxEventKind::begin, tx.tid_, tx.site_, ctx.now(),
              tx.attemptStart_);

    if (!lazy_subscribe && !tx.constrained_) {
        // Figure 1, lines 13/26: read the lock word transactionally so
        // a later acquisition aborts us; abort at once if it is held.
        const auto lock = tx.load(&lockWord_);
        if (lock != 0)
            tx.selfAbort(AbortCause::lockConflict);
    }

    if (stmEnabled_ && !tx.constrained_) {
        if (stmEagerSub_) {
            // Eager subscription: the clock cell joins the read set
            // like the lock word above, so a software commit's
            // publication dooms this transaction on the spot.
            (void)tx.load(stm_.clockCellAddr());
        } else {
            // Lazy subscription: snapshot now, compare at commit.
            tx.stmClockSnap_ = stm_.clockCell();
        }
    }
}

void
Runtime::txCommit(Tx& tx, sim::ThreadContext& ctx, bool lazy_subscribe)
{
    Cycles end_cost = txEndCost_;
    if (stmEnabled_) {
        // The hybrid fast path is instrumented: a committing hardware
        // transaction advances the software clock and stamps the orec
        // of every written line so concurrent software validation
        // observes it — the overhead the hybrid-TM bounds literature
        // proves some part of the fast path must pay.
        end_cost += config_.hybrid.htmInstrumentationCost +
                    config_.hybrid.htmOrecPublishCost *
                        Cycles(tx.storeLines_);
    }
    ctx.advance(end_cost);
    ctx.sync();
    tx.checkDoom();

    if (hazard_.enabled()) {
        // Last chance for this attempt's armed hazards: an interrupt
        // or a spurious event hitting between the body's final access
        // and tend still kills the whole attempt.
        const AbortCause hazard =
            hazard_.onCommitPoint(tx.tid_, ctx.now());
        if (hazard != AbortCause::none)
            tx.selfAbort(hazard);
    }

    if (lazy_subscribe && lockWord_ != 0) {
        // Blue Gene/Q long-running mode: lazy subscription checks the
        // lock at the end of the transaction [12].
        tx.selfAbort(AbortCause::lockConflict);
    }

    if (stmEnabled_ && !stmEagerSub_ && !tx.constrained_ &&
        stm_.clockCell() != tx.stmClockSnap_) {
        // Lazy subscription: a software transaction committed since
        // begin. Any true overlap already doomed us per address during
        // its write-back; the clock compare is the conservative
        // NOrec-style belt-and-braces the mode models.
        tx.selfAbort(AbortCause::stmConflict);
    }

    // Commit point: no scheduling points below, so write-back and
    // directory cleanup are atomic in virtual time. The write-back
    // follows the append-only log (its order matters for overlapping
    // stores); directory cleanup is per-line idempotent, so it scans
    // the line table directly instead of re-probing it per log entry.
    for (const std::uintptr_t addr : tx.writeLog_) {
        const Tx::WriteEntry* entry = tx.writeBuffer_.find(addr);
        std::memcpy(reinterpret_cast<void*>(addr), &entry->value,
                    entry->size);
    }
    if (stmEnabled_ && !tx.writeLog_.empty()) {
        // Hybrid instrumentation: publish this commit's writes to the
        // software validation state (one clock tick, all written
        // lines' orecs). The clock *cell* is left alone — only
        // software commits store to it, so hardware commits never doom
        // fellow hardware transactions through the subscription
        // channel (the Hybrid-NOrec serialize-everything trap).
        const std::uint64_t wv = stm_.advanceClock();
        tx.conflictLines_.forEach(
            [&](std::uintptr_t line_number, std::uint8_t flags) {
                if (flags & Tx::lineWritten)
                    stm_.bumpOrec(stm_.indexOfLine(line_number), wv);
            });
    }
    tx.conflictLines_.forEach(
        [&](std::uintptr_t line_number, std::uint8_t flags) {
            if (flags & Tx::lineRead)
                clearDirectoryReader(line_number, tx.tid_);
            if (flags & Tx::lineWritten)
                clearDirectoryWriter(line_number, tx.tid_);
        });
    for (const auto& record : tx.deferredFrees_) {
        stmOnFree(record.ptr, record.bytes);
        NodePool::instance().free(record.ptr, record.bytes);
    }

    if (config_.collectTrace)
        trace_.record(tx.loadLines_, tx.storeLines_);

    TxStats& stats = stats_[tx.tid_];
    if (tx.constrained_)
        ++stats.constrainedCommits;
    else
        ++stats.htmCommits;
    stats.committedTxCycles += ctx.now() - tx.attemptStart_;

    if (tx.status_ == TxStatus::active)
        --activePerCore_[config_.machine.coreOf(tx.tid_)];
    releaseSpecId(tx);
    tx.status_ = TxStatus::inactive;
    // Emitted after the write-back walk: the event marks the point at
    // which the transaction's stores became globally visible.
    emitEvent(TxEventKind::commit, tx.tid_, tx.site_, ctx.now(),
              tx.attemptStart_);
}

void
Runtime::rollback(Tx& tx, sim::ThreadContext& ctx)
{
    tx.conflictLines_.forEach(
        [&](std::uintptr_t line_number, std::uint8_t flags) {
            if (flags & Tx::lineRead)
                clearDirectoryReader(line_number, tx.tid_);
            if (flags & Tx::lineWritten)
                clearDirectoryWriter(line_number, tx.tid_);
        });
    for (const auto& record : tx.speculativeAllocs_)
        NodePool::instance().free(record.ptr, record.bytes);

    if (tx.status_ == TxStatus::active ||
        tx.status_ == TxStatus::doomed) {
        --activePerCore_[config_.machine.coreOf(tx.tid_)];
    }
    releaseSpecId(tx);
    tx.status_ = TxStatus::inactive;
    tx.suspended_ = false;

    ctx.advance(txAbortCost_);
    ctx.sync();
    stats_[tx.tid_].wastedTxCycles += ctx.now() - tx.attemptStart_;
}

void
Runtime::recordAbort(Tx& tx, AbortCause cause)
{
    emitEvent(TxEventKind::abort, tx.tid_, tx.site_, tx.ctx_->now(),
              tx.attemptStart_, cause);
    TxStats& stats = stats_[tx.tid_];
    stats.trueCauseAborts[std::size_t(cause)]++;

    AbortCategory reported;
    if (!config_.machine.hasAbortCodes) {
        reported = AbortCategory::unclassified;
    } else if (lockWord_ != 0 || cause == AbortCause::lockConflict) {
        // The retry driver classifies lock conflicts by inspecting the
        // lock after the abort (Figure 1 line 13); a conflict whose
        // lock was already released again is misattributed to data —
        // exactly as the paper describes.
        reported = AbortCategory::lockConflict;
    } else {
        reported = categorize(cause);
    }
    stats.reportedAborts[std::size_t(reported)]++;
}

AbortCause
Runtime::attempt(Tx& tx, sim::ThreadContext& ctx,
                 FunctionRef<void(Tx&)> body, bool lazy_subscribe,
                 bool record_stats)
{
    try {
        txBegin(tx, ctx, lazy_subscribe);
        body(tx);
        txCommit(tx, ctx, lazy_subscribe);
        return AbortCause::none;
    } catch (const TxAbortException& abort) {
        // Doom by a peer overrides the locally thrown cause.
        const AbortCause cause = tx.status_ == TxStatus::doomed
                                     ? tx.doomCause_
                                     : abort.cause;
        rollback(tx, ctx);
        if (record_stats)
            recordAbort(tx, cause);
        return cause == AbortCause::none ? AbortCause::dataConflict
                                         : cause;
    }
}

// --------------------------------------------------------------------
// Attempt drivers
// --------------------------------------------------------------------

void
Runtime::waitToBegin(sim::ThreadContext& ctx)
{
    // Figure 1 line 9: wait for the global lock to be released before
    // beginning, to avoid the lemming effect [8].
    const Cycles wait_start = ctx.now();
    if (lockWord_ != 0) {
        ctx.spinUntil([this] { return lockWord_ == 0; }, lockPollCost);
    }
    if (constrainedOwner_ >= 0 && constrainedOwner_ != int(ctx.id())) {
        ctx.spinUntil([this] { return constrainedOwner_ < 0; },
                      lockPollCost);
    }
    stats_[ctx.id()].lockWaitCycles += ctx.now() - wait_start;
}

void
Runtime::backoff(sim::ThreadContext& ctx, unsigned consecutive_aborts,
                 bool deterministic_jitter)
{
    const unsigned shift =
        std::min(consecutive_aborts, config_.maxBackoffShift);
    const Cycles base = config_.backoffBase << shift;
    Cycles jitter;
    if (deterministic_jitter) {
        // Hardened policy: jitter is a pure hash of (tid, consecutive
        // aborts). The thread's main rng stream is untouched, so a
        // replayed hazard schedule sees the identical retry cadence
        // no matter how many backoffs preceded it.
        std::uint64_t h = (std::uint64_t(ctx.id()) << 32) |
                          consecutive_aborts;
        jitter = Cycles(sim::splitMix64(h) % (base + 1));
    } else {
        jitter = Cycles(double(base) * ctx.rng().nextDouble());
    }
    ctx.advance(base + jitter);
    ctx.sync();
    stats_[ctx.id()].backoffCycles += base + jitter;
}

void
Runtime::acquireGlobalLock(sim::ThreadContext& ctx)
{
    ctx.sync();
    const Cycles wait_start = ctx.now();
    if (lockWord_ != 0) {
        ctx.spinUntil([this] { return lockWord_ == 0; }, lockPollCost);
    }
    // No scheduling point between the final probe and the store: the
    // acquisition is atomic in virtual time.
    ctx.advance(config_.machine.nonTxStoreCost);
    nonTxConflict(ctx.id(), std::uintptr_t(&lockWord_), true,
                  ctx.now());
    lockWord_ = 1;
    stats_[ctx.id()].lockWaitCycles += ctx.now() - wait_start;
    lockHoldStart_ = ctx.now();
    emitEvent(TxEventKind::lockAcquired, ctx.id(),
              txs_[ctx.id()]->site_, ctx.now(), wait_start);
}

void
Runtime::releaseGlobalLock(sim::ThreadContext& ctx)
{
    assert(lockWord_ != 0);
    ctx.advance(config_.machine.nonTxStoreCost);
    nonTxConflict(ctx.id(), std::uintptr_t(&lockWord_), true,
                  ctx.now());
    lockWord_ = 0;
    emitEvent(TxEventKind::lockReleased, ctx.id(),
              txs_[ctx.id()]->site_, ctx.now(), lockHoldStart_);
    ctx.sync();
}

void
Runtime::runIrrevocable(sim::ThreadContext& ctx, Tx& tx,
                        FunctionRef<void(Tx&)> body)
{
    acquireGlobalLock(ctx);
    const Cycles hold_start = ctx.now();
    if (hazard_.enabled()) {
        // Holder preemption: the "OS" schedules the fresh lock holder
        // out. The stall is charged while the lock is held, so every
        // section spinning behind it convoys — the pathology the
        // hardened policy's storm adaptation bounds.
        const Cycles stall = hazard_.lockHolderStall(tx.tid_);
        if (stall != 0) {
            ctx.advance(stall);
            ctx.sync();
            TxStats& stats = stats_[tx.tid_];
            ++stats.hazardPreemptStalls;
            stats.hazardStallCycles += stall;
        }
    }
    {
        IrrevocableScope scope(tx, ctx);
        body(tx);
        ++stats_[tx.tid_].irrevocableCommits;
        // Still under the lock: this is the section's serialization
        // point, which is what the simcheck oracle orders by.
        emitEvent(TxEventKind::fallbackCommit, tx.tid_, tx.site_,
                  ctx.now(), hold_start);
    }
    // The lock release stays success-path-only on purpose: a body that
    // throws out of irrevocable execution is a programming error (it
    // cannot be rolled back), and holding the lock makes the stall
    // visible instead of silently continuing unserialized. The scope
    // guard above still restores the Tx status for the unwind.
    releaseGlobalLock(ctx);
    stats_[tx.tid_].fallbackCycles += ctx.now() - hold_start;
}

AbortCause
Runtime::runPolicyAttempts(sim::ThreadContext& ctx, RetryPolicy& policy,
                           FunctionRef<void(Tx&)> body)
{
    Tx& tx = *txs_[ctx.id()];
    policy.beginSection();
    for (;;) {
        const AbortCause cause =
            attempt(tx, ctx, body, lazySubscription_, true);
        if (cause == AbortCause::none) {
            policy.onCommit();
            return AbortCause::none;
        }
        if (!policy.onAbort(cause, lockWord_ != 0))
            return cause;
    }
}

void
Runtime::runConstrained(sim::ThreadContext& ctx,
                        FunctionRef<void(Tx&)> body)
{
    if (!config_.machine.hasConstrainedTx) {
        throw std::logic_error(
            "constrained transactions unsupported on " +
            config_.machine.name);
    }

    Tx& tx = *txs_[ctx.id()];
    tx.constrained_ = true;
    unsigned attempts = 0;

    for (;;) {
        const AbortCause cause = attempt(tx, ctx, body, true, true);
        if (cause == AbortCause::none)
            break;

        ++attempts;
        if (attempts >= escalationThreshold && constrainedOwner_ < 0) {
            // Hardware guarantees eventual completion by escalating:
            // model this as exclusive priority that blocks new
            // transactions and survives all conflicts.
            constrainedOwner_ = int(ctx.id());
            tx.unkillable_ = true;
        }
        backoff(ctx, attempts);
    }

    if (constrainedOwner_ == int(ctx.id()))
        constrainedOwner_ = -1;
    tx.unkillable_ = false;
    tx.constrained_ = false;
}

bool
Runtime::runRollbackOnly(sim::ThreadContext& ctx,
                         FunctionRef<void(Tx&)> body)
{
    if (!config_.machine.hasSuspendResume) {
        throw std::logic_error("rollback-only tx unsupported on " +
                               config_.machine.name);
    }

    Tx& tx = *txs_[ctx.id()];
    tx.ctx_ = &ctx;
    try {
        tx.resetAttemptState();
        tx.attemptStart_ = ctx.now();
        ctx.advance(txBeginCost_);
        ctx.sync();
        tx.status_ = TxStatus::rollbackOnly;
        body(tx);

        ctx.advance(txEndCost_);
        ctx.sync();
        for (const std::uintptr_t addr : tx.writeLog_) {
            const Tx::WriteEntry* entry = tx.writeBuffer_.find(addr);
            std::memcpy(reinterpret_cast<void*>(addr), &entry->value,
                        entry->size);
        }
        for (const auto& record : tx.deferredFrees_)
            NodePool::instance().free(record.ptr, record.bytes);
        ++stats_[tx.tid_].htmCommits;
        stats_[tx.tid_].committedTxCycles += ctx.now() - tx.attemptStart_;
        tx.status_ = TxStatus::inactive;
        return true;
    } catch (const TxAbortException& abort) {
        for (const auto& record : tx.speculativeAllocs_)
            NodePool::instance().free(record.ptr, record.bytes);
        tx.status_ = TxStatus::inactive;
        ctx.advance(txAbortCost_);
        ctx.sync();
        stats_[tx.tid_].wastedTxCycles += ctx.now() - tx.attemptStart_;
        recordAbort(tx, abort.cause);
        return false;
    }
}

// --------------------------------------------------------------------
// Machine services
// --------------------------------------------------------------------

void
Runtime::acquireSpecId(Tx& tx, sim::ThreadContext& ctx)
{
    if (specIdPool_ == 0)
        return;

    TxStats& stats = stats_[tx.tid_];
    while (freeSpecIds_ == 0) {
        if (retiredSpecIds_ > 0) {
            // This thread performs the reclamation pass that scrubs
            // the L2 directory and recycles the retired IDs.
            ctx.advance(config_.machine.specIdReclaimCost);
            ctx.sync();
            freeSpecIds_ += retiredSpecIds_;
            retiredSpecIds_ = 0;
            ++stats.specIdReclaims;
        } else {
            ++stats.specIdWaits;
            ctx.spinUntil([this] { return freeSpecIds_ > 0 ||
                                          retiredSpecIds_ > 0; },
                          lockPollCost);
        }
    }
    --freeSpecIds_;
    tx.holdsSpecId_ = true;
}

void
Runtime::releaseSpecId(Tx& tx)
{
    if (!tx.holdsSpecId_)
        return;
    tx.holdsSpecId_ = false;
    // Released IDs are only reusable after a reclamation pass.
    ++retiredSpecIds_;
}

} // namespace htmsim::htm

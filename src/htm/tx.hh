/**
 * @file
 * Per-thread transaction context: the API application code programs
 * against inside an atomic section.
 *
 * A Tx is handed to the body passed to Runtime::atomic(). All shared
 * loads and stores inside the body must go through Tx::load()/store()
 * (the analogue of STAMP's TM_READ/TM_WRITE); transactional allocation
 * must use Tx::create()/destroy() (TM_MALLOC/TM_FREE). The same body
 * code runs unchanged when the section falls back to the global lock:
 * the Tx is then in irrevocable mode and accesses pass straight
 * through to memory with strong isolation.
 */

#ifndef HTMSIM_HTM_TX_HH
#define HTMSIM_HTM_TX_HH

#include <cassert>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "abort.hh"
#include "flat_table.hh"
#include "site.hh"
#include "sim/scheduler.hh"

namespace htmsim::htm
{

class IrrevocableScope;
class Runtime;

/** Lifecycle state of a transaction context. */
enum class TxStatus : std::uint8_t
{
    inactive,
    active,
    doomed,       ///< aborted by a peer; unwinds at the next tx event
    irrevocable,  ///< running under the global lock
    rollbackOnly, ///< POWER8 ROT: buffering without conflict detection
    software,     ///< hybrid backend's STM slow path (stm.hh)
};

/**
 * Transaction context for one simulated thread.
 *
 * Supported access types are trivially copyable and at most 8 bytes
 * (word-granular store buffering); every location must be accessed
 * with a single consistent type, which all library data structures
 * honor.
 */
class Tx
{
  public:
    /** Transactional load (TM_READ). */
    template <typename T>
    T
    load(const T* addr)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        const std::uint64_t word = loadWord(addr, sizeof(T));
        T value;
        std::memcpy(&value, &word, sizeof(T));
        return value;
    }

    /** Transactional store (TM_WRITE). */
    template <typename T>
    void
    store(T* addr, T value)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        std::uint64_t word = 0;
        std::memcpy(&word, &value, sizeof(T));
        storeWord(addr, sizeof(T), word);
    }

    /** Charge @p cycles of in-transaction compute work. */
    void work(sim::Cycles cycles);

    /**
     * Transactionally allocate and construct (TM_MALLOC). The object's
     * memory is charged to the transactional store footprint — real
     * HTM tracks initializing stores too — and is released if the
     * transaction aborts. T must be trivially destructible.
     */
    template <typename T, typename... Args>
    T*
    create(Args&&... args)
    {
        static_assert(std::is_trivially_destructible_v<T>);
        void* memory = allocBytes(sizeof(T));
        return ::new (memory) T(std::forward<Args>(args)...);
    }

    /**
     * Transactionally free (TM_FREE): the memory is reclaimed only if
     * the transaction commits.
     */
    template <typename T>
    void
    destroy(T* ptr)
    {
        static_assert(std::is_trivially_destructible_v<T>);
        deallocBytes(ptr, sizeof(T));
    }

    /** Raw transactional allocation; footprint-charged like create(). */
    void* allocBytes(std::size_t bytes);

    /** Raw deferred free. */
    void deallocBytes(void* ptr, std::size_t bytes);

    /** Explicit abort (tabort). Not allowed in irrevocable mode. */
    [[noreturn]] void abortTx();

    /**
     * POWER8 suspend: subsequent accesses are non-transactional until
     * resume(). Only valid on machines with suspend/resume support.
     */
    void suspend();

    /** POWER8 resume. */
    void resume();

    bool isSuspended() const { return suspended_; }
    bool isIrrevocable() const { return status_ == TxStatus::irrevocable; }
    TxStatus status() const { return status_; }

    /** Owning simulated thread id. */
    unsigned tid() const { return tid_; }

    /** Static site of the current atomic section (0 = unregistered). */
    TxSiteId site() const { return site_; }

    sim::ThreadContext& ctx() { return *ctx_; }
    sim::Rng& rng() { return ctx_->rng(); }
    Runtime& runtime() { return *runtime_; }

    /** Unique transactional load lines so far (capacity granularity). */
    std::uint32_t loadLines() const { return loadLines_; }
    /** Unique transactional store lines so far. */
    std::uint32_t storeLines() const { return storeLines_; }

  private:
    friend class IrrevocableScope;
    friend class Runtime;

    /// Buffered speculative value for one word.
    struct WriteEntry
    {
        std::uint64_t value;
        std::uint8_t size;
    };

    /// One deferred or speculative allocation.
    struct AllocRecord
    {
        void* ptr;
        std::size_t bytes;
    };

    /// Flag bits used in the line maps.
    static constexpr std::uint8_t lineRead = 1;
    static constexpr std::uint8_t lineWritten = 2;

    /// zEC12 constrained-transaction limits (Section 2.2). The 256-byte
    /// operand footprint is approximated as four cache lines.
    static constexpr std::uint32_t constrainedMaxOps() { return 32; }
    static constexpr std::size_t constrainedMaxLines() { return 4; }

    std::uint64_t loadWord(const void* addr, std::size_t size);
    void storeWord(void* addr, std::size_t size, std::uint64_t value);

    /// Software-path access slow paths (hybrid backend; stm.cc):
    /// orec-checked read / buffered write with orec logging.
    std::uint64_t stmLoadWord(const void* addr, std::size_t size);
    void stmStoreWord(void* addr, std::size_t size,
                      std::uint64_t value);

    /// Insert/overwrite a buffered speculative store, logging new
    /// addresses for the commit-time write-back walk.
    void bufferStore(std::uintptr_t uaddr, std::size_t size,
                     std::uint64_t value);

    /// Model the Intel adjacent-line prefetcher (Section 5.1).
    void maybePrefetch(std::uintptr_t addr);
    /// Enforce the constrained-transaction footprint limit.
    void checkConstraintFootprint();

    /// Throw if a peer doomed this transaction.
    void checkDoom();

    /// Raise an abort originating from this transaction itself.
    [[noreturn]] void selfAbort(AbortCause cause);

    /// Register a line in the conflict directory (read or write).
    void touchConflictLine(std::uintptr_t addr, bool is_write);
    /// Account a line against the capacity budgets.
    void touchCapacityLine(std::uintptr_t addr, bool is_write);

    /// Reset all per-attempt state (buffers, sets, counters).
    void resetAttemptState();

    Runtime* runtime_ = nullptr;
    sim::ThreadContext* ctx_ = nullptr;
    unsigned tid_ = 0;

    TxStatus status_ = TxStatus::inactive;
    AbortCause doomCause_ = AbortCause::none;
    bool suspended_ = false;
    bool constrained_ = false;
    bool unkillable_ = false;
    bool holdsSpecId_ = false;
    std::uint64_t startOrder_ = 0;

    /// Static site of the enclosing atomic section; persists across
    /// retries and the global-lock fallback of that section.
    TxSiteId site_ = unknownTxSite;
    /// Virtual time the current attempt started (cycle attribution).
    sim::Cycles attemptStart_ = 0;

    /// Sentinel for the last-line memo: no line seen yet. Real line
    /// numbers are addresses shifted right, so all-ones is unreachable.
    static constexpr std::uintptr_t noLine = ~std::uintptr_t(0);

    FlatTable<WriteEntry> writeBuffer_;
    /// Buffered store addresses in first-store order: commit walks
    /// this log (O(touched words)) instead of iterating the table.
    std::vector<std::uintptr_t> writeLog_;
    /// Conflict-granularity lines touched: bit0 = read, bit1 = write.
    FlatTable<std::uint8_t> conflictLines_;
    /// Touched conflict lines in first-touch order: commit/rollback
    /// cleanup of the global directory walks this log.
    std::vector<std::uintptr_t> conflictLog_;
    /// Capacity-granularity lines touched: bit0 = read, bit1 = write.
    FlatTable<std::uint8_t> capacityLines_;
    /// Store lines per L1 set (Intel way-conflict model).
    FlatTable<unsigned> storeSetLines_;

    /// One-entry memo of the last (conflict, capacity) line pair whose
    /// read/write bookkeeping is complete: consecutive accesses to the
    /// same line (sequential scans) skip all table probes.
    std::uintptr_t memoReadConflictLine_ = noLine;
    std::uintptr_t memoReadCapacityLine_ = noLine;
    std::uintptr_t memoWriteConflictLine_ = noLine;
    std::uintptr_t memoWriteCapacityLine_ = noLine;

    std::uint32_t loadLines_ = 0;
    std::uint32_t storeLines_ = 0;
    std::uint32_t opCount_ = 0;

    /// Software path (hybrid backend): orecs touched this attempt
    /// (bit0 = read, bit1 = written), the read-version snapshot, and
    /// the clock epoch / clock-cell snapshot taken at begin. Plain
    /// members, allocated for every backend (determinism contract).
    FlatTable<std::uint8_t> stmOrecs_;
    std::uint64_t stmRv_ = 0;
    std::uint64_t stmEpoch_ = 0;
    std::uint64_t stmClockSnap_ = 0;

    std::vector<AllocRecord> speculativeAllocs_;
    std::vector<AllocRecord> deferredFrees_;
};

/**
 * RAII guard for irrevocable (non-speculative) execution of a Tx.
 *
 * Binds the thread context and flips the Tx to irrevocable mode for
 * the guard's scope; the destructor restores it to inactive even when
 * the body throws, so an exception can never leak a Tx stuck in
 * irrevocable mode into the next atomic section. Every irrevocable
 * path — the global-lock fallback, runLocked(), runNonSpeculative()
 * — goes through this guard.
 */
class IrrevocableScope
{
  public:
    IrrevocableScope(Tx& tx, sim::ThreadContext& ctx)
        : tx_(tx)
    {
        assert(tx.status_ == TxStatus::inactive);
        tx_.ctx_ = &ctx;
        tx_.status_ = TxStatus::irrevocable;
    }

    ~IrrevocableScope() { tx_.status_ = TxStatus::inactive; }

    IrrevocableScope(const IrrevocableScope&) = delete;
    IrrevocableScope& operator=(const IrrevocableScope&) = delete;

  private:
    Tx& tx_;
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_TX_HH

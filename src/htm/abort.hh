/**
 * @file
 * Transaction-abort vocabulary.
 *
 * Each machine reports aborts with its own reason codes (Table 1 of the
 * paper: zEC12 has 14, Intel Core 6, POWER8 11, Blue Gene/Q none). The
 * library normalizes them into the categories the paper's Figure 3 uses,
 * while keeping the per-machine persistent/transient hint that drives
 * the retry mechanism of Section 3.
 */

#ifndef HTMSIM_HTM_ABORT_HH
#define HTMSIM_HTM_ABORT_HH

#include <cstddef>
#include <cstdint>

namespace htmsim::htm
{

/**
 * Normalized abort causes. These are the breakdown categories of the
 * paper's Figure 3 plus the causes that feed them.
 */
enum class AbortCause : std::uint8_t
{
    none = 0,
    /** Read/write or write/write conflict on program data. */
    dataConflict,
    /** Conflict on the global fallback lock word. */
    lockConflict,
    /** Transactional footprint exceeded the machine's capacity. */
    capacityOverflow,
    /** L1 way-conflict eviction of a transactional store line. */
    wayConflict,
    /** zEC12 cache-fetch-related abort (transient, undocumented). */
    cacheFetch,
    /** Explicit tabort() by the program. */
    explicitAbort,
    /** Blue Gene/Q reports no reason codes at all. */
    unclassified,
    /** Injected spurious transient abort (hazard layer, hazard.hh). */
    spurious,
    /** Injected interrupt-style abort (hazard layer, hazard.hh). */
    interrupt,
    /** STM-side conflict: orec validation or clock-epoch failure on
     *  the hybrid backend's software slow path (stm.hh). Also raised
     *  by HTM attempts doomed through the clock-subscription channel. */
    stmConflict,
};

/** Number of AbortCause values; sizes every per-cause counter array
 *  (TxStats::trueCauseAborts, prof::SiteProfile::abortCauses) so the
 *  tallies grow in lockstep when a cause is added. */
constexpr std::size_t numAbortCauses =
    std::size_t(AbortCause::stmConflict) + 1;

/** Figure 3 reporting buckets. */
enum class AbortCategory : std::uint8_t
{
    capacityOverflow = 0,
    dataConflict,
    other,
    lockConflict,
    unclassified,
    numCategories,
};

/** Map a cause to its Figure 3 bucket. */
inline AbortCategory
categorize(AbortCause cause)
{
    switch (cause) {
      case AbortCause::capacityOverflow:
      case AbortCause::wayConflict:
        return AbortCategory::capacityOverflow;
      case AbortCause::dataConflict:
      // STM conflicts are data conflicts observed in software; they
      // report precisely because the slow path knows its own cause.
      case AbortCause::stmConflict:
        return AbortCategory::dataConflict;
      case AbortCause::lockConflict:
        return AbortCategory::lockConflict;
      case AbortCause::cacheFetch:
      case AbortCause::explicitAbort:
      // Injected hazards imitate what real reason codes call
      // "miscellaneous"/"interrupt" conditions, so they report as
      // "other" on machines that have codes at all.
      case AbortCause::spurious:
      case AbortCause::interrupt:
        return AbortCategory::other;
      default:
        return AbortCategory::unclassified;
    }
}

/** Human-readable cause name. */
const char* abortCauseName(AbortCause cause);

/** Human-readable category name. */
const char* abortCategoryName(AbortCategory category);

/**
 * Internal unwind signal thrown when a transaction must roll back.
 * Caught only by the retry driver in Runtime::atomic(); application
 * code must let it propagate.
 */
struct TxAbortException
{
    AbortCause cause;
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_ABORT_HH

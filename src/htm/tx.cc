#include "tx.hh"

#include <stdexcept>

#include "node_pool.hh"
#include "runtime.hh"

namespace htmsim::htm
{

namespace
{

std::uint64_t
readMemory(const void* addr, std::size_t size)
{
    std::uint64_t word = 0;
    std::memcpy(&word, addr, size);
    return word;
}

void
writeMemory(void* addr, std::size_t size, std::uint64_t word)
{
    std::memcpy(addr, &word, size);
}

} // namespace

void
Tx::checkDoom()
{
    if (status_ == TxStatus::doomed)
        throw TxAbortException{doomCause_};
}

void
Tx::selfAbort(AbortCause cause)
{
    throw TxAbortException{cause};
}

std::uint64_t
Tx::loadWord(const void* addr, std::size_t size)
{
    const MachineConfig& machine = runtime_->machine();
    const auto uaddr = std::uintptr_t(addr);

    if (status_ == TxStatus::irrevocable) {
        ctx_->advance(machine.nonTxLoadCost);
        ctx_->sync();
        runtime_->nonTxConflict(tid_, uaddr, false, ctx_->now());
        return readMemory(addr, size);
    }

    if (suspended_) {
        // POWER8 suspended mode: a plain access that does not grow the
        // transactional footprint. It still behaves like any non-
        // transactional access towards *other* transactions.
        ctx_->advance(machine.nonTxLoadCost);
        ctx_->sync();
        runtime_->nonTxConflict(tid_, uaddr, false, ctx_->now());
        if (const WriteEntry* entry = writeBuffer_.find(uaddr))
            return entry->value;
        return readMemory(addr, size);
    }

    if (status_ == TxStatus::rollbackOnly) {
        // ROT loads are untracked: no conflict detection at all.
        ctx_->advance(machine.txLoadCost);
        ctx_->sync();
        if (const WriteEntry* entry = writeBuffer_.find(uaddr))
            return entry->value;
        return readMemory(addr, size);
    }

    if (status_ == TxStatus::software) {
        // Hybrid backend's STM slow path: orec-validated read (stm.cc).
        return stmLoadWord(addr, size);
    }

    assert(status_ == TxStatus::active || status_ == TxStatus::doomed);
    runtime_->stats_[tid_].txLoads++;

    // Effective cost resolved at Runtime construction (Blue Gene/Q
    // short-mode L1 bypass already folded in).
    ctx_->advance(runtime_->txLoadCost_);
    ctx_->sync();
    checkDoom();

    if (constrained_ && ++opCount_ > constrainedMaxOps())
        throw std::logic_error("constrained tx exceeded operation limit");

    if (runtime_->cacheFetchProb_ > 0.0 &&
        rng().nextBool(runtime_->cacheFetchProb_)) {
        selfAbort(AbortCause::cacheFetch);
    }

    if (runtime_->hazard_.enabled()) {
        const AbortCause hazard =
            runtime_->hazard_.onAccess(tid_, ctx_->now());
        if (hazard != AbortCause::none)
            selfAbort(hazard);
    }

    // Read-mostly transactions keep the write buffer empty: one size
    // check skips the guaranteed-miss hash probe.
    if (!writeBuffer_.empty()) {
        if (const WriteEntry* buffered = writeBuffer_.find(uaddr)) {
            assert(buffered->size == size);
            return buffered->value;
        }
    }

    // Last-line memo: consecutive loads of a line whose read
    // bookkeeping is already complete (the sequential-scan pattern of
    // genome/ssca2/labyrinth) skip the conflict and capacity probes
    // entirely. The skipped calls would early-return anyway, so the
    // model — including the RNG draw order of the prefetcher — is
    // unchanged. The prefetch-probability test is hoisted out of
    // maybePrefetch: zero on three of the four machines.
    const std::uintptr_t conflict_line =
        uaddr >> runtime_->conflictShift_;
    const std::uintptr_t capacity_line =
        uaddr >> runtime_->capacityShift_;
    if (conflict_line == memoReadConflictLine_ &&
        capacity_line == memoReadCapacityLine_) {
        if (runtime_->prefetchProb_ > 0.0)
            maybePrefetch(uaddr);
        checkConstraintFootprint();
        return readMemory(addr, size);
    }

    touchConflictLine(uaddr, false);
    if (runtime_->prefetchProb_ > 0.0)
        maybePrefetch(uaddr);
    touchCapacityLine(uaddr, false);
    checkConstraintFootprint();
    memoReadConflictLine_ = conflict_line;
    memoReadCapacityLine_ = capacity_line;
    return readMemory(addr, size);
}

void
Tx::storeWord(void* addr, std::size_t size, std::uint64_t value)
{
    const MachineConfig& machine = runtime_->machine();
    const auto uaddr = std::uintptr_t(addr);

    if (status_ == TxStatus::irrevocable) {
        ctx_->advance(machine.nonTxStoreCost);
        ctx_->sync();
        runtime_->nonTxConflict(tid_, uaddr, true, ctx_->now());
        writeMemory(addr, size, value);
        return;
    }

    if (suspended_) {
        ctx_->advance(machine.nonTxStoreCost);
        ctx_->sync();
        runtime_->nonTxConflict(tid_, uaddr, true, ctx_->now());
        writeMemory(addr, size, value);
        return;
    }

    if (status_ == TxStatus::rollbackOnly) {
        // ROT stores are buffered and capacity-bounded (they occupy
        // TMCAM entries) but raise no conflicts.
        ctx_->advance(machine.txStoreCost);
        ctx_->sync();
        bufferStore(uaddr, size, value);
        touchCapacityLine(uaddr, true);
        return;
    }

    if (status_ == TxStatus::software) {
        // Hybrid backend's STM slow path: buffered write with orec
        // logging (stm.cc).
        stmStoreWord(addr, size, value);
        return;
    }

    assert(status_ == TxStatus::active || status_ == TxStatus::doomed);
    runtime_->stats_[tid_].txStores++;

    ctx_->advance(runtime_->txStoreCost_);
    ctx_->sync();
    checkDoom();

    if (constrained_ && ++opCount_ > constrainedMaxOps())
        throw std::logic_error("constrained tx exceeded operation limit");

    if (runtime_->cacheFetchProb_ > 0.0 &&
        rng().nextBool(runtime_->cacheFetchProb_)) {
        selfAbort(AbortCause::cacheFetch);
    }

    if (runtime_->hazard_.enabled()) {
        const AbortCause hazard =
            runtime_->hazard_.onAccess(tid_, ctx_->now());
        if (hazard != AbortCause::none)
            selfAbort(hazard);
    }

    // Same memo as loadWord, for the write flags.
    const std::uintptr_t conflict_line =
        uaddr >> runtime_->conflictShift_;
    const std::uintptr_t capacity_line =
        uaddr >> runtime_->capacityShift_;
    if (conflict_line == memoWriteConflictLine_ &&
        capacity_line == memoWriteCapacityLine_) {
        if (runtime_->prefetchProb_ > 0.0)
            maybePrefetch(uaddr);
        checkConstraintFootprint();
        bufferStore(uaddr, size, value);
        return;
    }

    touchConflictLine(uaddr, true);
    if (runtime_->prefetchProb_ > 0.0)
        maybePrefetch(uaddr);
    touchCapacityLine(uaddr, true);
    checkConstraintFootprint();
    memoWriteConflictLine_ = conflict_line;
    memoWriteCapacityLine_ = capacity_line;
    bufferStore(uaddr, size, value);
}

void
Tx::bufferStore(std::uintptr_t uaddr, std::size_t size,
                std::uint64_t value)
{
    bool inserted = false;
    WriteEntry& entry = writeBuffer_.insertOrFind(uaddr, &inserted);
    if (inserted)
        writeLog_.push_back(uaddr);
    entry = WriteEntry{value, std::uint8_t(size)};
}

void
Tx::touchConflictLine(std::uintptr_t addr, bool is_write)
{
    const std::uintptr_t line_number = runtime_->conflictLineOf(addr);
    bool inserted = false;
    std::uint8_t& flags =
        conflictLines_.insertOrFind(line_number, &inserted);
    if (inserted)
        conflictLog_.push_back(line_number);

    if (is_write) {
        if (flags & lineWritten)
            return;
        ConflictLineState& line = runtime_->directoryLine(line_number);
        if (line.writer >= 0 && line.writer != int(tid_)) {
            runtime_->resolveConflict(*this, unsigned(line.writer),
                                      AbortCause::dataConflict,
                                      line_number);
        }
        // simcheck self-test fault: skip the reader-doom walk, letting
        // a concurrent reader commit a stale snapshot (runtime.hh,
        // CheckFault::missReaderConflict). Off in all experiments.
        if (runtime_->config_.checkFault !=
            CheckFault::missReaderConflict) {
            // Walk a copy: dooming a reader clears its directory marks.
            const ReaderSet readers = line.readers;
            readers.forEachExcept(tid_, [&](unsigned reader) {
                runtime_->resolveConflict(*this, reader,
                                          AbortCause::dataConflict,
                                          line_number);
            });
        }
        line.writer = int(tid_);
        flags |= lineWritten;
    } else {
        if (flags & (lineRead | lineWritten))
            return;
        ConflictLineState& line = runtime_->directoryLine(line_number);
        if (line.writer >= 0 && line.writer != int(tid_)) {
            runtime_->resolveConflict(*this, unsigned(line.writer),
                                      AbortCause::dataConflict,
                                      line_number);
        }
        line.readers.set(tid_);
        flags |= lineRead;
    }
}

void
Tx::maybePrefetch(std::uintptr_t addr)
{
    // Effective probability: zero unless the machine has the
    // prefetcher, it is enabled, and the backend is not ideal. The
    // callers hoist the zero test; this one keeps the function safe
    // to call unconditionally.
    if (runtime_->prefetchProb_ <= 0.0)
        return;
    if (!rng().nextBool(runtime_->prefetchProb_))
        return;

    // The adjacent-line prefetcher pulls the accessed line's 128-byte
    // buddy into the cache; the HTM tracking treats it as
    // transactionally read, so a later peer store to that line raises
    // an unnecessary data conflict (Section 5.1, validated by Intel
    // developers). Structures an odd number of lines long therefore
    // leak conflicts across their boundaries (kmeans' 192-byte
    // clusters).
    const std::uintptr_t neighbour = runtime_->conflictLineOf(addr) ^ 1;
    ConflictLineState& line = runtime_->directoryLine(neighbour);
    if (line.writer >= 0 && line.writer != int(tid_))
        return; // owned elsewhere: the prefetch is dropped
    line.readers.set(tid_);
    bool inserted = false;
    std::uint8_t& flags =
        conflictLines_.insertOrFind(neighbour, &inserted);
    if (inserted)
        conflictLog_.push_back(neighbour);
    flags |= lineRead;
}

void
Tx::touchCapacityLine(std::uintptr_t addr, bool is_write)
{
    const std::uintptr_t line_number = addr >> runtime_->capacityShift_;
    std::uint8_t& flags = capacityLines_.insertOrFind(line_number);

    bool new_load = false;
    bool new_store = false;
    if (is_write && !(flags & lineWritten)) {
        flags |= lineWritten;
        ++storeLines_;
        new_store = true;
    } else if (!is_write && !(flags & lineRead)) {
        flags |= lineRead;
        ++loadLines_;
        new_load = true;
    }
    if (!new_load && !new_store)
        return;
    // ROT loads are untracked: they occupy no TMCAM entries.
    if (status_ == TxStatus::rollbackOnly && new_load)
        return;

    // SMT threads share the per-core tracking resources: the budget
    // shrinks with the number of concurrently transactional threads
    // on this core (Section 2, "resource sharing among SMT threads").
    const unsigned sharers = std::max(
        1u, runtime_->activeTxOnCore(runtime_->machine().coreOf(tid_)));

    FootprintAccount account{capacityLines_.size(), loadLines_,
                             storeLines_, &storeSetLines_};
    const AbortCause cause = runtime_->capacityModel_->judgeNewLine(
        line_number, new_store, sharers, account);
    if (cause != AbortCause::none)
        selfAbort(cause);
    if (runtime_->hazard_.enabled() &&
        runtime_->hazard_.capacityExceeded(tid_,
                                           capacityLines_.size())) {
        // Capacity misestimate: the hardware "granted" a tiny buffer
        // this attempt. The abort carries the organic capacity cause —
        // that is the deception the retry policy must survive — and is
        // tallied separately for attribution.
        ++runtime_->stats_[tid_].hazardCapacityAborts;
        selfAbort(AbortCause::capacityOverflow);
    }
}

void
Tx::checkConstraintFootprint()
{
    if (constrained_ && capacityLines_.size() > constrainedMaxLines())
        throw std::logic_error("constrained tx exceeded footprint limit");
}

void
Tx::work(sim::Cycles cycles)
{
    ctx_->step(cycles);
    if (status_ == TxStatus::active)
        checkDoom();
}

void*
Tx::allocBytes(std::size_t bytes)
{
    if (constrained_)
        throw std::logic_error("allocation inside a constrained tx");
    void* memory = NodePool::instance().alloc(bytes);
    if (status_ == TxStatus::irrevocable)
        return memory;

    // A doomed transaction may still allocate: like loads and stores,
    // the doom is only acted on at the next checkDoom() below.
    assert(status_ == TxStatus::active ||
           status_ == TxStatus::rollbackOnly ||
           status_ == TxStatus::software ||
           status_ == TxStatus::doomed);
    speculativeAllocs_.push_back({memory, bytes});

    if (status_ == TxStatus::software) {
        // The software path constructs objects in place (their memory
        // is private until publication), but the NodePool recycles
        // addresses: a hardware peer may still be tracking the freed
        // object that lived here. Evict such stale readers/writers
        // exactly as a non-transactional store would — the call also
        // stamps the orecs through the hybrid instrumentation gate,
        // so stale software readers revalidate too.
        const MachineConfig& machine = runtime_->machine();
        const auto base = std::uintptr_t(memory);
        for (std::uintptr_t offset = 0; offset < bytes;
             offset += machine.capacityLineBytes) {
            ctx_->advance(machine.nonTxStoreCost +
                          runtime_->config_.hybrid.stmAccessOverhead);
            runtime_->nonTxConflict(tid_, base + offset, true,
                                    ctx_->now());
        }
        ctx_->sync();
        return memory;
    }

    // Initializing stores are transactional on real HTM: charge the
    // object's lines to the write footprint and claim them in the
    // conflict directory.
    const MachineConfig& machine = runtime_->machine();
    const auto base = std::uintptr_t(memory);
    for (std::uintptr_t offset = 0; offset < bytes;
         offset += machine.capacityLineBytes) {
        ctx_->advance(machine.txStoreCost);
        if (status_ == TxStatus::active)
            touchConflictLine(base + offset, true);
        touchCapacityLine(base + offset, true);
    }
    ctx_->sync();
    checkDoom();
    return memory;
}

void
Tx::deallocBytes(void* ptr, std::size_t bytes)
{
    if (status_ == TxStatus::irrevocable) {
        runtime_->stmOnFree(ptr, bytes);
        NodePool::instance().free(ptr, bytes);
        return;
    }
    assert(status_ == TxStatus::active ||
           status_ == TxStatus::rollbackOnly ||
           status_ == TxStatus::software);
    deferredFrees_.push_back({ptr, bytes});
}

void
Tx::abortTx()
{
    if (status_ == TxStatus::irrevocable)
        throw std::logic_error("tabort in irrevocable execution");
    selfAbort(AbortCause::explicitAbort);
}

void
Tx::suspend()
{
    if (!runtime_->machine().hasSuspendResume)
        throw std::logic_error("suspend: machine lacks suspend/resume");
    assert(status_ == TxStatus::active);
    suspended_ = true;
}

void
Tx::resume()
{
    assert(suspended_);
    suspended_ = false;
    checkDoom();
}

void
Tx::resetAttemptState()
{
    // All tables clear by epoch bump: O(1), no frees, no rehashing —
    // aborts on high-retry workloads cost nothing in tracking state.
    writeBuffer_.clear();
    writeLog_.clear();
    conflictLines_.clear();
    conflictLog_.clear();
    capacityLines_.clear();
    storeSetLines_.clear();
    stmOrecs_.clear();
    memoReadConflictLine_ = noLine;
    memoReadCapacityLine_ = noLine;
    memoWriteConflictLine_ = noLine;
    memoWriteCapacityLine_ = noLine;
    loadLines_ = 0;
    storeLines_ = 0;
    opCount_ = 0;
    suspended_ = false;
    doomCause_ = AbortCause::none;
    speculativeAllocs_.clear();
    deferredFrees_.clear();
}

} // namespace htmsim::htm

/**
 * @file
 * Deterministic hazard injection for the HTM models.
 *
 * Real HTM implementations abort transactions for reasons the paper's
 * machine models (Section 3) do not simulate: external interrupts, TLB
 * shootdowns, spurious microarchitectural events, and OS preemption of
 * the fallback-lock holder. The retry policies and the lemming-effect
 * fallback exist precisely to survive those, yet nothing in the
 * simulator exercised them under adversity. This layer injects such
 * hazards deterministically so the retry/fallback subsystem can be
 * chaos-tested and replayed (see src/check/liveness.hh for the oracle
 * that consumes it).
 *
 * Determinism contract (same discipline as the FuzzScheduler,
 * DESIGN.md Section 8):
 *
 *  - Every draw comes from a per-thread Rng stream derived from
 *    (HazardConfig::seed, tid). Nothing is drawn from the simulated
 *    thread's own rng(), whose draw sequence feeds backoff jitter and
 *    cache-fetch probabilities and is therefore
 *    interleaving-position-dependent.
 *  - The per-attempt draw count is fixed (every arm/disarm decision is
 *    drawn at attempt start whether or not its probability is zero),
 *    so a thread's k-th attempt sees the same hazards regardless of
 *    how the attempts interleave with other threads.
 *  - The interrupt process is anchored to virtual time (an interrupt
 *    fires when the thread's clock passes the next deadline), so it is
 *    schedule-sensitive by design but still a pure function of
 *    (seed, schedule).
 *
 * Zero-perturbation contract: the injector is embedded by value in the
 * Runtime and its state is allocated unconditionally, so enabling it
 * changes no host-allocation sequence; with `enabled == false` (the
 * default) every hook reduces to one branch and the simulation is
 * bit-identical to a build without the layer. tests/test_hazard.cc
 * pins this with a forked A/B run over the full benchmark grid.
 */

#ifndef HTMSIM_HTM_HAZARD_HH
#define HTMSIM_HTM_HAZARD_HH

#include <cstdint>
#include <vector>

#include "abort.hh"
#include "sim/random.hh"
#include "sim/scheduler.hh"

namespace htmsim::htm
{

/** Everything injectable; off by default (RuntimeConfig::hazard). */
struct HazardConfig
{
    /** Master switch. When false the other fields are never read. */
    bool enabled = false;
    /** Master seed for the per-thread hazard streams. Independent of
     *  the scheduler and workload seeds, so the same hazard pattern
     *  replays under a different schedule and vice versa. */
    std::uint64_t seed = 1;
    /** Per-attempt probability of one spurious transient abort. */
    double spuriousAbortProb = 0.0;
    /** Interrupt-style aborts: expected interrupts per virtual cycle
     *  and thread (1e-6 = one per million cycles). Unlike spurious
     *  aborts these hit long transactions harder, like real timer
     *  interrupts do. */
    double interruptRate = 0.0;
    /** Per-attempt probability of a capacity misestimate: the attempt
     *  aborts with capacityOverflow once it touches more than a small
     *  drawn number of lines, as if the hardware granted almost no
     *  buffer space this time. */
    double capacityNoiseProb = 0.0;
    /** Probability that the fallback-lock holder is preempted (by the
     *  "OS") right after acquiring the lock, stalling every lemming
     *  spinning behind it. */
    double lockPreemptProb = 0.0;
    /** Length of one injected holder preemption, in cycles. */
    sim::Cycles lockPreemptStall = 25'000;
    /** Thread whose every HTM attempt spuriously aborts (-1 = none).
     *  The deterministic worst case: the liveness self-test uses it to
     *  manufacture a livelock a correct policy must survive. */
    int pinnedVictim = -1;
};

/**
 * Draws and delivers the hazards of one run. One injector per Runtime;
 * all hooks are called from the owning simulated thread's fiber.
 */
class HazardInjector
{
  public:
    HazardInjector() = default;

    /** Install the run's hazard plan for @p num_threads threads. */
    void reset(const HazardConfig& config, unsigned num_threads);

    bool enabled() const { return config_.enabled; }

    /** Draw this attempt's hazards (called from Runtime::txBegin). */
    void onAttemptStart(unsigned tid, sim::Cycles now);

    /** Hazard due at a transactional access, or none. */
    AbortCause onAccess(unsigned tid, sim::Cycles now);

    /** Hazard due at commit, or none. A spurious abort armed for this
     *  attempt but not yet delivered (short transaction) fires here,
     *  keeping the per-attempt probability exact. */
    AbortCause onCommitPoint(unsigned tid, sim::Cycles now);

    /** True if this attempt's misestimated capacity budget is
     *  exceeded at @p lines transactional lines. Fires at most once
     *  per attempt. */
    bool capacityExceeded(unsigned tid, std::size_t lines);

    /** Injected preemption stall for a fresh fallback-lock holder
     *  (0 = not preempted this time). */
    sim::Cycles lockHolderStall(unsigned tid);

  private:
    /** Mutable per-thread hazard state. */
    struct ThreadHazards
    {
        sim::Rng rng;
        /** Spurious abort armed for the current attempt. */
        bool spuriousArmed = false;
        /** Accesses left until the armed spurious abort fires. */
        std::uint32_t spuriousCountdown = 0;
        /** Capacity misestimate armed for the current attempt. */
        bool capacityArmed = false;
        /** Misestimated line budget while armed. */
        std::uint32_t capacityBudget = 0;
        /** Virtual deadline of the next interrupt (0 = not yet
         *  drawn). */
        sim::Cycles nextInterrupt = 0;
    };

    AbortCause interruptDue(ThreadHazards& t, sim::Cycles now);

    HazardConfig config_;
    std::vector<ThreadHazards> threads_;
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_HAZARD_HH

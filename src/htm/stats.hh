/**
 * @file
 * Transaction statistics: commits, aborts by category, serialization.
 *
 * Two parallel tallies are kept: the *reported* category (what the
 * machine's abort-reason codes allow software to see — Blue Gene/Q
 * reports nothing, so everything lands in "unclassified" exactly as in
 * the paper's Figure 3) and the *true* model-internal cause, used by
 * the analysis benches.
 */

#ifndef HTMSIM_HTM_STATS_HH
#define HTMSIM_HTM_STATS_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "abort.hh"
#include "sim/scheduler.hh"

namespace htmsim::htm
{

constexpr std::size_t numAbortCategories =
    std::size_t(AbortCategory::numCategories);

/** Counters for one run (aggregated across threads by Runtime). */
struct TxStats
{
    /** Transactions committed in hardware. */
    std::uint64_t htmCommits = 0;
    /** Critical sections executed under the global lock. */
    std::uint64_t irrevocableCommits = 0;
    /** Constrained-transaction commits (zEC12). */
    std::uint64_t constrainedCommits = 0;
    /** Transactions committed on the software slow path (hybrid
     *  backend, stm.hh). */
    std::uint64_t stmCommits = 0;
    /** Aborts as classified through the machine's reason codes. */
    std::array<std::uint64_t, numAbortCategories> reportedAborts{};
    /** Aborts by model-internal true cause. */
    std::array<std::uint64_t, numAbortCauses> trueCauseAborts{};
    /** Transactional loads/stores executed (committed or not). */
    std::uint64_t txLoads = 0;
    std::uint64_t txStores = 0;
    /** Times a begin had to wait for a speculation ID (BG/Q). */
    std::uint64_t specIdWaits = 0;
    /** Speculation-ID reclamation passes performed (BG/Q). */
    std::uint64_t specIdReclaims = 0;

    // -- Cycle attribution (txprof). Pure observations of the virtual
    //    clocks: always collected, never fed back into the model, so
    //    simulated results are independent of whether anyone reads
    //    them. All values are in virtual cycles.

    /** Useful work: attempt start -> commit of committed HTM (and
     *  constrained) attempts, including tbegin/tend overhead. */
    std::uint64_t committedTxCycles = 0;
    /** Wasted work: attempt start -> rollback completion of aborted
     *  attempts, including the abort penalty. */
    std::uint64_t wastedTxCycles = 0;
    /** Useful work on the software slow path: begin -> commit of
     *  committed software attempts, instrumentation included. */
    std::uint64_t committedStmCycles = 0;
    /** Wasted work on the software slow path: begin -> rollback of
     *  aborted software attempts. */
    std::uint64_t wastedStmCycles = 0;
    /** Fallback work: global-lock hold time of irrevocable sections
     *  (body + lock release). */
    std::uint64_t fallbackCycles = 0;
    /** Stalls: spinning for the fallback lock (lemming wait at begin
     *  plus the acquisition spin) and constrained-priority waits. */
    std::uint64_t lockWaitCycles = 0;
    /** Stalls: randomized post-abort backoff. */
    std::uint64_t backoffCycles = 0;

    // -- Hazard attribution (hazard.hh). Spurious/interrupt aborts are
    //    already tallied per cause in trueCauseAborts; the counters
    //    below cover the injections that masquerade as organic events
    //    (capacity misestimates abort with capacityOverflow, holder
    //    preemption shows up only as longer lock hold times).

    /** Aborts whose capacityOverflow cause was a hazard misestimate. */
    std::uint64_t hazardCapacityAborts = 0;
    /** Fallback-lock acquisitions hit by an injected holder
     *  preemption. */
    std::uint64_t hazardPreemptStalls = 0;
    /** Cycles spent preempted while holding the fallback lock. */
    std::uint64_t hazardStallCycles = 0;

    // --- Per-section latency (server tail-latency reporting) --------
    /** Completed atomic sections observed at the atomic() boundary. */
    std::uint64_t sections = 0;
    /** Virtual cycles from begin-of-first-attempt (atomic() entry,
     *  including any lemming wait) to commit, summed over sections.
     *  Pure observation: recording it never advances the clock. */
    std::uint64_t sectionCyclesTotal = 0;
    /** Worst single-section latency in virtual cycles. */
    std::uint64_t sectionCyclesMax = 0;

    std::uint64_t
    totalAborts() const
    {
        std::uint64_t sum = 0;
        for (auto count : reportedAborts)
            sum += count;
        return sum;
    }

    std::uint64_t totalCommits() const
    {
        return htmCommits + irrevocableCommits + constrainedCommits +
               stmCommits;
    }

    /** Aborts injected outright by the hazard layer. */
    std::uint64_t
    hazardAborts() const
    {
        return trueCauseAborts[std::size_t(AbortCause::spurious)] +
               trueCauseAborts[std::size_t(AbortCause::interrupt)] +
               hazardCapacityAborts;
    }

    /**
     * Paper metric: aborted transactions over all transactions,
     * excluding irrevocable executions.
     */
    double
    abortRatio() const
    {
        const std::uint64_t attempts = totalAborts() + htmCommits +
                                       constrainedCommits + stmCommits;
        return attempts == 0 ? 0.0 :
               double(totalAborts()) / double(attempts);
    }

    /**
     * Paper metric: irrevocable (global-lock) executions over all
     * committed critical sections.
     */
    double
    serializationRatio() const
    {
        const std::uint64_t commits = totalCommits();
        return commits == 0 ? 0.0 :
               double(irrevocableCommits) / double(commits);
    }

    /**
     * txprof metric: wasted-work ratio — aborted-attempt cycles over
     * all cycles spent inside critical sections (committed, aborted,
     * or irrevocable). Refines the abort ratio: an abort of a long
     * cavity refinement weighs its full cost, an abort of a short
     * accumulate almost nothing.
     */
    double
    wastedWorkRatio() const
    {
        const std::uint64_t useful =
            committedTxCycles + committedStmCycles + fallbackCycles;
        const std::uint64_t wasted = wastedTxCycles + wastedStmCycles;
        const std::uint64_t total = useful + wasted;
        return total == 0 ? 0.0 : double(wasted) / double(total);
    }

    double
    reportedFraction(AbortCategory category) const
    {
        const std::uint64_t total = totalAborts();
        return total == 0 ? 0.0 :
               double(reportedAborts[std::size_t(category)]) /
               double(total);
    }

    TxStats&
    operator+=(const TxStats& other)
    {
        htmCommits += other.htmCommits;
        irrevocableCommits += other.irrevocableCommits;
        constrainedCommits += other.constrainedCommits;
        stmCommits += other.stmCommits;
        for (std::size_t i = 0; i < reportedAborts.size(); ++i)
            reportedAborts[i] += other.reportedAborts[i];
        for (std::size_t i = 0; i < trueCauseAborts.size(); ++i)
            trueCauseAborts[i] += other.trueCauseAborts[i];
        txLoads += other.txLoads;
        txStores += other.txStores;
        specIdWaits += other.specIdWaits;
        specIdReclaims += other.specIdReclaims;
        committedTxCycles += other.committedTxCycles;
        wastedTxCycles += other.wastedTxCycles;
        committedStmCycles += other.committedStmCycles;
        wastedStmCycles += other.wastedStmCycles;
        fallbackCycles += other.fallbackCycles;
        lockWaitCycles += other.lockWaitCycles;
        backoffCycles += other.backoffCycles;
        hazardCapacityAborts += other.hazardCapacityAborts;
        hazardPreemptStalls += other.hazardPreemptStalls;
        hazardStallCycles += other.hazardStallCycles;
        sections += other.sections;
        sectionCyclesTotal += other.sectionCyclesTotal;
        sectionCyclesMax = std::max(sectionCyclesMax,
                                    other.sectionCyclesMax);
        return *this;
    }
};

/** Per-transaction footprint sample for the Figure 10/11 traces. */
struct FootprintSample
{
    std::uint32_t loadLines;
    std::uint32_t storeLines;
};

/**
 * Collects per-transaction footprints when tracing is enabled and
 * reports percentiles in bytes (the paper plots 90-percentile sizes).
 */
class TraceCollector
{
  public:
    void
    record(std::uint32_t load_lines, std::uint32_t store_lines)
    {
        samples_.push_back({load_lines, store_lines});
    }

    const std::vector<FootprintSample>& samples() const
    {
        return samples_;
    }

    /** q-quantile (e.g. 0.90) of load footprints, in bytes. */
    double loadPercentileBytes(double q, std::size_t line_bytes) const;

    /** q-quantile of store footprints, in bytes. */
    double storePercentileBytes(double q, std::size_t line_bytes) const;

    void clear() { samples_.clear(); }

  private:
    std::vector<FootprintSample> samples_;
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_STATS_HH

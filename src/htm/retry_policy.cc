#include "retry_policy.hh"

#include "runtime.hh"

namespace htmsim::htm
{

std::unique_ptr<RetryPolicy>
makeRetryPolicy(const RuntimeConfig& config)
{
    if (config.policyKind == RetryPolicyKind::hardened)
        return std::make_unique<HardenedRetryPolicy>(config.retry);
    if (config.machine.vendor == Vendor::blueGeneQ) {
        return std::make_unique<BgqAdaptivePolicy>(
            config.bgq.maxRetries, config.bgq.adaptation,
            config.bgq.mode);
    }
    return std::make_unique<Fig1ThreeCounterPolicy>(config.retry);
}

} // namespace htmsim::htm

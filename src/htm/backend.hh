/**
 * @file
 * Execution-backend layer: what an atomic section *is*.
 *
 * A TmBackend decides how Runtime::atomic() executes its body:
 *
 *  - HtmBackend: best-effort hardware transactions driven by a
 *    per-thread RetryPolicy, with the global-lock fallback — the
 *    machine behaviour the paper measures;
 *  - GlobalLockBackend: every section runs irrevocably under the
 *    global fallback lock — the honest software baseline a
 *    speculation-free runtime would give, and the floor HTM must
 *    beat to justify itself (cf. "Inherent Limitations of Hybrid
 *    Transactional Memory", PAPERS.md);
 *  - IdealHtmBackend: transactions with unlimited capacity and free
 *    begin/end/abort — an upper-bound oracle isolating how much the
 *    real machines' capacity limits and bookkeeping overheads cost
 *    (only true data and lock conflicts remain);
 *  - HybridBackend: hardware attempts with a concurrent software-TM
 *    slow path (stm.hh) replacing most global-lock fallbacks — the
 *    design point the hybrid-TM bounds literature analyzes ("Inherent
 *    Limitations of Hybrid Transactional Memory"; "On the Cost of
 *    Concurrency in Hybrid Transactional Memory", PAPERS.md).
 *
 * Backends are selected by RuntimeConfig::backend; the ideal
 * backend's relaxations are applied where the Runtime resolves its
 * effective machine parameters, so the transactional hot path is
 * shared by HtmBackend and IdealHtmBackend.
 *
 * The backend layer deliberately sees only a narrow window into the
 * Runtime: one transactional attempt, the lemming-effect wait, the
 * backoff charge, and the irrevocable fallback (protected statics on
 * the TmBackend base). Everything else — conflict directory, capacity
 * accounting, statistics — stays behind it.
 */

#ifndef HTMSIM_HTM_BACKEND_HH
#define HTMSIM_HTM_BACKEND_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "abort.hh"
#include "function_ref.hh"
#include "retry_policy.hh"
#include "sim/scheduler.hh"

namespace htmsim::htm
{

class Runtime;
class Tx;
struct RuntimeConfig;

/** Execution backend selector (RuntimeConfig::backend). */
enum class BackendKind : std::uint8_t
{
    /** Best-effort HTM with retry policy + global-lock fallback. */
    htm,
    /** Every atomic section runs irrevocably under the global lock. */
    globalLock,
    /** HTM with unlimited capacity and free begin/end (oracle). */
    idealHtm,
    /** Best-effort HTM with a concurrent software-TM slow path
     *  (stm.hh) between the retries and the global lock. */
    hybrid,
};

/** Human-readable backend name ("htm", "lock", "ideal", "hybrid"). */
const char* backendKindName(BackendKind kind);

/** How one Runtime executes atomic sections. */
class TmBackend
{
  public:
    virtual ~TmBackend() = default;

    /** Execute @p body atomically on behalf of Runtime::atomic(). */
    virtual void runAtomic(Runtime& runtime, sim::ThreadContext& ctx,
                           FunctionRef<void(Tx&)> body) = 0;

  protected:
    // The narrow window into Runtime internals granted to backends
    // (TmBackend is a friend of Runtime; subclasses go through these).

    /** One transactional attempt: begin, body, commit. */
    static AbortCause attemptOnce(Runtime& runtime,
                                  sim::ThreadContext& ctx,
                                  FunctionRef<void(Tx&)> body,
                                  bool lazy_subscribe);

    /** One software-TM attempt (the hybrid backend's slow path). */
    static AbortCause attemptStmOnce(Runtime& runtime,
                                     sim::ThreadContext& ctx,
                                     FunctionRef<void(Tx&)> body);

    /** Wait out a held fallback lock before beginning (Fig. 1 l. 9). */
    static void waitToBegin(Runtime& runtime, sim::ThreadContext& ctx);

    /** Charge capped exponential backoff after an abort (jitter from
     *  the thread's rng, or a deterministic hash — see
     *  Runtime::backoff). */
    static void backoff(Runtime& runtime, sim::ThreadContext& ctx,
                        unsigned consecutive_aborts,
                        bool deterministic_jitter = false);

    /** Run @p body irrevocably under the global fallback lock. */
    static void runUnderGlobalLock(Runtime& runtime,
                                   sim::ThreadContext& ctx,
                                   FunctionRef<void(Tx&)> body);

    /** Whether the global fallback lock is currently held. */
    static bool lockHeld(const Runtime& runtime);
};

/**
 * The paper's machine behaviour: hardware attempts driven by one
 * RetryPolicy per thread, falling back to the global lock when the
 * policy gives up.
 */
class HtmBackend : public TmBackend
{
  public:
    HtmBackend(const RuntimeConfig& config, unsigned num_threads);

    void runAtomic(Runtime& runtime, sim::ThreadContext& ctx,
                   FunctionRef<void(Tx&)> body) override;

  protected:
    std::vector<std::unique_ptr<RetryPolicy>> policies_;
    /** Hybrid decision wrappers, one per thread, bound over
     *  policies_. Built unconditionally — HybridBackend adds no data
     *  members of its own, so selecting it changes no allocation
     *  sequence (the A/B bit-identity contract, stm.hh). */
    std::vector<HybridRetryPolicy> hybrids_;
};

/** Lock-only execution: no speculation, every section irrevocable. */
class GlobalLockBackend final : public TmBackend
{
  public:
    void runAtomic(Runtime& runtime, sim::ThreadContext& ctx,
                   FunctionRef<void(Tx&)> body) override;
};

/**
 * The oracle backend: the same retry-driven execution as HtmBackend,
 * on a machine whose capacity limits, begin/end/abort costs, abort
 * randomness, prefetcher and speculation-ID pool have been idealized
 * away (see Runtime's effective-parameter resolution).
 */
class IdealHtmBackend final : public HtmBackend
{
  public:
    using HtmBackend::HtmBackend;
};

/**
 * Hybrid TM: hardware attempts as in HtmBackend, but when the retry
 * policy gives up — or immediately, for persistent causes — the
 * section runs as a *software* transaction (stm.hh) concurrent with
 * the hardware fast path, instead of serializing on the global lock.
 * The lock remains the ultimate fallback after stmAttempts software
 * failures (and for irrevocable needs), preserving the progress
 * guarantee. With hybrid.stmEnabled=false this backend is
 * byte-identical to HtmBackend (tests/test_hybrid.cc proves it).
 */
class HybridBackend final : public HtmBackend
{
  public:
    using HtmBackend::HtmBackend;

    void runAtomic(Runtime& runtime, sim::ThreadContext& ctx,
                   FunctionRef<void(Tx&)> body) override;
};

/** The backend selected by @p config (one per Runtime). */
std::unique_ptr<TmBackend> makeBackend(const RuntimeConfig& config,
                                       unsigned num_threads);

} // namespace htmsim::htm

#endif // HTMSIM_HTM_BACKEND_HH

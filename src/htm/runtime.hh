/**
 * @file
 * The HTM emulation runtime, layered (DESIGN.md Section 3):
 *
 *   RetryPolicy (retry_policy.hh)  — when to retry after an abort;
 *   CapacityModel (capacity_model.hh) — per-machine footprint budgets;
 *   TmBackend (backend.hh)         — what an atomic section *is*
 *                                    (HTM / global lock / ideal HTM);
 *   Runtime (this file)            — the machine substrate: conflict
 *                                    directory, begin/commit/rollback,
 *                                    global-lock fallback, statistics.
 *
 * One Runtime instance models one machine for one multi-threaded run.
 * Application threads (simulated threads) call atomic() to execute a
 * critical section; the configured backend drives the attempts — the
 * paper's Figure 1 retry mechanism (three counters: lock / persistent
 * / transient) on zEC12, Intel Core and POWER8, and the
 * system-provided single-counter mechanism with adaptation on
 * Blue Gene/Q.
 */

#ifndef HTMSIM_HTM_RUNTIME_HH
#define HTMSIM_HTM_RUNTIME_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "abort.hh"
#include "backend.hh"
#include "capacity_model.hh"
#include "flat_table.hh"
#include "function_ref.hh"
#include "hazard.hh"
#include "machine.hh"
#include "observer.hh"
#include "retry_policy.hh"
#include "site.hh"
#include "stats.hh"
#include "stm.hh"
#include "tx.hh"
#include "sim/scheduler.hh"

namespace htmsim::htm
{

/**
 * Ceiling on simulated threads per Runtime. Sized for the server
 * scenario's 256 clients; the conflict directory's reader sets are
 * fixed-width multiword bitmasks of exactly this many bits, so raising
 * it costs directory memory and a word per reader-walk, nothing else.
 */
inline constexpr unsigned kMaxTxThreads = 256;

/**
 * Fixed-width set of reader thread ids. A drop-in widening of the old
 * single-uint64 mask: the hot paths still set/clear one bit with two
 * shifts, and walks visit only non-zero words with ctz scans.
 */
struct ReaderSet
{
    static constexpr unsigned kWords = kMaxTxThreads / 64;

    std::uint64_t words[kWords] = {};

    void
    set(unsigned tid)
    {
        words[tid >> 6] |= std::uint64_t(1) << (tid & 63);
    }

    void
    clear(unsigned tid)
    {
        words[tid >> 6] &= ~(std::uint64_t(1) << (tid & 63));
    }

    bool
    any() const
    {
        std::uint64_t all = 0;
        for (const std::uint64_t word : words)
            all |= word;
        return all != 0;
    }

    /**
     * Invoke @p fn(tid) for every member except @p self. Callers that
     * mutate the underlying line during the walk (dooming a reader
     * clears its marks) must iterate a by-value copy, exactly as the
     * old code copied the uint64 mask.
     */
    template <typename Fn>
    void
    forEachExcept(unsigned self, Fn&& fn) const
    {
        for (unsigned w = 0; w < kWords; ++w) {
            std::uint64_t bits = words[w];
            if (w == (self >> 6))
                bits &= ~(std::uint64_t(1) << (self & 63));
            while (bits != 0) {
                fn(w * 64 + unsigned(__builtin_ctzll(bits)));
                bits &= bits - 1;
            }
        }
    }
};

/**
 * Tracking state of one conflict-granularity line: the
 * cache-coherence-based access marks all four machines keep (writer id
 * plus a reader set, Section 2). The directory lives directly in the
 * Runtime as a FlatTable keyed by line number (address >> granularity
 * log2); entries are never erased — clearing a mark empties the state
 * and the slot is reused on the next touch, trading a bounded
 * footprint (distinct lines ever touched) for erase-free probing.
 */
struct ConflictLineState
{
    /** Writing transaction's thread id, or -1. */
    int writer = -1;
    /** Reader thread ids (up to kMaxTxThreads). */
    ReaderSet readers;

    bool
    empty() const
    {
        return writer < 0 && !readers.any();
    }
};

/** Who survives when two transactions collide on a line. */
enum class ConflictPolicy : std::uint8_t
{
    /** The access in progress aborts the peer (coherence-invalidation
     *  behaviour of all four machines; the default). */
    attackerWins,
    /** The access in progress aborts its own transaction. */
    attackerLoses,
    /** The younger transaction aborts (timestamp arbitration). */
    olderWins,
};

/**
 * Deliberate model faults, enabled only by simcheck self-tests
 * (check_runner --inject-fault) to prove the differential oracle
 * detects a broken conflict-detection path. Never set in experiments;
 * the default compiles to the unmodified hot path.
 */
enum class CheckFault : std::uint8_t
{
    none,
    /** Eager-detection miss: a transactional store no longer dooms
     *  concurrent readers of its line, so a reader can commit a stale
     *  snapshot (lost updates — a serializability violation). */
    missReaderConflict,
    /** Retry-driver bug: the HTM backend ignores the policy's stop
     *  decision and never falls back to the lock, so a thread whose
     *  attempts keep aborting retries forever (a liveness violation
     *  the liveness oracle must catch). */
    stuckRetry,
    /** Hybrid-backend subscription bug: a software commit's write-back
     *  skips both the per-address dooming of conflicting hardware
     *  transactions and the clock-cell publication (orec bumps are
     *  kept), so hardware readers commit stale snapshots under either
     *  subscription mode (lost updates the oracle must catch). */
    missStmSubscription,
};

/** Blue Gene/Q-specific runtime knobs (Section 2.1 / Section 3). */
struct BgqRuntimeConfig
{
    /** Execution mode: conflict granularity and L1 handling. */
    BgqMode mode = BgqMode::shortRunning;
    /** The system software's single retry counter (env variable). */
    int maxRetries = 10;
    /** Adaptation: stop retrying after frequent fallback. */
    bool adaptation = true;
};

/** Intel Core-specific runtime knobs. */
struct IntelRuntimeConfig
{
    /** Ablation switch for the adjacent-line prefetcher (Section 5.1). */
    bool prefetchEnabled = true;
};

/** Everything configurable about one run. */
struct RuntimeConfig
{
    MachineConfig machine;
    RetryCounts retry;
    ConflictPolicy policy = ConflictPolicy::attackerWins;

    /** Which retry-policy implementation HTM sections run under: the
     *  machine's own mechanism, or the hardened starvation-proof
     *  policy (retry_policy.hh). */
    RetryPolicyKind policyKind = RetryPolicyKind::machineDefault;

    /** How atomic() executes: best-effort HTM (the machines), the
     *  global-lock-only baseline, or the ideal-HTM oracle. */
    BackendKind backend = BackendKind::htm;

    /** Vendor-specific knobs (ignored on other machines). */
    BgqRuntimeConfig bgq;
    IntelRuntimeConfig intel;

    /** Record per-transaction footprints (Figures 10/11). */
    bool collectTrace = false;
    /** Disable capacity aborts (the paper's STM-based trace tool had
     *  no capacity limit); used together with collectTrace. */
    bool ignoreCapacity = false;

    /** Injected model fault for simcheck oracle self-tests only. */
    CheckFault checkFault = CheckFault::none;

    /** Hybrid-backend knobs (stm.hh): subscription mode, software
     *  retry budget, orec-table geometry, cost model. Read only when
     *  backend == BackendKind::hybrid, but the engine state it sizes
     *  is allocated unconditionally (determinism contract). */
    HybridRuntimeConfig hybrid;

    /** Deterministic hazard injection (hazard.hh). Off by default;
     *  when off the layer is provably zero-perturbation. */
    HazardConfig hazard;

    /**
     * Lifecycle-event observer to register at construction (txprof /
     * simcheck). Non-owning; must outlive the Runtime. Equivalent to
     * calling setObserver() right after construction — this hook
     * exists so harness code that builds runtimes internally (the
     * STAMP measurement harness, the bench suite) can attach a
     * profiler without new plumbing. nullptr = no observer.
     */
    TxObserver* observer = nullptr;

    /** Base cycles of randomized backoff after an abort. The paper's
     *  Figure 1 retries immediately; a small randomized delay only
     *  de-synchronizes the deterministic lock-step of the simulation
     *  and must stay well below a transaction's length. */
    Cycles backoffBase = 15;
    /** Cap for the exponential backoff shift. */
    unsigned maxBackoffShift = 4;

    /**
     * Epoch-batched scheduling fast path (DESIGN.md Section 5). On by
     * default; simulated results are bit-identical either way. The
     * switch exists as an escape hatch and for A/B verification
     * (`--no-batch` in the tools). Declared last so flag additions
     * land in tail padding when possible: configs are heap-allocated
     * before the simulation starts and simulated metrics are
     * sensitive to host allocation sizes, so a sizeof(RuntimeConfig)
     * change shifts simulated numbers across builds (same-build A/B
     * comparisons, which all bit-identity tests use, are unaffected).
     */
    bool batchEpoch = true;

    /** Construct a config for one of the paper's machines. */
    explicit RuntimeConfig(MachineConfig machine_config)
        : machine(std::move(machine_config))
    {
    }

    RuntimeConfig() = default;
};

/**
 * HTM emulation runtime for one machine and one set of threads.
 */
class Runtime
{
  public:
    /**
     * @param config machine + policy configuration
     * @param num_threads simulated threads that will use this runtime
     */
    Runtime(RuntimeConfig config, unsigned num_threads);
    ~Runtime();

    Runtime(const Runtime&) = delete;
    Runtime& operator=(const Runtime&) = delete;

    /**
     * Execute @p body atomically via the configured backend: by
     * default transactionally with retries, then irrevocably under the
     * global lock (best-effort HTM + fallback). The body may run many
     * times; it must be idempotent apart from its Tx-mediated effects.
     */
    template <typename F>
    void
    atomic(sim::ThreadContext& ctx, F&& body)
    {
        atomic(ctx, unknownTxSite, std::forward<F>(body));
    }

    /** atomic() with a static site id for per-site profiling. */
    template <typename F>
    void
    atomic(sim::ThreadContext& ctx, TxSiteId site, F&& body)
    {
        bindSite(ctx.id(), site);
        FunctionRef<void(Tx&)> ref(body);
        // Section latency: begin-of-first-attempt (including any
        // lemming wait inside the backend) to commit, in virtual
        // cycles. Observation only — nothing here advances the clock.
        const Cycles start = ctx.now();
        backend_->runAtomic(*this, ctx, ref);
        TxStats& stats = stats_[ctx.id()];
        const std::uint64_t latency = ctx.now() - start;
        ++stats.sections;
        stats.sectionCyclesTotal += latency;
        stats.sectionCyclesMax = std::max(stats.sectionCyclesMax,
                                          latency);
    }

    /**
     * zEC12 constrained transaction (Section 2.2): guaranteed eventual
     * commit, no fallback handler required. The body is limited to 32
     * transactional operations and a 256-byte footprint; violations
     * throw std::logic_error (a programming error, as on real zEC12).
     */
    template <typename F>
    void
    constrainedAtomic(sim::ThreadContext& ctx, F&& body)
    {
        constrainedAtomic(ctx, unknownTxSite, std::forward<F>(body));
    }

    /** constrainedAtomic() with a static site id. */
    template <typename F>
    void
    constrainedAtomic(sim::ThreadContext& ctx, TxSiteId site, F&& body)
    {
        bindSite(ctx.id(), site);
        FunctionRef<void(Tx&)> ref(body);
        runConstrained(ctx, ref);
    }

    /**
     * POWER8 rollback-only transaction: store buffering and rollback
     * without conflict detection (single-thread speculation support).
     * @return true if the body committed, false if it aborted.
     */
    template <typename F>
    bool
    rollbackOnly(sim::ThreadContext& ctx, F&& body)
    {
        return rollbackOnly(ctx, unknownTxSite, std::forward<F>(body));
    }

    /** rollbackOnly() with a static site id. */
    template <typename F>
    bool
    rollbackOnly(sim::ThreadContext& ctx, TxSiteId site, F&& body)
    {
        bindSite(ctx.id(), site);
        FunctionRef<void(Tx&)> ref(body);
        return runRollbackOnly(ctx, ref);
    }

    /**
     * Transactional attempts driven by a caller-owned RetryPolicy,
     * WITHOUT the lemming-effect wait, backoff, or lock fallback —
     * the caller owns the fallback path (lock-free retry loops, HLE).
     * @return AbortCause::none once an attempt commits, or the final
     * abort cause once the policy stops retrying.
     */
    template <typename F>
    AbortCause
    tryAtomic(sim::ThreadContext& ctx, RetryPolicy& policy, F&& body)
    {
        return tryAtomic(ctx, policy, unknownTxSite,
                         std::forward<F>(body));
    }

    /** tryAtomic() with a static site id. */
    template <typename F>
    AbortCause
    tryAtomic(sim::ThreadContext& ctx, RetryPolicy& policy,
              TxSiteId site, F&& body)
    {
        bindSite(ctx.id(), site);
        FunctionRef<void(Tx&)> ref(body);
        return runPolicyAttempts(ctx, policy, ref);
    }

    /**
     * Plain transactional attempt without any retry logic or lock
     * fallback. @return the abort cause, or AbortCause::none on
     * commit. Building block for HLE and custom policies.
     */
    template <typename F>
    AbortCause
    tryOnce(sim::ThreadContext& ctx, F&& body)
    {
        return tryOnce(ctx, unknownTxSite, std::forward<F>(body));
    }

    /** tryOnce() with a static site id. */
    template <typename F>
    AbortCause
    tryOnce(sim::ThreadContext& ctx, TxSiteId site, F&& body)
    {
        NoRetryPolicy policy;
        return tryAtomic(ctx, policy, site, body);
    }

    /** Execute @p body under the global lock (irrevocably). */
    template <typename F>
    void
    runLocked(sim::ThreadContext& ctx, F&& body)
    {
        runLocked(ctx, unknownTxSite, std::forward<F>(body));
    }

    /** runLocked() with a static site id. */
    template <typename F>
    void
    runLocked(sim::ThreadContext& ctx, TxSiteId site, F&& body)
    {
        bindSite(ctx.id(), site);
        FunctionRef<void(Tx&)> ref(body);
        runIrrevocable(ctx, txOf(ctx.id()), ref);
    }

    // --- Non-transactional (strongly isolated) accesses --------------

    /** Non-transactional load; aborts a conflicting peer writer. */
    template <typename T>
    T
    nonTxLoad(sim::ThreadContext& ctx, const T* addr)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        ctx.advance(config_.machine.nonTxLoadCost);
        ctx.sync();
        nonTxConflict(ctx.id(), std::uintptr_t(addr), false, ctx.now());
        return *addr;
    }

    /** Non-transactional store; aborts conflicting peer transactions. */
    template <typename T>
    void
    nonTxStore(sim::ThreadContext& ctx, T* addr, T value)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        ctx.advance(config_.machine.nonTxStoreCost);
        ctx.sync();
        nonTxConflict(ctx.id(), std::uintptr_t(addr), true, ctx.now());
        *addr = value;
    }

    /**
     * Atomic (in virtual time) compare-and-swap with strong
     * isolation; the substrate for lock-free baselines.
     */
    template <typename T>
    bool
    nonTxCas(sim::ThreadContext& ctx, T* addr, T expected, T desired)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        ctx.advance(config_.machine.casCost);
        ctx.sync();
        nonTxConflict(ctx.id(), std::uintptr_t(addr), true, ctx.now());
        if (*addr != expected)
            return false;
        *addr = desired;
        return true;
    }

    /**
     * Run @p body non-speculatively (direct accesses with strong
     * isolation) WITHOUT taking the global fallback lock. The caller
     * must provide mutual exclusion itself — this is the HLE
     * lock-acquired path and the TLS in-order path. Exception-safe:
     * the irrevocable status is scoped to the body (and no commit is
     * counted) even if it throws.
     */
    template <typename F>
    void
    runNonSpeculative(sim::ThreadContext& ctx, F&& body)
    {
        Tx& tx = txOf(ctx.id());
        const Cycles start = ctx.now();
        IrrevocableScope scope(tx, ctx);
        body(tx);
        ++stats_[ctx.id()].irrevocableCommits;
        stats_[ctx.id()].fallbackCycles += ctx.now() - start;
    }

    /**
     * Site-aware runNonSpeculative for per-object lock fallbacks
     * (tmsync): binds @p site and emits a nonSpecCommit lifecycle
     * event at body completion so observers (simcheck, liveness,
     * txprof) see the section's serialization point. The 2-arg
     * overload above stays event-free — its callers (HLE global lock,
     * TLS) account their sections through other events.
     */
    template <typename F>
    void
    runNonSpeculative(sim::ThreadContext& ctx, TxSiteId site, F&& body)
    {
        bindSite(ctx.id(), site);
        Tx& tx = txOf(ctx.id());
        const Cycles start = ctx.now();
        IrrevocableScope scope(tx, ctx);
        body(tx);
        ++stats_[ctx.id()].irrevocableCommits;
        stats_[ctx.id()].fallbackCycles += ctx.now() - start;
        emitEvent(TxEventKind::nonSpecCommit, ctx.id(), site, ctx.now(),
                  start);
    }

    /** Atomic (in virtual time) non-transactional fetch-add. */
    template <typename T>
    T
    nonTxFetchAdd(sim::ThreadContext& ctx, T* addr, T delta)
    {
        static_assert(std::is_integral_v<T>);
        ctx.advance(config_.machine.nonTxStoreCost +
                    config_.machine.nonTxLoadCost);
        ctx.sync();
        nonTxConflict(ctx.id(), std::uintptr_t(addr), true, ctx.now());
        const T previous = *addr;
        *addr = previous + delta;
        return previous;
    }

    // --- Introspection ------------------------------------------------

    const RuntimeConfig& config() const { return config_; }
    const MachineConfig& machine() const { return config_.machine; }

    /** The execution backend atomic() dispatches to. */
    BackendKind backendKind() const { return config_.backend; }

    /** Conflict-detection granularity in effect (mode-dependent on
     *  Blue Gene/Q: 8 B short-running, 64 B long-running). */
    std::size_t effectiveGranularity() const
    {
        return std::size_t(1) << conflictShift_;
    }

    /** Aggregated statistics across all threads. */
    TxStats stats() const;

    /** One thread's statistics. */
    const TxStats& threadStats(unsigned tid) const
    {
        return stats_[tid];
    }

    TraceCollector& trace() { return trace_; }
    const TraceCollector& trace() const { return trace_; }

    /** The software-TM engine (hybrid backend; tests inspect the
     *  clock/epoch, everything else goes through atomic()). */
    const StmEngine& stm() const { return stm_; }

    /** Free-is-a-write instrumentation (StmEngine::onFree), gated so
     *  non-hybrid runs never touch the engine. Every path that
     *  releases simulated memory back to the pool while software
     *  transactions may be in flight must pass through here. */
    void
    stmOnFree(const void* ptr, std::size_t bytes)
    {
        if (stmEnabled_)
            stm_.onFree(ptr, bytes);
    }

    /**
     * Register a lifecycle-event observer (nullptr to remove).
     * Non-owning; must outlive the run. Events are delivered in
     * global virtual-time order (see observer.hh).
     */
    void setObserver(TxObserver* observer) { observer_ = observer; }
    TxObserver* observer() const { return observer_; }

    /** The transaction context of a thread (tests / TLS runtime). */
    Tx& txOf(unsigned tid) { return *txs_[tid]; }

    /**
     * Bind a static site id to a thread's next atomic section(s). The
     * binding sticks until the next bind, so every attempt — including
     * the global-lock fallback of the same section — reports the same
     * site. The site-aware atomic() overloads call this; it is public
     * for custom drivers (HLE, TLS) that stage sections themselves.
     */
    void bindSite(unsigned tid, TxSiteId site);

    /** Whether the global fallback lock is currently held. */
    bool globalLockHeld() const { return lockWord_ != 0; }

    /** Number of lines with live marks in the conflict directory. */
    std::size_t
    trackedConflictLines() const
    {
        std::size_t count = 0;
        directory_.forEach(
            [&count](std::uintptr_t, const ConflictLineState& line) {
                if (!line.empty())
                    ++count;
            });
        return count;
    }

    /** Cycles charged per probe when spinning on the global lock. */
    static constexpr Cycles lockPollCost = 30;

    /** Constrained-tx aborts before the hardware escalates. */
    static constexpr unsigned escalationThreshold = 4;

  private:
    friend class Tx;
    friend class TmBackend;

    AbortCause runPolicyAttempts(sim::ThreadContext& ctx,
                                 RetryPolicy& policy,
                                 FunctionRef<void(Tx&)> body);
    void runConstrained(sim::ThreadContext& ctx,
                        FunctionRef<void(Tx&)> body);
    bool runRollbackOnly(sim::ThreadContext& ctx,
                         FunctionRef<void(Tx&)> body);
    void runIrrevocable(sim::ThreadContext& ctx, Tx& tx,
                        FunctionRef<void(Tx&)> body);

    /**
     * One transactional attempt: begin, body, commit. Returns
     * AbortCause::none on success. When @p record_stats is set the
     * abort is tallied (reported bucket chosen per machine).
     */
    AbortCause attempt(Tx& tx, sim::ThreadContext& ctx,
                       FunctionRef<void(Tx&)> body, bool lazy_subscribe,
                       bool record_stats);

    void txBegin(Tx& tx, sim::ThreadContext& ctx, bool lazy_subscribe);
    void txCommit(Tx& tx, sim::ThreadContext& ctx, bool lazy_subscribe);
    void rollback(Tx& tx, sim::ThreadContext& ctx);
    void recordAbort(Tx& tx, AbortCause cause);

    // --- Software slow path (hybrid backend; stm.cc) ------------------

    /** One software attempt: begin, body, commit-time validation and
     *  write-back. Returns AbortCause::none on success. */
    AbortCause stmAttempt(Tx& tx, sim::ThreadContext& ctx,
                          FunctionRef<void(Tx&)> body);

    void stmBegin(Tx& tx, sim::ThreadContext& ctx);
    void stmCommit(Tx& tx, sim::ThreadContext& ctx);
    void stmRollback(Tx& tx, sim::ThreadContext& ctx, AbortCause cause);

    /** Spin until the global lock is free (lemming-effect avoidance,
     *  Figure 1 line 9) and no constrained transaction has priority. */
    void waitToBegin(sim::ThreadContext& ctx);

    void acquireGlobalLock(sim::ThreadContext& ctx);
    void releaseGlobalLock(sim::ThreadContext& ctx);

    /** Charge capped exponential backoff after an abort. Jitter is
     *  drawn from ctx.rng() by default; @p deterministic_jitter
     *  (hardened policy) hashes (tid, consecutive) instead, keeping
     *  the thread's main rng stream position schedule-independent. */
    void backoff(sim::ThreadContext& ctx, unsigned consecutive_aborts,
                 bool deterministic_jitter = false);

    /** Resolve a conflict on @p line between the attacking access and
     *  a peer transaction. */
    void resolveConflict(Tx& attacker, unsigned victim_tid,
                         AbortCause victim_cause, std::uintptr_t line);
    /** Doom @p victim_tid (if killable). @return whether it was. */
    bool doomTx(unsigned victim_tid, AbortCause cause);

    /** Strong isolation for non-transactional accesses. @p now is the
     *  accessor's virtual clock (conflict-event timestamping only). */
    void nonTxConflict(unsigned tid, std::uintptr_t addr, bool is_write,
                       Cycles now);

    // --- Conflict directory (line -> writer/readers marks) -----------

    /** Conflict-granularity line number covering @p addr. */
    std::uintptr_t conflictLineOf(std::uintptr_t addr) const
    {
        return addr >> conflictShift_;
    }

    /** Find-or-create the tracking state for a line. */
    ConflictLineState& directoryLine(std::uintptr_t line_number)
    {
        return directory_.insertOrFind(line_number);
    }

    /** Find the tracking state for a line, or nullptr. The returned
     *  state may be empty (marks already cleared; slots persist). */
    ConflictLineState* findDirectoryLine(std::uintptr_t line_number)
    {
        return directory_.find(line_number);
    }

    /** Drop a thread's reader mark from a line. */
    void
    clearDirectoryReader(std::uintptr_t line_number, unsigned tid)
    {
        ConflictLineState* line = directory_.find(line_number);
        if (line != nullptr)
            line->readers.clear(tid);
    }

    /** Drop a thread's writer mark (if it still owns the line). */
    void
    clearDirectoryWriter(std::uintptr_t line_number, unsigned tid)
    {
        ConflictLineState* line = directory_.find(line_number);
        if (line != nullptr && line->writer == int(tid))
            line->writer = -1;
    }

    /** Deliver one lifecycle event to the registered observer. */
    void
    emitEvent(TxEventKind kind, unsigned tid, TxSiteId site,
              Cycles cycles, Cycles section_start,
              AbortCause cause = AbortCause::none)
    {
        if (observer_ != nullptr) {
            observer_->onEvent(TxEvent{kind, cause, std::uint16_t(tid),
                                       site, cycles, section_start});
        }
    }

    /** Deliver one conflict resolution to the registered observer. */
    void emitConflict(unsigned attacker_tid, unsigned victim_tid,
                      bool attacker_non_tx, std::uintptr_t line,
                      Cycles cycles);

    // Speculation-ID pool (Blue Gene/Q, Section 2.1).
    void acquireSpecId(Tx& tx, sim::ThreadContext& ctx);
    void releaseSpecId(Tx& tx);

    /** Threads currently transactional on a core (SMT sharing). */
    unsigned activeTxOnCore(unsigned core) const
    {
        return activePerCore_[core];
    }

    RuntimeConfig config_;
    unsigned conflictShift_;
    unsigned capacityShift_;

    // Effective machine parameters, resolved once at construction from
    // (machine preset, vendor mode, backend). The hot paths read these
    // instead of re-deriving vendor special cases per access; the
    // ideal-HTM backend zeroes the overheads and randomness here.
    Cycles txBeginCost_ = 0;
    Cycles txEndCost_ = 0;
    Cycles txAbortCost_ = 0;
    Cycles txLoadCost_ = 0;
    Cycles txStoreCost_ = 0;
    double prefetchProb_ = 0.0;
    double cacheFetchProb_ = 0.0;
    bool lazySubscription_ = false;
    unsigned specIdPool_ = 0;

    /** Resolved once: backend == hybrid and the software path is on.
     *  Every hybrid hook on the shared hot paths gates on this, so
     *  other backends (and hybrid with stmEnabled=false) execute the
     *  unmodified instruction stream. */
    bool stmEnabled_ = false;
    /** Resolved subscription mode (eager = clock-cell load at begin). */
    bool stmEagerSub_ = false;

    /** The conflict directory (see ConflictLineState). */
    FlatTable<ConflictLineState, 64> directory_;
    std::unique_ptr<CapacityModel> capacityModel_;
    std::unique_ptr<TmBackend> backend_;
    std::vector<std::unique_ptr<Tx>> txs_;
    std::vector<TxStats> stats_;
    TraceCollector trace_;
    TxObserver* observer_ = nullptr;

    /** Hazard injector (hazard.hh). Embedded by value and initialized
     *  unconditionally so enabling hazards changes no allocation
     *  sequence; every hot-path hook is gated on hazard_.enabled(). */
    HazardInjector hazard_;

    /** Software-TM engine (stm.hh). Embedded by value and sized
     *  unconditionally, like hazard_: selecting the hybrid backend
     *  changes no allocation sequence. */
    StmEngine stm_;

    /** The single-memory-word global fallback lock (Section 3). */
    std::uint64_t lockWord_ = 0;

    /** When the current lock holder completed its acquisition (hold
     *  span start for the lockReleased event; observation only). */
    Cycles lockHoldStart_ = 0;

    /** Thread holding constrained-transaction priority, or -1. */
    int constrainedOwner_ = -1;

    /** Monotonic transaction start order (olderWins arbitration). */
    std::uint64_t startCounter_ = 0;

    std::vector<unsigned> activePerCore_;

    // Speculation-ID pool state.
    unsigned freeSpecIds_ = 0;
    unsigned retiredSpecIds_ = 0;
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_RUNTIME_HH

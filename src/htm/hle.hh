/**
 * @file
 * Hardware Lock Elision (Intel Core, Section 2.3 / 6.2).
 *
 * An HLE critical section first runs as a transaction that merely
 * *subscribes* to the lock word (the XACQUIRE store is elided). On any
 * abort, the section re-executes with the lock actually taken — there
 * is no software retry mechanism, which is exactly why the paper finds
 * HLE reaches only ~80 % of tuned RTM (Figure 7).
 */

#ifndef HTMSIM_HTM_HLE_HH
#define HTMSIM_HTM_HLE_HH

#include "runtime.hh"

namespace htmsim::htm
{

/** An elidable lock. One instance guards one set of critical
 *  sections; the STAMP HLE experiments elide a single global lock. */
class HleLock
{
  public:
    /**
     * Execute @p body under lock elision: one transactional attempt,
     * then fall back to really acquiring the lock. The body sees a Tx
     * in either transactional or non-speculative mode.
     */
    template <typename F>
    void
    execute(Runtime& runtime, sim::ThreadContext& ctx, F&& body)
    {
        execute(runtime, ctx, unknownTxSite, std::forward<F>(body));
    }

    /** execute() with a static site id for per-site profiling. */
    template <typename F>
    void
    execute(Runtime& runtime, sim::ThreadContext& ctx, TxSiteId site,
            F&& body)
    {
        // Elision attempt: subscribe to the lock word; the section
        // aborts if someone holds (or takes) the real lock. Machines
        // whose transactions are too costly to elide with (BG/Q's
        // software begin/end) skip straight to the real acquisition.
        if (runtime.machine().supportsElision()) {
            const AbortCause cause =
                runtime.tryOnce(ctx, site, [&](Tx& tx) {
                    if (tx.load(&word_) != 0)
                        tx.abortTx();
                    body(tx);
                });
            if (cause == AbortCause::none)
                return;
        }

        // Abort: re-execute with the lock held (no retries). The CAS
        // is atomic in virtual time, unlike a plain store after a
        // spin, which could race with another acquirer.
        while (!runtime.nonTxCas(ctx, &word_, std::uint64_t(0),
                                 std::uint64_t(1))) {
            ctx.spinUntil([this] { return word_ == 0; },
                          Runtime::lockPollCost);
        }
        runtime.runNonSpeculative(ctx, body);
        runtime.nonTxStore(ctx, &word_, std::uint64_t(0));
    }

    bool held() const { return word_ != 0; }

  private:
    alignas(256) std::uint64_t word_ = 0;
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_HLE_HH

/**
 * @file
 * Architectural models of the four HTM machines (paper Table 1).
 *
 * Every quantity that the paper identifies as an explanatory variable —
 * conflict-detection granularity, load/store capacity, SMT resource
 * sharing, abort-reason vocabulary, and the per-machine implementation
 * quirks of Section 2 — is an explicit parameter here.
 *
 * Cycle costs are model calibration constants, not measured hardware
 * values: the paper never reports absolute time, only per-machine
 * speed-up ratios, which depend on the *relative* cost of transactional
 * bookkeeping versus application work. The constants are chosen so the
 * single-thread overhead ordering of Section 5.1 holds (Blue Gene/Q's
 * software begin/end far costlier than the others').
 */

#ifndef HTMSIM_HTM_MACHINE_HH
#define HTMSIM_HTM_MACHINE_HH

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/scheduler.hh"

namespace htmsim::htm
{

using sim::Cycles;

/** The four processors of the study. */
enum class Vendor : std::uint8_t
{
    blueGeneQ,
    zEC12,
    intelCore,
    power8,
};

/** Blue Gene/Q transactional execution modes (Section 2.1). */
enum class BgqMode : std::uint8_t
{
    shortRunning, ///< L2-only buffering; fine-grained conflict detection
    longRunning,  ///< L1 buffering after invalidation; lazy subscription
};

/**
 * Full architectural description of one HTM implementation.
 */
struct MachineConfig
{
    std::string name;
    Vendor vendor = Vendor::intelCore;

    // --- Table 1 rows -----------------------------------------------
    /** Conflict-detection granularity in bytes. */
    std::size_t conflictGranularity = 64;
    /** Cache-line size used for capacity accounting and traces. */
    std::size_t capacityLineBytes = 64;
    /** Transactional-load capacity in bytes (per core). */
    std::size_t loadCapacityBytes = 4 << 20;
    /** Transactional-store capacity in bytes (per core). */
    std::size_t storeCapacityBytes = 22 << 10;
    /** Load and store capacity share one budget (BG/Q, POWER8). */
    bool combinedCapacity = false;
    /** Physical cores. */
    unsigned numCores = 4;
    /** SMT threads per core (1 = none). */
    unsigned smtWays = 2;
    /** Aggregate core throughput at full SMT occupancy relative to a
     *  single thread (e.g. 1.3: two Intel hyperthreads deliver ~1.3x
     *  one thread's throughput). Used to slow oversubscribed cores. */
    double smtYield = 1.3;
    /** Whether the machine reports abort-reason codes at all. */
    bool hasAbortCodes = true;
    /** Whether codes include a persistent/transient hint. */
    bool hasPersistenceHint = true;
    /** Number of distinct abort-reason codes (Table 1 last row). */
    unsigned abortReasonKinds = 0;
    /** Clock frequency in GHz (informational; speed-ups are ratios). */
    double clockGhz = 0.0;
    /** Informational cache descriptions for the Table 1 printout. */
    std::string l1Description;
    std::string l2Description;

    // --- Store way-conflict model (Intel: stores must stay in L1) ---
    /** L1 sets for the store way-conflict model; 0 disables it. */
    unsigned storeSets = 0;
    /** Ways per set for the store way-conflict model. */
    unsigned storeWays = 0;

    // --- Machine quirks (Section 2) ---------------------------------
    /** Probability a tx load/store pulls the next line into the read
     *  set (Intel hardware prefetcher; Section 5.1 kmeans anomaly). */
    double prefetchConflictProb = 0.0;
    /** Per-access probability of a transient cache-fetch-related abort
     *  (zEC12's dominant "other" aborts in Figure 3). */
    double cacheFetchAbortProb = 0.0;
    /** Global speculation-ID pool size (BG/Q); 0 = unlimited. */
    unsigned speculationIds = 0;
    /** Cycles to reclaim the retired speculation-ID batch (BG/Q). */
    Cycles specIdReclaimCost = 0;
    /** Supports suspend/resume and rollback-only tx (POWER8). */
    bool hasSuspendResume = false;
    /** Supports constrained transactions (zEC12). */
    bool hasConstrainedTx = false;
    /** Supports HLE (Intel). */
    bool hasHle = false;

    // --- Cycle costs (calibration constants) ------------------------
    Cycles txBeginCost = 40;
    Cycles txEndCost = 30;
    Cycles txAbortCost = 150;
    /** Extra begin cost in BG/Q long-running mode (L1 invalidation). */
    Cycles longModeBeginExtra = 0;
    /** Transactional accesses cost roughly the same as plain ones on
     *  the cache-based implementations; only Blue Gene/Q pays a
     *  per-access premium (L2 round trips in short-running mode). */
    Cycles txLoadCost = 4;
    Cycles txStoreCost = 5;
    /** Additional per-access cost in BG/Q short-running mode (L2). */
    Cycles shortModeAccessExtra = 0;
    Cycles nonTxLoadCost = 4;
    Cycles nonTxStoreCost = 4;
    /** Atomic compare-and-swap cost (lock-free baselines). */
    Cycles casCost = 40;

    // --- Derived helpers --------------------------------------------
    /**
     * Whether lock elision (speculating through a critical section
     * while merely subscribing to the lock word) is worth attempting.
     * Intel has native HLE; zEC12 and POWER8 lack the XACQUIRE hint
     * but their regular transactions subscribe a lock word just as
     * well (generalized transactional lock elision). Blue Gene/Q's
     * software-mediated begin/end is so costly that a single
     * speculative attempt around a short critical section loses to
     * simply taking the spin lock — callers degrade to the real
     * acquisition path instead of crashing (see hle.hh, tmsync/).
     */
    bool
    supportsElision() const
    {
        return hasHle || hasConstrainedTx || hasSuspendResume;
    }

    std::size_t
    loadCapacityLines() const
    {
        return loadCapacityBytes / capacityLineBytes;
    }

    std::size_t
    storeCapacityLines() const
    {
        return storeCapacityBytes / capacityLineBytes;
    }

    unsigned maxThreads() const { return numCores * smtWays; }

    /** Core a given simulated thread runs on (dense round-robin, so
     *  thread counts up to numCores get exclusive cores). */
    unsigned coreOf(unsigned tid) const { return tid % numCores; }

    /** Execution-rate multiplier for one of @p sharers threads on a
     *  core: sharers divided by the interpolated aggregate yield.
     *  Beyond full SMT occupancy (server-style oversubscription: more
     *  simulated clients than hardware threads) the core's aggregate
     *  throughput stays pinned at smtYield — extra threads timeshare
     *  the pipeline, they don't add it resources — so each of N
     *  sharers runs N/smtYield slower. */
    double
    smtTimeScale(unsigned sharers) const
    {
        if (sharers <= 1)
            return 1.0;
        const double span = smtWays > 1 ? double(smtWays - 1) : 1.0;
        // Interpolated aggregate yield up to full SMT occupancy; past
        // it (server-style oversubscription: more simulated clients
        // than hardware threads) the pipeline is saturated, so the
        // aggregate stays pinned at the full-occupancy value and each
        // of N sharers simply timeshares it N ways. The cap reuses the
        // interpolation's own expression so time scales at
        // sharers == smtWays are bit-identical to the historical ones.
        const unsigned occupied = std::min(sharers, smtWays);
        const double throughput =
            1.0 + (smtYield - 1.0) * double(occupied - 1) / span;
        return double(sharers) / throughput;
    }

    /** Time scale for thread @p tid when @p threads threads run. */
    double
    threadTimeScale(unsigned tid, unsigned threads) const
    {
        const unsigned core = coreOf(tid);
        unsigned sharers = 0;
        for (unsigned t = 0; t < threads; ++t)
            sharers += coreOf(t) == core ? 1 : 0;
        return smtTimeScale(sharers);
    }

    // --- The four machines of the paper -----------------------------
    static MachineConfig blueGeneQ();
    static MachineConfig zEC12();
    static MachineConfig intelCore();
    static MachineConfig power8();

    /** All four, in the paper's presentation order. */
    static const std::array<MachineConfig, 4>& all();
};

/** Short label used in the paper's figures (BG, z12, IC, P8). */
const char* vendorShortName(Vendor vendor);

} // namespace htmsim::htm

#endif // HTMSIM_HTM_MACHINE_HH

/**
 * @file
 * The hybrid backend's software slow path: TL2-style software
 * transactions (stm.hh) running through the same Tx context, trace
 * events and statistics as hardware attempts.
 *
 * Everything software-path-specific lives in this translation unit —
 * the begin/commit/rollback drivers on the Runtime and the
 * orec-checked access slow paths on the Tx — so the hardware hot
 * paths in tx.cc / runtime.cc carry nothing but a status dispatch and
 * the stmEnabled_-gated instrumentation hooks.
 *
 * Protocol (TL2 with lazy versioning, adapted to virtual time):
 *
 *  - begin: snapshot the global version clock (the read version, rv)
 *    and the wraparound epoch;
 *  - load: abort unless the address's orec version is <= rv (opacity —
 *    the check and the memory read share one scheduling quantum, so a
 *    stale value can never be *observed*); log the orec as read;
 *  - store: buffer the value in the write buffer, log the orec as
 *    written;
 *  - commit: one scheduling point charges the full commit cost, then
 *    an atomic region (no scheduling points) checks the fallback
 *    lock, revalidates every read orec against rv, takes a new write
 *    version wv from the clock, writes the buffer back — dooming
 *    conflicting hardware transactions through the conflict
 *    directory, per written address, exactly like a
 *    non-transactional store — bumps the written orecs to wv, and
 *    publishes wv to the clock cell hardware transactions subscribe
 *    to.
 *
 * Because the commit region is atomic in virtual time, software
 * commits serialize at their commit events and the differential
 * oracle replays them by that order, the same contract hardware
 * commits satisfy. Software transactions take no speculation id,
 * never appear in the conflict directory and cannot be doomed by
 * peers: every conflict they lose is discovered by validation.
 */

#include "stm.hh"

#include <cstring>

#include "node_pool.hh"
#include "runtime.hh"
#include "tx.hh"

namespace htmsim::htm
{

namespace
{

std::uint64_t
readMemory(const void* addr, std::size_t size)
{
    std::uint64_t word = 0;
    std::memcpy(&word, addr, size);
    return word;
}

} // namespace

// --------------------------------------------------------------------
// Tx access slow paths
// --------------------------------------------------------------------

std::uint64_t
Tx::stmLoadWord(const void* addr, std::size_t size)
{
    const MachineConfig& machine = runtime_->machine();
    const auto uaddr = std::uintptr_t(addr);
    runtime_->stats_[tid_].txLoads++;

    // Software loads bypass the transactional tracking hardware: they
    // pay the plain access cost plus the orec hash/check/log overhead.
    ctx_->advance(machine.nonTxLoadCost +
                  runtime_->config_.hybrid.stmAccessOverhead);
    ctx_->sync();

    // No scheduling points from here to the return: the version check
    // and the memory read are atomic in virtual time (opacity).
    if (!writeBuffer_.empty()) {
        if (const WriteEntry* buffered = writeBuffer_.find(uaddr)) {
            assert(buffered->size == size);
            return buffered->value;
        }
    }

    StmEngine& stm = runtime_->stm_;
    if (stm.epoch() != stmEpoch_) {
        // The clock wrapped since begin: rv belongs to the previous
        // epoch and validates nothing.
        selfAbort(AbortCause::stmConflict);
    }
    const std::size_t index = stm.indexOfAddr(uaddr);
    if (stm.orecVersion(index) > stmRv_) {
        // Someone committed a write to this orec after our snapshot
        // (or a colliding line's write — false conflicts are part of
        // the orec deal).
        selfAbort(AbortCause::stmConflict);
    }
    stmOrecs_.insertOrFind(index) |= lineRead;
    return readMemory(addr, size);
}

void
Tx::stmStoreWord(void* addr, std::size_t size, std::uint64_t value)
{
    const MachineConfig& machine = runtime_->machine();
    const auto uaddr = std::uintptr_t(addr);
    runtime_->stats_[tid_].txStores++;

    ctx_->advance(machine.nonTxStoreCost +
                  runtime_->config_.hybrid.stmAccessOverhead);
    ctx_->sync();

    StmEngine& stm = runtime_->stm_;
    if (stm.epoch() != stmEpoch_)
        selfAbort(AbortCause::stmConflict);
    // Lazy versioning: the write sits in the buffer until commit; the
    // orec is logged now so commit knows which orecs to bump.
    stmOrecs_.insertOrFind(stm.indexOfAddr(uaddr)) |= lineWritten;
    bufferStore(uaddr, size, value);
}

// --------------------------------------------------------------------
// Runtime drivers
// --------------------------------------------------------------------

void
Runtime::stmBegin(Tx& tx, sim::ThreadContext& ctx)
{
    tx.ctx_ = &ctx;
    tx.resetAttemptState();
    tx.attemptStart_ = ctx.now();

    ctx.advance(config_.hybrid.stmBeginCost);
    ctx.sync();

    // No speculation id, no core-occupancy count, no directory
    // presence: the software path uses none of the hardware tracking
    // resources — that is its whole reason to exist.
    tx.status_ = TxStatus::software;
    tx.stmEpoch_ = stm_.epoch();
    tx.stmRv_ = stm_.clock();
    emitEvent(TxEventKind::begin, tx.tid_, tx.site_, ctx.now(),
              tx.attemptStart_);
}

void
Runtime::stmCommit(Tx& tx, sim::ThreadContext& ctx)
{
    const HybridRuntimeConfig& hybrid = config_.hybrid;

    // Charge the whole commit once, before the atomic region: base fee
    // plus revalidation per tracked orec plus write-back per buffered
    // word.
    ctx.advance(hybrid.stmCommitBase +
                hybrid.stmValidateCost * Cycles(tx.stmOrecs_.size()) +
                config_.machine.nonTxStoreCost *
                    Cycles(tx.writeLog_.size()));
    ctx.sync();

    // Commit point: no scheduling points below, so lock check,
    // validation, write-back and publication are atomic in virtual
    // time — the commit event *is* the serialization point the
    // differential oracle replays by.
    if (lockWord_ != 0) {
        // An irrevocable section owns memory outright; committing
        // around it would interleave with its direct stores. Aborting
        // here also keeps the trace invariant that no transactional
        // commit happens while the fallback lock is held.
        tx.selfAbort(AbortCause::lockConflict);
    }
    if (stm_.epoch() != tx.stmEpoch_)
        tx.selfAbort(AbortCause::stmConflict);

    bool valid = true;
    tx.stmOrecs_.forEach(
        [&](std::uintptr_t index, std::uint8_t flags) {
            if ((flags & Tx::lineRead) != 0 &&
                stm_.orecVersion(std::size_t(index)) > tx.stmRv_)
                valid = false;
        });
    if (!valid)
        tx.selfAbort(AbortCause::stmConflict);

    const Cycles now = ctx.now();
    const std::uint64_t wv = stm_.advanceClock();
    // simcheck self-test fault (CheckFault::missStmSubscription): the
    // write-back "forgets" to doom hardware subscribers — neither the
    // per-address evictions nor the clock-cell publication happen, so
    // a concurrent hardware reader commits a stale snapshot. The orec
    // bumps are kept: software-vs-software stays correct, the bug is
    // purely on the hybrid boundary. Off in all experiments.
    const bool publish =
        config_.checkFault != CheckFault::missStmSubscription;
    for (const std::uintptr_t addr : tx.writeLog_) {
        const Tx::WriteEntry* entry = tx.writeBuffer_.find(addr);
        if (publish) {
            // Strong isolation towards the hardware: every written
            // word evicts conflicting hardware readers and writers
            // through the directory, exactly like a non-transactional
            // store (this call also stamps the orec via the hybrid
            // instrumentation gate; the bump below then pins it to
            // this commit's wv).
            nonTxConflict(tx.tid_, addr, true, now);
        }
        std::memcpy(reinterpret_cast<void*>(addr), &entry->value,
                    entry->size);
        stm_.bumpOrec(stm_.indexOfAddr(addr), wv);
    }
    if (publish) {
        // The subscription channel: dooms every hardware transaction
        // that loaded the clock cell at begin (eager mode), then
        // updates the value lazy-mode hardware commits compare.
        nonTxConflict(tx.tid_, std::uintptr_t(stm_.clockCellAddr()),
                      true, now);
        stm_.publishClock(wv);
    }
    for (const auto& record : tx.deferredFrees_) {
        stm_.onFree(record.ptr, record.bytes);
        NodePool::instance().free(record.ptr, record.bytes);
    }

    if (config_.collectTrace)
        trace_.record(tx.loadLines_, tx.storeLines_);

    TxStats& stats = stats_[tx.tid_];
    ++stats.stmCommits;
    stats.committedStmCycles += now - tx.attemptStart_;
    tx.status_ = TxStatus::inactive;
    emitEvent(TxEventKind::commit, tx.tid_, tx.site_, now,
              tx.attemptStart_);
}

void
Runtime::stmRollback(Tx& tx, sim::ThreadContext& ctx, AbortCause cause)
{
    // Nothing was written and nothing marked in the directory: discard
    // the speculative allocations and the buffers die with the next
    // resetAttemptState.
    for (const auto& record : tx.speculativeAllocs_)
        NodePool::instance().free(record.ptr, record.bytes);
    tx.status_ = TxStatus::inactive;
    tx.suspended_ = false;

    ctx.advance(config_.hybrid.stmAbortCost);
    ctx.sync();

    TxStats& stats = stats_[tx.tid_];
    stats.wastedStmCycles += ctx.now() - tx.attemptStart_;
    // The software path knows its own abort causes exactly — no
    // reported-category laundering through hardware reason codes.
    ++stats.trueCauseAborts[std::size_t(cause)];
    ++stats.reportedAborts[std::size_t(categorize(cause))];
    emitEvent(TxEventKind::abort, tx.tid_, tx.site_, ctx.now(),
              tx.attemptStart_, cause);
}

AbortCause
Runtime::stmAttempt(Tx& tx, sim::ThreadContext& ctx,
                    FunctionRef<void(Tx&)> body)
{
    try {
        stmBegin(tx, ctx);
        body(tx);
        stmCommit(tx, ctx);
        return AbortCause::none;
    } catch (const TxAbortException& abort) {
        const AbortCause cause = abort.cause == AbortCause::none
                                     ? AbortCause::stmConflict
                                     : abort.cause;
        stmRollback(tx, ctx, cause);
        return cause;
    }
}

} // namespace htmsim::htm

/**
 * @file
 * Line-granular allocation pool for transactionally managed objects.
 *
 * All simulated threads run on one host thread, so they would share
 * one malloc arena; concurrent transactional allocations would then
 * sit adjacent in memory and the allocation frontier would become an
 * artificial false-sharing hotspot that no real threaded program has
 * (per-thread arenas spread them out). The pool hands out 256-byte-
 * aligned, 256-byte-granular chunks instead, so every allocation
 * occupies its own conflict-detection line(s) on every machine, and
 * recycles freed chunks through size-class free lists.
 *
 * Single-host-threaded by design, like the whole simulator.
 */

#ifndef HTMSIM_HTM_NODE_POOL_HH
#define HTMSIM_HTM_NODE_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace htmsim::htm
{

/** Process-wide pool of line-granular chunks. */
class NodePool
{
  public:
    /** Chunk granularity: the largest conflict line of any machine. */
    static constexpr std::size_t lineBytes = 256;

    static NodePool&
    instance()
    {
        static NodePool pool;
        return pool;
    }

    void*
    alloc(std::size_t bytes)
    {
        const std::size_t size_class = classOf(bytes);
        if (size_class < freeLists_.size() &&
            !freeLists_[size_class].empty()) {
            void* chunk = freeLists_[size_class].back();
            freeLists_[size_class].pop_back();
            return chunk;
        }
        const std::size_t chunk_bytes = (size_class + 1) * lineBytes;
        if (chunk_bytes > blockBytes) {
            // Oversized allocation: dedicated block.
            blocks_.push_back(allocBlock(chunk_bytes));
            return blocks_.back().get();
        }
        if (bumpBlock_ == nullptr ||
            blockUsed_ + chunk_bytes > blockBytes) {
            blocks_.push_back(allocBlock(blockBytes));
            bumpBlock_ = blocks_.back().get();
            blockUsed_ = 0;
        }
        void* chunk = bumpBlock_ + blockUsed_;
        blockUsed_ += chunk_bytes;
        return chunk;
    }

    void
    free(void* ptr, std::size_t bytes)
    {
        if (ptr == nullptr)
            return;
        const std::size_t size_class = classOf(bytes);
        if (size_class >= freeLists_.size())
            freeLists_.resize(size_class + 1);
        freeLists_[size_class].push_back(ptr);
    }

    /** Bytes currently held from the OS (diagnostics). */
    std::size_t
    footprintBytes() const
    {
        return blocks_.size() * blockBytes;
    }

  private:
    static constexpr std::size_t blockBytes = 1 << 20;

    struct AlignedDeleter
    {
        void
        operator()(char* ptr) const
        {
            ::operator delete[](ptr, std::align_val_t(lineBytes));
        }
    };
    using Block = std::unique_ptr<char[], AlignedDeleter>;

    static Block
    allocBlock(std::size_t bytes)
    {
        return Block(static_cast<char*>(
            ::operator new[](bytes, std::align_val_t(lineBytes))));
    }

    static std::size_t
    classOf(std::size_t bytes)
    {
        return bytes == 0 ? 0 : (bytes - 1) / lineBytes;
    }

    std::vector<Block> blocks_;
    char* bumpBlock_ = nullptr;
    std::size_t blockUsed_ = 0;
    std::vector<std::vector<void*>> freeLists_;
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_NODE_POOL_HH

/**
 * @file
 * Capacity-model layer: per-machine transactional-footprint budgets.
 *
 * Every machine bounds how much data a transaction may touch before
 * the hardware gives up; Section 2 of the paper shows the *mechanism*
 * differs per machine, and Figures 10/11 show the budgets are the
 * dominant explanatory variable for several benchmarks. A
 * CapacityModel is a strategy object created from a MachineConfig:
 * it judges each first touch of a capacity-granularity line against
 * the machine's budgets and reports the abort cause the hardware
 * would raise, or AbortCause::none.
 *
 *  - CombinedCapacityModel: one budget for loads + stores together —
 *    Blue Gene/Q's 20 MB L2 slice and POWER8's 64-entry TMCAM
 *    (8 KB at 128-byte lines);
 *  - SplitCapacityModel: independent load and store budgets — zEC12's
 *    1 MB LRU-extension load tracking and 8 KB gathering store cache;
 *  - IntelCapacityModel: split budgets plus the L1 way-conflict rule —
 *    transactional stores must stay in the 8-way L1, so a 9th store
 *    line mapping to one set aborts long before the 22 KB budget;
 *  - UnlimitedCapacityModel: no budgets at all — the paper's STM-based
 *    trace tool (RuntimeConfig::ignoreCapacity) and the ideal-HTM
 *    backend.
 *
 * All models divide per-core budgets by the number of concurrently
 * transactional SMT threads on the core ("resource sharing among SMT
 * threads", Section 2); the caller reports that number per touch.
 *
 * The model owns no per-transaction state: the footprint counters and
 * the Intel per-set store counts live in the Tx (they are cleared by
 * its O(1) epoch reset) and are passed in by reference. Models are
 * therefore shared by all transactions of a Runtime.
 */

#ifndef HTMSIM_HTM_CAPACITY_MODEL_HH
#define HTMSIM_HTM_CAPACITY_MODEL_HH

#include <cstdint>
#include <memory>

#include "abort.hh"
#include "flat_table.hh"
#include "machine.hh"

namespace htmsim::htm
{

/**
 * One transaction's footprint account, viewed by the model. Counters
 * already include the line being judged.
 */
struct FootprintAccount
{
    /** Unique capacity-granularity lines touched (loads + stores). */
    std::size_t totalLines;
    /** Unique lines transactionally loaded. */
    std::uint32_t loadLines;
    /** Unique lines transactionally stored. */
    std::uint32_t storeLines;
    /** Store lines per L1 set (Intel way-conflict accounting); the
     *  model mutates it when it tracks sets. */
    FlatTable<unsigned>* storeSetLines;
};

/** Per-machine footprint-budget strategy. */
class CapacityModel
{
  public:
    virtual ~CapacityModel() = default;

    /**
     * Judge the first touch of one capacity line.
     *
     * @param line_number capacity-granularity line number
     * @param new_store true for a store touch, false for a load touch
     * @param sharers concurrently transactional threads on the core
     *        (>= 1); per-core budgets are divided by it
     * @param account the transaction's footprint, including this line
     * @return the abort the hardware raises, or AbortCause::none
     */
    virtual AbortCause judgeNewLine(std::uintptr_t line_number,
                                    bool new_store, unsigned sharers,
                                    FootprintAccount& account) = 0;
};

/**
 * The capacity model of @p machine, or UnlimitedCapacityModel when
 * @p ignore_capacity is set.
 */
std::unique_ptr<CapacityModel>
makeCapacityModel(const MachineConfig& machine, bool ignore_capacity);

} // namespace htmsim::htm

#endif // HTMSIM_HTM_CAPACITY_MODEL_HH

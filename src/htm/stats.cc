#include "stats.hh"

#include <algorithm>
#include <cmath>

namespace htmsim::htm
{

namespace
{

double
percentileOf(std::vector<std::uint32_t>& values, double q)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = q * double(values.size() - 1);
    const std::size_t lower = std::size_t(std::floor(rank));
    const std::size_t upper = std::min(lower + 1, values.size() - 1);
    const double fraction = rank - double(lower);
    return double(values[lower]) +
           fraction * (double(values[upper]) - double(values[lower]));
}

} // namespace

double
TraceCollector::loadPercentileBytes(double q, std::size_t line_bytes) const
{
    std::vector<std::uint32_t> lines;
    lines.reserve(samples_.size());
    for (const auto& sample : samples_)
        lines.push_back(sample.loadLines);
    return percentileOf(lines, q) * double(line_bytes);
}

double
TraceCollector::storePercentileBytes(double q,
                                     std::size_t line_bytes) const
{
    std::vector<std::uint32_t> lines;
    lines.reserve(samples_.size());
    for (const auto& sample : samples_)
        lines.push_back(sample.storeLines);
    return percentileOf(lines, q) * double(line_bytes);
}

} // namespace htmsim::htm

#include "backend.hh"

#include "runtime.hh"

namespace htmsim::htm
{

const char*
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::htm:
        return "htm";
      case BackendKind::globalLock:
        return "lock";
      case BackendKind::idealHtm:
        return "ideal";
      case BackendKind::hybrid:
        return "hybrid";
    }
    return "unknown";
}

// --------------------------------------------------------------------
// The narrow window into Runtime (TmBackend is its friend)
// --------------------------------------------------------------------

AbortCause
TmBackend::attemptOnce(Runtime& runtime, sim::ThreadContext& ctx,
                       FunctionRef<void(Tx&)> body, bool lazy_subscribe)
{
    return runtime.attempt(runtime.txOf(ctx.id()), ctx, body,
                           lazy_subscribe, true);
}

AbortCause
TmBackend::attemptStmOnce(Runtime& runtime, sim::ThreadContext& ctx,
                          FunctionRef<void(Tx&)> body)
{
    return runtime.stmAttempt(runtime.txOf(ctx.id()), ctx, body);
}

void
TmBackend::waitToBegin(Runtime& runtime, sim::ThreadContext& ctx)
{
    runtime.waitToBegin(ctx);
}

void
TmBackend::backoff(Runtime& runtime, sim::ThreadContext& ctx,
                   unsigned consecutive_aborts,
                   bool deterministic_jitter)
{
    runtime.backoff(ctx, consecutive_aborts, deterministic_jitter);
}

void
TmBackend::runUnderGlobalLock(Runtime& runtime, sim::ThreadContext& ctx,
                              FunctionRef<void(Tx&)> body)
{
    runtime.runIrrevocable(ctx, runtime.txOf(ctx.id()), body);
}

bool
TmBackend::lockHeld(const Runtime& runtime)
{
    return runtime.globalLockHeld();
}

// --------------------------------------------------------------------
// HtmBackend
// --------------------------------------------------------------------

HtmBackend::HtmBackend(const RuntimeConfig& config, unsigned num_threads)
{
    policies_.reserve(num_threads);
    for (unsigned tid = 0; tid < num_threads; ++tid)
        policies_.push_back(makeRetryPolicy(config));

    // Bound for every backend kind, used only by HybridBackend: the
    // wrappers are plain values over policies_, so building them
    // unconditionally keeps the allocation sequence independent of the
    // selected backend (the A/B bit-identity contract, stm.hh).
    const HybridRetryPolicy::Tuning tuning{config.hybrid.stmEnabled,
                                           config.hybrid.stmOnly,
                                           config.hybrid.stmAttempts};
    hybrids_.resize(num_threads);
    for (unsigned tid = 0; tid < num_threads; ++tid)
        hybrids_[tid].bind(policies_[tid].get(), tuning);
}

void
HtmBackend::runAtomic(Runtime& runtime, sim::ThreadContext& ctx,
                      FunctionRef<void(Tx&)> body)
{
    // The generic retry driver behind every machine's atomic():
    // Figure 1 with the policy layer supplying the decisions. Which
    // counters exist, how lock conflicts are classified and whether
    // the lock is subscribed lazily all live in the RetryPolicy.
    RetryPolicy& policy = *policies_[ctx.id()];
    const bool lazy = policy.lazySubscription();
    const bool det_jitter = policy.deterministicBackoff();
    policy.beginSection();

    unsigned consecutive = 0;
    for (;;) {
        // Lemming-storm guard (Figure 1 line 9): re-check the lock
        // before every HTM re-entry, not just the first — waitToBegin
        // spins until the fallback lock is free, so a convoy drains
        // instead of feeding itself doomed transactional attempts.
        waitToBegin(runtime, ctx);
        const AbortCause cause = attemptOnce(runtime, ctx, body, lazy);
        if (cause == AbortCause::none) {
            policy.onCommit();
            return;
        }
        ++consecutive;
        const bool retry = policy.onAbort(cause, lockHeld(runtime));
        // stuckRetry (simcheck self-tests only): model the classic
        // driver bug of ignoring the policy's stop decision — no
        // fallback is ever taken, so a persistently aborting section
        // livelocks. The liveness oracle must catch this.
        if (retry ||
            runtime.config().checkFault == CheckFault::stuckRetry) {
            backoff(runtime, ctx, consecutive, det_jitter);
            continue;
        }
        runUnderGlobalLock(runtime, ctx, body);
        policy.onFallback();
        return;
    }
}

// --------------------------------------------------------------------
// HybridBackend
// --------------------------------------------------------------------

void
HybridBackend::runAtomic(Runtime& runtime, sim::ThreadContext& ctx,
                         FunctionRef<void(Tx&)> body)
{
    // Same driver shape as HtmBackend, with one extra tier: when the
    // hybrid policy routes away from hardware, the section runs as a
    // software transaction *concurrent* with everyone else's hardware
    // attempts, and only exhausted software sections serialize on the
    // global lock.
    HybridRetryPolicy& policy = hybrids_[ctx.id()];
    const bool lazy = policy.lazySubscription();
    const bool det_jitter = policy.deterministicBackoff();
    policy.beginSection();

    unsigned consecutive = 0;
    bool software = policy.softwareFirst();
    for (;;) {
        // Lemming-storm guard applies to both tiers: a software
        // attempt started behind a held fallback lock would only abort
        // at its commit point (stm.cc), so don't feed it either.
        waitToBegin(runtime, ctx);

        if (!software) {
            const AbortCause cause =
                attemptOnce(runtime, ctx, body, lazy);
            if (cause == AbortCause::none) {
                policy.onCommit();
                return;
            }
            ++consecutive;
            const auto decision =
                policy.onHtmAbort(cause, lockHeld(runtime));
            if (decision == HybridRetryPolicy::Decision::retryHtm) {
                backoff(runtime, ctx, consecutive, det_jitter);
                continue;
            }
            if (decision == HybridRetryPolicy::Decision::fallbackStm) {
                software = true;
                continue;
            }
            break; // fallbackLock
        }

        const AbortCause cause = attemptStmOnce(runtime, ctx, body);
        if (cause == AbortCause::none) {
            policy.onCommit();
            return;
        }
        ++consecutive;
        if (policy.onStmAbort(cause) ==
            HybridRetryPolicy::Decision::fallbackStm) {
            backoff(runtime, ctx, consecutive, det_jitter);
            continue;
        }
        break; // fallbackLock
    }

    runUnderGlobalLock(runtime, ctx, body);
    policy.onFallback();
}

// --------------------------------------------------------------------
// GlobalLockBackend
// --------------------------------------------------------------------

void
GlobalLockBackend::runAtomic(Runtime& runtime, sim::ThreadContext& ctx,
                             FunctionRef<void(Tx&)> body)
{
    runUnderGlobalLock(runtime, ctx, body);
}

std::unique_ptr<TmBackend>
makeBackend(const RuntimeConfig& config, unsigned num_threads)
{
    switch (config.backend) {
      case BackendKind::globalLock:
        return std::make_unique<GlobalLockBackend>();
      case BackendKind::idealHtm:
        return std::make_unique<IdealHtmBackend>(config, num_threads);
      case BackendKind::hybrid:
        return std::make_unique<HybridBackend>(config, num_threads);
      case BackendKind::htm:
        break;
    }
    return std::make_unique<HtmBackend>(config, num_threads);
}

} // namespace htmsim::htm

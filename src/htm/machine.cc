#include "machine.hh"

#include "abort.hh"

namespace htmsim::htm
{

const char*
abortCauseName(AbortCause cause)
{
    switch (cause) {
      case AbortCause::none: return "none";
      case AbortCause::dataConflict: return "data-conflict";
      case AbortCause::lockConflict: return "lock-conflict";
      case AbortCause::capacityOverflow: return "capacity-overflow";
      case AbortCause::wayConflict: return "way-conflict";
      case AbortCause::cacheFetch: return "cache-fetch";
      case AbortCause::explicitAbort: return "explicit";
      case AbortCause::unclassified: return "unclassified";
      case AbortCause::spurious: return "spurious";
      case AbortCause::interrupt: return "interrupt";
      case AbortCause::stmConflict: return "stm-conflict";
    }
    return "?";
}

const char*
abortCategoryName(AbortCategory category)
{
    switch (category) {
      case AbortCategory::capacityOverflow: return "capacity-overflow";
      case AbortCategory::dataConflict: return "data-conflict";
      case AbortCategory::other: return "other";
      case AbortCategory::lockConflict: return "lock-conflict";
      case AbortCategory::unclassified: return "unclassified";
      default: return "?";
    }
}

const char*
vendorShortName(Vendor vendor)
{
    switch (vendor) {
      case Vendor::blueGeneQ: return "BG";
      case Vendor::zEC12: return "z12";
      case Vendor::intelCore: return "IC";
      case Vendor::power8: return "P8";
    }
    return "?";
}

MachineConfig
MachineConfig::blueGeneQ()
{
    MachineConfig config;
    config.name = "Blue Gene/Q";
    config.vendor = Vendor::blueGeneQ;
    // Worst-case granularity is the 128-byte L2 line; the runtime
    // refines it per execution mode (8 B short-running, 64 B
    // long-running), cf. Section 2.1.
    config.conflictGranularity = 128;
    config.capacityLineBytes = 128;
    // 20 MB total across 16 cores = 1.25 MB per core, combined.
    config.loadCapacityBytes = 1280 << 10;
    config.storeCapacityBytes = 1280 << 10;
    config.combinedCapacity = true;
    config.numCores = 16;
    config.smtWays = 4;
    // The in-order A2 core is built for SMT throughput.
    config.smtYield = 2.4;
    config.hasAbortCodes = false;
    config.hasPersistenceHint = false;
    config.abortReasonKinds = 0;
    config.clockGhz = 1.6;
    config.l1Description = "16 KB, 8-way";
    config.l2Description = "32 MB, 16-way, shared by 16 cores";
    config.speculationIds = 128;
    config.specIdReclaimCost = 1200;
    // Software register checkpointing plus kernel involvement makes
    // begin/end far more expensive than on the other machines; the
    // short-running mode additionally pays an L2 round trip per access
    // (Section 5.1: ~40 % single-thread degradation in kmeans-high).
    config.txBeginCost = 160;
    config.txEndCost = 110;
    config.txAbortCost = 350;
    config.longModeBeginExtra = 250;
    config.txLoadCost = 8;
    config.txStoreCost = 8;
    config.shortModeAccessExtra = 3;
    return config;
}

MachineConfig
MachineConfig::zEC12()
{
    MachineConfig config;
    config.name = "zEC12";
    config.vendor = Vendor::zEC12;
    config.conflictGranularity = 256;
    config.capacityLineBytes = 256;
    config.loadCapacityBytes = 1 << 20;   // L1 + LRU-extension vector
    config.storeCapacityBytes = 8 << 10;  // gathering store cache
    config.numCores = 16;
    config.smtWays = 1;
    config.smtYield = 1.0;
    config.abortReasonKinds = 14;
    config.clockGhz = 5.5;
    config.l1Description = "96 KB, 6-way";
    config.l2Description = "1 MB, 8-way";
    // zEC12 reports no processor persistence decision; the paper
    // treats capacity overflows as persistent in software instead.
    config.hasPersistenceHint = false;
    config.hasConstrainedTx = true;
    // The dominant grey bars of Figure 3: transient, undocumented
    // cache-fetch-related aborts raised while lines stream in.
    config.cacheFetchAbortProb = 0.0010;
    config.txBeginCost = 35;
    config.txEndCost = 25;
    config.txAbortCost = 220;
    return config;
}

MachineConfig
MachineConfig::intelCore()
{
    MachineConfig config;
    config.name = "Intel Core i7-4770";
    config.vendor = Vendor::intelCore;
    config.conflictGranularity = 64;
    config.capacityLineBytes = 64;
    config.loadCapacityBytes = 4 << 20;   // measured, Section 2.3
    config.storeCapacityBytes = 22 << 10; // measured, Section 2.3
    config.numCores = 4;
    config.smtWays = 2;
    config.smtYield = 1.3;
    config.abortReasonKinds = 6;
    config.clockGhz = 3.4;
    config.l1Description = "32 KB, 8-way";
    config.l2Description = "256 KB";
    // Stores must remain in the 8-way L1: a 9th transactional store
    // line mapping to one set is evicted and aborts the transaction.
    config.storeSets = 64;
    config.storeWays = 8;
    // Adjacent-line hardware prefetch marks neighbours transactional
    // (Section 5.1 kmeans anomaly, confirmed by Intel developers).
    // Haswell's adjacent-line prefetcher pairs most line fetches.
    config.prefetchConflictProb = 0.20;
    config.hasHle = true;
    config.txBeginCost = 50;
    config.txEndCost = 40;
    config.txAbortCost = 160;
    return config;
}

MachineConfig
MachineConfig::power8()
{
    MachineConfig config;
    config.name = "POWER8";
    config.vendor = Vendor::power8;
    config.conflictGranularity = 128;
    config.capacityLineBytes = 128;
    // 64-entry L2 TMCAM x 128-byte lines = 8 KB combined.
    config.loadCapacityBytes = 8 << 10;
    config.storeCapacityBytes = 8 << 10;
    config.combinedCapacity = true;
    config.numCores = 6;
    config.smtWays = 8;
    config.smtYield = 2.1;
    config.abortReasonKinds = 11;
    config.clockGhz = 4.1;
    config.l1Description = "64 KB";
    config.l2Description = "512 KB, 8-way";
    config.hasSuspendResume = true;
    config.txBeginCost = 55;
    config.txEndCost = 45;
    config.txAbortCost = 200;
    return config;
}

const std::array<MachineConfig, 4>&
MachineConfig::all()
{
    static const std::array<MachineConfig, 4> machines = {
        blueGeneQ(), zEC12(), intelCore(), power8()};
    return machines;
}

} // namespace htmsim::htm

/**
 * @file
 * Transaction-event observation hooks.
 *
 * A TxObserver registered on a Runtime receives one callback per
 * transactional lifecycle event, in global virtual-time order (the
 * simulator is single-threaded on the host, and every event site is
 * preceded by a scheduling point, so callback order *is* the order in
 * which the events become globally visible). The simcheck subsystem
 * (src/check) uses this to capture per-run traces, reconstruct the
 * committed-transaction order for its differential serializability
 * oracle, and verify lock/transaction interleaving invariants.
 *
 * The hook is deliberately pull-free and allocation-free: the Runtime
 * emits plain structs through a single virtual call, guarded by one
 * null check, so the transactional hot path is unaffected when no
 * observer is registered (the default for all experiments).
 */

#ifndef HTMSIM_HTM_OBSERVER_HH
#define HTMSIM_HTM_OBSERVER_HH

#include <cstdint>

#include "abort.hh"
#include "site.hh"
#include "sim/scheduler.hh"

namespace htmsim::htm
{

/** What happened (one TxEvent per occurrence). */
enum class TxEventKind : std::uint8_t
{
    /** A transactional attempt began (status became active). */
    begin,
    /** A transactional attempt committed (write-back completed). */
    commit,
    /** A transactional attempt rolled back; TxEvent::cause says why. */
    abort,
    /** The global fallback lock was acquired by TxEvent::tid. */
    lockAcquired,
    /** The global fallback lock was released by TxEvent::tid. */
    lockReleased,
    /** An irrevocable (global-lock fallback) section completed its
     *  body; emitted while the lock is still held, i.e. at the
     *  section's serialization point. */
    fallbackCommit,
    /** A non-speculative section completed its body *without* the
     *  global fallback lock — e.g. under a per-object tmsync lock
     *  after a failed elision attempt. Emitted by the site-aware
     *  Runtime::runNonSpeculative overload while the caller's own
     *  lock is still held (the section's serialization point). */
    nonSpecCommit,
};

/** Human-readable event-kind name ("begin", "commit", ...). */
const char* txEventKindName(TxEventKind kind);

/** One transactional lifecycle event. */
struct TxEvent
{
    TxEventKind kind;
    /** Abort cause (meaningful for kind == abort, none otherwise). */
    AbortCause cause;
    /** Simulated thread the event belongs to. */
    std::uint16_t tid;
    /** Static site of the surrounding atomic section (0 = unknown). */
    TxSiteId site = unknownTxSite;
    /** The thread's virtual clock when the event occurred. */
    sim::Cycles cycles;
    /**
     * Virtual time the enclosing span began — pure observation, never
     * fed back into the simulation. Per kind:
     *   commit / abort    start of the attempt (before tbegin cost);
     *   fallbackCommit    start of the locked body (lock acquired);
     *   nonSpecCommit     start of the non-speculative body;
     *   lockAcquired      when the thread started waiting for the lock;
     *   lockReleased      when the lock was acquired (hold start);
     *   begin             start of the attempt (== the later commit's
     *                     or abort's sectionStart).
     * cycles - sectionStart is the span's duration; the txprof
     * subsystem attributes useful/wasted/lock cycles from exactly
     * these pairs.
     */
    sim::Cycles sectionStart = 0;
};

/**
 * One conflict-caused doom/abort decision. The *attacker* is the
 * winning side of the arbitration (whose access or line ownership
 * prevailed), the *victim* is the side whose transaction rolls back —
 * whichever way the configured ConflictPolicy decided. Emitted at
 * conflict-resolution time — before the victim unwinds — so both
 * parties' sites are still bound. This is the raw feed of the txprof
 * conflict matrix (which site pairs fight, and over which lines).
 */
struct TxConflictEvent
{
    /** Thread on the winning side of the conflict. */
    std::uint16_t attackerTid;
    /** Thread whose transaction aborts because of it. */
    std::uint16_t victimTid;
    /** Site bound on the winning thread (its most recently bound
     *  section when the winning access was non-transactional). */
    TxSiteId attackerSite;
    /** Site of the aborting section. */
    TxSiteId victimSite;
    /** The attacking access was non-transactional (strong isolation,
     *  including fallback-lock acquisition dooming subscribers). */
    bool attackerNonTx;
    /** Conflict-granularity line number (address >> granularity). */
    std::uintptr_t line;
    /** Attacker's virtual clock at resolution time. */
    sim::Cycles cycles;
};

/** Receives Runtime lifecycle events in global virtual-time order. */
class TxObserver
{
  public:
    virtual ~TxObserver() = default;

    /** One event. Must not re-enter the Runtime or the scheduler. */
    virtual void onEvent(const TxEvent& event) = 0;

    /** One conflict resolution. Default: ignore (existing observers
     *  like the simcheck EventRing only need lifecycle events). */
    virtual void onConflict(const TxConflictEvent& event)
    {
        (void) event;
    }
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_OBSERVER_HH

/**
 * @file
 * Transaction-event observation hooks.
 *
 * A TxObserver registered on a Runtime receives one callback per
 * transactional lifecycle event, in global virtual-time order (the
 * simulator is single-threaded on the host, and every event site is
 * preceded by a scheduling point, so callback order *is* the order in
 * which the events become globally visible). The simcheck subsystem
 * (src/check) uses this to capture per-run traces, reconstruct the
 * committed-transaction order for its differential serializability
 * oracle, and verify lock/transaction interleaving invariants.
 *
 * The hook is deliberately pull-free and allocation-free: the Runtime
 * emits plain structs through a single virtual call, guarded by one
 * null check, so the transactional hot path is unaffected when no
 * observer is registered (the default for all experiments).
 */

#ifndef HTMSIM_HTM_OBSERVER_HH
#define HTMSIM_HTM_OBSERVER_HH

#include <cstdint>

#include "abort.hh"
#include "sim/scheduler.hh"

namespace htmsim::htm
{

/** What happened (one TxEvent per occurrence). */
enum class TxEventKind : std::uint8_t
{
    /** A transactional attempt began (status became active). */
    begin,
    /** A transactional attempt committed (write-back completed). */
    commit,
    /** A transactional attempt rolled back; TxEvent::cause says why. */
    abort,
    /** The global fallback lock was acquired by TxEvent::tid. */
    lockAcquired,
    /** The global fallback lock was released by TxEvent::tid. */
    lockReleased,
    /** An irrevocable (global-lock fallback) section completed its
     *  body; emitted while the lock is still held, i.e. at the
     *  section's serialization point. */
    fallbackCommit,
};

/** Human-readable event-kind name ("begin", "commit", ...). */
const char* txEventKindName(TxEventKind kind);

/** One transactional lifecycle event. */
struct TxEvent
{
    TxEventKind kind;
    /** Abort cause (meaningful for kind == abort, none otherwise). */
    AbortCause cause;
    /** Simulated thread the event belongs to. */
    std::uint16_t tid;
    /** The thread's virtual clock when the event occurred. */
    sim::Cycles cycles;
};

/** Receives Runtime lifecycle events in global virtual-time order. */
class TxObserver
{
  public:
    virtual ~TxObserver() = default;

    /** One event. Must not re-enter the Runtime or the scheduler. */
    virtual void onEvent(const TxEvent& event) = 0;
};

} // namespace htmsim::htm

#endif // HTMSIM_HTM_OBSERVER_HH

#include "site.hh"

#include <unordered_map>
#include <vector>

namespace htmsim::htm
{

struct SiteRegistry::Impl
{
    std::vector<std::string> names;
    std::unordered_map<std::string, TxSiteId> ids;
};

SiteRegistry::SiteRegistry() : impl_(new Impl)
{
    impl_->names.reserve(64);
    impl_->names.emplace_back("<unknown>");
}

SiteRegistry&
SiteRegistry::instance()
{
    // Leaked on purpose: site ids must stay resolvable during static
    // destruction (profilers may format reports from destructors).
    static SiteRegistry* registry = new SiteRegistry;
    return *registry;
}

TxSiteId
SiteRegistry::intern(std::string_view name)
{
    auto found = impl_->ids.find(std::string(name));
    if (found != impl_->ids.end())
        return found->second;
    if (impl_->names.size() >= maxSites)
        return unknownTxSite;
    const auto id = TxSiteId(impl_->names.size());
    impl_->names.emplace_back(name);
    impl_->ids.emplace(impl_->names.back(), id);
    return id;
}

const std::string&
SiteRegistry::name(TxSiteId id) const
{
    if (id >= impl_->names.size())
        return impl_->names[0];
    return impl_->names[id];
}

std::size_t
SiteRegistry::size() const
{
    return impl_->names.size();
}

TxSiteId
txSite(std::string_view name)
{
    return SiteRegistry::instance().intern(name);
}

} // namespace htmsim::htm

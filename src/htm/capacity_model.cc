#include "capacity_model.hh"

#include <algorithm>

namespace htmsim::htm
{

namespace
{

/** A per-core budget shared by @p sharers SMT threads, never zero. */
std::size_t
sharedBudget(std::size_t lines, unsigned sharers)
{
    return std::max<std::size_t>(1, lines / sharers);
}

/** No budgets: the STM trace tool and the ideal-HTM oracle. */
class UnlimitedCapacityModel final : public CapacityModel
{
  public:
    AbortCause
    judgeNewLine(std::uintptr_t, bool, unsigned,
                 FootprintAccount&) override
    {
        return AbortCause::none;
    }
};

/** Loads and stores share one budget (BG/Q L2 slice, POWER8 TMCAM). */
class CombinedCapacityModel final : public CapacityModel
{
  public:
    explicit CombinedCapacityModel(std::size_t budget_lines)
        : budgetLines_(budget_lines)
    {
    }

    AbortCause
    judgeNewLine(std::uintptr_t, bool, unsigned sharers,
                 FootprintAccount& account) override
    {
        if (account.totalLines > sharedBudget(budgetLines_, sharers))
            return AbortCause::capacityOverflow;
        return AbortCause::none;
    }

  private:
    std::size_t budgetLines_;
};

/** Independent load / store budgets (zEC12's LRU extension and
 *  gathering store cache). */
class SplitCapacityModel final : public CapacityModel
{
  public:
    SplitCapacityModel(std::size_t load_lines, std::size_t store_lines)
        : loadBudgetLines_(load_lines), storeBudgetLines_(store_lines)
    {
    }

    AbortCause
    judgeNewLine(std::uintptr_t, bool new_store, unsigned sharers,
                 FootprintAccount& account) override
    {
        if (new_store) {
            if (account.storeLines >
                sharedBudget(storeBudgetLines_, sharers)) {
                return AbortCause::capacityOverflow;
            }
        } else if (account.loadLines >
                   sharedBudget(loadBudgetLines_, sharers)) {
            return AbortCause::capacityOverflow;
        }
        return AbortCause::none;
    }

  private:
    std::size_t loadBudgetLines_;
    std::size_t storeBudgetLines_;
};

/**
 * Intel Core: split budgets plus the L1 set-associativity rule —
 * transactional stores must stay in the L1, so exceeding a set's ways
 * evicts a transactional line and aborts (reported persistent).
 */
class IntelCapacityModel final : public CapacityModel
{
  public:
    IntelCapacityModel(std::size_t load_lines, std::size_t store_lines,
                       unsigned store_sets, unsigned store_ways)
        : split_(load_lines, store_lines), storeSets_(store_sets),
          storeWays_(store_ways)
    {
    }

    AbortCause
    judgeNewLine(std::uintptr_t line_number, bool new_store,
                 unsigned sharers, FootprintAccount& account) override
    {
        const AbortCause cause = split_.judgeNewLine(
            line_number, new_store, sharers, account);
        if (cause != AbortCause::none)
            return cause;
        if (new_store) {
            const unsigned set =
                unsigned(line_number) & (storeSets_ - 1);
            const unsigned ways_used =
                ++account.storeSetLines->insertOrFind(set);
            if (ways_used > std::max(1u, storeWays_ / sharers))
                return AbortCause::wayConflict;
        }
        return AbortCause::none;
    }

  private:
    SplitCapacityModel split_;
    unsigned storeSets_;
    unsigned storeWays_;
};

} // namespace

std::unique_ptr<CapacityModel>
makeCapacityModel(const MachineConfig& machine, bool ignore_capacity)
{
    if (ignore_capacity)
        return std::make_unique<UnlimitedCapacityModel>();
    if (machine.storeSets > 0) {
        return std::make_unique<IntelCapacityModel>(
            machine.loadCapacityLines(), machine.storeCapacityLines(),
            machine.storeSets, machine.storeWays);
    }
    if (machine.combinedCapacity) {
        return std::make_unique<CombinedCapacityModel>(
            machine.loadCapacityLines());
    }
    return std::make_unique<SplitCapacityModel>(
        machine.loadCapacityLines(), machine.storeCapacityLines());
}

} // namespace htmsim::htm

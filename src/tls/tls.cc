#include "tls.hh"

#include <algorithm>

#include "sim/random.hh"

namespace htmsim::tls
{

using htm::AbortCause;
using htm::Runtime;
using htm::Tx;
using sim::Cycles;
using sim::ThreadContext;

TlsParams
TlsParams::milcLike()
{
    TlsParams params;
    params.iterations = 360;
    params.iterWork = 900;
    params.depProb = 0.35;
    params.sharedSlots = 16;
    // Mostly line-exclusive outputs with occasional stragglers (a
    // 112-byte stride on 128-byte lines): the residual false
    // conflicts that suspend/resume cannot remove (83 % -> 10 % in
    // the paper, not zero).
    params.resultStrideWords = 14;
    // 433.milc spends roughly half its time in the TLS loops.
    params.loopFraction = 0.45;
    return params;
}

TlsParams
TlsParams::sphinxLike()
{
    TlsParams params;
    params.iterations = 480;
    params.iterWork = 650;
    params.depProb = 0.03;
    params.sharedSlots = 32;
    params.resultStrideWords = 32; // line-disjoint outputs
    // 482.sphinx3's TLS loops cover ~a quarter of its runtime.
    params.loopFraction = 0.25;
    return params;
}

void
TlsKernel::reset()
{
    sim::Rng rng(params_.seed);
    deps_.assign(params_.iterations, -1);
    for (unsigned i = 0; i < params_.iterations; ++i) {
        if (rng.nextBool(params_.depProb))
            deps_[i] = int(rng.nextRange(params_.sharedSlots));
    }
    shared_.assign(std::size_t(params_.sharedSlots) * slotStride, 0);
    results_.assign(std::size_t(params_.iterations) *
                        params_.resultStrideWords,
                    0);
    nextIterToCommit_ = 0;

    // Reference result via untimed ordered execution.
    htm::DirectContext direct;
    for (unsigned i = 0; i < params_.iterations; ++i)
        executeIteration(direct, i);
    reference_ = results_;

    shared_.assign(std::size_t(params_.sharedSlots) * slotStride, 0);
    results_.assign(std::size_t(params_.iterations) *
                        params_.resultStrideWords,
                    0);
}

Cycles
TlsKernel::serialRegionCycles() const
{
    // Serial region sized so the loop is `loopFraction` of the app.
    const double loop_nominal =
        double(params_.iterations) * double(params_.iterWork + 60);
    const double fraction =
        std::min(1.0, std::max(0.01, params_.loopFraction));
    return Cycles(loop_nominal * (1.0 - fraction) / fraction);
}

Cycles
TlsKernel::runSequential(const htm::MachineConfig& machine,
                         std::uint64_t seed)
{
    reset();
    sim::Scheduler scheduler(seed);
    Cycles start = 0;
    Cycles finish = 0;
    scheduler.spawn([&](ThreadContext& ctx) {
        htm::SeqContext seq(ctx, machine);
        start = ctx.now();
        ctx.advance(serialRegionCycles());
        for (unsigned i = 0; i < params_.iterations; ++i)
            executeIteration(seq, i);
        finish = ctx.now();
    });
    scheduler.run();
    return finish - start;
}

void
TlsKernel::tlsWorker(Runtime& runtime, ThreadContext& ctx,
                     unsigned threads, bool use_suspend_resume)
{
    for (unsigned i = ctx.id(); i < params_.iterations; i += threads) {
        for (;;) {
            if (runtime.nonTxLoad(ctx, &nextIterToCommit_) == i) {
                // Our turn already: run non-speculatively.
                runtime.runNonSpeculative(ctx, [&](Tx& tx) {
                    executeIteration(tx, i);
                });
                runtime.nonTxStore(ctx, &nextIterToCommit_,
                                   std::uint64_t(i) + 1);
                break;
            }

            static const htm::TxSiteId specSite =
                htm::txSite("tls.speculativeIteration");
            const AbortCause cause =
                runtime.tryOnce(ctx, specSite, [&](Tx& tx) {
                executeIteration(tx, i);
                if (use_suspend_resume) {
                    // Figure 8(b), light grey: wait for our turn
                    // outside transactional tracking.
                    tx.suspend();
                    ctx.spinUntil(
                        [&] { return nextIterToCommit_ == i; }, 30);
                    tx.resume();
                } else {
                    // Figure 8(b), dark grey: abort until our turn.
                    if (tx.load(&nextIterToCommit_) != i)
                        tx.abortTx();
                }
                tx.store(&nextIterToCommit_, std::uint64_t(i) + 1);
            });
            if (cause == AbortCause::none)
                break;
            ctx.step(50); // abort recovery before re-speculating
        }
    }
}

TlsResult
TlsKernel::runTls(const htm::RuntimeConfig& config, unsigned threads,
                  bool use_suspend_resume, std::uint64_t seed)
{
    if (use_suspend_resume && !config.machine.hasSuspendResume) {
        throw std::logic_error(
            "suspend/resume TLS needs POWER8-style support");
    }
    reset();

    sim::Scheduler scheduler(seed);
    Runtime runtime(config, threads);
    sim::Barrier barrier(threads);
    Cycles start = 0;
    Cycles finish = 0;
    for (unsigned t = 0; t < threads; ++t) {
        scheduler.spawn([&, threads](ThreadContext& ctx) {
            ctx.setTimeScale(config.machine.threadTimeScale(
                ctx.id(), threads));
            barrier.arrive(ctx);
            if (ctx.id() == 0) {
                start = ctx.now();
                ctx.advance(serialRegionCycles()); // Amdahl region
            }
            barrier.arrive(ctx);
            tlsWorker(runtime, ctx, threads, use_suspend_resume);
            barrier.arrive(ctx);
            if (ctx.id() == 0)
                finish = ctx.now();
        });
    }
    scheduler.run();

    TlsResult result;
    result.cycles = finish - start;
    result.stats = runtime.stats();
    result.abortRatio = result.stats.abortRatio();
    result.valid = results_ == reference_ &&
                   nextIterToCommit_ == params_.iterations;
    return result;
}

} // namespace htmsim::tls

/**
 * @file
 * Thread-Level Speculation on HTM (paper Sections 2.4, 6.3).
 *
 * A loop's iterations run speculatively on multiple threads but must
 * commit in order. The commit order is enforced through a shared
 * NextIterToCommit word. Two variants, as in the paper's Figure 8:
 *
 *  - without suspend/resume: the transaction reads the order word
 *    transactionally and aborts until its turn comes — every
 *    predecessor commit aborts all waiting successors;
 *  - with suspend/resume (POWER8): the transaction suspends, spins on
 *    the order word outside transactional tracking, and resumes —
 *    only true data dependences abort.
 *
 * The two kernels mirror the paper's SPEC CPU2006 subjects: milc-like
 * (heavier iterations, frequent cross-iteration touches) and
 * sphinx3-like (rare dependences, where suspend/resume cuts the abort
 * ratio from ~69 % to ~0.1 %).
 */

#ifndef HTMSIM_TLS_TLS_HH
#define HTMSIM_TLS_TLS_HH

#include <cstdint>
#include <vector>

#include "htm/context.hh"
#include "htm/runtime.hh"
#include "sim/sim.hh"

namespace htmsim::tls
{

struct TlsParams
{
    unsigned iterations = 480;
    sim::Cycles iterWork = 700;
    /** Shared accumulator slots touched by dependent iterations. */
    unsigned sharedSlots = 32;
    /** Probability an iteration reads+writes a shared slot. */
    double depProb = 0.05;
    /** Words between consecutive iterations' private outputs. A
     *  small stride packs several iterations into one cache line,
     *  reproducing milc's residual false conflicts; a full-line
     *  stride (16 words) keeps outputs conflict-free like sphinx3. */
    unsigned resultStrideWords = 16;
    /** Fraction of the whole application spent in the TLS loop; the
     *  rest is a serial region (Amdahl), so overall speed-ups match
     *  the paper's whole-program Figure 9 axis. */
    double loopFraction = 1.0;
    std::uint64_t seed = 2014;

    /** 433.milc-like: heavy iterations, frequent shared touches. */
    static TlsParams milcLike();
    /** 482.sphinx3-like: rare dependences. */
    static TlsParams sphinxLike();
};

/** Outcome of one TLS run. */
struct TlsResult
{
    sim::Cycles cycles = 0;
    htm::TxStats stats;
    bool valid = false;
    double abortRatio = 0.0;
};

/**
 * The parallelized loop kernel. Each iteration combines private
 * output with an optional read-modify-write of one shared slot; the
 * dependence pattern is fixed at setup so ordered execution must
 * reproduce the sequential result bit-for-bit.
 */
class TlsKernel
{
  public:
    explicit TlsKernel(TlsParams params) : params_(params) {}

    /** Sequential reference execution (also the timed baseline). */
    sim::Cycles runSequential(const htm::MachineConfig& machine,
                              std::uint64_t seed);

    /** TLS execution on @p threads simulated threads. */
    TlsResult runTls(const htm::RuntimeConfig& config, unsigned threads,
                     bool use_suspend_resume, std::uint64_t seed);

  private:
    void reset();

    /** The iteration body, written once against the context. */
    template <typename Ctx>
    void
    executeIteration(Ctx& c, unsigned i)
    {
        c.work(params_.iterWork);
        std::uint64_t value =
            std::uint64_t(i) * 0x9e3779b97f4a7c15ULL;
        const int dep = deps_[i];
        if (dep >= 0) {
            const std::uint64_t shared_value =
                c.load(&shared_[unsigned(dep) * slotStride]);
            value ^= shared_value;
            c.store(&shared_[unsigned(dep) * slotStride],
                    shared_value + i + 1);
        }
        c.store(&results_[std::size_t(i) * params_.resultStrideWords],
                value);
    }

    /** Whole-loop driver for one TLS worker thread. */
    void tlsWorker(htm::Runtime& runtime, sim::ThreadContext& ctx,
                   unsigned threads, bool use_suspend_resume);

    /** Cycles of the serial (non-TLS) application region. */
    sim::Cycles serialRegionCycles() const;

    /** One slot per 256-byte line so only true dependences collide. */
    static constexpr unsigned slotStride = 32;

    TlsParams params_;
    std::vector<int> deps_;
    std::vector<std::uint64_t> shared_;
    std::vector<std::uint64_t> results_;
    std::vector<std::uint64_t> reference_;
    alignas(256) std::uint64_t nextIterToCommit_ = 0;
};

} // namespace htmsim::tls

#endif // HTMSIM_TLS_TLS_HH

/**
 * @file
 * txprof: per-site transaction profiling on top of the TxObserver hook.
 *
 * A TxProfiler records the runtime's lifecycle and conflict events into
 * preallocated buffers and, after the run, aggregates them into a
 * per-site profile (useful vs wasted cycles, stalls, abort causes) and
 * a site-pair conflict matrix (who aborts whom, and over which lines).
 *
 * Zero perturbation is a hard requirement and shapes the design: the
 * simulated results depend on host heap addresses (conflict lines are
 * hashed from real pointers), so the profiler must not allocate a
 * single byte while the simulation runs. Both event buffers are
 * reserved up front in the constructor; recording is a bounds-checked
 * push_back that drops (and counts) events past capacity instead of
 * growing. All analysis happens post-run in report(). A profiled run
 * is therefore bit-identical to an unprofiled one
 * (tests/test_prof.cc proves this with a forked A/B grid).
 */

#ifndef HTMSIM_PROF_PROFILER_HH
#define HTMSIM_PROF_PROFILER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "htm/observer.hh"
#include "htm/site.hh"

namespace htmsim::prof
{

/** Aggregated profile of one static transaction site. */
struct SiteProfile
{
    htm::TxSiteId site = htm::unknownTxSite;
    std::string name;

    /** Transactional attempts (begin events). */
    std::uint64_t attempts = 0;
    /** Hardware (and constrained) commits. */
    std::uint64_t commits = 0;
    /** Aborted attempts. */
    std::uint64_t aborts = 0;
    /** Global-lock fallback executions. */
    std::uint64_t fallbackCommits = 0;
    /** Aborts by true model-internal cause. */
    std::array<std::uint64_t, htm::numAbortCauses> abortCauses{};
    /** Subset of aborts injected by the hazard layer (spurious and
     *  interrupt causes, hazard.hh). */
    std::uint64_t hazardAborts = 0;
    /** Wasted cycles of those hazard-injected aborts. */
    std::uint64_t hazardWastedCycles = 0;

    /** Cycles of committed attempts (attempt start -> commit). */
    std::uint64_t committedCycles = 0;
    /** Cycles of aborted attempts (attempt start -> rollback end). */
    std::uint64_t wastedCycles = 0;
    /** Cycles under the fallback lock (acquisition -> body end). */
    std::uint64_t fallbackCycles = 0;
    /** Cycles between an abort and the next attempt on the same
     *  thread: randomized backoff plus the lemming-effect wait. */
    std::uint64_t stallCycles = 0;
    /** Cycles spent waiting to acquire the fallback lock. */
    std::uint64_t lockWaitCycles = 0;

    /** Aborted-attempt cycles over all in-section cycles. */
    double
    wastedWorkRatio() const
    {
        const std::uint64_t useful = committedCycles + fallbackCycles;
        const std::uint64_t total = useful + wastedCycles;
        return total == 0 ? 0.0 : double(wastedCycles) / double(total);
    }

    /** Aborted attempts over all transactional attempts. */
    double
    abortRatio() const
    {
        const std::uint64_t tries = commits + aborts;
        return tries == 0 ? 0.0 : double(aborts) / double(tries);
    }

    std::uint64_t
    totalCycles() const
    {
        return committedCycles + wastedCycles + fallbackCycles;
    }
};

/** One cell of the conflict matrix: attacker site beats victim site. */
struct ConflictPairProfile
{
    /** Winning side of the arbitration. */
    htm::TxSiteId attacker = htm::unknownTxSite;
    /** Side whose transaction rolled back. */
    htm::TxSiteId victim = htm::unknownTxSite;
    std::string attackerName;
    std::string victimName;

    /** Conflict resolutions attributed to this pair. */
    std::uint64_t conflicts = 0;
    /** Subset where the winning access was non-transactional
     *  (strong isolation, including fallback-lock acquisition). */
    std::uint64_t nonTxConflicts = 0;
    /** Distinct conflict-granularity lines fought over. */
    std::size_t distinctLines = 0;
    /** The line with the most conflicts, and its count. */
    std::uintptr_t hotLine = 0;
    std::uint64_t hotLineConflicts = 0;
};

/** Post-run aggregation of everything a TxProfiler captured. */
struct ProfileReport
{
    /** Per-site profiles, hottest (most in-section cycles) first. */
    std::vector<SiteProfile> sites;
    /** Conflict matrix cells, most conflicts first. */
    std::vector<ConflictPairProfile> pairs;

    std::uint64_t events = 0;
    std::uint64_t droppedEvents = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t droppedConflicts = 0;

    /** Totals across all sites. */
    std::uint64_t committedCycles = 0;
    std::uint64_t wastedCycles = 0;
    std::uint64_t fallbackCycles = 0;
    /** Wasted cycles attributed to hazard-injected aborts. */
    std::uint64_t hazardWastedCycles = 0;

    double
    wastedWorkRatio() const
    {
        const std::uint64_t useful = committedCycles + fallbackCycles;
        const std::uint64_t total = useful + wastedCycles;
        return total == 0 ? 0.0 : double(wastedCycles) / double(total);
    }
};

/**
 * TxObserver that records a run's events for post-run analysis.
 *
 * Allocation-free during the run (see the file comment); register it
 * via RuntimeConfig::observer or Runtime::setObserver. One profiler
 * can observe several runs back to back (call clear() in between) but
 * not two runtimes concurrently.
 */
class TxProfiler : public htm::TxObserver
{
  public:
    /** Default buffer sizes: ~48 MB of events, enough for every
     *  scaled STAMP cell at the default HTMSIM_SCALE. */
    static constexpr std::size_t defaultEventCapacity = 1u << 21;
    static constexpr std::size_t defaultConflictCapacity = 1u << 18;

    explicit TxProfiler(
        std::size_t event_capacity = defaultEventCapacity,
        std::size_t conflict_capacity = defaultConflictCapacity);

    void onEvent(const htm::TxEvent& event) override;
    void onConflict(const htm::TxConflictEvent& event) override;

    /** Raw captured events, in global virtual-time order. */
    const std::vector<htm::TxEvent>& events() const { return events_; }
    const std::vector<htm::TxConflictEvent>& conflicts() const
    {
        return conflicts_;
    }

    std::uint64_t droppedEvents() const { return droppedEvents_; }
    std::uint64_t droppedConflicts() const { return droppedConflicts_; }
    /** Whether any buffer overflowed (the profile is then partial). */
    bool truncated() const
    {
        return droppedEvents_ != 0 || droppedConflicts_ != 0;
    }

    /** Drop all captured data, keeping the reserved buffers. */
    void clear();

    /** Aggregate the captured events (post-run; allocates freely). */
    ProfileReport report() const;

  private:
    std::vector<htm::TxEvent> events_;
    std::vector<htm::TxConflictEvent> conflicts_;
    std::uint64_t droppedEvents_ = 0;
    std::uint64_t droppedConflicts_ = 0;
};

} // namespace htmsim::prof

#endif // HTMSIM_PROF_PROFILER_HH

/**
 * @file
 * txprof: profile a STAMP benchmark run per transaction site.
 *
 *   txprof --bench yada --machine z12 --threads 8 --prof out.json
 *   txprof --bench vacation-high --machine p8 --perfetto trace.json
 *   txprof --selftest
 *
 * The run is tuned exactly like the experiment benches (best retry
 * counts over the standard grid), then the winning configuration is
 * re-run with a TxProfiler attached. Profiling is zero-perturbation,
 * so the profiled run is a faithful replay of the tuned winner.
 *
 * Outputs: a human-readable per-site table and top conflicting site
 * pairs on stdout, optionally a JSON profile (--prof) and a Perfetto /
 * Chrome trace_event file (--perfetto) loadable in ui.perfetto.dev.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/suite.hh"
#include "prof/profiler.hh"
#include "prof/report.hh"

using namespace htmsim;
using namespace htmsim::bench;

namespace
{

void
usage(std::FILE* out)
{
    std::fprintf(
        out,
        "usage: txprof [options]\n"
        "  --bench NAME      STAMP benchmark (default genome; see "
        "--list)\n"
        "  --machine M       bg | z12 | ic | p8 (default ic)\n"
        "  --threads N       simulated threads (default 4)\n"
        "  --backend B       htm | lock | ideal (default htm)\n"
        "  --seed S          simulation seed (default 1)\n"
        "  --prof FILE       write the JSON profile to FILE\n"
        "  --perfetto FILE   write a Perfetto trace_event file\n"
        "  --top N           conflict pairs to print (default 10)\n"
        "  --no-tune         skip retry-count tuning (first preset)\n"
        "  --quiet           suppress the stdout report\n"
        "  --list            list benchmarks and exit\n"
        "  --selftest        run the built-in attribution check\n");
}

/**
 * Built-in end-to-end check of the profiling pipeline: a scripted
 * two-site workload whose conflict structure is known by construction.
 *
 * Site selftest.writerAB increments word A, dawdles, then increments
 * word B; site selftest.writerB increments only B. A and B live on
 * different conflict lines (alignas(256) exceeds every machine's
 * granularity), so every transactional conflict must be attributed to
 * the pair (writerAB, writerB) on B's line — never A's.
 */
int
selftest()
{
    const htm::MachineConfig& machine = htm::MachineConfig::all()[2];
    htm::RuntimeConfig config{machine};
    prof::TxProfiler profiler(std::size_t(1) << 16,
                              std::size_t(1) << 12);
    config.observer = &profiler;

    const htm::TxSiteId site_ab = htm::txSite("selftest.writerAB");
    const htm::TxSiteId site_b = htm::txSite("selftest.writerB");

    struct alignas(256) SharedWord
    {
        std::uint64_t value = 0;
    };
    SharedWord a;
    SharedWord b;
    constexpr unsigned iterations = 400;

    sim::Scheduler scheduler(1);
    htm::Runtime runtime(config, 2);
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        for (unsigned i = 0; i < iterations; ++i) {
            runtime.atomic(ctx, site_ab, [&](htm::Tx& tx) {
                tx.store(&a.value, tx.load(&a.value) + 1);
                tx.work(200);
                tx.store(&b.value, tx.load(&b.value) + 1);
            });
            ctx.advance(50);
        }
    });
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        for (unsigned i = 0; i < iterations; ++i) {
            runtime.atomic(ctx, site_b, [&](htm::Tx& tx) {
                tx.store(&b.value, tx.load(&b.value) + 1);
            });
            ctx.advance(30);
        }
    });
    scheduler.run();

    auto fail = [](const char* what) {
        std::fprintf(stderr, "txprof selftest FAILED: %s\n", what);
        return 1;
    };

    if (a.value != iterations || b.value != 2 * iterations)
        return fail("workload result is wrong");
    const htm::TxStats stats = runtime.stats();
    if (stats.totalCommits() != 2 * iterations)
        return fail("commit count does not match the workload");
    if (stats.totalAborts() == 0)
        return fail("the scripted contention produced no aborts");

    // Conflict attribution: every tx/tx conflict must involve the two
    // scripted sites and must be on B's line, never on A's.
    std::size_t shift = 0;
    while ((std::size_t(1) << shift) < runtime.effectiveGranularity())
        ++shift;
    const std::uintptr_t line_a = std::uintptr_t(&a.value) >> shift;
    const std::uintptr_t line_b = std::uintptr_t(&b.value) >> shift;
    std::uint64_t tx_conflicts = 0;
    for (const htm::TxConflictEvent& event : profiler.conflicts()) {
        if (event.attackerNonTx)
            continue;
        ++tx_conflicts;
        if (event.line == line_a)
            return fail("conflict attributed to the uncontended line");
        if (event.line != line_b)
            return fail("conflict on an unexpected line");
        const bool known_sites =
            (event.attackerSite == site_ab ||
             event.attackerSite == site_b) &&
            (event.victimSite == site_ab ||
             event.victimSite == site_b);
        if (!known_sites)
            return fail("conflict between unregistered sites");
    }
    if (tx_conflicts == 0)
        return fail("no transactional conflicts were recorded");

    // Aggregation: both sites visible with full commit counts and a
    // consistent cycle attribution.
    const prof::ProfileReport report = profiler.report();
    const prof::SiteProfile* prof_ab = nullptr;
    const prof::SiteProfile* prof_b = nullptr;
    for (const prof::SiteProfile& site : report.sites) {
        if (site.site == site_ab)
            prof_ab = &site;
        if (site.site == site_b)
            prof_b = &site;
    }
    if (prof_ab == nullptr || prof_b == nullptr)
        return fail("a scripted site is missing from the report");
    if (prof_ab->commits + prof_ab->fallbackCommits != iterations ||
        prof_b->commits + prof_b->fallbackCommits != iterations)
        return fail("per-site commit counts are wrong");
    if (report.wastedCycles == 0)
        return fail("aborts recorded but no wasted cycles attributed");
    if (report.committedCycles + report.fallbackCycles == 0)
        return fail("no useful cycles attributed");
    if (profiler.truncated())
        return fail("capture buffers overflowed");

    // Exporters: both documents must be produced and name the sites.
    prof::RunInfo info;
    info.bench = "selftest";
    info.machine = machine.name;
    info.backend = "htm";
    info.threads = 2;
    info.seed = 1;
    info.tmCycles = 1;
    info.stats = stats;
    std::ostringstream json;
    prof::writeProfileJson(json, info, report);
    if (json.str().find("selftest.writerAB") == std::string::npos ||
        json.str().find("conflictPairs") == std::string::npos)
        return fail("JSON profile is missing expected content");
    std::ostringstream trace;
    prof::writePerfettoTrace(trace, info, profiler);
    if (trace.str().find("traceEvents") == std::string::npos ||
        trace.str().find("selftest.writerB") == std::string::npos)
        return fail("Perfetto trace is missing expected content");

    std::printf("txprof selftest OK: %llu commits, %llu aborts, "
                "%llu tx conflicts on the shared line\n",
                (unsigned long long)stats.totalCommits(),
                (unsigned long long)stats.totalAborts(),
                (unsigned long long)tx_conflicts);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string bench = "genome";
    std::string machine_name = "ic";
    std::string backend_name = "htm";
    unsigned threads = 4;
    std::uint64_t seed = 1;
    std::string prof_path;
    std::string perfetto_path;
    std::size_t top_pairs = 10;
    bool tune = true;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--bench") {
            bench = value();
        } else if (arg == "--machine") {
            machine_name = value();
        } else if (arg == "--threads") {
            threads = unsigned(std::atoi(value()));
        } else if (arg == "--backend") {
            backend_name = value();
        } else if (arg == "--seed") {
            seed = std::uint64_t(std::atoll(value()));
        } else if (arg == "--prof") {
            prof_path = value();
        } else if (arg == "--perfetto") {
            perfetto_path = value();
        } else if (arg == "--top") {
            top_pairs = std::size_t(std::atoi(value()));
        } else if (arg == "--no-tune") {
            tune = false;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            for (const std::string& name : suiteNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--selftest") {
            return selftest();
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(stderr);
            return 1;
        }
    }

    htm::BackendKind backend;
    if (backend_name == "htm") {
        backend = htm::BackendKind::htm;
    } else if (backend_name == "lock") {
        backend = htm::BackendKind::globalLock;
    } else if (backend_name == "ideal") {
        backend = htm::BackendKind::idealHtm;
    } else if (backend_name == "hybrid") {
        backend = htm::BackendKind::hybrid;
    } else {
        std::fprintf(stderr,
                     "unknown backend '%s' (use "
                     "htm|lock|ideal|hybrid)\n",
                     backend_name.c_str());
        return 1;
    }

    int machine_index = -1;
    const char* labels[] = {"bg", "z12", "ic", "p8"};
    for (int i = 0; i < 4; ++i) {
        if (machine_name == labels[i])
            machine_index = i;
    }
    if (machine_index < 0) {
        std::fprintf(stderr,
                     "unknown machine '%s' (use bg|z12|ic|p8)\n",
                     machine_name.c_str());
        return 1;
    }
    bool known = false;
    for (const std::string& name : suiteNames())
        known = known || name == bench;
    if (!known) {
        std::fprintf(stderr, "unknown benchmark '%s' (see --list)\n",
                     bench.c_str());
        return 1;
    }

    const MachineConfig& machine =
        MachineConfig::all()[unsigned(machine_index)];
    if (threads == 0 || threads > machine.maxThreads()) {
        std::fprintf(stderr, "%s supports 1..%u threads\n",
                     machine.name.c_str(), machine.maxThreads());
        return 1;
    }

    // Phase 1: find the best runtime configuration, unprofiled, using
    // the same tuning grid as the experiment benches.
    SuiteRunner runner;
    RuntimeConfig best_config{machine};
    best_config.backend = backend;
    if (tune && backend != htm::BackendKind::globalLock) {
        double best_ratio = 0.0;
        bool first = true;
        for (RuntimeConfig config :
             SuiteRunner::tuningCandidates(machine)) {
            config.backend = backend;
            const Speedup current = runner.run(
                bench, config, machine, threads, true, seed);
            if (first || current.ratio > best_ratio) {
                best_config = config;
                best_ratio = current.ratio;
                first = false;
            }
        }
    } else {
        RuntimeConfig config =
            SuiteRunner::tuningCandidates(machine).front();
        config.backend = backend;
        best_config = config;
    }

    // Phase 2: replay the winner with the profiler attached.
    prof::TxProfiler profiler;
    best_config.observer = &profiler;
    const Speedup profiled = runner.run(bench, best_config, machine,
                                        threads, true, seed);

    prof::RunInfo info;
    info.bench = bench;
    info.machine = machine.name;
    info.backend = htm::backendKindName(backend);
    info.threads = threads;
    info.seed = seed;
    info.tmCycles = profiled.tm.cycles;
    info.seqCycles = profiled.seq.cycles;
    info.speedup = profiled.ratio;
    info.stats = profiled.tm.stats;

    const prof::ProfileReport report = profiler.report();
    if (!quiet)
        prof::printReport(stdout, info, report, top_pairs);

    if (!prof_path.empty()) {
        std::ofstream out(prof_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         prof_path.c_str());
            return 1;
        }
        prof::writeProfileJson(out, info, report);
        if (!quiet)
            std::printf("\nprofile written to %s\n",
                        prof_path.c_str());
    }
    if (!perfetto_path.empty()) {
        std::ofstream out(perfetto_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         perfetto_path.c_str());
            return 1;
        }
        prof::writePerfettoTrace(out, info, profiler);
        if (!quiet)
            std::printf("trace written to %s (load in "
                        "ui.perfetto.dev)\n",
                        perfetto_path.c_str());
    }

    if (!profiled.tm.valid) {
        std::fprintf(stderr, "verification FAILED\n");
        return 1;
    }
    return 0;
}

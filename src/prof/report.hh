/**
 * @file
 * txprof exporters: machine-readable JSON profile and a Perfetto /
 * Chrome trace_event file, plus the human-readable text report shared
 * by the txprof CLI and stamp_runner --prof.
 *
 * The Perfetto export uses the legacy Chrome trace_event JSON format
 * ({"traceEvents": [...]}), which ui.perfetto.dev and chrome://tracing
 * both load directly. One virtual cycle is mapped to one nanosecond.
 */

#ifndef HTMSIM_PROF_REPORT_HH
#define HTMSIM_PROF_REPORT_HH

#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

#include "htm/stats.hh"
#include "profiler.hh"

namespace htmsim::prof
{

/** Everything about the profiled run that the exporters record. */
struct RunInfo
{
    std::string bench;
    std::string machine;
    std::string backend;
    unsigned threads = 0;
    std::uint64_t seed = 0;
    /** Parallel-region cycles of the profiled (transactional) run. */
    std::uint64_t tmCycles = 0;
    /** Sequential-baseline cycles (0 if not measured). */
    std::uint64_t seqCycles = 0;
    double speedup = 0.0;
    /** Run-wide runtime statistics (cycle attribution included). */
    htm::TxStats stats;
};

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(std::string_view text);

/** Write the aggregated profile as a JSON document. */
void writeProfileJson(std::ostream& out, const RunInfo& info,
                      const ProfileReport& report);

/**
 * Write the captured events as a Chrome trace_event JSON file:
 * one complete ("ph":"X") slice per committed / aborted / fallback
 * section and per lock wait/hold span, one instant event per conflict
 * resolution. Load the file in ui.perfetto.dev.
 */
void writePerfettoTrace(std::ostream& out, const RunInfo& info,
                        const TxProfiler& profiler);

/** Print the human-readable per-site table and top conflict pairs. */
void printReport(std::FILE* out, const RunInfo& info,
                 const ProfileReport& report, std::size_t top_pairs);

} // namespace htmsim::prof

#endif // HTMSIM_PROF_REPORT_HH

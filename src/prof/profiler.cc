#include "profiler.hh"

#include <algorithm>
#include <unordered_map>

namespace htmsim::prof
{

using htm::TxEvent;
using htm::TxEventKind;

TxProfiler::TxProfiler(std::size_t event_capacity,
                       std::size_t conflict_capacity)
{
    // All memory the run will touch is grabbed here: onEvent and
    // onConflict must never allocate (see the file comment).
    events_.reserve(event_capacity);
    conflicts_.reserve(conflict_capacity);
}

void
TxProfiler::onEvent(const htm::TxEvent& event)
{
    if (events_.size() < events_.capacity())
        events_.push_back(event);
    else
        ++droppedEvents_;
}

void
TxProfiler::onConflict(const htm::TxConflictEvent& event)
{
    if (conflicts_.size() < conflicts_.capacity())
        conflicts_.push_back(event);
    else
        ++droppedConflicts_;
}

void
TxProfiler::clear()
{
    events_.clear();
    conflicts_.clear();
    droppedEvents_ = 0;
    droppedConflicts_ = 0;
}

ProfileReport
TxProfiler::report() const
{
    ProfileReport result;
    result.events = events_.size();
    result.droppedEvents = droppedEvents_;
    result.conflicts = conflicts_.size();
    result.droppedConflicts = droppedConflicts_;

    const htm::SiteRegistry& registry = htm::SiteRegistry::instance();
    std::vector<SiteProfile> sites(registry.size());
    for (std::size_t id = 0; id < sites.size(); ++id) {
        sites[id].site = htm::TxSiteId(id);
        sites[id].name = registry.name(htm::TxSiteId(id));
    }
    auto site_of = [&sites](htm::TxSiteId id) -> SiteProfile& {
        return sites[id < sites.size() ? id : 0];
    };

    // The abort -> next-begin gap on a thread is the retry stall
    // (randomized backoff + lemming wait); attribute it to the site
    // that aborted.
    struct PendingStall
    {
        bool valid = false;
        htm::TxSiteId site = htm::unknownTxSite;
        sim::Cycles abortEnd = 0;
    };
    std::unordered_map<std::uint16_t, PendingStall> pending;

    for (const TxEvent& event : events_) {
        SiteProfile& site = site_of(event.site);
        const sim::Cycles span = event.cycles - event.sectionStart;
        switch (event.kind) {
          case TxEventKind::begin: {
            ++site.attempts;
            PendingStall& stall = pending[event.tid];
            if (stall.valid && event.sectionStart >= stall.abortEnd) {
                site_of(stall.site).stallCycles +=
                    event.sectionStart - stall.abortEnd;
            }
            stall.valid = false;
            break;
          }
          case TxEventKind::commit:
            ++site.commits;
            site.committedCycles += span;
            break;
          case TxEventKind::abort: {
            ++site.aborts;
            site.wastedCycles += span;
            if (std::size_t(event.cause) < site.abortCauses.size())
                ++site.abortCauses[std::size_t(event.cause)];
            if (event.cause == htm::AbortCause::spurious ||
                event.cause == htm::AbortCause::interrupt) {
                ++site.hazardAborts;
                site.hazardWastedCycles += span;
            }
            pending[event.tid] = {true, event.site, event.cycles};
            break;
          }
          case TxEventKind::lockAcquired:
            site.lockWaitCycles += span;
            break;
          case TxEventKind::lockReleased:
            break;
          case TxEventKind::fallbackCommit:
          case TxEventKind::nonSpecCommit:
            ++site.fallbackCommits;
            site.fallbackCycles += span;
            break;
        }
    }

    for (const SiteProfile& site : sites) {
        result.committedCycles += site.committedCycles;
        result.wastedCycles += site.wastedCycles;
        result.fallbackCycles += site.fallbackCycles;
        result.hazardWastedCycles += site.hazardWastedCycles;
    }

    // Conflict matrix: (attacker site, victim site) -> counts plus a
    // per-line histogram for the hot-line column.
    struct PairCell
    {
        std::uint64_t conflicts = 0;
        std::uint64_t nonTx = 0;
        std::unordered_map<std::uintptr_t, std::uint64_t> lines;
    };
    std::unordered_map<std::uint32_t, PairCell> cells;
    for (const htm::TxConflictEvent& event : conflicts_) {
        const std::uint32_t key =
            (std::uint32_t(event.attackerSite) << 16) |
            std::uint32_t(event.victimSite);
        PairCell& cell = cells[key];
        ++cell.conflicts;
        if (event.attackerNonTx)
            ++cell.nonTx;
        ++cell.lines[event.line];
    }
    result.pairs.reserve(cells.size());
    for (const auto& [key, cell] : cells) {
        ConflictPairProfile pair;
        pair.attacker = htm::TxSiteId(key >> 16);
        pair.victim = htm::TxSiteId(key & 0xffff);
        pair.attackerName = registry.name(pair.attacker);
        pair.victimName = registry.name(pair.victim);
        pair.conflicts = cell.conflicts;
        pair.nonTxConflicts = cell.nonTx;
        pair.distinctLines = cell.lines.size();
        for (const auto& [line, count] : cell.lines) {
            if (count > pair.hotLineConflicts ||
                (count == pair.hotLineConflicts &&
                 line < pair.hotLine)) {
                pair.hotLine = line;
                pair.hotLineConflicts = count;
            }
        }
        result.pairs.push_back(std::move(pair));
    }
    std::sort(result.pairs.begin(), result.pairs.end(),
              [](const ConflictPairProfile& a,
                 const ConflictPairProfile& b) {
                  if (a.conflicts != b.conflicts)
                      return a.conflicts > b.conflicts;
                  if (a.attacker != b.attacker)
                      return a.attacker < b.attacker;
                  return a.victim < b.victim;
              });

    // Keep only sites that saw any activity, hottest first.
    sites.erase(std::remove_if(sites.begin(), sites.end(),
                               [](const SiteProfile& site) {
                                   return site.attempts == 0 &&
                                          site.fallbackCommits == 0 &&
                                          site.lockWaitCycles == 0;
                               }),
                sites.end());
    std::sort(sites.begin(), sites.end(),
              [](const SiteProfile& a, const SiteProfile& b) {
                  if (a.totalCycles() != b.totalCycles())
                      return a.totalCycles() > b.totalCycles();
                  return a.site < b.site;
              });
    result.sites = std::move(sites);
    return result;
}

} // namespace htmsim::prof

#include "report.hh"

#include <cinttypes>
#include <cstdio>

#include "htm/abort.hh"

namespace htmsim::prof
{

using htm::TxEvent;
using htm::TxEventKind;

std::string
jsonEscape(std::string_view text)
{
    std::string result;
    result.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': result += "\\\""; break;
          case '\\': result += "\\\\"; break;
          case '\n': result += "\\n"; break;
          case '\r': result += "\\r"; break;
          case '\t': result += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              unsigned(c));
                result += buffer;
            } else {
                result += c;
            }
        }
    }
    return result;
}

namespace
{

/** Microseconds for trace_event "ts"/"dur" (1 cycle = 1 ns). */
double
micros(sim::Cycles cycles)
{
    return double(cycles) / 1000.0;
}

} // namespace

void
writeProfileJson(std::ostream& out, const RunInfo& info,
                 const ProfileReport& report)
{
    out << "{\n";
    out << "  \"tool\": \"txprof\",\n";
    out << "  \"run\": {\n";
    out << "    \"bench\": \"" << jsonEscape(info.bench) << "\",\n";
    out << "    \"machine\": \"" << jsonEscape(info.machine) << "\",\n";
    out << "    \"backend\": \"" << jsonEscape(info.backend) << "\",\n";
    out << "    \"threads\": " << info.threads << ",\n";
    out << "    \"seed\": " << info.seed << ",\n";
    out << "    \"tmCycles\": " << info.tmCycles << ",\n";
    out << "    \"seqCycles\": " << info.seqCycles << ",\n";
    out << "    \"speedup\": " << info.speedup << ",\n";
    out << "    \"commits\": " << info.stats.totalCommits() << ",\n";
    out << "    \"aborts\": " << info.stats.totalAborts() << ",\n";
    out << "    \"abortRatio\": " << info.stats.abortRatio() << ",\n";
    out << "    \"serializationRatio\": "
        << info.stats.serializationRatio() << ",\n";
    out << "    \"wastedWorkRatio\": "
        << info.stats.wastedWorkRatio() << ",\n";
    out << "    \"committedTxCycles\": "
        << info.stats.committedTxCycles << ",\n";
    out << "    \"wastedTxCycles\": " << info.stats.wastedTxCycles
        << ",\n";
    out << "    \"stmCommits\": " << info.stats.stmCommits << ",\n";
    out << "    \"committedStmCycles\": "
        << info.stats.committedStmCycles << ",\n";
    out << "    \"wastedStmCycles\": " << info.stats.wastedStmCycles
        << ",\n";
    out << "    \"fallbackCycles\": " << info.stats.fallbackCycles
        << ",\n";
    out << "    \"lockWaitCycles\": " << info.stats.lockWaitCycles
        << ",\n";
    out << "    \"backoffCycles\": " << info.stats.backoffCycles
        << ",\n";
    out << "    \"hazardAborts\": " << info.stats.hazardAborts()
        << ",\n";
    out << "    \"hazardCapacityAborts\": "
        << info.stats.hazardCapacityAborts << ",\n";
    out << "    \"hazardPreemptStalls\": "
        << info.stats.hazardPreemptStalls << ",\n";
    out << "    \"hazardStallCycles\": "
        << info.stats.hazardStallCycles << "\n";
    out << "  },\n";
    out << "  \"capture\": {\n";
    out << "    \"events\": " << report.events << ",\n";
    out << "    \"droppedEvents\": " << report.droppedEvents << ",\n";
    out << "    \"conflicts\": " << report.conflicts << ",\n";
    out << "    \"droppedConflicts\": " << report.droppedConflicts
        << "\n";
    out << "  },\n";

    out << "  \"sites\": [\n";
    for (std::size_t i = 0; i < report.sites.size(); ++i) {
        const SiteProfile& site = report.sites[i];
        out << "    {\n";
        out << "      \"site\": " << site.site << ",\n";
        out << "      \"name\": \"" << jsonEscape(site.name)
            << "\",\n";
        out << "      \"attempts\": " << site.attempts << ",\n";
        out << "      \"commits\": " << site.commits << ",\n";
        out << "      \"aborts\": " << site.aborts << ",\n";
        out << "      \"fallbackCommits\": " << site.fallbackCommits
            << ",\n";
        out << "      \"committedCycles\": " << site.committedCycles
            << ",\n";
        out << "      \"wastedCycles\": " << site.wastedCycles
            << ",\n";
        out << "      \"fallbackCycles\": " << site.fallbackCycles
            << ",\n";
        out << "      \"hazardAborts\": " << site.hazardAborts
            << ",\n";
        out << "      \"hazardWastedCycles\": "
            << site.hazardWastedCycles << ",\n";
        out << "      \"stallCycles\": " << site.stallCycles << ",\n";
        out << "      \"lockWaitCycles\": " << site.lockWaitCycles
            << ",\n";
        out << "      \"abortRatio\": " << site.abortRatio() << ",\n";
        out << "      \"wastedWorkRatio\": " << site.wastedWorkRatio()
            << ",\n";
        out << "      \"abortCauses\": {";
        bool first = true;
        for (std::size_t cause = 0; cause < site.abortCauses.size();
             ++cause) {
            if (site.abortCauses[cause] == 0)
                continue;
            if (!first)
                out << ", ";
            first = false;
            out << "\""
                << jsonEscape(
                       htm::abortCauseName(htm::AbortCause(cause)))
                << "\": " << site.abortCauses[cause];
        }
        out << "}\n";
        out << "    }" << (i + 1 < report.sites.size() ? "," : "")
            << "\n";
    }
    out << "  ],\n";

    out << "  \"conflictPairs\": [\n";
    for (std::size_t i = 0; i < report.pairs.size(); ++i) {
        const ConflictPairProfile& pair = report.pairs[i];
        out << "    {\n";
        out << "      \"attacker\": \""
            << jsonEscape(pair.attackerName) << "\",\n";
        out << "      \"victim\": \"" << jsonEscape(pair.victimName)
            << "\",\n";
        out << "      \"conflicts\": " << pair.conflicts << ",\n";
        out << "      \"nonTxConflicts\": " << pair.nonTxConflicts
            << ",\n";
        out << "      \"distinctLines\": " << pair.distinctLines
            << ",\n";
        out << "      \"hotLine\": \"0x" << std::hex << pair.hotLine
            << std::dec << "\",\n";
        out << "      \"hotLineConflicts\": " << pair.hotLineConflicts
            << "\n";
        out << "    }" << (i + 1 < report.pairs.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

void
writePerfettoTrace(std::ostream& out, const RunInfo& info,
                   const TxProfiler& profiler)
{
    const htm::SiteRegistry& registry = htm::SiteRegistry::instance();
    out << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n";

    out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"args\": {\"name\": \"htmsim "
        << jsonEscape(info.bench) << " on "
        << jsonEscape(info.machine) << "\"}}";

    auto slice = [&](const char* name, const char* category,
                     std::uint16_t tid, sim::Cycles start,
                     sim::Cycles end, const std::string& args) {
        out << ",\n{\"name\": \"" << name << "\", \"cat\": \""
            << category << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
            << tid << ", \"ts\": " << micros(start)
            << ", \"dur\": " << micros(end - start);
        if (!args.empty())
            out << ", \"args\": {" << args << "}";
        out << "}";
    };

    for (const TxEvent& event : profiler.events()) {
        const std::string site =
            jsonEscape(registry.name(event.site));
        switch (event.kind) {
          case TxEventKind::commit:
            slice(site.c_str(), "tx", event.tid, event.sectionStart,
                  event.cycles, "\"outcome\": \"commit\"");
            break;
          case TxEventKind::abort:
            slice(site.c_str(), "abort", event.tid,
                  event.sectionStart, event.cycles,
                  std::string("\"outcome\": \"abort\", \"cause\": \"") +
                      jsonEscape(htm::abortCauseName(event.cause)) +
                      "\"");
            break;
          case TxEventKind::fallbackCommit:
            slice(site.c_str(), "fallback", event.tid,
                  event.sectionStart, event.cycles,
                  "\"outcome\": \"fallback\"");
            break;
          case TxEventKind::nonSpecCommit:
            slice(site.c_str(), "fallback", event.tid,
                  event.sectionStart, event.cycles,
                  "\"outcome\": \"nonspec\"");
            break;
          case TxEventKind::lockAcquired:
            if (event.cycles > event.sectionStart) {
                slice("lock wait", "lock", event.tid,
                      event.sectionStart, event.cycles,
                      "\"site\": \"" + site + "\"");
            }
            break;
          case TxEventKind::lockReleased:
            slice("lock held", "lock", event.tid, event.sectionStart,
                  event.cycles, "\"site\": \"" + site + "\"");
            break;
          case TxEventKind::begin:
            break;
        }
    }

    char line[32];
    for (const htm::TxConflictEvent& event : profiler.conflicts()) {
        std::snprintf(line, sizeof(line), "0x%" PRIxPTR, event.line);
        out << ",\n{\"name\": \"conflict\", \"cat\": \"conflict\", "
               "\"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": "
            << event.victimTid << ", \"ts\": " << micros(event.cycles)
            << ", \"args\": {\"attacker\": \""
            << jsonEscape(registry.name(event.attackerSite))
            << "\", \"victim\": \""
            << jsonEscape(registry.name(event.victimSite))
            << "\", \"nonTxAttacker\": "
            << (event.attackerNonTx ? "true" : "false")
            << ", \"line\": \"" << line << "\"}}";
    }

    out << "\n]\n}\n";
}

void
printReport(std::FILE* out, const RunInfo& info,
            const ProfileReport& report, std::size_t top_pairs)
{
    std::fprintf(out,
                 "txprof: %s on %s, %u thread(s), backend %s, seed "
                 "%" PRIu64 "\n",
                 info.bench.c_str(), info.machine.c_str(),
                 info.threads, info.backend.c_str(), info.seed);
    if (info.seqCycles != 0) {
        std::fprintf(out,
                     "  cycles: seq %" PRIu64 "  tm %" PRIu64
                     "  speed-up %.2fx\n",
                     info.seqCycles, info.tmCycles, info.speedup);
    }
    std::fprintf(out,
                 "  run: commits %" PRIu64 "  aborts %" PRIu64
                 " (%.1f%%)  serialization %.1f%%  wasted work "
                 "%.1f%%\n",
                 info.stats.totalCommits(), info.stats.totalAborts(),
                 info.stats.abortRatio() * 100.0,
                 info.stats.serializationRatio() * 100.0,
                 info.stats.wastedWorkRatio() * 100.0);
    if (info.stats.hazardAborts() != 0 ||
        info.stats.hazardPreemptStalls != 0) {
        std::fprintf(out,
                     "  hazards: %" PRIu64 " injected aborts (%" PRIu64
                     " capacity)  %" PRIu64 " lock-holder stalls "
                     "(%.1f kc, %.1f kc wasted in aborted attempts)\n",
                     info.stats.hazardAborts(),
                     info.stats.hazardCapacityAborts,
                     info.stats.hazardPreemptStalls,
                     double(info.stats.hazardStallCycles) / 1000.0,
                     double(report.hazardWastedCycles) / 1000.0);
    }
    if (report.droppedEvents != 0 || report.droppedConflicts != 0) {
        std::fprintf(out,
                     "  WARNING: capture truncated (%" PRIu64
                     " events, %" PRIu64
                     " conflicts dropped); profile is partial\n",
                     report.droppedEvents, report.droppedConflicts);
    }

    std::fprintf(out, "\n  %-28s %8s %8s %7s %6s %9s %9s %9s %7s\n",
                 "site", "commits", "aborts", "fallbk", "abort%",
                 "useful-kc", "wasted-kc", "stall-kc", "waste%");
    for (const SiteProfile& site : report.sites) {
        std::fprintf(out,
                     "  %-28s %8" PRIu64 " %8" PRIu64 " %7" PRIu64
                     " %5.1f%% %9.1f %9.1f %9.1f %6.1f%%\n",
                     site.name.c_str(), site.commits, site.aborts,
                     site.fallbackCommits, site.abortRatio() * 100.0,
                     double(site.committedCycles +
                            site.fallbackCycles) /
                         1000.0,
                     double(site.wastedCycles) / 1000.0,
                     double(site.stallCycles + site.lockWaitCycles) /
                         1000.0,
                     site.wastedWorkRatio() * 100.0);
    }

    if (report.pairs.empty()) {
        std::fprintf(out, "\n  no conflicts recorded\n");
        return;
    }
    std::fprintf(out, "\n  top conflicting site pairs:\n");
    std::fprintf(out, "  %-28s %-28s %9s %7s %6s\n", "winner",
                 "aborted", "conflicts", "non-tx", "lines");
    const std::size_t shown =
        std::min(top_pairs, report.pairs.size());
    for (std::size_t i = 0; i < shown; ++i) {
        const ConflictPairProfile& pair = report.pairs[i];
        std::fprintf(out,
                     "  %-28s %-28s %9" PRIu64 " %7" PRIu64
                     " %5zu  (hot line 0x%" PRIxPTR ": %" PRIu64
                     ")\n",
                     pair.attackerName.c_str(),
                     pair.victimName.c_str(), pair.conflicts,
                     pair.nonTxConflicts, pair.distinctLines,
                     pair.hotLine, pair.hotLineConflicts);
    }
    if (shown < report.pairs.size()) {
        std::fprintf(out, "  ... %zu more pair(s)\n",
                     report.pairs.size() - shown);
    }
}

} // namespace htmsim::prof

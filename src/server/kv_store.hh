/**
 * @file
 * TM-backed in-memory KV/OLTP store — the server's shared state.
 *
 * Three conflict-realistic structures, all from tmds/:
 *
 *  - an *object table* (TmHashTable): point gets/puts/read-modify-
 *    writes land here; different buckets never conflict;
 *  - an *ordered index* (TmRbTree) mirroring the object table's
 *    key -> value mapping: small range scans traverse it, and every
 *    put updates table AND index inside one atomic block (the classic
 *    two-structure transaction whose atomicity the differential
 *    oracle can check);
 *  - an *account array* (padded to line granularity): multi-key
 *    transfer transactions move balance between accounts, preserving
 *    the total — a conserved-sum invariant that any isolation bug
 *    breaks loudly.
 *
 * Every operation is templated over the access context, so the same
 * code runs transactionally (htm::Tx), serially in the oracle's replay
 * (Tx under the lock backend), and at host speed during setup
 * (htm::DirectContext). Operations fold every transactionally loaded
 * value they depend on into their returned result — the oracle
 * workload contract (check/workload.hh).
 */

#ifndef HTMSIM_SERVER_KV_STORE_HH
#define HTMSIM_SERVER_KV_STORE_HH

#include <cstdint>
#include <vector>

#include "check/workload.hh"
#include "htm/context.hh"
#include "tmds/tm_hashtable.hh"
#include "tmds/tm_rbtree.hh"

namespace htmsim::server
{

class KvStore
{
  public:
    /**
     * @param num_keys object-table key space ([0, num_keys))
     * @param num_accounts transferable accounts
     * @param initial_balance starting balance of every account
     */
    KvStore(std::uint64_t num_keys, std::uint64_t num_accounts,
            std::uint64_t initial_balance)
        : numKeys_(num_keys), numAccounts_(num_accounts),
          initialBalance_(initial_balance),
          table_(std::size_t(num_keys / 4 + 16)),
          accounts_(num_accounts)
    {
        htm::DirectContext direct;
        for (std::uint64_t key = 0; key < num_keys; ++key) {
            table_.insert(direct, key, initialValue(key));
            index_.insert(direct, key, initialValue(key));
        }
        for (std::uint64_t account = 0; account < num_accounts;
             ++account)
            accounts_[account].balance = initial_balance;
    }

    KvStore(const KvStore&) = delete;
    KvStore& operator=(const KvStore&) = delete;

    /** Point read; folds the value (and presence) into the result. */
    template <typename Ctx>
    std::uint64_t
    get(Ctx& c, std::uint64_t key)
    {
        std::uint64_t value = 0;
        const bool found = table_.find(c, key, &value);
        return check::foldHash(found ? 1 : 0, value);
    }

    /** Blind write: update object table and ordered index together. */
    template <typename Ctx>
    std::uint64_t
    put(Ctx& c, std::uint64_t key, std::uint64_t value)
    {
        const bool in_table = table_.update(c, key, value);
        const bool in_index = index_.update(c, key, value);
        // Keys are preloaded and never removed, so both must hit; the
        // fold makes a divergence between the structures visible to
        // the oracle's result comparison.
        return check::foldHash(in_table ? 2 : 0, in_index ? 3 : 0);
    }

    /** Read-modify-write: value' = mix(value) + delta; returns the
     *  value read (folded), making lost updates observable. */
    template <typename Ctx>
    std::uint64_t
    rmw(Ctx& c, std::uint64_t key, std::uint64_t delta)
    {
        std::uint64_t value = 0;
        const bool found = table_.find(c, key, &value);
        if (found) {
            const std::uint64_t next = value + delta;
            table_.update(c, key, next);
            index_.update(c, key, next);
        }
        return check::foldHash(found ? 5 : 0, value);
    }

    /**
     * Multi-key transfer: rotate @p amount of balance through
     * @p span accounts starting at @p first (each debited @p amount
     * and the next credited), preserving the global sum. Returns the
     * fold of every balance read.
     */
    template <typename Ctx>
    std::uint64_t
    transfer(Ctx& c, std::uint64_t first, unsigned span,
             std::uint64_t amount)
    {
        std::uint64_t folded = 7;
        for (unsigned hop = 0; hop < span; ++hop) {
            const std::uint64_t from = (first + hop) % numAccounts_;
            const std::uint64_t to = (first + hop + 1) % numAccounts_;
            const std::uint64_t from_balance =
                c.load(&accounts_[from].balance);
            const std::uint64_t to_balance =
                c.load(&accounts_[to].balance);
            c.store(&accounts_[from].balance, from_balance - amount);
            c.store(&accounts_[to].balance, to_balance + amount);
            folded = check::foldHash(folded, from_balance);
            folded = check::foldHash(folded, to_balance);
        }
        return folded;
    }

    /** Small ordered range scan over the index from @p from. */
    template <typename Ctx>
    std::uint64_t
    scan(Ctx& c, std::uint64_t from, unsigned limit)
    {
        std::uint64_t folded = 11;
        index_.rangeEach(c, from, limit,
                         [&](std::uint64_t key, std::uint64_t value) {
                             folded = check::foldHash(folded, key);
                             folded = check::foldHash(folded, value);
                         });
        return folded;
    }

    // --- Host-side verification (post-run, untimed) -----------------

    /** Total account balance equals the conserved initial sum. */
    bool
    balancesConserved()
    {
        std::uint64_t total = 0;
        for (const Account& account : accounts_)
            total += account.balance;
        return total == numAccounts_ * initialBalance_;
    }

    /** Object table and ordered index agree on every key. */
    bool
    structuresAgree()
    {
        htm::DirectContext direct;
        if (table_.size(direct) != numKeys_ ||
            index_.size(direct) != numKeys_)
            return false;
        bool agree = true;
        index_.forEach(direct, [&](std::uint64_t key,
                                   std::uint64_t value) {
            std::uint64_t table_value = 0;
            if (!table_.find(direct, key, &table_value) ||
                table_value != value)
                agree = false;
        });
        return agree;
    }

    /** Order-sensitive digest of the full state (oracle fingerprint). */
    std::uint64_t
    fingerprint()
    {
        htm::DirectContext direct;
        std::uint64_t digest = 13;
        index_.forEach(direct, [&](std::uint64_t key,
                                   std::uint64_t value) {
            digest = check::foldHash(digest, key);
            digest = check::foldHash(digest, value);
        });
        for (const Account& account : accounts_)
            digest = check::foldHash(digest, account.balance);
        return digest;
    }

    std::uint64_t numKeys() const { return numKeys_; }
    std::uint64_t numAccounts() const { return numAccounts_; }

    static std::uint64_t
    initialValue(std::uint64_t key)
    {
        return key * 0x9e3779b97f4a7c15ULL + 1;
    }

  private:
    /** One account per conflict line, like real OLTP row padding. */
    struct alignas(64) Account
    {
        std::uint64_t balance = 0;
    };

    std::uint64_t numKeys_;
    std::uint64_t numAccounts_;
    std::uint64_t initialBalance_;
    tmds::TmHashTable<> table_;
    tmds::TmRbTree index_;
    std::vector<Account> accounts_;
};

} // namespace htmsim::server

#endif // HTMSIM_SERVER_KV_STORE_HH

/**
 * @file
 * Open-loop traffic generation for the server benchmark.
 *
 * Each simulated client owns a TrafficGen seeded from (seed, client
 * id). Every draw — operation kind, keys, interarrival jitter — comes
 * from that dedicated stream, NEVER from the thread context's rng():
 * the HTM runtime consumes the context stream for backoff and hazard
 * draws, so its position is interleaving-dependent, and a traffic
 * generator fed from it would emit different requests under different
 * schedules. With dedicated streams the offered load is a pure
 * function of (seed, client, request index) no matter how the run
 * interleaves — the property the determinism tests pin.
 *
 * Arrivals are open-loop: request i's arrival time is the sum of i
 * interarrival gaps, independent of service times. A client whose
 * previous request ran long starts the next one late but does not
 * reschedule it — queueing delay shows up in latency, as in a real
 * load generator.
 */

#ifndef HTMSIM_SERVER_TRAFFIC_HH
#define HTMSIM_SERVER_TRAFFIC_HH

#include <cassert>
#include <cstdint>

#include "sim/random.hh"
#include "zipf.hh"

namespace htmsim::server
{

/** Operation kinds of the KV/OLTP mix. */
enum class OpKind : std::uint8_t
{
    get,
    put,
    rmw,
    transfer,
    scan,
};

inline constexpr unsigned numOpKinds = 5;

inline const char*
opKindName(OpKind kind)
{
    switch (kind) {
    case OpKind::get: return "get";
    case OpKind::put: return "put";
    case OpKind::rmw: return "rmw";
    case OpKind::transfer: return "transfer";
    case OpKind::scan: return "scan";
    }
    return "?";
}

/** One generated request. */
struct Request
{
    OpKind kind = OpKind::get;
    /** Primary key (get/put/rmw/scan) or first account (transfer). */
    std::uint64_t key = 0;
    /** Payload value (put), delta (rmw), or amount (transfer). */
    std::uint64_t value = 0;
    /** Virtual-time arrival (absolute cycles). */
    std::uint64_t arrival = 0;
};

/** Workload shape: mix, skew, sizes, offered load. */
struct TrafficConfig
{
    /** Key-space and account-array sizes. */
    std::uint64_t numKeys = 4096;
    std::uint64_t numAccounts = 256;
    std::uint64_t initialBalance = 1000;

    /** Zipfian skew over keys and accounts (0 <= theta < 1). */
    double zipfTheta = 0.8;

    /** Relative op-mix weights (any non-negative integers, not all
     *  zero). The default is a read-mostly OLTP mix. */
    unsigned getWeight = 50;
    unsigned putWeight = 20;
    unsigned rmwWeight = 15;
    unsigned transferWeight = 10;
    unsigned scanWeight = 5;

    /** Accounts touched by one transfer (>= 1). */
    unsigned transferSpan = 2;
    /** Elements visited by one range scan (>= 1). */
    unsigned scanLen = 8;

    /** Requests issued per client. */
    unsigned opsPerClient = 64;

    /** Mean interarrival gap per client in cycles; the actual gap is
     *  uniform in [mean/2, 3*mean/2), so the offered rate is mean's
     *  reciprocal without synchronized arrival spikes. */
    std::uint64_t meanInterarrivalCycles = 4000;

    unsigned
    totalWeight() const
    {
        return getWeight + putWeight + rmwWeight + transferWeight +
               scanWeight;
    }
};

/** Per-client deterministic request stream. */
class TrafficGen
{
  public:
    TrafficGen(const TrafficConfig& config,
               const ZipfianGenerator& keys,
               const ZipfianGenerator& accounts, std::uint64_t seed,
               unsigned client)
        : config_(&config), keys_(&keys), accounts_(&accounts),
          // Stream ids offset past the scheduler's per-thread streams
          // so a client's traffic never correlates with its context
          // rng even under the same master seed.
          rng_(seed ^ 0x7261666669633164ULL, 0x10000 + client)
    {
        assert(config.totalWeight() > 0);
    }

    /** Generate the next request (advances arrival time). */
    Request
    next()
    {
        Request request;
        request.kind = drawKind();
        switch (request.kind) {
        case OpKind::get:
            request.key = keys_->scrambledNext(rng_);
            break;
        case OpKind::put:
            request.key = keys_->scrambledNext(rng_);
            request.value = rng_.nextU64();
            break;
        case OpKind::rmw:
            request.key = keys_->scrambledNext(rng_);
            request.value = rng_.nextRange(1024) + 1;
            break;
        case OpKind::transfer:
            request.key = accounts_->scrambledNext(rng_);
            request.value = rng_.nextRange(100) + 1;
            break;
        case OpKind::scan:
            request.key = keys_->scrambledNext(rng_);
            break;
        }
        const std::uint64_t mean = config_->meanInterarrivalCycles;
        const std::uint64_t gap =
            mean / 2 + rng_.nextRange(mean > 1 ? mean : 1);
        nextArrival_ += gap;
        request.arrival = nextArrival_;
        return request;
    }

  private:
    OpKind
    drawKind()
    {
        std::uint64_t draw = rng_.nextRange(config_->totalWeight());
        if (draw < config_->getWeight)
            return OpKind::get;
        draw -= config_->getWeight;
        if (draw < config_->putWeight)
            return OpKind::put;
        draw -= config_->putWeight;
        if (draw < config_->rmwWeight)
            return OpKind::rmw;
        draw -= config_->rmwWeight;
        if (draw < config_->transferWeight)
            return OpKind::transfer;
        return OpKind::scan;
    }

    const TrafficConfig* config_;
    const ZipfianGenerator* keys_;
    const ZipfianGenerator* accounts_;
    sim::Rng rng_;
    std::uint64_t nextArrival_ = 0;
};

} // namespace htmsim::server

#endif // HTMSIM_SERVER_TRAFFIC_HH

/**
 * @file
 * Allocation-free latency histogram (HDR-style fixed log buckets).
 *
 * The server benchmark records one latency sample per committed
 * operation while the simulation runs, and simulated results depend on
 * host heap addresses, so recording must not allocate (the same hard
 * rule the txprof observer follows). The histogram is therefore a
 * fixed std::array of buckets: values below 2^kSubBucketBits are exact;
 * above that, each power of two is split into 2^kSubBucketBits
 * sub-buckets, bounding the relative quantization error at ~3% — ample
 * for p50/p99/p999 reporting.
 *
 * percentile() returns the upper bound of the bucket containing the
 * requested rank, so reported percentiles are conservative (never
 * under-state the latency) and merging histograms (operator+=) is
 * exact.
 */

#ifndef HTMSIM_SERVER_LATENCY_HH
#define HTMSIM_SERVER_LATENCY_HH

#include <algorithm>
#include <array>
#include <cstdint>

namespace htmsim::server
{

class LatencyHistogram
{
  public:
    static constexpr unsigned kSubBucketBits = 5;
    static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
    /** Buckets cover the full uint64 range. */
    static constexpr unsigned kBuckets =
        (64 - kSubBucketBits + 1) * kSubBuckets;

    void
    record(std::uint64_t value)
    {
        ++counts_[bucketIndex(value)];
        ++total_;
        sum_ += value;
        max_ = std::max(max_, value);
    }

    std::uint64_t count() const { return total_; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return total_ == 0 ? 0.0 : double(sum_) / double(total_);
    }

    /**
     * Smallest bucket upper bound covering fraction @p p of samples
     * (p in (0, 1]; e.g. 0.999 for p999). 0 when empty.
     */
    std::uint64_t
    percentile(double p) const
    {
        if (total_ == 0)
            return 0;
        const double want = p * double(total_);
        std::uint64_t rank = std::uint64_t(want);
        if (double(rank) < want)
            ++rank;
        rank = std::max<std::uint64_t>(rank, 1);
        std::uint64_t seen = 0;
        for (unsigned bucket = 0; bucket < kBuckets; ++bucket) {
            seen += counts_[bucket];
            if (seen >= rank)
                return std::min(bucketUpperBound(bucket), max_);
        }
        return max_;
    }

    LatencyHistogram&
    operator+=(const LatencyHistogram& other)
    {
        for (unsigned bucket = 0; bucket < kBuckets; ++bucket)
            counts_[bucket] += other.counts_[bucket];
        total_ += other.total_;
        sum_ += other.sum_;
        max_ = std::max(max_, other.max_);
        return *this;
    }

    /** Bucket for @p value (public for tests). */
    static unsigned
    bucketIndex(std::uint64_t value)
    {
        if (value < kSubBuckets)
            return unsigned(value);
        const unsigned exponent =
            63 - unsigned(__builtin_clzll(value));
        const unsigned sub = unsigned(
            (value >> (exponent - kSubBucketBits)) & (kSubBuckets - 1));
        return (exponent - kSubBucketBits + 1) * kSubBuckets + sub;
    }

    /** Largest value mapping to @p bucket (public for tests). */
    static std::uint64_t
    bucketUpperBound(unsigned bucket)
    {
        if (bucket < kSubBuckets)
            return bucket;
        const unsigned exponent =
            bucket / kSubBuckets + kSubBucketBits - 1;
        const std::uint64_t sub = bucket % kSubBuckets;
        const unsigned shift = exponent - kSubBucketBits;
        return ((kSubBuckets + sub + 1) << shift) - 1;
    }

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace htmsim::server

#endif // HTMSIM_SERVER_LATENCY_HH

/**
 * @file
 * Deterministic Zipfian key-rank generator (YCSB-style).
 *
 * Implements the Gray et al. "Quickly generating billion-record
 * synthetic databases" closed form that YCSB popularized: the zeta
 * normalization constant is precomputed once at construction (host
 * time, untimed), so drawing a rank costs two pow() calls and no
 * memory. All randomness flows through sim::Rng, never std::
 * distributions, so a (seed, stream) pair always yields the same key
 * sequence — the server traffic generator's determinism leans on this.
 *
 * Rank 0 is the hottest item. scrambledNext() additionally spreads the
 * hot ranks across the key space with an FNV-1a mix (YCSB's
 * ScrambledZipfianGenerator) so that popularity is decoupled from key
 * adjacency — without it, the hot set would also be one rb-tree
 * neighborhood and every scan would cross it.
 */

#ifndef HTMSIM_SERVER_ZIPF_HH
#define HTMSIM_SERVER_ZIPF_HH

#include <cassert>
#include <cmath>
#include <cstdint>

#include "sim/random.hh"

namespace htmsim::server
{

class ZipfianGenerator
{
  public:
    /**
     * @param items key-space size (> 0)
     * @param theta skew in [0, 1): 0 = uniform-ish, 0.99 = the classic
     *        YCSB hot-spot distribution.
     */
    ZipfianGenerator(std::uint64_t items, double theta)
        : items_(items), theta_(theta)
    {
        assert(items > 0);
        assert(theta >= 0.0 && theta < 1.0);
        zetan_ = zeta(items, theta);
        const double zeta2 = zeta(2, theta);
        alpha_ = 1.0 / (1.0 - theta);
        eta_ = (1.0 - std::pow(2.0 / double(items), 1.0 - theta)) /
               (1.0 - zeta2 / zetan_);
    }

    /** Next rank in [0, items): 0 is most popular. */
    std::uint64_t
    next(sim::Rng& rng) const
    {
        const double u = rng.nextDouble();
        const double uz = u * zetan_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta_))
            return 1;
        const std::uint64_t rank = std::uint64_t(
            double(items_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return rank >= items_ ? items_ - 1 : rank;
    }

    /** Next rank, scattered over the key space (hot != adjacent). */
    std::uint64_t
    scrambledNext(sim::Rng& rng) const
    {
        return scramble(next(rng)) % items_;
    }

    std::uint64_t items() const { return items_; }
    double theta() const { return theta_; }

    /** FNV-1a 64-bit avalanche of a rank (public for tests). */
    static std::uint64_t
    scramble(std::uint64_t value)
    {
        std::uint64_t hash = 0xcbf29ce484222325ULL;
        for (unsigned byte = 0; byte < 8; ++byte) {
            hash ^= (value >> (byte * 8)) & 0xff;
            hash *= 0x100000001b3ULL;
        }
        return hash;
    }

  private:
    static double
    zeta(std::uint64_t n, double theta)
    {
        double sum = 0.0;
        for (std::uint64_t i = 1; i <= n; ++i)
            sum += 1.0 / std::pow(double(i), theta);
        return sum;
    }

    std::uint64_t items_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
};

} // namespace htmsim::server

#endif // HTMSIM_SERVER_ZIPF_HH

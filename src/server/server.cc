#include "server.hh"

#include <cassert>
#include <vector>

#include "htm/site.hh"
#include "htm/tx.hh"
#include "kv_store.hh"
#include "sim/scheduler.hh"
#include "tmsync/atomic_shared_mutex.hh"
#include "tmsync/guard.hh"

namespace htmsim::server
{

namespace
{

/** One static txprof site per operation kind, so cycle attribution
 *  can explain which op class owns the tail. */
htm::TxSiteId
siteOf(OpKind kind)
{
    static const htm::TxSiteId sites[numOpKinds] = {
        htm::txSite("server.get"),      htm::txSite("server.put"),
        htm::txSite("server.rmw"),      htm::txSite("server.transfer"),
        htm::txSite("server.scan"),
    };
    return sites[std::size_t(kind)];
}

} // namespace

const char*
indexLockModeName(IndexLockMode mode)
{
    switch (mode) {
      case IndexLockMode::none: return "none";
      case IndexLockMode::elided: return "elided";
      case IndexLockMode::tatas: return "tatas";
    }
    return "?";
}

bool
parseIndexLockMode(const std::string& name, IndexLockMode& out)
{
    if (name == "none") {
        out = IndexLockMode::none;
    } else if (name == "elided") {
        out = IndexLockMode::elided;
    } else if (name == "tatas") {
        out = IndexLockMode::tatas;
    } else {
        return false;
    }
    return true;
}

ServerResult
runServer(const ServerConfig& config)
{
    assert(config.clients >= 1 &&
           config.clients <= htm::kMaxTxThreads);

    // Shared state and generators are built host-side, untimed.
    KvStore store(config.traffic.numKeys, config.traffic.numAccounts,
                  config.traffic.initialBalance);
    const ZipfianGenerator key_dist(config.traffic.numKeys,
                                    config.traffic.zipfTheta);
    const ZipfianGenerator account_dist(config.traffic.numAccounts,
                                        config.traffic.zipfTheta);

    sim::Scheduler scheduler(config.seed);
    scheduler.setBatching(config.runtime.batchEpoch);
    scheduler.setStackBytes(config.stackBytes);
    htm::Runtime runtime(config.runtime, config.clients);
    if (config.observer != nullptr)
        runtime.setObserver(config.observer);

    ServerResult result;
    std::vector<std::uint64_t> finish_times(config.clients, 0);

    // Ordered-index guard (IndexLockMode in server.hh). A stack local,
    // so the indexLock == none configuration touches neither the heap
    // nor the simulation: ops stay on the runtime.atomic path below
    // and the word is never read — bit-identical to the pre-tmsync
    // server (tests/test_tmsync.cc pins this with a forked A/B run).
    tmsync::atomic_shared_mutex index_lock;
    const bool guard_index = config.indexLock != IndexLockMode::none;
    const tmsync::SyncMode index_mode =
        config.indexLock == IndexLockMode::elided ?
            tmsync::SyncMode::elided :
            tmsync::SyncMode::tatas;

    for (unsigned client = 0; client < config.clients; ++client) {
        scheduler.spawn([&, client](sim::ThreadContext& ctx) {
            ctx.setTimeScale(config.runtime.machine.threadTimeScale(
                ctx.id(), config.clients));
            TrafficGen traffic(config.traffic, key_dist, account_dist,
                               config.seed, client);
            for (unsigned op = 0; op < config.traffic.opsPerClient;
                 ++op) {
                const Request request = traffic.next();
                // Open loop: wait for the scheduled arrival; if the
                // previous request overran, start late (queueing
                // delay), never early.
                if (ctx.now() < request.arrival) {
                    ctx.advance(request.arrival - ctx.now());
                    ctx.sync();
                }
                const std::uint64_t submit = ctx.now();
                std::uint64_t folded = 0;
                const auto body = [&](htm::Tx& tx) {
                    switch (request.kind) {
                    case OpKind::get:
                        folded = store.get(tx, request.key);
                        break;
                    case OpKind::put:
                        folded = store.put(tx, request.key,
                                           request.value);
                        break;
                    case OpKind::rmw:
                        folded = store.rmw(tx, request.key,
                                           request.value);
                        break;
                    case OpKind::transfer:
                        folded = store.transfer(
                            tx, request.key,
                            config.traffic.transferSpan,
                            request.value);
                        break;
                    case OpKind::scan:
                        folded = store.scan(tx, request.key,
                                            config.traffic.scanLen);
                        break;
                    }
                };
                // Index-touching ops go through the guard executor
                // instead of nesting a guard inside runtime.atomic
                // (tmsync rejects nesting): scans take the lock
                // shared, index-mutating put/rmw take it exclusive.
                if (guard_index && request.kind == OpKind::scan) {
                    tmsync::transactional_shared_lock_guard guard(
                        runtime, ctx, index_lock,
                        siteOf(request.kind), index_mode, body);
                    ++result.indexGuardSections;
                    result.indexGuardElided +=
                        guard.elided() ? 1 : 0;
                } else if (guard_index &&
                           (request.kind == OpKind::put ||
                            request.kind == OpKind::rmw)) {
                    tmsync::transactional_lock_guard guard(
                        runtime, ctx, index_lock,
                        siteOf(request.kind), index_mode, body);
                    ++result.indexGuardSections;
                    result.indexGuardElided +=
                        guard.elided() ? 1 : 0;
                } else {
                    runtime.atomic(ctx, siteOf(request.kind), body);
                }
                // The fold ties the op's loads into live data so the
                // compiler cannot hoist or elide the body.
                (void)folded;
                const std::uint64_t latency = ctx.now() - submit;
                result.latency.record(latency);
                result.perOp[std::size_t(request.kind)].record(
                    latency);
                result.queueDelay.record(submit - request.arrival);
            }
            finish_times[client] = ctx.now();
        });
    }
    scheduler.run();

    for (const std::uint64_t finish : finish_times)
        result.horizonCycles =
            finish > result.horizonCycles ? finish :
                                            result.horizonCycles;
    result.committedOps = result.latency.count();
    result.stats = runtime.stats();
    result.invariantsOk =
        store.balancesConserved() && store.structuresAgree();
    return result;
}

} // namespace htmsim::server

/**
 * @file
 * The simulated TM-backed server: N open-loop clients over one KvStore.
 *
 * runServer() is to the OLTP scenario what stamp/harness.hh is to the
 * STAMP suite: it wires a Scheduler, a Runtime on the chosen machine
 * model and backend, and one fiber per simulated client, then reports
 * committed-transaction throughput and virtual-time latency
 * percentiles.
 *
 * Latency definition (DESIGN.md Section 9): one operation's latency is
 * measured in virtual cycles from the begin of its first transactional
 * attempt — the atomic() entry, after any arrival-time wait — to its
 * commit, inclusive of every retry, backoff wait, lemming wait, and
 * global-lock fallback in between. Time a request spends queued behind
 * the client's previous request (open-loop lateness) is reported
 * separately via the queueDelay histogram, not folded into operation
 * latency.
 *
 * Clients beyond the machine's SMT capacity timeshare cores via the
 * oversubscription extension of MachineConfig::smtTimeScale, so a
 * 256-client run on a 4-core/2-way Intel model is 32 clients per core
 * at pinned aggregate throughput — contention honesty for tail
 * latencies.
 */

#ifndef HTMSIM_SERVER_SERVER_HH
#define HTMSIM_SERVER_SERVER_HH

#include <array>
#include <cstdint>
#include <string>

#include "htm/runtime.hh"
#include "latency.hh"
#include "traffic.hh"

namespace htmsim::server
{

/**
 * Optional ordered-index guard around the range-scan path.
 *
 * `none` leaves every operation on the plain runtime.atomic path —
 * bit-identical to the pre-tmsync server. `elided` / `tatas` route
 * scans through a tmsync::transactional_shared_lock_guard (shared
 * mode) and the index-mutating put/rmw ops through an exclusive
 * transactional_lock_guard over one process-wide
 * tmsync::atomic_shared_mutex, in the requested SyncMode. get and
 * transfer never touch the ordered index and stay on runtime.atomic.
 */
enum class IndexLockMode : std::uint8_t
{
    none,
    elided,
    tatas,
};

const char* indexLockModeName(IndexLockMode mode);

/** Parse "none", "elided", "tatas"; @return recognized. */
bool parseIndexLockMode(const std::string& name, IndexLockMode& out);

/** Everything configurable about one server run. */
struct ServerConfig
{
    /** Machine model, backend, retry policy, batching, hazards. */
    htm::RuntimeConfig runtime;
    /** Simulated clients (1 .. htm::kMaxTxThreads). */
    unsigned clients = 64;
    /** Workload shape and offered load. */
    TrafficConfig traffic;
    /** Master seed for the scheduler and all traffic streams. */
    std::uint64_t seed = 1;
    /** Per-client fiber stack bytes (server ops are shallow). */
    std::size_t stackBytes = 64 * 1024;
    /** Ordered-index guard mode (IndexLockMode above). */
    IndexLockMode indexLock = IndexLockMode::none;
    /** Optional observer (txprof attribution); may be nullptr. */
    htm::TxObserver* observer = nullptr;
};

/** Outcome of one server run. */
struct ServerResult
{
    /** Operations completed (every request, exactly once). */
    std::uint64_t committedOps = 0;
    /** Virtual time of the last client to finish. */
    std::uint64_t horizonCycles = 0;
    /** First-attempt-to-commit latency over all operations. */
    LatencyHistogram latency;
    /** Latency split by operation kind. */
    std::array<LatencyHistogram, numOpKinds> perOp;
    /** Open-loop lateness: scheduled arrival -> first attempt. */
    LatencyHistogram queueDelay;
    /** Aggregated runtime statistics (aborts, fallbacks, cycles). */
    htm::TxStats stats;
    /** Operations routed through the index guard (0 when the guard
     *  is off), and how many of those elided the lock. */
    std::uint64_t indexGuardSections = 0;
    std::uint64_t indexGuardElided = 0;
    /** Conserved-balance and table/index-agreement checks. */
    bool invariantsOk = false;

    /** Committed transactions per thousand virtual cycles. */
    double
    throughputPerKcycle() const
    {
        return horizonCycles == 0 ? 0.0 :
               double(committedOps) * 1000.0 / double(horizonCycles);
    }
};

/** Run one server configuration to completion. */
ServerResult runServer(const ServerConfig& config);

} // namespace htmsim::server

#endif // HTMSIM_SERVER_SERVER_HH

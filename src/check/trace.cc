#include "trace.hh"

#include <cstdio>

namespace htmsim::check
{

using htm::TxEvent;
using htm::TxEventKind;

namespace
{

std::string
describe(const TxEvent& event)
{
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer),
                  "t%u %s%s%s @%llu", unsigned(event.tid),
                  htm::txEventKindName(event.kind),
                  event.kind == TxEventKind::abort ? " " : "",
                  event.kind == TxEventKind::abort
                      ? htm::abortCauseName(event.cause)
                      : "",
                  (unsigned long long) event.cycles);
    return buffer;
}

} // namespace

std::string
checkTraceInvariants(const std::vector<TxEvent>& events,
                     unsigned num_threads)
{
    std::vector<bool> active(num_threads, false);
    std::vector<sim::Cycles> lastCycles(num_threads, 0);
    int lockHolder = -1;

    for (std::size_t i = 0; i < events.size(); ++i) {
        const TxEvent& event = events[i];
        const unsigned tid = event.tid;
        if (tid >= num_threads)
            return "event #" + std::to_string(i) + " has tid " +
                   std::to_string(tid) + " >= " +
                   std::to_string(num_threads);
        const std::string where =
            " (event #" + std::to_string(i) + ": " + describe(event) +
            ")";

        if (event.cycles < lastCycles[tid])
            return "per-thread virtual time went backwards" + where;
        lastCycles[tid] = event.cycles;

        switch (event.kind) {
          case TxEventKind::begin:
            if (active[tid])
                return "nested begin without commit/abort" + where;
            active[tid] = true;
            break;
          case TxEventKind::commit:
            if (!active[tid])
                return "commit without an active attempt" + where;
            if (lockHolder >= 0)
                return "transactional commit while t" +
                       std::to_string(lockHolder) +
                       " holds the fallback lock" + where;
            active[tid] = false;
            break;
          case TxEventKind::abort:
            if (!active[tid])
                return "abort without an active attempt" + where;
            active[tid] = false;
            break;
          case TxEventKind::lockAcquired:
            if (lockHolder >= 0)
                return "lock acquired while t" +
                       std::to_string(lockHolder) + " holds it" + where;
            if (active[tid])
                return "lock acquired with a live transactional "
                       "attempt" + where;
            lockHolder = int(tid);
            break;
          case TxEventKind::lockReleased:
            if (lockHolder != int(tid))
                return "lock released by a non-holder" + where;
            lockHolder = -1;
            break;
          case TxEventKind::fallbackCommit:
            if (lockHolder != int(tid))
                return "fallback commit without holding the lock" +
                       where;
            break;
          case TxEventKind::nonSpecCommit:
            // Serialization point of a non-speculative section under a
            // caller-provided (per-object) lock; the global fallback
            // lock is uninvolved, but a live transactional attempt on
            // the same thread would mean irrevocability leaked into a
            // speculative section.
            if (active[tid])
                return "non-speculative commit with a live "
                       "transactional attempt" + where;
            break;
        }
    }

    for (unsigned tid = 0; tid < num_threads; ++tid) {
        if (active[tid])
            return "t" + std::to_string(tid) +
                   " left an attempt open at end of run";
    }
    if (lockHolder >= 0)
        return "t" + std::to_string(lockHolder) +
               " left the fallback lock held at end of run";
    return "";
}

std::string
formatTrace(const std::vector<TxEvent>& events, std::size_t tail)
{
    std::string result;
    const std::size_t first =
        events.size() > tail ? events.size() - tail : 0;
    if (first > 0)
        result += "... (" + std::to_string(first) + " earlier)\n";
    for (std::size_t i = first; i < events.size(); ++i)
        result += "  " + describe(events[i]) + "\n";
    return result;
}

} // namespace htmsim::check

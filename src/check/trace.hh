/**
 * @file
 * Per-run transaction-event trace (simcheck).
 *
 * EventRing is a fixed-capacity ring buffer implementing TxObserver:
 * it retains the most recent events of a run in bounded memory, which
 * is what lets the long seed sweeps trace every run without growing
 * unboundedly. Overflow is observable (dropped() counts the events
 * that fell off the front) and the differential oracle treats it as a
 * failure in its own right — a truncated trace must never silently
 * "pass" the invariants (oracle.cc, `--ring-capacity` in
 * check_runner). When the ring never wrapped it holds the complete
 * event history and checkTraceInvariants() can verify the
 * interleaving-level invariants of the HTM model:
 *
 *  - per-thread lifecycle: begin -> (commit | abort), never nested,
 *    never a commit/abort without a begin;
 *  - the global fallback lock has at most one holder, is released by
 *    its holder, and is never acquired by a thread with a live
 *    transactional attempt;
 *  - fallback sections commit while their thread holds the lock;
 *  - no transactional commit while any thread holds the fallback lock
 *    (eager subscription aborts at begin, lazy subscription at
 *    commit — either way a commit under a held lock means the
 *    single-lock fallback protocol is broken);
 *  - event virtual times are non-decreasing per thread.
 */

#ifndef HTMSIM_CHECK_TRACE_HH
#define HTMSIM_CHECK_TRACE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "htm/observer.hh"

namespace htmsim::check
{

/** Bounded most-recent-events trace of one run. */
class EventRing final : public htm::TxObserver
{
  public:
    explicit EventRing(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
        events_.reserve(capacity_);
    }

    void
    onEvent(const htm::TxEvent& event) override
    {
        if (events_.size() < capacity_) {
            events_.push_back(event);
        } else {
            events_[next_] = event;
            next_ = (next_ + 1) % capacity_;
            ++dropped_;
        }
    }

    /** Events retained, oldest first. */
    std::vector<htm::TxEvent>
    events() const
    {
        std::vector<htm::TxEvent> ordered;
        ordered.reserve(events_.size());
        for (std::size_t i = 0; i < events_.size(); ++i)
            ordered.push_back(events_[(next_ + i) % events_.size()]);
        return ordered;
    }

    /** Events that fell off the front of the ring. */
    std::uint64_t dropped() const { return dropped_; }

    /** Events currently retained. */
    std::size_t size() const { return events_.size(); }

    void
    clear()
    {
        events_.clear();
        next_ = 0;
        dropped_ = 0;
    }

  private:
    std::size_t capacity_;
    std::size_t next_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<htm::TxEvent> events_;
};

/**
 * Check the interleaving invariants over a complete event history
 * (@p num_threads threads, tids dense from 0). Returns an empty
 * string when all invariants hold, else a description of the first
 * violation. The history must be complete — pass EventRing::events()
 * only when EventRing::dropped() == 0.
 */
std::string checkTraceInvariants(const std::vector<htm::TxEvent>& events,
                                 unsigned num_threads);

/** Human-readable rendering of the last @p tail events (diagnostics
 *  printed with a failing schedule). */
std::string formatTrace(const std::vector<htm::TxEvent>& events,
                        std::size_t tail = 64);

} // namespace htmsim::check

#endif // HTMSIM_CHECK_TRACE_HH

/**
 * @file
 * Greedy schedule shrinking (simcheck).
 *
 * A fuzzed failure typically fires dozens of preemption points, most
 * of them irrelevant. shrinkSchedule() minimizes the set with a greedy
 * delta-debugging pass: remove chunks (halving the chunk size down to
 * single points) and keep any candidate subset that still fails. The
 * result is a locally minimal schedule — removing any single remaining
 * point makes the failure disappear — which is what gets printed as
 * the replayable artifact.
 *
 * Subset replay is only approximately aligned with the original run
 * (per-thread point indices shift as the interleaving changes), so the
 * predicate re-runs the full oracle; a subset counts as "failing" only
 * if the oracle actually fails under it, never by assumption.
 */

#ifndef HTMSIM_CHECK_SHRINK_HH
#define HTMSIM_CHECK_SHRINK_HH

#include <functional>

#include "check/fuzz_scheduler.hh"

namespace htmsim::check
{

/** Returns true when replaying @p schedule still reproduces the
 *  failure. Must be deterministic. */
using FailsPredicate = std::function<bool(const Schedule&)>;

/** Result of a shrink pass. */
struct ShrinkResult
{
    /** The minimized still-failing schedule. */
    Schedule schedule;
    /** Predicate evaluations spent. */
    unsigned evaluations = 0;
};

/**
 * Minimize @p failing (which the caller has verified to fail) under
 * @p fails, spending at most @p max_evaluations predicate calls.
 */
ShrinkResult shrinkSchedule(const FailsPredicate& fails,
                            Schedule failing,
                            unsigned max_evaluations = 400);

} // namespace htmsim::check

#endif // HTMSIM_CHECK_SHRINK_HH

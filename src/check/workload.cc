#include "workload.hh"

#include <array>

#include "htm/context.hh"
#include "htm/tx.hh"
#include "server/kv_store.hh"
#include "server/zipf.hh"
#include "sim/random.hh"
#include "stamp/kernels.hh"
#include "tmds/tm_bitmap.hh"
#include "tmds/tm_hashtable.hh"
#include "tmds/tm_heap.hh"
#include "tmds/tm_list.hh"
#include "tmds/tm_queue.hh"
#include "tmds/tm_rbtree.hh"
#include "tmsync/atomic_mutex.hh"
#include "tmsync/atomic_shared_mutex.hh"
#include "tmsync/guard.hh"

namespace htmsim::check
{

namespace
{

/** One precomputed operation: a kind plus two operands. */
struct Op
{
    std::uint32_t kind;
    std::uint64_t a;
    std::uint64_t b;
};

/** Shared op-table plumbing: per-thread streams from (seed, tid). */
class TableWorkload : public CheckWorkload
{
  protected:
    template <typename Gen>
    void
    buildOps(std::uint64_t seed, unsigned threads,
             unsigned ops_per_thread, Gen&& gen)
    {
        ops_.resize(threads);
        for (unsigned tid = 0; tid < threads; ++tid) {
            sim::Rng rng(seed, tid + 1);
            ops_[tid].reserve(ops_per_thread);
            for (unsigned i = 0; i < ops_per_thread; ++i)
                ops_[tid].push_back(gen(rng));
        }
    }

    const Op&
    opAt(unsigned tid, unsigned op) const
    {
        return ops_[tid][op];
    }

  private:
    std::vector<std::vector<Op>> ops_;
};

// Result encodings give each op kind a distinct tag in the top byte so
// a replay mismatch identifies the operation, and fold any loaded
// value into the low bits so stale reads are visible.
constexpr std::uint64_t
tagged(std::uint64_t tag, std::uint64_t value)
{
    return (tag << 56) | (value & 0x00ffffffffffffffULL);
}

/** Mixed insert/remove/find/update over a small, collision-heavy
 *  chained hash table. */
class HashTableWorkload final : public TableWorkload
{
  public:
    HashTableWorkload(std::uint64_t seed, unsigned threads,
                      unsigned ops_per_thread)
        : table_(16)
    {
        htm::DirectContext d;
        for (std::uint64_t key = 0; key < keyRange; key += 2)
            table_.insert(d, key, key * 3 + 1);
        buildOps(seed, threads, ops_per_thread, [](sim::Rng& rng) {
            const std::uint64_t pick = rng.nextRange(100);
            const std::uint64_t key = rng.nextRange(keyRange);
            const std::uint64_t value = rng.nextRange(1000);
            if (pick < 35)
                return Op{0, key, value};
            if (pick < 60)
                return Op{1, key, 0};
            if (pick < 85)
                return Op{2, key, 0};
            return Op{3, key, value};
        });
    }

    std::uint64_t
    apply(htm::Tx& tx, unsigned tid, unsigned op) override
    {
        const Op& o = opAt(tid, op);
        switch (o.kind) {
          case 0:
            return tagged(0x1, table_.insert(tx, o.a, o.b));
          case 1:
            return tagged(0x2, table_.remove(tx, o.a));
          case 2: {
            std::uint64_t value = 0;
            const bool found = table_.find(tx, o.a, &value);
            return tagged(0x3, found ? value + 1 : 0);
          }
          default:
            return tagged(0x4, table_.update(tx, o.a, o.b));
        }
    }

    std::uint64_t
    fingerprint() override
    {
        htm::DirectContext d;
        std::uint64_t h = 0x8a5eedULL;
        table_.forEach(d, [&](std::uint64_t key, std::uint64_t value) {
            h = foldHash(h, key);
            h = foldHash(h, value);
        });
        return foldHash(h, table_.size(d));
    }

  private:
    static constexpr std::uint64_t keyRange = 24;
    tmds::TmHashTable<> table_;
};

/** Mixed ops over the red-black tree, including range queries. */
class RbTreeWorkload final : public TableWorkload
{
  public:
    RbTreeWorkload(std::uint64_t seed, unsigned threads,
                   unsigned ops_per_thread)
    {
        htm::DirectContext d;
        for (std::uint64_t key = 0; key < keyRange; key += 2)
            tree_.insert(d, key, key + 100);
        buildOps(seed, threads, ops_per_thread, [](sim::Rng& rng) {
            const std::uint64_t pick = rng.nextRange(100);
            const std::uint64_t key = rng.nextRange(keyRange);
            const std::uint64_t value = rng.nextRange(1000);
            if (pick < 30)
                return Op{0, key, value};
            if (pick < 55)
                return Op{1, key, 0};
            if (pick < 80)
                return Op{2, key, 0};
            return Op{3, key, 0};
        });
    }

    std::uint64_t
    apply(htm::Tx& tx, unsigned tid, unsigned op) override
    {
        const Op& o = opAt(tid, op);
        switch (o.kind) {
          case 0:
            return tagged(0x1, tree_.insert(tx, o.a, o.b));
          case 1:
            return tagged(0x2, tree_.remove(tx, o.a));
          case 2: {
            std::uint64_t value = 0;
            const bool found = tree_.find(tx, o.a, &value);
            return tagged(0x3, found ? value + 1 : 0);
          }
          default: {
            std::uint64_t key = 0;
            std::uint64_t value = 0;
            const bool found =
                tree_.findCeiling(tx, o.a, &key, &value);
            return tagged(0x4,
                          found ? (key << 16) ^ (value + 1) : 0);
          }
        }
    }

    std::uint64_t
    fingerprint() override
    {
        htm::DirectContext d;
        std::uint64_t h = 0x8a5eedULL;
        tree_.forEach(d, [&](std::uint64_t key, std::uint64_t value) {
            h = foldHash(h, key);
            h = foldHash(h, value);
        });
        return foldHash(h, tree_.size(d));
    }

  private:
    static constexpr std::uint64_t keyRange = 32;
    tmds::TmRbTree tree_;
};

/** Hot sorted list: long shared traversals, frequent structural
 *  updates — the highest-conflict workload in the registry. */
class ListWorkload final : public TableWorkload
{
  public:
    ListWorkload(std::uint64_t seed, unsigned threads,
                 unsigned ops_per_thread)
    {
        htm::DirectContext d;
        for (std::uint64_t key = 0; key < keyRange; key += 2)
            list_.insert(d, key, key + 7);
        buildOps(seed, threads, ops_per_thread, [](sim::Rng& rng) {
            const std::uint64_t pick = rng.nextRange(100);
            const std::uint64_t key = rng.nextRange(keyRange);
            const std::uint64_t value = rng.nextRange(1000);
            if (pick < 30)
                return Op{0, key, value};
            if (pick < 55)
                return Op{1, key, 0};
            if (pick < 85)
                return Op{2, key, 0};
            return Op{3, 0, 0};
        });
    }

    std::uint64_t
    apply(htm::Tx& tx, unsigned tid, unsigned op) override
    {
        const Op& o = opAt(tid, op);
        switch (o.kind) {
          case 0:
            return tagged(0x1, list_.insert(tx, o.a, o.b));
          case 1:
            return tagged(0x2, list_.remove(tx, o.a));
          case 2: {
            std::uint64_t value = 0;
            const bool found = list_.find(tx, o.a, &value);
            return tagged(0x3, found ? value + 1 : 0);
          }
          default: {
            std::uint64_t key = 0;
            std::uint64_t value = 0;
            const bool popped = list_.popFront(tx, &key, &value);
            return tagged(0x4,
                          popped ? (key << 16) ^ (value + 1) : 0);
          }
        }
    }

    std::uint64_t
    fingerprint() override
    {
        htm::DirectContext d;
        std::uint64_t h = 0x8a5eedULL;
        list_.forEach(d, [&](std::uint64_t key, std::uint64_t value) {
            h = foldHash(h, key);
            h = foldHash(h, value);
        });
        return foldHash(h, list_.size(d));
    }

  private:
    static constexpr std::uint64_t keyRange = 12;
    tmds::TmList<> list_;
};

/** Producer/consumer mix over the growable ring queue; the tiny
 *  initial capacity forces in-transaction grows. */
class QueueWorkload final : public TableWorkload
{
  public:
    QueueWorkload(std::uint64_t seed, unsigned threads,
                  unsigned ops_per_thread)
        : queue_(4)
    {
        htm::DirectContext d;
        for (std::uint64_t item = 1; item <= 2; ++item)
            queue_.push(d, item * 11);
        buildOps(seed, threads, ops_per_thread, [](sim::Rng& rng) {
            const std::uint64_t pick = rng.nextRange(100);
            const std::uint64_t value = 1 + rng.nextRange(1000);
            if (pick < 55)
                return Op{0, value, 0};
            return Op{1, 0, 0};
        });
    }

    std::uint64_t
    apply(htm::Tx& tx, unsigned tid, unsigned op) override
    {
        const Op& o = opAt(tid, op);
        if (o.kind == 0) {
            queue_.push(tx, o.a);
            return tagged(0x1, queue_.size(tx));
        }
        std::uint64_t value = 0;
        const bool popped = queue_.pop(tx, &value);
        return tagged(0x2, popped ? value + 1 : 0);
    }

    std::uint64_t
    fingerprint() override
    {
        htm::DirectContext d;
        std::uint64_t h = 0x8a5eedULL;
        queue_.forEach(d,
                       [&](std::uint64_t item) { h = foldHash(h, item); });
        return foldHash(h, queue_.size(d));
    }

  private:
    tmds::TmQueue queue_;
};

/** Priority-queue mix over the array heap. */
class HeapWorkload final : public TableWorkload
{
  public:
    HeapWorkload(std::uint64_t seed, unsigned threads,
                 unsigned ops_per_thread)
        : heap_(4)
    {
        htm::DirectContext d;
        for (std::uint64_t item = 1; item <= 3; ++item)
            heap_.insert(d, item * 17);
        buildOps(seed, threads, ops_per_thread, [](sim::Rng& rng) {
            const std::uint64_t pick = rng.nextRange(100);
            const std::uint64_t value = 1 + rng.nextRange(1000);
            if (pick < 55)
                return Op{0, value, 0};
            return Op{1, 0, 0};
        });
    }

    std::uint64_t
    apply(htm::Tx& tx, unsigned tid, unsigned op) override
    {
        const Op& o = opAt(tid, op);
        if (o.kind == 0) {
            heap_.insert(tx, o.a);
            return tagged(0x1, heap_.size(tx));
        }
        std::uint64_t value = 0;
        const bool popped = heap_.popMax(tx, &value);
        return tagged(0x2, popped ? value + 1 : 0);
    }

    std::uint64_t
    fingerprint() override
    {
        htm::DirectContext d;
        std::uint64_t h = 0x8a5eedULL;
        heap_.forEach(d,
                      [&](std::uint64_t item) { h = foldHash(h, item); });
        return foldHash(h, heap_.size(d));
    }

  private:
    tmds::TmHeap<tmds::NumericCompare> heap_;
};

/** Set/clear/test over a bitmap: many threads collide on the same
 *  backing words even when bit indices differ. */
class BitmapWorkload final : public TableWorkload
{
  public:
    BitmapWorkload(std::uint64_t seed, unsigned threads,
                   unsigned ops_per_thread)
        : bits_(numBits)
    {
        htm::DirectContext d;
        for (std::size_t index = 0; index < numBits; index += 3)
            bits_.set(d, index);
        buildOps(seed, threads, ops_per_thread, [](sim::Rng& rng) {
            const std::uint64_t pick = rng.nextRange(100);
            const std::uint64_t index = rng.nextRange(numBits);
            if (pick < 40)
                return Op{0, index, 0};
            if (pick < 70)
                return Op{1, index, 0};
            return Op{2, index, 0};
        });
    }

    std::uint64_t
    apply(htm::Tx& tx, unsigned tid, unsigned op) override
    {
        const Op& o = opAt(tid, op);
        switch (o.kind) {
          case 0:
            return tagged(0x1, bits_.set(tx, o.a));
          case 1:
            return tagged(0x2, bits_.clear(tx, o.a));
          default:
            return tagged(0x3, bits_.isSet(tx, o.a));
        }
    }

    std::uint64_t
    fingerprint() override
    {
        htm::DirectContext d;
        std::uint64_t h = 0x8a5eedULL;
        for (std::size_t index = 0; index < numBits; ++index)
            h = foldHash(h, bits_.isSet(d, index));
        return h;
    }

  private:
    static constexpr std::size_t numBits = 96;
    tmds::TmBitmap bits_;
};

/** STAMP kmeans accumulator adds into a handful of shared clusters. */
class KmeansWorkload final : public TableWorkload
{
  public:
    KmeansWorkload(std::uint64_t seed, unsigned threads,
                   unsigned ops_per_thread)
        : kernel_(4, dims)
    {
        buildOps(seed, threads, ops_per_thread, [this](sim::Rng& rng) {
            return Op{0, rng.nextRange(kernel_.clusters()),
                      rng.nextU64()};
        });
    }

    std::uint64_t
    apply(htm::Tx& tx, unsigned tid, unsigned op) override
    {
        const Op& o = opAt(tid, op);
        std::uint64_t features[dims];
        for (unsigned d = 0; d < dims; ++d)
            features[d] = (o.b >> (8 * d)) & 0xff;
        return tagged(0x1, kernel_.add(tx, unsigned(o.a), features));
    }

    std::uint64_t
    fingerprint() override
    {
        htm::DirectContext d;
        std::uint64_t h = 0x8a5eedULL;
        kernel_.digest(d,
                       [&](std::uint64_t v) { h = foldHash(h, v); });
        return h;
    }

  private:
    static constexpr unsigned dims = 3;
    stamp::KmeansAccumKernel kernel_;
};

/** STAMP vacation-style reserve/cancel on capacity-bounded
 *  resources — read-test-write races on the occupancy counters. */
class VacationWorkload final : public TableWorkload
{
  public:
    VacationWorkload(std::uint64_t seed, unsigned threads,
                     unsigned ops_per_thread)
        : kernel_(6, 3)
    {
        buildOps(seed, threads, ops_per_thread, [this](sim::Rng& rng) {
            const std::uint64_t pick = rng.nextRange(100);
            const std::uint64_t resource =
                rng.nextRange(kernel_.resources());
            const std::uint64_t price = 1 + rng.nextRange(9);
            return Op{pick < 60 ? 0u : 1u, resource, price};
        });
    }

    std::uint64_t
    apply(htm::Tx& tx, unsigned tid, unsigned op) override
    {
        const Op& o = opAt(tid, op);
        if (o.kind == 0)
            return tagged(0x1,
                          kernel_.reserve(tx, unsigned(o.a), o.b));
        return tagged(0x2, kernel_.cancel(tx, unsigned(o.a), o.b));
    }

    std::uint64_t
    fingerprint() override
    {
        htm::DirectContext d;
        std::uint64_t h = 0x8a5eedULL;
        kernel_.digest(d,
                       [&](std::uint64_t v) { h = foldHash(h, v); });
        return h;
    }

  private:
    stamp::ReservationKernel kernel_;
};

/**
 * The server's KV/OLTP transactions (server/kv_store.hh) under the
 * oracle: Zipfian-skewed point ops, two-structure puts, multi-key
 * transfers and range scans, all precomputed so apply() never draws
 * from an interleaving-dependent stream. Sized small and hot so the
 * quick sweeps hit real conflicts.
 */
class ServerWorkload final : public TableWorkload
{
  public:
    ServerWorkload(std::uint64_t seed, unsigned threads,
                   unsigned ops_per_thread)
        : store_(numKeys, numAccounts, 1000)
    {
        const server::ZipfianGenerator keys(numKeys, 0.85);
        const server::ZipfianGenerator accounts(numAccounts, 0.85);
        buildOps(seed, threads, ops_per_thread,
                 [&](sim::Rng& rng) {
                     const std::uint64_t pick = rng.nextRange(100);
                     if (pick < 30)
                         return Op{0, keys.scrambledNext(rng), 0};
                     if (pick < 55)
                         return Op{1, keys.scrambledNext(rng),
                                   rng.nextU64()};
                     if (pick < 75)
                         return Op{2, keys.scrambledNext(rng),
                                   rng.nextRange(1024) + 1};
                     if (pick < 90)
                         return Op{3, accounts.scrambledNext(rng),
                                   rng.nextRange(100) + 1};
                     return Op{4, keys.scrambledNext(rng), 0};
                 });
    }

    std::uint64_t
    apply(htm::Tx& tx, unsigned tid, unsigned op) override
    {
        const Op& o = opAt(tid, op);
        switch (o.kind) {
          case 0:
            return tagged(0x1, store_.get(tx, o.a));
          case 1:
            return tagged(0x2, store_.put(tx, o.a, o.b));
          case 2:
            return tagged(0x3, store_.rmw(tx, o.a, o.b));
          case 3:
            return tagged(0x4,
                          store_.transfer(tx, o.a, transferSpan,
                                          o.b));
          default:
            return tagged(0x5, store_.scan(tx, o.a, scanLen));
        }
    }

    std::uint64_t
    fingerprint() override
    {
        std::uint64_t h = foldHash(0x8a5eedULL, store_.fingerprint());
        // Fold the host-checkable invariants in, so a conservation
        // or table/index divergence fails even if both phases drift
        // identically.
        h = foldHash(h, store_.balancesConserved() ? 1 : 0);
        return foldHash(h, store_.structuresAgree() ? 1 : 0);
    }

  private:
    static constexpr std::uint64_t numKeys = 48;
    static constexpr std::uint64_t numAccounts = 8;
    static constexpr unsigned transferSpan = 2;
    static constexpr unsigned scanLen = 6;
    server::KvStore store_;
};

/**
 * The tmsync lock-elision protocols under the oracle. Self-driven:
 * every op stages its own guarded section (guard.hh) over striped
 * mutex- and shared-mutex-protected payloads, randomly mixing elided
 * and deliberately non-elided (TATAS) acquisitions so each run
 * exercises both directions of the elision/real mutual-exclusion
 * argument. The serialization order the oracle replays is the order
 * of closing events (commit for elided sections, nonSpecCommit for
 * real-lock sections) — which is correct because sections on the same
 * stripe exclude each other both ways: an elided attempt aborts on a
 * nonzero word, and a real acquisition's CAS dooms every elided
 * subscriber through strong isolation. The condition variable is
 * deliberately absent: precomputed op streams cannot guarantee a
 * waiter is ever notified (covered by test_tmsync.cc and the
 * ping_pong scenario instead).
 */
class SyncWorkload final : public TableWorkload
{
  public:
    SyncWorkload(std::uint64_t seed, unsigned threads,
                 unsigned ops_per_thread)
    {
        buildOps(seed, threads, ops_per_thread, [](sim::Rng& rng) {
            const std::uint64_t pick = rng.nextRange(100);
            // Bit 8 of `a` selects the acquisition mode per op.
            const std::uint64_t elide = rng.nextRange(2) << 8;
            const std::uint64_t value = rng.nextU64() >> 8;
            if (pick < 45)
                return Op{0, (pick % numMutexStripes) | elide, value};
            if (pick < 80)
                return Op{1, (pick % numSharedStripes) | elide, value};
            return Op{2, (pick % numSharedStripes) | elide, value};
        });
    }

    bool selfDriven() const override { return true; }

    std::uint64_t
    applyDirect(htm::Runtime& runtime, sim::ThreadContext& ctx,
                unsigned tid, unsigned op) override
    {
        const Op& o = opAt(tid, op);
        const SyncMode mode = (o.a & 0x100) != 0 ? SyncMode::elided :
                                                   SyncMode::tatas;
        const std::uint64_t stripe = o.a & 0xff;
        std::uint64_t result = 0;
        switch (o.kind) {
          case 0: {
            static const htm::TxSiteId site =
                htm::txSite("check.sync.mutex");
            MutexStripe& s = mutexes_[stripe];
            tmsync::transactional_lock_guard guard(
                runtime, ctx, s.mutex, site, mode, [&](htm::Tx& tx) {
                    result = applyMutexOp(tx, s, o);
                });
            return result;
          }
          case 1: {
            static const htm::TxSiteId site =
                htm::txSite("check.sync.read");
            SharedStripe& s = shared_[stripe];
            tmsync::transactional_shared_lock_guard guard(
                runtime, ctx, s.rw, site, mode, [&](htm::Tx& tx) {
                    result = applyReadOp(tx, s, o);
                });
            return result;
          }
          default: {
            static const htm::TxSiteId site =
                htm::txSite("check.sync.write");
            SharedStripe& s = shared_[stripe];
            tmsync::transactional_lock_guard guard(
                runtime, ctx, s.rw, site, mode, [&](htm::Tx& tx) {
                    result = applyWriteOp(tx, s, o);
                });
            return result;
          }
        }
    }

    /** Bare op semantics (no lock protocol); the oracle never calls
     *  this — applyDirect() is the self-driven entry point. */
    std::uint64_t
    apply(htm::Tx& tx, unsigned tid, unsigned op) override
    {
        const Op& o = opAt(tid, op);
        const std::uint64_t stripe = o.a & 0xff;
        switch (o.kind) {
          case 0:
            return applyMutexOp(tx, mutexes_[stripe], o);
          case 1:
            return applyReadOp(tx, shared_[stripe], o);
          default:
            return applyWriteOp(tx, shared_[stripe], o);
        }
    }

    std::uint64_t
    fingerprint() override
    {
        std::uint64_t h = 0x8a5eedULL;
        for (const MutexStripe& s : mutexes_) {
            h = foldHash(h, s.counter);
            for (const std::uint64_t slot : s.slots)
                h = foldHash(h, slot);
        }
        for (const SharedStripe& s : shared_) {
            h = foldHash(h, s.generation);
            for (const std::uint64_t cell : s.cells)
                h = foldHash(h, cell);
        }
        return h;
    }

  private:
    using SyncMode = tmsync::SyncMode;

    static constexpr std::uint64_t numMutexStripes = 4;
    static constexpr std::uint64_t numSharedStripes = 2;

    struct MutexStripe
    {
        tmsync::atomic_mutex mutex;
        std::uint64_t counter = 0;
        std::array<std::uint64_t, 4> slots{};
    };

    struct SharedStripe
    {
        tmsync::atomic_shared_mutex rw;
        std::uint64_t generation = 0;
        std::array<std::uint64_t, 8> cells{};
    };

    static std::uint64_t
    applyMutexOp(htm::Tx& tx, MutexStripe& s, const Op& o)
    {
        const std::uint64_t count = tx.load(&s.counter) + 1;
        tx.store(&s.counter, count);
        std::uint64_t* slot = &s.slots[o.b % s.slots.size()];
        const std::uint64_t updated = tx.load(slot) + o.b;
        tx.store(slot, updated);
        return tagged(0x1, foldHash(count, updated));
    }

    static std::uint64_t
    applyReadOp(htm::Tx& tx, SharedStripe& s, const Op& o)
    {
        std::uint64_t sum = tx.load(&s.generation);
        for (std::size_t i = 0; i < s.cells.size(); ++i)
            sum = foldHash(sum, tx.load(&s.cells[i]));
        (void) o;
        return tagged(0x2, sum);
    }

    static std::uint64_t
    applyWriteOp(htm::Tx& tx, SharedStripe& s, const Op& o)
    {
        std::uint64_t* cell = &s.cells[o.b % s.cells.size()];
        const std::uint64_t updated = tx.load(cell) + o.b;
        tx.store(cell, updated);
        const std::uint64_t generation = tx.load(&s.generation) + 1;
        tx.store(&s.generation, generation);
        return tagged(0x3, foldHash(generation, updated));
    }

    std::array<MutexStripe, numMutexStripes> mutexes_;
    std::array<SharedStripe, numSharedStripes> shared_;
};

template <typename W>
std::unique_ptr<CheckWorkload>
makeWorkload(std::uint64_t seed, unsigned threads,
             unsigned ops_per_thread)
{
    return std::make_unique<W>(seed, threads, ops_per_thread);
}

} // namespace

const std::vector<WorkloadFactory>&
allWorkloads()
{
    static const std::vector<WorkloadFactory> registry = {
        {"hashtable", &makeWorkload<HashTableWorkload>},
        {"rbtree", &makeWorkload<RbTreeWorkload>},
        {"list", &makeWorkload<ListWorkload>},
        {"queue", &makeWorkload<QueueWorkload>},
        {"heap", &makeWorkload<HeapWorkload>},
        {"bitmap", &makeWorkload<BitmapWorkload>},
        {"kmeans", &makeWorkload<KmeansWorkload>},
        {"vacation", &makeWorkload<VacationWorkload>},
        {"server", &makeWorkload<ServerWorkload>},
        {"sync", &makeWorkload<SyncWorkload>},
    };
    return registry;
}

const WorkloadFactory*
findWorkload(const std::string& name)
{
    for (const WorkloadFactory& factory : allWorkloads()) {
        if (name == factory.name)
            return &factory;
    }
    return nullptr;
}

} // namespace htmsim::check

#include "oracle.hh"

#include <cstdio>
#include <memory>
#include <vector>

#include "check/trace.hh"
#include "htm/backend.hh"
#include "htm/context.hh"
#include "htm/tx.hh"
#include "sim/scheduler.hh"

namespace htmsim::check
{

namespace
{

std::string
hex(std::uint64_t value)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "0x%llx",
                  (unsigned long long) value);
    return buffer;
}

/** Records the event ring plus the global commit order. Observer
 *  callbacks fire in virtual-time order, so the sequence of
 *  commit/fallbackCommit events IS the serialization order the HTM
 *  model claims for this run. */
class CheckObserver final : public htm::TxObserver
{
  public:
    explicit CheckObserver(std::size_t ring_capacity)
        : ring(ring_capacity)
    {
    }

    void
    onEvent(const htm::TxEvent& event) override
    {
        ring.onEvent(event);
        if (event.kind == htm::TxEventKind::commit ||
            event.kind == htm::TxEventKind::fallbackCommit ||
            event.kind == htm::TxEventKind::nonSpecCommit) {
            commitOrder.push_back(event.tid);
        }
    }

    EventRing ring;
    std::vector<unsigned> commitOrder;
};

} // namespace

RunOutcome
runDifferential(const WorkloadFactory& workload,
                const htm::MachineConfig& machine, std::uint64_t seed,
                const CheckOptions& options, const Schedule* replay)
{
    const unsigned threads = options.threads;
    const unsigned ops = options.opsPerThread;
    // Decouple the workload's op streams from the fuzzing seed so a
    // seed sweep varies the interleaving *and* the op mix, yet both
    // phases of one run agree on the ops.
    const std::uint64_t workload_seed =
        seed * 0x9e3779b97f4a7c15ULL + 0x51;

    RunOutcome outcome;
    const auto fail = [&outcome](std::string reason) {
        outcome.ok = false;
        outcome.reason = std::move(reason);
        return outcome;
    };

    // --- Phase 1: concurrent run under the fuzzed HTM model. ---
    std::unique_ptr<CheckWorkload> concurrent =
        workload.make(workload_seed, threads, ops);

    sim::Scheduler scheduler(seed);
    std::unique_ptr<FuzzScheduler> fuzz;
    if (replay != nullptr)
        fuzz = std::make_unique<FuzzScheduler>(*replay);
    else
        fuzz = std::make_unique<FuzzScheduler>(seed, options.fuzz);
    scheduler.setPerturber(fuzz.get());

    htm::RuntimeConfig config(machine);
    config.checkFault = options.fault;
    config.hazard = options.hazard;
    config.policyKind = options.policyKind;
    config.backend = options.backend;
    config.hybrid = options.hybrid;
    htm::Runtime runtime(config, threads);
    CheckObserver observer(options.ringCapacity);
    runtime.setObserver(&observer);

    std::vector<std::vector<std::uint64_t>> results(
        threads, std::vector<std::uint64_t>(ops, 0));
    const bool selfDriven = concurrent->selfDriven();
    for (unsigned tid = 0; tid < threads; ++tid) {
        scheduler.spawn([&, tid](sim::ThreadContext& ctx) {
            for (unsigned i = 0; i < ops; ++i) {
                std::uint64_t result = 0;
                if (selfDriven) {
                    // The workload stages its own atomic sections
                    // (lock-elision protocols); each op's closing
                    // event is its serialization point.
                    result =
                        concurrent->applyDirect(runtime, ctx, tid, i);
                } else {
                    static const htm::TxSiteId opSite =
                        htm::txSite("check.concurrentOp");
                    runtime.atomic(ctx, opSite, [&](htm::Tx& tx) {
                        result = concurrent->apply(tx, tid, i);
                    });
                }
                results[tid][i] = result;
            }
        });
    }
    try {
        scheduler.run();
    } catch (const std::exception& error) {
        outcome.fired = fuzz->fired();
        return fail(std::string("concurrent run raised: ") +
                    error.what());
    }

    outcome.fired = fuzz->fired();
    outcome.commits = observer.commitOrder.size();
    if (observer.ring.dropped() == 0)
        outcome.traceTail = formatTrace(observer.ring.events());

    // --- Phase 2: in-flight invariants over the event trace. ---
    if (observer.ring.dropped() != 0) {
        // A wrapped ring means the invariants would only see a
        // truncated trace; silently "passing" on it would be a hole in
        // the oracle, so overflow is itself a failure.
        return fail(
            "event ring overflowed: " +
            std::to_string(observer.ring.dropped()) +
            " of " +
            std::to_string(observer.ring.dropped() +
                           observer.ring.size()) +
            " events dropped, so the trace invariants cannot be "
            "checked; raise --ring-capacity (currently " +
            std::to_string(options.ringCapacity) + ")");
    }
    {
        const std::string error =
            checkTraceInvariants(observer.ring.events(), threads);
        if (!error.empty())
            return fail("trace invariant violated: " + error);
    }

    // --- Phase 3: exactly-once completeness. ---
    if (observer.commitOrder.size() !=
        std::uint64_t(threads) * ops) {
        return fail(
            "commit count mismatch: observed " +
            std::to_string(observer.commitOrder.size()) +
            " commits for " + std::to_string(threads) + "x" +
            std::to_string(ops) + " operations");
    }
    std::vector<unsigned> per_thread(threads, 0);
    for (const unsigned tid : observer.commitOrder) {
        if (tid >= threads)
            return fail("commit attributed to unknown thread t" +
                        std::to_string(tid));
        ++per_thread[tid];
    }
    for (unsigned tid = 0; tid < threads; ++tid) {
        if (per_thread[tid] != ops) {
            return fail("t" + std::to_string(tid) + " committed " +
                        std::to_string(per_thread[tid]) + " of " +
                        std::to_string(ops) + " operations");
        }
    }

    // --- Phase 4: serial replay in the observed commit order. ---
    std::unique_ptr<CheckWorkload> reference =
        workload.make(workload_seed, threads, ops);
    htm::RuntimeConfig lock_config(machine);
    lock_config.backend = htm::BackendKind::globalLock;
    htm::Runtime lock_runtime(lock_config, 1);
    sim::Scheduler serial(seed + 1);
    std::vector<unsigned> cursor(threads, 0);
    std::string divergence;
    serial.spawn([&](sim::ThreadContext& ctx) {
        for (const unsigned tid : observer.commitOrder) {
            const unsigned i = cursor[tid]++;
            std::uint64_t result = 0;
            if (selfDriven) {
                // Single-threaded, so the lock protocols trivially
                // succeed; only the op's semantic effect matters. The
                // workload indexes its op streams by (tid, i) but must
                // address the runtime through ctx (one replay thread).
                result = reference->applyDirect(lock_runtime, ctx,
                                                tid, i);
            } else {
                static const htm::TxSiteId replaySite =
                    htm::txSite("check.serialReplay");
                lock_runtime.atomic(ctx, replaySite, [&](htm::Tx& tx) {
                    result = reference->apply(tx, tid, i);
                });
            }
            if (divergence.empty() && result != results[tid][i]) {
                divergence = "t" + std::to_string(tid) + " op " +
                             std::to_string(i) +
                             " returned " + hex(results[tid][i]) +
                             " concurrently but " + hex(result) +
                             " in the serial replay";
            }
        }
    });
    serial.run();
    if (!divergence.empty())
        return fail("serializability violated: " + divergence);

    // --- Phase 5: final states must be identical. ---
    const std::uint64_t got = concurrent->fingerprint();
    const std::uint64_t want = reference->fingerprint();
    if (got != want) {
        return fail("final-state fingerprint mismatch: concurrent " +
                    hex(got) + " vs serial replay " + hex(want));
    }

    return outcome;
}

} // namespace htmsim::check

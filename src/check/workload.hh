/**
 * @file
 * Deterministic check workloads for the differential oracle (simcheck).
 *
 * A CheckWorkload is a bag of shared state plus a precomputed table of
 * per-thread operations. The oracle runs the same workload twice:
 * concurrently under the fuzzed HTM model, then serially (one thread,
 * global-lock backend) in the concurrent run's commit order. For that
 * comparison to be meaningful the workloads obey two rules:
 *
 *  - operations are precomputed in the constructor from the workload
 *    seed alone — apply() must never draw from the thread context's
 *    rng(), which the HTM runtime itself consumes (backoff, cache
 *    fetch, prefetch draws) and whose stream position is therefore
 *    interleaving-dependent;
 *  - apply() folds every transactionally loaded value it depends on
 *    into its return value, so a stale or torn read shows up as a
 *    result mismatch against the serial replay, not just (maybe) as a
 *    final-state difference.
 *
 * The registry covers the tmds structures (hash table, rb-tree, sorted
 * list, ring queue, heap, bitmap) and the two distilled STAMP kernels
 * (kmeans accumulator, vacation-style reservations).
 */

#ifndef HTMSIM_CHECK_WORKLOAD_HH
#define HTMSIM_CHECK_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace htmsim::htm
{
class Tx;
class Runtime;
}

namespace htmsim::sim
{
class ThreadContext;
}

namespace htmsim::check
{

/** One replayable unit of work over shared transactional state. */
class CheckWorkload
{
  public:
    virtual ~CheckWorkload() = default;

    /**
     * Execute thread @p tid's @p op-th operation inside transaction
     * @p tx. Must be deterministic given (tid, op) and the shared
     * state, and must fold loaded values into the returned result.
     */
    virtual std::uint64_t apply(htm::Tx& tx, unsigned tid,
                                unsigned op) = 0;

    /**
     * Self-driven workloads stage their own atomic sections (e.g. the
     * tmsync lock-elision protocols) instead of running apply() inside
     * a driver-provided runtime.atomic(). The oracle then calls
     * applyDirect() with the runtime and thread context and relies on
     * each op emitting exactly one closing lifecycle event (commit /
     * fallbackCommit / nonSpecCommit) as its serialization point.
     */
    virtual bool selfDriven() const { return false; }

    /** Execute op directly against the runtime (selfDriven() only).
     *  Same determinism and result-folding rules as apply(). */
    virtual std::uint64_t
    applyDirect(htm::Runtime& runtime, sim::ThreadContext& ctx,
                unsigned tid, unsigned op)
    {
        (void) runtime;
        (void) ctx;
        (void) tid;
        (void) op;
        return 0;
    }

    /** Structural digest of the shared state (host-side, post-run). */
    virtual std::uint64_t fingerprint() = 0;
};

/** Named constructor for a workload instance. */
struct WorkloadFactory
{
    const char* name;
    std::unique_ptr<CheckWorkload> (*make)(std::uint64_t seed,
                                           unsigned threads,
                                           unsigned ops_per_thread);
};

/** All registered workloads, in sweep order. */
const std::vector<WorkloadFactory>& allWorkloads();

/** Find a workload by name; nullptr when unknown. */
const WorkloadFactory* findWorkload(const std::string& name);

/** Order-sensitive 64-bit fold used by workload fingerprints. */
inline std::uint64_t
foldHash(std::uint64_t h, std::uint64_t v)
{
    std::uint64_t state =
        h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    state ^= state >> 30;
    state *= 0xbf58476d1ce4e5b9ULL;
    state ^= state >> 27;
    state *= 0x94d049bb133111ebULL;
    return state ^ (state >> 31);
}

} // namespace htmsim::check

#endif // HTMSIM_CHECK_WORKLOAD_HH

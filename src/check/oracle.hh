/**
 * @file
 * Differential serializability oracle (simcheck).
 *
 * One oracle run executes a workload twice:
 *
 *  1. concurrently — N simulated threads under the best-effort HTM
 *     backend on a given MachineConfig, with a FuzzScheduler
 *     perturbing the interleaving and a TxObserver recording the
 *     event trace and the global commit order;
 *  2. serially — a fresh copy of the workload on one thread under the
 *     global-lock backend, applying the committed operations in the
 *     exact commit order observed in (1).
 *
 * The HTM model is serializable iff the serial run is indistinguishable
 * from the concurrent one: every operation's result (which folds the
 * values it loaded — opacity at word granularity) and the final-state
 * fingerprint must match, the trace must satisfy the interleaving
 * invariants (trace.hh), and every operation must have committed
 * exactly once. Any discrepancy is reported with the fired preemption
 * schedule so the failing interleaving can be replayed and shrunk.
 */

#ifndef HTMSIM_CHECK_ORACLE_HH
#define HTMSIM_CHECK_ORACLE_HH

#include <cstdint>
#include <string>

#include "check/fuzz_scheduler.hh"
#include "check/workload.hh"
#include "htm/machine.hh"
#include "htm/runtime.hh"

namespace htmsim::check
{

/** Knobs for one oracle run. */
struct CheckOptions
{
    /** Simulated threads in the concurrent phase. */
    unsigned threads = 4;
    /** Transactions per thread. */
    unsigned opsPerThread = 24;
    /** Schedule-fuzzing knobs (ignored when replaying). */
    FuzzOptions fuzz;
    /** Event-ring capacity; the oracle fails loudly (with guidance to
     *  raise this) if the ring ever wraps, so size it above threads *
     *  opsPerThread * worst-case retries. */
    std::size_t ringCapacity = std::size_t(1) << 15;
    /** Model fault to inject (simcheck self-test). */
    htm::CheckFault fault = htm::CheckFault::none;
    /** Hazard injection for the concurrent phase (hazard.hh); off by
     *  default. The serial replay never injects — hazards must not
     *  change what the committed operations compute. */
    htm::HazardConfig hazard;
    /** Retry policy the concurrent phase runs under. */
    htm::RetryPolicyKind policyKind = htm::RetryPolicyKind::machineDefault;
    /** Backend the concurrent phase runs under (htm or hybrid; the
     *  serial replay always uses the global-lock backend). */
    htm::BackendKind backend = htm::BackendKind::htm;
    /** Hybrid-backend knobs (subscription mode, software-path
     *  switches); only read when backend == hybrid. */
    htm::HybridRuntimeConfig hybrid;
};

/** Verdict of one oracle run. */
struct RunOutcome
{
    bool ok = true;
    /** First violation found (empty when ok). */
    std::string reason;
    /** Preemption points that fired — the replayable schedule. */
    Schedule fired;
    /** Rendered tail of the event trace (populated on failure). */
    std::string traceTail;
    /** Commits observed in the concurrent phase. */
    std::uint64_t commits = 0;
};

/**
 * Run the differential oracle for (@p workload, @p machine, @p seed).
 * When @p replay is non-null the concurrent phase fires exactly that
 * schedule instead of fuzzing; everything else is identical, which is
 * what makes failures reproducible from the printed artifact.
 */
RunOutcome runDifferential(const WorkloadFactory& workload,
                           const htm::MachineConfig& machine,
                           std::uint64_t seed,
                           const CheckOptions& options = {},
                           const Schedule* replay = nullptr);

} // namespace htmsim::check

#endif // HTMSIM_CHECK_ORACLE_HH

#include "liveness.hh"

#include <memory>
#include <string>
#include <vector>

#include "check/trace.hh"
#include "htm/context.hh"
#include "htm/tx.hh"

namespace htmsim::check
{

void
LivenessChecker::onEvent(const htm::TxEvent& event)
{
    if (forward_ != nullptr)
        forward_->onEvent(event);

    ThreadProgress& self = threads_.at(event.tid);
    switch (event.kind) {
    case htm::TxEventKind::begin:
        if (!self.open) {
            self.open = true;
            self.openSince = event.sectionStart;
            self.commitsAtOpen = globalCommits_;
        }
        break;
    case htm::TxEventKind::commit:
    case htm::TxEventKind::fallbackCommit:
    case htm::TxEventKind::nonSpecCommit:
        self.open = false;
        ++globalCommits_;
        break;
    case htm::TxEventKind::abort:
    case htm::TxEventKind::lockAcquired:
    case htm::TxEventKind::lockReleased:
        break;
    }

    // Events arrive in global virtual-time order, so event.cycles is
    // "now" for every open section, not just event.tid's. Checking all
    // of them here is what lets a livelocked thread's bound fire even
    // when the livelocked thread itself stops producing events (e.g.
    // parked on the fallback lock forever).
    const sim::Cycles now = event.cycles;
    for (std::size_t tid = 0; tid < threads_.size(); ++tid) {
        const ThreadProgress& progress = threads_[tid];
        if (!progress.open)
            continue;
        if (now - progress.openSince > options_.maxSectionCycles) {
            throw LivenessViolation(
                "t" + std::to_string(tid) +
                "'s atomic section opened at cycle " +
                std::to_string(progress.openSince) +
                " and is still uncommitted at cycle " +
                std::to_string(now) + " (bound " +
                std::to_string(options_.maxSectionCycles) +
                " cycles): the retry/fallback layer is not making "
                "progress");
        }
        const std::uint64_t peer_commits =
            globalCommits_ - progress.commitsAtOpen;
        if (peer_commits > options_.starvationCommitBound) {
            throw LivenessViolation(
                "t" + std::to_string(tid) + " is starving: peers "
                "committed " + std::to_string(peer_commits) +
                " transactions (bound " +
                std::to_string(options_.starvationCommitBound) +
                ") while its section, open since cycle " +
                std::to_string(progress.openSince) +
                ", made no progress");
        }
    }
}

RunOutcome
runLiveness(const WorkloadFactory& workload,
            const htm::MachineConfig& machine, std::uint64_t seed,
            const CheckOptions& options, const LivenessOptions& liveness,
            const Schedule* replay)
{
    const unsigned threads = options.threads;
    const unsigned ops = options.opsPerThread;
    // Same derivation as runDifferential so a seed reproduces the same
    // op streams under either oracle.
    const std::uint64_t workload_seed =
        seed * 0x9e3779b97f4a7c15ULL + 0x51;

    RunOutcome outcome;
    const auto fail = [&outcome](std::string reason) {
        outcome.ok = false;
        outcome.reason = std::move(reason);
        return outcome;
    };

    std::unique_ptr<CheckWorkload> concurrent =
        workload.make(workload_seed, threads, ops);

    sim::Scheduler scheduler(seed);
    std::unique_ptr<FuzzScheduler> fuzz;
    if (replay != nullptr)
        fuzz = std::make_unique<FuzzScheduler>(*replay);
    else
        fuzz = std::make_unique<FuzzScheduler>(seed, options.fuzz);
    scheduler.setPerturber(fuzz.get());

    htm::RuntimeConfig config(machine);
    config.checkFault = options.fault;
    config.hazard = options.hazard;
    config.policyKind = options.policyKind;
    htm::Runtime runtime(config, threads);

    // The ring is pure diagnostics here (the checker is online), so
    // unlike the differential oracle a wrapped ring is fine: the tail
    // it retains is exactly the events leading up to a violation.
    EventRing ring(options.ringCapacity);
    LivenessChecker checker(threads, liveness, &ring);
    runtime.setObserver(&checker);

    const bool selfDriven = concurrent->selfDriven();
    for (unsigned tid = 0; tid < threads; ++tid) {
        scheduler.spawn([&, tid](sim::ThreadContext& ctx) {
            for (unsigned i = 0; i < ops; ++i) {
                if (selfDriven) {
                    (void) concurrent->applyDirect(runtime, ctx, tid,
                                                   i);
                } else {
                    static const htm::TxSiteId opSite =
                        htm::txSite("check.concurrentOp");
                    runtime.atomic(ctx, opSite, [&](htm::Tx& tx) {
                        (void) concurrent->apply(tx, tid, i);
                    });
                }
            }
        });
    }
    try {
        scheduler.run();
    } catch (const LivenessViolation& violation) {
        outcome.fired = fuzz->fired();
        outcome.traceTail = formatTrace(ring.events());
        return fail(std::string("liveness violated: ") +
                    violation.what());
    } catch (const std::exception& error) {
        outcome.fired = fuzz->fired();
        outcome.traceTail = formatTrace(ring.events());
        return fail(std::string("concurrent run raised: ") +
                    error.what());
    }

    outcome.fired = fuzz->fired();
    outcome.commits = checker.globalCommits();

    // Completeness: every operation committed (exactly-once at the
    // count level; per-op results are the safety oracle's job).
    if (checker.globalCommits() != std::uint64_t(threads) * ops) {
        outcome.traceTail = formatTrace(ring.events());
        return fail("commit count mismatch: observed " +
                    std::to_string(checker.globalCommits()) +
                    " commits for " + std::to_string(threads) + "x" +
                    std::to_string(ops) + " operations");
    }
    return outcome;
}

} // namespace htmsim::check

/**
 * @file
 * simcheck sweep driver.
 *
 * Sweeps seeds x machine presets x workloads through the differential
 * oracle — or, with --liveness, through the liveness oracle, usually
 * combined with the deterministic hazard flags to chaos-test a retry
 * policy. On a violation it shrinks the fuzzed schedule to a locally
 * minimal set of preemption points and prints a replay command line;
 * re-running with --seed/--schedule (plus the same workload, machine,
 * sizing, hazard and policy flags — the printed artifact includes them
 * all) reproduces the exact failing interleaving.
 *
 * Exit codes: 0 sweep clean (or, under --expect-failure, a failure
 * was found and shrunk within bounds), 1 violation found (or
 * --expect-failure found none), 2 usage error.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/liveness.hh"
#include "check/oracle.hh"
#include "check/shrink.hh"
#include "htm/machine.hh"

namespace
{

using namespace htmsim;
using namespace htmsim::check;

struct MachineChoice
{
    const char* token;
    htm::MachineConfig config;
};

std::vector<MachineChoice>
machineChoices()
{
    return {
        {"bgq", htm::MachineConfig::blueGeneQ()},
        {"zec12", htm::MachineConfig::zEC12()},
        {"intel", htm::MachineConfig::intelCore()},
        {"p8", htm::MachineConfig::power8()},
    };
}

std::vector<std::string>
splitList(const std::string& text)
{
    std::vector<std::string> items;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        if (comma == std::string::npos) {
            items.push_back(text.substr(start));
            break;
        }
        items.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return items;
}

void
usage(std::FILE* out)
{
    std::fprintf(out,
        "usage: check_runner [options]\n"
        "sweep:\n"
        "  --seeds N          seeds to sweep (default 25)\n"
        "  --first-seed S     first seed (default 1)\n"
        "  --machines LIST    comma list of bgq,zec12,intel,p8 "
        "(default all)\n"
        "  --workloads LIST   comma list (default all; see --list)\n"
        "  --threads T        simulated threads (default 4)\n"
        "  --ops N            transactions per thread (default 24)\n"
        "  --preempt-prob P   preemption probability per point\n"
        "  --max-delay C      max injected delay in cycles\n"
        "  --ring-capacity N  event-ring capacity (default 32768)\n"
        "  --no-shrink        print the raw failing schedule\n"
        "  --quiet            suppress progress output\n"
        "hazards (any --hazard-* flag enables injection; hazard.hh):\n"
        "  --hazard-rate P    spurious transient-abort probability\n"
        "  --hazard-interrupt R  interrupt rate per cycle (e.g. 1e-6)\n"
        "  --hazard-capacity P   capacity-misestimate probability\n"
        "  --hazard-lock-preempt P  lock-holder preemption "
        "probability\n"
        "  --hazard-seed S    hazard RNG seed (default 1)\n"
        "  --hazard-pin T     pin thread T as a spurious-abort victim\n"
        "  --policy P         default | hardened retry policy\n"
        "backend:\n"
        "  --backend B        htm | hybrid concurrent phase "
        "(default htm)\n"
        "  --subscription S   eager | lazy hybrid clock subscription\n"
        "  --stm-only         hybrid: skip hardware attempts\n"
        "  --stm-attempts N   hybrid: software attempts before the\n"
        "                     global-lock fallback (default 3)\n"
        "  --orec-log2 N      hybrid: log2 of the orec-table size\n"
        "liveness:\n"
        "  --liveness         run the liveness oracle (progress\n"
        "                     bounds) instead of the differential one\n"
        "  --max-section-cycles C  completion bound (default 4000000)\n"
        "  --starvation-bound N    peer-commit bound (default 512)\n"
        "self-test:\n"
        "  --inject-fault F   none | miss-reader-conflict | "
        "stuck-retry | stm-subscription\n"
        "  --expect-failure   exit 0 iff a failure is found and\n"
        "                     shrinks to at most --max-shrunk points\n"
        "  --max-shrunk N     shrink bound for --expect-failure "
        "(default 10)\n"
        "replay:\n"
        "  --seed S --workload W --machine M --schedule \"t:i:d,...\"\n"
        "misc:\n"
        "  --list             list workloads and machines\n");
    std::fprintf(out, "accepted --workloads values: all");
    for (const WorkloadFactory& factory : allWorkloads())
        std::fprintf(out, ",%s", factory.name);
    std::fprintf(out, "\naccepted --policy values: default,hardened\n");
}

struct Args
{
    std::uint64_t seeds = 25;
    std::uint64_t firstSeed = 1;
    std::string machines = "all";
    std::string workloads = "all";
    CheckOptions options;
    LivenessOptions livenessOptions;
    bool liveness = false;
    bool noShrink = false;
    bool quiet = false;
    bool expectFailure = false;
    std::size_t maxShrunk = 10;
    bool replayMode = false;
    std::uint64_t replaySeed = 0;
    std::string replaySchedule;
};

/** Non-default oracle configuration, rendered as the flags that
 *  recreate it — appended to the replay artifact so a failure found
 *  under hazards/policy/liveness settings replays under the same. */
std::string
extraReplayFlags(const Args& args)
{
    std::string flags;
    char buffer[64];
    const auto add = [&](const char* flag, double value) {
        std::snprintf(buffer, sizeof(buffer), " %s %g", flag, value);
        flags += buffer;
    };
    const htm::HazardConfig& hazard = args.options.hazard;
    if (hazard.enabled) {
        if (hazard.spuriousAbortProb != 0.0)
            add("--hazard-rate", hazard.spuriousAbortProb);
        if (hazard.interruptRate != 0.0)
            add("--hazard-interrupt", hazard.interruptRate);
        if (hazard.capacityNoiseProb != 0.0)
            add("--hazard-capacity", hazard.capacityNoiseProb);
        if (hazard.lockPreemptProb != 0.0)
            add("--hazard-lock-preempt", hazard.lockPreemptProb);
        std::snprintf(buffer, sizeof(buffer), " --hazard-seed %llu",
                      (unsigned long long) hazard.seed);
        flags += buffer;
        if (hazard.pinnedVictim >= 0) {
            std::snprintf(buffer, sizeof(buffer), " --hazard-pin %d",
                          hazard.pinnedVictim);
            flags += buffer;
        }
    }
    if (args.options.policyKind == htm::RetryPolicyKind::hardened)
        flags += " --policy hardened";
    if (args.options.backend == htm::BackendKind::hybrid) {
        flags += " --backend hybrid";
        flags += args.options.hybrid.subscription ==
                         htm::HybridRuntimeConfig::Subscription::lazy
                     ? " --subscription lazy"
                     : " --subscription eager";
        if (args.options.hybrid.stmOnly)
            flags += " --stm-only";
        if (args.options.hybrid.stmAttempts != 3) {
            std::snprintf(buffer, sizeof(buffer), " --stm-attempts %d",
                          args.options.hybrid.stmAttempts);
            flags += buffer;
        }
        if (args.options.hybrid.orecTableLog2 != 10) {
            std::snprintf(buffer, sizeof(buffer), " --orec-log2 %u",
                          args.options.hybrid.orecTableLog2);
            flags += buffer;
        }
    }
    if (args.options.fault == htm::CheckFault::missReaderConflict)
        flags += " --inject-fault miss-reader-conflict";
    if (args.options.fault == htm::CheckFault::stuckRetry)
        flags += " --inject-fault stuck-retry";
    if (args.options.fault == htm::CheckFault::missStmSubscription)
        flags += " --inject-fault stm-subscription";
    if (args.liveness)
        flags += " --liveness";
    return flags;
}

void
reportFailure(const Args& args, const char* workload,
              const char* machine_token, std::uint64_t seed,
              const RunOutcome& outcome, const Schedule& schedule)
{
    std::printf("FAILURE: workload=%s machine=%s seed=%llu\n",
                workload, machine_token, (unsigned long long) seed);
    std::printf("  reason: %s\n", outcome.reason.c_str());
    std::printf("  replay: check_runner --workload %s --machine %s "
                "--seed %llu --threads %u --ops %u%s "
                "--schedule \"%s\"\n",
                workload, machine_token, (unsigned long long) seed,
                args.options.threads, args.options.opsPerThread,
                extraReplayFlags(args).c_str(),
                formatSchedule(schedule).c_str());
    if (!outcome.traceTail.empty())
        std::printf("  trace tail:\n%s", outcome.traceTail.c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    Args args;
    std::string workload_name;
    std::string machine_name;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--seeds") {
            args.seeds = std::strtoull(next(), nullptr, 0);
        } else if (flag == "--first-seed") {
            args.firstSeed = std::strtoull(next(), nullptr, 0);
        } else if (flag == "--machines" || flag == "--machine") {
            args.machines = next();
            machine_name = args.machines;
        } else if (flag == "--workloads" || flag == "--workload") {
            args.workloads = next();
            workload_name = args.workloads;
        } else if (flag == "--threads") {
            args.options.threads =
                unsigned(std::strtoul(next(), nullptr, 0));
        } else if (flag == "--ops") {
            args.options.opsPerThread =
                unsigned(std::strtoul(next(), nullptr, 0));
        } else if (flag == "--preempt-prob") {
            args.options.fuzz.preemptProb =
                std::strtod(next(), nullptr);
        } else if (flag == "--max-delay") {
            args.options.fuzz.maxDelay =
                std::strtoull(next(), nullptr, 0);
        } else if (flag == "--ring-capacity") {
            args.options.ringCapacity =
                std::strtoull(next(), nullptr, 0);
        } else if (flag == "--hazard-rate") {
            args.options.hazard.enabled = true;
            args.options.hazard.spuriousAbortProb =
                std::strtod(next(), nullptr);
        } else if (flag == "--hazard-interrupt") {
            args.options.hazard.enabled = true;
            args.options.hazard.interruptRate =
                std::strtod(next(), nullptr);
        } else if (flag == "--hazard-capacity") {
            args.options.hazard.enabled = true;
            args.options.hazard.capacityNoiseProb =
                std::strtod(next(), nullptr);
        } else if (flag == "--hazard-lock-preempt") {
            args.options.hazard.enabled = true;
            args.options.hazard.lockPreemptProb =
                std::strtod(next(), nullptr);
        } else if (flag == "--hazard-seed") {
            args.options.hazard.enabled = true;
            args.options.hazard.seed =
                std::strtoull(next(), nullptr, 0);
        } else if (flag == "--hazard-pin") {
            args.options.hazard.enabled = true;
            args.options.hazard.pinnedVictim =
                int(std::strtol(next(), nullptr, 0));
        } else if (flag == "--policy") {
            const std::string policy = next();
            if (policy == "default") {
                args.options.policyKind =
                    htm::RetryPolicyKind::machineDefault;
            } else if (policy == "hardened") {
                args.options.policyKind =
                    htm::RetryPolicyKind::hardened;
            } else {
                std::fprintf(stderr,
                             "unknown policy '%s' (default | "
                             "hardened)\n",
                             policy.c_str());
                return 2;
            }
        } else if (flag == "--backend") {
            const std::string backend = next();
            if (backend == "htm") {
                args.options.backend = htm::BackendKind::htm;
            } else if (backend == "hybrid") {
                args.options.backend = htm::BackendKind::hybrid;
            } else {
                std::fprintf(stderr,
                             "unknown backend '%s' (htm | hybrid)\n",
                             backend.c_str());
                return 2;
            }
        } else if (flag == "--subscription") {
            const std::string mode = next();
            if (mode == "eager") {
                args.options.hybrid.subscription =
                    htm::HybridRuntimeConfig::Subscription::eager;
            } else if (mode == "lazy") {
                args.options.hybrid.subscription =
                    htm::HybridRuntimeConfig::Subscription::lazy;
            } else {
                std::fprintf(stderr,
                             "unknown subscription '%s' (eager | "
                             "lazy)\n",
                             mode.c_str());
                return 2;
            }
        } else if (flag == "--stm-only") {
            args.options.hybrid.stmOnly = true;
        } else if (flag == "--stm-attempts") {
            args.options.hybrid.stmAttempts =
                int(std::strtol(next(), nullptr, 0));
        } else if (flag == "--orec-log2") {
            args.options.hybrid.orecTableLog2 =
                unsigned(std::strtoul(next(), nullptr, 0));
        } else if (flag == "--liveness") {
            args.liveness = true;
        } else if (flag == "--max-section-cycles") {
            args.livenessOptions.maxSectionCycles =
                std::strtoull(next(), nullptr, 0);
        } else if (flag == "--starvation-bound") {
            args.livenessOptions.starvationCommitBound =
                std::strtoull(next(), nullptr, 0);
        } else if (flag == "--inject-fault") {
            const std::string fault = next();
            if (fault == "none") {
                args.options.fault = htm::CheckFault::none;
            } else if (fault == "miss-reader-conflict") {
                args.options.fault =
                    htm::CheckFault::missReaderConflict;
            } else if (fault == "stuck-retry") {
                args.options.fault = htm::CheckFault::stuckRetry;
            } else if (fault == "stm-subscription") {
                args.options.fault =
                    htm::CheckFault::missStmSubscription;
            } else {
                std::fprintf(stderr, "unknown fault '%s'\n",
                             fault.c_str());
                return 2;
            }
        } else if (flag == "--expect-failure") {
            args.expectFailure = true;
        } else if (flag == "--max-shrunk") {
            args.maxShrunk = std::strtoull(next(), nullptr, 0);
        } else if (flag == "--no-shrink") {
            args.noShrink = true;
        } else if (flag == "--quiet") {
            args.quiet = true;
        } else if (flag == "--seed") {
            args.replayMode = true;
            args.replaySeed = std::strtoull(next(), nullptr, 0);
        } else if (flag == "--schedule") {
            args.replaySchedule = next();
        } else if (flag == "--list") {
            std::printf("workloads:");
            for (const WorkloadFactory& factory : allWorkloads())
                std::printf(" %s", factory.name);
            std::printf("\nmachines:");
            for (const MachineChoice& choice : machineChoices())
                std::printf(" %s", choice.token);
            std::printf("\n");
            return 0;
        } else if (flag == "--help" || flag == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            usage(stderr);
            return 2;
        }
    }

    // Resolve machine and workload selections.
    std::vector<MachineChoice> machines;
    if (args.machines == "all") {
        machines = machineChoices();
    } else {
        for (const std::string& token : splitList(args.machines)) {
            bool found = false;
            for (const MachineChoice& choice : machineChoices()) {
                if (token == choice.token) {
                    machines.push_back(choice);
                    found = true;
                }
            }
            if (!found) {
                std::fprintf(stderr, "unknown machine '%s'\n",
                             token.c_str());
                return 2;
            }
        }
    }
    std::vector<const WorkloadFactory*> workloads;
    if (args.workloads == "all") {
        for (const WorkloadFactory& factory : allWorkloads())
            workloads.push_back(&factory);
    } else {
        for (const std::string& token : splitList(args.workloads)) {
            const WorkloadFactory* factory = findWorkload(token);
            if (factory == nullptr) {
                std::fprintf(stderr,
                             "unknown workload '%s' (accepted: all",
                             token.c_str());
                for (const WorkloadFactory& known : allWorkloads())
                    std::fprintf(stderr, ",%s", known.name);
                std::fprintf(stderr, ")\n");
                return 2;
            }
            workloads.push_back(factory);
        }
    }

    // Dispatch to the selected oracle: safety (differential) by
    // default, progress (liveness) under --liveness.
    const auto runOracle = [&args](const WorkloadFactory& factory,
                                   const htm::MachineConfig& machine,
                                   std::uint64_t seed,
                                   const Schedule* replay) {
        if (args.liveness) {
            return runLiveness(factory, machine, seed, args.options,
                               args.livenessOptions, replay);
        }
        return runDifferential(factory, machine, seed, args.options,
                               replay);
    };

    // --- Replay mode: one run, exact schedule, no sweep. ---
    if (args.replayMode) {
        if (workloads.size() != 1 || machines.size() != 1) {
            std::fprintf(stderr, "--seed replay needs exactly one "
                                 "--workload and one --machine\n");
            return 2;
        }
        Schedule schedule;
        try {
            schedule = parseSchedule(args.replaySchedule);
        } catch (const std::exception& error) {
            std::fprintf(stderr, "bad --schedule: %s\n", error.what());
            return 2;
        }
        const RunOutcome outcome =
            runOracle(*workloads[0], machines[0].config,
                      args.replaySeed, &schedule);
        if (outcome.ok) {
            std::printf("replay OK: %llu commits, no violation\n",
                        (unsigned long long) outcome.commits);
            return 0;
        }
        reportFailure(args, workloads[0]->name, machines[0].token,
                      args.replaySeed, outcome, outcome.fired);
        return 1;
    }

    // --- Sweep mode. ---
    std::uint64_t runs = 0;
    for (std::uint64_t seed = args.firstSeed;
         seed < args.firstSeed + args.seeds; ++seed) {
        for (const MachineChoice& machine : machines) {
            for (const WorkloadFactory* factory : workloads) {
                const RunOutcome outcome = runOracle(
                    *factory, machine.config, seed, nullptr);
                ++runs;
                if (outcome.ok)
                    continue;

                Schedule schedule = outcome.fired;
                unsigned evaluations = 0;
                if (!args.noShrink) {
                    // Hazard config and seed are held fixed across
                    // shrink evaluations: only the preemption
                    // schedule is minimized. A hazard-only livelock
                    // (schedule-independent) shrinks to the empty
                    // schedule.
                    const auto refails = [&](const Schedule& s) {
                        return !runOracle(*factory, machine.config,
                                          seed, &s)
                                    .ok;
                    };
                    ShrinkResult shrunk =
                        shrinkSchedule(refails, schedule);
                    schedule = std::move(shrunk.schedule);
                    evaluations = shrunk.evaluations;
                }
                // Re-run the minimized schedule to report *its*
                // outcome (reason and trace may differ from the
                // original fuzzed run's).
                const RunOutcome minimized = runOracle(
                    *factory, machine.config, seed, &schedule);
                const RunOutcome& report =
                    minimized.ok ? outcome : minimized;
                if (!args.quiet && !args.noShrink) {
                    std::printf("shrink: %zu -> %zu points (%u "
                                "oracle evaluations)\n",
                                outcome.fired.size(), schedule.size(),
                                evaluations);
                }
                reportFailure(args, factory->name, machine.token,
                              seed, report, schedule);
                if (args.expectFailure) {
                    if (minimized.ok) {
                        std::printf("self-test: shrunk schedule no "
                                    "longer fails\n");
                        return 1;
                    }
                    if (schedule.size() > args.maxShrunk) {
                        std::printf(
                            "self-test: shrunk to %zu points, over "
                            "the %zu bound\n",
                            schedule.size(), args.maxShrunk);
                        return 1;
                    }
                    std::printf("self-test: failure caught and "
                                "shrunk to %zu points\n",
                                schedule.size());
                    return 0;
                }
                return 1;
            }
        }
        if (!args.quiet && (seed - args.firstSeed + 1) % 25 == 0) {
            std::printf("... %llu/%llu seeds, %llu runs clean\n",
                        (unsigned long long)(seed - args.firstSeed +
                                             1),
                        (unsigned long long) args.seeds,
                        (unsigned long long) runs);
            std::fflush(stdout);
        }
    }

    if (args.expectFailure) {
        std::printf("self-test: no failure found in %llu runs\n",
                    (unsigned long long) runs);
        return 1;
    }
    if (!args.quiet) {
        std::printf("sweep clean: %llu runs (%llu seeds x %zu "
                    "machines x %zu workloads)\n",
                    (unsigned long long) runs,
                    (unsigned long long) args.seeds, machines.size(),
                    workloads.size());
    }
    return 0;
}

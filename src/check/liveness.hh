/**
 * @file
 * Liveness oracle (simcheck).
 *
 * The differential oracle (oracle.hh) checks *safety*: committed
 * results are serializable. It says nothing about *progress* — a retry
 * policy that livelocks, convoys forever on the fallback lock, or
 * starves one thread while its peers commit would pass every safety
 * check by never committing the starved sections at all. This oracle
 * closes that gap, following the progress-centric view of hybrid-TM
 * fallback design (Alistarh et al., "Inherent Limitations of Hybrid
 * Transactional Memory"):
 *
 *  - bounded completion: every atomic section must commit (in hardware
 *    or via the fallback) within a bounded virtual-time window of its
 *    first begin;
 *  - no starvation: a section must not stay open while its peers rack
 *    up an unbounded number of commits;
 *  - completeness: when the run ends, every operation committed
 *    exactly once.
 *
 * The checker is an online TxObserver: it watches the same event
 * stream the differential oracle records (delivered in global
 * virtual-time order) and throws LivenessViolation the moment a bound
 * is exceeded, so a livelocked run fails fast instead of spinning to
 * the scheduler's probe guard. Violations carry the fired preemption
 * schedule and the hazard configuration, which check_runner prints as
 * a one-command replay artifact and ddmin-shrinks with the same
 * machinery as safety failures (shrink.hh).
 */

#ifndef HTMSIM_CHECK_LIVENESS_HH
#define HTMSIM_CHECK_LIVENESS_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/oracle.hh"
#include "htm/observer.hh"
#include "sim/scheduler.hh"

namespace htmsim::check
{

/** Progress bounds enforced by the LivenessChecker. */
struct LivenessOptions
{
    /** Max virtual cycles from a section's first begin to its commit
     *  (hardware or fallback). Generous: legitimate worst cases —
     *  watchdog-bounded retries, preempted lock holders, fuzzed
     *  preemption delays — stay well under it; a livelocked section
     *  crosses it quickly. */
    sim::Cycles maxSectionCycles = 4'000'000;
    /** Max commits by peers while one section stays open. */
    std::uint64_t starvationCommitBound = 512;
};

/** Thrown from the observer when a progress bound is exceeded. */
class LivenessViolation : public std::runtime_error
{
  public:
    explicit LivenessViolation(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Online progress watchdog over the lifecycle-event stream. Forwards
 * every event to @p forward (the diagnostic EventRing) before
 * checking, so the trace tail of a violation shows the events leading
 * up to it.
 *
 * A *section* opens at the first begin after the previous close and
 * closes at commit / fallbackCommit; retried attempts keep it open.
 * Sections that run straight to the lock (pure fallback) never open —
 * their progress is the lock holder's, which the completion bound of
 * the section that acquired it already covers.
 */
class LivenessChecker final : public htm::TxObserver
{
  public:
    LivenessChecker(unsigned num_threads, LivenessOptions options,
                    htm::TxObserver* forward = nullptr)
        : options_(options), forward_(forward), threads_(num_threads)
    {
    }

    void onEvent(const htm::TxEvent& event) override;

    void
    onConflict(const htm::TxConflictEvent& event) override
    {
        if (forward_ != nullptr)
            forward_->onConflict(event);
    }

    /** Commits observed so far (all threads). */
    std::uint64_t globalCommits() const { return globalCommits_; }

  private:
    struct ThreadProgress
    {
        bool open = false;
        /** Virtual time of the open section's first begin. */
        sim::Cycles openSince = 0;
        /** globalCommits_ when the section opened. */
        std::uint64_t commitsAtOpen = 0;
    };

    LivenessOptions options_;
    htm::TxObserver* forward_;
    std::vector<ThreadProgress> threads_;
    std::uint64_t globalCommits_ = 0;
};

/**
 * Run the liveness oracle for (@p workload, @p machine, @p seed): the
 * concurrent phase of the differential oracle — fuzzed schedule,
 * hazards and retry policy from @p options — watched by a
 * LivenessChecker, plus the exactly-once completeness check. No serial
 * replay (that is the safety oracle's job). When @p replay is non-null
 * the run fires exactly that schedule, making failures replayable and
 * shrinkable from the printed artifact.
 */
RunOutcome runLiveness(const WorkloadFactory& workload,
                       const htm::MachineConfig& machine,
                       std::uint64_t seed,
                       const CheckOptions& options = {},
                       const LivenessOptions& liveness = {},
                       const Schedule* replay = nullptr);

} // namespace htmsim::check

#endif // HTMSIM_CHECK_LIVENESS_HH

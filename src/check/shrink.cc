#include "shrink.hh"

#include <cstddef>

namespace htmsim::check
{

namespace
{

Schedule
without(const Schedule& schedule, std::size_t start,
        std::size_t count)
{
    Schedule candidate;
    candidate.reserve(schedule.size() - count);
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        if (i < start || i >= start + count)
            candidate.push_back(schedule[i]);
    }
    return candidate;
}

} // namespace

ShrinkResult
shrinkSchedule(const FailsPredicate& fails, Schedule failing,
               unsigned max_evaluations)
{
    ShrinkResult result;
    result.schedule = std::move(failing);

    // Some injected faults fail even unperturbed; the empty schedule
    // is then the minimal artifact.
    if (result.evaluations < max_evaluations) {
        ++result.evaluations;
        if (fails(Schedule{})) {
            result.schedule.clear();
            return result;
        }
    }

    std::size_t chunk = result.schedule.size() / 2;
    if (chunk == 0)
        chunk = 1;
    while (!result.schedule.empty() &&
           result.evaluations < max_evaluations) {
        bool removed_any = false;
        for (std::size_t start = 0;
             start < result.schedule.size() &&
             result.evaluations < max_evaluations;) {
            const std::size_t count =
                std::min(chunk, result.schedule.size() - start);
            Schedule candidate =
                without(result.schedule, start, count);
            ++result.evaluations;
            if (fails(candidate)) {
                result.schedule = std::move(candidate);
                removed_any = true;
                // Retry the same start: the next chunk slid into it.
            } else {
                start += count;
            }
        }
        if (chunk == 1) {
            if (!removed_any)
                break;
        } else {
            chunk /= 2;
        }
    }
    return result;
}

} // namespace htmsim::check

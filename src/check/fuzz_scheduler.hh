/**
 * @file
 * Seeded schedule fuzzing for the simulator (simcheck).
 *
 * The deterministic scheduler always resumes the earliest-virtual-time
 * thread, so one workload explores exactly one interleaving. The
 * FuzzScheduler plugs into the SchedulePerturber hook and, at seeded
 * random scheduling points, charges the running thread a random delay.
 * Because every globally visible event — transactional loads/stores,
 * begin/commit boundaries, lock-fallback acquisition spins — sits
 * behind a scheduling point, each seed explores a distinct but fully
 * reproducible interleaving.
 *
 * Two modes:
 *  - fuzz(seed): per-thread xoshiro streams derived from the seed
 *    decide where to fire and how long to delay; every fired point is
 *    recorded as a (tid, per-thread point index, delay) triple;
 *  - replay(schedule): fire exactly the given triples — replaying the
 *    full recorded schedule reproduces the fuzzed run bit-for-bit,
 *    and replaying a subset is what the shrinker (shrink.hh) uses to
 *    minimize a failing schedule.
 */

#ifndef HTMSIM_CHECK_FUZZ_SCHEDULER_HH
#define HTMSIM_CHECK_FUZZ_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/scheduler.hh"

namespace htmsim::check
{

/** One injected preemption: thread @p tid's @p index-th scheduling
 *  point was delayed by @p delay cycles. */
struct PreemptPoint
{
    unsigned tid;
    std::uint64_t index;
    sim::Cycles delay;

    bool
    operator==(const PreemptPoint& other) const
    {
        return tid == other.tid && index == other.index &&
               delay == other.delay;
    }
};

/** A set of injected preemptions (one fuzzed run's perturbation). */
using Schedule = std::vector<PreemptPoint>;

/** Render a schedule as the replayable "tid:index:delay,..." form
 *  accepted by check_runner --schedule. */
std::string formatSchedule(const Schedule& schedule);

/** Parse the --schedule form; throws std::invalid_argument on junk. */
Schedule parseSchedule(const std::string& text);

/** Fuzzing knobs. */
struct FuzzOptions
{
    /** Probability of firing at any one scheduling point. */
    double preemptProb = 0.05;
    /** Injected delays are uniform in [minDelay, maxDelay] cycles.
     *  The ceiling must comfortably exceed per-event costs (tens to
     *  ~150 cycles) so a delayed thread's next event can be overtaken
     *  by whole peer transactions. */
    sim::Cycles minDelay = 50;
    sim::Cycles maxDelay = 4000;
};

/**
 * The SchedulePerturber implementation simcheck runs under.
 *
 * Per-thread decision streams are derived from (seed, tid) only, so a
 * thread's k-th scheduling point receives the same decision no matter
 * how the global interleaving unfolds — which is what makes replaying
 * a full fired schedule exact.
 */
class FuzzScheduler final : public sim::SchedulePerturber
{
  public:
    /** Fuzz mode: decisions drawn from @p seed. */
    FuzzScheduler(std::uint64_t seed, FuzzOptions options);

    /** Replay mode: fire exactly @p schedule, nothing else. */
    explicit FuzzScheduler(Schedule schedule);

    sim::Cycles preemptDelay(unsigned tid, sim::Cycles now) override;

    /** Points that fired so far (fuzz mode records; replay echoes). */
    const Schedule& fired() const { return fired_; }

    /** Scheduling points visited so far, across all threads. */
    std::uint64_t pointsVisited() const { return pointsVisited_; }

  private:
    struct ThreadStream
    {
        sim::Rng rng;
        std::uint64_t nextIndex = 0;
    };

    ThreadStream& streamOf(unsigned tid);

    bool replayMode_;
    std::uint64_t seed_ = 0;
    FuzzOptions options_;
    Schedule replay_;
    Schedule fired_;
    std::vector<ThreadStream> streams_;
    std::uint64_t pointsVisited_ = 0;
};

} // namespace htmsim::check

#endif // HTMSIM_CHECK_FUZZ_SCHEDULER_HH

#include "fuzz_scheduler.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace htmsim::check
{

std::string
formatSchedule(const Schedule& schedule)
{
    std::string result;
    char buffer[64];
    for (const PreemptPoint& point : schedule) {
        std::snprintf(buffer, sizeof(buffer), "%s%u:%llu:%llu",
                      result.empty() ? "" : ",", point.tid,
                      (unsigned long long) point.index,
                      (unsigned long long) point.delay);
        result += buffer;
    }
    return result;
}

Schedule
parseSchedule(const std::string& text)
{
    Schedule schedule;
    std::size_t position = 0;
    while (position < text.size()) {
        unsigned tid = 0;
        unsigned long long index = 0;
        unsigned long long delay = 0;
        int consumed = 0;
        if (std::sscanf(text.c_str() + position, "%u:%llu:%llu%n",
                        &tid, &index, &delay, &consumed) != 3) {
            throw std::invalid_argument("bad schedule entry near '" +
                                        text.substr(position) + "'");
        }
        schedule.push_back({tid, index, sim::Cycles(delay)});
        position += std::size_t(consumed);
        if (position < text.size()) {
            if (text[position] != ',')
                throw std::invalid_argument("expected ',' in schedule");
            ++position;
        }
    }
    return schedule;
}

FuzzScheduler::FuzzScheduler(std::uint64_t seed, FuzzOptions options)
    : replayMode_(false), seed_(seed), options_(options)
{
}

FuzzScheduler::FuzzScheduler(Schedule schedule)
    : replayMode_(true), replay_(std::move(schedule))
{
    // Sorting by (tid, index) lets preemptDelay binary-search.
    std::sort(replay_.begin(), replay_.end(),
              [](const PreemptPoint& a, const PreemptPoint& b) {
                  return a.tid != b.tid ? a.tid < b.tid
                                        : a.index < b.index;
              });
}

FuzzScheduler::ThreadStream&
FuzzScheduler::streamOf(unsigned tid)
{
    if (streams_.size() <= tid)
        streams_.resize(tid + 1);
    ThreadStream& stream = streams_[tid];
    if (stream.nextIndex == 0 && !replayMode_) {
        // Stream state depends on (seed, tid) only: decisions at a
        // thread's k-th point are interleaving-independent. 0x5eed...
        // offsets the stream ids away from the Scheduler's own.
        stream.rng = sim::Rng(seed_ ^ 0x5eedf022dULL, tid + 101);
    }
    return stream;
}

sim::Cycles
FuzzScheduler::preemptDelay(unsigned tid, sim::Cycles)
{
    ThreadStream& stream = streamOf(tid);
    const std::uint64_t index = stream.nextIndex++;
    ++pointsVisited_;

    if (replayMode_) {
        const auto it = std::lower_bound(
            replay_.begin(), replay_.end(),
            PreemptPoint{tid, index, 0},
            [](const PreemptPoint& a, const PreemptPoint& b) {
                return a.tid != b.tid ? a.tid < b.tid
                                      : a.index < b.index;
            });
        if (it == replay_.end() || it->tid != tid ||
            it->index != index) {
            return 0;
        }
        fired_.push_back(*it);
        return it->delay;
    }

    if (!stream.rng.nextBool(options_.preemptProb)) {
        // Keep the draw count per point fixed (one Bernoulli + one
        // range draw) so fired and unfired points consume the same
        // amount of stream — replaying subsets stays aligned.
        stream.rng.nextU64();
        return 0;
    }
    const sim::Cycles span = options_.maxDelay - options_.minDelay + 1;
    const sim::Cycles delay =
        options_.minDelay + stream.rng.nextRange(span);
    fired_.push_back({tid, index, delay});
    return delay;
}

} // namespace htmsim::check

/**
 * @file
 * Discrete-event scheduler for simulated threads.
 *
 * Every simulated thread owns a virtual clock measured in cycles. The
 * scheduler always resumes the runnable thread with the smallest clock,
 * so shared-memory events issued at scheduling points occur in global
 * virtual-time order. This is what makes speed-up measurements on a
 * single host core meaningful: the makespan (maximum finish time) of a
 * run is the simulated parallel execution time.
 *
 * Epoch batching (DESIGN.md Section 5): while one thread runs, every
 * other thread is frozen, so the smallest other runnable clock cannot
 * change between two of the running thread's scheduling points. The
 * scheduler therefore hands the dispatched thread a *lease* — the
 * virtual time up to which sync() is provably a no-op — and sync()
 * reduces to a single compare until the lease expires. A batched run
 * is bit-identical to an unbatched one by construction: only scheduling
 * points that could not have switched threads are elided.
 */

#ifndef HTMSIM_SIM_SCHEDULER_HH
#define HTMSIM_SIM_SCHEDULER_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fiber.hh"
#include "random.hh"

namespace htmsim::sim
{

/** Virtual time, in processor cycles. */
using Cycles = std::uint64_t;

/** Thrown when the simulation cannot make progress (virtual livelock). */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

class Scheduler;

/**
 * Hook consulted at every scheduling point (sync / yieldNow).
 *
 * Returning a non-zero delay pushes the current thread's clock forward
 * before the scheduler picks the next runnable thread, which reorders
 * globally visible events relative to the deterministic
 * earliest-time-first baseline while preserving the virtual-time
 * semantics (events still occur in virtual-time order). This is the
 * mechanism simcheck's FuzzScheduler (src/check) uses to explore
 * distinct interleavings per seed; with no perturber registered the
 * scheduler's behaviour is bit-identical to before the hook existed.
 *
 * Draw discipline (schedule format v2): the perturber is consulted
 * exactly once per scheduling point — sync() no longer draws a second
 * time when it enters the yield path, so per-thread point indices are
 * stable regardless of whether a point actually switched threads.
 * Schedules recorded under the old double-draw discipline do not
 * replay; re-record them. While a perturber is registered the sync()
 * fast path is disabled entirely, so epoch batching never elides a
 * point index.
 */
class SchedulePerturber
{
  public:
    virtual ~SchedulePerturber() = default;

    /**
     * Called once per scheduling point of thread @p tid, whose clock
     * reads @p now. @return extra cycles to charge the thread before
     * the scheduling decision (0 = leave the schedule alone).
     */
    virtual Cycles preemptDelay(unsigned tid, Cycles now) = 0;
};

/**
 * Per-thread handle passed to simulated-thread bodies.
 *
 * All methods must be called from within the owning thread's fiber,
 * except now() and id() which are always safe.
 */
class ThreadContext
{
  public:
    /** Simulated thread id, dense from 0. */
    unsigned id() const { return id_; }

    /** This thread's virtual clock. */
    Cycles now() const { return now_; }

    /** This thread's deterministic random stream. */
    Rng& rng() { return rng_; }

    /** Charge @p cycles of compute time without a scheduling point.
     *  The per-thread time scale models core sharing (SMT): a thread
     *  on an oversubscribed core advances proportionally slower. */
    void
    advance(Cycles cycles)
    {
        // The scaled rounding below yields exactly `cycles` for a unit
        // scale (any realistic cycle count is below 2^52), so the
        // integer fast path is bit-identical, just cheaper.
        if (timeScale_ == 1.0) {
            now_ += cycles;
            return;
        }
        now_ += Cycles(double(cycles) * timeScale_ + 0.5);
    }

    /** Set the execution-rate multiplier (>= 1; 1 = dedicated core). */
    void setTimeScale(double scale) { timeScale_ = scale; }
    double timeScale() const { return timeScale_; }

    /**
     * Scheduling point: if another runnable thread is behind this
     * thread in virtual time, switch to it. Call this before every
     * globally visible event so events happen in virtual-time order.
     *
     * Defined inline below the Scheduler: while the thread's clock is
     * inside its dispatch lease the point is provably a no-op and
     * costs one compare.
     */
    void sync();

    /** advance() then sync(); the common per-event pattern. */
    void step(Cycles cycles) { advance(cycles); sync(); }

    /** Unconditional scheduling point (used by spin loops). */
    void yieldNow();

    /**
     * Block until another thread calls Scheduler::wake(id()).
     * On wake-up the clock is advanced to at least the waker's clock.
     */
    void block();

    /**
     * Spin in virtual time until @p pred returns true, charging
     * @p poll_cycles per probe. Throws SimError after an enormous
     * number of probes (virtual livelock / deadlock guard).
     */
    template <typename Pred>
    void
    spinUntil(Pred pred, Cycles poll_cycles)
    {
        std::uint64_t probes = 0;
        while (!pred()) {
            advance(poll_cycles);
            yieldNow();
            if (++probes > spinProbeLimit)
                throw SimError("spinUntil: virtual livelock detected");
        }
    }

    /** The scheduler running this thread. */
    Scheduler& scheduler() { return *scheduler_; }

    /** Probe guard for spinUntil. */
    static constexpr std::uint64_t spinProbeLimit = 50'000'000;

  private:
    friend class Scheduler;

    /** Out-of-line sync() tail: lease expired, perturbed, or a switch
     *  is actually due. */
    void syncSlow();

    Scheduler* scheduler_ = nullptr;
    unsigned id_ = 0;
    Cycles now_ = 0;
    double timeScale_ = 1.0;
    Rng rng_;
};

/**
 * How a scheduler provisions its fibers' stacks (all from the
 * process-wide StackPool; the mode only decides *when* a slot is
 * committed, never *where* a stack lives, so the two modes are
 * bit-identical by construction — proven by a forked A/B test).
 */
enum class StackPolicy
{
    /** Commit a fiber's stack at first dispatch and decommit it when
     *  the fiber finishes: resident memory tracks live fibers. The
     *  default. */
    pooled,
    /** Commit every fiber's stack up front at run() and keep them
     *  until the scheduler dies (the historical behaviour). */
    eager,
};

/**
 * Owns the simulated threads and runs them to completion in
 * earliest-virtual-time-first order.
 */
class Scheduler
{
  public:
    /** @param seed master seed for all per-thread random streams. */
    explicit Scheduler(std::uint64_t seed = 1);
    ~Scheduler();

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /**
     * Add a simulated thread. Threads start with clock 0.
     * @return the new thread's id.
     */
    unsigned spawn(std::function<void(ThreadContext&)> body);

    /** Run until every spawned thread finishes. Rethrows body errors. */
    void run();

    /** Make a blocked thread runnable; clock pulled up to @p at_least. */
    void wake(unsigned tid, Cycles at_least);

    /** Maximum finish time over all threads (valid after run()). */
    Cycles makespan() const;

    /** Finish time of one thread (valid after run()). */
    Cycles finishTime(unsigned tid) const;

    /** Sum of all threads' finish times (total busy virtual time). */
    Cycles totalThreadTime() const;

    unsigned numThreads() const { return unsigned(threads_.size()); }

    /** Context access (e.g. for post-run inspection). */
    ThreadContext& context(unsigned tid) { return threads_[tid]->context; }

    /**
     * Register a scheduling perturber (nullptr to remove). Non-owning;
     * the perturber must outlive run(). One perturber per scheduler.
     * Registering one disables the sync() fast path so every
     * scheduling point consults the hook (see SchedulePerturber).
     */
    void setPerturber(SchedulePerturber* perturber)
    {
        perturber_ = perturber;
    }

    /**
     * Enable/disable epoch batching (the sync() fast path). On by
     * default; results are bit-identical either way — the switch
     * exists as an escape hatch and for A/B verification
     * (`--no-batch` in the tools). @p max_epoch_cycles bounds how far
     * a lease may extend past the dispatched thread's clock.
     */
    void
    setBatching(bool enabled, Cycles max_epoch_cycles = defaultEpochCycles)
    {
        batching_ = enabled;
        epochCycles_ = max_epoch_cycles;
    }

    bool batchingEnabled() const { return batching_; }

    /** Default per-dispatch lease bound (virtual cycles). */
    static constexpr Cycles defaultEpochCycles = Cycles(1) << 20;

    /** Select this scheduler's stack provisioning mode (before run()). */
    void
    setStackPolicy(StackPolicy policy)
    {
        stackPolicy_ = policy;
    }

    StackPolicy stackPolicy() const { return stackPolicy_; }

    /** Per-fiber stack size (before run()); capped by the pool's slot
     *  capacity. Raise it for workloads with deep recursion. */
    void
    setStackBytes(std::size_t bytes)
    {
        stackBytes_ = std::min(bytes, StackPool::maxStackBytes);
    }

    /**
     * Process-wide default stack policy new schedulers start from.
     * Exists so A/B tests (and tools) can flip schedulers constructed
     * deep inside harness code; analogous to the --no-batch switch.
     */
    static void
    setDefaultStackPolicy(StackPolicy policy)
    {
        defaultStackPolicy_ = policy;
    }

    static StackPolicy defaultStackPolicy()
    {
        return defaultStackPolicy_;
    }

    /**
     * True if any thread other than @p tid could still run or wake up.
     * Used by spin loops to detect true deadlock early.
     */
    bool othersPending(unsigned tid) const;

  private:
    friend class ThreadContext;

    static constexpr unsigned kNone = ~0u;

    enum class State { runnable, running, blocked, finished };

    struct Thread
    {
        ThreadContext context;
        std::unique_ptr<Fiber> fiber;
        State state = State::runnable;
        Cycles finishTime = 0;
    };

    /** Sentinel parking a slot outside the run queue (also "no other
     *  runnable thread" in lease math). Real clocks never reach it. */
    static constexpr Cycles never = ~Cycles(0);

    /**
     * Per-thread scheduling record, indexed by tid. (time, order) is
     * the run-queue key while the thread is runnable — order is a
     * global enqueue stamp, so ties resolve in enqueue (FIFO) order
     * exactly as the former binary-heap queue did. A slot whose time
     * is `never` is not runnable (running, blocked, or finished).
     * Runnable tids additionally sit in the dense runnable_ list (pos
     * is their index there), which is what the scheduling scans walk —
     * their cost is O(runnable), not O(max-tid), so hundreds of
     * mostly-blocked or finished fibers don't tax every scheduling
     * point. Scan order over the list is arbitrary, but the (time,
     * order) key is unique per thread, so the pick is order-independent
     * and bit-identical to the full-array scan. leaseEnd is the sync()
     * fast-path bound of the running thread: scheduling points with
     * now < leaseEnd are provably no-ops.
     */
    struct SlotRec
    {
        Cycles time;
        std::uint64_t order;
        Cycles leaseEnd;
        unsigned pos;
    };

    /**
     * Earliest runnable thread by (time, order), or kNone.
     * @p min_other receives the smallest slot time among the other
     * runnable threads (the picked thread's lease bound).
     */
    unsigned pickNext(Cycles* min_other) const;

    /** Mark @p tid running and compute its dispatch lease. */
    void dispatch(unsigned tid, Cycles min_other);

    /** Renew the running thread's lease at a no-op scheduling point. */
    void renewLease(unsigned tid, Cycles min_other);

    /** Re-enqueue the running thread and switch to the earliest
     *  runnable thread (possibly itself — then no switch happens). */
    void yieldFrom(unsigned tid);

    /** Smallest slot time over runnable threads other than @p tid. */
    Cycles minRunnableTime(unsigned excluding) const;

    /** Put @p tid on the run queue at @p time (fresh order stamp). */
    void enqueue(unsigned tid, Cycles time);

    /** Take @p tid off the run queue (running/blocked/finished). */
    void dequeue(unsigned tid);

    /** Reserve this run's contiguous pool slot range; under the eager
     *  policy also commit and attach every fiber's stack now. */
    void provisionStacks();

    /** Commit slot rangeBase_ + tid and attach it — the pooled path's
     *  lazy fiber activation, called at first dispatch. */
    void ensureStack(unsigned tid);

    std::uint64_t seed_;
    SchedulePerturber* perturber_ = nullptr;
    std::uint64_t orderCounter_ = 0;
    bool batching_ = true;
    Cycles epochCycles_ = defaultEpochCycles;
    StackPolicy stackPolicy_ = defaultStackPolicy_;
    std::size_t stackBytes_ = Fiber::defaultStackBytes;
    unsigned rangeBase_ = kNone;
    std::vector<std::unique_ptr<Thread>> threads_;
    std::vector<SlotRec> slots_;
    std::vector<unsigned> runnable_;
    unsigned runningTid_ = 0;
    bool running_ = false;

    static inline StackPolicy defaultStackPolicy_ = StackPolicy::pooled;
};

inline void
ThreadContext::sync()
{
    // Inside the dispatch lease no other runnable thread can be
    // strictly behind this clock, so the point cannot switch threads
    // (and no perturber is registered — leases are 0 then).
    if (now_ < scheduler_->slots_[id_].leaseEnd) [[likely]]
        return;
    syncSlow();
}

} // namespace htmsim::sim

#endif // HTMSIM_SIM_SCHEDULER_HH

/**
 * @file
 * Pooled fiber stacks carved out of one reserved arena.
 *
 * Scaling the scheduler to hundreds of fibers with per-fiber
 * heap-allocated stacks fails twice over: a value-initialized 1 MB
 * vector touches every page at construction (256 fibers = 256 MB
 * resident before the first instruction runs), and the allocations
 * perturb the malloc heap — whose addresses the simulated machine
 * models hash into conflict lines and cache sets — so *when* a stack
 * is allocated would leak into simulated metrics.
 *
 * The pool solves both. One mmap reserves a PROT_NONE arena of
 * fixed-stride slots up front; a slot's stack is committed (mprotect
 * RW) only when a fiber is first dispatched and decommitted
 * (madvise MADV_DONTNEED) when it finishes, so resident memory tracks
 * the *live* fibers' touched pages, not the spawn count. Stacks grow
 * downward from the top of their slot, and everything below the
 * committed region stays PROT_NONE — an overflow lands on a guard of
 * at least 64 KB instead of silently corrupting a neighbour.
 *
 * Determinism contract: a slot's address is a pure function of its
 * index, and schedulers reserve index ranges first-fit, so for a given
 * sequence of scheduler lifetimes every fiber stack lands at the same
 * host address regardless of when (or whether lazily) it was
 * committed. That is what makes the pooled/lazy path bit-identical to
 * eager per-fiber stacks — commit timing is invisible to the models.
 *
 * The pool is a process-wide singleton (the simulator is single-host-
 * threaded) and released slot ranges are recycled across scheduler
 * lifetimes through the free map, so a tuning sweep's thousands of
 * runs reuse one arena instead of churning the heap.
 */

#ifndef HTMSIM_SIM_STACK_POOL_HH
#define HTMSIM_SIM_STACK_POOL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace htmsim::sim
{

/** A committed, ready-to-run stack region (guard pages below it). */
struct StackSpan
{
    char* base = nullptr; ///< Lowest usable byte.
    std::size_t size = 0; ///< Usable bytes; the top is base + size.
};

class StackPool
{
  public:
    /** The process-wide pool (created on first use). */
    static StackPool& instance();

    /** Largest stack a slot can hold. */
    static constexpr std::size_t maxStackBytes = std::size_t(1) << 20;

    /** Guard floor: committed stacks of maxStackBytes still leave this
     *  much PROT_NONE below them inside their own slot. */
    static constexpr std::size_t guardBytes = std::size_t(1) << 16;

    /** Distance between consecutive slot tops. */
    static constexpr std::size_t slotStrideBytes =
        maxStackBytes + guardBytes;

    /** Arena capacity; ~1 GB of *virtual* reservation, nothing
     *  resident until committed and touched. */
    static constexpr unsigned maxSlots = 1024;

    /**
     * Reserve @p count consecutive slots (deterministic first-fit) and
     * return the base slot index. Throws std::runtime_error when no
     * contiguous range fits.
     */
    unsigned reserveRange(unsigned count);

    /** Return a range to the free map, decommitting any slots still
     *  committed. Recycled ranges are what later schedulers get. */
    void releaseRange(unsigned base, unsigned count);

    /**
     * Commit @p stack_bytes (rounded up to whole pages) at the top of
     * @p slot and return the usable span. Idempotent per slot while
     * committed (returns the existing span).
     */
    StackSpan commit(unsigned slot, std::size_t stack_bytes);

    /** Decommit a slot's stack: the pages are returned to the kernel
     *  and the whole slot reverts to PROT_NONE. */
    void decommit(unsigned slot);

    bool committed(unsigned slot) const
    {
        return committedBytes_[slot] != 0;
    }

    /** Currently committed stack bytes across all slots. */
    std::size_t committedStackBytes() const { return totalCommitted_; }

    /** High-water mark of committedStackBytes() — the pooled budget
     *  the stress tests assert against. */
    std::size_t peakCommittedBytes() const { return peakCommitted_; }

    /** Lifetime commit operations (visibility into slot recycling). */
    std::uint64_t commitCount() const { return commitCount_; }

    StackPool(const StackPool&) = delete;
    StackPool& operator=(const StackPool&) = delete;

  private:
    StackPool();

    char* slotTop(unsigned slot) const
    {
        return arena_ + std::size_t(slot + 1) * slotStrideBytes;
    }

    char* arena_ = nullptr;
    std::vector<bool> used_;
    std::vector<std::size_t> committedBytes_;
    std::size_t totalCommitted_ = 0;
    std::size_t peakCommitted_ = 0;
    std::uint64_t commitCount_ = 0;
};

} // namespace htmsim::sim

#endif // HTMSIM_SIM_STACK_POOL_HH

/**
 * @file
 * Cooperative user-level fibers built on ucontext.
 *
 * Each simulated thread runs on its own fiber. Exactly one fiber (or the
 * scheduler) executes at any host instant, so simulated code needs no
 * host-level synchronization.
 */

#ifndef HTMSIM_SIM_FIBER_HH
#define HTMSIM_SIM_FIBER_HH

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

namespace htmsim::sim
{

/**
 * A single cooperative fiber.
 *
 * The owner (the scheduler) resumes the fiber with resume(); the fiber
 * returns control with yieldToOwner(). When the body function returns or
 * throws, the fiber becomes finished and resume() returns immediately.
 * An exception escaping the body is captured and rethrown from resume().
 */
class Fiber
{
  public:
    /** Create a fiber that will run @p body when first resumed. */
    explicit Fiber(std::function<void()> body,
                   std::size_t stack_bytes = defaultStackBytes);

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;
    ~Fiber();

    /**
     * Transfer control into the fiber until it yields or finishes.
     * Must not be called from inside any fiber of this library.
     * Rethrows any exception that escaped the fiber body.
     */
    void resume();

    /** True once the body function has returned or thrown. */
    bool finished() const { return finished_; }

    /**
     * Return control to the resume() call that entered the current
     * fiber. Must be called from inside a fiber.
     */
    static void yieldToOwner();

    /** Default stack size; STAMP's yada recursion fits comfortably. */
    static constexpr std::size_t defaultStackBytes = 1024 * 1024;

  private:
    static void trampoline(unsigned hi, unsigned lo);
    void run();

    std::function<void()> body_;
    std::vector<char> stack_;
    ucontext_t context_;
    ucontext_t ownerContext_;
    std::exception_ptr pendingException_;
    bool finished_ = false;
    bool started_ = false;
};

} // namespace htmsim::sim

#endif // HTMSIM_SIM_FIBER_HH

/**
 * @file
 * Cooperative user-level fibers.
 *
 * Each simulated thread runs on its own fiber. Exactly one fiber (or the
 * scheduler) executes at any host instant, so simulated code needs no
 * host-level synchronization.
 *
 * On x86-64 Linux the switch is a hand-rolled stack swap that saves only
 * the callee-saved registers and the FP control words. ucontext's
 * swapcontext also saves/restores the signal mask — a sigprocmask
 * syscall per switch — which dominated host time at the simulator's
 * millions of scheduling points. Other platforms (or builds defining
 * HTMSIM_UCONTEXT_FIBERS) keep the portable ucontext backend.
 */

#ifndef HTMSIM_SIM_FIBER_HH
#define HTMSIM_SIM_FIBER_HH

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#if defined(__x86_64__) && defined(__linux__) && \
    !defined(HTMSIM_UCONTEXT_FIBERS)
#define HTMSIM_FAST_FIBERS 1
#else
#define HTMSIM_FAST_FIBERS 0
#endif

namespace htmsim::sim
{
class Fiber;
}

#if HTMSIM_FAST_FIBERS
extern "C" void htmsim_fiber_finish(htmsim::sim::Fiber* fiber);
#endif

namespace htmsim::sim
{

/**
 * A single cooperative fiber.
 *
 * The owner (the scheduler) resumes the fiber with resume(); the fiber
 * returns control with yieldToOwner(). When the body function returns or
 * throws, the fiber becomes finished and resume() returns immediately.
 * An exception escaping the body is captured and rethrown from resume().
 */
class Fiber
{
  public:
    /** Create a fiber that will run @p body when first resumed. */
    explicit Fiber(std::function<void()> body,
                   std::size_t stack_bytes = defaultStackBytes);

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;
    ~Fiber();

    /**
     * Transfer control into the fiber until it yields or finishes.
     * Must not be called from inside any fiber of this library.
     * Rethrows any exception that escaped the fiber body.
     */
    void resume();

    /** True once the body function has returned or thrown. */
    bool finished() const { return finished_; }

    /**
     * Return control to the resume() call that entered the current
     * fiber. Must be called from inside a fiber.
     */
    static void yieldToOwner();

    /** Default stack size; STAMP's yada recursion fits comfortably. */
    static constexpr std::size_t defaultStackBytes = 1024 * 1024;

  private:
#if HTMSIM_FAST_FIBERS
    friend void ::htmsim_fiber_finish(Fiber*);

    /// Build the initial stack frame the first switch-in will pop.
    void initFastStack();

    /// Saved stack pointers live inside the (otherwise unused)
    /// ucontext_t members: simulated placement is sensitive to host
    /// heap layout, so sizeof(Fiber) must not depend on the backend.
    void*& fastSp() { return *reinterpret_cast<void**>(&context_); }
    void*& fastOwnerSp()
    {
        return *reinterpret_cast<void**>(&ownerContext_);
    }
#endif

    static void trampoline(unsigned hi, unsigned lo);
    void run();

    std::function<void()> body_;
    std::vector<char> stack_;
    ucontext_t context_;
    ucontext_t ownerContext_;
    std::exception_ptr pendingException_;
    bool finished_ = false;
    bool started_ = false;
};

} // namespace htmsim::sim

#endif // HTMSIM_SIM_FIBER_HH

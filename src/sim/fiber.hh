/**
 * @file
 * Cooperative user-level fibers.
 *
 * Each simulated thread runs on its own fiber. Exactly one fiber (or the
 * scheduler) executes at any host instant, so simulated code needs no
 * host-level synchronization.
 *
 * On x86-64 Linux the switch is a hand-rolled stack swap that saves only
 * the callee-saved registers and the FP control words. ucontext's
 * swapcontext also saves/restores the signal mask — a sigprocmask
 * syscall per switch — which dominated host time at the simulator's
 * millions of scheduling points. Other platforms (or builds defining
 * HTMSIM_UCONTEXT_FIBERS) keep the portable ucontext backend.
 *
 * Control transfers come in two flavours: owner <-> fiber (resume /
 * yieldToOwner) and the direct fiber -> fiber hand-off (switchTo) the
 * scheduler uses at its scheduling points, which costs one stack swap
 * instead of two. The suspended owner's continuation is a single
 * per-host-thread slot — whichever fiber returns to the owner resumes
 * the most recent resume() call.
 */

#ifndef HTMSIM_SIM_FIBER_HH
#define HTMSIM_SIM_FIBER_HH

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#if defined(__x86_64__) && defined(__linux__) && \
    !defined(HTMSIM_UCONTEXT_FIBERS)
#define HTMSIM_FAST_FIBERS 1
#else
#define HTMSIM_FAST_FIBERS 0
#endif

namespace htmsim::sim
{
class Fiber;
}

#if HTMSIM_FAST_FIBERS
extern "C" void htmsim_fiber_finish(htmsim::sim::Fiber* fiber);
#endif

namespace htmsim::sim
{

/**
 * A single cooperative fiber.
 *
 * The owner (the scheduler) resumes the fiber with resume(); the fiber
 * returns control with yieldToOwner() or hands off to a sibling with
 * switchTo(). When the body function returns or throws, the fiber
 * becomes finished and control returns to the owner. An exception that
 * escaped the body is captured; the owner rethrows it explicitly via
 * rethrowPending().
 */
class Fiber
{
  public:
    /** Create a fiber that will run @p body when first resumed. */
    explicit Fiber(std::function<void()> body,
                   std::size_t stack_bytes = defaultStackBytes);

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;
    ~Fiber();

    /**
     * Transfer control into the fiber until it (or a sibling it
     * switched to) yields back or finishes. Must not be called from
     * inside any fiber of this library. Rethrows an exception that
     * escaped this fiber's body; an exception from a sibling that
     * returned to the owner instead is surfaced via rethrowPending().
     */
    void resume();

    /** True once the body function has returned or thrown. */
    bool finished() const { return finished_; }

    /** Rethrow the exception that escaped the body, if any. */
    void
    rethrowPending()
    {
        if (pendingException_) {
            auto exception = pendingException_;
            pendingException_ = nullptr;
            std::rethrow_exception(exception);
        }
    }

    /**
     * Return control to the resume() call that last entered a fiber
     * of this host thread. Must be called from inside a fiber.
     */
    static void yieldToOwner();

    /**
     * Park the current fiber and run @p next directly, without
     * passing through the owner. Must be called from inside a fiber;
     * @p next must be a different, unfinished fiber.
     */
    static void switchTo(Fiber& next);

    /** Default stack size; STAMP's yada recursion fits comfortably. */
    static constexpr std::size_t defaultStackBytes = 1024 * 1024;

  private:
#if HTMSIM_FAST_FIBERS
    friend void ::htmsim_fiber_finish(Fiber*);

    /// Build the initial stack frame the first switch-in will pop.
    void initFastStack();

    /// The saved stack pointer lives inside the (otherwise unused)
    /// ucontext_t member: simulated placement is sensitive to host
    /// heap layout, so sizeof(Fiber) must not depend on the backend.
    void*& fastSp() { return *reinterpret_cast<void**>(&context_); }
#endif

    static void trampoline(unsigned hi, unsigned lo);
#if HTMSIM_FAST_FIBERS
    // Referenced only from the context-switch asm, which LTO cannot
    // see: `used` keeps the definition out of dead-code elimination.
    __attribute__((used))
#endif
    void run();

    std::function<void()> body_;
    std::vector<char> stack_;
    ucontext_t context_;
    /// Unused since the owner continuation became a shared
    /// per-host-thread slot; retained so sizeof(Fiber) — and with it
    /// the host heap layout the simulated models hash — is unchanged.
    ucontext_t ownerContext_;
    std::exception_ptr pendingException_;
    bool finished_ = false;
    bool started_ = false;
};

} // namespace htmsim::sim

#endif // HTMSIM_SIM_FIBER_HH

/**
 * @file
 * Cooperative user-level fibers.
 *
 * Each simulated thread runs on its own fiber. Exactly one fiber (or the
 * scheduler) executes at any host instant, so simulated code needs no
 * host-level synchronization.
 *
 * On x86-64 Linux the switch is a hand-rolled stack swap that saves only
 * the callee-saved registers and the FP control words. ucontext's
 * swapcontext also saves/restores the signal mask — a sigprocmask
 * syscall per switch — which dominated host time at the simulator's
 * millions of scheduling points. Other platforms (or builds defining
 * HTMSIM_UCONTEXT_FIBERS) keep the portable ucontext backend.
 *
 * Control transfers come in two flavours: owner <-> fiber (resume /
 * yieldToOwner) and the direct fiber -> fiber hand-off (switchTo) the
 * scheduler uses at its scheduling points, which costs one stack swap
 * instead of two. The suspended owner's continuation is a single
 * per-host-thread slot — whichever fiber returns to the owner resumes
 * the most recent resume() call.
 */

#ifndef HTMSIM_SIM_FIBER_HH
#define HTMSIM_SIM_FIBER_HH

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>

#include "stack_pool.hh"

#if defined(__x86_64__) && defined(__linux__) && \
    !defined(HTMSIM_UCONTEXT_FIBERS)
#define HTMSIM_FAST_FIBERS 1
#else
#define HTMSIM_FAST_FIBERS 0
#endif

namespace htmsim::sim
{
class Fiber;
}

#if HTMSIM_FAST_FIBERS
extern "C" void htmsim_fiber_finish(htmsim::sim::Fiber* fiber);
#endif

namespace htmsim::sim
{

/**
 * A single cooperative fiber.
 *
 * The owner (the scheduler) resumes the fiber with resume(); the fiber
 * returns control with yieldToOwner() or hands off to a sibling with
 * switchTo(). When the body function returns or throws, the fiber
 * becomes finished and control returns to the owner. An exception that
 * escaped the body is captured; the owner rethrows it explicitly via
 * rethrowPending().
 */
class Fiber
{
  public:
    /** Tag selecting the deferred-stack constructor. */
    struct DeferStack
    {
    };

    /**
     * Create a standalone fiber: a stack slot is reserved and
     * committed from the StackPool immediately and released on
     * destruction.
     */
    explicit Fiber(std::function<void()> body,
                   std::size_t stack_bytes = defaultStackBytes);

    /**
     * Create a fiber with no stack. The owner (the scheduler) attaches
     * one via attachStack() before the first resume()/switchTo() —
     * lazily, at first dispatch, on the pooled path.
     */
    Fiber(DeferStack, std::function<void()> body);

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;
    ~Fiber();

    /**
     * Attach the stack this fiber will run on. Must happen exactly
     * once, before the fiber first gains control. The span stays owned
     * by the caller (the scheduler decommits it when the fiber
     * finishes).
     */
    void attachStack(StackSpan span);

    /** True once a stack is attached and the entry frame is built. */
    bool hasStack() const { return stack_.base != nullptr; }

    /**
     * Transfer control into the fiber until it (or a sibling it
     * switched to) yields back or finishes. Must not be called from
     * inside any fiber of this library. Rethrows an exception that
     * escaped this fiber's body; an exception from a sibling that
     * returned to the owner instead is surfaced via rethrowPending().
     */
    void resume();

    /** True once the body function has returned or thrown. */
    bool finished() const { return finished_; }

    /** Rethrow the exception that escaped the body, if any. */
    void
    rethrowPending()
    {
        if (pendingException_) {
            auto exception = pendingException_;
            pendingException_ = nullptr;
            std::rethrow_exception(exception);
        }
    }

    /**
     * Return control to the resume() call that last entered a fiber
     * of this host thread. Must be called from inside a fiber.
     */
    static void yieldToOwner();

    /**
     * Park the current fiber and run @p next directly, without
     * passing through the owner. Must be called from inside a fiber;
     * @p next must be a different, unfinished fiber.
     */
    static void switchTo(Fiber& next);

    /** Default stack size. Much smaller than the historical 1 MB —
     *  hundreds of pooled fibers must fit a modest resident budget —
     *  and safe because an overflow now lands on the slot's PROT_NONE
     *  guard instead of corrupting a neighbouring stack. STAMP's yada
     *  recursion still fits comfortably. */
    static constexpr std::size_t defaultStackBytes = 256 * 1024;

  private:
#if HTMSIM_FAST_FIBERS
    friend void ::htmsim_fiber_finish(Fiber*);

    /// Build the initial stack frame the first switch-in will pop.
    void initFastStack();

    /// The saved stack pointer lives inside the (otherwise unused)
    /// ucontext_t member: simulated placement is sensitive to host
    /// heap layout, so sizeof(Fiber) must not depend on the backend.
    void*& fastSp() { return *reinterpret_cast<void**>(&context_); }
#endif

    static void trampoline(unsigned hi, unsigned lo);
#if HTMSIM_FAST_FIBERS
    // Referenced only from the context-switch asm, which LTO cannot
    // see: `used` keeps the definition out of dead-code elimination.
    __attribute__((used))
#endif
    void run();

    std::function<void()> body_;
    /// The stack this fiber runs on — pool-owned memory, never the
    /// malloc heap, so fiber lifetime cannot perturb the heap layout
    /// the simulated models hash. Empty until attachStack().
    StackSpan stack_{};
    ucontext_t context_;
    std::exception_ptr pendingException_;
    /// Standalone fibers own a 1-slot pool range; kNoSlot otherwise.
    unsigned ownSlot_ = kNoSlot;
    bool finished_ = false;
    bool started_ = false;

    static constexpr unsigned kNoSlot = ~0u;
};

} // namespace htmsim::sim

#endif // HTMSIM_SIM_FIBER_HH

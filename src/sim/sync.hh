/**
 * @file
 * Synchronization primitives operating in virtual time.
 */

#ifndef HTMSIM_SIM_SYNC_HH
#define HTMSIM_SIM_SYNC_HH

#include <cassert>
#include <vector>

#include "scheduler.hh"

namespace htmsim::sim
{

/**
 * Reusable rendezvous barrier. All parties' clocks advance to the
 * maximum arrival time (plus a small release cost) before continuing.
 */
class Barrier
{
  public:
    explicit Barrier(unsigned parties) : parties_(parties) {}

    /** Cycles charged to every thread for the barrier release. */
    static constexpr Cycles releaseCost = 100;

    /** Block until all parties have arrived. */
    void
    arrive(ThreadContext& ctx)
    {
        assert(parties_ > 0);
        maxTime_ = std::max(maxTime_, ctx.now());
        if (++arrived_ < parties_) {
            waiters_.push_back(ctx.id());
            ctx.block();
            return;
        }
        // Last arriver: release everyone at the common time.
        const Cycles release_at = maxTime_ + releaseCost;
        std::vector<unsigned> to_wake;
        to_wake.swap(waiters_);
        arrived_ = 0;
        maxTime_ = 0;
        for (unsigned tid : to_wake)
            ctx.scheduler().wake(tid, release_at);
        ctx.advance(release_at - ctx.now());
        ctx.sync();
    }

  private:
    unsigned parties_;
    unsigned arrived_ = 0;
    Cycles maxTime_ = 0;
    std::vector<unsigned> waiters_;
};

/**
 * Test-and-set spin lock in virtual time. Used for lock-based baselines
 * and as the HTM global-lock fallback substrate.
 */
class SpinLock
{
  public:
    /** Cycles charged per lock probe while spinning. */
    static constexpr Cycles pollCost = 30;
    /** Cycles charged by a successful acquire or a release. */
    static constexpr Cycles accessCost = 20;

    /** Spin until the lock is free, then take it. */
    void
    acquire(ThreadContext& ctx)
    {
        ctx.sync();
        if (locked_)
            ctx.spinUntil([this] { return !locked_; }, pollCost);
        locked_ = true;
        holder_ = int(ctx.id());
        ctx.advance(accessCost);
    }

    /** Release; must be held by the calling thread. */
    void
    release(ThreadContext& ctx)
    {
        assert(locked_ && holder_ == int(ctx.id()));
        ctx.advance(accessCost);
        holder_ = -1;
        locked_ = false;
    }

    bool held() const { return locked_; }

    /** Id of the holding thread, or -1. */
    int holder() const { return holder_; }

  private:
    bool locked_ = false;
    int holder_ = -1;
};

} // namespace htmsim::sim

#endif // HTMSIM_SIM_SYNC_HH

/**
 * @file
 * Umbrella header for the simulation substrate.
 */

#ifndef HTMSIM_SIM_SIM_HH
#define HTMSIM_SIM_SIM_HH

#include "fiber.hh"     // IWYU pragma: export
#include "random.hh"    // IWYU pragma: export
#include "scheduler.hh" // IWYU pragma: export
#include "sync.hh"      // IWYU pragma: export

namespace htmsim::sim
{

/**
 * Convenience: run @p body on @p num_threads simulated threads and
 * return the makespan (max finish time) in cycles.
 */
inline Cycles
runThreads(unsigned num_threads, std::uint64_t seed,
           const std::function<void(ThreadContext&)>& body)
{
    Scheduler scheduler(seed);
    for (unsigned i = 0; i < num_threads; ++i)
        scheduler.spawn(body);
    scheduler.run();
    return scheduler.makespan();
}

} // namespace htmsim::sim

#endif // HTMSIM_SIM_SIM_HH

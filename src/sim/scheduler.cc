#include "scheduler.hh"

#include <algorithm>
#include <cassert>

namespace htmsim::sim
{

void
ThreadContext::sync()
{
    // Preemption point: a registered perturber may push this thread's
    // clock forward here, letting another thread's events overtake.
    // sync() may then enter yieldNow(), which draws again; the two
    // draws are distinct preemption points and their delays add.
    if (scheduler_->perturber_ != nullptr)
        now_ += scheduler_->perturber_->preemptDelay(id_, now_);
    if (scheduler_->runnableBefore(now_))
        yieldNow();
}

void
ThreadContext::yieldNow()
{
    if (scheduler_->perturber_ != nullptr)
        now_ += scheduler_->perturber_->preemptDelay(id_, now_);
    auto& thread = *scheduler_->threads_[id_];
    thread.state = Scheduler::State::runnable;
    scheduler_->enqueue(id_);
    Fiber::yieldToOwner();
}

void
ThreadContext::block()
{
    auto& thread = *scheduler_->threads_[id_];
    thread.state = Scheduler::State::blocked;
    Fiber::yieldToOwner();
}

Scheduler::Scheduler(std::uint64_t seed) : seed_(seed) {}

Scheduler::~Scheduler() = default;

unsigned
Scheduler::spawn(std::function<void(ThreadContext&)> body)
{
    assert(!running_ && "spawn() during run() is not supported");
    const unsigned tid = unsigned(threads_.size());
    auto thread = std::make_unique<Thread>();
    thread->context.scheduler_ = this;
    thread->context.id_ = tid;
    thread->context.rng_ = Rng(seed_, tid);
    ThreadContext* context = &thread->context;
    auto wrapped = [body = std::move(body), context] { body(*context); };
    thread->fiber = std::make_unique<Fiber>(std::move(wrapped));
    threads_.push_back(std::move(thread));
    enqueue(tid);
    return tid;
}

void
Scheduler::run()
{
    running_ = true;
    while (!runQueue_.empty()) {
        const QueueEntry entry = runQueue_.top();
        runQueue_.pop();
        Thread& thread = *threads_[entry.tid];
        assert(thread.state == State::runnable);
        thread.state = State::running;
        runningTid_ = entry.tid;
        thread.fiber->resume();
        if (thread.fiber->finished()) {
            thread.state = State::finished;
            thread.finishTime = thread.context.now();
        }
        // Otherwise the fiber yielded: block() left it blocked, or
        // yieldNow() already re-enqueued it as runnable.
    }
    running_ = false;
    for (const auto& thread : threads_) {
        if (thread->state != State::finished) {
            throw SimError("simulation deadlock: thread " +
                           std::to_string(thread->context.id()) +
                           " blocked forever");
        }
    }
}

void
Scheduler::wake(unsigned tid, Cycles at_least)
{
    Thread& thread = *threads_[tid];
    if (thread.state != State::blocked)
        return;
    thread.context.now_ = std::max(thread.context.now_, at_least);
    thread.state = State::runnable;
    enqueue(tid);
}

Cycles
Scheduler::makespan() const
{
    Cycles result = 0;
    for (const auto& thread : threads_)
        result = std::max(result, thread->finishTime);
    return result;
}

Cycles
Scheduler::finishTime(unsigned tid) const
{
    return threads_[tid]->finishTime;
}

Cycles
Scheduler::totalThreadTime() const
{
    Cycles result = 0;
    for (const auto& thread : threads_)
        result += thread->finishTime;
    return result;
}

bool
Scheduler::othersPending(unsigned tid) const
{
    for (const auto& thread : threads_) {
        if (thread->context.id() != tid &&
            thread->state != State::finished) {
            return true;
        }
    }
    return false;
}

void
Scheduler::enqueue(unsigned tid)
{
    runQueue_.push(QueueEntry{threads_[tid]->context.now(),
                              orderCounter_++, tid});
}

bool
Scheduler::runnableBefore(Cycles time) const
{
    return !runQueue_.empty() && runQueue_.top().time < time;
}

} // namespace htmsim::sim

#include "scheduler.hh"

#include <algorithm>
#include <cassert>

namespace htmsim::sim
{

namespace
{
/// leaseEnd is exclusive: a point at now == min_other must not yield
/// (the peer is not *strictly* behind), so the lease extends to
/// min_other + 1, saturating at the top of the cycle range.
Cycles
leaseBound(Cycles bound)
{
    return bound == ~Cycles(0) ? bound : bound + 1;
}
} // namespace

void
ThreadContext::syncSlow()
{
    Scheduler& s = *scheduler_;
    if (s.perturber_ != nullptr) {
        // Preemption point: a registered perturber may push this
        // thread's clock forward, letting another thread's events
        // overtake. Exactly one draw per scheduling point — the yield
        // below does not draw again (schedule format v2).
        now_ += s.perturber_->preemptDelay(id_, now_);
        if (s.minRunnableTime(id_) < now_)
            s.yieldFrom(id_);
        return;
    }
    // One scan resolves the whole scheduling point: the earliest other
    // runnable thread is the yield target (this thread is not on the
    // runnable list while it runs) and the runner-up time is the
    // target's dispatch lease. The scan walks the dense runnable list,
    // so its cost is O(runnable) however many threads exist.
    const Scheduler::SlotRec* slots = s.slots_.data();
    unsigned best = Scheduler::kNone;
    Cycles best_time = Scheduler::never;
    std::uint64_t best_order = 0;
    Cycles second = Scheduler::never;
    for (const unsigned tid : s.runnable_) {
        const Scheduler::SlotRec& slot = slots[tid];
        if (best == Scheduler::kNone || slot.time < best_time ||
            (slot.time == best_time && slot.order < best_order)) {
            if (best != Scheduler::kNone)
                second = std::min(second, best_time);
            best = tid;
            best_time = slot.time;
            best_order = slot.order;
        } else {
            second = std::min(second, slot.time);
        }
    }
    // Both exits renew a lease inline; with no perturber registered,
    // only the batching flag gates it (renewLease without the
    // perturber branch).
    if (best_time >= now_) {
        // No-op scheduling point past the lease (nobody is strictly
        // behind — `never` when nobody is runnable at all): renew it.
        // Other threads cannot have moved since dispatch, but the
        // lease is also bounded by the epoch budget, which may simply
        // have expired.
        s.slots_[id_].leaseEnd =
            s.batching_
                ? leaseBound(std::min(best_time, now_ + s.epochCycles_))
                : 0;
        return;
    }
    // Yield: the re-enqueued self is stamped later than every waiting
    // thread, so it loses all ties — `best` is exactly the thread the
    // run-queue scan would pick, and the runner-up lease is the
    // remaining minimum including self. Dispatch is fused in, and the
    // Thread records stay untouched: the state field only needs to
    // distinguish blocked (wake()) and finished (run()/deadlock), both
    // maintained on their own paths, and the target's clock equals its
    // parked slot time, so the lease cap needs no pointer chase.
    s.enqueue(id_, now_);
    s.dequeue(best); // leave the run queue while running
    s.runningTid_ = best;
    s.slots_[best].leaseEnd =
        s.batching_
            ? leaseBound(std::min(std::min(second, now_),
                                  best_time + s.epochCycles_))
            : 0;
    s.ensureStack(best);
    Fiber::switchTo(*s.threads_[best]->fiber);
}

void
ThreadContext::yieldNow()
{
    Scheduler& s = *scheduler_;
    if (s.perturber_ != nullptr)
        now_ += s.perturber_->preemptDelay(id_, now_);
    s.yieldFrom(id_);
}

void
ThreadContext::block()
{
    Scheduler& s = *scheduler_;
    auto& thread = *s.threads_[id_];
    thread.state = Scheduler::State::blocked;
    Cycles min_other;
    const unsigned next = s.pickNext(&min_other);
    if (next == Scheduler::kNone) {
        // Nothing runnable: return to the owner loop, which declares
        // deadlock (or finishes the run if everyone is done).
        Fiber::yieldToOwner();
        return;
    }
    s.dispatch(next, min_other);
    Fiber::switchTo(*s.threads_[next]->fiber);
}

Scheduler::Scheduler(std::uint64_t seed) : seed_(seed) {}

Scheduler::~Scheduler()
{
    // Fibers first (their stacks must not outlive the slots), then the
    // whole slot range back to the pool — including slots still
    // committed when a run ended early (deadlock) or eagerly.
    threads_.clear();
    if (rangeBase_ != kNone)
        StackPool::instance().releaseRange(rangeBase_,
                                           unsigned(slots_.size()));
}

unsigned
Scheduler::spawn(std::function<void(ThreadContext&)> body)
{
    assert(!running_ && "spawn() during run() is not supported");
    assert(rangeBase_ == kNone && "spawn() after run() started");
    const unsigned tid = unsigned(threads_.size());
    auto thread = std::make_unique<Thread>();
    thread->context.scheduler_ = this;
    thread->context.id_ = tid;
    thread->context.rng_ = Rng(seed_, tid);
    ThreadContext* context = &thread->context;
    auto wrapped = [body = std::move(body), context] { body(*context); };
    // Deferred stack: the Fiber object exists from spawn (the heap
    // allocation sequence is identical under every stack policy), but
    // the stack slot is committed per the policy — up front or at
    // first dispatch.
    thread->fiber =
        std::make_unique<Fiber>(Fiber::DeferStack{}, std::move(wrapped));
    threads_.push_back(std::move(thread));
    slots_.push_back(SlotRec{never, 0, 0, kNone});
    enqueue(tid, 0);
    return tid;
}

void
Scheduler::provisionStacks()
{
    if (rangeBase_ != kNone || threads_.empty())
        return;
    rangeBase_ =
        StackPool::instance().reserveRange(unsigned(threads_.size()));
    if (stackPolicy_ == StackPolicy::eager) {
        for (unsigned tid = 0; tid < unsigned(threads_.size()); ++tid)
            ensureStack(tid);
    }
}

void
Scheduler::ensureStack(unsigned tid)
{
    Fiber& fiber = *threads_[tid]->fiber;
    if (fiber.hasStack()) [[likely]]
        return;
    fiber.attachStack(
        StackPool::instance().commit(rangeBase_ + tid, stackBytes_));
}

void
Scheduler::run()
{
    provisionStacks();
    running_ = true;
    for (;;) {
        Cycles min_other;
        const unsigned next = pickNext(&min_other);
        if (next == kNone)
            break;
        dispatch(next, min_other);
        threads_[next]->fiber->resume();
        // Control is back at the owner: the fiber that ran last (not
        // necessarily `next` — threads switch among themselves)
        // finished, or blocked with nothing left runnable.
        Thread& last = *threads_[runningTid_];
        if (last.fiber->finished()) {
            last.fiber->rethrowPending();
            last.state = State::finished;
            last.finishTime = last.context.now();
            // Pooled stacks go back to the kernel as soon as their
            // fiber is done — peak residency tracks *live* fibers.
            if (stackPolicy_ == StackPolicy::pooled)
                StackPool::instance().decommit(rangeBase_ + runningTid_);
        }
    }
    running_ = false;
    for (const auto& thread : threads_) {
        if (thread->state != State::finished) {
            throw SimError("simulation deadlock: thread " +
                           std::to_string(thread->context.id()) +
                           " blocked forever");
        }
    }
}

void
Scheduler::wake(unsigned tid, Cycles at_least)
{
    Thread& thread = *threads_[tid];
    if (thread.state != State::blocked)
        return;
    thread.context.now_ = std::max(thread.context.now_, at_least);
    thread.state = State::runnable;
    enqueue(tid, thread.context.now_);
    // The waker's lease no longer covers the woken thread's clock.
    if (running_) {
        SlotRec& self = slots_[runningTid_];
        self.leaseEnd =
            std::min(self.leaseEnd, leaseBound(slots_[tid].time));
    }
}

Cycles
Scheduler::makespan() const
{
    Cycles result = 0;
    for (const auto& thread : threads_)
        result = std::max(result, thread->finishTime);
    return result;
}

Cycles
Scheduler::finishTime(unsigned tid) const
{
    return threads_[tid]->finishTime;
}

Cycles
Scheduler::totalThreadTime() const
{
    Cycles result = 0;
    for (const auto& thread : threads_)
        result += thread->finishTime;
    return result;
}

bool
Scheduler::othersPending(unsigned tid) const
{
    for (const auto& thread : threads_) {
        if (thread->context.id() != tid &&
            thread->state != State::finished) {
            return true;
        }
    }
    return false;
}

unsigned
Scheduler::pickNext(Cycles* min_other) const
{
    unsigned best = kNone;
    Cycles best_time = 0;
    std::uint64_t best_order = 0;
    Cycles second = never;
    for (const unsigned tid : runnable_) {
        const SlotRec& slot = slots_[tid];
        if (best == kNone || slot.time < best_time ||
            (slot.time == best_time && slot.order < best_order)) {
            if (best != kNone)
                second = std::min(second, best_time);
            best = tid;
            best_time = slot.time;
            best_order = slot.order;
        } else {
            second = std::min(second, slot.time);
        }
    }
    *min_other = second;
    return best;
}

void
Scheduler::dispatch(unsigned tid, Cycles min_other)
{
    Thread& thread = *threads_[tid];
    thread.state = State::running;
    dequeue(tid); // leave the run queue while running
    runningTid_ = tid;
    renewLease(tid, min_other);
    ensureStack(tid);
}

void
Scheduler::enqueue(unsigned tid, Cycles time)
{
    SlotRec& slot = slots_[tid];
    assert(slot.pos == kNone && "enqueue() of an already-queued thread");
    slot.time = time;
    slot.order = orderCounter_++;
    slot.pos = unsigned(runnable_.size());
    runnable_.push_back(tid);
}

void
Scheduler::dequeue(unsigned tid)
{
    SlotRec& slot = slots_[tid];
    assert(slot.pos != kNone && "dequeue() of an unqueued thread");
    const unsigned moved = runnable_.back();
    runnable_[slot.pos] = moved;
    slots_[moved].pos = slot.pos;
    runnable_.pop_back();
    slot.time = never;
    slot.pos = kNone;
}

void
Scheduler::renewLease(unsigned tid, Cycles min_other)
{
    SlotRec& slot = slots_[tid];
    if (!batching_ || perturber_ != nullptr) {
        slot.leaseEnd = 0;
        return;
    }
    const Cycles cap = threads_[tid]->context.now_ + epochCycles_;
    slot.leaseEnd = leaseBound(std::min(min_other, cap));
}

void
Scheduler::yieldFrom(unsigned tid)
{
    Thread& self = *threads_[tid];
    enqueue(tid, self.context.now_);
    self.state = State::runnable;
    Cycles min_other;
    const unsigned next = pickNext(&min_other);
    assert(next != kNone && "yieldFrom with an empty run queue");
    dispatch(next, min_other);
    if (next == tid)
        return; // Still the earliest: the switch would be a no-op.
    Fiber::switchTo(*threads_[next]->fiber);
}

Cycles
Scheduler::minRunnableTime(unsigned excluding) const
{
    Cycles min = never;
    for (const unsigned tid : runnable_) {
        if (tid != excluding)
            min = std::min(min, slots_[tid].time);
    }
    return min;
}

} // namespace htmsim::sim

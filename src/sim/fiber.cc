#include "fiber.hh"

#include <cassert>
#include <cstdint>

#if defined(__SANITIZE_ADDRESS__)
#define HTMSIM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HTMSIM_ASAN_FIBERS 1
#endif
#endif
#ifndef HTMSIM_ASAN_FIBERS
#define HTMSIM_ASAN_FIBERS 0
#endif

#if HTMSIM_ASAN_FIBERS
// ASan tracks one stack per thread; a hand-rolled switch must announce
// departures/landings or the first abort-unwind on a fiber stack
// corrupts its shadow bookkeeping. Direct fiber->fiber switches need
// the same annotations even on the ucontext backend's swapcontext
// interceptor-covered paths, and yields back to the owner must name
// the host thread's own stack, learned once via pthread_getattr_np.
#include <sanitizer/common_interface_defs.h>

#include <pthread.h>
#endif

namespace htmsim::sim
{

namespace
{
/// The fiber currently executing, or nullptr when the owner runs.
thread_local Fiber* current_fiber = nullptr;

#if HTMSIM_FAST_FIBERS
/// The suspended owner continuation: the stack pointer parked by the
/// most recent resume(). One slot per host thread — whichever fiber
/// returns to the owner resumes that call, which is what makes direct
/// fiber->fiber hand-offs possible (a per-fiber owner slot would go
/// stale as soon as a fiber entered via switchTo yielded back).
thread_local void* owner_sp = nullptr;
#else
/// ucontext flavour of the shared owner continuation (also the
/// uc_link target for finishing fibers).
thread_local ucontext_t owner_context;
#endif

#if HTMSIM_FAST_FIBERS && HTMSIM_ASAN_FIBERS
thread_local const void* owner_stack_bottom = nullptr;
thread_local std::size_t owner_stack_size = 0;

void
captureOwnerStack()
{
    if (owner_stack_bottom != nullptr)
        return;
    pthread_attr_t attr;
    pthread_getattr_np(pthread_self(), &attr);
    void* base = nullptr;
    std::size_t size = 0;
    pthread_attr_getstack(&attr, &base, &size);
    pthread_attr_destroy(&attr);
    owner_stack_bottom = base;
    owner_stack_size = size;
}
#endif
} // namespace

} // namespace htmsim::sim

#if HTMSIM_FAST_FIBERS

extern "C" {
/// Save callee-saved state on the current stack, park the stack pointer
/// in *save_sp, and resume the context whose stack pointer is to_sp.
void htmsim_context_switch(void** save_sp, void* to_sp);
/// First-activation entry: runs on the fiber stack, built by
/// initFastStack() so that Fiber::run() is entered at the exact stack
/// pointer glibc makecontext would have produced (simulated results
/// are sensitive to host frame addresses).
void htmsim_fiber_thunk();
}

// System V x86-64: rbx, rbp, r12-r15 plus the mxcsr/x87 control words
// are callee-saved; everything else is dead across a call, so a switch
// only needs these 7 quadwords and no signal-mask syscall.
__asm__(
    ".text\n"
    ".p2align 4\n"
    ".globl htmsim_context_switch\n"
    ".hidden htmsim_context_switch\n"
    ".type htmsim_context_switch, @function\n"
    "htmsim_context_switch:\n"
    "    pushq %rbp\n"
    "    pushq %rbx\n"
    "    pushq %r12\n"
    "    pushq %r13\n"
    "    pushq %r14\n"
    "    pushq %r15\n"
    "    subq $8, %rsp\n"
    "    stmxcsr (%rsp)\n"
    "    fnstcw 4(%rsp)\n"
    "    movq %rsp, (%rdi)\n"
    "    movq %rsi, %rsp\n"
    "    ldmxcsr (%rsp)\n"
    "    fldcw 4(%rsp)\n"
    "    addq $8, %rsp\n"
    "    popq %r15\n"
    "    popq %r14\n"
    "    popq %r13\n"
    "    popq %r12\n"
    "    popq %rbx\n"
    "    popq %rbp\n"
    "    retq\n"
    ".size htmsim_context_switch, .-htmsim_context_switch\n"
    ".p2align 4\n"
    ".globl htmsim_fiber_thunk\n"
    ".hidden htmsim_fiber_thunk\n"
    ".type htmsim_fiber_thunk, @function\n"
    "htmsim_fiber_thunk:\n"
    // initFastStack() left the Fiber* in r15 and an entry rsp such
    // that this call enters run() at glibc makecontext's stack
    // pointer (the ucontext backend tail-jumps trampoline -> run).
    "    movq %r15, %rdi\n"
    "    movq %r15, %rbx\n"
    "    call _ZN6htmsim3sim5Fiber3runEv\n"
    "    movq %rbx, %rdi\n"
    "    call htmsim_fiber_finish\n"
    "    ud2\n"
    ".size htmsim_fiber_thunk, .-htmsim_fiber_thunk\n");

// `used`: the only caller is the thunk asm, invisible to LTO.
extern "C" __attribute__((used)) void
htmsim_fiber_finish(htmsim::sim::Fiber* fiber)
{
    (void)fiber;
#if HTMSIM_ASAN_FIBERS
    // nullptr fake-stack save: the fiber departs for good, ASan may
    // release its fake stack.
    __sanitizer_start_switch_fiber(nullptr,
                                   htmsim::sim::owner_stack_bottom,
                                   htmsim::sim::owner_stack_size);
#endif
    // Final transfer back to the owner; the fiber is finished and will
    // never be switched to again, so the save slot is scratch.
    void* scratch;
    htmsim_context_switch(&scratch, htmsim::sim::owner_sp);
    __builtin_unreachable();
}

#endif // HTMSIM_FAST_FIBERS

namespace htmsim::sim
{

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body))
{
    StackPool& pool = StackPool::instance();
    ownSlot_ = pool.reserveRange(1);
    attachStack(pool.commit(ownSlot_, stack_bytes));
}

Fiber::Fiber(DeferStack, std::function<void()> body)
    : body_(std::move(body))
{
}

void
Fiber::attachStack(StackSpan span)
{
    assert(stack_.base == nullptr && "attachStack() called twice");
    assert(!started_ && "attachStack() after the fiber already ran");
    stack_ = span;
#if HTMSIM_FAST_FIBERS
    initFastStack();
#else
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_.base;
    context_.uc_stack.ss_size = stack_.size;
    context_.uc_link = &owner_context;
    auto self = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&context_, reinterpret_cast<void (*)()>(&trampoline), 2,
                unsigned(self >> 32), unsigned(self & 0xffffffffu));
#endif
}

#if HTMSIM_FAST_FIBERS
void
Fiber::initFastStack()
{
    // Match glibc makecontext's initial stack pointer byte-for-byte:
    // run() (and every simulated frame below it) must sit at the same
    // host addresses under both backends, because the simulated
    // machine models hash host addresses (line numbers, cache sets).
    const auto top =
        reinterpret_cast<std::uintptr_t>(stack_.base + stack_.size);
    const std::uintptr_t run_entry =
        ((top - 8) & ~std::uintptr_t(15)) - 8;
    const std::uintptr_t thunk_entry = run_entry + 8;
    auto* frame = reinterpret_cast<std::uintptr_t*>(thunk_entry) - 8;

    std::uint32_t mxcsr = 0;
    std::uint16_t fcw = 0;
    __asm__ volatile("stmxcsr %0" : "=m"(mxcsr));
    __asm__ volatile("fnstcw %0" : "=m"(fcw));

    // The frame htmsim_context_switch pops on first switch-in, low to
    // high: FP control words, r15..r12, rbx, rbp, return address.
    frame[0] = std::uintptr_t(mxcsr) | (std::uintptr_t(fcw) << 32);
    frame[1] = reinterpret_cast<std::uintptr_t>(this); // -> r15
    frame[2] = 0;                                      // -> r14
    frame[3] = 0;                                      // -> r13
    frame[4] = 0;                                      // -> r12
    frame[5] = 0;                                      // -> rbx
    frame[6] = 0;                                      // -> rbp
    frame[7] = reinterpret_cast<std::uintptr_t>(&htmsim_fiber_thunk);
    fastSp() = frame;
}
#endif

Fiber::~Fiber()
{
    // Destroying an unfinished fiber abandons its stack without unwinding.
    // The scheduler only destroys fibers after run() completes, so this is
    // reached only when a simulation is torn down after an error.
    if (ownSlot_ != kNoSlot)
        StackPool::instance().releaseRange(ownSlot_, 1);
}

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    auto self = reinterpret_cast<Fiber*>(
        (std::uintptr_t(hi) << 32) | std::uintptr_t(lo));
    self->run();
}

void
Fiber::run()
{
#if HTMSIM_FAST_FIBERS && HTMSIM_ASAN_FIBERS
    // First landing on this fiber's stack; the departed stack needs no
    // bookkeeping update (owner bounds are learned in resume()).
    __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
    try {
        body_();
    } catch (...) {
        pendingException_ = std::current_exception();
    }
    finished_ = true;
    // Returning hands control back to the owner: via uc_link on the
    // ucontext backend, via htmsim_fiber_thunk/htmsim_fiber_finish on
    // the fast backend.
}

void
Fiber::resume()
{
    assert(!finished_ && "resume() on a finished fiber");
    assert(current_fiber == nullptr && "resume() from inside a fiber");
    assert(hasStack() && "resume() before attachStack()");
    started_ = true;
    current_fiber = this;
#if HTMSIM_FAST_FIBERS
#if HTMSIM_ASAN_FIBERS
    captureOwnerStack();
    void* owner_fake_stack = nullptr;
    __sanitizer_start_switch_fiber(&owner_fake_stack, stack_.base,
                                   stack_.size);
#endif
    htmsim_context_switch(&owner_sp, fastSp());
#if HTMSIM_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(owner_fake_stack, nullptr,
                                    nullptr);
#endif
#else
    swapcontext(&owner_context, &context_);
#endif
    current_fiber = nullptr;
    // If this very fiber finished with an exception, surface it here
    // (standalone Fiber users). When another fiber returned to the
    // owner, the scheduler checks that one via rethrowPending().
    rethrowPending();
}

void
Fiber::yieldToOwner()
{
    Fiber* self = current_fiber;
    assert(self && "yieldToOwner() outside any fiber");
    current_fiber = nullptr;
#if HTMSIM_FAST_FIBERS
#if HTMSIM_ASAN_FIBERS
    void* fiber_fake_stack = nullptr;
    __sanitizer_start_switch_fiber(&fiber_fake_stack,
                                   owner_stack_bottom,
                                   owner_stack_size);
#endif
    htmsim_context_switch(&self->fastSp(), owner_sp);
#if HTMSIM_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fiber_fake_stack, nullptr,
                                    nullptr);
#endif
#else
    swapcontext(&self->context_, &owner_context);
#endif
    current_fiber = self;
}

void
Fiber::switchTo(Fiber& next)
{
    Fiber* self = current_fiber;
    assert(self && "switchTo() outside any fiber");
    assert(self != &next && "switchTo() the current fiber");
    assert(!next.finished_ && "switchTo() a finished fiber");
    assert(next.hasStack() && "switchTo() before attachStack()");
    next.started_ = true;
    current_fiber = &next;
#if HTMSIM_FAST_FIBERS
#if HTMSIM_ASAN_FIBERS
    void* fiber_fake_stack = nullptr;
    __sanitizer_start_switch_fiber(&fiber_fake_stack,
                                   next.stack_.base,
                                   next.stack_.size);
#endif
    htmsim_context_switch(&self->fastSp(), next.fastSp());
#if HTMSIM_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fiber_fake_stack, nullptr,
                                    nullptr);
#endif
#else
    // ASan's swapcontext interceptor covers this backend.
    swapcontext(&self->context_, &next.context_);
#endif
    current_fiber = self;
}

} // namespace htmsim::sim

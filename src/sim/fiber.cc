#include "fiber.hh"

#include <cassert>
#include <cstdint>

namespace htmsim::sim
{

namespace
{
/// The fiber currently executing, or nullptr when the owner runs.
thread_local Fiber* current_fiber = nullptr;
} // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(stack_bytes)
{
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_.data();
    context_.uc_stack.ss_size = stack_.size();
    context_.uc_link = &ownerContext_;
    auto self = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&context_, reinterpret_cast<void (*)()>(&trampoline), 2,
                unsigned(self >> 32), unsigned(self & 0xffffffffu));
}

Fiber::~Fiber()
{
    // Destroying an unfinished fiber abandons its stack without unwinding.
    // The scheduler only destroys fibers after run() completes, so this is
    // reached only when a simulation is torn down after an error.
}

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    auto self = reinterpret_cast<Fiber*>(
        (std::uintptr_t(hi) << 32) | std::uintptr_t(lo));
    self->run();
}

void
Fiber::run()
{
    try {
        body_();
    } catch (...) {
        pendingException_ = std::current_exception();
    }
    finished_ = true;
    // Falling off the trampoline returns to ownerContext_ via uc_link.
}

void
Fiber::resume()
{
    assert(!finished_ && "resume() on a finished fiber");
    assert(current_fiber == nullptr && "resume() from inside a fiber");
    started_ = true;
    current_fiber = this;
    swapcontext(&ownerContext_, &context_);
    current_fiber = nullptr;
    if (pendingException_) {
        auto exception = pendingException_;
        pendingException_ = nullptr;
        std::rethrow_exception(exception);
    }
}

void
Fiber::yieldToOwner()
{
    Fiber* self = current_fiber;
    assert(self && "yieldToOwner() outside any fiber");
    current_fiber = nullptr;
    swapcontext(&self->context_, &self->ownerContext_);
    current_fiber = self;
}

} // namespace htmsim::sim

#include "stack_pool.hh"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace htmsim::sim
{

namespace
{
std::size_t
pageSize()
{
    static const std::size_t size = std::size_t(sysconf(_SC_PAGESIZE));
    return size;
}

std::size_t
roundUpToPage(std::size_t bytes)
{
    const std::size_t page = pageSize();
    return (bytes + page - 1) & ~(page - 1);
}
} // namespace

StackPool&
StackPool::instance()
{
    // Never destroyed: fibers may outlive any particular scheduler and
    // the arena must survive until process exit anyway.
    static StackPool* pool = new StackPool();
    return *pool;
}

namespace
{
// Construct the pool during static initialization. Its one-time heap
// allocations (the slot bookkeeping vectors) are never freed; if the
// first scheduler in the process triggered them lazily, they would
// shift the heap layout for everything allocated afterwards, and
// repeated same-process runs — which the determinism harness compares
// bit-for-bit — would see different addresses in run one than in run
// two. Warming the pool before main() keeps every run's heap baseline
// identical.
[[maybe_unused]] StackPool& warmed = StackPool::instance();
} // namespace

StackPool::StackPool()
    : used_(maxSlots, false), committedBytes_(maxSlots, 0)
{
    // MAP_NORESERVE: the arena is address space, not memory — only
    // committed-and-touched stack pages ever become resident.
    void* arena =
        mmap(nullptr, std::size_t(maxSlots) * slotStrideBytes,
             PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE,
             -1, 0);
    if (arena == MAP_FAILED)
        throw std::runtime_error("StackPool: arena mmap failed");
    arena_ = static_cast<char*>(arena);
}

unsigned
StackPool::reserveRange(unsigned count)
{
    assert(count > 0);
    unsigned run = 0;
    for (unsigned slot = 0; slot < maxSlots; ++slot) {
        run = used_[slot] ? 0 : run + 1;
        if (run == count) {
            const unsigned base = slot + 1 - count;
            for (unsigned i = base; i <= slot; ++i)
                used_[i] = true;
            return base;
        }
    }
    throw std::runtime_error(
        "StackPool: no contiguous range of " + std::to_string(count) +
        " stack slots free (arena capacity " +
        std::to_string(maxSlots) + ")");
}

void
StackPool::releaseRange(unsigned base, unsigned count)
{
    for (unsigned slot = base; slot < base + count; ++slot) {
        assert(used_[slot] && "releasing a slot that was never reserved");
        if (committed(slot))
            decommit(slot);
        used_[slot] = false;
    }
}

StackSpan
StackPool::commit(unsigned slot, std::size_t stack_bytes)
{
    assert(slot < maxSlots && used_[slot]);
    assert(stack_bytes > 0 && stack_bytes <= maxStackBytes);
    const std::size_t bytes = roundUpToPage(stack_bytes);
    if (committedBytes_[slot] != 0) {
        assert(committedBytes_[slot] == bytes &&
               "slot recommitted with a different stack size");
        return StackSpan{slotTop(slot) - bytes, bytes};
    }
    char* base = slotTop(slot) - bytes;
    if (mprotect(base, bytes, PROT_READ | PROT_WRITE) != 0)
        throw std::runtime_error("StackPool: mprotect(RW) failed");
    committedBytes_[slot] = bytes;
    totalCommitted_ += bytes;
    peakCommitted_ = std::max(peakCommitted_, totalCommitted_);
    ++commitCount_;
    return StackSpan{base, bytes};
}

void
StackPool::decommit(unsigned slot)
{
    assert(slot < maxSlots);
    const std::size_t bytes = committedBytes_[slot];
    if (bytes == 0)
        return;
    char* base = slotTop(slot) - bytes;
    // DONTNEED drops the resident pages now; flipping back to
    // PROT_NONE restores the full-slot guard for the next tenant.
    madvise(base, bytes, MADV_DONTNEED);
    mprotect(base, bytes, PROT_NONE);
    committedBytes_[slot] = 0;
    totalCommitted_ -= bytes;
}

} // namespace htmsim::sim

/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Simulation results must be exactly reproducible across hosts, so all
 * randomness in the library flows through this PRNG rather than
 * std::random_device or the (implementation-defined) std:: distributions.
 */

#ifndef HTMSIM_SIM_RANDOM_HH
#define HTMSIM_SIM_RANDOM_HH

#include <cstdint>
#include <cstddef>

namespace htmsim::sim
{

/** SplitMix64 step; used to expand seeds into stream states. */
inline std::uint64_t
splitMix64(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * A small, fast, deterministic PRNG (xoshiro256** core).
 *
 * One instance per simulated thread; streams seeded from a master seed
 * plus the thread id are statistically independent.
 */
class Rng
{
  public:
    /** Construct from a master seed and a stream id (e.g. thread id). */
    explicit Rng(std::uint64_t seed = 1, std::uint64_t stream = 0)
    {
        std::uint64_t sm = seed + 0x632be59bd9b4e019ULL * (stream + 1);
        for (auto& word : state_)
            word = splitMix64(sm);
    }

    /** Next 64 uniformly random bits. */
    std::uint64_t
    nextU64()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Next 32 uniformly random bits. */
    std::uint32_t nextU32() { return std::uint32_t(nextU64() >> 32); }

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    nextRange(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free variant is fine here;
        // the slight bias for huge bounds is irrelevant for workloads.
        return std::uint64_t((__uint128_t(nextU64()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return double(nextU64() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability p. */
    bool nextBool(double p) { return nextDouble() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace htmsim::sim

#endif // HTMSIM_SIM_RANDOM_HH

/**
 * @file
 * Tests for the simcheck subsystem: FuzzScheduler determinism and
 * replay, the event ring and trace invariants, the differential
 * serializability oracle across all four machine presets, and the
 * end-to-end fault-injection self-test (an intentionally broken
 * conflict-detection model must be caught and shrunk to a small
 * replayable schedule).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/fuzz_scheduler.hh"
#include "check/oracle.hh"
#include "check/shrink.hh"
#include "check/trace.hh"
#include "check/workload.hh"
#include "htm/machine.hh"

namespace
{

using namespace htmsim;
using namespace htmsim::check;

Schedule
sortedByThread(Schedule schedule)
{
    std::sort(schedule.begin(), schedule.end(),
              [](const PreemptPoint& a, const PreemptPoint& b) {
                  return a.tid != b.tid ? a.tid < b.tid
                                        : a.index < b.index;
              });
    return schedule;
}

// ------------------------------------------------------------------
// FuzzScheduler
// ------------------------------------------------------------------

TEST(FuzzScheduler, DeterministicPerSeed)
{
    FuzzOptions options;
    options.preemptProb = 0.5;
    FuzzScheduler a(42, options);
    FuzzScheduler b(42, options);
    for (int round = 0; round < 100; ++round) {
        for (unsigned tid = 0; tid < 4; ++tid) {
            EXPECT_EQ(a.preemptDelay(tid, 0), b.preemptDelay(tid, 0));
        }
    }
    EXPECT_EQ(a.fired(), b.fired());
    EXPECT_GT(a.fired().size(), 0u) << "prob 0.5 over 400 points";

    FuzzScheduler c(43, options);
    for (int round = 0; round < 100; ++round) {
        for (unsigned tid = 0; tid < 4; ++tid)
            c.preemptDelay(tid, 0);
    }
    EXPECT_NE(a.fired(), c.fired()) << "different seed, different run";
}

TEST(FuzzScheduler, DecisionsAreInterleavingIndependent)
{
    // A thread's k-th scheduling point gets the same decision no
    // matter how its points interleave with other threads' — the
    // property that makes full-schedule replay exact.
    FuzzOptions options;
    options.preemptProb = 0.3;
    FuzzScheduler roundRobin(7, options);
    for (int round = 0; round < 50; ++round) {
        for (unsigned tid = 0; tid < 3; ++tid)
            roundRobin.preemptDelay(tid, 0);
    }
    FuzzScheduler sequential(7, options);
    for (unsigned tid = 0; tid < 3; ++tid) {
        for (int round = 0; round < 50; ++round)
            sequential.preemptDelay(tid, 0);
    }
    EXPECT_EQ(sortedByThread(roundRobin.fired()),
              sortedByThread(sequential.fired()));
}

TEST(FuzzScheduler, DelaysStayInRange)
{
    FuzzOptions options;
    options.preemptProb = 1.0;
    options.minDelay = 10;
    options.maxDelay = 20;
    FuzzScheduler fuzz(5, options);
    for (int i = 0; i < 200; ++i) {
        const sim::Cycles delay = fuzz.preemptDelay(0, 0);
        EXPECT_GE(delay, 10u);
        EXPECT_LE(delay, 20u);
    }
    EXPECT_EQ(fuzz.fired().size(), 200u);
    EXPECT_EQ(fuzz.pointsVisited(), 200u);
}

TEST(FuzzScheduler, ReplayFiresExactlyTheSchedule)
{
    const Schedule schedule = {{0, 2, 100}, {1, 0, 7}, {0, 5, 31}};
    FuzzScheduler replay(schedule);
    std::vector<sim::Cycles> tid0;
    for (std::uint64_t i = 0; i < 8; ++i)
        tid0.push_back(replay.preemptDelay(0, 0));
    EXPECT_EQ(tid0,
              (std::vector<sim::Cycles>{0, 0, 100, 0, 0, 31, 0, 0}));
    EXPECT_EQ(replay.preemptDelay(1, 0), 7u);
    EXPECT_EQ(replay.preemptDelay(1, 0), 0u);
    EXPECT_EQ(replay.fired(), sortedByThread(schedule));
}

TEST(FuzzScheduler, ScheduleFormatRoundTrip)
{
    const Schedule schedule = {{3, 1234567, 4000}, {0, 0, 1}};
    EXPECT_EQ(parseSchedule(formatSchedule(schedule)), schedule);
    EXPECT_TRUE(parseSchedule("").empty());
    EXPECT_EQ(formatSchedule(schedule), "3:1234567:4000,0:0:1");
    EXPECT_THROW(parseSchedule("1:2"), std::invalid_argument);
    EXPECT_THROW(parseSchedule("nonsense"), std::invalid_argument);
    EXPECT_THROW(parseSchedule("1:2:3;4:5:6"), std::invalid_argument);
}

// ------------------------------------------------------------------
// Event ring + trace invariants
// ------------------------------------------------------------------

htm::TxEvent
event(htm::TxEventKind kind, unsigned tid, sim::Cycles cycles,
      htm::AbortCause cause = htm::AbortCause::none)
{
    return {kind, cause, std::uint16_t(tid), htm::unknownTxSite,
            cycles, 0};
}

TEST(EventRing, KeepsEverythingBelowCapacity)
{
    EventRing ring(8);
    for (unsigned i = 0; i < 5; ++i)
        ring.onEvent(event(htm::TxEventKind::begin, 0, i));
    EXPECT_EQ(ring.dropped(), 0u);
    ASSERT_EQ(ring.size(), 5u);
    EXPECT_EQ(ring.events()[0].cycles, 0u);
    EXPECT_EQ(ring.events()[4].cycles, 4u);
}

TEST(EventRing, WrapKeepsMostRecent)
{
    EventRing ring(4);
    for (unsigned i = 0; i < 10; ++i)
        ring.onEvent(event(htm::TxEventKind::begin, 0, i));
    EXPECT_EQ(ring.dropped(), 6u);
    const std::vector<htm::TxEvent> events = ring.events();
    ASSERT_EQ(events.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].cycles, 6u + i) << "oldest-first order";

    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.dropped(), 0u);
}

using K = htm::TxEventKind;

TEST(TraceInvariants, AcceptsWellFormedHistories)
{
    const std::vector<htm::TxEvent> events = {
        event(K::begin, 0, 10),
        event(K::begin, 1, 12),
        event(K::abort, 1, 20, htm::AbortCause::dataConflict),
        event(K::commit, 0, 25),
        event(K::lockAcquired, 1, 30),
        event(K::fallbackCommit, 1, 40),
        event(K::lockReleased, 1, 45),
        event(K::begin, 0, 50),
        event(K::commit, 0, 60),
    };
    EXPECT_EQ(checkTraceInvariants(events, 2), "");
}

TEST(TraceInvariants, RejectsBadHistories)
{
    // Nested begin.
    EXPECT_NE(checkTraceInvariants({event(K::begin, 0, 1),
                                    event(K::begin, 0, 2)},
                                   1),
              "");
    // Commit without a begin.
    EXPECT_NE(checkTraceInvariants({event(K::commit, 0, 1)}, 1), "");
    // Abort without a begin.
    EXPECT_NE(checkTraceInvariants({event(K::abort, 0, 1)}, 1), "");
    // Transactional commit while the fallback lock is held — the
    // single-lock subscription protocol violation the oracle hunts.
    const std::string held = checkTraceInvariants(
        {event(K::begin, 1, 1), event(K::lockAcquired, 0, 2),
         event(K::commit, 1, 3)},
        2);
    EXPECT_NE(held.find("fallback lock"), std::string::npos) << held;
    // Double acquisition.
    EXPECT_NE(checkTraceInvariants({event(K::lockAcquired, 0, 1),
                                    event(K::lockAcquired, 1, 2)},
                                   2),
              "");
    // Release by a non-holder.
    EXPECT_NE(checkTraceInvariants({event(K::lockAcquired, 0, 1),
                                    event(K::lockReleased, 1, 2)},
                                   2),
              "");
    // Fallback commit without the lock.
    EXPECT_NE(checkTraceInvariants({event(K::fallbackCommit, 0, 1)},
                                   1),
              "");
    // Attempt left open at end of run.
    EXPECT_NE(checkTraceInvariants({event(K::begin, 0, 1)}, 1), "");
    // Lock left held at end of run.
    EXPECT_NE(checkTraceInvariants({event(K::lockAcquired, 0, 1)}, 1),
              "");
    // Per-thread time running backwards.
    EXPECT_NE(checkTraceInvariants({event(K::begin, 0, 10),
                                    event(K::commit, 0, 5)},
                                   1),
              "");
}

// ------------------------------------------------------------------
// Differential oracle
// ------------------------------------------------------------------

CheckOptions
quickOptions()
{
    CheckOptions options;
    options.threads = 4;
    options.opsPerThread = 16;
    return options;
}

TEST(Oracle, CleanSweepOverAllMachinesAndWorkloads)
{
    const CheckOptions options = quickOptions();
    for (const htm::MachineConfig& machine :
         htm::MachineConfig::all()) {
        for (const WorkloadFactory& workload : allWorkloads()) {
            for (std::uint64_t seed = 1; seed <= 3; ++seed) {
                const RunOutcome outcome = runDifferential(
                    workload, machine, seed, options);
                EXPECT_TRUE(outcome.ok)
                    << workload.name << " on " << machine.name
                    << " seed " << seed << ": " << outcome.reason;
                EXPECT_EQ(outcome.commits,
                          std::uint64_t(options.threads) *
                              options.opsPerThread);
            }
        }
    }
}

// Reduced oracle verdict shipped out of a forked run: verdict flag,
// concurrent-phase commits, and the fired preemption set (sorted by
// thread so the comparison ignores global firing order).
struct ReproResult
{
    bool ok = false;
    std::uint64_t commits = 0;
    Schedule fired;
};

// Simulated conflict behavior hashes host heap addresses, and run 1
// warms the allocator freelists run 2 then inherits — so two
// back-to-back in-process runs compare two *different* heap layouts
// and their fired sets can drift. Fork each run from the same parent
// image instead (the A/B discipline of test_hazard.cc /
// test_hybrid.cc) and ship the verdict back over a pipe. Both
// children must be launched before either result is collected:
// collecting allocates in the parent, which would perturb the image
// the second child inherits.
struct ForkedOracleRun
{
    int fd = -1;
    pid_t pid = -1;
};

ForkedOracleRun
launchDifferentialForked(const WorkloadFactory& workload,
                         const htm::MachineConfig& machine,
                         std::uint64_t seed)
{
    ForkedOracleRun run;
    int fds[2];
    if (::pipe(fds) != 0)
        return run;
    const pid_t child = ::fork();
    if (child < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return run;
    }
    if (child == 0) {
        ::close(fds[0]);
        const RunOutcome outcome =
            runDifferential(workload, machine, seed, quickOptions());
        const Schedule sorted = sortedByThread(outcome.fired);
        const std::uint64_t header[3] = {outcome.ok ? 1u : 0u,
                                         outcome.commits,
                                         sorted.size()};
        const auto writeAll = [&](const void* data,
                                  std::size_t bytes) {
            const char* cursor = static_cast<const char*>(data);
            while (bytes > 0) {
                const ssize_t written =
                    ::write(fds[1], cursor, bytes);
                if (written <= 0)
                    ::_exit(2);
                cursor += written;
                bytes -= std::size_t(written);
            }
        };
        writeAll(header, sizeof header);
        writeAll(sorted.data(),
                 sorted.size() * sizeof(PreemptPoint));
        ::_exit(0);
    }
    ::close(fds[1]);
    run.fd = fds[0];
    run.pid = child;
    return run;
}

bool
collectDifferentialForked(ForkedOracleRun& run, ReproResult& result)
{
    if (run.fd < 0)
        return false;
    const auto readAll = [&](void* data, std::size_t bytes) {
        char* cursor = static_cast<char*>(data);
        while (bytes > 0) {
            const ssize_t got = ::read(run.fd, cursor, bytes);
            if (got <= 0)
                return false;
            cursor += got;
            bytes -= std::size_t(got);
        }
        return true;
    };
    std::uint64_t header[3] = {0, 0, 0};
    bool ok = readAll(header, sizeof header);
    if (ok) {
        result.ok = header[0] != 0;
        result.commits = header[1];
        result.fired.assign(std::size_t(header[2]), PreemptPoint{});
        ok = readAll(result.fired.data(),
                     result.fired.size() * sizeof(PreemptPoint));
    }
    ::close(run.fd);
    run.fd = -1;
    int status = 0;
    ::waitpid(run.pid, &status, 0);
    return ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

TEST(Oracle, RunsAreReproducible)
{
    const WorkloadFactory* workload = findWorkload("hashtable");
    ASSERT_NE(workload, nullptr);
    const htm::MachineConfig machine = htm::MachineConfig::intelCore();
    ForkedOracleRun a = launchDifferentialForked(*workload, machine, 9);
    ForkedOracleRun b = launchDifferentialForked(*workload, machine, 9);
    ReproResult first;
    ReproResult second;
    ASSERT_TRUE(collectDifferentialForked(a, first));
    ASSERT_TRUE(collectDifferentialForked(b, second));
    EXPECT_TRUE(first.ok);
    // Per-thread fuzz streams are interleaving-independent, so from
    // identical heap images the *set* of fired points is stable.
    EXPECT_EQ(first.fired, second.fired);
    EXPECT_EQ(first.commits, second.commits);
    EXPECT_GT(first.fired.size(), 0u);
}

TEST(Oracle, ReplayOfFiredScheduleIsExact)
{
    const WorkloadFactory* workload = findWorkload("rbtree");
    ASSERT_NE(workload, nullptr);
    const htm::MachineConfig machine = htm::MachineConfig::blueGeneQ();
    const RunOutcome fuzzed =
        runDifferential(*workload, machine, 5, quickOptions());
    ASSERT_TRUE(fuzzed.ok) << fuzzed.reason;

    const RunOutcome replayed = runDifferential(
        *workload, machine, 5, quickOptions(), &fuzzed.fired);
    EXPECT_TRUE(replayed.ok) << replayed.reason;
    EXPECT_EQ(sortedByThread(replayed.fired),
              sortedByThread(fuzzed.fired))
        << "full-schedule replay must fire the same points";
    EXPECT_EQ(replayed.commits, fuzzed.commits);
}

TEST(Oracle, UnknownWorkloadLookupFails)
{
    EXPECT_EQ(findWorkload("no-such-workload"), nullptr);
    EXPECT_GE(allWorkloads().size(), 8u);
}

// ------------------------------------------------------------------
// Fault-injection self-test: a broken conflict-detection model must
// be caught by the oracle and shrink to a small replayable schedule.
// ------------------------------------------------------------------

TEST(FaultInjection, MissedReaderConflictIsCaughtAndShrunk)
{
    CheckOptions options = quickOptions();
    options.fault = htm::CheckFault::missReaderConflict;

    // Sweep until the oracle trips (a handful of runs at most: lost
    // reader conflicts corrupt these workloads almost immediately).
    const WorkloadFactory* failingWorkload = nullptr;
    const htm::MachineConfig* failingMachine = nullptr;
    std::uint64_t failingSeed = 0;
    RunOutcome failure;
    for (std::uint64_t seed = 1; seed <= 5 && !failingWorkload;
         ++seed) {
        for (const htm::MachineConfig& machine :
             htm::MachineConfig::all()) {
            for (const WorkloadFactory& workload : allWorkloads()) {
                const RunOutcome outcome = runDifferential(
                    workload, machine, seed, options);
                if (!outcome.ok) {
                    failingWorkload = &workload;
                    failingMachine = &machine;
                    failingSeed = seed;
                    failure = outcome;
                    break;
                }
            }
            if (failingWorkload != nullptr)
                break;
        }
    }
    ASSERT_NE(failingWorkload, nullptr)
        << "oracle failed to catch the injected bug";

    // Shrink to a locally minimal schedule.
    const auto refails = [&](const Schedule& schedule) {
        return !runDifferential(*failingWorkload, *failingMachine,
                                failingSeed, options, &schedule)
                    .ok;
    };
    const ShrinkResult shrunk = shrinkSchedule(refails, failure.fired);
    EXPECT_LE(shrunk.schedule.size(), 10u)
        << "must shrink to a small replayable schedule, got "
        << formatSchedule(shrunk.schedule);

    // The artifact replays: with the fault it still fails...
    const RunOutcome replayed =
        runDifferential(*failingWorkload, *failingMachine,
                        failingSeed, options, &shrunk.schedule);
    EXPECT_FALSE(replayed.ok);
    // ... and the same schedule on the sound model passes, so the
    // failure is the fault's, not the oracle's.
    CheckOptions sound = options;
    sound.fault = htm::CheckFault::none;
    const RunOutcome onSound =
        runDifferential(*failingWorkload, *failingMachine,
                        failingSeed, sound, &shrunk.schedule);
    EXPECT_TRUE(onSound.ok) << onSound.reason;
}

// ------------------------------------------------------------------
// Shrinker unit tests (pure, no simulator)
// ------------------------------------------------------------------

TEST(Shrink, FindsMinimalSubset)
{
    // Failure iff the schedule contains both marker points.
    const PreemptPoint needle1{1, 5, 100};
    const PreemptPoint needle2{2, 9, 200};
    Schedule haystack;
    for (std::uint64_t i = 0; i < 30; ++i)
        haystack.push_back({0, i, 50});
    haystack.insert(haystack.begin() + 7, needle1);
    haystack.insert(haystack.begin() + 20, needle2);

    unsigned calls = 0;
    const auto fails = [&](const Schedule& schedule) {
        ++calls;
        const auto has = [&](const PreemptPoint& p) {
            return std::find(schedule.begin(), schedule.end(), p) !=
                   schedule.end();
        };
        return has(needle1) && has(needle2);
    };
    const ShrinkResult result = shrinkSchedule(fails, haystack);
    ASSERT_EQ(result.schedule.size(), 2u);
    EXPECT_EQ(result.schedule[0], needle1);
    EXPECT_EQ(result.schedule[1], needle2);
    EXPECT_EQ(result.evaluations, calls);
}

TEST(Shrink, EmptyScheduleWhenFailureNeedsNoPreemption)
{
    const auto alwaysFails = [](const Schedule&) { return true; };
    Schedule schedule = {{0, 1, 10}, {1, 2, 20}};
    const ShrinkResult result =
        shrinkSchedule(alwaysFails, schedule);
    EXPECT_TRUE(result.schedule.empty());
    EXPECT_EQ(result.evaluations, 1u);
}

TEST(Shrink, RespectsEvaluationBudget)
{
    Schedule schedule;
    for (std::uint64_t i = 0; i < 64; ++i)
        schedule.push_back({0, i, 1});
    unsigned calls = 0;
    // Fails only with the full set: nothing can be removed.
    const auto fails = [&](const Schedule& s) {
        ++calls;
        return s.size() == 64;
    };
    const ShrinkResult result = shrinkSchedule(fails, schedule, 10);
    EXPECT_EQ(result.schedule.size(), 64u);
    EXPECT_LE(result.evaluations, 10u);
    EXPECT_EQ(calls, result.evaluations);
}

} // namespace

/**
 * @file
 * Server subsystem tests: Zipfian generator determinism and skew, the
 * allocation-free latency histogram, the 256-fiber scheduler stress
 * regression (pooled-stack budget + bit-identical reruns), and the
 * KV/OLTP server end-to-end smoke with invariants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "htm/runtime.hh"
#include "server/kv_store.hh"
#include "server/latency.hh"
#include "server/server.hh"
#include "server/traffic.hh"
#include "server/zipf.hh"
#include "sim/scheduler.hh"
#include "sim/stack_pool.hh"

namespace
{

using namespace htmsim;

// --- Zipfian generator ----------------------------------------------

TEST(Zipf, SameSeedSameSequence)
{
    const server::ZipfianGenerator zipf(1000, 0.9);
    sim::Rng a(42, 7);
    sim::Rng b(42, 7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(zipf.next(a), zipf.next(b)) << "draw " << i;
}

TEST(Zipf, DifferentStreamsDiverge)
{
    const server::ZipfianGenerator zipf(1000, 0.9);
    sim::Rng a(42, 7);
    sim::Rng b(42, 8);
    unsigned differing = 0;
    for (int i = 0; i < 1000; ++i)
        differing += zipf.next(a) != zipf.next(b) ? 1 : 0;
    EXPECT_GT(differing, 100u);
}

TEST(Zipf, RanksStayInRange)
{
    const server::ZipfianGenerator zipf(100, 0.99);
    sim::Rng rng(3, 1);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(zipf.next(rng), 100u);
}

/** Chi-squared goodness-of-fit of the empirical rank distribution
 *  against the exact Zipfian pmf for the configured theta. Gray's
 *  closed-form inverse CDF is an approximation, so at this sample
 *  size the statistic carries a deterministic bias of a few hundred
 *  on top of the ~99 an exact sampler would score — but a theta off
 *  by just 0.05 scores over 1100, so 700 still separates correct
 *  from wrong skew by a wide margin. */
TEST(Zipf, SkewMatchesTheta)
{
    constexpr std::uint64_t items = 100;
    constexpr double theta = 0.9;
    constexpr std::uint64_t draws = 200000;
    const server::ZipfianGenerator zipf(items, theta);
    sim::Rng rng(11, 1);
    std::vector<std::uint64_t> counts(items, 0);
    for (std::uint64_t i = 0; i < draws; ++i)
        ++counts[zipf.next(rng)];

    double zetan = 0.0;
    for (std::uint64_t i = 1; i <= items; ++i)
        zetan += 1.0 / std::pow(double(i), theta);
    double chi2 = 0.0;
    for (std::uint64_t rank = 0; rank < items; ++rank) {
        const double expected =
            double(draws) / (std::pow(double(rank + 1), theta) * zetan);
        const double diff = double(counts[rank]) - expected;
        chi2 += diff * diff / expected;
    }
    EXPECT_LT(chi2, 700.0);
    // Sanity on the shape itself: the head dominates the tail.
    EXPECT_GT(counts[0], counts[9] * 2);
    EXPECT_GT(counts[0], counts[99] * 20);
}

TEST(Zipf, ScrambleSpreadsHotRanks)
{
    const server::ZipfianGenerator zipf(1024, 0.99);
    // Adjacent hot ranks must land far apart in key space.
    const std::uint64_t k0 = server::ZipfianGenerator::scramble(0) % 1024;
    const std::uint64_t k1 = server::ZipfianGenerator::scramble(1) % 1024;
    EXPECT_NE(k0, k1);
    EXPECT_GT(std::max(k0, k1) - std::min(k0, k1), 1u);
    (void)zipf;
}

// --- Latency histogram ----------------------------------------------

TEST(LatencyHistogram, ExactBelowSubBucketRange)
{
    server::LatencyHistogram hist;
    for (std::uint64_t v = 0; v < 32; ++v)
        hist.record(v);
    EXPECT_EQ(hist.count(), 32u);
    EXPECT_EQ(hist.max(), 31u);
    EXPECT_EQ(hist.percentile(1.0), 31u);
    // Small values are exact: the median of 0..31 is 15/16.
    EXPECT_EQ(hist.percentile(0.5), 15u);
}

TEST(LatencyHistogram, BucketBoundsAreConsistent)
{
    for (std::uint64_t v :
         {0ull, 1ull, 31ull, 32ull, 33ull, 1000ull, 4096ull,
          123456789ull, ~0ull >> 1, ~0ull}) {
        const unsigned bucket =
            server::LatencyHistogram::bucketIndex(v);
        ASSERT_LT(bucket, server::LatencyHistogram::kBuckets);
        EXPECT_GE(server::LatencyHistogram::bucketUpperBound(bucket),
                  v);
        if (bucket + 1 < server::LatencyHistogram::kBuckets) {
            // v must not also fit in the previous bucket's range.
            EXPECT_GT(
                server::LatencyHistogram::bucketIndex(
                    server::LatencyHistogram::bucketUpperBound(bucket) +
                    1),
                bucket);
        }
    }
}

TEST(LatencyHistogram, PercentileIsConservativeAndTight)
{
    server::LatencyHistogram hist;
    for (std::uint64_t i = 0; i < 1000; ++i)
        hist.record(100);
    hist.record(100000);
    // p50 covers the bulk; p999+ must see the outlier.
    EXPECT_GE(hist.percentile(0.5), 100u);
    EXPECT_LE(hist.percentile(0.5), 103u); // <= ~3% quantization
    EXPECT_GE(hist.percentile(0.9995), 100000u);
    EXPECT_EQ(hist.percentile(1.0), 100000u);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording)
{
    server::LatencyHistogram a;
    server::LatencyHistogram b;
    server::LatencyHistogram combined;
    sim::Rng rng(5, 1);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t value = rng.nextRange(1 << 20);
        if (i % 2 == 0)
            a.record(value);
        else
            b.record(value);
        combined.record(value);
    }
    a += b;
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.max(), combined.max());
    for (double p : {0.5, 0.9, 0.99, 0.999, 1.0})
        EXPECT_EQ(a.percentile(p), combined.percentile(p)) << p;
}

// --- Scheduler stress: 256 fibers ------------------------------------

std::uint64_t
residentBytes()
{
    std::FILE* statm = std::fopen("/proc/self/statm", "r");
    if (statm == nullptr)
        return 0;
    unsigned long long size = 0;
    unsigned long long resident = 0;
    const int fields =
        std::fscanf(statm, "%llu %llu", &size, &resident);
    std::fclose(statm);
    return fields == 2 ? resident * 4096ull : 0;
}

/** One full 256-fiber ping-pong run; returns every fiber's finish
 *  time (pure virtual-time integer arithmetic: the scheduler itself
 *  must be bit-identical across same-process reruns). */
std::vector<std::uint64_t>
pingPongRun(unsigned fibers, unsigned rounds)
{
    sim::Scheduler scheduler(7);
    scheduler.setStackBytes(64 * 1024);
    std::vector<std::uint64_t> finish(fibers, 0);
    for (unsigned f = 0; f < fibers; ++f) {
        scheduler.spawn([&finish, f, rounds](sim::ThreadContext& ctx) {
            for (unsigned round = 0; round < rounds; ++round) {
                // Deterministic, id-dependent advance so fibers
                // interleave rather than march in lockstep.
                ctx.advance(1 + (f + round) % 7);
                ctx.sync();
            }
            finish[f] = ctx.now();
        });
    }
    scheduler.run();
    return finish;
}

TEST(SchedulerStress, RunsHundredsOfFibersWithinStackBudget)
{
    constexpr unsigned kFibers = 256;
    constexpr unsigned kRounds = 200;
    sim::StackPool& pool = sim::StackPool::instance();
    const std::uint64_t committed_before = pool.committedStackBytes();
    const std::uint64_t peak_before = pool.peakCommittedBytes();
    const std::uint64_t rss_before = residentBytes();

    const std::vector<std::uint64_t> first =
        pingPongRun(kFibers, kRounds);

    // All slots handed back: the pool's committed accounting returns
    // to its pre-run level once the scheduler is destroyed.
    EXPECT_EQ(pool.committedStackBytes(), committed_before);

    // Peak residency stayed within the pooled budget: 256 fibers x
    // 64 KiB stacks, not 256 x the 1 MiB slot stride. The pool's peak
    // is a process-lifetime high-water mark, so bound it by whatever
    // was already peaked plus this run's worst case.
    const std::uint64_t budget = std::uint64_t(kFibers) * 64 * 1024;
    EXPECT_LE(pool.peakCommittedBytes(),
              std::max<std::uint64_t>(peak_before,
                                      committed_before + budget));
    const std::uint64_t rss_after = residentBytes();
    if (rss_before != 0 && rss_after > rss_before) {
        EXPECT_LT(rss_after - rss_before, budget + 8 * 1024 * 1024)
            << "resident set grew past the pooled stack budget";
    }

    // Every fiber made progress through all its rounds.
    for (unsigned f = 0; f < kFibers; ++f)
        EXPECT_GE(first[f], kRounds) << "fiber " << f;

    // Bit-identical rerun: scheduling is pure integer virtual-time
    // arithmetic, so a same-process rerun must match exactly.
    const std::vector<std::uint64_t> second =
        pingPongRun(kFibers, kRounds);
    EXPECT_EQ(first, second);
}

TEST(SchedulerStress, EagerPolicyMatchesPooledExactly)
{
    const std::vector<std::uint64_t> pooled = pingPongRun(64, 50);
    sim::Scheduler::setDefaultStackPolicy(sim::StackPolicy::eager);
    const std::vector<std::uint64_t> eager = pingPongRun(64, 50);
    sim::Scheduler::setDefaultStackPolicy(sim::StackPolicy::pooled);
    EXPECT_EQ(pooled, eager);
}

// --- Server end-to-end -----------------------------------------------

server::ServerConfig
smallServerConfig(htm::BackendKind backend, unsigned clients)
{
    server::ServerConfig config;
    config.runtime =
        htm::RuntimeConfig(htm::MachineConfig::intelCore());
    config.runtime.backend = backend;
    config.clients = clients;
    config.traffic.numKeys = 256;
    config.traffic.numAccounts = 32;
    config.traffic.opsPerClient = 8;
    config.traffic.meanInterarrivalCycles = 2000;
    config.seed = 3;
    return config;
}

TEST(Server, CompletesEveryRequestAndHoldsInvariants)
{
    for (const htm::BackendKind backend :
         {htm::BackendKind::htm, htm::BackendKind::globalLock,
          htm::BackendKind::idealHtm}) {
        const server::ServerConfig config =
            smallServerConfig(backend, 64);
        const server::ServerResult result =
            server::runServer(config);
        EXPECT_EQ(result.committedOps, 64u * 8u);
        EXPECT_TRUE(result.invariantsOk);
        EXPECT_GT(result.horizonCycles, 0u);
        // The per-section latency stats the runtime now keeps must
        // agree with the benchmark's own histogram.
        EXPECT_EQ(result.stats.sections, result.committedOps);
        EXPECT_GE(result.stats.sectionCyclesMax,
                  result.latency.max());
        std::uint64_t per_op_total = 0;
        for (const auto& hist : result.perOp)
            per_op_total += hist.count();
        EXPECT_EQ(per_op_total, result.committedOps);
    }
}

TEST(Server, RunsAtFullOversubscription)
{
    server::ServerConfig config =
        smallServerConfig(htm::BackendKind::htm, htm::kMaxTxThreads);
    config.traffic.opsPerClient = 4;
    const server::ServerResult result = server::runServer(config);
    EXPECT_EQ(result.committedOps,
              std::uint64_t(htm::kMaxTxThreads) * 4);
    EXPECT_TRUE(result.invariantsOk);
}

TEST(Server, TrafficIsInterleavingIndependent)
{
    // Two generators with the same (seed, client) produce the same
    // request stream regardless of what other streams consumed.
    const server::TrafficConfig traffic;
    const server::ZipfianGenerator keys(traffic.numKeys,
                                        traffic.zipfTheta);
    const server::ZipfianGenerator accounts(traffic.numAccounts,
                                            traffic.zipfTheta);
    server::TrafficGen a(traffic, keys, accounts, 9, 5);
    server::TrafficGen interloper(traffic, keys, accounts, 9, 6);
    server::TrafficGen b(traffic, keys, accounts, 9, 5);
    for (int i = 0; i < 200; ++i) {
        const server::Request ra = a.next();
        (void)interloper.next();
        const server::Request rb = b.next();
        ASSERT_EQ(int(ra.kind), int(rb.kind));
        ASSERT_EQ(ra.key, rb.key);
        ASSERT_EQ(ra.value, rb.value);
        ASSERT_EQ(ra.arrival, rb.arrival);
    }
}

TEST(KvStore, TransfersConserveBalance)
{
    server::KvStore store(64, 16, 500);
    htm::DirectContext direct;
    sim::Rng rng(17, 1);
    for (int i = 0; i < 500; ++i)
        store.transfer(direct, rng.nextRange(16), 1 + i % 4,
                       rng.nextRange(50));
    EXPECT_TRUE(store.balancesConserved());
    EXPECT_TRUE(store.structuresAgree());
}

TEST(KvStore, PutKeepsTableAndIndexInAgreement)
{
    server::KvStore store(128, 8, 100);
    htm::DirectContext direct;
    sim::Rng rng(23, 1);
    for (int i = 0; i < 400; ++i)
        store.put(direct, rng.nextRange(128), rng.nextU64());
    EXPECT_TRUE(store.structuresAgree());
    // Scans see exactly the ordered key range.
    const std::uint64_t folded_a = store.scan(direct, 10, 5);
    const std::uint64_t folded_b = store.scan(direct, 10, 5);
    EXPECT_EQ(folded_a, folded_b);
}

} // namespace

/**
 * @file
 * tmsync subsystem tests: the elidable mutex / shared-mutex /
 * condition-variable primitives, the guard executors, the adversarial
 * scenarios under the liveness oracle, and the zero-perturbation
 * contract (constructing tmsync objects must not move a single cycle
 * of an existing workload — pinned with the same forked A/B technique
 * as test_prof.cc).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "check/liveness.hh"
#include "htm/machine.hh"
#include "htm/runtime.hh"
#include "htm/site.hh"
#include "htm/tx.hh"
#include "server/server.hh"
#include "sim/sim.hh"
#include "tmsync/atomic_condition_variable.hh"
#include "tmsync/atomic_mutex.hh"
#include "tmsync/atomic_shared_mutex.hh"
#include "tmsync/guard.hh"
#include "tmsync/scenarios.hh"

namespace
{

using namespace htmsim;
using namespace htmsim::htm;
using namespace htmsim::tmsync;

RuntimeConfig
quietConfig(MachineConfig machine)
{
    machine.cacheFetchAbortProb = 0.0;
    machine.prefetchConflictProb = 0.0;
    return RuntimeConfig(std::move(machine));
}

const TxSiteId kTestSite = txSite("test.tmsync.section");

// ------------------------------------------------------------------
// atomic_mutex + transactional_lock_guard
// ------------------------------------------------------------------

TEST(TmsyncMutex, UncontendedSectionsElideOnElisionMachines)
{
    for (const MachineConfig& machine :
         {MachineConfig::intelCore(), MachineConfig::zEC12(),
          MachineConfig::power8()}) {
        Runtime runtime(quietConfig(machine), 1);
        atomic_mutex mutex;
        std::uint64_t counter = 0;
        constexpr int sections = 10;

        sim::runThreads(1, 1, [&](sim::ThreadContext& ctx) {
            for (int i = 0; i < sections; ++i) {
                transactional_lock_guard guard(
                    runtime, ctx, mutex, kTestSite, SyncMode::elided,
                    [&](Tx& tx) {
                        tx.store(&counter, tx.load(&counter) + 1);
                    });
                EXPECT_TRUE(guard.elided()) << machine.name;
            }
        });

        EXPECT_EQ(counter, std::uint64_t(sections)) << machine.name;
        EXPECT_EQ(runtime.stats().htmCommits,
                  std::uint64_t(sections))
            << machine.name;
        EXPECT_EQ(runtime.stats().irrevocableCommits, 0u)
            << machine.name << ": elided sections never take the lock";
        EXPECT_FALSE(mutex.is_locked());
    }
}

TEST(TmsyncMutex, ElidedModeDegradesToTatasOnBlueGeneQ)
{
    Runtime runtime(quietConfig(MachineConfig::blueGeneQ()), 1);
    atomic_mutex mutex;
    std::uint64_t counter = 0;
    constexpr int sections = 10;

    sim::runThreads(1, 1, [&](sim::ThreadContext& ctx) {
        for (int i = 0; i < sections; ++i) {
            transactional_lock_guard guard(
                runtime, ctx, mutex, kTestSite, SyncMode::elided,
                [&](Tx& tx) {
                    tx.store(&counter, tx.load(&counter) + 1);
                });
            EXPECT_FALSE(guard.elided())
                << "no elision support on Blue Gene/Q";
        }
    });

    EXPECT_EQ(counter, std::uint64_t(sections));
    EXPECT_EQ(runtime.stats().htmCommits, 0u);
    EXPECT_EQ(runtime.stats().irrevocableCommits,
              std::uint64_t(sections));
    EXPECT_FALSE(mutex.is_locked());
}

TEST(TmsyncMutex, TatasAndGlobalLockModesNeverSpeculate)
{
    for (const SyncMode mode :
         {SyncMode::tatas, SyncMode::globalLock}) {
        Runtime runtime(quietConfig(MachineConfig::intelCore()), 1);
        atomic_mutex mutex;
        std::uint64_t counter = 0;
        constexpr int sections = 6;

        sim::runThreads(1, 1, [&](sim::ThreadContext& ctx) {
            for (int i = 0; i < sections; ++i) {
                transactional_lock_guard guard(
                    runtime, ctx, mutex, kTestSite, mode,
                    [&](Tx& tx) {
                        tx.store(&counter, tx.load(&counter) + 1);
                    });
                EXPECT_FALSE(guard.elided());
            }
        });

        EXPECT_EQ(counter, std::uint64_t(sections))
            << syncModeName(mode);
        EXPECT_EQ(runtime.stats().htmCommits, 0u)
            << syncModeName(mode);
        EXPECT_FALSE(mutex.is_locked());
    }
}

TEST(TmsyncMutex, ContendedCountingConservesAcrossAllModes)
{
    constexpr unsigned threads = 4;
    constexpr int sectionsPerThread = 12;
    for (const MachineConfig& machine : MachineConfig::all()) {
        for (const SyncMode mode :
             {SyncMode::elided, SyncMode::tatas,
              SyncMode::globalLock}) {
            Runtime runtime(quietConfig(machine), threads);
            atomic_mutex mutex;
            std::uint64_t counter = 0;

            sim::runThreads(
                threads, 7, [&](sim::ThreadContext& ctx) {
                    for (int i = 0; i < sectionsPerThread; ++i) {
                        transactional_lock_guard guard(
                            runtime, ctx, mutex, kTestSite, mode,
                            [&](Tx& tx) {
                                tx.work(15);
                                tx.store(&counter,
                                         tx.load(&counter) + 1);
                            });
                        (void)guard;
                    }
                });

            EXPECT_EQ(counter,
                      std::uint64_t(threads * sectionsPerThread))
                << machine.name << " / " << syncModeName(mode);
            EXPECT_FALSE(mutex.is_locked());
        }
    }
}

TEST(TmsyncGuard, NestedGuardedSectionsAreRejected)
{
    // Nesting is documented-and-rejected (guard.hh): the inner guard
    // must throw std::logic_error at entry. Pinned via the fallback
    // (tatas) outer path, where the outer section is irrevocable and
    // a foreign exception propagates cleanly.
    Runtime runtime(quietConfig(MachineConfig::intelCore()), 1);
    atomic_mutex outer;
    atomic_mutex inner;

    sim::runThreads(1, 1, [&](sim::ThreadContext& ctx) {
        EXPECT_THROW(
            {
                transactional_lock_guard guard(
                    runtime, ctx, outer, kTestSite, SyncMode::tatas,
                    [&](Tx&) {
                        transactional_lock_guard nested(
                            runtime, ctx, inner, kTestSite,
                            SyncMode::tatas, [](Tx&) {});
                    });
            },
            std::logic_error);
    });
}

// ------------------------------------------------------------------
// atomic_shared_mutex + transactional_shared_lock_guard
// ------------------------------------------------------------------

TEST(TmsyncSharedMutex, ReadersAndWritersConserve)
{
    constexpr unsigned threads = 4;
    constexpr int opsPerThread = 16;
    for (const SyncMode mode :
         {SyncMode::elided, SyncMode::tatas, SyncMode::globalLock}) {
        Runtime runtime(quietConfig(MachineConfig::intelCore()),
                        threads);
        atomic_shared_mutex rw;
        std::uint64_t generation = 0;
        std::uint64_t folds = 0;

        sim::runThreads(threads, 9, [&](sim::ThreadContext& ctx) {
            for (int i = 0; i < opsPerThread; ++i) {
                // Threads 0..2 read, thread 3 writes.
                if (ctx.id() != 3) {
                    transactional_shared_lock_guard guard(
                        runtime, ctx, rw, kTestSite, mode,
                        [&](Tx& tx) { tx.load(&generation); });
                    (void)guard;
                    ++folds;
                } else {
                    transactional_lock_guard guard(
                        runtime, ctx, rw, kTestSite, mode,
                        [&](Tx& tx) {
                            tx.work(10);
                            tx.store(&generation,
                                     tx.load(&generation) + 1);
                        });
                    (void)guard;
                }
            }
        });

        EXPECT_EQ(generation, std::uint64_t(opsPerThread))
            << syncModeName(mode);
        EXPECT_EQ(folds, std::uint64_t(3 * opsPerThread));
        EXPECT_FALSE(rw.is_locked()) << syncModeName(mode);
        EXPECT_EQ(rw.readers(), 0u) << syncModeName(mode);
    }
}

TEST(TmsyncSharedMutex, ElidedReadersNeverWriteTheLockWord)
{
    // The whole point of elided shared locking: an uncontended quiet
    // run keeps the lock word at zero throughout, so every reader
    // commits speculatively and the word never changes.
    Runtime runtime(quietConfig(MachineConfig::intelCore()), 2);
    atomic_shared_mutex rw;
    std::uint64_t cell = 42;
    constexpr int reads = 20;

    sim::runThreads(2, 3, [&](sim::ThreadContext& ctx) {
        for (int i = 0; i < reads; ++i) {
            transactional_shared_lock_guard guard(
                runtime, ctx, rw, kTestSite, SyncMode::elided,
                [&](Tx& tx) { tx.load(&cell); });
            EXPECT_TRUE(guard.elided());
        }
    });

    EXPECT_EQ(runtime.stats().htmCommits, std::uint64_t(2 * reads));
    EXPECT_EQ(runtime.stats().irrevocableCommits, 0u);
    EXPECT_EQ(*rw.word(), 0u)
        << "elided readers must leave the lock word untouched";
}

// ------------------------------------------------------------------
// atomic_condition_variable
// ------------------------------------------------------------------

TEST(TmsyncCondvar, WaitReleasesMutexAndWakesOnNotify)
{
    Runtime runtime(quietConfig(MachineConfig::intelCore()), 2);
    atomic_mutex mutex;
    atomic_condition_variable cv;
    std::uint64_t flag = 0;
    bool woke = false;

    sim::runThreads(2, 5, [&](sim::ThreadContext& ctx) {
        if (ctx.id() == 0) {
            transactional_lock_guard guard(
                runtime, ctx, mutex, kTestSite, SyncMode::tatas,
                [&](Tx& tx) {
                    while (tx.load(&flag) == 0)
                        cv.wait(runtime, ctx, tx, mutex);
                    woke = true;
                });
            (void)guard;
        } else {
            // Arrive well after the waiter has blocked.
            ctx.advance(2000);
            ctx.sync();
            transactional_lock_guard guard(
                runtime, ctx, mutex, kTestSite, SyncMode::tatas,
                [&](Tx& tx) {
                    tx.store(&flag, std::uint64_t(1));
                    cv.notify_one(runtime, ctx, tx);
                });
            (void)guard;
        }
    });

    EXPECT_TRUE(woke);
    EXPECT_EQ(flag, 1u);
    EXPECT_FALSE(mutex.is_locked());
    EXPECT_EQ(cv.pending(), 0u) << "no stranded wakeups";
}

TEST(TmsyncCondvar, TicketsWakeInFifoOrder)
{
    Runtime runtime(quietConfig(MachineConfig::intelCore()), 3);
    atomic_mutex mutex;
    atomic_condition_variable cv;
    std::vector<unsigned> wake_order;
    std::vector<std::uint64_t> tickets(2, 0);

    sim::runThreads(3, 5, [&](sim::ThreadContext& ctx) {
        if (ctx.id() < 2) {
            // Stagger the two waiters so their tickets are ordered.
            ctx.advance(100 * ctx.id());
            ctx.sync();
            transactional_lock_guard guard(
                runtime, ctx, mutex, kTestSite, SyncMode::tatas,
                [&](Tx& tx) {
                    tickets[ctx.id()] =
                        cv.wait(runtime, ctx, tx, mutex);
                    wake_order.push_back(unsigned(ctx.id()));
                });
            (void)guard;
        } else {
            for (int wake = 0; wake < 2; ++wake) {
                ctx.advance(5000);
                ctx.sync();
                transactional_lock_guard guard(
                    runtime, ctx, mutex, kTestSite, SyncMode::tatas,
                    [&](Tx& tx) {
                        cv.notify_one(runtime, ctx, tx);
                    });
                (void)guard;
            }
        }
    });

    ASSERT_EQ(wake_order.size(), 2u);
    EXPECT_LT(tickets[0], tickets[1])
        << "first blocked waiter holds the lower ticket";
    EXPECT_EQ(wake_order[0], 0u) << "FIFO wakeup";
    EXPECT_EQ(wake_order[1], 1u);
    EXPECT_EQ(cv.pending(), 0u);
}

TEST(TmsyncCondvar, NotifyBeforeWaitIsNotLost)
{
    // Notify-with-memory semantics: a notify with no waiter pre-grants
    // the next ticket, so a later wait consumes it immediately.
    Runtime runtime(quietConfig(MachineConfig::intelCore()), 1);
    atomic_mutex mutex;
    atomic_condition_variable cv;
    std::uint64_t ticket = ~std::uint64_t(0);

    sim::runThreads(1, 1, [&](sim::ThreadContext& ctx) {
        transactional_lock_guard notify_guard(
            runtime, ctx, mutex, kTestSite, SyncMode::tatas,
            [&](Tx& tx) { cv.notify_one(runtime, ctx, tx); });
        (void)notify_guard;
        transactional_lock_guard wait_guard(
            runtime, ctx, mutex, kTestSite, SyncMode::tatas,
            [&](Tx& tx) {
                ticket = cv.wait(runtime, ctx, tx, mutex);
            });
        (void)wait_guard;
    });

    EXPECT_EQ(ticket, 0u);
    EXPECT_EQ(cv.pending(), 0u);
}

TEST(TmsyncCondvar, WaitInsideElidedAttemptForcesFallback)
{
    // wait() cannot run speculatively (it must really release the
    // mutex): inside an elided attempt it aborts the speculation, and
    // the section retries on the fallback path.
    Runtime runtime(quietConfig(MachineConfig::intelCore()), 1);
    atomic_mutex mutex;
    atomic_condition_variable cv;
    std::uint64_t ticket = ~std::uint64_t(0);

    sim::runThreads(1, 1, [&](sim::ThreadContext& ctx) {
        // Pre-grant so the fallback wait returns immediately.
        transactional_lock_guard notify_guard(
            runtime, ctx, mutex, kTestSite, SyncMode::tatas,
            [&](Tx& tx) { cv.notify_one(runtime, ctx, tx); });
        (void)notify_guard;
        transactional_lock_guard guard(
            runtime, ctx, mutex, kTestSite, SyncMode::elided,
            [&](Tx& tx) {
                ticket = cv.wait(runtime, ctx, tx, mutex);
            });
        EXPECT_FALSE(guard.elided());
    });

    EXPECT_EQ(ticket, 0u);
    EXPECT_GE(runtime.stats().totalAborts(), 1u)
        << "every speculative attempt at wait() must abort";
    // The notify guard and the wait guard each commit one fallback.
    EXPECT_EQ(runtime.stats().irrevocableCommits, 2u);
}

TEST(TmsyncCondvar, WaitWithoutHeldMutexThrows)
{
    // Catches global-lock-guard misuse (and plain API misuse): wait()
    // requires the associated mutex to actually be held.
    Runtime runtime(quietConfig(MachineConfig::intelCore()), 1);
    atomic_mutex mutex;
    atomic_condition_variable cv;

    sim::runThreads(1, 1, [&](sim::ThreadContext& ctx) {
        EXPECT_THROW(
            {
                runtime.runNonSpeculative(ctx, kTestSite, [&](Tx& tx) {
                    cv.wait(runtime, ctx, tx, mutex);
                });
            },
            std::logic_error);
    });
}

// ------------------------------------------------------------------
// Scenarios under the liveness oracle
// ------------------------------------------------------------------

TEST(TmsyncScenarios, AllCellsRunUnderLivenessOracle)
{
    for (const MachineConfig& machine : MachineConfig::all()) {
        for (unsigned s = 0; s < numScenarios; ++s) {
            const Scenario scenario = allScenarios()[s];
            for (const SyncMode mode :
                 {SyncMode::elided, SyncMode::tatas,
                  SyncMode::globalLock}) {
                if (!scenarioSupportsMode(scenario, mode))
                    continue;
                SCOPED_TRACE(std::string(machine.name) + " / " +
                             scenarioName(scenario) + " / " +
                             syncModeName(mode));
                ScenarioConfig config;
                config.runtime = RuntimeConfig(machine);
                config.scenario = scenario;
                config.mode = mode;
                config.threads = 4;
                config.opsPerThread = 30;
                config.seed = 2;
                check::LivenessChecker liveness(
                    config.threads, check::LivenessOptions{});
                config.observer = &liveness;

                ScenarioResult result;
                ASSERT_NO_THROW(result = runScenario(config));
                EXPECT_EQ(result.sections,
                          std::uint64_t(config.threads *
                                        config.opsPerThread));
                EXPECT_GT(result.horizonCycles, 0u);
            }
        }
    }
}

TEST(TmsyncScenarios, BlueGeneQElidedArmNeverSpeculates)
{
    ScenarioConfig config;
    config.runtime = RuntimeConfig(MachineConfig::blueGeneQ());
    config.scenario = Scenario::readerHeavy;
    config.mode = SyncMode::elided;
    config.threads = 4;
    config.opsPerThread = 30;

    const ScenarioResult result = runScenario(config);
    EXPECT_EQ(result.elidedSections, 0u);
    EXPECT_EQ(result.sections, std::uint64_t(4 * 30));
    EXPECT_EQ(result.stats.htmCommits, 0u);
}

TEST(TmsyncScenarios, ReaderHeavyElisionBeatsTatasOnElisionMachines)
{
    // The headline crossover (EXPERIMENTS.md): on every machine with
    // lock elision, the reader-heavy cell must favor elided readers
    // (who never write the lock word) over TATAS readers (two CASes
    // per section).
    for (const MachineConfig& machine : MachineConfig::all()) {
        if (!machine.supportsElision())
            continue;
        double thru[2] = {0.0, 0.0};
        int at = 0;
        for (const SyncMode mode :
             {SyncMode::elided, SyncMode::tatas}) {
            ScenarioConfig config;
            config.runtime = RuntimeConfig(machine);
            config.scenario = Scenario::readerHeavy;
            config.mode = mode;
            config.threads = 8;
            config.opsPerThread = 200;
            thru[at++] = runScenario(config).throughputPerKcycle();
        }
        EXPECT_GT(thru[0], thru[1]) << machine.name;
    }
}

// ------------------------------------------------------------------
// Zero perturbation (forked A/B)
// ------------------------------------------------------------------

/// Server-run outcome; trivially copyable so the child ships it over
/// a pipe in one write.
struct ServerMetrics
{
    std::uint64_t committedOps = 0;
    std::uint64_t horizonCycles = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p999 = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t irrevocable = 0;
    bool invariantsOk = false;

    bool operator==(const ServerMetrics& other) const = default;
};

server::ServerConfig
abServerConfig()
{
    server::ServerConfig config;
    config.runtime =
        RuntimeConfig(MachineConfig::intelCore());
    config.clients = 16;
    config.traffic.numKeys = 256;
    config.traffic.numAccounts = 32;
    config.traffic.zipfTheta = 0.9;
    config.traffic.opsPerClient = 24;
    config.traffic.meanInterarrivalCycles = 2048;
    config.seed = 3;
    return config;
}

/// Run the A/B server cell in a forked child. When @p construct_tmsync
/// is set, the child constructs (and pokes, host-side) every tmsync
/// primitive before the run — on the stack, exactly how a user linking
/// the library would — and the metrics must still be bit-identical.
bool
runServerForked(bool construct_tmsync, ServerMetrics& metrics)
{
    int fds[2];
    if (::pipe(fds) != 0)
        return false;
    const pid_t child = ::fork();
    if (child < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return false;
    }
    if (child == 0) {
        ::close(fds[0]);
        if (construct_tmsync) {
            atomic_mutex mutex;
            atomic_shared_mutex rw;
            atomic_condition_variable cv;
            (void)mutex.is_locked();
            (void)rw.is_locked_or_waiting();
            (void)cv.pending();
        }
        const server::ServerResult result =
            server::runServer(abServerConfig());
        metrics.committedOps = result.committedOps;
        metrics.horizonCycles = result.horizonCycles;
        metrics.p50 = result.latency.percentile(0.50);
        metrics.p999 = result.latency.percentile(0.999);
        metrics.commits = result.stats.totalCommits();
        metrics.aborts = result.stats.totalAborts();
        metrics.irrevocable = result.stats.irrevocableCommits;
        metrics.invariantsOk = result.invariantsOk;
        const char* cursor =
            reinterpret_cast<const char*>(&metrics);
        std::size_t remaining = sizeof(metrics);
        while (remaining > 0) {
            const ssize_t written =
                ::write(fds[1], cursor, remaining);
            if (written <= 0)
                ::_exit(2);
            cursor += written;
            remaining -= std::size_t(written);
        }
        ::_exit(0);
    }
    ::close(fds[1]);
    char* cursor = reinterpret_cast<char*>(&metrics);
    std::size_t remaining = sizeof(metrics);
    bool ok = true;
    while (remaining > 0) {
        const ssize_t got = ::read(fds[0], cursor, remaining);
        if (got <= 0) {
            ok = false;
            break;
        }
        cursor += got;
        remaining -= std::size_t(got);
    }
    ::close(fds[0]);
    int status = 0;
    ::waitpid(child, &status, 0);
    return ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

TEST(TmsyncPerturbation, ConstructingPrimitivesLeavesServerBitIdentical)
{
    // Both children fork from the same parent image; the only
    // difference is that child B constructs the tmsync primitives
    // first. With indexLock == none the server must not read a single
    // tmsync word, so the runs must match to the cycle.
    ServerMetrics plain;
    ServerMetrics with_tmsync;

    ASSERT_TRUE(runServerForked(false, plain));
    ASSERT_TRUE(runServerForked(true, with_tmsync));

    EXPECT_EQ(plain, with_tmsync);
    // Non-vacuity: the cell must exercise real contention.
    EXPECT_GT(plain.aborts, 0u);
    EXPECT_TRUE(plain.invariantsOk);
}

TEST(TmsyncServer, IndexLockGuardsScansWithoutBreakingInvariants)
{
    for (const server::IndexLockMode mode :
         {server::IndexLockMode::elided,
          server::IndexLockMode::tatas}) {
        server::ServerConfig config = abServerConfig();
        config.indexLock = mode;
        const server::ServerResult result =
            server::runServer(config);
        EXPECT_TRUE(result.invariantsOk)
            << server::indexLockModeName(mode);
        EXPECT_GT(result.indexGuardSections, 0u)
            << server::indexLockModeName(mode);
        EXPECT_EQ(result.committedOps,
                  std::uint64_t(config.clients *
                                config.traffic.opsPerClient));
        if (mode == server::IndexLockMode::tatas)
            EXPECT_EQ(result.indexGuardElided, 0u);
    }
}

} // namespace

/**
 * @file
 * Determinism regression test: the simulator must produce bit-identical
 * results for identical inputs.
 *
 * Simulated metrics depend on host addresses (line numbers and cache
 * sets are hashed from real pointers), so "run it twice in one
 * process" is not the right check: the second run inherits a heap
 * reshaped by the first and legitimately sees different placement.
 * What must hold — and what the benchmark harness relies on to compare
 * builds — is that a run from a given process image is a pure function
 * of its inputs. The test forks two children from the same parent
 * image, runs the full tuning grid of one STAMP cell in each, and
 * demands byte-identical cycles, commits and per-cause abort vectors.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdint>
#include <vector>

#include "bench/suite.hh"
#include "sim/scheduler.hh"

namespace
{

using namespace htmsim;

/// One tuning candidate's simulated outcome; trivially copyable so a
/// child can ship the whole grid over a pipe in one write.
struct CandidateMetrics
{
    std::uint64_t seqCycles = 0;
    std::uint64_t tmCycles = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::array<std::uint64_t, htm::numAbortCauses> causes{};

    bool
    operator==(const CandidateMetrics& other) const = default;
};

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kSeed = 1;

/// Run the full tuning grid for one cell in a forked child and collect
/// the per-candidate metrics in the parent. @p batch selects the
/// epoch-batched sync() fast path or the `--no-batch` slow path;
/// @p policy selects how the schedulers in the child provision fiber
/// stacks (lazily from the pool or eagerly up front). Either way the
/// results must be bit-identical (DESIGN.md Sections 5 and 9).
bool
runGridForked(const std::string& bench,
              const htm::MachineConfig& machine,
              std::vector<CandidateMetrics>& grid, bool batch = true,
              sim::StackPolicy policy = sim::StackPolicy::pooled)
{
    int fds[2];
    if (::pipe(fds) != 0)
        return false;
    const pid_t child = ::fork();
    if (child < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return false;
    }
    if (child == 0) {
        ::close(fds[0]);
        sim::Scheduler::setDefaultStackPolicy(policy);
        bench::SuiteRunner runner(false);
        const auto configs =
            bench::SuiteRunner::tuningCandidates(machine);
        for (std::size_t i = 0; i < grid.size(); ++i) {
            CandidateMetrics& metrics = grid[i];
            htm::RuntimeConfig config = configs[i];
            config.batchEpoch = batch;
            const stamp::Speedup speedup = runner.run(
                bench, config, machine, kThreads, true, kSeed);
            metrics.seqCycles = speedup.seq.cycles;
            metrics.tmCycles = speedup.tm.cycles;
            metrics.commits = speedup.tm.stats.totalCommits();
            metrics.aborts = speedup.tm.stats.totalAborts();
            metrics.causes = speedup.tm.stats.trueCauseAborts;
        }
        const char* cursor =
            reinterpret_cast<const char*>(grid.data());
        std::size_t remaining = grid.size() * sizeof(grid[0]);
        while (remaining > 0) {
            const ssize_t written = ::write(fds[1], cursor, remaining);
            if (written <= 0)
                ::_exit(2);
            cursor += written;
            remaining -= std::size_t(written);
        }
        ::_exit(0);
    }
    ::close(fds[1]);
    char* cursor = reinterpret_cast<char*>(grid.data());
    std::size_t remaining = grid.size() * sizeof(grid[0]);
    bool ok = true;
    while (remaining > 0) {
        const ssize_t got = ::read(fds[0], cursor, remaining);
        if (got <= 0) {
            ok = false;
            break;
        }
        cursor += got;
        remaining -= std::size_t(got);
    }
    ::close(fds[0]);
    int status = 0;
    ::waitpid(child, &status, 0);
    return ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

TEST(Determinism, FullTuningGridIsBitIdenticalAcrossRuns)
{
    const htm::MachineConfig machine = htm::MachineConfig::all()[2];
    ASSERT_EQ(machine.name, "Intel Core i7-4770");
    const std::string bench = "vacation-low";
    const std::size_t candidates =
        bench::SuiteRunner::tuningCandidates(machine).size();
    ASSERT_GT(candidates, 0u);

    // Preallocate both result buffers before the first fork so the
    // two children start from the same parent heap image.
    std::vector<CandidateMetrics> first(candidates);
    std::vector<CandidateMetrics> second(candidates);

    ASSERT_TRUE(runGridForked(bench, machine, first));
    ASSERT_TRUE(runGridForked(bench, machine, second));

    for (std::size_t i = 0; i < candidates; ++i) {
        SCOPED_TRACE("candidate " + std::to_string(i));
        EXPECT_EQ(first[i].seqCycles, second[i].seqCycles);
        EXPECT_EQ(first[i].tmCycles, second[i].tmCycles);
        EXPECT_EQ(first[i].commits, second[i].commits);
        EXPECT_EQ(first[i].aborts, second[i].aborts);
        EXPECT_EQ(first[i].causes, second[i].causes);
    }

    // The cell must actually exercise the machinery: committed and
    // aborted transactions, with at least one non-zero abort cause.
    std::uint64_t total_commits = 0;
    std::uint64_t total_aborts = 0;
    for (const CandidateMetrics& metrics : first) {
        total_commits += metrics.commits;
        total_aborts += metrics.aborts;
    }
    EXPECT_GT(total_commits, 0u);
    EXPECT_GT(total_aborts, 0u);
}

// Epoch batching (DESIGN.md Section 5) elides only scheduling points
// that provably cannot switch threads, so a batched run and a
// `--no-batch` run must be bit-identical — not statistically close,
// byte-for-byte equal. Same fork discipline as above: both children
// start from the same parent image, one runs the full tuning grid with
// the sync() fast path, the other with every scheduling point taking
// the slow path.
TEST(Determinism, BatchedAndUnbatchedRunsAreBitIdentical)
{
    const htm::MachineConfig machine = htm::MachineConfig::all()[0];
    ASSERT_EQ(machine.name, "Blue Gene/Q");
    const std::string bench = "genome";
    const std::size_t candidates =
        bench::SuiteRunner::tuningCandidates(machine).size();
    ASSERT_GT(candidates, 0u);

    std::vector<CandidateMetrics> batched(candidates);
    std::vector<CandidateMetrics> unbatched(candidates);

    ASSERT_TRUE(runGridForked(bench, machine, batched, true));
    ASSERT_TRUE(runGridForked(bench, machine, unbatched, false));

    for (std::size_t i = 0; i < candidates; ++i) {
        SCOPED_TRACE("candidate " + std::to_string(i));
        EXPECT_EQ(batched[i].seqCycles, unbatched[i].seqCycles);
        EXPECT_EQ(batched[i].tmCycles, unbatched[i].tmCycles);
        EXPECT_EQ(batched[i].commits, unbatched[i].commits);
        EXPECT_EQ(batched[i].aborts, unbatched[i].aborts);
        EXPECT_EQ(batched[i].causes, unbatched[i].causes);
    }

    std::uint64_t total_commits = 0;
    std::uint64_t total_aborts = 0;
    for (const CandidateMetrics& metrics : batched) {
        total_commits += metrics.commits;
        total_aborts += metrics.aborts;
    }
    EXPECT_GT(total_commits, 0u);
    EXPECT_GT(total_aborts, 0u);
}

// Stack pooling (DESIGN.md Section 9) commits a fiber's stack lazily
// at first dispatch; the eager policy commits every stack up front.
// Because a pool slot's address is a pure function of its index,
// commit *timing* must be invisible to the simulated machine models —
// a pooled run and an eager run from the same parent image must be
// byte-for-byte equal, exactly like the batching A/B above. This is
// the contract that lets the scheduler scale to 256+ fibers without
// perturbing any existing result.
TEST(Determinism, PooledAndEagerStacksAreBitIdentical)
{
    const htm::MachineConfig machine = htm::MachineConfig::all()[2];
    ASSERT_EQ(machine.name, "Intel Core i7-4770");
    const std::string bench = "intruder";
    const std::size_t candidates =
        bench::SuiteRunner::tuningCandidates(machine).size();
    ASSERT_GT(candidates, 0u);

    std::vector<CandidateMetrics> pooled(candidates);
    std::vector<CandidateMetrics> eager(candidates);

    ASSERT_TRUE(runGridForked(bench, machine, pooled, true,
                              sim::StackPolicy::pooled));
    ASSERT_TRUE(runGridForked(bench, machine, eager, true,
                              sim::StackPolicy::eager));

    for (std::size_t i = 0; i < candidates; ++i) {
        SCOPED_TRACE("candidate " + std::to_string(i));
        EXPECT_EQ(pooled[i].seqCycles, eager[i].seqCycles);
        EXPECT_EQ(pooled[i].tmCycles, eager[i].tmCycles);
        EXPECT_EQ(pooled[i].commits, eager[i].commits);
        EXPECT_EQ(pooled[i].aborts, eager[i].aborts);
        EXPECT_EQ(pooled[i].causes, eager[i].causes);
    }

    std::uint64_t total_commits = 0;
    std::uint64_t total_aborts = 0;
    for (const CandidateMetrics& metrics : pooled) {
        total_commits += metrics.commits;
        total_aborts += metrics.aborts;
    }
    EXPECT_GT(total_commits, 0u);
    EXPECT_GT(total_aborts, 0u);
}

} // namespace

/**
 * @file
 * Liveness-oracle tests (src/check/liveness.hh).
 *
 * The checker is unit-tested against synthetic event streams whose
 * violations are known by construction, then exercised end-to-end:
 * green under real hazard injection with the hardened policy, and red
 * on the seeded stuck-retry livelock (the oracle's own self-test
 * fault). The event-ring overflow contract of the differential oracle
 * is proven here too: a ring too small for the run must fail loudly,
 * not pass on a truncated trace.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/liveness.hh"
#include "check/oracle.hh"
#include "check/trace.hh"
#include "check/workload.hh"
#include "htm/machine.hh"

namespace
{

using namespace htmsim;
using namespace htmsim::check;

htm::TxEvent
event(htm::TxEventKind kind, std::uint16_t tid, sim::Cycles cycles,
      sim::Cycles section_start)
{
    htm::TxEvent result{};
    result.kind = kind;
    result.cause = kind == htm::TxEventKind::abort
                       ? htm::AbortCause::dataConflict
                       : htm::AbortCause::none;
    result.tid = tid;
    result.cycles = cycles;
    result.sectionStart = section_start;
    return result;
}

TEST(LivenessChecker, GreenStreamPassesAndCountsCommits)
{
    LivenessChecker checker(2, {1000, 8});
    checker.onEvent(event(htm::TxEventKind::begin, 0, 10, 10));
    checker.onEvent(event(htm::TxEventKind::begin, 1, 15, 15));
    checker.onEvent(event(htm::TxEventKind::abort, 0, 200, 10));
    checker.onEvent(event(htm::TxEventKind::begin, 0, 300, 300));
    checker.onEvent(event(htm::TxEventKind::commit, 0, 600, 300));
    checker.onEvent(event(htm::TxEventKind::commit, 1, 700, 15));
    EXPECT_EQ(checker.globalCommits(), 2u);
}

TEST(LivenessChecker, CompletionWindowViolationFires)
{
    LivenessChecker checker(2, {1000, 1000});
    // t0 opens a section; the retried attempts keep it open (its
    // clock is the *first* begin's sectionStart).
    checker.onEvent(event(htm::TxEventKind::begin, 0, 0, 0));
    checker.onEvent(event(htm::TxEventKind::abort, 0, 400, 0));
    checker.onEvent(event(htm::TxEventKind::begin, 0, 500, 500));
    // A peer's event past the window must trip the bound even though
    // t0 itself is silent at that point.
    checker.onEvent(event(htm::TxEventKind::begin, 1, 900, 900));
    EXPECT_THROW(
        checker.onEvent(event(htm::TxEventKind::commit, 1, 1200, 900)),
        LivenessViolation);
}

TEST(LivenessChecker, SectionCloseRearmsTheWindow)
{
    LivenessChecker checker(1, {1000, 1000});
    for (sim::Cycles start = 0; start < 10'000; start += 900) {
        checker.onEvent(
            event(htm::TxEventKind::begin, 0, start, start));
        checker.onEvent(
            event(htm::TxEventKind::commit, 0, start + 800, start));
    }
    EXPECT_EQ(checker.globalCommits(), 12u);
}

TEST(LivenessChecker, StarvationBoundFires)
{
    LivenessChecker checker(2, {1'000'000'000, 3});
    checker.onEvent(event(htm::TxEventKind::begin, 0, 0, 0));
    // t1 commits three times while t0's section stays open: at the
    // bound, still legal.
    sim::Cycles now = 10;
    for (int i = 0; i < 3; ++i) {
        checker.onEvent(event(htm::TxEventKind::begin, 1, now, now));
        checker.onEvent(
            event(htm::TxEventKind::commit, 1, now + 5, now));
        now += 10;
    }
    // The fourth peer commit crosses it.
    checker.onEvent(event(htm::TxEventKind::begin, 1, now, now));
    EXPECT_THROW(checker.onEvent(event(htm::TxEventKind::commit, 1,
                                       now + 5, now)),
                 LivenessViolation);
}

TEST(LivenessChecker, ForwardsEveryEventBeforeChecking)
{
    EventRing ring(16);
    LivenessChecker checker(1, {100, 100}, &ring);
    checker.onEvent(event(htm::TxEventKind::begin, 0, 0, 0));
    // The violating event itself must reach the ring before the
    // throw, so the printed trace tail ends at the violation.
    EXPECT_THROW(
        checker.onEvent(event(htm::TxEventKind::abort, 0, 500, 0)),
        LivenessViolation);
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring.events().back().kind, htm::TxEventKind::abort);
}

// ---- end to end -------------------------------------------------------

TEST(RunLiveness, GreenUnderHazardsWithHardenedPolicy)
{
    const WorkloadFactory* workload = findWorkload("hashtable");
    ASSERT_NE(workload, nullptr);
    CheckOptions options;
    options.hazard.enabled = true;
    options.hazard.spuriousAbortProb = 1e-3;
    options.policyKind = htm::RetryPolicyKind::hardened;

    const RunOutcome outcome = runLiveness(
        *workload, htm::MachineConfig::intelCore(), 3, options);
    EXPECT_TRUE(outcome.ok) << outcome.reason;
    EXPECT_EQ(outcome.commits,
              std::uint64_t(options.threads) * options.opsPerThread);
}

TEST(RunLiveness, CatchesTheSeededStuckRetryLivelock)
{
    const WorkloadFactory* workload = findWorkload("hashtable");
    ASSERT_NE(workload, nullptr);
    CheckOptions options;
    // stuck-retry makes the driver ignore the policy's stop decision;
    // pinning t0 gives it an endless spurious-abort stream to be
    // stuck on. Together: a deterministic livelock.
    options.fault = htm::CheckFault::stuckRetry;
    options.hazard.enabled = true;
    options.hazard.pinnedVictim = 0;

    const RunOutcome outcome = runLiveness(
        *workload, htm::MachineConfig::intelCore(), 1, options);
    ASSERT_FALSE(outcome.ok);
    EXPECT_NE(outcome.reason.find("liveness violated"),
              std::string::npos)
        << outcome.reason;
    EXPECT_FALSE(outcome.traceTail.empty());
}

TEST(RunDifferential, RingOverflowFailsLoudly)
{
    const WorkloadFactory* workload = findWorkload("hashtable");
    ASSERT_NE(workload, nullptr);
    CheckOptions options;
    // Far too small for threads * ops lifecycle events: the oracle
    // must refuse to judge a truncated trace.
    options.ringCapacity = 8;

    const RunOutcome outcome = runDifferential(
        *workload, htm::MachineConfig::intelCore(), 1, options);
    ASSERT_FALSE(outcome.ok);
    EXPECT_NE(outcome.reason.find("ring overflowed"),
              std::string::npos)
        << outcome.reason;
    EXPECT_NE(outcome.reason.find("--ring-capacity"),
              std::string::npos)
        << outcome.reason;
}

} // namespace

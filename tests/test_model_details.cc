/**
 * @file
 * Second-tier model tests: conflict policies, CAS, the node pool,
 * speculation-id accounting, SMT time scaling, lazy subscription,
 * constrained-transaction escalation, and trace percentile math.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "htm/node_pool.hh"
#include "htm/runtime.hh"
#include "sim/sim.hh"

namespace
{

using namespace htmsim;
using namespace htmsim::htm;

RuntimeConfig
quiet(MachineConfig machine)
{
    machine.cacheFetchAbortProb = 0.0;
    machine.prefetchConflictProb = 0.0;
    return RuntimeConfig(std::move(machine));
}

TEST(ConflictPolicy, AttackerLosesAbortsTheAttacker)
{
    RuntimeConfig config = quiet(MachineConfig::intelCore());
    config.policy = ConflictPolicy::attackerLoses;
    sim::Scheduler scheduler;
    Runtime runtime(config, 2);
    alignas(64) std::uint64_t x = 0;
    unsigned reader_attempts = 0;
    unsigned writer_attempts = 0;
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        runtime.atomic(ctx, [&](Tx& tx) {
            ++reader_attempts;
            (void)tx.load(&x);
            tx.work(4000);
        });
    });
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        ctx.step(500);
        runtime.atomic(ctx, [&](Tx& tx) {
            ++writer_attempts;
            tx.store(&x, std::uint64_t(1));
        });
    });
    scheduler.run();
    // The writer (attacker) must retry; the reader stays untouched.
    EXPECT_EQ(reader_attempts, 1u);
    EXPECT_GE(writer_attempts, 2u);
    EXPECT_EQ(x, 1u);
}

TEST(ConflictPolicy, OlderWinsProtectsTheElder)
{
    RuntimeConfig config = quiet(MachineConfig::intelCore());
    config.policy = ConflictPolicy::olderWins;
    sim::Scheduler scheduler;
    Runtime runtime(config, 2);
    alignas(64) std::uint64_t x = 0;
    unsigned first_attempts = 0;
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        runtime.atomic(ctx, [&](Tx& tx) {
            ++first_attempts;
            tx.store(&x, tx.load(&x) + 1);
            tx.work(4000);
        });
    });
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        ctx.step(500);
        runtime.atomic(ctx, [&](Tx& tx) {
            tx.store(&x, tx.load(&x) + 1);
        });
    });
    scheduler.run();
    EXPECT_EQ(first_attempts, 1u) << "the older tx must not abort";
    EXPECT_EQ(x, 2u);
}

TEST(NonTxCas, SucceedsOnceUnderContention)
{
    sim::Scheduler scheduler;
    Runtime runtime(quiet(MachineConfig::intelCore()), 4);
    alignas(64) std::uint64_t word = 0;
    unsigned winners = 0;
    for (unsigned t = 0; t < 4; ++t) {
        scheduler.spawn([&, t](sim::ThreadContext& ctx) {
            ctx.step(10 * t);
            if (runtime.nonTxCas(ctx, &word, std::uint64_t(0),
                                 std::uint64_t(t + 1))) {
                ++winners;
            }
        });
    }
    scheduler.run();
    EXPECT_EQ(winners, 1u);
    EXPECT_NE(word, 0u);
}

TEST(NodePool, ChunksAreLineGranularAndRecycled)
{
    NodePool& pool = NodePool::instance();
    void* a = pool.alloc(24);
    void* b = pool.alloc(24);
    const auto ua = std::uintptr_t(a);
    const auto ub = std::uintptr_t(b);
    EXPECT_EQ(ua % NodePool::lineBytes, 0u);
    EXPECT_EQ(ub % NodePool::lineBytes, 0u);
    EXPECT_NE(ua >> 8, ub >> 8)
        << "two allocations must not share a 256-byte line";
    pool.free(a, 24);
    void* c = pool.alloc(40); // same size class -> reused chunk
    EXPECT_EQ(c, a);
    pool.free(b, 24);
    pool.free(c, 40);

    void* big = pool.alloc(5000);
    EXPECT_EQ(std::uintptr_t(big) % NodePool::lineBytes, 0u);
    pool.free(big, 5000);
    void* big2 = pool.alloc(4900); // same class (rounded to lines)
    EXPECT_EQ(big2, big);
    pool.free(big2, 4900);
}

TEST(SpecIds, ReleasedOnAbortAndCommit)
{
    // 300 committed + many aborted transactions through a 128-ID pool
    // must not deadlock, and reclamation passes must be recorded.
    RuntimeConfig config = quiet(MachineConfig::blueGeneQ());
    sim::Scheduler scheduler;
    Runtime runtime(config, 2);
    alignas(128) std::uint64_t hot = 0;
    for (unsigned t = 0; t < 2; ++t) {
        scheduler.spawn([&](sim::ThreadContext& ctx) {
            for (int i = 0; i < 150; ++i) {
                runtime.atomic(ctx, [&](Tx& tx) {
                    tx.store(&hot, tx.load(&hot) + 1);
                    tx.work(120);
                });
            }
        });
    }
    scheduler.run();
    EXPECT_EQ(hot, 300u);
    EXPECT_GT(runtime.stats().specIdReclaims, 0u);
}

TEST(SmtModel, TimeScaleInterpolates)
{
    const MachineConfig intel = MachineConfig::intelCore();
    EXPECT_DOUBLE_EQ(intel.smtTimeScale(1), 1.0);
    // Two hyperthreads: 2 / 1.3 each.
    EXPECT_NEAR(intel.smtTimeScale(2), 2.0 / 1.3, 1e-9);

    const MachineConfig p8 = MachineConfig::power8();
    EXPECT_DOUBLE_EQ(p8.smtTimeScale(1), 1.0);
    EXPECT_NEAR(p8.smtTimeScale(8), 8.0 / p8.smtYield, 1e-9);

    // Thread placement: 8 threads on 4 Intel cores -> everyone shares.
    for (unsigned tid = 0; tid < 8; ++tid)
        EXPECT_GT(intel.threadTimeScale(tid, 8), 1.0);
    // 4 threads on 4 cores -> everyone exclusive.
    for (unsigned tid = 0; tid < 4; ++tid)
        EXPECT_DOUBLE_EQ(intel.threadTimeScale(tid, 4), 1.0);
}

TEST(SmtModel, ScaledThreadRunsProportionallySlower)
{
    sim::Scheduler scheduler;
    scheduler.spawn([](sim::ThreadContext& ctx) {
        ctx.setTimeScale(2.0);
        ctx.step(100);
        EXPECT_EQ(ctx.now(), 200u);
    });
    scheduler.run();
}

TEST(BgqLazySubscription, CommitFailsWhileLockHeld)
{
    RuntimeConfig config = quiet(MachineConfig::blueGeneQ());
    config.bgq.mode = BgqMode::longRunning;
    sim::Scheduler scheduler;
    Runtime runtime(config, 2);
    alignas(128) std::uint64_t a = 0;
    alignas(128) std::uint64_t b = 0;
    unsigned attempts = 0;
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        runtime.atomic(ctx, [&](Tx& tx) {
            ++attempts;
            tx.store(&a, std::uint64_t(1));
            tx.work(6000); // commit lands inside the locked window
        });
    });
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        ctx.step(200);
        runtime.runLocked(ctx, [&](Tx& tx) {
            tx.store(&b, std::uint64_t(1));
            tx.work(20000);
        });
    });
    scheduler.run();
    EXPECT_GE(attempts, 2u)
        << "lazy subscription must abort the commit under the lock";
    EXPECT_EQ(a, 1u);
}

TEST(Constrained, EscalationGuaranteesProgressUnderHammering)
{
    // One constrained transaction against three big transactions that
    // keep touching its line: escalation must still let it commit.
    RuntimeConfig config = quiet(MachineConfig::zEC12());
    sim::Scheduler scheduler;
    Runtime runtime(config, 4);
    alignas(256) std::uint64_t hot = 0;
    bool constrained_done = false;
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        ctx.step(1000);
        runtime.constrainedAtomic(ctx, [&](Tx& tx) {
            tx.store(&hot, tx.load(&hot) + 100);
        });
        constrained_done = true;
    });
    for (unsigned t = 1; t < 4; ++t) {
        scheduler.spawn([&](sim::ThreadContext& ctx) {
            for (int i = 0; i < 60; ++i) {
                runtime.atomic(ctx, [&](Tx& tx) {
                    tx.store(&hot, tx.load(&hot) + 1);
                    tx.work(400);
                });
            }
        });
    }
    scheduler.run();
    EXPECT_TRUE(constrained_done);
    EXPECT_EQ(hot, 100u + 3 * 60);
    EXPECT_EQ(runtime.stats().constrainedCommits, 1u);
}

TEST(Trace, PercentileMathMatchesByHand)
{
    TraceCollector trace;
    for (std::uint32_t loads : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
        trace.record(loads, loads * 2);
    // 90th percentile of 1..10 with linear interpolation: 9.1.
    EXPECT_NEAR(trace.loadPercentileBytes(0.90, 64), 9.1 * 64, 1e-6);
    EXPECT_NEAR(trace.storePercentileBytes(0.50, 128), 11.0 * 128,
                1e-6);
    trace.clear();
    EXPECT_DOUBLE_EQ(trace.loadPercentileBytes(0.9, 64), 0.0);
}

TEST(Stats, AbortRatioExcludesIrrevocable)
{
    TxStats stats;
    stats.htmCommits = 6;
    stats.irrevocableCommits = 4;
    stats.reportedAborts[std::size_t(AbortCategory::dataConflict)] = 4;
    // 4 aborts / (4 aborts + 6 HTM commits); lock-path commits are
    // excluded from the denominator (paper Section 5).
    EXPECT_DOUBLE_EQ(stats.abortRatio(), 0.4);
    EXPECT_DOUBLE_EQ(stats.serializationRatio(), 0.4);
}

TEST(Runtime, ConflictDirectoryDrainsAfterRuns)
{
    sim::Scheduler scheduler;
    Runtime runtime(quiet(MachineConfig::power8()), 4);
    static std::vector<std::uint64_t> cells(256, 0);
    cells.assign(256, 0);
    for (unsigned t = 0; t < 4; ++t) {
        scheduler.spawn([&](sim::ThreadContext& ctx) {
            for (int i = 0; i < 100; ++i) {
                const auto index = ctx.rng().nextRange(16) * 16;
                runtime.atomic(ctx, [&](Tx& tx) {
                    tx.store(&cells[index],
                             tx.load(&cells[index]) + 1);
                });
            }
        });
    }
    scheduler.run();
    EXPECT_EQ(runtime.trackedConflictLines(), 0u)
        << "all reader/writer marks must be cleaned up";
}

TEST(RollbackOnly, CapacityBoundStillApplies)
{
    // ROT stores occupy TMCAM entries: more than 64 distinct store
    // lines must abort even without conflict detection.
    sim::Scheduler scheduler;
    Runtime runtime(quiet(MachineConfig::power8()), 1);
    std::vector<std::uint64_t> data(70 * 16, 0);
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        const bool committed = runtime.rollbackOnly(ctx, [&](Tx& tx) {
            for (std::size_t line = 0; line < 70; ++line)
                tx.store(&data[line * 16], std::uint64_t(1));
        });
        EXPECT_FALSE(committed);
    });
    scheduler.run();
    for (std::size_t line = 0; line < 70; ++line)
        EXPECT_EQ(data[line * 16], 0u) << "stores must roll back";
}

TEST(Determinism, SameSeedSameMakespanAcrossMachines)
{
    for (const auto& machine : MachineConfig::all()) {
        auto run_once = [&] {
            sim::Scheduler scheduler(11);
            Runtime runtime(quiet(machine), 4);
            static std::vector<std::uint64_t> slots(512, 0);
            slots.assign(512, 0);
            for (unsigned t = 0; t < 4; ++t) {
                scheduler.spawn([&](sim::ThreadContext& ctx) {
                    for (int i = 0; i < 100; ++i) {
                        const auto index =
                            ctx.rng().nextRange(32) * 16;
                        runtime.atomic(ctx, [&](Tx& tx) {
                            tx.store(&slots[index],
                                     tx.load(&slots[index]) + 1);
                            tx.work(50);
                        });
                    }
                });
            }
            scheduler.run();
            return scheduler.makespan();
        };
        // Same static buffer, same seed: identical virtual time.
        EXPECT_EQ(run_once(), run_once()) << machine.name;
    }
}

TEST(IrrevocableScope, NonSpeculativeBodyThrowRestoresStatus)
{
    RuntimeConfig config = quiet(MachineConfig::intelCore());
    sim::Scheduler scheduler;
    Runtime runtime(config, 1);
    struct BodyError
    {
    };
    std::uint64_t x = 0;
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        EXPECT_THROW(runtime.runNonSpeculative(
                         ctx, [&](Tx&) { throw BodyError{}; }),
                     BodyError);
        // The guard must leave the Tx reusable: no irrevocable status
        // leaks into the next section, which commits normally.
        EXPECT_EQ(runtime.txOf(0).status(), TxStatus::inactive);
        runtime.atomic(ctx, [&](Tx& tx) {
            tx.store(&x, std::uint64_t(1));
        });
    });
    scheduler.run();
    EXPECT_EQ(x, 1u);
    // The aborted non-speculative body must not count as a commit.
    EXPECT_EQ(runtime.stats().irrevocableCommits, 0u);
    EXPECT_EQ(runtime.stats().htmCommits, 1u);
}

} // namespace

/**
 * @file
 * Tests for the TM data-structure library: sequential correctness via
 * DirectContext (including randomized red-black invariant checks) and
 * concurrent linearizability-style checks under the HTM runtime on all
 * four machines.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "htm/context.hh"
#include "htm/runtime.hh"
#include "sim/sim.hh"
#include "tmds/tm_bitmap.hh"
#include "tmds/tm_hashtable.hh"
#include "tmds/tm_heap.hh"
#include "tmds/tm_list.hh"
#include "tmds/tm_queue.hh"
#include "tmds/tm_rbtree.hh"

namespace
{

using namespace htmsim;
using namespace htmsim::htm;
using namespace htmsim::tmds;

RuntimeConfig
quietConfig(MachineConfig machine)
{
    machine.cacheFetchAbortProb = 0.0;
    machine.prefetchConflictProb = 0.0;
    return RuntimeConfig(std::move(machine));
}

// ------------------------------------------------------------------
// Sequential (DirectContext) behaviour
// ------------------------------------------------------------------

TEST(TmListSeq, SortedUniqueInsertFindRemove)
{
    DirectContext c;
    TmList<> list;
    EXPECT_TRUE(list.insert(c, 5, 50));
    EXPECT_TRUE(list.insert(c, 1, 10));
    EXPECT_TRUE(list.insert(c, 9, 90));
    EXPECT_FALSE(list.insert(c, 5, 55)) << "duplicate must fail";
    EXPECT_EQ(list.size(c), 3u);

    std::uint64_t value = 0;
    EXPECT_TRUE(list.find(c, 5, &value));
    EXPECT_EQ(value, 50u);
    EXPECT_FALSE(list.find(c, 2));

    std::vector<std::uint64_t> keys;
    list.forEach(c, [&](std::uint64_t k, std::uint64_t) {
        keys.push_back(k);
    });
    EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 5, 9}));

    EXPECT_TRUE(list.remove(c, 5));
    EXPECT_FALSE(list.remove(c, 5));
    EXPECT_EQ(list.size(c), 2u);
    EXPECT_FALSE(list.find(c, 5));
}

TEST(TmListSeq, PopFrontDrains)
{
    DirectContext c;
    TmList<> list;
    for (std::uint64_t k : {7, 3, 11, 1})
        list.insert(c, k, k * 2);
    std::uint64_t key = 0, value = 0;
    std::vector<std::uint64_t> order;
    while (list.popFront(c, &key, &value)) {
        order.push_back(key);
        EXPECT_EQ(value, key * 2);
    }
    EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 3, 7, 11}));
    EXPECT_TRUE(list.empty(c));
}

TEST(TmQueueSeq, FifoWithGrowth)
{
    DirectContext c;
    TmQueue queue(2); // forces repeated growth
    for (std::uint64_t i = 0; i < 100; ++i)
        queue.push(c, i);
    EXPECT_EQ(queue.size(c), 100u);
    for (std::uint64_t i = 0; i < 100; ++i) {
        std::uint64_t out = 0;
        ASSERT_TRUE(queue.pop(c, &out));
        EXPECT_EQ(out, i);
    }
    EXPECT_TRUE(queue.empty(c));
    EXPECT_FALSE(queue.pop(c, nullptr));
}

TEST(TmQueueSeq, InterleavedPushPopWrapsAround)
{
    DirectContext c;
    TmQueue queue(4);
    std::uint64_t next_push = 0, next_pop = 0;
    sim::Rng rng(3);
    for (int step = 0; step < 1000; ++step) {
        if (rng.nextBool(0.6) || next_push == next_pop) {
            queue.push(c, next_push++);
        } else {
            std::uint64_t out = 0;
            ASSERT_TRUE(queue.pop(c, &out));
            EXPECT_EQ(out, next_pop++);
        }
    }
    while (next_pop < next_push) {
        std::uint64_t out = 0;
        ASSERT_TRUE(queue.pop(c, &out));
        EXPECT_EQ(out, next_pop++);
    }
}

struct MaxCompare
{
    template <typename Ctx>
    static int
    compare(Ctx&, std::uint64_t a, std::uint64_t b)
    {
        return a < b ? -1 : (a > b ? 1 : 0);
    }
};

TEST(TmHeapSeq, ExtractsInPriorityOrder)
{
    DirectContext c;
    TmHeap<MaxCompare> heap(2);
    sim::Rng rng(11);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 300; ++i) {
        const std::uint64_t v = rng.nextRange(10000);
        values.push_back(v);
        heap.insert(c, v);
    }
    std::sort(values.rbegin(), values.rend());
    for (std::uint64_t expected : values) {
        std::uint64_t out = 0;
        ASSERT_TRUE(heap.popMax(c, &out));
        EXPECT_EQ(out, expected);
    }
    EXPECT_TRUE(heap.empty(c));
}

TEST(TmBitmapSeq, SetClearCount)
{
    DirectContext c;
    TmBitmap bitmap(200);
    EXPECT_TRUE(bitmap.set(c, 0));
    EXPECT_TRUE(bitmap.set(c, 63));
    EXPECT_TRUE(bitmap.set(c, 64));
    EXPECT_TRUE(bitmap.set(c, 199));
    EXPECT_FALSE(bitmap.set(c, 63)) << "double set must fail";
    EXPECT_EQ(bitmap.countSet(), 4u);
    EXPECT_TRUE(bitmap.isSet(c, 64));
    EXPECT_FALSE(bitmap.isSet(c, 65));
    EXPECT_TRUE(bitmap.clear(c, 64));
    EXPECT_FALSE(bitmap.clear(c, 64));
    EXPECT_EQ(bitmap.countSet(), 3u);
}

TEST(TmHashTableSeq, InsertFindRemoveUpdate)
{
    DirectContext c;
    TmHashTable<> table(64);
    for (std::uint64_t k = 0; k < 500; ++k)
        EXPECT_TRUE(table.insert(c, k * 7919, k));
    EXPECT_EQ(table.size(c), 500u);
    EXPECT_FALSE(table.insert(c, 0, 42)) << "duplicate must fail";

    std::uint64_t value = 0;
    EXPECT_TRUE(table.find(c, 499 * 7919, &value));
    EXPECT_EQ(value, 499u);
    EXPECT_FALSE(table.find(c, 123456789));

    EXPECT_TRUE(table.update(c, 3 * 7919, 999));
    EXPECT_TRUE(table.find(c, 3 * 7919, &value));
    EXPECT_EQ(value, 999u);

    for (std::uint64_t k = 0; k < 250; ++k)
        EXPECT_TRUE(table.remove(c, k * 7919));
    EXPECT_FALSE(table.remove(c, 0));
    EXPECT_EQ(table.size(c), 250u);

    std::size_t visited = 0;
    table.forEach(c, [&](std::uint64_t, std::uint64_t) { ++visited; });
    EXPECT_EQ(visited, 250u);
}

TEST(TmRbTreeSeq, RandomizedOpsKeepInvariantsAndAgreeWithStdMap)
{
    DirectContext c;
    TmRbTree tree;
    std::map<std::uint64_t, std::uint64_t> model;
    sim::Rng rng(5);

    for (int step = 0; step < 4000; ++step) {
        const std::uint64_t key = rng.nextRange(600);
        const int op = int(rng.nextRange(3));
        if (op == 0) {
            const bool inserted = tree.insert(c, key, key * 3);
            EXPECT_EQ(inserted, model.emplace(key, key * 3).second);
        } else if (op == 1) {
            const bool removed = tree.remove(c, key);
            EXPECT_EQ(removed, model.erase(key) == 1);
        } else {
            std::uint64_t value = 0;
            const bool found = tree.find(c, key, &value);
            const auto it = model.find(key);
            EXPECT_EQ(found, it != model.end());
            if (found)
                EXPECT_EQ(value, it->second);
        }
        if (step % 64 == 0) {
            ASSERT_GE(tree.checkInvariants(), 0)
                << "red-black invariant violated at step " << step;
        }
    }
    ASSERT_GE(tree.checkInvariants(), 0);
    EXPECT_EQ(tree.size(c), model.size());

    std::vector<std::uint64_t> tree_keys;
    tree.forEach(c, [&](std::uint64_t k, std::uint64_t) {
        tree_keys.push_back(k);
    });
    std::vector<std::uint64_t> model_keys;
    for (const auto& [k, v] : model)
        model_keys.push_back(k);
    EXPECT_EQ(tree_keys, model_keys);
}

TEST(TmRbTreeSeq, CeilingQueries)
{
    DirectContext c;
    TmRbTree tree;
    for (std::uint64_t k : {10, 20, 30, 40})
        tree.insert(c, k, k);
    std::uint64_t key = 0;
    EXPECT_TRUE(tree.findCeiling(c, 15, &key));
    EXPECT_EQ(key, 20u);
    EXPECT_TRUE(tree.findCeiling(c, 20, &key));
    EXPECT_EQ(key, 20u);
    EXPECT_TRUE(tree.findCeiling(c, 1, &key));
    EXPECT_EQ(key, 10u);
    EXPECT_FALSE(tree.findCeiling(c, 41, &key));
}

// ------------------------------------------------------------------
// Concurrent behaviour under the HTM runtime, on all four machines
// ------------------------------------------------------------------

class TmdsConcurrent
    : public ::testing::TestWithParam<unsigned>
{
  protected:
    const MachineConfig& machine() const
    {
        return MachineConfig::all()[GetParam()];
    }
};

TEST_P(TmdsConcurrent, HashTableDisjointInserts)
{
    sim::Scheduler scheduler;
    Runtime runtime(quietConfig(machine()), 4);
    TmHashTable<> table(256);
    constexpr std::uint64_t per_thread = 200;
    for (unsigned t = 0; t < 4; ++t) {
        scheduler.spawn([&, t](sim::ThreadContext& ctx) {
            for (std::uint64_t i = 0; i < per_thread; ++i) {
                const std::uint64_t key = t * per_thread + i;
                runtime.atomic(ctx, [&](Tx& tx) {
                    table.insert(tx, key, key + 1);
                });
            }
        });
    }
    scheduler.run();
    DirectContext c;
    EXPECT_EQ(table.size(c), 4 * per_thread);
    for (std::uint64_t key = 0; key < 4 * per_thread; ++key) {
        std::uint64_t value = 0;
        ASSERT_TRUE(table.find(c, key, &value)) << "key " << key;
        EXPECT_EQ(value, key + 1);
    }
}

TEST_P(TmdsConcurrent, HashTableContendedMixedOps)
{
    sim::Scheduler scheduler;
    Runtime runtime(quietConfig(machine()), 4);
    TmHashTable<> table(32);
    // Pre-populate.
    DirectContext direct;
    for (std::uint64_t k = 0; k < 50; ++k)
        table.insert(direct, k, 0);

    std::array<std::int64_t, 4> net_inserts{};
    for (unsigned t = 0; t < 4; ++t) {
        scheduler.spawn([&, t](sim::ThreadContext& ctx) {
            for (int i = 0; i < 150; ++i) {
                const std::uint64_t key = ctx.rng().nextRange(100);
                const bool do_insert = ctx.rng().nextBool(0.5);
                // Record the outcome idempotently: the body may run
                // several times (retries), so it must only overwrite.
                bool changed = false;
                runtime.atomic(ctx, [&](Tx& tx) {
                    changed = do_insert ? table.insert(tx, key, key)
                                        : table.remove(tx, key);
                });
                if (changed)
                    net_inserts[t] += do_insert ? 1 : -1;
            }
        });
    }
    scheduler.run();
    const std::int64_t net = net_inserts[0] + net_inserts[1] +
                             net_inserts[2] + net_inserts[3];
    EXPECT_EQ(std::int64_t(table.size(direct)), 50 + net);
}

TEST_P(TmdsConcurrent, RbTreeContendedMixedOpsKeepInvariants)
{
    sim::Scheduler scheduler;
    Runtime runtime(quietConfig(machine()), 4);
    TmRbTree tree;
    DirectContext direct;
    for (std::uint64_t k = 0; k < 100; k += 2)
        tree.insert(direct, k, k);

    for (unsigned t = 0; t < 4; ++t) {
        scheduler.spawn([&](sim::ThreadContext& ctx) {
            for (int i = 0; i < 120; ++i) {
                const std::uint64_t key = ctx.rng().nextRange(150);
                const bool do_insert = ctx.rng().nextBool(0.5);
                runtime.atomic(ctx, [&](Tx& tx) {
                    if (do_insert)
                        tree.insert(tx, key, key);
                    else
                        tree.remove(tx, key);
                });
            }
        });
    }
    scheduler.run();
    EXPECT_GE(tree.checkInvariants(), 0);
}

TEST_P(TmdsConcurrent, QueueProducersConsumers)
{
    sim::Scheduler scheduler;
    Runtime runtime(quietConfig(machine()), 4);
    TmQueue queue(16);
    constexpr std::uint64_t items_per_producer = 150;
    std::vector<std::uint64_t> consumed;
    std::uint64_t producers_done = 0;

    for (unsigned t = 0; t < 2; ++t) {
        scheduler.spawn([&, t](sim::ThreadContext& ctx) {
            for (std::uint64_t i = 0; i < items_per_producer; ++i) {
                const std::uint64_t item =
                    t * items_per_producer + i + 1;
                runtime.atomic(ctx, [&](Tx& tx) {
                    queue.push(tx, item);
                });
            }
            runtime.nonTxFetchAdd(ctx, &producers_done,
                                  std::uint64_t(1));
        });
    }
    for (unsigned t = 0; t < 2; ++t) {
        scheduler.spawn([&](sim::ThreadContext& ctx) {
            for (;;) {
                std::uint64_t item = 0;
                bool got = false;
                runtime.atomic(ctx, [&](Tx& tx) {
                    got = queue.pop(tx, &item);
                });
                if (got) {
                    consumed.push_back(item);
                } else if (runtime.nonTxLoad(ctx, &producers_done) ==
                           2) {
                    break;
                } else {
                    ctx.step(200);
                }
            }
        });
    }
    scheduler.run();
    EXPECT_EQ(consumed.size(), 2 * items_per_producer);
    std::sort(consumed.begin(), consumed.end());
    EXPECT_TRUE(std::adjacent_find(consumed.begin(), consumed.end()) ==
                consumed.end())
        << "duplicate consumption";
}

TEST_P(TmdsConcurrent, HeapConcurrentInsertPop)
{
    sim::Scheduler scheduler;
    Runtime runtime(quietConfig(machine()), 4);
    TmHeap<MaxCompare> heap(16);
    std::uint64_t popped_count = 0;
    constexpr int per_thread = 80;

    for (unsigned t = 0; t < 4; ++t) {
        scheduler.spawn([&](sim::ThreadContext& ctx) {
            for (int i = 0; i < per_thread; ++i) {
                const std::uint64_t v = 1 + ctx.rng().nextRange(1000);
                runtime.atomic(ctx, [&](Tx& tx) {
                    heap.insert(tx, v);
                });
                if (i % 2 == 1) {
                    bool popped = false;
                    runtime.atomic(ctx, [&](Tx& tx) {
                        std::uint64_t out = 0;
                        popped = heap.popMax(tx, &out);
                    });
                    if (popped)
                        ++popped_count;
                }
            }
        });
    }
    scheduler.run();
    DirectContext c;
    EXPECT_EQ(heap.size(c) + popped_count, 4u * per_thread);
    // Remaining elements still drain in priority order.
    std::uint64_t previous = ~std::uint64_t(0);
    std::uint64_t out = 0;
    while (heap.popMax(c, &out)) {
        EXPECT_LE(out, previous);
        previous = out;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, TmdsConcurrent, ::testing::Range(0u, 4u),
    [](const ::testing::TestParamInfo<unsigned>& info) {
        switch (info.param) {
          case 0: return "BlueGeneQ";
          case 1: return "zEC12";
          case 2: return "IntelCore";
          default: return "POWER8";
        }
    });

} // namespace

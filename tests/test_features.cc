/**
 * @file
 * Tests for the processor-specific feature studies (paper Section 6):
 * the concurrent queue with constrained transactions (zEC12), HLE
 * (Intel Core), and TLS with suspend/resume (POWER8).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "clq/concurrent_queue.hh"
#include "htm/hle.hh"
#include "sim/sim.hh"
#include "tls/tls.hh"

namespace
{

using namespace htmsim;
using namespace htmsim::htm;
using namespace htmsim::clq;
using namespace htmsim::tls;

RuntimeConfig
zConfig()
{
    MachineConfig machine = MachineConfig::zEC12();
    machine.cacheFetchAbortProb = 0.0;
    return RuntimeConfig(std::move(machine));
}

class QueueModes : public ::testing::TestWithParam<QueueMode>
{
};

TEST_P(QueueModes, FifoUnderConcurrency)
{
    const QueueMode mode = GetParam();
    sim::Scheduler scheduler;
    Runtime runtime(zConfig(), 4);
    ConcurrentQueue queue;
    constexpr std::uint64_t per_thread = 120;
    std::vector<std::vector<std::uint64_t>> popped(4);

    for (unsigned t = 0; t < 4; ++t) {
        scheduler.spawn([&, t](sim::ThreadContext& ctx) {
            for (std::uint64_t i = 0; i < per_thread; ++i) {
                const std::uint64_t tag = (std::uint64_t(t) << 32) | i;
                queue.enqueue(runtime, ctx, tag, mode, 6);
                std::uint64_t out = 0;
                if (queue.dequeue(runtime, ctx, &out, mode, 6))
                    popped[t].push_back(out);
            }
        });
    }
    scheduler.run();

    // Drain whatever is left.
    sim::Scheduler drainer;
    std::vector<std::uint64_t> leftover;
    drainer.spawn([&](sim::ThreadContext& ctx) {
        std::uint64_t out = 0;
        while (queue.dequeue(runtime, ctx, &out, QueueMode::lockFree, 1))
            leftover.push_back(out);
    });
    drainer.run();

    // Every enqueued tag must be dequeued exactly once.
    std::vector<std::uint64_t> all = leftover;
    for (const auto& items : popped)
        all.insert(all.end(), items.begin(), items.end());
    ASSERT_EQ(all.size(), 4 * per_thread);
    std::sort(all.begin(), all.end());
    EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) ==
                all.end());

    // Per-thread FIFO: each thread's own tags leave in order.
    std::vector<std::vector<std::uint64_t>> per_source(4);
    for (const auto& items : popped) {
        for (const std::uint64_t tag : items)
            per_source[tag >> 32].push_back(tag & 0xffffffffu);
    }
    for (const std::uint64_t tag : leftover)
        per_source[tag >> 32].push_back(tag & 0xffffffffu);
    for (unsigned t = 0; t < 4; ++t) {
        // Tags from one producer appear in increasing order overall
        // only per consumer; at least check the full multiset.
        std::sort(per_source[t].begin(), per_source[t].end());
        for (std::uint64_t i = 0; i < per_source[t].size(); ++i)
            EXPECT_EQ(per_source[t][i], i);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, QueueModes,
    ::testing::Values(QueueMode::lockFree, QueueMode::noRetryTm,
                      QueueMode::optRetryTm, QueueMode::constrainedTm),
    [](const ::testing::TestParamInfo<QueueMode>& info) {
        switch (info.param) {
          case QueueMode::lockFree: return "LockFree";
          case QueueMode::noRetryTm: return "NoRetryTM";
          case QueueMode::optRetryTm: return "OptRetryTM";
          default: return "ConstrainedTM";
        }
    });

TEST(QueueConstrained, NoLockFallbackInStats)
{
    sim::Scheduler scheduler;
    Runtime runtime(zConfig(), 4);
    ConcurrentQueue queue;
    for (unsigned t = 0; t < 4; ++t) {
        scheduler.spawn([&](sim::ThreadContext& ctx) {
            for (int i = 0; i < 100; ++i) {
                queue.enqueue(runtime, ctx, 7,
                              QueueMode::constrainedTm, 0);
                std::uint64_t out = 0;
                queue.dequeue(runtime, ctx, &out,
                              QueueMode::constrainedTm, 0);
            }
        });
    }
    scheduler.run();
    const TxStats stats = runtime.stats();
    EXPECT_GE(stats.constrainedCommits, 800u);
    EXPECT_EQ(stats.irrevocableCommits, 0u);
}

TEST(Hle, ElisionRunsConcurrentlyAndFallsBackCorrectly)
{
    RuntimeConfig config(MachineConfig::intelCore());
    config.machine.prefetchConflictProb = 0.0;
    sim::Scheduler scheduler;
    Runtime runtime(config, 4);
    HleLock lock;
    alignas(64) static std::uint64_t counter;
    counter = 0;
    for (unsigned t = 0; t < 4; ++t) {
        scheduler.spawn([&](sim::ThreadContext& ctx) {
            for (int i = 0; i < 150; ++i) {
                lock.execute(runtime, ctx, [&](Tx& tx) {
                    tx.store(&counter, tx.load(&counter) + 1);
                    tx.work(30);
                });
            }
        });
    }
    scheduler.run();
    EXPECT_EQ(counter, 600u);
    const TxStats stats = runtime.stats();
    EXPECT_EQ(stats.totalCommits(), 600u);
}

TEST(Hle, DisjointSectionsRunWithoutSerialization)
{
    RuntimeConfig config(MachineConfig::intelCore());
    config.machine.prefetchConflictProb = 0.0;
    sim::Scheduler scheduler;
    Runtime runtime(config, 4);
    HleLock lock;
    struct alignas(256) Slot
    {
        std::uint64_t value;
    };
    static Slot slots[4];
    for (auto& slot : slots)
        slot.value = 0;
    for (unsigned t = 0; t < 4; ++t) {
        scheduler.spawn([&, t](sim::ThreadContext& ctx) {
            for (int i = 0; i < 100; ++i) {
                lock.execute(runtime, ctx, [&](Tx& tx) {
                    tx.store(&slots[t].value,
                             tx.load(&slots[t].value) + 1);
                });
            }
        });
    }
    scheduler.run();
    for (const auto& slot : slots)
        EXPECT_EQ(slot.value, 100u);
    // Elision should succeed essentially always on disjoint data.
    EXPECT_EQ(runtime.stats().irrevocableCommits, 0u);
}

TEST(Hle, GeneralizedElisionOutsideIntel)
{
    // POWER8 lacks native HLE but supports the generalized
    // transactional-lock-elision idiom (Machine::supportsElision()):
    // execute() elides rather than throwing.
    RuntimeConfig config(MachineConfig::power8());
    sim::Scheduler scheduler;
    Runtime runtime(config, 1);
    HleLock lock;
    std::uint64_t counter = 0;
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        lock.execute(runtime, ctx, [&](Tx& tx) {
            tx.store(&counter, tx.load(&counter) + 1);
        });
    });
    scheduler.run();
    EXPECT_EQ(counter, 1u);
    EXPECT_EQ(runtime.stats().htmCommits, 1u);
    EXPECT_FALSE(lock.held());
}

class TlsVariants : public ::testing::TestWithParam<bool>
{
};

TEST_P(TlsVariants, ReproducesSequentialResult)
{
    const bool use_suspend = GetParam();
    TlsParams params = TlsParams::sphinxLike();
    params.iterations = 120;
    TlsKernel kernel(params);
    RuntimeConfig config(MachineConfig::power8());
    const TlsResult result = kernel.runTls(config, 4, use_suspend, 1);
    EXPECT_TRUE(result.valid)
        << "ordered TLS must match the sequential result exactly";
}

INSTANTIATE_TEST_SUITE_P(BothVariants, TlsVariants,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                             return info.param ? "WithSuspendResume"
                                               : "WithoutSuspendResume";
                         });

TEST(Tls, SuspendResumeSlashesAbortRatio)
{
    TlsParams params = TlsParams::sphinxLike();
    params.iterations = 240;
    RuntimeConfig config(MachineConfig::power8());

    TlsKernel kernel_a(params);
    const TlsResult without = kernel_a.runTls(config, 4, false, 1);
    TlsKernel kernel_b(params);
    const TlsResult with = kernel_b.runTls(config, 4, true, 1);

    ASSERT_TRUE(without.valid);
    ASSERT_TRUE(with.valid);
    EXPECT_GT(without.abortRatio, 0.3)
        << "in-transaction order spinning must abort heavily";
    EXPECT_LT(with.abortRatio, 0.1)
        << "suspend/resume should nearly eliminate order aborts";
    EXPECT_LT(with.cycles, without.cycles);
}

TEST(Tls, SpeedupOverSequential)
{
    TlsParams params = TlsParams::sphinxLike();
    RuntimeConfig config(MachineConfig::power8());
    TlsKernel kernel(params);
    const sim::Cycles seq =
        kernel.runSequential(config.machine, 1);
    TlsKernel kernel2(params);
    const TlsResult tls = kernel2.runTls(config, 4, true, 1);
    ASSERT_TRUE(tls.valid);
    EXPECT_GT(double(seq) / double(tls.cycles), 1.05)
        << "TLS with suspend/resume should beat sequential";
}

TEST(Tls, RequiresSuspendSupportForVariantB)
{
    TlsParams params;
    params.iterations = 16;
    TlsKernel kernel(params);
    RuntimeConfig config(MachineConfig::intelCore());
    EXPECT_THROW(kernel.runTls(config, 2, true, 1), std::logic_error);
    // Variant A (no suspend) works on any machine.
    config.machine.prefetchConflictProb = 0.0;
    const TlsResult result = kernel.runTls(config, 2, false, 1);
    EXPECT_TRUE(result.valid);
}

} // namespace

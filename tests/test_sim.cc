/**
 * @file
 * Unit tests for the simulation substrate: fibers, scheduler ordering,
 * virtual time, barriers, spin locks, and determinism.
 */

#include <gtest/gtest.h>

#include <array>
#include <utility>
#include <vector>

#include "sim/sim.hh"

namespace
{

using namespace htmsim::sim;

TEST(Fiber, RunsBodyToCompletion)
{
    int state = 0;
    Fiber fiber([&] {
        state = 1;
        Fiber::yieldToOwner();
        state = 2;
    });
    EXPECT_FALSE(fiber.finished());
    fiber.resume();
    EXPECT_EQ(state, 1);
    EXPECT_FALSE(fiber.finished());
    fiber.resume();
    EXPECT_EQ(state, 2);
    EXPECT_TRUE(fiber.finished());
}

TEST(Fiber, PropagatesExceptions)
{
    Fiber fiber([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(fiber.resume(), std::runtime_error);
    EXPECT_TRUE(fiber.finished());
}

TEST(Scheduler, SingleThreadAccumulatesTime)
{
    Scheduler scheduler;
    scheduler.spawn([](ThreadContext& ctx) {
        ctx.step(100);
        ctx.step(50);
    });
    scheduler.run();
    EXPECT_EQ(scheduler.makespan(), 150u);
}

TEST(Scheduler, RunsLowestClockFirst)
{
    // Thread 0 takes big steps, thread 1 small steps; events must
    // interleave in virtual-time order.
    std::vector<std::pair<unsigned, Cycles>> events;
    Scheduler scheduler;
    scheduler.spawn([&](ThreadContext& ctx) {
        for (int i = 0; i < 3; ++i) {
            ctx.step(100);
            events.push_back({0, ctx.now()});
        }
    });
    scheduler.spawn([&](ThreadContext& ctx) {
        for (int i = 0; i < 6; ++i) {
            ctx.step(50);
            events.push_back({1, ctx.now()});
        }
    });
    scheduler.run();
    ASSERT_EQ(events.size(), 9u);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].second, events[i].second)
            << "event " << i << " out of virtual-time order";
}

TEST(Scheduler, MakespanIsMaxOfFinishTimes)
{
    Scheduler scheduler;
    scheduler.spawn([](ThreadContext& ctx) { ctx.step(500); });
    scheduler.spawn([](ThreadContext& ctx) { ctx.step(200); });
    scheduler.run();
    EXPECT_EQ(scheduler.makespan(), 500u);
    EXPECT_EQ(scheduler.finishTime(0), 500u);
    EXPECT_EQ(scheduler.finishTime(1), 200u);
    EXPECT_EQ(scheduler.totalThreadTime(), 700u);
}

TEST(Scheduler, BlockAndWake)
{
    Scheduler scheduler;
    bool flag = false;
    unsigned sleeper_tid = 0;
    sleeper_tid = scheduler.spawn([&](ThreadContext& ctx) {
        ctx.block();
        EXPECT_TRUE(flag);
        // Clock must have been pulled up to at least the waker's time.
        EXPECT_GE(ctx.now(), 1000u);
    });
    scheduler.spawn([&](ThreadContext& ctx) {
        ctx.step(1000);
        flag = true;
        ctx.scheduler().wake(sleeper_tid, ctx.now());
    });
    scheduler.run();
}

TEST(Scheduler, DeadlockDetected)
{
    Scheduler scheduler;
    scheduler.spawn([](ThreadContext& ctx) { ctx.block(); });
    EXPECT_THROW(scheduler.run(), SimError);
}

TEST(Scheduler, SpinUntilLivelockGuard)
{
    // A spin on a condition nobody will ever satisfy must error out
    // rather than hang (guard is large; use a tiny custom loop here).
    Scheduler scheduler;
    scheduler.spawn([](ThreadContext& ctx) {
        bool never = false;
        EXPECT_THROW(
            {
                std::uint64_t probes = 0;
                while (!never) {
                    ctx.advance(10);
                    ctx.yieldNow();
                    if (++probes > 1000)
                        throw SimError("livelock");
                }
            },
            SimError);
    });
    scheduler.run();
}

TEST(Scheduler, DeterministicAcrossRuns)
{
    auto run_once = [] {
        std::vector<std::uint64_t> trace;
        Scheduler scheduler(42);
        for (unsigned t = 0; t < 4; ++t) {
            scheduler.spawn([&](ThreadContext& ctx) {
                for (int i = 0; i < 50; ++i) {
                    ctx.step(1 + ctx.rng().nextRange(100));
                    trace.push_back(ctx.id() * 1000000 + ctx.now());
                }
            });
        }
        scheduler.run();
        return trace;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Scheduler, BatchingPreservesEventOrder)
{
    // Epoch batching elides only provably no-op scheduling points, so
    // the globally visible event order must be identical with the
    // sync() fast path on and off.
    auto run_once = [](bool batch) {
        std::vector<std::uint64_t> trace;
        Scheduler scheduler(42);
        scheduler.setBatching(batch);
        for (unsigned t = 0; t < 4; ++t) {
            scheduler.spawn([&](ThreadContext& ctx) {
                for (int i = 0; i < 50; ++i) {
                    ctx.step(1 + ctx.rng().nextRange(100));
                    trace.push_back(ctx.id() * 1000000 + ctx.now());
                }
            });
        }
        scheduler.run();
        return trace;
    };
    EXPECT_EQ(run_once(true), run_once(false));
}

namespace
{
/// Records every scheduling point it is consulted at (schedule format
/// v2: exactly one draw per point), optionally perturbing the clock.
class RecordingPerturber : public SchedulePerturber
{
  public:
    explicit RecordingPerturber(bool perturb) : perturb_(perturb) {}

    Cycles
    preemptDelay(unsigned tid, Cycles now) override
    {
        points.push_back({tid, now});
        return perturb_ ? (points.size() * 7) % 3 : 0;
    }

    std::vector<std::pair<unsigned, Cycles>> points;

  private:
    bool perturb_;
};
} // namespace

TEST(Scheduler, PerturberDrawsExactlyOncePerSchedulingPoint)
{
    // Two threads, each issuing a known number of scheduling points:
    // 40 step()s (one sync each) plus one explicit yieldNow(). The
    // per-thread draw count must equal the point count exactly — the
    // historical hazard was sync() drawing a second time when the
    // point actually yielded.
    RecordingPerturber perturber(true);
    Scheduler scheduler(7);
    for (unsigned t = 0; t < 2; ++t) {
        scheduler.spawn([&](ThreadContext& ctx) {
            for (int i = 0; i < 40; ++i)
                ctx.step(1 + ctx.rng().nextRange(8));
            ctx.yieldNow();
        });
    }
    scheduler.setPerturber(&perturber);
    scheduler.run();
    scheduler.setPerturber(nullptr);

    std::array<unsigned, 2> draws{};
    for (const auto& [tid, now] : perturber.points)
        draws[tid]++;
    EXPECT_EQ(draws[0], 41u);
    EXPECT_EQ(draws[1], 41u);
}

TEST(Scheduler, PerturberPointIndicesMatchBatchedAndUnbatched)
{
    // A registered perturber disables the lease fast path, so batching
    // must not elide (or reorder) any consulted point: the full
    // (tid, clock) sequence — and with it every per-thread point
    // index — must be identical across the two modes. FuzzScheduler
    // seeds and recorded schedules rely on this.
    auto run_once = [](bool batch) {
        RecordingPerturber perturber(true);
        Scheduler scheduler(7);
        scheduler.setBatching(batch);
        for (unsigned t = 0; t < 3; ++t) {
            scheduler.spawn([&](ThreadContext& ctx) {
                for (int i = 0; i < 30; ++i)
                    ctx.step(1 + ctx.rng().nextRange(16));
            });
        }
        scheduler.setPerturber(&perturber);
        scheduler.run();
        scheduler.setPerturber(nullptr);
        return perturber.points;
    };
    EXPECT_EQ(run_once(true), run_once(false));
}

TEST(Rng, DeterministicStreams)
{
    Rng a(7, 0), b(7, 0), c(7, 1);
    EXPECT_EQ(a.nextU64(), b.nextU64());
    EXPECT_NE(a.nextU64(), c.nextU64());
}

TEST(Rng, RangeAndDoubleBounds)
{
    Rng rng(123);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextRange(17), 17u);
        const double value = rng.nextDouble();
        EXPECT_GE(value, 0.0);
        EXPECT_LT(value, 1.0);
    }
}

TEST(Rng, BernoulliRoughlyCalibrated)
{
    Rng rng(99);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(double(hits) / trials, 0.3, 0.02);
}

TEST(Barrier, AlignsClocks)
{
    Scheduler scheduler;
    Barrier barrier(3);
    std::vector<Cycles> after(3);
    for (unsigned t = 0; t < 3; ++t) {
        scheduler.spawn([&, t](ThreadContext& ctx) {
            ctx.step(100 * (t + 1)); // 100, 200, 300
            barrier.arrive(ctx);
            after[ctx.id()] = ctx.now();
        });
    }
    scheduler.run();
    for (unsigned t = 0; t < 3; ++t)
        EXPECT_EQ(after[t], 300u + Barrier::releaseCost);
}

TEST(Barrier, Reusable)
{
    Scheduler scheduler;
    Barrier barrier(2);
    int phase_sum = 0;
    for (unsigned t = 0; t < 2; ++t) {
        scheduler.spawn([&](ThreadContext& ctx) {
            for (int round = 0; round < 5; ++round) {
                ctx.step(10 + ctx.rng().nextRange(50));
                barrier.arrive(ctx);
                ++phase_sum;
            }
        });
    }
    scheduler.run();
    EXPECT_EQ(phase_sum, 10);
}

TEST(SpinLock, MutualExclusionAndTime)
{
    Scheduler scheduler;
    SpinLock lock;
    int counter = 0;
    for (unsigned t = 0; t < 4; ++t) {
        scheduler.spawn([&](ThreadContext& ctx) {
            for (int i = 0; i < 100; ++i) {
                lock.acquire(ctx);
                EXPECT_EQ(lock.holder(), int(ctx.id()));
                const int read = counter;
                ctx.step(25); // critical-section work
                counter = read + 1;
                lock.release(ctx);
            }
        });
    }
    scheduler.run();
    EXPECT_EQ(counter, 400);
    // 400 serialized critical sections of >= 25 cycles each.
    EXPECT_GE(scheduler.makespan(), 400u * 25u);
}

TEST(SpinLock, SerializesInVirtualTime)
{
    // Two threads each hold the lock for 1000 cycles; the makespan
    // must be at least 2000 even though each thread only does 1000.
    Scheduler scheduler;
    SpinLock lock;
    for (unsigned t = 0; t < 2; ++t) {
        scheduler.spawn([&](ThreadContext& ctx) {
            lock.acquire(ctx);
            ctx.step(1000);
            lock.release(ctx);
        });
    }
    scheduler.run();
    EXPECT_GE(scheduler.makespan(), 2000u);
}

TEST(RunThreads, HelperReturnsMakespan)
{
    const Cycles makespan = runThreads(
        3, 1, [](ThreadContext& ctx) { ctx.step(100 * (ctx.id() + 1)); });
    EXPECT_EQ(makespan, 300u);
}

} // namespace

/**
 * @file
 * Property-based sweeps: atomicity, isolation and conservation
 * invariants must hold for every (machine, thread count, conflict
 * policy) combination, with randomized workloads.
 */

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "htm/context.hh"
#include "htm/flat_table.hh"
#include "htm/runtime.hh"
#include "sim/sim.hh"
#include "tmds/tm_hashtable.hh"
#include "tmds/tm_rbtree.hh"

namespace
{

using namespace htmsim;
using namespace htmsim::htm;

using Sweep = std::tuple<unsigned /*machine*/, unsigned /*threads*/,
                         ConflictPolicy>;

class HtmProperty : public ::testing::TestWithParam<Sweep>
{
  protected:
    RuntimeConfig
    config() const
    {
        MachineConfig machine =
            MachineConfig::all()[std::get<0>(GetParam())];
        RuntimeConfig result{std::move(machine)};
        result.policy = std::get<2>(GetParam());
        return result;
    }

    unsigned threads() const { return std::get<1>(GetParam()); }
};

TEST_P(HtmProperty, MoneyConservation)
{
    // Random transfers between padded accounts: the total is invariant
    // under atomic execution, whatever the machine or policy.
    constexpr unsigned accounts = 24;
    constexpr std::uint64_t initial = 500;
    static std::vector<std::uint64_t> balances;
    balances.assign(accounts * 32, 0);
    for (unsigned i = 0; i < accounts; ++i)
        balances[std::size_t(i) * 32] = initial;

    sim::Scheduler scheduler(17);
    Runtime runtime(config(), threads());
    for (unsigned t = 0; t < threads(); ++t) {
        scheduler.spawn([&](sim::ThreadContext& ctx) {
            for (int i = 0; i < 120; ++i) {
                const unsigned from =
                    unsigned(ctx.rng().nextRange(accounts));
                const unsigned to =
                    unsigned(ctx.rng().nextRange(accounts));
                const std::uint64_t amount =
                    1 + ctx.rng().nextRange(30);
                runtime.atomic(ctx, [&](Tx& tx) {
                    std::uint64_t* src =
                        &balances[std::size_t(from) * 32];
                    std::uint64_t* dst =
                        &balances[std::size_t(to) * 32];
                    const std::uint64_t have = tx.load(src);
                    if (have < amount)
                        return;
                    tx.store(src, have - amount);
                    tx.store(dst, tx.load(dst) + amount);
                });
            }
        });
    }
    scheduler.run();

    std::uint64_t total = 0;
    for (unsigned i = 0; i < accounts; ++i)
        total += balances[std::size_t(i) * 32];
    EXPECT_EQ(total, accounts * initial);
}

TEST_P(HtmProperty, ReadYourOwnWritesAndIsolation)
{
    // Inside a transaction, reads observe the transaction's own
    // stores; other threads never observe a half-applied pair.
    static struct alignas(256) Pair
    {
        std::uint64_t a;
        char pad[248 - 8];
        std::uint64_t b;
    } pair;
    pair.a = 0;
    pair.b = 0;

    sim::Scheduler scheduler(23);
    Runtime runtime(config(), threads());
    bool tear_seen = false;
    for (unsigned t = 0; t < threads(); ++t) {
        scheduler.spawn([&, t](sim::ThreadContext& ctx) {
            for (int i = 0; i < 80; ++i) {
                if (t % 2 == 0) {
                    runtime.atomic(ctx, [&](Tx& tx) {
                        const std::uint64_t next =
                            tx.load(&pair.a) + 1;
                        tx.store(&pair.a, next);
                        EXPECT_EQ(tx.load(&pair.a), next)
                            << "read-your-own-writes violated";
                        tx.work(60);
                        tx.store(&pair.b, next);
                    });
                } else {
                    runtime.atomic(ctx, [&](Tx& tx) {
                        const std::uint64_t a = tx.load(&pair.a);
                        tx.work(30);
                        const std::uint64_t b = tx.load(&pair.b);
                        if (a != b)
                            tear_seen = true;
                    });
                }
            }
        });
    }
    scheduler.run();
    EXPECT_FALSE(tear_seen) << "a reader observed a torn pair";
    EXPECT_EQ(pair.a, pair.b);
}

TEST_P(HtmProperty, HashTableMatchesSequentialModel)
{
    // Apply a deterministic per-thread op stream transactionally,
    // then replay the same ops against std::map per thread and check
    // the final content is *a* linearization: since each thread's ops
    // target disjoint key ranges, the result must match exactly.
    tmds::TmHashTable<> table(64);
    sim::Scheduler scheduler(31);
    Runtime runtime(config(), threads());
    std::vector<std::map<std::uint64_t, std::uint64_t>> models(
        threads());

    for (unsigned t = 0; t < threads(); ++t) {
        scheduler.spawn([&, t](sim::ThreadContext& ctx) {
            sim::Rng script(1000 + t);
            for (int i = 0; i < 150; ++i) {
                const std::uint64_t key =
                    t * 1000 + script.nextRange(60);
                const unsigned op = unsigned(script.nextRange(3));
                bool did = false;
                runtime.atomic(ctx, [&](Tx& tx) {
                    if (op == 0)
                        did = table.insert(tx, key, key * 7);
                    else if (op == 1)
                        did = table.remove(tx, key);
                    else
                        did = table.update(tx, key, key * 13);
                });
                auto& model = models[t];
                if (op == 0 && did)
                    model.emplace(key, key * 7);
                else if (op == 1 && did)
                    model.erase(key);
                else if (op == 2 && did)
                    model[key] = key * 13;
            }
        });
    }
    scheduler.run();

    DirectContext direct;
    std::size_t total_model = 0;
    for (unsigned t = 0; t < threads(); ++t) {
        for (const auto& [key, value] : models[t]) {
            std::uint64_t found = 0;
            ASSERT_TRUE(table.find(direct, key, &found))
                << "key " << key << " missing";
            EXPECT_EQ(found, value);
        }
        total_model += models[t].size();
    }
    EXPECT_EQ(table.size(direct), total_model);
}

TEST_P(HtmProperty, RbTreeInvariantsSurviveChaos)
{
    tmds::TmRbTree tree;
    sim::Scheduler scheduler(41);
    Runtime runtime(config(), threads());
    for (unsigned t = 0; t < threads(); ++t) {
        scheduler.spawn([&](sim::ThreadContext& ctx) {
            for (int i = 0; i < 100; ++i) {
                const std::uint64_t key = ctx.rng().nextRange(128);
                const bool insert = ctx.rng().nextBool(0.6);
                runtime.atomic(ctx, [&](Tx& tx) {
                    if (insert)
                        tree.insert(tx, key, key);
                    else
                        tree.remove(tx, key);
                });
            }
        });
    }
    scheduler.run();
    EXPECT_GE(tree.checkInvariants(), 0);
}

std::string
sweepName(const ::testing::TestParamInfo<Sweep>& info)
{
    static const char* machines[] = {"BG", "z12", "IC", "P8"};
    static const char* policies[] = {"AttackerWins", "AttackerLoses",
                                     "OlderWins"};
    return std::string(machines[std::get<0>(info.param)]) + "_t" +
           std::to_string(std::get<1>(info.param)) + "_" +
           policies[unsigned(std::get<2>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HtmProperty,
    ::testing::Combine(
        ::testing::Range(0u, 4u), ::testing::Values(2u, 4u, 8u),
        ::testing::Values(ConflictPolicy::attackerWins,
                          ConflictPolicy::attackerLoses,
                          ConflictPolicy::olderWins)),
    sweepName);

TEST(FlatTableProperty, MatchesUnorderedMapUnderRandomOps)
{
    // Drive FlatTable and std::unordered_map with the same random
    // stream of insert/update, lookup and clear operations, in the
    // mix the transactional hot path produces (clustered line
    // numbers, frequent clears), and demand identical contents.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        sim::Rng rng(seed, 99);
        FlatTable<std::uint64_t, 8> table;
        std::unordered_map<std::uintptr_t, std::uint64_t> reference;

        for (unsigned op = 0; op < 20'000; ++op) {
            // Cluster keys the way line numbers cluster: a handful of
            // 64-line regions plus occasional far outliers.
            const std::uint64_t roll = rng.nextU64();
            std::uintptr_t key = (roll >> 8) % 6 * 0x10000 + (roll & 63);
            if (roll % 97 == 0)
                key += 0x900000 + roll % 1024;

            const unsigned action = roll % 100;
            if (action < 70) {
                bool inserted = false;
                std::uint64_t& value = table.insertOrFind(key, &inserted);
                EXPECT_EQ(inserted, !reference.count(key));
                value += roll;
                reference[key] += roll;
            } else if (action < 95) {
                const std::uint64_t* value = table.find(key);
                auto expected = reference.find(key);
                if (expected == reference.end()) {
                    EXPECT_EQ(value, nullptr);
                } else {
                    ASSERT_NE(value, nullptr);
                    EXPECT_EQ(*value, expected->second);
                }
            } else {
                table.clear();
                reference.clear();
            }
        }

        ASSERT_EQ(table.size(), reference.size());
        std::size_t visited = 0;
        table.forEach(
            [&](std::uintptr_t key, const std::uint64_t& value) {
                ++visited;
                auto expected = reference.find(key);
                ASSERT_NE(expected, reference.end()) << "key " << key;
                EXPECT_EQ(value, expected->second);
            });
        EXPECT_EQ(visited, reference.size());
    }
}

} // namespace

/**
 * @file
 * Integration tests for the STAMP ports: every app must verify under
 * the sequential baseline and under transactional execution on all
 * four machines, and the harness speed-up plumbing must behave.
 */

#include <gtest/gtest.h>

#include "stamp/genome/genome.hh"
#include "stamp/bayes/bayes.hh"
#include "stamp/harness.hh"
#include "stamp/intruder/intruder.hh"
#include "stamp/labyrinth/labyrinth.hh"
#include "stamp/yada/yada.hh"
#include "stamp/kmeans/kmeans.hh"
#include "stamp/ssca2/ssca2.hh"
#include "stamp/vacation/vacation.hh"

namespace
{

using namespace htmsim;
using namespace htmsim::stamp;

htm::RuntimeConfig
configFor(unsigned machine_index)
{
    return htm::RuntimeConfig(htm::MachineConfig::all()[machine_index]);
}

class StampOnMachine : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(StampOnMachine, KmeansVerifiesTmAndSeq)
{
    KmeansParams params = KmeansParams::highContention();
    params.numPoints = 256;
    params.iterations = 3;
    {
        KmeansApp app(params);
        const RunResult seq =
            runSequential(app, configFor(GetParam()).machine, 1);
        EXPECT_TRUE(seq.valid);
        EXPECT_GT(seq.cycles, 0u);
    }
    {
        KmeansApp app(params);
        const RunResult tm =
            runTransactional(app, configFor(GetParam()), 4, 1);
        EXPECT_TRUE(tm.valid);
        EXPECT_GT(tm.stats.totalCommits(), 0u);
    }
}

TEST_P(StampOnMachine, Ssca2VerifiesTmAndSeq)
{
    Ssca2Params params;
    params.numVertices = 128;
    params.numEdges = 512;
    {
        Ssca2App app(params);
        EXPECT_TRUE(
            runSequential(app, configFor(GetParam()).machine, 1).valid);
    }
    {
        Ssca2App app(params);
        const RunResult tm =
            runTransactional(app, configFor(GetParam()), 4, 1);
        EXPECT_TRUE(tm.valid);
        // Two transactions per edge (degree count + adjacency fill).
        EXPECT_EQ(tm.stats.totalCommits(), 2u * params.numEdges);
    }
}

TEST_P(StampOnMachine, GenomeVerifiesTmAndSeq)
{
    GenomeParams params = GenomeParams::tuned(
        htm::MachineConfig::all()[GetParam()].vendor);
    params.geneLength = 1024;
    params.extraDuplicates = 256;
    {
        GenomeApp app(params);
        EXPECT_TRUE(
            runSequential(app, configFor(GetParam()).machine, 1).valid);
    }
    {
        GenomeApp app(params);
        const RunResult tm =
            runTransactional(app, configFor(GetParam()), 4, 1);
        EXPECT_TRUE(tm.valid);
    }
}

TEST_P(StampOnMachine, VacationModifiedVerifiesTmAndSeq)
{
    VacationParams params = VacationParams::high();
    params.relationSize = 256;
    params.numCustomers = 64;
    params.totalTx = 400;
    {
        VacationApp app(params);
        EXPECT_TRUE(
            runSequential(app, configFor(GetParam()).machine, 1).valid);
    }
    {
        VacationApp app(params);
        const RunResult tm =
            runTransactional(app, configFor(GetParam()), 4, 1);
        EXPECT_TRUE(tm.valid);
    }
}

TEST_P(StampOnMachine, VacationOriginalVerifiesTm)
{
    VacationParams params = VacationParams::low();
    params.relationSize = 256;
    params.numCustomers = 64;
    params.totalTx = 300;
    VacationAppOriginal app(params);
    const RunResult tm =
        runTransactional(app, configFor(GetParam()), 4, 1);
    EXPECT_TRUE(tm.valid);
}

TEST_P(StampOnMachine, IntruderModifiedVerifiesTmAndSeq)
{
    IntruderParams params;
    params.numFlows = 96;
    {
        IntruderApp app(params);
        EXPECT_TRUE(
            runSequential(app, configFor(GetParam()).machine, 1).valid);
    }
    {
        IntruderApp app(params);
        const RunResult tm =
            runTransactional(app, configFor(GetParam()), 4, 1);
        EXPECT_TRUE(tm.valid);
    }
}

TEST_P(StampOnMachine, IntruderOriginalVerifiesTm)
{
    IntruderParams params;
    params.numFlows = 96;
    IntruderAppOriginal app(params);
    const RunResult tm =
        runTransactional(app, configFor(GetParam()), 4, 1);
    EXPECT_TRUE(tm.valid);
    EXPECT_EQ(app.attacksFound(), app.attacksInjected());
}

TEST_P(StampOnMachine, LabyrinthVerifiesTmAndSeq)
{
    LabyrinthParams params;
    params.width = 16;
    params.height = 16;
    params.numPaths = 10;
    {
        LabyrinthApp app(params);
        const RunResult seq =
            runSequential(app, configFor(GetParam()).machine, 1);
        EXPECT_TRUE(seq.valid);
        EXPECT_GT(app.routedCount(), 5u);
    }
    {
        LabyrinthApp app(params);
        const RunResult tm =
            runTransactional(app, configFor(GetParam()), 4, 1);
        EXPECT_TRUE(tm.valid);
        EXPECT_GT(app.routedCount(), 5u);
    }
}

TEST_P(StampOnMachine, YadaVerifiesTmAndSeq)
{
    YadaParams params;
    params.gridX = 6;
    params.gridY = 6;
    params.pointBudget = 60;
    {
        YadaApp app(params);
        const RunResult seq =
            runSequential(app, configFor(GetParam()).machine, 1);
        EXPECT_TRUE(seq.valid);
        EXPECT_GT(app.pointCount(), 49u)
            << "refinement should insert points";
    }
    {
        YadaApp app(params);
        const RunResult tm =
            runTransactional(app, configFor(GetParam()), 4, 1);
        EXPECT_TRUE(tm.valid);
        EXPECT_GT(app.pointCount(), 49u);
    }
}

TEST_P(StampOnMachine, BayesVerifiesTmAndSeq)
{
    BayesParams params;
    params.numVars = 10;
    params.numRecords = 128;
    {
        BayesApp app(params);
        const RunResult seq =
            runSequential(app, configFor(GetParam()).machine, 1);
        EXPECT_TRUE(seq.valid);
        EXPECT_GT(app.edgeCount(), 0u);
    }
    {
        BayesApp app(params);
        const RunResult tm =
            runTransactional(app, configFor(GetParam()), 4, 1);
        EXPECT_TRUE(tm.valid);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, StampOnMachine, ::testing::Range(0u, 4u),
    [](const ::testing::TestParamInfo<unsigned>& info) {
        switch (info.param) {
          case 0: return "BlueGeneQ";
          case 1: return "zEC12";
          case 2: return "IntelCore";
          default: return "POWER8";
        }
    });

TEST(Harness, SpeedupPositiveAndDeterministic)
{
    auto factory = [] {
        Ssca2Params params;
        params.numVertices = 128;
        params.numEdges = 768;
        return Ssca2App(params);
    };
    const htm::RuntimeConfig config(htm::MachineConfig::zEC12());
    const Speedup first = measureSpeedup(factory, config, 4, 1);
    const Speedup second = measureSpeedup(factory, config, 4, 1);
    EXPECT_TRUE(first.tm.valid);
    EXPECT_TRUE(first.seq.valid);
    EXPECT_GT(first.ratio, 0.5);
    EXPECT_LT(first.ratio, 8.0);
    // The simulation is exactly deterministic for a fixed memory
    // layout; repeated in-process runs may see different heap-chunk
    // alignments (malloc reuse) that shift cache-line straddling, so
    // repeats agree only to within a small tolerance.
    EXPECT_NEAR(first.ratio, second.ratio, 0.05 * first.ratio);
}

TEST(Harness, MoreThreadsHelpOnLowContentionWork)
{
    auto factory = [] {
        Ssca2Params params;
        params.numVertices = 512;
        params.numEdges = 2048;
        return Ssca2App(params);
    };
    const htm::RuntimeConfig config(htm::MachineConfig::zEC12());
    const Speedup one = measureSpeedup(factory, config, 1, 1);
    const Speedup four = measureSpeedup(factory, config, 4, 1);
    EXPECT_GT(four.ratio, one.ratio * 1.5)
        << "4 threads should clearly beat 1 on ssca2/zEC12";
}

} // namespace

/**
 * @file
 * Additional data-structure coverage: content-keyed hash policies
 * (genome's string segments), queue/heap growth inside transactions,
 * bitmap behaviour under HTM, and footprint characteristics that the
 * capacity model depends on.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "htm/context.hh"
#include "htm/runtime.hh"
#include "sim/sim.hh"
#include "tmds/tm_bitmap.hh"
#include "tmds/tm_hashtable.hh"
#include "tmds/tm_heap.hh"
#include "tmds/tm_queue.hh"
#include "tmds/tm_rbtree.hh"

namespace
{

using namespace htmsim;
using namespace htmsim::htm;
using namespace htmsim::tmds;

RuntimeConfig
quiet(MachineConfig machine)
{
    machine.cacheFetchAbortProb = 0.0;
    machine.prefetchConflictProb = 0.0;
    return RuntimeConfig(std::move(machine));
}

/** Genome-style policy: keys are pointers to 8-char strings, hashed
 *  and compared by content THROUGH the context. */
struct StringKey8
{
    template <typename Ctx>
    static std::uint64_t
    hash(Ctx& c, std::uint64_t key)
    {
        const char* chars = reinterpret_cast<const char*>(key);
        std::uint64_t h = 1469598103934665603ULL;
        for (unsigned i = 0; i < 8; ++i) {
            h ^= std::uint8_t(c.load(&chars[i]));
            h *= 1099511628211ULL;
        }
        return h;
    }

    template <typename Ctx>
    static bool
    equal(Ctx& c, std::uint64_t a, std::uint64_t b)
    {
        const char* sa = reinterpret_cast<const char*>(a);
        const char* sb = reinterpret_cast<const char*>(b);
        for (unsigned i = 0; i < 8; ++i) {
            if (c.load(&sa[i]) != c.load(&sb[i]))
                return false;
        }
        return true;
    }
};

TEST(StringKeyedTable, DeduplicatesByContentNotPointer)
{
    DirectContext c;
    TmHashTable<StringKey8> table(32);
    // Two distinct buffers, same content: the second insert must fail.
    char a[9] = "ACGTACGT";
    char b[9] = "ACGTACGT";
    char other[9] = "TTTTAAAA";
    EXPECT_TRUE(table.insert(
        c, reinterpret_cast<std::uint64_t>(a), 1));
    EXPECT_FALSE(table.insert(
        c, reinterpret_cast<std::uint64_t>(b), 2))
        << "equal content must collide even from another pointer";
    EXPECT_TRUE(table.insert(
        c, reinterpret_cast<std::uint64_t>(other), 3));
    EXPECT_EQ(table.size(c), 2u);

    std::uint64_t value = 0;
    EXPECT_TRUE(table.find(
        c, reinterpret_cast<std::uint64_t>(b), &value));
    EXPECT_EQ(value, 1u) << "lookup by content reaches a's entry";
}

TEST(StringKeyedTable, HashingChargesTransactionalFootprint)
{
    // Hashing an 8-byte key through a transaction must put the key's
    // line(s) into the read set — the genome fidelity property.
    RuntimeConfig config = quiet(MachineConfig::intelCore());
    config.collectTrace = true;
    sim::Scheduler scheduler;
    Runtime runtime(config, 1);
    TmHashTable<StringKey8> table(32);
    alignas(64) static char key[9] = "GGGGCCCC";
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        runtime.atomic(ctx, [&](Tx& tx) {
            table.insert(tx, reinterpret_cast<std::uint64_t>(key), 7);
        });
    });
    scheduler.run();
    const auto& samples = runtime.trace().samples();
    ASSERT_EQ(samples.size(), 1u);
    // At least: key line + bucket line + lock word.
    EXPECT_GE(samples[0].loadLines, 3u);
    EXPECT_GE(samples[0].storeLines, 1u);
}

TEST(QueueGrowth, GrowsInsideATransactionAtomically)
{
    // Fill a tiny queue beyond capacity inside one transaction; the
    // growth (new array, copy, free) must be all-or-nothing.
    sim::Scheduler scheduler;
    Runtime runtime(quiet(MachineConfig::intelCore()), 1);
    TmQueue queue(4);
    DirectContext direct;
    queue.push(direct, 1);
    queue.push(direct, 2);
    queue.push(direct, 3);

    bool aborted_once = false;
    scheduler.spawn([&](sim::ThreadContext& ctx) {
        runtime.atomic(ctx, [&](Tx& tx) {
            for (std::uint64_t v = 4; v <= 20; ++v)
                queue.push(tx, v);
            if (!aborted_once && !tx.isIrrevocable()) {
                aborted_once = true;
                tx.abortTx(); // growth must roll back completely
            }
        });
    });
    scheduler.run();
    EXPECT_TRUE(aborted_once);
    // After rollback + successful retry: 3 + 17 elements, FIFO order.
    for (std::uint64_t expected = 1; expected <= 20; ++expected) {
        std::uint64_t out = 0;
        ASSERT_TRUE(queue.pop(direct, &out));
        EXPECT_EQ(out, expected);
    }
    EXPECT_TRUE(queue.empty(direct));
}

struct MaxCompare
{
    template <typename Ctx>
    static int
    compare(Ctx&, std::uint64_t a, std::uint64_t b)
    {
        return a < b ? -1 : (a > b ? 1 : 0);
    }
};

TEST(HeapGrowth, GrowsUnderConcurrentInsertions)
{
    sim::Scheduler scheduler;
    Runtime runtime(quiet(MachineConfig::zEC12()), 4);
    TmHeap<MaxCompare> heap(2); // forces many growth steps
    for (unsigned t = 0; t < 4; ++t) {
        scheduler.spawn([&, t](sim::ThreadContext& ctx) {
            for (std::uint64_t i = 0; i < 50; ++i) {
                runtime.atomic(ctx, [&](Tx& tx) {
                    heap.insert(tx, t * 1000 + i);
                });
            }
        });
    }
    scheduler.run();
    DirectContext direct;
    EXPECT_EQ(heap.size(direct), 200u);
    std::uint64_t previous = ~std::uint64_t(0);
    std::uint64_t out = 0;
    while (heap.popMax(direct, &out)) {
        EXPECT_LE(out, previous);
        previous = out;
    }
}

TEST(BitmapUnderHtm, ConcurrentClaimingIsExclusive)
{
    // Threads race to claim bits; each bit must be won exactly once.
    sim::Scheduler scheduler;
    Runtime runtime(quiet(MachineConfig::power8()), 4);
    TmBitmap bitmap(256);
    std::vector<unsigned> wins(4, 0);
    for (unsigned t = 0; t < 4; ++t) {
        scheduler.spawn([&, t](sim::ThreadContext& ctx) {
            for (unsigned bit = 0; bit < 256; ++bit) {
                bool won = false;
                runtime.atomic(ctx, [&](Tx& tx) {
                    won = bitmap.set(tx, bit);
                });
                wins[t] += won ? 1 : 0;
            }
        });
    }
    scheduler.run();
    EXPECT_EQ(bitmap.countSet(), 256u);
    EXPECT_EQ(wins[0] + wins[1] + wins[2] + wins[3], 256u);
}

TEST(FootprintModel, TreeWalkTouchesOneLinePerNode)
{
    // The capacity story of vacation-original depends on tree walks
    // touching ~depth distinct lines; with 64-byte padded nodes in
    // the 256-byte-granular pool, that must hold on POWER8 (128 B).
    RuntimeConfig config = quiet(MachineConfig::power8());
    config.collectTrace = true;
    config.ignoreCapacity = true;
    sim::Scheduler scheduler;
    Runtime runtime(config, 1);
    tmds::TmRbTree tree;
    DirectContext direct;
    for (std::uint64_t k = 0; k < 512; ++k)
        tree.insert(direct, k * 2654435761u % 100000, k);

    scheduler.spawn([&](sim::ThreadContext& ctx) {
        runtime.atomic(ctx, [&](Tx& tx) {
            std::uint64_t out = 0;
            tree.find(tx, 3 * 2654435761u % 100000, &out);
        });
    });
    scheduler.run();
    const auto& samples = runtime.trace().samples();
    ASSERT_EQ(samples.size(), 1u);
    // Depth of a 512-node red-black tree is 9-18; each node is its
    // own line, plus the root pointer and the lock word.
    EXPECT_GE(samples[0].loadLines, 8u);
    EXPECT_LE(samples[0].loadLines, 24u);
}

} // namespace

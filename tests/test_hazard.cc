/**
 * @file
 * Hazard-injection layer tests (src/htm/hazard.hh).
 *
 * Two properties carry the layer:
 *
 *  1. Zero perturbation when off. The injector is compiled in and
 *     value-embedded in every Runtime, so "hazards disabled" vs
 *     "hazards enabled with all-zero rates" must be bit-identical —
 *     same forked A/B discipline as test_prof.cc, but over the full
 *     benchmark x machine grid (simulated results depend on host heap
 *     addresses, so both runs fork from the same parent image).
 *
 *  2. Injection is real and attributed. Each hazard class — spurious
 *     transient aborts, virtual-time interrupts, capacity
 *     misestimates, lock-holder preemption — must show up in the
 *     TxStats counters it claims, and must never corrupt results:
 *     a hazard can only slow a run down, not change what it computes.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/suite.hh"
#include "htm/hazard.hh"
#include "htm/machine.hh"
#include "htm/runtime.hh"
#include "htm/tx.hh"
#include "sim/scheduler.hh"

namespace
{

using namespace htmsim;

// ---- zero perturbation when off ---------------------------------------

/// One grid cell's simulated outcome; trivially copyable so a child
/// ships the whole grid over a pipe in one write.
struct CellMetrics
{
    std::uint64_t seqCycles = 0;
    std::uint64_t tmCycles = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t committedTxCycles = 0;
    std::uint64_t wastedTxCycles = 0;
    std::array<std::uint64_t, htm::numAbortCauses> causes{};

    bool
    operator==(const CellMetrics& other) const = default;
};

/// Run every (benchmark, machine) cell once in a forked child with the
/// given hazard configuration and collect the metrics in the parent.
bool
runGridForked(const htm::HazardConfig& hazard,
              std::vector<CellMetrics>& grid)
{
    int fds[2];
    if (::pipe(fds) != 0)
        return false;
    const pid_t child = ::fork();
    if (child < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return false;
    }
    if (child == 0) {
        ::close(fds[0]);
        bench::SuiteRunner runner(false);
        std::size_t cell = 0;
        for (const htm::MachineConfig& machine :
             htm::MachineConfig::all()) {
            for (const std::string& bench : bench::suiteNames()) {
                htm::RuntimeConfig config{machine};
                config.hazard = hazard;
                const stamp::Speedup speedup =
                    runner.run(bench, config, machine, 4, true, 1);
                CellMetrics& metrics = grid[cell++];
                metrics.seqCycles = speedup.seq.cycles;
                metrics.tmCycles = speedup.tm.cycles;
                metrics.commits = speedup.tm.stats.totalCommits();
                metrics.aborts = speedup.tm.stats.totalAborts();
                metrics.committedTxCycles =
                    speedup.tm.stats.committedTxCycles;
                metrics.wastedTxCycles =
                    speedup.tm.stats.wastedTxCycles;
                metrics.causes = speedup.tm.stats.trueCauseAborts;
            }
        }
        const char* cursor =
            reinterpret_cast<const char*>(grid.data());
        std::size_t remaining = grid.size() * sizeof(grid[0]);
        while (remaining > 0) {
            const ssize_t written = ::write(fds[1], cursor, remaining);
            if (written <= 0)
                ::_exit(2);
            cursor += written;
            remaining -= std::size_t(written);
        }
        ::_exit(0);
    }
    ::close(fds[1]);
    char* cursor = reinterpret_cast<char*>(grid.data());
    std::size_t remaining = grid.size() * sizeof(grid[0]);
    bool ok = true;
    while (remaining > 0) {
        const ssize_t got = ::read(fds[0], cursor, remaining);
        if (got <= 0) {
            ok = false;
            break;
        }
        cursor += got;
        remaining -= std::size_t(got);
    }
    ::close(fds[0]);
    int status = 0;
    ::waitpid(child, &status, 0);
    return ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

TEST(HazardPerturbation, DisabledIsBitIdenticalToZeroRatesFullGrid)
{
    const std::size_t cells = htm::MachineConfig::all().size() *
                              bench::suiteNames().size();
    ASSERT_GT(cells, 0u);

    // "Off" is a configured-but-disabled injector; "zero" is the same
    // injector enabled with every rate at zero. Same seed, so any
    // divergence would expose a draw or allocation the enabled path
    // does that the disabled path doesn't.
    htm::HazardConfig off;
    off.enabled = false;
    off.seed = 7;
    htm::HazardConfig zero = off;
    zero.enabled = true;

    // Preallocate both result buffers before the first fork so the
    // two children start from the same parent heap image.
    std::vector<CellMetrics> disabled(cells);
    std::vector<CellMetrics> zeroed(cells);

    ASSERT_TRUE(runGridForked(off, disabled));
    ASSERT_TRUE(runGridForked(zero, zeroed));

    std::size_t cell = 0;
    std::uint64_t total_aborts = 0;
    for (const htm::MachineConfig& machine :
         htm::MachineConfig::all()) {
        for (const std::string& bench : bench::suiteNames()) {
            SCOPED_TRACE(bench + " on " + machine.name);
            EXPECT_EQ(disabled[cell], zeroed[cell]);
            total_aborts += disabled[cell].aborts;
            ++cell;
        }
    }
    // The grid must actually exercise contention, or bit-identity
    // would be vacuous.
    EXPECT_GT(total_aborts, 0u);
}

// ---- injection and attribution ----------------------------------------

struct alignas(256) PaddedWord
{
    std::uint64_t value = 0;
};

struct HazardRun
{
    htm::TxStats stats;
    std::uint64_t finalCount = 0;
    std::uint64_t expectedCount = 0;
};

/// N threads x iters increments of a shared counter (plus a touch of
/// per-iteration padding lines) under the given hazard configuration.
/// The invariant every test leans on: whatever the hazards do, the
/// counter must end at exactly threads * iters.
HazardRun
runCounter(const htm::HazardConfig& hazard,
           htm::RetryPolicyKind policy = htm::RetryPolicyKind::machineDefault,
           htm::BackendKind backend = htm::BackendKind::htm,
           unsigned threads = 4, unsigned iters = 200,
           unsigned extra_lines = 0, unsigned work = 100)
{
    const htm::MachineConfig& machine = htm::MachineConfig::all()[2];
    htm::RuntimeConfig config{machine};
    config.hazard = hazard;
    config.policyKind = policy;
    config.backend = backend;

    PaddedWord counter;
    std::vector<PaddedWord> pad(extra_lines == 0 ? 1 : extra_lines);
    sim::Scheduler scheduler(1);
    htm::Runtime runtime(config, threads);
    static const htm::TxSiteId site = htm::txSite("test.hazardCounter");
    for (unsigned tid = 0; tid < threads; ++tid) {
        scheduler.spawn([&, tid](sim::ThreadContext& ctx) {
            for (unsigned i = 0; i < iters; ++i) {
                runtime.atomic(ctx, site, [&](htm::Tx& tx) {
                    for (unsigned line = 0; line < extra_lines;
                         ++line) {
                        tx.store(&pad[line].value,
                                 tx.load(&pad[line].value) + 1);
                    }
                    if (work != 0)
                        tx.work(work);
                    tx.store(&counter.value,
                             tx.load(&counter.value) + 1);
                });
                ctx.advance(20 + tid);
            }
        });
    }
    scheduler.run();

    HazardRun result;
    result.stats = runtime.stats();
    result.finalCount = counter.value;
    result.expectedCount = std::uint64_t(threads) * iters;
    return result;
}

std::uint64_t
causeCount(const htm::TxStats& stats, htm::AbortCause cause)
{
    return stats.trueCauseAborts[std::size_t(cause)];
}

TEST(HazardInjection, SpuriousAbortsAreInjectedAndAttributed)
{
    htm::HazardConfig hazard;
    hazard.enabled = true;
    hazard.spuriousAbortProb = 0.2;
    const HazardRun run = runCounter(hazard);

    EXPECT_EQ(run.finalCount, run.expectedCount);
    EXPECT_GT(causeCount(run.stats, htm::AbortCause::spurious), 0u);
    EXPECT_GT(run.stats.hazardAborts(), 0u);
    EXPECT_EQ(run.stats.hazardAborts(),
              causeCount(run.stats, htm::AbortCause::spurious));
}

TEST(HazardInjection, InterruptsFollowTheVirtualClock)
{
    htm::HazardConfig hazard;
    hazard.enabled = true;
    hazard.interruptRate = 1e-3;
    const HazardRun run = runCounter(hazard);

    EXPECT_EQ(run.finalCount, run.expectedCount);
    EXPECT_GT(causeCount(run.stats, htm::AbortCause::interrupt), 0u);
    EXPECT_EQ(causeCount(run.stats, htm::AbortCause::spurious), 0u);
}

TEST(HazardInjection, CapacityMisestimatesAreCounted)
{
    htm::HazardConfig hazard;
    hazard.enabled = true;
    hazard.capacityNoiseProb = 1.0;
    // Touch well over the misestimated budget (1..6 lines) per
    // attempt so every armed attempt trips it.
    const HazardRun run =
        runCounter(hazard, htm::RetryPolicyKind::machineDefault,
                   htm::BackendKind::htm, 4, 100, 8);

    EXPECT_EQ(run.finalCount, run.expectedCount);
    EXPECT_GT(run.stats.hazardCapacityAborts, 0u);
    // Injected capacity aborts surface under the real capacity cause
    // (that is the point: the policy cannot tell them apart).
    EXPECT_GE(causeCount(run.stats, htm::AbortCause::capacityOverflow),
              run.stats.hazardCapacityAborts);
}

TEST(HazardInjection, LockHolderPreemptionStallsEveryFallback)
{
    htm::HazardConfig hazard;
    hazard.enabled = true;
    hazard.lockPreemptProb = 1.0;
    hazard.lockPreemptStall = 12'345;
    // Pure lock backend: every section is a fallback section, so with
    // probability one each of them is preempted exactly once.
    const HazardRun run =
        runCounter(hazard, htm::RetryPolicyKind::machineDefault,
                   htm::BackendKind::globalLock, 2, 50);

    EXPECT_EQ(run.finalCount, run.expectedCount);
    EXPECT_EQ(run.stats.hazardPreemptStalls, run.expectedCount);
    EXPECT_EQ(run.stats.hazardStallCycles,
              run.expectedCount * hazard.lockPreemptStall);
}

TEST(HazardInjection, PinnedVictimStillCommitsUnderHardenedPolicy)
{
    // The end-to-end progress bound: t0's every hardware attempt is
    // spuriously aborted, yet the hardened policy's watchdog walks it
    // to the fallback lock and the run completes with the right
    // answer. (An unbounded retry loop would hang this test.)
    htm::HazardConfig hazard;
    hazard.enabled = true;
    hazard.pinnedVictim = 0;
    const HazardRun run =
        runCounter(hazard, htm::RetryPolicyKind::hardened,
                   htm::BackendKind::htm, 4, 100);

    EXPECT_EQ(run.finalCount, run.expectedCount);
    EXPECT_GT(causeCount(run.stats, htm::AbortCause::spurious), 0u);
    // t0 never commits in hardware, so at least its sections fall
    // back.
    EXPECT_GE(run.stats.irrevocableCommits, 100u);
}

TEST(HazardConfigDefaults, AllRatesZeroAndDisabled)
{
    const htm::HazardConfig hazard;
    EXPECT_FALSE(hazard.enabled);
    EXPECT_EQ(hazard.spuriousAbortProb, 0.0);
    EXPECT_EQ(hazard.interruptRate, 0.0);
    EXPECT_EQ(hazard.capacityNoiseProb, 0.0);
    EXPECT_EQ(hazard.lockPreemptProb, 0.0);
    EXPECT_EQ(hazard.pinnedVictim, -1);
}

} // namespace

/**
 * @file
 * Hybrid backend tests (src/htm/stm.hh, backend.hh HybridBackend).
 *
 * Three properties carry the layer:
 *
 *  1. Zero perturbation when off. The StmEngine is value-embedded in
 *     every Runtime and the hybrid instrumentation is compiled into
 *     the shared HTM hot path, so "backend=hybrid with the software
 *     path disabled" vs "backend=htm" must be bit-identical over the
 *     full benchmark x machine grid — same forked A/B discipline as
 *     test_hazard.cc (simulated results depend on host heap
 *     addresses, so both runs fork from the same parent image).
 *
 *  2. The software path is real and exact. Whatever mix of hardware,
 *     software and irrevocable commits a configuration produces, a
 *     contended counter must end at exactly threads * iters — under
 *     eager and lazy subscription, stm-only mode, version-clock
 *     wraparound, hash-collision false conflicts, and global-lock
 *     interplay when the software attempt budget runs dry.
 *
 *  3. Orec-table edge cases behave as modeled: wraparound advances
 *     the epoch instead of corrupting validation, a degenerate
 *     one-entry table turns disjoint accesses into (correct) false
 *     conflicts, and software commits doom overlapping hardware
 *     readers under both subscription modes.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench/suite.hh"
#include "htm/machine.hh"
#include "htm/runtime.hh"
#include "htm/stm.hh"
#include "htm/tx.hh"
#include "sim/scheduler.hh"

namespace
{

using namespace htmsim;
using Subscription = htm::HybridRuntimeConfig::Subscription;

// ---- zero perturbation when off ---------------------------------------

/// One grid cell's simulated outcome; trivially copyable so a child
/// ships the whole grid over a pipe in one write.
struct CellMetrics
{
    std::uint64_t seqCycles = 0;
    std::uint64_t tmCycles = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t committedTxCycles = 0;
    std::uint64_t wastedTxCycles = 0;
    std::array<std::uint64_t, htm::numAbortCauses> causes{};

    bool
    operator==(const CellMetrics& other) const = default;
};

/// Run every (benchmark, machine) cell once in a forked child with the
/// given configuration mutation and collect the metrics in the parent.
bool
runGridForked(const std::function<void(htm::RuntimeConfig&)>& mutate,
              std::vector<CellMetrics>& grid)
{
    int fds[2];
    if (::pipe(fds) != 0)
        return false;
    const pid_t child = ::fork();
    if (child < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return false;
    }
    if (child == 0) {
        ::close(fds[0]);
        bench::SuiteRunner runner(false);
        std::size_t cell = 0;
        for (const htm::MachineConfig& machine :
             htm::MachineConfig::all()) {
            for (const std::string& bench : bench::suiteNames()) {
                htm::RuntimeConfig config{machine};
                mutate(config);
                const stamp::Speedup speedup =
                    runner.run(bench, config, machine, 4, true, 1);
                CellMetrics& metrics = grid[cell++];
                metrics.seqCycles = speedup.seq.cycles;
                metrics.tmCycles = speedup.tm.cycles;
                metrics.commits = speedup.tm.stats.totalCommits();
                metrics.aborts = speedup.tm.stats.totalAborts();
                metrics.committedTxCycles =
                    speedup.tm.stats.committedTxCycles;
                metrics.wastedTxCycles =
                    speedup.tm.stats.wastedTxCycles;
                metrics.causes = speedup.tm.stats.trueCauseAborts;
            }
        }
        const char* cursor =
            reinterpret_cast<const char*>(grid.data());
        std::size_t remaining = grid.size() * sizeof(grid[0]);
        while (remaining > 0) {
            const ssize_t written = ::write(fds[1], cursor, remaining);
            if (written <= 0)
                ::_exit(2);
            cursor += written;
            remaining -= std::size_t(written);
        }
        ::_exit(0);
    }
    ::close(fds[1]);
    char* cursor = reinterpret_cast<char*>(grid.data());
    std::size_t remaining = grid.size() * sizeof(grid[0]);
    bool ok = true;
    while (remaining > 0) {
        const ssize_t got = ::read(fds[0], cursor, remaining);
        if (got <= 0) {
            ok = false;
            break;
        }
        cursor += got;
        remaining -= std::size_t(got);
    }
    ::close(fds[0]);
    int status = 0;
    ::waitpid(child, &status, 0);
    return ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

TEST(HybridPerturbation, StmDisabledIsBitIdenticalToHtmFullGrid)
{
    const std::size_t cells = htm::MachineConfig::all().size() *
                              bench::suiteNames().size();
    ASSERT_GT(cells, 0u);

    // Preallocate both result buffers before the first fork so the
    // two children start from the same parent heap image.
    std::vector<CellMetrics> htm_grid(cells);
    std::vector<CellMetrics> hybrid_grid(cells);

    ASSERT_TRUE(runGridForked(
        [](htm::RuntimeConfig& config) {
            config.backend = htm::BackendKind::htm;
        },
        htm_grid));
    ASSERT_TRUE(runGridForked(
        [](htm::RuntimeConfig& config) {
            config.backend = htm::BackendKind::hybrid;
            config.hybrid.stmEnabled = false;
        },
        hybrid_grid));

    std::size_t cell = 0;
    std::uint64_t total_aborts = 0;
    for (const htm::MachineConfig& machine :
         htm::MachineConfig::all()) {
        for (const std::string& bench : bench::suiteNames()) {
            SCOPED_TRACE(bench + " on " + machine.name);
            EXPECT_EQ(htm_grid[cell], hybrid_grid[cell]);
            total_aborts += htm_grid[cell].aborts;
            ++cell;
        }
    }
    // The grid must actually exercise contention, or bit-identity
    // would be vacuous.
    EXPECT_GT(total_aborts, 0u);
}

// ---- the software path is real and exact ------------------------------

struct alignas(256) PaddedWord
{
    std::uint64_t value = 0;
};

struct HybridRun
{
    htm::TxStats stats;
    std::uint64_t finalCount = 0;
    std::uint64_t expectedCount = 0;
    std::uint64_t stmClock = 0;
    std::uint64_t stmEpoch = 0;
};

/// N threads x iters increments of a shared counter under the hybrid
/// backend with the given knobs. A tight retry budget pushes contended
/// sections onto the software path quickly; the invariant every test
/// leans on is that the counter still ends at exactly threads * iters.
HybridRun
runHybridCounter(const htm::HybridRuntimeConfig& hybrid,
                 unsigned threads = 4, unsigned iters = 200,
                 unsigned work = 100,
                 htm::RetryCounts retry = {1, 1, 1})
{
    const htm::MachineConfig& machine = htm::MachineConfig::all()[2];
    htm::RuntimeConfig config{machine};
    config.backend = htm::BackendKind::hybrid;
    config.hybrid = hybrid;
    config.retry = retry;

    PaddedWord counter;
    sim::Scheduler scheduler(1);
    htm::Runtime runtime(config, threads);
    static const htm::TxSiteId site = htm::txSite("test.hybridCounter");
    for (unsigned tid = 0; tid < threads; ++tid) {
        scheduler.spawn([&, tid](sim::ThreadContext& ctx) {
            for (unsigned i = 0; i < iters; ++i) {
                runtime.atomic(ctx, site, [&](htm::Tx& tx) {
                    if (work != 0)
                        tx.work(work);
                    tx.store(&counter.value,
                             tx.load(&counter.value) + 1);
                });
                ctx.advance(20 + tid);
            }
        });
    }
    scheduler.run();

    HybridRun result;
    result.stats = runtime.stats();
    result.finalCount = counter.value;
    result.expectedCount = std::uint64_t(threads) * iters;
    result.stmClock = runtime.stm().clock();
    result.stmEpoch = runtime.stm().epoch();
    return result;
}

std::uint64_t
causeCount(const htm::TxStats& stats, htm::AbortCause cause)
{
    return stats.trueCauseAborts[std::size_t(cause)];
}

TEST(HybridCounter, MixedModeIsExactUnderContentionEager)
{
    htm::HybridRuntimeConfig hybrid;
    hybrid.subscription = Subscription::eager;
    const HybridRun run = runHybridCounter(hybrid);

    EXPECT_EQ(run.finalCount, run.expectedCount);
    // Both tiers must carry real work: software commits exist (the
    // one-retry budget funnels contended sections to the slow path)
    // and hardware commits survive alongside them.
    EXPECT_GT(run.stats.stmCommits, 0u);
    EXPECT_GT(run.stats.htmCommits, 0u);
    // Every commit is exactly one increment, whatever the tier.
    EXPECT_EQ(run.stats.totalCommits(), run.expectedCount);
    // Software commits advance the shared version clock.
    EXPECT_GT(run.stmClock, 0u);
    EXPECT_GT(run.stats.committedStmCycles, 0u);
}

TEST(HybridCounter, MixedModeIsExactUnderContentionLazy)
{
    htm::HybridRuntimeConfig hybrid;
    hybrid.subscription = Subscription::lazy;
    const HybridRun run = runHybridCounter(hybrid);

    EXPECT_EQ(run.finalCount, run.expectedCount);
    EXPECT_GT(run.stats.stmCommits, 0u);
    EXPECT_GT(run.stats.htmCommits, 0u);
    EXPECT_EQ(run.stats.totalCommits(), run.expectedCount);
    EXPECT_GT(run.stmClock, 0u);
}

TEST(HybridCounter, StmOnlyIsExactAndAllSoftware)
{
    htm::HybridRuntimeConfig hybrid;
    hybrid.stmOnly = true;
    const HybridRun run = runHybridCounter(hybrid);

    EXPECT_EQ(run.finalCount, run.expectedCount);
    // No hardware attempts at all: every commit is software or (after
    // the software budget) irrevocable under the global lock.
    EXPECT_EQ(run.stats.htmCommits, 0u);
    EXPECT_GT(run.stats.stmCommits, 0u);
    EXPECT_EQ(run.stats.stmCommits + run.stats.irrevocableCommits,
              run.expectedCount);
    // Contention is real: software validation must have failed
    // somewhere, and the wasted cycles are attributed.
    EXPECT_GT(causeCount(run.stats, htm::AbortCause::stmConflict), 0u);
    EXPECT_GT(run.stats.wastedStmCycles, 0u);
}

// ---- orec-table edge cases --------------------------------------------

TEST(HybridOrecs, ClockWraparoundAdvancesEpochAndStaysExact)
{
    htm::HybridRuntimeConfig hybrid;
    hybrid.stmOnly = true;
    // 800 increments against a wrap limit of 64 forces many epoch
    // resets; in-flight software transactions at each reset must
    // abort (epoch check) rather than validate against zeroed orecs.
    hybrid.clockWrapLimit = 64;
    const HybridRun run = runHybridCounter(hybrid);

    EXPECT_EQ(run.finalCount, run.expectedCount);
    EXPECT_GT(run.stmEpoch, 0u);
    // After a wrap the clock restarts below the limit (plus the
    // commits since); it must never run away past limit + one batch.
    EXPECT_LE(run.stmClock, 64u + 1u);
}

TEST(HybridOrecs, OneEntryTableTurnsDisjointAccessesIntoFalseConflicts)
{
    // Every address hashes to the single orec, so threads writing
    // fully disjoint words still invalidate each other: false
    // conflicts must appear, and must only cost retries, never
    // correctness.
    const htm::MachineConfig& machine = htm::MachineConfig::all()[2];
    htm::RuntimeConfig config{machine};
    config.backend = htm::BackendKind::hybrid;
    config.hybrid.stmOnly = true;
    config.hybrid.orecTableLog2 = 0;

    const unsigned threads = 4;
    const unsigned iters = 200;
    std::vector<PaddedWord> words(threads);
    sim::Scheduler scheduler(1);
    htm::Runtime runtime(config, threads);
    static const htm::TxSiteId site = htm::txSite("test.hybridDisjoint");
    for (unsigned tid = 0; tid < threads; ++tid) {
        scheduler.spawn([&, tid](sim::ThreadContext& ctx) {
            for (unsigned i = 0; i < iters; ++i) {
                runtime.atomic(ctx, site, [&](htm::Tx& tx) {
                    tx.work(50);
                    tx.store(&words[tid].value,
                             tx.load(&words[tid].value) + 1);
                });
                ctx.advance(20 + tid);
            }
        });
    }
    scheduler.run();

    EXPECT_EQ(runtime.stm().orecCount(), 1u);
    for (unsigned tid = 0; tid < threads; ++tid)
        EXPECT_EQ(words[tid].value, iters) << "thread " << tid;
    EXPECT_GT(causeCount(runtime.stats(), htm::AbortCause::stmConflict),
              0u);
}

TEST(HybridOrecs, StmBudgetExhaustionFallsBackToTheGlobalLock)
{
    // A software budget of one means any validation failure goes
    // irrevocable; software commits racing those lock holders must
    // see the lock (stmCommit's lock check) and stand aside, so the
    // counter stays exact with all three commit classes mixed.
    htm::HybridRuntimeConfig hybrid;
    hybrid.stmOnly = true;
    hybrid.stmAttempts = 1;
    const HybridRun run = runHybridCounter(hybrid);

    EXPECT_EQ(run.finalCount, run.expectedCount);
    EXPECT_GT(run.stats.irrevocableCommits, 0u);
    EXPECT_EQ(run.stats.stmCommits + run.stats.irrevocableCommits,
              run.expectedCount);
}

TEST(HybridOrecs, SoftwareCommitsDoomOverlappingHardwareReaders)
{
    // Readers spin transactionally over the writers' words while
    // stm-leaning writers commit under them. Strong isolation demands
    // each hardware reader see either the old or the new value of
    // every word — the differential oracle checks this globally; here
    // the cheap proxy is that reader transactions observe software
    // aborts (they are doomed by software write-back) yet the
    // writers' counts stay exact. Run under both subscription modes.
    for (const Subscription mode :
         {Subscription::eager, Subscription::lazy}) {
        SCOPED_TRACE(mode == Subscription::eager ? "eager" : "lazy");
        const htm::MachineConfig& machine =
            htm::MachineConfig::all()[2];
        htm::RuntimeConfig config{machine};
        config.backend = htm::BackendKind::hybrid;
        config.hybrid.subscription = mode;
        config.retry = {1, 1, 1};

        const unsigned writers = 2;
        const unsigned readers = 2;
        const unsigned iters = 200;
        std::vector<PaddedWord> words(writers);
        std::uint64_t torn_reads = 0;
        sim::Scheduler scheduler(1);
        htm::Runtime runtime(config, writers + readers);
        static const htm::TxSiteId write_site =
            htm::txSite("test.hybridWriter");
        static const htm::TxSiteId read_site =
            htm::txSite("test.hybridReader");
        for (unsigned tid = 0; tid < writers; ++tid) {
            scheduler.spawn([&, tid](sim::ThreadContext& ctx) {
                for (unsigned i = 0; i < iters; ++i) {
                    runtime.atomic(ctx, write_site, [&](htm::Tx& tx) {
                        tx.work(100);
                        // Increment both words in one transaction so
                        // they stay equal in every committed
                        // snapshot: the invariant a torn read breaks.
                        for (unsigned w = 0; w < writers; ++w) {
                            tx.store(&words[w].value,
                                     tx.load(&words[w].value) + 1);
                        }
                    });
                    ctx.advance(20 + tid);
                }
            });
        }
        for (unsigned r = 0; r < readers; ++r) {
            scheduler.spawn([&, r](sim::ThreadContext& ctx) {
                for (unsigned i = 0; i < iters; ++i) {
                    runtime.atomic(ctx, read_site, [&](htm::Tx& tx) {
                        const std::uint64_t a =
                            tx.load(&words[0].value);
                        tx.work(60);
                        const std::uint64_t b =
                            tx.load(&words[1].value);
                        if (a != b)
                            ++torn_reads;
                    });
                    ctx.advance(30 + r);
                }
            });
        }
        scheduler.run();

        // Opacity: a software commit between the two loads dooms the
        // reader (per-address conflict plus clock subscription), so
        // the second load throws before an inconsistent pair can be
        // observed — even on attempts that never commit. A nonzero
        // count here is a strong-isolation violation, whichever tier
        // the reader ran on.
        EXPECT_EQ(torn_reads, 0u);
        EXPECT_EQ(words[0].value, std::uint64_t(writers) * iters);
        EXPECT_EQ(words[1].value, std::uint64_t(writers) * iters);
        const htm::TxStats stats = runtime.stats();
        EXPECT_GT(stats.stmCommits, 0u);
        EXPECT_EQ(stats.totalCommits(),
                  std::uint64_t(writers + readers) * iters);
    }
}

} // namespace
